(* demi — command-line driver for the Demikernel reproduction.

   Subcommands run parameterised scenarios on the simulated datacenter:

     demi rtt --size 1024 --rounds 200 --stack demikernel|kernel|mtcp
     demi kv  --ops 5000 --keys 1000 --value 512 --reads 0.9 --iface ...
     demi wakeups --workers 32 --jobs 5000
     demi offload --keep 0.25 --count 1000
     demi loss --loss 0.05 --bytes 100000 *)

module Setup = Dk_apps.Sim_setup
module Echo = Dk_apps.Echo
module Demi_rt = Demikernel.Demi
module H = Dk_sim.Histogram
module Runtime = Dk_shard_rt.Runtime
open Cmdliner

let pp_hist label h =
  Format.printf "%s: n=%d p50=%Ldns p99=%Ldns mean=%.0fns max=%Ldns@." label
    (H.count h) (H.quantile h 0.5) (H.quantile h 0.99) (H.mean h) (H.max h)

(* ---- multi-shard helpers (--shards N) ---- *)

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"run the workload across N shared-nothing per-core shards \
                 (demikernel stack only; 1 = the classic single-engine path)")

let xfrac_arg =
  Arg.(value & opt float 0.0
       & info [ "xshard-frac" ] ~docv:"FRAC"
           ~doc:"fraction of requests whose home is another shard, served \
                 through the cross-shard mailbox (requires --shards > 1)")

let offload_arg =
  Arg.(value & flag
       & info [ "offload" ]
           ~doc:"serve the kv GET hot path from the programmable NIC's \
                 device-resident table over UDP datagrams (demikernel \
                 stack only); misses, SETs and DELs still reach the host")

let flows_per_shard = 4

let merged_latency (s : Runtime.stats) =
  Array.fold_left
    (fun acc p -> H.merge acc p.Runtime.latency)
    (H.create ()) s.Runtime.per_shard

let pp_shard_table (s : Runtime.stats) =
  Array.iter
    (fun p ->
      Format.printf
        "  shard%-2d flows=%-3d ops=%-6d remote=%-5d p50=%Ldns p99=%Ldns \
         p99.9=%Ldns@."
        p.Runtime.shard p.Runtime.flow_count p.Runtime.op_count
        p.Runtime.remote_count
        (H.quantile p.Runtime.latency 0.5)
        (H.quantile p.Runtime.latency 0.99)
        (H.quantile p.Runtime.latency 0.999))
    s.Runtime.per_shard;
  Format.printf "total: %d ops (%d remote) in %Ldns — %.1f kops/s@."
    s.Runtime.total_ops s.Runtime.total_remote s.Runtime.wall_ns
    (float_of_int s.Runtime.total_ops
    /. (Int64.to_float s.Runtime.wall_ns /. 1e9)
    /. 1000.)

(* ---- rtt ---- *)

let rtt_run stack size rounds window shards xfrac =
  if shards > 1 then begin
    if not (String.equal stack "demikernel") then begin
      prerr_endline "demi rtt: --shards > 1 requires --stack demikernel";
      exit 2
    end;
    let t = Runtime.create ~n:shards ~xfrac ~seed:42L () in
    let s = Runtime.run_echo t ~flows:(flows_per_shard * shards) ~size ~rounds in
    pp_hist
      (Printf.sprintf "%s echo %dB over %d shards (xfrac %.0f%%)" stack size
         shards (xfrac *. 100.))
      (merged_latency s);
    pp_shard_table s
  end
  else
  let h =
    match stack with
    | "kernel" ->
        let duo = Setup.two_hosts ~kernel_stack:true () in
        let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
        let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
        ignore (Echo.start_posix_server ~posix:pb ~port:7);
        Result.get_ok
          (Echo.posix_rtt ~posix:pa ~engine:duo.Setup.engine
             ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds)
    | "mtcp" ->
        let duo = Setup.two_hosts () in
        let ma = Setup.mtcp_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
        let mb = Setup.mtcp_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
        ignore (Echo.start_mtcp_server ~mtcp:mb ~port:7);
        Echo.mtcp_rtt ~mtcp:ma ~engine:duo.Setup.engine
          ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds
    | _ ->
        let duo = Setup.two_hosts () in
        let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
        let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
        Demi_rt.set_batch_window da window;
        ignore (Echo.start_demi_server ~demi:db ~port:7);
        Result.get_ok
          (Echo.demi_rtt ~demi:da ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds)
  in
  pp_hist (Printf.sprintf "%s echo %dB" stack size) h

let stack_arg =
  Arg.(value & opt string "demikernel"
       & info [ "stack" ] ~docv:"STACK" ~doc:"demikernel, kernel or mtcp")

let size_arg =
  Arg.(value & opt int 64 & info [ "size" ] ~docv:"BYTES" ~doc:"message size")

let rounds_arg =
  Arg.(value & opt int 100 & info [ "rounds" ] ~docv:"N" ~doc:"round trips")

let batch_window_arg =
  Arg.(value & opt int64 0L
       & info [ "batch-window" ] ~docv:"NS"
           ~doc:"tx doorbell coalescing window in virtual ns (demikernel \
                 stack only; 0 rings the doorbell per push)")

let rtt_cmd =
  Cmd.v (Cmd.info "rtt" ~doc:"echo round-trip latency on a chosen stack")
    Term.(
      const rtt_run $ stack_arg $ size_arg $ rounds_arg $ batch_window_arg
      $ shards_arg $ xfrac_arg)

(* ---- kv ---- *)

module Workload = Dk_apps.Workload
module Proto = Dk_apps.Proto

(* Closed-loop kv over UDP datagrams with the GET hot path offloaded to
   the server NIC's device-resident table (`--offload`). The server is
   host-managed + populate: SETs write through to the device over the
   synchronous control queue and host-served GET hits are inserted, so
   a Zipf-read-heavy loop converges onto the device fast. Returns the
   world, the server demi instance, the server handle and the latency
   histogram so both `demi kv` and `demi stats` can report on it. *)
let kv_offload_world ~ops ~keys ~value ~reads =
  let duo = Setup.two_hosts ~programmable:true () in
  let engine = duo.Setup.engine and cost = duo.Setup.cost in
  let da = Setup.demi_of_host ~engine ~cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine ~cost duo.Setup.b () in
  let kv = Dk_apps.Kv.create (Demi_rt.manager db) in
  let fail_on what = function
    | Ok v -> v
    | Error e ->
        Format.eprintf "demi kv --offload: %s failed: %s@." what
          (Demikernel.Types.error_to_string e);
        exit 1
  in
  let srv =
    fail_on "server start"
      (Dk_apps.Kv_app.start_udp_offload_server ~demi:db ~port:1 ~kv
         ~capacity:(max 16 keys) ~max_value:(max 64 value) ~populate:true ())
  in
  fail_on "set peer"
    (Dk_apps.Kv_app.set_udp_peer srv (Setup.endpoint duo.Setup.a 5555));
  let qd = fail_on "client socket" (Demi_rt.socket da `Udp) in
  fail_on "client bind" (Demi_rt.bind da qd ~port:5555);
  fail_on "client connect"
    (Demi_rt.connect da qd ~dst:(Setup.endpoint duo.Setup.b 1));
  let rpc s =
    match Demi_rt.blocking_push da qd (Dk_mem.Sga.of_strings [ s ]) with
    | Demikernel.Types.Pushed -> (
        match Demi_rt.blocking_pop da qd with
        | Demikernel.Types.Popped r -> Dk_mem.Sga.free r
        | _ ->
            prerr_endline "demi kv --offload: pop failed";
            exit 1)
    | _ ->
        prerr_endline "demi kv --offload: push failed";
        exit 1
  in
  let wl = Workload.create ~seed:42L (Workload.Zipf { n = keys; theta = 0.99 }) in
  for k = 0 to keys - 1 do
    rpc
      (Proto.udp_request_string
         (Proto.Set (Workload.key_name k, Workload.value wl ~size:value)))
  done;
  let h = H.create () in
  for _ = 1 to ops do
    let k = Workload.next_key wl in
    let req =
      if Workload.is_get wl ~read_fraction:reads then
        Proto.Get (Workload.key_name k)
      else Proto.Set (Workload.key_name k, Workload.value wl ~size:value)
    in
    let t0 = Dk_sim.Engine.now engine in
    rpc (Proto.udp_request_string req);
    H.record h (Int64.sub (Dk_sim.Engine.now engine) t0)
  done;
  (duo, db, srv, h)

let kv_offload_run ops keys value reads =
  let duo, db, srv, h = kv_offload_world ~ops ~keys ~value ~reads in
  let engine = duo.Setup.engine in
  pp_hist "demikernel kv (GET path on the NIC)" h;
  Format.printf "throughput: %.1f kops/s@."
    (float_of_int ops
    /. (Int64.to_float (Dk_sim.Engine.now engine) /. 1e9)
    /. 1000.);
  (match Demi_rt.offload_stats db with
  | Some s ->
      Format.printf
        "device table: %d/%d GETs served on the NIC (%.0f%% hit), %d \
         requests host-served@."
        s.Dk_device.Table.hits s.Dk_device.Table.lookups
        (100.
        *. float_of_int s.Dk_device.Table.hits
        /. float_of_int (max 1 s.Dk_device.Table.lookups))
        (Dk_apps.Kv_app.requests_served srv)
  | None -> Format.printf "device table: pipeline ran on the host (CPU fallback)@.");
  Format.printf "host CPU: %Ldns busy (client + server share the engine)@."
    (Dk_sim.Engine.consumed engine);
  if not (Dk_apps.Kv_app.server_offloaded srv) then
    prerr_endline "warning: GET pipeline did not land on the device"

let kv_run iface ops keys value reads offload shards xfrac =
  if offload then begin
    if shards > 1 || not (String.equal iface "demikernel") then begin
      prerr_endline
        "demi kv: --offload requires --iface demikernel and --shards 1";
      exit 2
    end;
    kv_offload_run ops keys value reads
  end
  else if shards > 1 then begin
    if not (String.equal iface "demikernel") then begin
      prerr_endline "demi kv: --shards > 1 requires --iface demikernel";
      exit 2
    end;
    let t = Runtime.create ~n:shards ~xfrac ~seed:42L () in
    let flows = flows_per_shard * shards in
    let s =
      Runtime.run_kv t ~flows
        ~ops_per_flow:(max 1 (ops / flows))
        ~keys_per_shard:(max 1 (keys / shards))
        ~value_size:value ~read_fraction:reads
    in
    pp_hist
      (Printf.sprintf "demikernel kv over %d shards (xfrac %.0f%%)" shards
         (xfrac *. 100.))
      (merged_latency s);
    pp_shard_table s
  end
  else
  match iface with
  | "posix" ->
      let duo = Setup.two_hosts ~kernel_stack:true () in
      let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
      let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
      let kv = Dk_apps.Kv.create (Dk_mem.Manager.create ()) in
      ignore
        (Dk_apps.Kv_posix.start_server ~posix:pb ~cost:duo.Setup.cost
           ~engine:duo.Setup.engine ~port:1 ~kv);
      (match
         Dk_apps.Kv_posix.run_client ~posix:pa ~cost:duo.Setup.cost
           ~engine:duo.Setup.engine ~dst:(Setup.endpoint duo.Setup.b 1) ~ops
           ~keys ~value_size:value ~read_fraction:reads ()
       with
      | Ok s ->
          pp_hist "posix kv" s.Dk_apps.Kv_app.latency;
          Format.printf "throughput: %.1f kops/s@."
            (float_of_int s.Dk_apps.Kv_app.ops
             /. (Int64.to_float s.Dk_apps.Kv_app.elapsed_ns /. 1e9)
             /. 1000.)
      | Error _ -> prerr_endline "posix kv run failed")
  | _ ->
      let duo = Setup.two_hosts () in
      let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
      let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
      let kv = Dk_apps.Kv.create (Demi_rt.manager db) in
      ignore (Dk_apps.Kv_app.start_tcp_server ~demi:db ~port:1 ~kv);
      (match
         Dk_apps.Kv_app.run_tcp_client ~demi:da
           ~dst:(Setup.endpoint duo.Setup.b 1) ~ops ~keys ~value_size:value
           ~read_fraction:reads ()
       with
      | Ok s ->
          pp_hist "demikernel kv" s.Dk_apps.Kv_app.latency;
          Format.printf "throughput: %.1f kops/s@."
            (float_of_int s.Dk_apps.Kv_app.ops
             /. (Int64.to_float s.Dk_apps.Kv_app.elapsed_ns /. 1e9)
             /. 1000.)
      | Error _ -> prerr_endline "demikernel kv run failed")

let kv_cmd =
  let iface =
    Arg.(value & opt string "demikernel"
         & info [ "iface" ] ~docv:"IFACE" ~doc:"demikernel or posix")
  in
  let ops = Arg.(value & opt int 1000 & info [ "ops" ] ~docv:"N" ~doc:"operations") in
  let keys = Arg.(value & opt int 200 & info [ "keys" ] ~docv:"N" ~doc:"key count") in
  let value = Arg.(value & opt int 512 & info [ "value" ] ~docv:"BYTES" ~doc:"value size") in
  let reads =
    Arg.(value & opt float 0.9 & info [ "reads" ] ~docv:"FRAC" ~doc:"GET fraction")
  in
  Cmd.v (Cmd.info "kv" ~doc:"key-value workload on a chosen interface")
    Term.(
      const kv_run $ iface $ ops $ keys $ value $ reads $ offload_arg
      $ shards_arg $ xfrac_arg)

(* ---- wakeups ---- *)

let wakeups_run workers jobs =
  let run mode =
    let engine = Dk_sim.Engine.create () in
    Dk_sched.Worker_pool.run ~engine ~cost:Dk_sim.Cost.default ~mode ~workers
      ~jobs ~mean_interarrival_ns:3000.0 ~service_ns:2000L ()
  in
  let herd = run `Epoll_herd and tok = run `Qtoken in
  Format.printf "epoll herd : %d wakeups, %d wasted, p99 dispatch %Ldns@."
    herd.Dk_sched.Worker_pool.wakeups herd.Dk_sched.Worker_pool.wasted_wakeups
    (H.quantile herd.Dk_sched.Worker_pool.dispatch_latency 0.99);
  Format.printf "qtoken     : %d wakeups, %d wasted, p99 dispatch %Ldns@."
    tok.Dk_sched.Worker_pool.wakeups tok.Dk_sched.Worker_pool.wasted_wakeups
    (H.quantile tok.Dk_sched.Worker_pool.dispatch_latency 0.99)

let wakeups_cmd =
  let workers = Arg.(value & opt int 16 & info [ "workers" ] ~docv:"N") in
  let jobs = Arg.(value & opt int 2000 & info [ "jobs" ] ~docv:"N") in
  Cmd.v (Cmd.info "wakeups" ~doc:"epoll herd vs qtoken wakeups (§4.4)")
    Term.(const wakeups_run $ workers $ jobs)

(* ---- loss ---- *)

let loss_run loss bytes =
  let duo = Setup.two_hosts ~loss () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  ignore (Echo.start_demi_server ~demi:db ~port:7);
  let qd = Result.get_ok (Demi_rt.socket da `Tcp) in
  (match Demi_rt.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7) with
  | Ok () -> ()
  | Error e -> failwith (Demikernel.Types.error_to_string e));
  let payload = String.init bytes (fun i -> Char.chr (i land 0xff)) in
  let t0 = Dk_sim.Engine.now duo.Setup.engine in
  ignore (Demi_rt.blocking_push da qd (Dk_mem.Sga.of_string payload));
  (match Demi_rt.blocking_pop da qd with
  | Demikernel.Types.Popped reply ->
      let ok = String.equal (Dk_mem.Sga.to_string reply) payload in
      Format.printf "echoed %d bytes intact=%b in %Ldns over a %.1f%%-lossy fabric@."
        bytes ok
        (Int64.sub (Dk_sim.Engine.now duo.Setup.engine) t0)
        (loss *. 100.)
  | r -> Format.printf "failed: %a@." Demikernel.Types.pp_op_result r);
  let fs = Dk_device.Fabric.stats duo.Setup.fabric in
  Format.printf "fabric: %d delivered, %d lost (TCP retransmission recovered them)@."
    fs.Dk_device.Fabric.delivered fs.Dk_device.Fabric.lost

let loss_cmd =
  let loss = Arg.(value & opt float 0.02 & info [ "loss" ] ~docv:"FRAC") in
  let bytes = Arg.(value & opt int 100_000 & info [ "bytes" ] ~docv:"N") in
  Cmd.v (Cmd.info "loss" ~doc:"bulk transfer over a lossy fabric")
    Term.(const loss_run $ loss $ bytes)

(* ---- stats ---- *)

let flight_tail = 16

let print_obs_and_flight ~now snap json =
  Format.printf "@.%a" Dk_obs.Export.pp_table snap;
  let fl = Dk_obs.Flight.default in
  let entries = Dk_obs.Flight.entries fl in
  let len = List.length entries in
  let tail =
    if len <= flight_tail then entries
    else List.filteri (fun i _ -> i >= len - flight_tail) entries
  in
  Format.printf
    "@.flight recorder: %d events recorded, %d evicted, %d buffered; last %d:@."
    (Dk_obs.Flight.recorded fl) (Dk_obs.Flight.evicted fl) len
    (List.length tail);
  List.iter
    (fun (e : Dk_obs.Flight.entry) ->
      Format.printf "%12Ld  %-10s %s@." e.Dk_obs.Flight.at
        (Dk_obs.Flight.kind_name e.Dk_obs.Flight.kind)
        e.Dk_obs.Flight.what)
    tail;
  match json with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Dk_obs.Export.json_lines ~now snap);
      output_string oc (Dk_obs.Export.json_flight fl);
      close_out oc;
      Format.printf "@.wrote %s@." file

(* Host-allocation meter: the OCaml GC's minor-words delta across the
   workload, absolute and per completed echo round. The sim's mem.*
   instruments count simulated pool traffic; this pair counts real
   heap churn on the host running the datapath — the meter dk-hot's
   allocation fixes move. Same binary + same workload = same delta,
   so the determinism double-run diff stays byte-identical. *)
let g_minor_words = Dk_obs.Metrics.gauge "host.gc.minor_words"
let g_minor_per_op = Dk_obs.Metrics.gauge "host.gc.minor_words_per_op"

let meter_host_alloc ~since ~ops =
  let dw = int_of_float (Gc.minor_words () -. since) in
  Dk_obs.Metrics.set g_minor_words dw;
  Dk_obs.Metrics.set g_minor_per_op (dw / max 1 ops)

let stats_run size rounds loss json window offload shards xfrac =
  (* A sanitizer violation mid-run dumps the flight recorder: the last
     thing the datapath did before the bug, which the kernel can no
     longer tell us (the whole point of lib/obs). *)
  Dk_mem.Dk_check.set_sink (fun _ _ ->
      Format.eprintf "flight recorder at violation:@.%a" Dk_obs.Flight.pp
        Dk_obs.Flight.default);
  Dk_obs.Metrics.reset Dk_obs.Metrics.default;
  Dk_obs.Flight.clear Dk_obs.Flight.default;
  let mw0 = Gc.minor_words () in
  if offload then begin
    (* Offload workload instead of echo: the snapshot then carries the
       device.nic.offload.* instruments (table hits/misses/insertions/
       bytes) next to the usual datapath counters. *)
    if shards > 1 then begin
      prerr_endline "demi stats: --offload requires --shards 1";
      exit 2
    end;
    let duo, _db, srv, h =
      kv_offload_world ~ops:rounds ~keys:200 ~value:size ~reads:0.9
    in
    meter_host_alloc ~since:mw0 ~ops:rounds;
    Format.printf
      "kv offload workload: %d ops, %dB values, GET hot path on the NIC \
       (offloaded=%b)@."
      rounds size
      (Dk_apps.Kv_app.server_offloaded srv);
    pp_hist "op latency" h;
    let now = Dk_sim.Engine.now duo.Setup.engine in
    let snap = Dk_obs.Metrics.snapshot Dk_obs.Metrics.default in
    print_obs_and_flight ~now snap json
  end
  else if shards > 1 then begin
    (* Multi-shard echo: per-shard shard<i>.* instruments plus the
       folded shards.agg.* view in the table and the JSON export. *)
    let t = Runtime.create ~n:shards ~xfrac ~seed:42L () in
    let s = Runtime.run_echo t ~flows:(flows_per_shard * shards) ~size ~rounds in
    meter_host_alloc ~since:mw0 ~ops:(flows_per_shard * shards * rounds);
    Format.printf
      "echo workload: %d rounds of %dB per flow across %d shards (xfrac \
       %.0f%%)@."
      rounds size shards (xfrac *. 100.);
    pp_hist "round-trip latency (merged)" (merged_latency s);
    pp_shard_table s;
    let now =
      Array.fold_left
        (fun a e -> let n = Dk_sim.Engine.now e in if Int64.compare n a > 0 then n else a)
        0L (Runtime.engines t)
    in
    let snap = Dk_obs.Metrics.snapshot_with_shard_agg Dk_obs.Metrics.default in
    print_obs_and_flight ~now snap json
  end
  else begin
    let duo = Setup.two_hosts ~loss () in
    let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
    let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
    Demi_rt.set_batch_window da window;
    ignore (Echo.start_demi_server ~demi:db ~port:7);
    let h =
      Result.get_ok
        (Echo.demi_rtt ~demi:da ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds)
    in
    meter_host_alloc ~since:mw0 ~ops:rounds;
    Format.printf "echo workload: %d rounds of %dB over a %.1f%%-lossy fabric@."
      rounds size (loss *. 100.);
    pp_hist "round-trip latency" h;
    let now = Dk_sim.Engine.now duo.Setup.engine in
    let snap = Dk_obs.Metrics.snapshot Dk_obs.Metrics.default in
    print_obs_and_flight ~now snap json
  end;
  Dk_mem.Dk_check.clear_sink ()

let stats_loss_arg =
  Arg.(value & opt float 0.0
       & info [ "loss" ] ~docv:"FRAC" ~doc:"fabric loss probability")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"also write the snapshot and flight log as JSON lines")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"run an echo workload and dump every datapath obs instrument")
    Term.(
      const stats_run $ size_arg $ rounds_arg $ stats_loss_arg $ json_arg
      $ batch_window_arg $ offload_arg $ shards_arg $ xfrac_arg)

(* ---- scenario ---- *)

module Loadgen = Dk_loadgen.Loadgen
module Scen = Dk_loadgen.Scenario

let scenario_list () =
  Format.printf "named scenarios (run with `demi scenario NAME`):@.";
  List.iter
    (fun (s : Scen.t) ->
      Format.printf "  %-15s %s@." s.Scen.name s.Scen.summary)
    Scen.all

let pp_scenario_stats (s : Loadgen.stats) =
  Format.printf
    "%s: %d conns over %d shard(s), %.0f kops/s offered for %Ldms@."
    s.Loadgen.l_scenario s.Loadgen.l_conns s.Loadgen.l_shards
    (s.Loadgen.l_offered_rate /. 1e3)
    (Int64.div s.Loadgen.l_duration_ns 1_000_000L);
  if s.Loadgen.l_capacity > 0.0 then
    Format.printf "  calibrated capacity: %.0f kops/s@."
      (s.Loadgen.l_capacity /. 1e3);
  Format.printf
    "  offered=%d admitted=%d dropped=%d completed=%d churned=%d@."
    s.Loadgen.l_offered s.Loadgen.l_admitted s.Loadgen.l_shed s.Loadgen.l_done
    s.Loadgen.l_churn;
  let h = s.Loadgen.l_lat in
  Format.printf
    "  goodput %.1f kops/s; latency p50=%Ldns p99=%Ldns p99.9=%Ldns max=%Ldns@."
    (s.Loadgen.l_goodput /. 1e3)
    (H.quantile h 0.5) (H.quantile h 0.99) (H.quantile h 0.999) (H.max h);
  Array.iter
    (fun (p : Loadgen.shard_stats) ->
      Format.printf
        "  shard%-2d conns=%-6d offered=%-7d dropped=%-5d done=%-7d \
         qhwm=%-5d p99=%Ldns@."
        p.Loadgen.ls_shard p.Loadgen.ls_conns p.Loadgen.ls_offered
        p.Loadgen.ls_shed p.Loadgen.ls_done p.Loadgen.ls_qdepth_hwm
        (H.quantile p.Loadgen.ls_lat 0.99))
    s.Loadgen.l_per_shard;
  if s.Loadgen.l_offload then
    Format.printf
      "  offload: %d resident keys, %d/%d GETs served by the device, host \
       CPU %Ldns@."
      s.Loadgen.l_offload_resident s.Loadgen.l_offload_hits
      s.Loadgen.l_offload_lookups s.Loadgen.l_host_cpu_ns;
  Format.printf "  digest 0x%016Lx@." s.Loadgen.l_digest

(* Default modeled-connection scale for full (non-smoke) runs. Conns
   are lightweight ids — O(1) ints each and an O(conns) placement pass
   — so 10^6 raises the population the RSS/churn/slow-reader machinery
   exercises without touching the offered window; only `--smoke` stays
   at the CI-budget 10^4. *)
let scenario_default_conns = 1_000_000

let scenario_run name all smoke shards conns offload offload_hit offered_rate
    seed json =
  let picked =
    if all then Scen.all
    else
      match name with
      | None -> []
      | Some n -> (
          match Scen.find n with
          | Some s -> [ s ]
          | None ->
              Format.eprintf
                "demi scenario: unknown scenario %S (run `demi scenario` to \
                 list)@."
                n;
              exit 2)
  in
  if picked = [] then scenario_list ()
  else
    List.iter
      (fun scn ->
        let scn =
          if smoke then Scen.smoke scn
          else { scn with Scen.conns = max scn.Scen.conns scenario_default_conns }
        in
        let scn =
          match conns with
          | Some c -> { scn with Scen.conns = max 1 c }
          | None -> scn
        in
        let scn =
          if offload then
            { scn with Scen.offload = true; Scen.offload_hit = offload_hit }
          else scn
        in
        let s = Loadgen.run ?offered_rate ~scn ~shards ~seed () in
        if json then print_endline (Loadgen.stats_json s)
        else pp_scenario_stats s)
      picked

let scenario_cmd =
  let scn_name =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"scenario to run (omit to list the catalogue)")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"run every scenario in the catalogue")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"CI scale: 10^4 connections and a short window")
  in
  let conns =
    Arg.(value & opt (some int) None
         & info [ "conns" ] ~docv:"N"
             ~doc:"modeled connection count (default: 10^6 for full runs, \
                   10^4 under --smoke)")
  in
  let offload_hit =
    Arg.(value & opt float 0.9
         & info [ "offload-hit" ] ~docv:"FRAC"
             ~doc:"with --offload: target device-hit fraction of GETs — the \
                   smallest hot-key prefix carrying this much popularity \
                   mass is pre-inserted into each shard's device table")
  in
  let offered_rate =
    Arg.(value & opt (some float) None
         & info [ "offered-rate" ] ~docv:"OPS_S"
             ~doc:"absolute offered rate in ops/s (skips capacity \
                   calibration; default derives the rate from the \
                   scenario's offered_mult x calibrated capacity)")
  in
  let seed =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"N"
             ~doc:"world seed; same seed + scenario = identical stats")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"emit one deterministic JSON stats line per scenario")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"open-loop load-generation scenarios: 10^6 modeled connections \
             multiplexed over the real datapath (list, or run by name)")
    Term.(
      const scenario_run $ scn_name $ all $ smoke $ shards_arg $ conns
      $ offload_arg $ offload_hit $ offered_rate $ seed $ json)

(* ---- faults ---- *)

module Fault = Dk_fault.Fault

let faults_list () =
  Format.printf "injection sites:@.";
  List.iter
    (fun s ->
      Format.printf "  %-18s %s@." (Fault.site_name s) (Fault.describe s))
    Fault.sites;
  Format.printf
    "@.named plans (replay with `demi faults --plan NAME --seed N`):@.";
  List.iter (fun (n, d) -> Format.printf "  %-15s %s@." n d) Fault.plan_names

(* Run one echo phase and one storage phase under the armed plan,
   reporting liveness (first surfaced error, if any) and the injection
   ledger. Everything is virtual-time deterministic: same plan + seed
   => same output, which is what makes `demi faults` a replay tool. *)
let faults_replay name seed size rounds =
  match Fault.named ~seed:(Int64.of_int seed) name with
  | None ->
      Format.eprintf "demi faults: unknown plan %S (run `demi faults` to list)@."
        name;
      exit 2
  | Some plan ->
      Dk_obs.Metrics.reset Dk_obs.Metrics.default;
      Dk_obs.Flight.clear Dk_obs.Flight.default;
      Fault.install Fault.default plan;
      Fun.protect ~finally:(fun () -> Fault.clear Fault.default) @@ fun () ->
      let duo = Setup.two_hosts () in
      let engine = duo.Setup.engine and cost = duo.Setup.cost in
      let block = Dk_device.Block.create ~engine ~cost () in
      let da = Setup.demi_of_host ~engine ~cost duo.Setup.a ~block () in
      let db = Setup.demi_of_host ~engine ~cost duo.Setup.b () in
      ignore (Echo.start_demi_server ~demi:db ~port:7);
      Format.printf "plan %s (seed %d): %s@." plan.Fault.plan_name seed
        (try List.assoc name Fault.plan_names with Not_found -> "custom");
      (* echo phase *)
      let payload = String.make size 'f' in
      let echo_err = ref None in
      let ok_rounds = ref 0 in
      (match Demi_rt.socket da `Tcp with
      | Error e -> echo_err := Some e
      | Ok qd -> (
          match Demi_rt.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7) with
          | Error e -> echo_err := Some e
          | Ok () ->
              let i = ref 0 in
              while !i < rounds && !echo_err = None do
                incr i;
                (match Demi_rt.sga_alloc da payload with
                | Error e -> echo_err := Some e
                | Ok sga -> (
                    match Demi_rt.blocking_push da qd sga with
                    | Demikernel.Types.Pushed -> (
                        match Demi_rt.blocking_pop da qd with
                        | Demikernel.Types.Popped reply ->
                            incr ok_rounds;
                            Demi_rt.sga_free da reply;
                            Demi_rt.sga_free da sga
                        | Demikernel.Types.Failed e -> echo_err := Some e
                        | _ -> echo_err := Some `Not_supported)
                    | Demikernel.Types.Failed e -> echo_err := Some e
                    | _ -> echo_err := Some `Not_supported))
              done;
              ignore (Demi_rt.close da qd)));
      Format.printf "echo   : %d/%d rounds%s@." !ok_rounds rounds
        (match !echo_err with
        | None -> ""
        | Some e ->
            Printf.sprintf " — then %s" (Demikernel.Types.error_to_string e));
      (* storage phase *)
      let disk_err = ref None in
      let ok_records = ref 0 in
      let records = 8 in
      (match Demi_rt.fcreate da "replay.log" with
      | Error e -> disk_err := Some e
      | Ok fqd ->
          let i = ref 0 in
          while !i < records && !disk_err = None do
            incr i;
            match Demi_rt.sga_alloc da (Printf.sprintf "record-%03d" !i) with
            | Error e -> disk_err := Some e
            | Ok sga -> (
                (match Demi_rt.blocking_push da fqd sga with
                | Demikernel.Types.Pushed -> (
                    match Demi_rt.blocking_pop da fqd with
                    | Demikernel.Types.Popped r ->
                        incr ok_records;
                        Demi_rt.sga_free da r
                    | Demikernel.Types.Failed e -> disk_err := Some e
                    | _ -> disk_err := Some `Not_supported)
                | Demikernel.Types.Failed e -> disk_err := Some e
                | _ -> disk_err := Some `Not_supported);
                Demi_rt.sga_free da sga)
          done);
      Format.printf "storage: %d/%d records%s@." !ok_records records
        (match !disk_err with
        | None -> ""
        | Some e ->
            Printf.sprintf " — then %s" (Demikernel.Types.error_to_string e));
      (* injection ledger *)
      Format.printf "@.injected (virtual time now %Ldns):@."
        (Dk_sim.Engine.now engine);
      List.iter
        (fun s ->
          let n = Fault.injected Fault.default s in
          if n > 0 then Format.printf "  %-18s %d@." (Fault.site_name s) n)
        Fault.sites;
      if Fault.total_injected Fault.default = 0 then
        Format.printf "  (nothing fired — window/rate injected no faults)@."

let faults_run plan seed size rounds =
  match plan with
  | None -> faults_list ()
  | Some name -> faults_replay name seed size rounds

let faults_cmd =
  let plan =
    Arg.(value & opt (some string) None
         & info [ "plan" ] ~docv:"NAME"
             ~doc:"named fault plan to replay (omit to list sites and plans)")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"plan RNG seed")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"list fault-injection sites, or deterministically replay a plan")
    Term.(const faults_run $ plan $ seed $ size_arg $ rounds_arg)

(* ---- shardcheck ---- *)

let shardcheck_run json dirs =
  let dirs = if dirs = [] then [ "lib" ] else dirs in
  let prog, files = Shard_engine.analyze_dirs dirs in
  let inv = Shard_engine.inventory prog in
  if json then print_string (Shard_engine.inventory_json inv)
  else begin
    print_string (Shard_engine.inventory_table inv);
    let unclassified =
      List.length
        (List.filter
           (fun g ->
             match g.Shard_engine.g_class with
             | Shard_engine.Unclassified -> true
             | Shard_engine.Per_shard _ | Shard_engine.Immutable _
             | Shard_engine.Obs_handle | Shard_engine.Tooling _ -> false)
           inv)
    in
    Printf.printf
      "\n%d source file(s), %d module-level global(s), %d unclassified, %d \
       raw finding(s)\n\
       (`dune build @shard` applies tools/shard/allowlist.txt and gates CI)\n"
      files (List.length inv) unclassified
      (List.length (Shard_engine.findings prog))
  end

let shardcheck_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"emit the shared-state inventory as JSON instead of a table")
  in
  let dirs =
    Arg.(value & pos_all dir []
         & info [] ~docv:"DIR"
             ~doc:"directories to analyze (default: lib)")
  in
  Cmd.v
    (Cmd.info "shardcheck"
       ~doc:"dk-shard shared-state inventory: every module-level global, its \
             kind, and its shard classification")
    Term.(const shardcheck_run $ json $ dirs)

(* ---- hotcheck ---- *)

let hotcheck_run json dirs =
  let dirs = if dirs = [] then [ "lib" ] else dirs in
  let prog, files = Hot_engine.analyze_dirs dirs in
  let inv = Hot_engine.inventory prog in
  if json then print_string (Hot_engine.inventory_json inv)
  else begin
    print_string (Hot_engine.inventory_table inv);
    let fs = Hot_engine.findings prog in
    let count rule =
      List.length (List.filter (fun f -> f.Tool_common.rule = rule) fs)
    in
    Printf.printf
      "\n%d source file(s), %d hot root(s); raw findings: %d hot-alloc, %d \
       hot-complexity, %d hot-poly, %d hot-annotation\n\
       (`dune build @hot` applies tools/hot/allowlist.txt and gates CI)\n"
      files (List.length inv) (count "hot-alloc") (count "hot-complexity")
      (count "hot-poly") (count "hot-annotation")
  end

let hotcheck_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"emit the hot-root inventory as JSON instead of a table")
  in
  let dirs =
    Arg.(value & pos_all dir []
         & info [] ~docv:"DIR"
             ~doc:"directories to analyze (default: lib)")
  in
  Cmd.v
    (Cmd.info "hotcheck"
       ~doc:"dk-hot hot-root inventory: every per-op entry point, its kind, \
             its reachable call-graph footprint, and the per-rule raw \
             finding counts against the ~1000-cycle datapath budget")
    Term.(const hotcheck_run $ json $ dirs)

(* `demi --stats` (no subcommand) behaves like `demi stats`. *)
let default =
  let stats_flag =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"run an echo workload and dump datapath observability stats")
  in
  Term.(
    ret
      (const (fun stats size rounds loss json window offload shards xfrac ->
           if stats then
             `Ok (stats_run size rounds loss json window offload shards xfrac)
           else `Help (`Pager, None))
      $ stats_flag $ size_arg $ rounds_arg $ stats_loss_arg $ json_arg
      $ batch_window_arg $ offload_arg $ shards_arg $ xfrac_arg))

let main =
  Cmd.group ~default
    (Cmd.info "demi" ~version:"1.0"
       ~doc:"Demikernel reproduction: parameterised simulation scenarios")
    [
      rtt_cmd; kv_cmd; wakeups_cmd; loss_cmd; stats_cmd; scenario_cmd;
      faults_cmd; shardcheck_cmd; hotcheck_cmd;
    ]

let () = exit (Cmd.eval main)
