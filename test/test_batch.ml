(* Batched vs unbatched equivalence. The doorbell-coalescing contract:
   [push_batch] / [submit_many] change how often the doorbell rings,
   never what the application observes. With a zero window the batched
   entry points are bit-identical to the per-op path — same delivered
   sequence, same final virtual clock, same doorbell count — and that
   must hold under every named fault plan, since fault draws key off
   the order of injection opportunities, which batching preserves.
   Plus: sanitizer mode catches a buffer returned to a [Pool] twice. *)

module Setup = Dk_apps.Sim_setup
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Sga = Dk_mem.Sga
module Fault = Dk_fault.Fault
module Block = Dk_device.Block
module Pool = Dk_mem.Pool
module Buffer = Dk_mem.Buffer
module Dk_check = Dk_mem.Dk_check

let check = Alcotest.check

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

let with_plan plan f =
  (match plan with
  | Some p -> Fault.install Fault.default p
  | None -> Fault.clear Fault.default);
  Fun.protect ~finally:(fun () -> Fault.clear Fault.default) f

let rounds = 12
let per_round = 8

(* UDP blast a→b; returns (delivered payloads in order, final virtual
   clock, client tx doorbell rings). *)
let net_workload ~plan ~batch ~window () =
  with_plan plan @@ fun () ->
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine in
  let da = Setup.demi_of_host ~engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine ~cost:duo.Setup.cost duo.Setup.b () in
  let sqd = Result.get_ok (Demi.socket db `Udp) in
  must (Demi.bind db sqd ~port:9);
  let received = ref [] in
  let rec drain () =
    match Demi.pop db sqd with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch db tok (function
          | Types.Popped sga ->
              received := Sga.to_string sga :: !received;
              Sga.free sga;
              drain ()
          | _ -> ())
  in
  drain ();
  let cqd = Result.get_ok (Demi.socket da `Udp) in
  must (Demi.connect da cqd ~dst:(Setup.endpoint duo.Setup.b 9));
  Demi.set_batch_window da window;
  for r = 0 to rounds - 1 do
    let payloads =
      List.init per_round (fun i -> Printf.sprintf "r%02d-%02d" r i)
    in
    if batch then begin
      let toks = must (Demi.push_batch da cqd (List.map Sga.of_string payloads)) in
      match Demi.wait_all da toks with
      | Some _ -> ()
      | None -> Alcotest.fail "push_batch deadlocked"
    end
    else
      List.iter
        (fun p -> ignore (Demi.blocking_push da cqd (Sga.of_string p)))
        payloads;
    Engine.run engine
  done;
  Engine.run engine;
  ( List.rev !received,
    Engine.now engine,
    Dk_device.Nic.tx_doorbells duo.Setup.a.Setup.nic )

let plan_of_name name =
  match Fault.named ~seed:42L name with
  | Some p -> p
  | None -> Alcotest.failf "unknown plan %s" name

let net_window0_identical plan_opt () =
  let seq_a, clock_a, rings_a = net_workload ~plan:plan_opt ~batch:false ~window:0L () in
  let seq_b, clock_b, rings_b = net_workload ~plan:plan_opt ~batch:true ~window:0L () in
  check (Alcotest.list Alcotest.string) "delivered sequence" seq_a seq_b;
  check Alcotest.int64 "final clock" clock_a clock_b;
  check Alcotest.int "doorbell rings" rings_a rings_b

(* A coalescing window changes when the doorbell rings, not what
   arrives: same delivered sequence, strictly fewer rings. *)
let net_window_coalesces () =
  let seq_0, _, rings_0 = net_workload ~plan:None ~batch:true ~window:0L () in
  let seq_w, _, rings_w = net_workload ~plan:None ~batch:true ~window:600L () in
  check (Alcotest.list Alcotest.string) "delivered sequence" seq_0 seq_w;
  if rings_w >= rings_0 then
    Alcotest.failf "window did not coalesce: %d rings vs %d" rings_w rings_0

(* NVMe: submit_many shares one SQ ring ([Doorbell.group]), so the
   clock legitimately differs from per-op submission; the completion
   stream (wr_id, status, data) must not. *)
let block_ops n =
  List.init n (fun i ->
      if i mod 3 = 2 then Block.Read { wr_id = i; lba = i mod 8 }
      else Block.Write { wr_id = i; lba = i mod 8; data = Printf.sprintf "blk-%02d" i })

let block_workload ~plan ~batch () =
  with_plan plan @@ fun () ->
  let engine = Engine.create () in
  let dev = Block.create ~engine ~cost:Dk_sim.Cost.default () in
  let rings0 = Block.sq_doorbells dev in
  let ops = block_ops 24 in
  let accepted =
    if batch then Block.submit_many dev ops
    else
      List.fold_left
        (fun acc op ->
          let ok =
            match op with
            | Block.Read { wr_id; lba } -> Block.submit_read dev ~wr_id ~lba
            | Block.Write { wr_id; lba; data } ->
                Block.submit_write dev ~wr_id ~lba data
          in
          acc + if ok then 1 else 0)
        0 ops
  in
  Engine.run engine;
  let rec drain acc =
    match Block.poll_cq dev with
    | Some c -> drain ((c.Block.wr_id, c.Block.status, c.Block.data) :: acc)
    | None -> List.rev acc
  in
  (accepted, drain [], Block.sq_doorbells dev - rings0)

let completion =
  Alcotest.testable
    (fun fmt (wr, _, data) ->
      Format.fprintf fmt "wr=%d data=%s" wr
        (match data with Some d -> String.escaped d | None -> "-"))
    ( = )

let block_batched_identical plan_opt () =
  let acc_a, seq_a, rings_a = block_workload ~plan:plan_opt ~batch:false () in
  let acc_b, seq_b, rings_b = block_workload ~plan:plan_opt ~batch:true () in
  check Alcotest.int "accepted" acc_a acc_b;
  check (Alcotest.list completion) "completion stream" seq_a seq_b;
  check Alcotest.int "per-op rings" (List.length (block_ops 24)) rings_a;
  check Alcotest.int "grouped rings" 1 rings_b

(* ---- sanitizer: double Pool.put ---- *)

let double_put_detected () =
  let pool =
    Option.get
      (Pool.create ~sanitize:true
         ~alloc:(fun () -> Some (Buffer.of_string (String.make 64 'x')))
         ~size:64 ~count:4 ())
  in
  let b = Option.get (Pool.get pool) in
  Pool.put pool b;
  let (), reports = Dk_check.capture (fun () -> Pool.put pool b) in
  (match reports with
  | [ (Dk_check.Double_free, _) ] -> ()
  | _ -> Alcotest.fail "double Pool.put not reported as Double_free");
  (* the second put was dropped, not double-counted *)
  check Alcotest.int "free count unchanged" 4 (Pool.available pool)

let double_put_fast_path_silent () =
  (* without sanitize the scan is off: the fast path stays O(1) and
     quiet (capacity still protects against growth past [count]) *)
  let pool =
    Option.get
      (Pool.create ~sanitize:false
         ~alloc:(fun () -> Some (Buffer.of_string (String.make 8 'y')))
         ~size:8 ~count:2 ())
  in
  let b = Option.get (Pool.get pool) in
  Pool.put pool b;
  let (), reports = Dk_check.capture (fun () -> Pool.get pool |> ignore) in
  check Alcotest.int "no reports" 0 (List.length reports)

let plan_cases mk =
  List.map
    (fun (name, _) ->
      Alcotest.test_case name `Quick (mk (Some (plan_of_name name))))
    Fault.plan_names

let () =
  Alcotest.run "dk_batch"
    [
      ( "net window=0",
        Alcotest.test_case "no plan" `Quick (net_window0_identical None)
        :: plan_cases net_window0_identical );
      ("net window>0", [ Alcotest.test_case "coalesces" `Quick net_window_coalesces ]);
      ( "block grouped",
        Alcotest.test_case "no plan" `Quick (block_batched_identical None)
        :: plan_cases block_batched_identical );
      ( "pool sanitize",
        [
          Alcotest.test_case "double put detected" `Quick double_put_detected;
          Alcotest.test_case "fast path silent" `Quick
            double_put_fast_path_silent;
        ] );
    ]
