(* Tests for dk_mem: arena (buddy), buffer lifecycle/free-protection,
   sga, pool, registry, manager. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Region = Dk_mem.Region
module Arena = Dk_mem.Arena
module Buffer = Dk_mem.Buffer
module Sga = Dk_mem.Sga
module Pool = Dk_mem.Pool
module Registry = Dk_mem.Registry
module Manager = Dk_mem.Manager

(* ---------------- Arena ---------------- *)

let arena_basic () =
  let reg = Region.create ~id:0 ~size:1024 in
  let a = Arena.create ~min_block:64 reg in
  match Arena.alloc a 100 with
  | None -> Alcotest.fail "alloc failed"
  | Some b ->
      check_int "rounded to 128" 128 b.Arena.size;
      check_int "live" 128 (Arena.live_bytes a);
      Arena.free a b;
      check_int "live after free" 0 (Arena.live_bytes a);
      check_bool "quiescent" true (Arena.is_quiescent a)

let arena_full () =
  let reg = Region.create ~id:0 ~size:256 in
  let a = Arena.create ~min_block:64 reg in
  let b1 = Arena.alloc a 256 in
  check_bool "got whole region" true (b1 <> None);
  check_bool "now empty" true (Arena.alloc a 1 = None);
  (match b1 with Some b -> Arena.free a b | None -> ());
  check_bool "free restores" true (Arena.alloc a 1 <> None)

let arena_too_big () =
  let reg = Region.create ~id:0 ~size:256 in
  let a = Arena.create reg in
  check_bool "oversize alloc fails" true (Arena.alloc a 512 = None)

let arena_double_free () =
  let reg = Region.create ~id:0 ~size:256 in
  let a = Arena.create ~min_block:64 reg in
  match Arena.alloc a 64 with
  | None -> Alcotest.fail "alloc"
  | Some b ->
      Arena.free a b;
      Alcotest.check_raises "double free"
        (Invalid_argument "Arena.free: not an outstanding block (double free?)")
        (fun () -> Arena.free a b)

let arena_coalesce () =
  let reg = Region.create ~id:0 ~size:256 in
  let a = Arena.create ~min_block:64 reg in
  (* carve into four 64B blocks, then free all; a 256B alloc must succeed *)
  let blocks = List.filter_map (fun _ -> Arena.alloc a 64) [ 1; 2; 3; 4 ] in
  check_int "four blocks" 4 (List.length blocks);
  List.iter (Arena.free a) blocks;
  check_bool "coalesced back to 256" true (Arena.alloc a 256 <> None)

(* Property: outstanding blocks never overlap and stay in range. *)
let arena_no_overlap =
  QCheck.Test.make ~name:"arena blocks never overlap" ~count:100
    QCheck.(small_list (pair (int_range 1 300) bool))
    (fun script ->
      let reg = Region.create ~id:0 ~size:4096 in
      let a = Arena.create ~min_block:64 reg in
      let live = ref [] in
      List.iter
        (fun (size, do_free) ->
          if do_free && !live <> [] then begin
            match !live with
            | b :: rest ->
                Arena.free a b;
                live := rest
            | [] -> ()
          end
          else
            match Arena.alloc a size with
            | Some b -> live := b :: !live
            | None -> ())
        script;
      (* check pairwise disjoint *)
      let ranges =
        List.map (fun b -> (b.Arena.offset, b.Arena.offset + b.Arena.size)) !live
      in
      let rec disjoint = function
        | [] -> true
        | (s1, e1) :: rest ->
            List.for_all (fun (s2, e2) -> e1 <= s2 || e2 <= s1) rest
            && disjoint rest
      in
      let in_range = List.for_all (fun (s, e) -> s >= 0 && e <= 4096) ranges in
      disjoint ranges && in_range)

(* Property: alloc/free-all always returns the arena to quiescent. *)
let arena_quiescent_prop =
  QCheck.Test.make ~name:"free-all restores quiescence" ~count:100
    QCheck.(small_list (int_range 1 500))
    (fun sizes ->
      let reg = Region.create ~id:0 ~size:8192 in
      let a = Arena.create ~min_block:64 reg in
      let blocks = List.filter_map (Arena.alloc a) sizes in
      List.iter (Arena.free a) blocks;
      Arena.is_quiescent a)

(* ---------------- Buffer ---------------- *)

let buffer_unmanaged () =
  let b = Buffer.of_string "hello" in
  check_int "len" 5 (Buffer.length b);
  check_str "contents" "hello" (Buffer.to_string b);
  Buffer.free b;
  (* unmanaged: free is a reference drop only; double free still traps *)
  Alcotest.check_raises "double free"
    (Invalid_argument "Buffer.free: double free of a view") (fun () ->
      Buffer.free b)

let managed_buffer released =
  let store = Bytes.make 64 '\000' in
  Buffer.make_managed ~store ~off:0 ~len:64 ~region_id:7
    ~release:(fun () -> released := true)
    ()

let buffer_release_on_free () =
  let released = ref false in
  let b = managed_buffer released in
  check_bool "not yet" false !released;
  Buffer.free b;
  check_bool "released" true !released

let buffer_free_protection () =
  (* The §4.5 behaviour: free during I/O defers the release. *)
  let released = ref false in
  let b = managed_buffer released in
  Buffer.io_hold b;
  Buffer.free b;
  check_bool "deferred, not released" false !released;
  check_bool "deferral recorded" true (Buffer.was_deferred b);
  Buffer.io_release b;
  check_bool "released after IO" true !released

let buffer_io_after_release_fails () =
  let released = ref false in
  let b = managed_buffer released in
  Buffer.free b;
  Alcotest.check_raises "io_hold after release"
    (Invalid_argument "Buffer.io_hold: buffer already released") (fun () ->
      Buffer.io_hold b)

let buffer_views_share_lifecycle () =
  let released = ref false in
  let b = managed_buffer released in
  let v = Buffer.sub b 8 16 in
  check_int "view length" 16 (Buffer.length v);
  Buffer.free b;
  check_bool "view keeps allocation alive" false !released;
  Buffer.free v;
  check_bool "last view releases" true !released

let buffer_view_aliasing () =
  let b = Buffer.of_string "abcdefgh" in
  let v = Buffer.sub b 2 4 in
  check_str "view" "cdef" (Buffer.to_string v);
  Buffer.set v 0 'X';
  check_str "writes through" "abXdefgh" (Buffer.to_string b)

let buffer_blits () =
  let a = Buffer.of_string "aaaa" and b = Buffer.of_string "bbbb" in
  Buffer.blit a 0 b 1 2;
  check_str "blit" "baab" (Buffer.to_string b);
  Buffer.blit_from_string "XY" 0 a 2 2;
  check_str "from string" "aaXY" (Buffer.to_string a);
  let dst = Bytes.make 2 '.' in
  Buffer.blit_to_bytes a 2 dst 0 2;
  check_str "to bytes" "XY" (Bytes.to_string dst)

let buffer_bounds () =
  let b = Buffer.of_string "abc" in
  Alcotest.check_raises "sub oob" (Invalid_argument "Buffer.sub") (fun () ->
      ignore (Buffer.sub b 1 5));
  Alcotest.check_raises "get oob" (Invalid_argument "Buffer.get") (fun () ->
      ignore (Buffer.get b 3))

let buffer_multiple_io_holds () =
  let released = ref false in
  let b = managed_buffer released in
  Buffer.io_hold b;
  Buffer.io_hold b;
  Buffer.free b;
  Buffer.io_release b;
  check_bool "one hold remains" false !released;
  Buffer.io_release b;
  check_bool "released" true !released

(* ---------------- Sga ---------------- *)

let sga_basic () =
  let sga = Sga.of_strings [ "hello"; " "; "world" ] in
  check_int "segments" 3 (Sga.segment_count sga);
  check_int "length" 11 (Sga.length sga);
  check_str "concat" "hello world" (Sga.to_string sga)

let sga_copy_into () =
  let sga = Sga.of_strings [ "ab"; "cd" ] in
  let dst = Bytes.make 6 '.' in
  check_int "copied" 4 (Sga.copy_into sga dst 1);
  check_str "placed" ".abcd." (Bytes.to_string dst);
  Alcotest.check_raises "too small"
    (Invalid_argument "Sga.copy_into: destination too small") (fun () ->
      ignore (Sga.copy_into sga (Bytes.create 3) 0))

let sga_sub_string () =
  let sga = Sga.of_strings [ "abc"; "def"; "ghi" ] in
  check_str "cross boundary" "cdefg" (Sga.sub_string sga 2 5);
  check_str "exact segment" "def" (Sga.sub_string sga 3 3);
  check_str "empty" "" (Sga.sub_string sga 4 0)

let sga_equal_segmentation_insensitive () =
  let a = Sga.of_strings [ "hel"; "lo" ] in
  let b = Sga.of_strings [ "h"; "ell"; "o" ] in
  check_bool "equal" true (Sga.equal a b);
  check_bool "not equal" false (Sga.equal a (Sga.of_string "hella"))

let sga_append_concat () =
  let a = Sga.of_string "ab" in
  let b = Sga.append a (Dk_mem.Buffer.of_string "cd") in
  check_str "append" "abcd" (Sga.to_string b);
  let c = Sga.concat b (Sga.of_string "ef") in
  check_str "concat" "abcdef" (Sga.to_string c);
  check_int "empty len" 0 (Sga.length Sga.empty)

let sga_roundtrip_prop =
  QCheck.Test.make ~name:"sga to_string = concat of segments" ~count:200
    QCheck.(small_list (string_of_size Gen.(0 -- 30)))
    (fun parts ->
      let sga = Sga.of_strings parts in
      String.equal (Sga.to_string sga) (String.concat "" parts))

(* ---------------- Pool ---------------- *)

let pool_basic () =
  let mgr = Manager.create () in
  let pool =
    Pool.create ~alloc:(fun () -> Manager.alloc mgr 2048) ~size:2048 ~count:4 ()
  in
  match pool with
  | None -> Alcotest.fail "pool creation failed"
  | Some p ->
      check_int "available" 4 (Pool.available p);
      let b1 = Pool.get p in
      check_bool "got" true (b1 <> None);
      check_int "outstanding" 1 (Pool.outstanding p);
      (match b1 with Some b -> Pool.put p b | None -> ());
      check_int "returned" 4 (Pool.available p)

let pool_exhaustion () =
  let mgr = Manager.create () in
  match Pool.create ~alloc:(fun () -> Manager.alloc mgr 128) ~size:128 ~count:2 () with
  | None -> Alcotest.fail "pool creation failed"
  | Some p ->
      let a = Pool.get p and b = Pool.get p in
      check_bool "exhausted" true (Pool.get p = None);
      (match (a, b) with
      | Some a, Some b ->
          Pool.put p a;
          Pool.put p b
      | _ -> Alcotest.fail "expected buffers");
      check_bool "full put raises" true
        (try
           Pool.put p (Dk_mem.Buffer.of_string "x");
           false
         with Invalid_argument _ -> true)

(* ---------------- Registry ---------------- *)

let registry_basic () =
  let r = Registry.create () in
  check_bool "not registered" false
    (Registry.is_registered r ~region_id:1 ~device:"rdma0");
  Registry.register r ~region_id:1 ~device:"rdma0";
  check_bool "registered" true
    (Registry.is_registered r ~region_id:1 ~device:"rdma0");
  Registry.register r ~region_id:1 ~device:"rdma0";
  check_int "idempotent" 1 (Registry.registrations r);
  Registry.register r ~region_id:1 ~device:"nic0";
  check_int "two devices" 2 (Registry.registrations r);
  check_int "devices_of" 2 (List.length (Registry.devices_of r ~region_id:1))

(* ---------------- Manager ---------------- *)

let manager_basic () =
  let regions_seen = ref 0 in
  let mgr = Manager.create ~on_new_region:(fun _ -> incr regions_seen) () in
  let b = Manager.alloc_exn mgr 100 in
  check_int "one region" 1 !regions_seen;
  check_bool "region pinned" true
    (List.for_all Region.pinned (Manager.regions mgr));
  Buffer.free b;
  let st = Manager.stats mgr in
  check_int "allocs" 1 st.Manager.allocs;
  check_int "releases" 1 st.Manager.releases;
  check_int "live" 0 st.Manager.live_bytes

let manager_grows () =
  let mgr = Manager.create ~initial_region_size:4096 () in
  let b1 = Manager.alloc_exn mgr 4096 in
  let b2 = Manager.alloc_exn mgr 4096 in
  let st = Manager.stats mgr in
  check_bool "grew regions" true (st.Manager.region_count >= 2);
  Buffer.free b1;
  Buffer.free b2

let manager_cap () =
  (* exact-fit sizing: pin sanitize off so DK_SANITIZE=1 runs (16 extra
     canary bytes per alloc) don't change the arithmetic under test *)
  let mgr =
    Manager.create ~initial_region_size:4096 ~max_total_bytes:8192
      ~sanitize:false ()
  in
  let b1 = Manager.alloc_exn mgr 4096 in
  let b2 = Manager.alloc_exn mgr 4096 in
  check_bool "cap hit" true (Manager.alloc mgr 4096 = None);
  Buffer.free b1;
  Buffer.free b2;
  check_bool "reuse after free" true (Manager.alloc mgr 4096 <> None)

let manager_deferred_stat () =
  let mgr = Manager.create () in
  let b = Manager.alloc_exn mgr 64 in
  Buffer.io_hold b;
  Buffer.free b;
  Buffer.io_release b;
  let st = Manager.stats mgr in
  check_int "deferred release counted" 1 st.Manager.deferred_releases

(* Free-protection end to end through the manager (§4.5): the
   application frees while the device still holds the buffer for DMA;
   the storage must not return to the arena until the I/O completes. *)
let manager_deferred_release_midflight () =
  (* exact-fit sizing (whole-region alloc): sanitize off, as above *)
  let mgr =
    Manager.create ~initial_region_size:4096 ~max_total_bytes:4096
      ~sanitize:false ()
  in
  let b = Manager.alloc_exn mgr 4096 in
  Buffer.io_hold b;
  (* device I/O in flight *)
  Buffer.free b;
  (* application released mid-flight *)
  let st = Manager.stats mgr in
  check_int "storage not yet returned" 0 st.Manager.releases;
  check_bool "whole region still occupied" true (Manager.alloc mgr 4096 = None);
  check_bool "hold keeps it in flight" true (Buffer.in_flight b);
  Buffer.io_release b;
  (* I/O completion triggers the deferred release *)
  let st = Manager.stats mgr in
  check_int "released exactly once" 1 st.Manager.releases;
  check_int "release recorded as deferred" 1 st.Manager.deferred_releases;
  check_int "no bytes live" 0 st.Manager.live_bytes;
  check_bool "storage reusable after completion" true
    (Manager.alloc mgr 4096 <> None)

let manager_alloc_string () =
  let mgr = Manager.create () in
  match Manager.alloc_string mgr "demikernel" with
  | None -> Alcotest.fail "alloc_string"
  | Some b ->
      check_int "exact length" 10 (Buffer.length b);
      check_str "contents" "demikernel" (Buffer.to_string b);
      Buffer.free b

let manager_sga_of_string () =
  let mgr = Manager.create () in
  match Manager.sga_of_string mgr "queue" with
  | None -> Alcotest.fail "sga_of_string"
  | Some sga ->
      check_str "contents" "queue" (Sga.to_string sga);
      check_bool "managed" true
        (List.for_all
           (fun b -> Buffer.region_id b <> None)
           (Sga.segments sga));
      Sga.free sga

(* Property: alloc'd buffers from one manager never alias. *)
let manager_no_alias_prop =
  QCheck.Test.make ~name:"live managed buffers never alias" ~count:50
    QCheck.(small_list (int_range 1 2000))
    (fun sizes ->
      let mgr = Manager.create ~initial_region_size:4096 () in
      let bufs = List.filter_map (Manager.alloc mgr) sizes in
      (* Write a distinct pattern into each, then verify none clobbered. *)
      List.iteri
        (fun i b -> Buffer.fill b (Char.chr (i land 0xff)))
        bufs;
      let ok =
        List.for_all
          (fun (i, b) ->
            let c = Char.chr (i land 0xff) in
            let all_match = ref true in
            for j = 0 to Buffer.length b - 1 do
              if Buffer.get b j <> c then all_match := false
            done;
            !all_match)
          (List.mapi (fun i b -> (i, b)) bufs)
      in
      List.iter Buffer.free bufs;
      ok)

(* Property: buffer lifecycle — random interleavings of dup/free/
   io_hold/io_release release the storage exactly when both the
   application refcount and the I/O hold count reach zero. *)
let buffer_lifecycle_prop =
  QCheck.Test.make ~name:"buffer refcounting matches model" ~count:300
    QCheck.(small_list (int_bound 3))
    (fun script ->
      let released = ref false in
      let store = Bytes.make 64 '\000' in
      let root =
        Buffer.make_managed ~store ~off:0 ~len:64 ~region_id:1
          ~release:(fun () -> released := true)
          ()
      in
      let views = ref [ root ] in
      let app = ref 1 and io = ref 0 in
      let ok = ref true in
      let invariant () =
        if !released <> (!app = 0 && !io = 0) then ok := false
      in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
              (* dup a live view *)
              match !views with
              | v :: _ ->
                  views := Buffer.dup v :: !views;
                  incr app;
                  invariant ()
              | [] -> ())
          | 1 -> (
              (* free a live view *)
              match !views with
              | v :: rest ->
                  Buffer.free v;
                  views := rest;
                  decr app;
                  invariant ()
              | [] -> ())
          | 2 ->
              (* device takes a hold (cell-level; any handle works) *)
              if not !released then begin
                Buffer.io_hold root;
                incr io;
                invariant ()
              end
          | _ ->
              if !io > 0 then begin
                Buffer.io_release root;
                decr io;
                invariant ()
              end)
        script;
      !ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dk_mem"
    [
      ( "arena",
        [
          Alcotest.test_case "basic" `Quick arena_basic;
          Alcotest.test_case "full" `Quick arena_full;
          Alcotest.test_case "too big" `Quick arena_too_big;
          Alcotest.test_case "double free" `Quick arena_double_free;
          Alcotest.test_case "coalesce" `Quick arena_coalesce;
        ] );
      qsuite "arena-props" [ arena_no_overlap; arena_quiescent_prop ];
      ( "buffer",
        [
          Alcotest.test_case "unmanaged" `Quick buffer_unmanaged;
          Alcotest.test_case "release on free" `Quick buffer_release_on_free;
          Alcotest.test_case "free-protection" `Quick buffer_free_protection;
          Alcotest.test_case "io after release" `Quick buffer_io_after_release_fails;
          Alcotest.test_case "views share lifecycle" `Quick buffer_views_share_lifecycle;
          Alcotest.test_case "view aliasing" `Quick buffer_view_aliasing;
          Alcotest.test_case "blits" `Quick buffer_blits;
          Alcotest.test_case "bounds" `Quick buffer_bounds;
          Alcotest.test_case "multiple io holds" `Quick buffer_multiple_io_holds;
        ] );
      ( "sga",
        [
          Alcotest.test_case "basic" `Quick sga_basic;
          Alcotest.test_case "copy_into" `Quick sga_copy_into;
          Alcotest.test_case "sub_string" `Quick sga_sub_string;
          Alcotest.test_case "equality" `Quick sga_equal_segmentation_insensitive;
          Alcotest.test_case "append/concat" `Quick sga_append_concat;
        ] );
      qsuite "sga-props" [ sga_roundtrip_prop ];
      ( "pool",
        [
          Alcotest.test_case "basic" `Quick pool_basic;
          Alcotest.test_case "exhaustion" `Quick pool_exhaustion;
        ] );
      ( "registry", [ Alcotest.test_case "basic" `Quick registry_basic ] );
      ( "manager",
        [
          Alcotest.test_case "basic" `Quick manager_basic;
          Alcotest.test_case "grows" `Quick manager_grows;
          Alcotest.test_case "cap" `Quick manager_cap;
          Alcotest.test_case "deferred stat" `Quick manager_deferred_stat;
          Alcotest.test_case "deferred release mid-flight" `Quick
            manager_deferred_release_midflight;
          Alcotest.test_case "alloc_string" `Quick manager_alloc_string;
          Alcotest.test_case "sga_of_string" `Quick manager_sga_of_string;
        ] );
      qsuite "manager-props" [ manager_no_alias_prop ];
      qsuite "buffer-props" [ buffer_lifecycle_prop ];
    ]
