(* Deep NIC offload: the device-resident table, the rx pipeline kv GET
   hot path, and its coherence protocol.

   The load-bearing assertions:
   - device-served GET replies are byte-identical to host-served ones
     (same world, offload on vs CPU fallback, same op sequence);
   - pipeline traffic is port-scoped — frames for other ports reach
     their sockets untouched and never touch the table;
   - no stale reads: a GET never returns a value older than the last
     acknowledged SET for its key, including under the "partition" and
     "nic-flaky" fault plans (SETs update the device entry over the
     synchronous control queue before the response is pushed). *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

module Engine = Dk_sim.Engine
module Fault = Dk_fault.Fault
module Metrics = Dk_obs.Metrics
module Table = Dk_device.Table
module Prog = Dk_device.Prog
module Nic = Dk_device.Nic
module Setup = Dk_apps.Sim_setup
module Kv = Dk_apps.Kv
module Kv_app = Dk_apps.Kv_app
module Proto = Dk_apps.Proto
module Demi = Demikernel.Demi
module Types = Demikernel.Types

let reset_world () =
  Metrics.reset Metrics.default;
  Dk_obs.Flight.clear Dk_obs.Flight.default;
  Fault.clear Fault.default

let with_plan plan f =
  reset_world ();
  (match plan with
  | Some p -> Fault.install Fault.default p
  | None -> Fault.clear Fault.default);
  Fun.protect ~finally:(fun () -> Fault.clear Fault.default) f

let named ~seed name =
  match Fault.named ~seed name with
  | Some p -> p
  | None -> Alcotest.failf "unknown named plan %S" name

(* ---------------- Table ---------------- *)

let test_table_basics () =
  reset_world ();
  let t = Table.create ~capacity:2 ~max_value:8 () in
  check_bool "miss on empty" true (Table.lookup t "a" = None);
  (match Table.insert t "a" "1" with
  | Ok () -> ()
  | Error `Rejected -> Alcotest.fail "insert rejected");
  check (Alcotest.option Alcotest.string) "hit" (Some "1") (Table.lookup t "a");
  check_bool "oversized value rejected" true
    (Table.insert t "big" "123456789" = Error `Rejected);
  let s = Table.stats t in
  check_int "lookups" 2 s.Table.lookups;
  check_int "hits" 1 s.Table.hits;
  check_int "misses" 1 s.Table.misses;
  check_int "rejected" 1 s.Table.rejected

let test_table_lru () =
  reset_world ();
  let t = Table.create ~capacity:2 ~max_value:8 () in
  let ins k v =
    match Table.insert t k v with
    | Ok () -> ()
    | Error `Rejected -> Alcotest.failf "insert %s rejected" k
  in
  ins "a" "1";
  ins "b" "2";
  (* touch a so b is the LRU victim *)
  ignore (Table.lookup t "a");
  ins "c" "3";
  check_bool "b evicted" true (Table.lookup t "b" = None);
  check_bool "a kept" true (Table.lookup t "a" = Some "1");
  check_bool "c kept" true (Table.lookup t "c" = Some "3");
  check_int "evictions" 1 (Table.stats t).Table.evictions

let test_table_host_managed () =
  reset_world ();
  let t = Table.create ~policy:Table.Host_managed ~capacity:1 ~max_value:8 () in
  (match Table.insert t "a" "1" with
  | Ok () -> ()
  | Error `Rejected -> Alcotest.fail "first insert rejected");
  check_bool "at capacity: rejected, not evicted" true
    (Table.insert t "b" "2" = Error `Rejected);
  check_bool "a still resident" true (Table.lookup t "a" = Some "1");
  check_int "no evictions" 0 (Table.stats t).Table.evictions

let test_table_update_invalidate () =
  reset_world ();
  let t = Table.create ~capacity:4 ~max_value:4 () in
  check_bool "update absent = false" false (Table.update t "a" "1");
  (match Table.insert t "a" "1" with
  | Ok () -> ()
  | Error `Rejected -> Alcotest.fail "insert rejected");
  check_bool "update present" true (Table.update t "a" "2");
  check_bool "updated value" true (Table.lookup t "a" = Some "2");
  (* an oversized update must not leave the stale value resident: it
     reports not-resident and drops the entry *)
  check_bool "oversized update not resident" false (Table.update t "a" "12345");
  check_bool "entry gone" true (Table.lookup t "a" = None);
  check_bool "invalidate absent = false" false (Table.invalidate t "a")

(* deterministic LRU: same op sequence, same evictions, twice *)
let test_table_deterministic () =
  reset_world ();
  let run () =
    let t = Table.create ~capacity:8 ~max_value:16 () in
    for i = 0 to 63 do
      (match Table.insert t (Printf.sprintf "k%d" (i mod 13)) "v" with
      | Ok () | Error `Rejected -> ());
      ignore (Table.lookup t (Printf.sprintf "k%d" (i mod 7)))
    done;
    let s = Table.stats t in
    (s.Table.hits, s.Table.evictions,
     List.sort compare
       (List.filter_map
          (fun i ->
            let k = Printf.sprintf "k%d" i in
            if Table.lookup t k <> None then Some k else None)
          (List.init 13 Fun.id)))
  in
  let a = run () and b = run () in
  check_bool "byte-identical replay" true (a = b)

(* ---------------- pipelines: cost model + semantics ---------------- *)

let lookup_none _ = None

let test_footprint_monotone () =
  let s1 = { Prog.guard = Prog.M_pred (Prog.Byte_eq (0, 'G')); act = Prog.Drop } in
  let s2 =
    {
      Prog.guard = Prog.M_eq (Prog.F_u16 36, 6379L);
      act =
        Prog.Respond
          {
            Prog.r_key = Prog.K_rest 1;
            r_hit_prefix = "+";
            r_max_value = 64;
            r_on_miss = Prog.Pass;
          };
    }
  in
  let len = 100 in
  let f0 = Prog.pipeline_footprint [] len in
  let f1 = Prog.pipeline_footprint [ s1 ] len in
  let f2 = Prog.pipeline_footprint [ s1; s2 ] len in
  check_bool "empty = 0" true (f0 = 0);
  check_bool "append grows" true (f1 <= f2 && f0 <= f1);
  (* map footprint monotone under Chain too *)
  let m1 = Prog.Prepend "xx" and m2 = Prog.Append "yy" in
  check_bool "chain >= parts" true
    (Prog.map_footprint (Prog.Chain [ m1; m2 ]) len
     >= Prog.map_footprint m1 len)

let test_stage_semantics () =
  let lookup = function "hot" -> Some "value" | _ -> None in
  let v p s = Prog.eval_pipeline ~lookup p s in
  let stage guard act = { Prog.guard; act } in
  let g = Prog.M_pred (Prog.Byte_eq (0, 'G')) in
  (* Pass stops the pipeline *)
  check_bool "pass" true
    (v [ stage g Prog.Pass; stage (Prog.M_pred Prog.True) Prog.Drop ] "Gx"
     = Prog.Deliver "Gx");
  (* Drop *)
  check_bool "drop" true (v [ stage g Prog.Drop ] "Gx" = Prog.Dropped);
  (* unmatched guard falls through to delivery *)
  check_bool "no match" true (v [ stage g Prog.Drop ] "Sx" = Prog.Deliver "Sx");
  (* Steer *)
  check_bool "steer" true
    (v [ stage g (Prog.Steer 3) ] "Gx" = Prog.Steered (3, "Gx"));
  (* Steer_field: hash mod n is in range; out-of-range field falls on *)
  (match v [ stage g (Prog.Steer_field (Prog.F_hash_rest 1, 4)) ] "Gkey" with
  | Prog.Steered (q, "Gkey") -> check_bool "steer range" true (q >= 0 && q < 4)
  | _ -> Alcotest.fail "expected steer");
  check_bool "short frame falls through" true
    (v [ stage (Prog.M_pred Prog.True) (Prog.Steer_field (Prog.F_u16 90, 4)) ]
       "abc"
     = Prog.Deliver "abc");
  (* Rewrite continues the pipeline *)
  check_bool "rewrite then drop" true
    (v
       [
         stage g (Prog.Rewrite (Prog.Prepend "X"));
         stage (Prog.M_pred (Prog.Prefix "XG")) Prog.Drop;
       ]
       "Gx"
     = Prog.Dropped);
  (* Respond: hit, miss, oversized *)
  let rsp on_miss maxv =
    stage g
      (Prog.Respond
         {
           Prog.r_key = Prog.K_rest 1;
           r_hit_prefix = "+";
           r_max_value = maxv;
           r_on_miss = on_miss;
         })
  in
  check_bool "respond hit" true
    (v [ rsp Prog.Pass 64 ] "Ghot" = Prog.Responded "+value");
  check_bool "respond miss passes" true
    (v [ rsp Prog.Pass 64 ] "Gcold" = Prog.Deliver "Gcold");
  check_bool "respond miss can drop" true
    (v [ rsp Prog.Drop 64 ] "Gcold" = Prog.Dropped);
  check_bool "oversized hit is a miss" true
    (v [ rsp Prog.Pass 2 ] "Ghot" = Prog.Deliver "Ghot")

(* qcheck: arbitrary pipelines over arbitrary frames terminate, never
   raise, and Steer_field verdicts stay in range. *)
let gen_field =
  QCheck.Gen.(
    oneof
      [
        return Prog.F_len;
        map (fun o -> Prog.F_u8 o) (int_bound 64);
        map (fun o -> Prog.F_u16 o) (int_bound 64);
        map2 (fun o l -> Prog.F_hash (o, l)) (int_bound 64) (int_bound 64);
        map (fun o -> Prog.F_hash_rest o) (int_bound 64);
      ])

let gen_fmatch =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun f -> Prog.M_eq (f, 7L)) gen_field;
              map (fun f -> Prog.M_mod (f, 5, 2)) gen_field;
              return (Prog.M_pred (Prog.Byte_eq (0, 'G')));
              return (Prog.M_pred Prog.True);
            ]
        in
        if n <= 0 then leaf
        else
          frequency
            [
              (3, leaf);
              (1, map (fun l -> Prog.M_all l) (list_size (int_bound 3) (self (n / 2))));
              (1, map (fun l -> Prog.M_any l) (list_size (int_bound 3) (self (n / 2))));
              (1, map (fun m -> Prog.M_not m) (self (n / 2)));
            ]))

let rec gen_action n =
  QCheck.Gen.(
    let leaf =
      oneof
        [
          return Prog.Pass;
          return Prog.Drop;
          map (fun q -> Prog.Steer (abs q mod 8)) small_int;
          map (fun f -> Prog.Steer_field (f, 4)) gen_field;
          map (fun s -> Prog.Rewrite (Prog.Prepend s)) (string_size (int_bound 4));
        ]
    in
    if n <= 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 1,
            map2
              (fun k miss ->
                Prog.Respond
                  {
                    Prog.r_key = (if k then Prog.K_rest 1 else Prog.K_bytes (2, 8));
                    r_hit_prefix = "+";
                    r_max_value = 32;
                    r_on_miss = miss;
                  })
              bool (gen_action (n - 1)) );
        ])

let gen_pipeline =
  QCheck.Gen.(
    list_size (int_bound 5)
      (map2 (fun g a -> { Prog.guard = g; act = a }) gen_fmatch (gen_action 2)))

let arb_pipeline_frame =
  QCheck.make
    QCheck.Gen.(pair gen_pipeline (string_size (int_bound 80)))

let prop_pipeline_total =
  QCheck.Test.make ~count:500 ~name:"pipeline eval total and in-range"
    arb_pipeline_frame (fun (p, s) ->
      let lookup k = if String.length k land 1 = 0 then Some "yes" else None in
      (match Prog.eval_pipeline ~lookup p s with
      | Prog.Steered (q, _) -> q >= 0
      | Prog.Deliver _ | Prog.Dropped | Prog.Responded _ -> true)
      && Prog.pipeline_footprint p (String.length s) >= 0)

let prop_footprint_monotone =
  QCheck.Test.make ~count:300 ~name:"pipeline footprint monotone under append"
    (QCheck.make QCheck.Gen.(pair gen_pipeline gen_pipeline))
    (fun (p, q) ->
      let len = 64 in
      Prog.pipeline_footprint (p @ q) len >= Prog.pipeline_footprint p len)

(* empty pipeline: eval is the identity delivery — the byte-identity
   anchor for offload-off worlds *)
let prop_empty_pipeline_identity =
  QCheck.Test.make ~count:100 ~name:"empty pipeline delivers unchanged"
    (QCheck.make QCheck.Gen.(string_size (int_bound 80)))
    (fun s -> Prog.eval_pipeline ~lookup:lookup_none [] s = Prog.Deliver s)

(* ---------------- end-to-end: the offloaded kv GET path -------------- *)

let client_port = 5555
let kv_port = 6379

type world = {
  duo : Setup.duo;
  demi_a : Demi.t;
  demi_b : Demi.t;
  srv : Kv_app.server;
  cqd : Types.qd;
}

let make_world ~programmable ?(populate = false) () =
  let duo = Setup.two_hosts ~programmable () in
  let demi_a = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let demi_b = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  let kv = Kv.create (Demi.manager demi_b) in
  let srv =
    match
      Kv_app.start_udp_offload_server ~demi:demi_b ~port:kv_port ~kv
        ~capacity:64 ~max_value:64 ~populate ()
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "server start failed"
  in
  (match Kv_app.set_udp_peer srv (Setup.endpoint duo.Setup.a client_port) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "set_udp_peer failed");
  let cqd =
    match Demi.socket demi_a `Udp with
    | Ok qd -> qd
    | Error _ -> Alcotest.fail "client socket failed"
  in
  (match Demi.bind demi_a cqd ~port:client_port with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "client bind failed");
  (match Demi.connect demi_a cqd ~dst:(Setup.endpoint duo.Setup.b kv_port) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "client connect failed");
  { duo; demi_a; demi_b; srv; cqd }

let rpc w req =
  let sga = Dk_mem.Sga.of_strings [ Proto.udp_request_string req ] in
  match Demi.blocking_push w.demi_a w.cqd sga with
  | Types.Pushed -> (
      match Demi.blocking_pop w.demi_a w.cqd with
      | Types.Popped resp ->
          let s =
            String.concat ""
              (List.map Dk_mem.Buffer.to_string (Dk_mem.Sga.segments resp))
          in
          Dk_mem.Sga.free resp;
          s
      | _ -> Alcotest.fail "rpc: pop failed")
  | _ -> Alcotest.fail "rpc: push failed"

let test_offload_get_path () =
  reset_world ();
  let w = make_world ~programmable:true () in
  check_bool "offloaded" true (Kv_app.server_offloaded w.srv);
  (* SET goes to the host *)
  check_string "set acked" "!" (rpc w (Proto.Set ("k1", "v1")));
  (* GET misses the cold table, host answers *)
  check_string "host get" "+v1" (rpc w (Proto.Get "k1"));
  let served_before = Kv_app.requests_served w.srv in
  (* populate the device entry, then the device answers alone *)
  (match Demi.offload_insert w.demi_b "k1" "v1" with
  | Ok () -> ()
  | Error `Rejected -> Alcotest.fail "insert rejected");
  check_string "device get" "+v1" (rpc w (Proto.Get "k1"));
  check_int "host never saw the hit" served_before
    (Kv_app.requests_served w.srv);
  let s =
    match Demi.offload_stats w.demi_b with
    | Some s -> s
    | None -> Alcotest.fail "no table"
  in
  check_int "device hit counted" 1 s.Table.hits;
  (* SET updates the device entry before acking: next GET is fresh *)
  check_string "set v2" "!" (rpc w (Proto.Set ("k1", "v2")));
  check_string "updated device get" "+v2" (rpc w (Proto.Get "k1"));
  check_int "still no host GET" (served_before + 1)
    (Kv_app.requests_served w.srv);
  (* DEL invalidates: GET falls back to the host and misses *)
  check_string "del" "x" (rpc w (Proto.Del "k1"));
  check_string "get after del" "-" (rpc w (Proto.Get "k1"))

(* device-served and CPU-fallback replies are byte-identical *)
let test_device_cpu_equality () =
  let script w =
    (* exercise every response shape incl. a device/CPU-resident key *)
    ignore (rpc w (Proto.Set ("k1", "v1")));
    (match Demi.offload_insert w.demi_b "k1" "v1" with
    | Ok () | Error `Rejected -> ());
    [
      rpc w (Proto.Get "k1");
      rpc w (Proto.Get "nope");
      rpc w (Proto.Set ("k1", "v2"));
      rpc w (Proto.Get "k1");
      rpc w (Proto.Del "k1");
      rpc w (Proto.Get "k1");
    ]
  in
  reset_world ();
  let on = script (make_world ~programmable:true ()) in
  reset_world ();
  let woff = make_world ~programmable:false () in
  check_bool "fallback world not offloaded" false (Kv_app.server_offloaded woff.srv);
  let off = script woff in
  check (Alcotest.list Alcotest.string) "byte-identical replies" on off

(* cross-traffic isolation: the pipeline is scoped to the kv port; a
   bystander UDP flow on another port is delivered verbatim and never
   touches the device table, even when its payload looks like a GET
   for a device-resident key. *)
let bystander_port = 7000

let test_cross_traffic_isolation () =
  reset_world ();
  let w = make_world ~programmable:true () in
  ignore (rpc w (Proto.Set ("k1", "v1")));
  (match Demi.offload_insert w.demi_b "k1" "v1" with
  | Ok () -> ()
  | Error `Rejected -> Alcotest.fail "insert rejected");
  (* a lookup through the kv port works (sanity: table is live) *)
  check_string "kv port hit" "+v1" (rpc w (Proto.Get "k1"));
  let lookups0 =
    match Demi.offload_stats w.demi_b with
    | Some s -> s.Table.lookups
    | None -> Alcotest.fail "no table"
  in
  (* bystander server on another port of the same host *)
  let bqd =
    match Demi.socket w.demi_b `Udp with
    | Ok qd -> qd
    | Error _ -> Alcotest.fail "bystander socket"
  in
  (match Demi.bind w.demi_b bqd ~port:bystander_port with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "bystander bind");
  let got = ref [] in
  let rec pump () =
    match Demi.pop w.demi_b bqd with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch w.demi_b tok (function
          | Types.Popped sga ->
              got :=
                String.concat ""
                  (List.map Dk_mem.Buffer.to_string (Dk_mem.Sga.segments sga))
                :: !got;
              Dk_mem.Sga.free sga;
              pump ()
          | _ -> ())
  in
  pump ();
  (* second client socket talks to the bystander port *)
  let cqd2 =
    match Demi.socket w.demi_a `Udp with
    | Ok qd -> qd
    | Error _ -> Alcotest.fail "client socket 2"
  in
  (match Demi.connect w.demi_a cqd2 ~dst:(Setup.endpoint w.duo.Setup.b bystander_port) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "client connect 2");
  let send s =
    match Demi.blocking_push w.demi_a cqd2 (Dk_mem.Sga.of_strings [ s ]) with
    | Types.Pushed -> ()
    | _ -> Alcotest.fail "bystander push failed"
  in
  (* looks exactly like a GET for the resident key *)
  send "Gk1";
  send "hello";
  Engine.run w.duo.Setup.engine;
  check
    (Alcotest.list Alcotest.string)
    "delivered verbatim" [ "Gk1"; "hello" ] (List.rev !got);
  let lookups1 =
    match Demi.offload_stats w.demi_b with
    | Some s -> s.Table.lookups
    | None -> Alcotest.fail "no table"
  in
  check_int "table untouched by bystander traffic" lookups0 lookups1

(* ---------------- no stale reads under fault plans ------------------ *)

(* Open-loop: fire alternating SET/GET on a fixed cadence, drain, and
   check every Value reply against the SET ack state at the moment the
   matching GET was pushed. Replies on one UDP flow arrive FIFO (the
   fabric reorders nothing, it only drops), so a Value reply pairs with
   the oldest outstanding GET; if that GET's own reply was dropped the
   pairing is conservative (an older, smaller bound), never unsound. *)

let ver_value v = Printf.sprintf "v%06d" v

let ver_of s =
  (* "+v000123" -> 123 *)
  if String.length s >= 2 && s.[0] = '+' && s.[1] = 'v' then
    int_of_string (String.sub s 2 (String.length s - 2))
  else Alcotest.failf "unparseable value reply %S" s

let run_no_stale plan_name =
  with_plan (Some (named ~seed:42L plan_name)) @@ fun () ->
  let w = make_world ~programmable:true () in
  check_bool "offloaded" true (Kv_app.server_offloaded w.srv);
  let engine = w.duo.Setup.engine in
  (* seed version 1 on host and device before faults arm *)
  check_string "seed set" "!" (rpc w (Proto.Set ("k", ver_value 1)));
  (match Demi.offload_insert w.demi_b "k" (ver_value 1) with
  | Ok () -> ()
  | Error `Rejected -> Alcotest.fail "seed insert rejected");
  let acked = ref 1 in
  let unacked_sets = Queue.create () in
  let pending_gets = Queue.create () in
  let value_checks = ref 0 in
  let rec pump () =
    match Demi.pop w.demi_a w.cqd with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch w.demi_a tok (function
          | Types.Popped sga ->
              let s =
                String.concat ""
                  (List.map Dk_mem.Buffer.to_string (Dk_mem.Sga.segments sga))
              in
              Dk_mem.Sga.free sga;
              (if s = "!" then (
                 if not (Queue.is_empty unacked_sets) then
                   acked := max !acked (Queue.pop unacked_sets))
               else
                 let seen = ver_of s in
                 let bound =
                   if Queue.is_empty pending_gets then !acked
                   else Queue.pop pending_gets
                 in
                 incr value_checks;
                 if seen < bound then
                   Alcotest.failf
                     "stale read under %s: saw v%d after v%d was acked"
                     plan_name seen bound);
              pump ()
          | Types.Failed _ -> ()
          | _ -> ())
  in
  pump ();
  let next_ver = ref 1 in
  let push req =
    match Demi.push w.demi_a w.cqd (Dk_mem.Sga.of_strings [ Proto.udp_request_string req ]) with
    | Ok tok -> Demi.watch w.demi_a tok (fun _ -> ())
    | Error _ -> ()
  in
  (* 300 ops, 5 us apart: spans the 100-900 us flaky window and crosses
     the 200 us partition onset *)
  let t_base = Engine.now engine in
  for i = 0 to 299 do
    let at = Int64.add t_base (Int64.of_int (5_000 * (i + 1))) in
    let (_ : Engine.timer) =
      Engine.at engine at (fun () ->
          if i mod 2 = 0 then begin
            incr next_ver;
            let v = !next_ver in
            Queue.push v unacked_sets;
            push (Proto.Set ("k", ver_value v))
          end
          else begin
            Queue.push !acked pending_gets;
            push (Proto.Get "k")
          end)
    in
    ()
  done;
  Engine.run engine;
  check_bool "some GETs were answered" true (!value_checks > 0);
  (* the device actually served hits along the way *)
  match Demi.offload_stats w.demi_b with
  | Some s -> check_bool "device hits happened" true (s.Table.hits > 0)
  | None -> Alcotest.fail "no table"

let test_no_stale_partition () = run_no_stale "partition"
let test_no_stale_nic_flaky () = run_no_stale "nic-flaky"

(* ---------------- suite ---------------- *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "offload"
    [
      ( "table",
        [
          Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "lru" `Quick test_table_lru;
          Alcotest.test_case "host-managed" `Quick test_table_host_managed;
          Alcotest.test_case "update/invalidate" `Quick
            test_table_update_invalidate;
          Alcotest.test_case "deterministic" `Quick test_table_deterministic;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "footprint monotone" `Quick test_footprint_monotone;
          Alcotest.test_case "stage semantics" `Quick test_stage_semantics;
        ] );
      qsuite "pipeline-qcheck"
        [
          prop_pipeline_total;
          prop_footprint_monotone;
          prop_empty_pipeline_identity;
        ];
      ( "kv-offload",
        [
          Alcotest.test_case "device GET path" `Quick test_offload_get_path;
          Alcotest.test_case "device = CPU fallback" `Quick
            test_device_cpu_equality;
          Alcotest.test_case "cross-traffic isolation" `Quick
            test_cross_traffic_isolation;
        ] );
      ( "no-stale",
        [
          Alcotest.test_case "partition" `Quick test_no_stale_partition;
          Alcotest.test_case "nic-flaky" `Quick test_no_stale_nic_flaky;
        ] );
    ]
