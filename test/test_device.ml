(* Tests for dk_device: programs, NIC + fabric, block device, RDMA. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Prog = Dk_device.Prog
module Nic = Dk_device.Nic
module Fabric = Dk_device.Fabric
module Block = Dk_device.Block
module Rdma = Dk_device.Rdma

let cost = Cost.default

(* ---------------- Prog ---------------- *)

let prog_preds () =
  check_bool "true" true (Prog.eval_pred Prog.True "x");
  check_bool "false" false (Prog.eval_pred Prog.False "x");
  check_bool "len_ge" true (Prog.eval_pred (Prog.Len_ge 3) "abc");
  check_bool "len_ge fail" false (Prog.eval_pred (Prog.Len_ge 4) "abc");
  check_bool "byte_eq" true (Prog.eval_pred (Prog.Byte_eq (1, 'b')) "abc");
  check_bool "byte_eq oob" false (Prog.eval_pred (Prog.Byte_eq (9, 'b')) "abc");
  check_bool "byte_in" true (Prog.eval_pred (Prog.Byte_in (0, 'a', 'c')) "bcd");
  check_bool "prefix" true (Prog.eval_pred (Prog.Prefix "GET") "GET /k1");
  check_bool "prefix fail" false (Prog.eval_pred (Prog.Prefix "SET") "GET /k1");
  check_bool "all" true
    (Prog.eval_pred (Prog.All [ Prog.Len_ge 1; Prog.Prefix "G" ]) "G");
  check_bool "any" true
    (Prog.eval_pred (Prog.Any [ Prog.False; Prog.Prefix "G" ]) "G");
  check_bool "not" true (Prog.eval_pred (Prog.Not Prog.False) "")

let prog_hash_steering () =
  (* Hash_mod partitions the key space completely and deterministically:
     every payload matches exactly one of the k steering filters. *)
  let k = 4 in
  let filters =
    List.init k (fun target -> Prog.Hash_mod (0, 8, k, target))
  in
  for i = 0 to 99 do
    let payload = Printf.sprintf "key-%04d" i in
    let matches =
      List.length (List.filter (fun f -> Prog.eval_pred f payload) filters)
    in
    check_int "exactly one partition" 1 matches
  done

let prog_maps () =
  check_str "identity" "abc" (Prog.eval_map Prog.Identity "abc");
  check_str "prepend" "Habc" (Prog.eval_map (Prog.Prepend "H") "abc");
  check_str "append" "abcT" (Prog.eval_map (Prog.Append "T") "abc");
  check_str "truncate" "ab" (Prog.eval_map (Prog.Truncate 2) "abc");
  check_str "truncate long" "abc" (Prog.eval_map (Prog.Truncate 9) "abc");
  let enc = Prog.eval_map (Prog.Xor_mask 0x20) "abc" in
  check_str "xor involutive" "abc" (Prog.eval_map (Prog.Xor_mask 0x20) enc);
  check_str "chain" "[abc]"
    (Prog.eval_map (Prog.Chain [ Prog.Prepend "["; Prog.Append "]" ]) "abc")

let prog_printers () =
  let buf = Format.asprintf "%a" Prog.pp_pred
      (Prog.All [ Prog.Prefix "GET"; Prog.Not (Prog.Byte_eq (3, ' ')) ]) in
  check_bool "pred printed" true (String.length buf > 0);
  let buf2 = Format.asprintf "%a" Prog.pp_map
      (Prog.Chain [ Prog.Prepend "h"; Prog.Xor_mask 7; Prog.Truncate 9 ]) in
  check_bool "map printed" true (String.length buf2 > 0)

let prog_footprint () =
  check_int "pred footprint" 3 (Prog.filter_footprint (Prog.Prefix "GET"));
  check_bool "map footprint grows" true
    (Prog.map_footprint (Prog.Xor_mask 1) 100 = 100)

(* ---------------- NIC + Fabric ---------------- *)

let two_nics ?loss () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost ?loss () in
  let a = Nic.create ~engine ~cost ~mac:1 () in
  let b = Nic.create ~engine ~cost ~mac:2 () in
  Fabric.attach fabric a;
  Fabric.attach fabric b;
  (engine, fabric, a, b)

let nic_transmit_delivers () =
  let engine, fabric, a, b = two_nics () in
  check_bool "accepted" true (Nic.transmit a ~dst:2 "hello frame");
  Engine.run engine;
  check_int "delivered" 1 (Fabric.stats fabric).Fabric.delivered;
  (match Nic.poll_rx b with
  | Some f -> check_str "payload" "hello frame" f
  | None -> Alcotest.fail "no frame");
  let sa = Nic.stats a in
  check_int "tx count" 1 sa.Nic.tx_frames;
  check_int "tx bytes" 11 sa.Nic.tx_bytes

let nic_transmit_costs_doorbell () =
  let engine, _, a, _ = two_nics () in
  let t0 = Engine.now engine in
  ignore (Nic.transmit a ~dst:2 "x");
  let elapsed = Int64.sub (Engine.now engine) t0 in
  check Alcotest.int64 "doorbell cost only" cost.Cost.pcie_doorbell elapsed

let nic_broadcast () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost () in
  let nics = List.init 3 (fun i -> Nic.create ~engine ~cost ~mac:(i + 1) ()) in
  List.iter (Fabric.attach fabric) nics;
  (match nics with
  | a :: _ -> ignore (Nic.transmit a ~dst:Fabric.broadcast "bcast")
  | [] -> ());
  Engine.run engine;
  (* sender must not receive its own broadcast *)
  (match nics with
  | a :: rest ->
      check_bool "sender empty" true (Nic.poll_rx a = None);
      List.iter
        (fun n -> check_bool "others got it" true (Nic.poll_rx n <> None))
        rest
  | [] -> ())

let nic_rx_overflow () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost () in
  let a = Nic.create ~engine ~cost ~mac:1 () in
  let b = Nic.create ~engine ~cost ~mac:2 ~rx_capacity:2 () in
  Fabric.attach fabric a;
  Fabric.attach fabric b;
  for _ = 1 to 5 do
    ignore (Nic.transmit a ~dst:2 "f")
  done;
  Engine.run engine;
  let sb = Nic.stats b in
  check_int "kept 2" 2 sb.Nic.rx_frames;
  check_int "dropped 3" 3 sb.Nic.rx_dropped

let nic_tx_ring_full () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost () in
  let a = Nic.create ~engine ~cost ~mac:1 ~tx_capacity:1 () in
  Fabric.attach fabric a;
  check_bool "first ok" true (Nic.transmit a ~dst:2 "x");
  check_bool "second rejected" false (Nic.transmit a ~dst:2 "y");
  check_int "rejected stat" 1 (Nic.stats a).Nic.tx_rejected;
  Engine.run engine;
  check_bool "ring drained" true (Nic.transmit a ~dst:2 "z")

let nic_transmit_many_one_ring () =
  let engine, fabric, a, b = two_nics () in
  let rings0 = Nic.tx_doorbells a in
  let accepted = Nic.transmit_many a ~dst:2 [ "m1"; "m2"; "m3" ] in
  check_int "all accepted" 3 accepted;
  Engine.run engine;
  check_int "one ring" 1 (Nic.tx_doorbells a - rings0);
  check_int "delivered" 3 (Fabric.stats fabric).Fabric.delivered;
  List.iter
    (fun expect ->
      match Nic.poll_rx b with
      | Some f -> check_str "frame order" expect f
      | None -> Alcotest.fail "missing frame")
    [ "m1"; "m2"; "m3" ]

let nic_window_coalesces_rings () =
  let engine, fabric, a, b = two_nics () in
  Nic.set_tx_window a 500L;
  let rings0 = Nic.tx_doorbells a in
  for i = 1 to 4 do
    check_bool "accepted" true (Nic.transmit a ~dst:2 (Printf.sprintf "w%d" i))
  done;
  Engine.run engine;
  check_int "one coalesced ring" 1 (Nic.tx_doorbells a - rings0);
  check_int "all delivered" 4 (Fabric.stats fabric).Fabric.delivered;
  List.iter
    (fun i ->
      match Nic.poll_rx b with
      | Some f -> check_str "frame order" (Printf.sprintf "w%d" i) f
      | None -> Alcotest.fail "missing frame")
    [ 1; 2; 3; 4 ];
  (* back to window 0: the very next transmit rings immediately *)
  Nic.set_tx_window a 0L;
  ignore (Nic.transmit a ~dst:2 "solo");
  check_int "per-frame ring" 2 (Nic.tx_doorbells a - rings0)

let fabric_loss () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost ~loss:1.0 () in
  let a = Nic.create ~engine ~cost ~mac:1 () in
  let b = Nic.create ~engine ~cost ~mac:2 () in
  Fabric.attach fabric a;
  Fabric.attach fabric b;
  ignore (Nic.transmit a ~dst:2 "doomed");
  Engine.run engine;
  check_int "lost" 1 (Fabric.stats fabric).Fabric.lost;
  check_bool "nothing arrived" true (Nic.poll_rx b = None)

let fabric_unrouted () =
  let engine, fabric, a, _ = two_nics () in
  ignore (Nic.transmit a ~dst:99 "nowhere");
  Engine.run engine;
  check_int "unrouted" 1 (Fabric.stats fabric).Fabric.unrouted

let fabric_duplicate_mac () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost () in
  let a = Nic.create ~engine ~cost ~mac:1 () in
  let b = Nic.create ~engine ~cost ~mac:1 () in
  Fabric.attach fabric a;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Fabric.attach: duplicate MAC") (fun () ->
      Fabric.attach fabric b)

let nic_rx_notify () =
  let engine, _, a, b = two_nics () in
  let notified = ref 0 in
  Nic.set_rx_notify b (fun () -> incr notified);
  ignore (Nic.transmit a ~dst:2 "one");
  ignore (Nic.transmit a ~dst:2 "two");
  Engine.run engine;
  check_int "two notifications" 2 !notified

let nic_programmable_filter () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost () in
  let a = Nic.create ~engine ~cost ~mac:1 () in
  let b = Nic.create ~engine ~cost ~mac:2 ~programmable:true () in
  Fabric.attach fabric a;
  Fabric.attach fabric b;
  check_bool "set filter ok" true
    (Nic.set_rx_filter b (Some (Prog.Prefix "KEEP")) = Ok ());
  ignore (Nic.transmit a ~dst:2 "KEEP me");
  ignore (Nic.transmit a ~dst:2 "DROP me");
  Engine.run engine;
  let sb = Nic.stats b in
  check_int "one kept" 1 sb.Nic.rx_frames;
  check_int "one filtered" 1 sb.Nic.rx_filtered;
  (match Nic.poll_rx b with
  | Some f -> check_str "the kept one" "KEEP me" f
  | None -> Alcotest.fail "expected frame")

let nic_programmable_map () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost () in
  let a = Nic.create ~engine ~cost ~mac:1 () in
  let b = Nic.create ~engine ~cost ~mac:2 ~programmable:true () in
  Fabric.attach fabric a;
  Fabric.attach fabric b;
  ignore (Nic.set_rx_map b (Some (Prog.Prepend "HDR:")));
  ignore (Nic.transmit a ~dst:2 "body");
  Engine.run engine;
  (match Nic.poll_rx b with
  | Some f -> check_str "mapped" "HDR:body" f
  | None -> Alcotest.fail "expected frame");
  check_int "mapped stat" 1 (Nic.stats b).Nic.rx_mapped

let nic_not_programmable () =
  let engine = Engine.create () in
  let a = Nic.create ~engine ~cost ~mac:1 () in
  check_bool "filter refused" true
    (Nic.set_rx_filter a (Some Prog.True) = Error `Not_programmable);
  check_bool "map refused" true
    (Nic.set_rx_map a (Some Prog.Identity) = Error `Not_programmable)

(* ---------------- Block ---------------- *)

let block_write_read () =
  let engine = Engine.create () in
  let d = Block.create ~engine ~cost ~block_size:512 ~block_count:64 () in
  check_bool "write ok" true (Block.submit_write d ~wr_id:1 ~lba:3 "hello");
  Engine.run engine;
  (match Block.poll_cq d with
  | Some c ->
      check_int "write wr_id" 1 c.Block.wr_id;
      check_bool "write ok status" true (c.Block.status = `Ok)
  | None -> Alcotest.fail "no write completion");
  check_bool "read ok" true (Block.submit_read d ~wr_id:2 ~lba:3);
  Engine.run engine;
  match Block.poll_cq d with
  | Some { Block.wr_id = 2; status = `Ok; data = Some data } ->
      check_str "padded read" ("hello" ^ String.make 507 '\000') data
  | _ -> Alcotest.fail "bad read completion"

let block_read_unwritten_zeros () =
  let engine = Engine.create () in
  let d = Block.create ~engine ~cost ~block_size:16 () in
  ignore (Block.submit_read d ~wr_id:1 ~lba:0);
  Engine.run engine;
  match Block.poll_cq d with
  | Some { Block.data = Some data; _ } ->
      check_str "zeros" (String.make 16 '\000') data
  | _ -> Alcotest.fail "no completion"

let block_bad_lba () =
  let engine = Engine.create () in
  let d = Block.create ~engine ~cost ~block_count:4 () in
  ignore (Block.submit_read d ~wr_id:9 ~lba:100);
  Engine.run engine;
  match Block.poll_cq d with
  | Some c -> check_bool "bad lba" true (c.Block.status = `Bad_lba)
  | None -> Alcotest.fail "no completion"

let block_sq_full () =
  let engine = Engine.create () in
  let d = Block.create ~engine ~cost ~sq_depth:2 () in
  check_bool "1" true (Block.submit_read d ~wr_id:1 ~lba:0);
  check_bool "2" true (Block.submit_read d ~wr_id:2 ~lba:1);
  check_bool "3 rejected" false (Block.submit_read d ~wr_id:3 ~lba:2);
  check_int "rejected stat" 1 (Block.stats d).Block.rejected;
  Engine.run engine;
  check_int "completions" 2 (Block.cq_pending d)

let block_write_too_big () =
  let engine = Engine.create () in
  let d = Block.create ~engine ~cost ~block_size:8 () in
  Alcotest.check_raises "oversize"
    (Invalid_argument "Block.submit_write: data exceeds block size")
    (fun () -> ignore (Block.submit_write d ~wr_id:1 ~lba:0 "123456789"))

let block_latency_model () =
  let engine = Engine.create () in
  let d = Block.create ~engine ~cost ~block_size:4096 () in
  ignore (Block.submit_write d ~wr_id:1 ~lba:0 "data");
  let t0 = Engine.now engine in
  Engine.run engine;
  let elapsed = Int64.sub (Engine.now engine) t0 in
  check_bool "write latency >= nvme_write" true
    (Int64.compare elapsed cost.Cost.nvme_write >= 0)

let block_programmable_write_prog () =
  let engine = Engine.create () in
  let d = Block.create ~engine ~cost ~block_size:64 ~programmable:true () in
  ignore (Block.set_write_prog d (Some (Prog.Xor_mask 0x5a)));
  ignore (Block.submit_write d ~wr_id:1 ~lba:0 "secret");
  Engine.run engine;
  ignore (Block.poll_cq d);
  (* read without the read program: ciphertext on flash *)
  ignore (Block.submit_read d ~wr_id:2 ~lba:0);
  Engine.run engine;
  (match Block.poll_cq d with
  | Some { Block.data = Some data; _ } ->
      check_bool "stored encrypted" true
        (not (String.equal (String.sub data 0 6) "secret"))
  | _ -> Alcotest.fail "read1");
  (* with the matching read program: plaintext back *)
  ignore (Block.set_read_prog d (Some (Prog.Xor_mask 0x5a)));
  ignore (Block.submit_read d ~wr_id:3 ~lba:0);
  Engine.run engine;
  match Block.poll_cq d with
  | Some { Block.data = Some data; _ } ->
      check_str "decrypted" "secret" (String.sub data 0 6)
  | _ -> Alcotest.fail "read2"

let block_not_programmable () =
  let engine = Engine.create () in
  let d = Block.create ~engine ~cost () in
  check_bool "write prog refused" true
    (Block.set_write_prog d (Some Prog.Identity) = Error `Not_programmable);
  check_bool "read prog refused" true
    (Block.set_read_prog d (Some Prog.Identity) = Error `Not_programmable)

(* ---------------- RDMA ---------------- *)

let rdma_pair ?(registered = fun _ -> true) () =
  let engine = Engine.create () in
  let nic = Rdma.create ~engine ~cost ~is_registered:registered () in
  let qa = Rdma.create_qp nic in
  let qb = Rdma.create_qp nic in
  Rdma.connect qa qb;
  (engine, nic, qa, qb)

let mgr = Dk_mem.Manager.create ()

let rdma_send_recv () =
  let engine, _, qa, qb = rdma_pair () in
  let recv_buf = Dk_mem.Manager.alloc_exn mgr 4096 in
  Rdma.post_recv qb ~wr_id:100 recv_buf;
  let sga = Option.get (Dk_mem.Manager.sga_of_string mgr "rdma payload") in
  Rdma.post_send qa ~wr_id:1 sga;
  Engine.run engine;
  (match Rdma.poll_recv_cq qb with
  | Some { Rdma.wr_id = 100; status = `Ok; len; buffer = Some b } ->
      check_int "length" 12 len;
      check_str "payload" "rdma payload"
        (Bytes.sub_string (Dk_mem.Buffer.store b) (Dk_mem.Buffer.off b) len)
  | _ -> Alcotest.fail "bad recv completion");
  match Rdma.poll_send_cq qa with
  | Some { Rdma.status = `Ok; _ } -> ()
  | _ -> Alcotest.fail "bad send completion"

let rdma_rnr () =
  (* No posted receive: the sender learns about it (§2's "allocating too
     few buffers causes communication to fail"). *)
  let engine, nic, qa, _ = rdma_pair () in
  let sga = Option.get (Dk_mem.Manager.sga_of_string mgr "no receiver") in
  Rdma.post_send qa ~wr_id:2 sga;
  Engine.run engine;
  (match Rdma.poll_send_cq qa with
  | Some { Rdma.status = `Rnr; _ } -> ()
  | _ -> Alcotest.fail "expected RNR");
  check_int "rnr counted" 1 (Rdma.stats nic).Rdma.rnr_events

let rdma_requires_registration () =
  let engine, nic, qa, qb = rdma_pair ~registered:(fun _ -> false) () in
  let recv_buf = Dk_mem.Manager.alloc_exn mgr 4096 in
  Rdma.post_recv qb ~wr_id:1 recv_buf;
  let sga = Dk_mem.Sga.of_string "unregistered" in
  Rdma.post_send qa ~wr_id:3 sga;
  Engine.run engine;
  (match Rdma.poll_send_cq qa with
  | Some { Rdma.status = `Not_registered; _ } -> ()
  | _ -> Alcotest.fail "expected registration failure");
  check_int "failure counted" 1 (Rdma.stats nic).Rdma.registration_failures

let rdma_buffer_too_small () =
  let engine, _, qa, qb = rdma_pair () in
  let recv_buf = Dk_mem.Manager.alloc_exn mgr 4 in
  Rdma.post_recv qb ~wr_id:5 recv_buf;
  let sga = Option.get (Dk_mem.Manager.sga_of_string mgr "way too long for that") in
  Rdma.post_send qa ~wr_id:6 sga;
  Engine.run engine;
  match Rdma.poll_send_cq qa with
  | Some { Rdma.status = `Too_long; _ } -> ()
  | _ -> Alcotest.fail "expected Too_long"

let rdma_not_connected () =
  let engine = Engine.create () in
  let nic = Rdma.create ~engine ~cost ~is_registered:(fun _ -> true) () in
  let q = Rdma.create_qp nic in
  Rdma.post_send q ~wr_id:7 (Dk_mem.Sga.of_string "x");
  match Rdma.poll_send_cq q with
  | Some { Rdma.status = `Not_connected; _ } -> ()
  | _ -> Alcotest.fail "expected Not_connected"

let rdma_free_protection () =
  (* Freeing the send buffer mid-flight must not corrupt the transfer:
     the buffer release defers until the NIC's DMA completes. *)
  let engine, _, qa, qb = rdma_pair () in
  let recv_buf = Dk_mem.Manager.alloc_exn mgr 4096 in
  Rdma.post_recv qb ~wr_id:1 recv_buf;
  let sga = Option.get (Dk_mem.Manager.sga_of_string mgr "protected") in
  Rdma.post_send qa ~wr_id:8 sga;
  (* App frees immediately — paper: "applications can free buffers while
     they are in use by a device". *)
  Dk_mem.Sga.free sga;
  Engine.run engine;
  match Rdma.poll_recv_cq qb with
  | Some { Rdma.status = `Ok; len; _ } -> check_int "payload intact" 9 len
  | _ -> Alcotest.fail "transfer failed"

let rdma_ordering () =
  let engine, _, qa, qb = rdma_pair () in
  for i = 1 to 5 do
    let buf = Dk_mem.Manager.alloc_exn mgr 64 in
    Rdma.post_recv qb ~wr_id:i buf
  done;
  for i = 1 to 5 do
    let sga = Option.get (Dk_mem.Manager.sga_of_string mgr (Printf.sprintf "msg%d" i)) in
    Rdma.post_send qa ~wr_id:i sga
  done;
  Engine.run engine;
  (* RC ordering: messages land in posted-receive order *)
  for i = 1 to 5 do
    match Rdma.poll_recv_cq qb with
    | Some { Rdma.wr_id; status = `Ok; buffer = Some b; len; _ } ->
        check_int "wr order" i wr_id;
        check_str "content order"
          (Printf.sprintf "msg%d" i)
          (Bytes.sub_string (Dk_mem.Buffer.store b) (Dk_mem.Buffer.off b) len)
    | _ -> Alcotest.fail "missing completion"
  done

let rdma_post_send_many_one_ring () =
  let engine, nic, qa, qb = rdma_pair () in
  for i = 1 to 3 do
    Rdma.post_recv qb ~wr_id:i (Dk_mem.Manager.alloc_exn mgr 64)
  done;
  let rings0 = Rdma.tx_doorbells nic in
  Rdma.post_send_many qa
    (List.init 3 (fun i ->
         (i + 1, Dk_mem.Sga.of_string (Printf.sprintf "batch%d" (i + 1)))));
  Engine.run engine;
  check_int "one ring" 1 (Rdma.tx_doorbells nic - rings0);
  for i = 1 to 3 do
    (match Rdma.poll_recv_cq qb with
    | Some { Rdma.status = `Ok; len; buffer = Some b; _ } ->
        check_str "content order"
          (Printf.sprintf "batch%d" i)
          (Bytes.sub_string (Dk_mem.Buffer.store b) (Dk_mem.Buffer.off b) len)
    | _ -> Alcotest.fail "missing recv completion");
    match Rdma.poll_send_cq qa with
    | Some { Rdma.wr_id; status = `Ok; _ } -> check_int "send wr order" i wr_id
    | _ -> Alcotest.fail "missing send completion"
  done

(* ---- one-sided operations ---- *)

let rdma_one_sided_read () =
  let engine, _, qa, qb = rdma_pair () in
  (* B exposes a window containing data; A reads it with no B-side CPU *)
  let window = Dk_mem.Manager.alloc_exn mgr 4096 in
  Dk_mem.Buffer.blit_from_string "remote contents here" 0 window 0 20;
  check_bool "expose ok" true (Rdma.expose_window qb window = Ok ());
  let dst = Dk_mem.Manager.alloc_exn mgr 64 in
  Rdma.post_read qa ~wr_id:11 ~remote_off:7 ~len:8 dst;
  Engine.run engine;
  (match Rdma.poll_send_cq qa with
  | Some { Rdma.wr_id = 11; status = `Ok; _ } -> ()
  | _ -> Alcotest.fail "read completion");
  check_str "read bytes" "contents"
    (Bytes.sub_string (Dk_mem.Buffer.store dst) (Dk_mem.Buffer.off dst) 8)

let rdma_one_sided_write () =
  let engine, _, qa, qb = rdma_pair () in
  let window = Dk_mem.Manager.alloc_exn mgr 4096 in
  ignore (Rdma.expose_window qb window);
  let sga = Option.get (Dk_mem.Manager.sga_of_string mgr "pushed remotely") in
  Rdma.post_write qa ~wr_id:12 ~remote_off:100 sga;
  Engine.run engine;
  (match Rdma.poll_send_cq qa with
  | Some { Rdma.wr_id = 12; status = `Ok; _ } -> ()
  | _ -> Alcotest.fail "write completion");
  check_str "window updated" "pushed remotely"
    (Bytes.sub_string (Dk_mem.Buffer.store window)
       (Dk_mem.Buffer.off window + 100) 15)

let rdma_one_sided_no_window () =
  let engine, _, qa, _ = rdma_pair () in
  let dst = Dk_mem.Manager.alloc_exn mgr 64 in
  Rdma.post_read qa ~wr_id:13 ~remote_off:0 ~len:8 dst;
  Engine.run engine;
  match Rdma.poll_send_cq qa with
  | Some { Rdma.status = `Rkey; _ } -> ()
  | _ -> Alcotest.fail "expected Rkey error"

let rdma_one_sided_out_of_range () =
  let engine, _, qa, qb = rdma_pair () in
  let window = Dk_mem.Manager.alloc_exn mgr 64 in
  ignore (Rdma.expose_window qb window);
  let dst = Dk_mem.Manager.alloc_exn mgr 128 in
  Rdma.post_read qa ~wr_id:14 ~remote_off:60 ~len:8 dst;
  Engine.run engine;
  match Rdma.poll_send_cq qa with
  | Some { Rdma.status = `Rkey; _ } -> ()
  | _ -> Alcotest.fail "expected range check"

let rdma_window_requires_registration () =
  let _, _, _, qb = rdma_pair ~registered:(fun _ -> false) () in
  let window = Dk_mem.Sga.of_string "unregistered" in
  match Dk_mem.Sga.segments window with
  | [ buf ] ->
      check_bool "refused" true (Rdma.expose_window qb buf = Error `Not_registered)
  | _ -> Alcotest.fail "setup"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let prog_filter_total =
  QCheck.Test.make ~name:"filters are total on arbitrary payloads" ~count:300
    QCheck.(pair small_string (int_bound 3))
    (fun (payload, pick) ->
      let f =
        match pick with
        | 0 -> Prog.Prefix "GET"
        | 1 -> Prog.Hash_mod (0, 16, 7, 3)
        | 2 -> Prog.All [ Prog.Len_ge 2; Prog.Byte_in (0, 'a', 'z') ]
        | _ -> Prog.Not (Prog.Byte_eq (5, 'x'))
      in
      let (_ : bool) = Prog.eval_pred f payload in
      true)

let prog_map_preserves_or_changes_len =
  QCheck.Test.make ~name:"xor mask is an involution" ~count:300
    QCheck.(pair small_string (int_bound 255))
    (fun (payload, k) ->
      String.equal payload
        (Prog.eval_map (Prog.Xor_mask k) (Prog.eval_map (Prog.Xor_mask k) payload)))

let () =
  Alcotest.run "dk_device"
    [
      ( "prog",
        [
          Alcotest.test_case "predicates" `Quick prog_preds;
          Alcotest.test_case "hash steering partitions" `Quick prog_hash_steering;
          Alcotest.test_case "maps" `Quick prog_maps;
          Alcotest.test_case "footprints" `Quick prog_footprint;
          Alcotest.test_case "printers" `Quick prog_printers;
        ] );
      qsuite "prog-props" [ prog_filter_total; prog_map_preserves_or_changes_len ];
      ( "nic",
        [
          Alcotest.test_case "transmit delivers" `Quick nic_transmit_delivers;
          Alcotest.test_case "doorbell cost" `Quick nic_transmit_costs_doorbell;
          Alcotest.test_case "broadcast" `Quick nic_broadcast;
          Alcotest.test_case "rx overflow" `Quick nic_rx_overflow;
          Alcotest.test_case "tx ring full" `Quick nic_tx_ring_full;
          Alcotest.test_case "transmit_many one ring" `Quick
            nic_transmit_many_one_ring;
          Alcotest.test_case "tx window coalesces" `Quick
            nic_window_coalesces_rings;
          Alcotest.test_case "rx notify" `Quick nic_rx_notify;
          Alcotest.test_case "programmable filter" `Quick nic_programmable_filter;
          Alcotest.test_case "programmable map" `Quick nic_programmable_map;
          Alcotest.test_case "not programmable" `Quick nic_not_programmable;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "loss" `Quick fabric_loss;
          Alcotest.test_case "unrouted" `Quick fabric_unrouted;
          Alcotest.test_case "duplicate mac" `Quick fabric_duplicate_mac;
        ] );
      ( "block",
        [
          Alcotest.test_case "write/read" `Quick block_write_read;
          Alcotest.test_case "unwritten zeros" `Quick block_read_unwritten_zeros;
          Alcotest.test_case "bad lba" `Quick block_bad_lba;
          Alcotest.test_case "sq full" `Quick block_sq_full;
          Alcotest.test_case "write too big" `Quick block_write_too_big;
          Alcotest.test_case "latency model" `Quick block_latency_model;
          Alcotest.test_case "programmable write prog" `Quick block_programmable_write_prog;
          Alcotest.test_case "not programmable" `Quick block_not_programmable;
        ] );
      ( "rdma",
        [
          Alcotest.test_case "send/recv" `Quick rdma_send_recv;
          Alcotest.test_case "rnr" `Quick rdma_rnr;
          Alcotest.test_case "registration required" `Quick rdma_requires_registration;
          Alcotest.test_case "buffer too small" `Quick rdma_buffer_too_small;
          Alcotest.test_case "not connected" `Quick rdma_not_connected;
          Alcotest.test_case "free-protection" `Quick rdma_free_protection;
          Alcotest.test_case "ordering" `Quick rdma_ordering;
          Alcotest.test_case "post_send_many one ring" `Quick
            rdma_post_send_many_one_ring;
          Alcotest.test_case "one-sided read" `Quick rdma_one_sided_read;
          Alcotest.test_case "one-sided write" `Quick rdma_one_sided_write;
          Alcotest.test_case "read without window" `Quick rdma_one_sided_no_window;
          Alcotest.test_case "read out of range" `Quick rdma_one_sided_out_of_range;
          Alcotest.test_case "window registration" `Quick rdma_window_requires_registration;
        ] );
    ]
