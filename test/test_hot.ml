(* Tests for the dk-hot interprocedural cost analysis.

   The fixture corpus is the contract, analyzed as ONE program because
   the rules are cross-file: bad_alloc_chain.ml is charged for a
   string append that lives in good_chain_helper.ml. Every
   [(* FLAG rule *)] marker names a finding on exactly that line, and
   per file the two (line, rule) sets must match exactly. On top of
   the corpus, unit tests pin down the cost-specific engine behavior:
   by-name roots, cross-file chains, the exemption being local to the
   annotated function, static-closure precision, and the allowlist
   contract every dk-* driver shares. *)

let fixture_dir = "../tools/hot/fixtures"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixtures prefix =
  Sys.readdir fixture_dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > String.length prefix
         && String.sub f 0 (String.length prefix) = prefix
         && Filename.check_suffix f ".ml")
  |> List.sort compare

(* [(* FLAG rule ... *)] markers: expected (line, rule) pairs. *)
let expected_flags src =
  let re = Str.regexp "(\\* FLAG \\([a-z- ]+\\)\\*)" in
  let out = ref [] in
  List.iteri
    (fun i line ->
      try
        ignore (Str.search_forward re line 0);
        let rules = String.trim (Str.matched_group 1 line) in
        List.iter
          (fun r -> out := (i + 1, r) :: !out)
          (String.split_on_char ' ' rules)
      with Not_found -> ())
    (String.split_on_char '\n' src);
  List.sort compare !out

(* The whole corpus, analyzed once as a single program. *)
let corpus_findings =
  lazy
    (let files = Tool_common.ml_files [ fixture_dir ] in
     let prog =
       Hot_engine.analyze_files (List.map (fun f -> (f, read_file f)) files)
     in
     Hot_engine.findings prog)

let findings_for file =
  Lazy.force corpus_findings
  |> List.filter (fun f -> Filename.basename f.Tool_common.path = file)
  |> List.map (fun f -> (f.Tool_common.line, f.Tool_common.rule))
  |> List.sort compare

let pair_list = Alcotest.(list (pair int string))

let bad_fixture_exact file () =
  let expected = expected_flags (read_file (Filename.concat fixture_dir file)) in
  Alcotest.(check bool)
    "fixture seeds at least one violation" true
    (expected <> []);
  Alcotest.check pair_list "every seeded violation flagged, nothing else"
    expected (findings_for file)

let good_fixture_clean file () =
  Lazy.force corpus_findings
  |> List.filter (fun f -> Filename.basename f.Tool_common.path = file)
  |> List.iter (fun f ->
         Printf.printf "unexpected: %s\n" (Tool_common.pp_finding f));
  Alcotest.check pair_list "clean fixture has zero findings" []
    (findings_for file)

let all_rule_families_covered () =
  let rules =
    Lazy.force corpus_findings
    |> List.map (fun f -> f.Tool_common.rule)
    |> List.sort_uniq compare
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " covered by corpus") true (List.mem r rules))
    [ "hot-alloc"; "hot-complexity"; "hot-poly"; "hot-annotation" ]

(* ---------------- engine behaviors ---------------- *)

let analyze name src = Hot_engine.analyze_files [ (name, src) ]
let rules fs = List.sort_uniq compare (List.map (fun f -> f.Tool_common.rule) fs)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let surface_rooted_by_name () =
  (* Nic.receive is on the per-op surface by (module, name), no
     attribute needed; the tuple it builds is charged to it *)
  let prog = analyze "nic.ml" "let receive t frame = (t, frame)\n" in
  let fs = Hot_engine.findings prog in
  Alcotest.(check (list string)) "one hot-alloc" [ "hot-alloc" ] (rules fs);
  Alcotest.(check int) "at the root definition" 1 (List.hd fs).Tool_common.line;
  match Hot_engine.inventory prog with
  | [ r ] ->
      Alcotest.(check string) "kind is rx-delivery" "rx-delivery"
        r.Hot_engine.r_kind
  | inv ->
      Alcotest.fail (Printf.sprintf "expected one root, got %d" (List.length inv))

let cross_file_chain_charged_at_root () =
  let prog =
    Hot_engine.analyze_files
      [
        ("render.ml", "let label n = string_of_int n ^ \"!\"\n");
        ("pump.ml", "let deliver n = ignore (Render.label n)\n[@@hot]\n");
      ]
  in
  let fs = Hot_engine.findings prog in
  Alcotest.(check (list string)) "one hot-alloc" [ "hot-alloc" ] (rules fs);
  let f = List.hd fs in
  Alcotest.(check string) "reported in the root's file" "pump.ml"
    f.Tool_common.path;
  Alcotest.(check bool) "chain crosses the module boundary" true
    (contains ~sub:"Render.label" f.Tool_common.message
    && contains ~sub:"^" f.Tool_common.message)

let annotation_exempts_own_allocs_only () =
  (* [@@hot.alloc] strips the annotated function's own allocations;
     its callees' allocations still propagate to the root *)
  let prog =
    analyze "ann.ml"
      "let pair a b = (a, b)\n\
       let emit a b = (fst (pair a b), 0)\n\
       [@@hot.alloc \"the handle pair is the API's return surface\"]\n\
       let push a b = ignore (emit a b)\n\
       [@@hot]\n"
  in
  let fs = Hot_engine.findings prog in
  Alcotest.(check (list string)) "one hot-alloc" [ "hot-alloc" ] (rules fs);
  let f = List.hd fs in
  Alcotest.(check int) "at the root, not the annotated hop" 4
    f.Tool_common.line;
  Alcotest.(check bool) "witness is the unannotated callee" true
    (contains ~sub:"Ann.pair" f.Tool_common.message)

let capture_free_lambda_is_static () =
  (* a lambda with no captures is a static closure, allocated once at
     module init: only the capturing one is charged *)
  let prog =
    analyze "cb.ml"
      "let register cb = ignore cb\n\
       let step t = register (fun x -> x + t)\n\
       [@@hot]\n\
       let idle () = register (fun x -> x + 1)\n\
       [@@hot]\n"
  in
  let fs = Hot_engine.findings prog in
  Alcotest.(check (list string)) "one hot-alloc" [ "hot-alloc" ] (rules fs);
  Alcotest.(check int) "only the capturing lambda's root" 2
    (List.hd fs).Tool_common.line

let one_finding_per_family_per_root () =
  (* two distinct allocations under one root collapse into a single
     hot-alloc diagnostic: the budget is the root's *)
  let prog =
    analyze "many.ml"
      "let a x = [ x ]\n\
       let b x = (x, x)\n\
       let push x = ignore (a x); ignore (b x)\n\
       [@@hot]\n"
  in
  Alcotest.(check int) "one finding" 1
    (List.length (Hot_engine.findings prog))

let inventory_lists_roots () =
  let prog = analyze "demi.ml" "let pop t = t\nlet spin t = t\n[@@hot]\n" in
  let inv = Hot_engine.inventory prog in
  Alcotest.(check int) "two roots" 2 (List.length inv);
  let kinds = List.map (fun r -> r.Hot_engine.r_kind) inv in
  Alcotest.(check bool) "table root and attribute root" true
    (List.mem "demi-api" kinds && List.mem "annotated" kinds);
  Alcotest.(check bool) "json carries the kind" true
    (contains ~sub:"\"demi-api\"" (Hot_engine.inventory_json inv));
  Alcotest.(check bool) "table carries the key" true
    (contains ~sub:"Demi.spin" (Hot_engine.inventory_table inv))

let parse_error_reported () =
  let fs = Hot_engine.findings (analyze "broken.ml" "let f = (\n") in
  Alcotest.(check (list string)) "parse-error finding" [ "parse-error" ]
    (rules fs)

let scan_dirs_walks_fixtures () =
  let _, n = Hot_engine.scan_dirs [ fixture_dir ] in
  Alcotest.(check int) "scans every fixture"
    (List.length (fixtures "bad_") + List.length (fixtures "good_"))
    n

(* ---------------- allowlist contract ---------------- *)

(* One copy of the allowlist semantics serves all four dk-* tools
   (Tool_common.run_driver): a matching entry suppresses, a stale
   entry is reported back and fails the run. Exercised here against
   real dk-hot corpus findings. *)
let allowlist_suppresses_and_reports_stale () =
  let findings = Lazy.force corpus_findings in
  let victim =
    List.find (fun f -> f.Tool_common.rule = "hot-alloc") findings
  in
  let allow =
    [
      {
        Tool_common.a_rule = "hot-alloc";
        a_path = victim.Tool_common.path;
        used = false;
      };
      { Tool_common.a_rule = "hot-poly"; a_path = "lib/gone.ml"; used = false };
    ]
  in
  let kept, stale = Tool_common.apply_allowlist allow findings in
  Alcotest.(check bool) "covered findings suppressed" true
    (not
       (List.exists
          (fun f ->
            f.Tool_common.rule = "hot-alloc"
            && f.Tool_common.path = victim.Tool_common.path)
          kept));
  Alcotest.(check (list string)) "the dead entry is stale" [ "hot-poly" ]
    (List.map (fun e -> e.Tool_common.a_rule) stale)

let shipped_allowlist_is_empty () =
  (* the acceptance bar for this tool: real findings get fixed or
     classified at the allocation site, never allowlisted away *)
  Alcotest.(check int) "dk-hot ships with an empty allowlist" 0
    (List.length (Tool_common.load_allowlist "../tools/hot/allowlist.txt"))

let () =
  let corpus_bad =
    List.map
      (fun f -> Alcotest.test_case f `Quick (bad_fixture_exact f))
      (fixtures "bad_")
  in
  let corpus_good =
    List.map
      (fun f -> Alcotest.test_case f `Quick (good_fixture_clean f))
      (fixtures "good_")
  in
  Alcotest.run "dk-hot"
    [
      ("bad fixtures (exact flag match)", corpus_bad);
      ("good fixtures (zero findings)", corpus_good);
      ( "engine",
        [
          Alcotest.test_case "all four rule families covered" `Quick
            all_rule_families_covered;
          Alcotest.test_case "surface rooted by name" `Quick
            surface_rooted_by_name;
          Alcotest.test_case "cross-file chain at root" `Quick
            cross_file_chain_charged_at_root;
          Alcotest.test_case "annotation exempts own allocs only" `Quick
            annotation_exempts_own_allocs_only;
          Alcotest.test_case "capture-free lambda is static" `Quick
            capture_free_lambda_is_static;
          Alcotest.test_case "one finding per family per root" `Quick
            one_finding_per_family_per_root;
          Alcotest.test_case "inventory lists roots" `Quick
            inventory_lists_roots;
          Alcotest.test_case "parse error reported" `Quick parse_error_reported;
          Alcotest.test_case "scan_dirs walks fixtures" `Quick
            scan_dirs_walks_fixtures;
        ] );
      ( "allowlist contract",
        [
          Alcotest.test_case "suppresses and reports stale" `Quick
            allowlist_suppresses_and_reports_stale;
          Alcotest.test_case "shipped allowlist is empty" `Quick
            shipped_allowlist_is_empty;
        ] );
    ]
