(* Multi-shard datapath runtime tests.

   The invariants pinned here are the ones the tentpole promises:
   - N=1 under the group scheduler is bit-identical to the plain
     single-engine loop (same workload, same metrics snapshot).
   - A fixed (seed, N, xfrac) replays byte-identically.
   - The cross-shard mailbox is FIFO, bounded (backpressure, never
     loss), and never drops or duplicates — including under every
     named fault plan, because faults live inside a shard's domain
     while the mailbox rides the virtual clock directly. *)

module Engine = Dk_sim.Engine
module Histogram = Dk_sim.Histogram
module Metrics = Dk_obs.Metrics
module Fault = Dk_fault.Fault
module Xmailbox = Dk_shard_rt.Xmailbox
module Runtime = Dk_shard_rt.Runtime
module Shard = Dk_shard_rt.Shard

let hist_sig h =
  ( Histogram.count h,
    Histogram.mean h,
    Histogram.min h,
    Histogram.max h,
    List.map (Histogram.quantile h) [ 0.5; 0.9; 0.99; 0.999 ] )

let stats_sig (s : Runtime.stats) =
  ( s.Runtime.total_ops,
    s.Runtime.total_remote,
    s.Runtime.wall_ns,
    Array.to_list
      (Array.map
         (fun p ->
           ( p.Runtime.shard,
             p.Runtime.flow_count,
             p.Runtime.op_count,
             p.Runtime.remote_count,
             p.Runtime.elapsed_ns,
             hist_sig p.Runtime.latency ))
         s.Runtime.per_shard) )

(* Full observable state of a run: the workload stats plus the whole
   default-registry snapshot (counters, gauges, hist summaries). *)
let run_echo_observed ?drive ~n ~xfrac ~seed ~flows ~rounds () =
  Metrics.reset Metrics.default;
  let t = Runtime.create ~n ~xfrac ~seed () in
  let stats = Runtime.run_echo ?drive t ~flows ~size:64 ~rounds in
  let snap = Metrics.snapshot Metrics.default in
  (stats_sig stats, snap.Metrics.counters, snap.Metrics.gauges,
   List.map
     (fun (name, hs) ->
       ( name,
         hs.Metrics.hs_count,
         hs.Metrics.hs_mean,
         hs.Metrics.hs_p50,
         hs.Metrics.hs_p99,
         hs.Metrics.hs_max ))
     snap.Metrics.hists)

(* ---- N=1 group scheduler == plain single-engine loop ---- *)

let test_n1_identity () =
  let grouped = run_echo_observed ~n:1 ~xfrac:0.0 ~seed:7L ~flows:4 ~rounds:32 () in
  let plain =
    run_echo_observed
      ~drive:(fun es -> Engine.run es.(0))
      ~n:1 ~xfrac:0.0 ~seed:7L ~flows:4 ~rounds:32 ()
  in
  Alcotest.(check bool) "group N=1 identical to Engine.run" true (grouped = plain)

(* ---- same (seed, N) replays byte-identically ---- *)

let test_replay_identity_n4 () =
  let a = run_echo_observed ~n:4 ~xfrac:0.2 ~seed:99L ~flows:12 ~rounds:24 () in
  let b = run_echo_observed ~n:4 ~xfrac:0.2 ~seed:99L ~flows:12 ~rounds:24 () in
  Alcotest.(check bool) "N=4 replay identical" true (a = b)

let test_seed_changes_schedule () =
  let a = run_echo_observed ~n:4 ~xfrac:0.5 ~seed:1L ~flows:8 ~rounds:16 () in
  let b = run_echo_observed ~n:4 ~xfrac:0.5 ~seed:2L ~flows:8 ~rounds:16 () in
  Alcotest.(check bool) "different seeds diverge" false (a = b)

(* ---- kv workload: correctness of cross-shard ownership ---- *)

let test_kv_cross_shard () =
  Metrics.reset Metrics.default;
  let t = Runtime.create ~n:4 ~xfrac:0.3 ~seed:5L () in
  let stats =
    Runtime.run_kv t ~flows:8 ~ops_per_flow:25 ~keys_per_shard:32
      ~value_size:64 ~read_fraction:0.9
  in
  Alcotest.(check int) "all ops completed" (8 * 25) stats.Runtime.total_ops;
  Alcotest.(check bool) "some ops were remote" true (stats.Runtime.total_remote > 0);
  Alcotest.(check int) "no dangling cross-shard requests" 0
    (Runtime.pending_count t);
  (* GETs against a preloaded striped store must hit: no misses means
     requests reached the key's owner shard. *)
  let snap = Metrics.snapshot Metrics.default in
  let sent =
    List.fold_left
      (fun a (name, v) ->
        if Filename.check_suffix name ".core.mailbox.sent" then a + v else a)
      0 snap.Metrics.counters
  in
  let delivered =
    List.fold_left
      (fun a (name, v) ->
        if Filename.check_suffix name ".core.mailbox.delivered" then a + v
        else a)
      0 snap.Metrics.counters
  in
  Alcotest.(check int) "mailbox: delivered everything sent" sent delivered

let test_key_home () =
  let t = Runtime.create ~n:4 () in
  Alcotest.(check int) "key 0 on shard 0" 0
    (Runtime.key_home t (Dk_apps.Workload.key_name 0));
  Alcotest.(check int) "key 7 on shard 3" 3
    (Runtime.key_home t (Dk_apps.Workload.key_name 7))

(* ---- mailbox properties ---- *)

let mk_pair () =
  let a = Engine.create () and b = Engine.create () in
  (a, b)

let test_mailbox_fifo () =
  let src_engine, dst_engine = mk_pair () in
  let mb =
    Xmailbox.create ~src:0 ~dst:1 ~src_engine ~dst_engine ~capacity:64 ()
  in
  let got = ref [] in
  Xmailbox.set_on_recv mb (fun v -> got := v :: !got);
  let sent = List.init 40 (fun i -> i) in
  List.iter
    (fun i ->
      Alcotest.(check bool) "send accepted" true (Xmailbox.try_send mb i);
      (* interleave: drain some deliveries mid-stream *)
      if i mod 7 = 0 then Engine.run_group [| src_engine; dst_engine |])
    sent;
  Engine.run_group [| src_engine; dst_engine |];
  Alcotest.(check (list int)) "FIFO order preserved" sent (List.rev !got)

let test_mailbox_backpressure () =
  let src_engine, dst_engine = mk_pair () in
  let mb =
    Xmailbox.create ~src:0 ~dst:1 ~src_engine ~dst_engine ~capacity:4 ()
  in
  let got = ref [] in
  Xmailbox.set_on_recv mb (fun v -> got := v :: !got);
  for i = 1 to 4 do
    Alcotest.(check bool) "fits" true (Xmailbox.try_send mb i)
  done;
  Alcotest.(check bool) "5th rejected" false (Xmailbox.try_send mb 5);
  Alcotest.(check int) "ring full" 4 (Xmailbox.in_flight mb);
  Engine.run_group [| src_engine; dst_engine |];
  Alcotest.(check int) "drained" 0 (Xmailbox.in_flight mb);
  Alcotest.(check bool) "accepts again after drain" true
    (Xmailbox.try_send mb 6);
  Engine.run_group [| src_engine; dst_engine |];
  (* rejected message 5 was never enqueued: no loss, no duplication *)
  Alcotest.(check (list int)) "exactly the accepted messages, in order"
    [ 1; 2; 3; 4; 6 ] (List.rev !got)

let test_mailbox_no_lost_dup () =
  let src_engine, dst_engine = mk_pair () in
  let mb =
    Xmailbox.create ~src:0 ~dst:1 ~src_engine ~dst_engine ~capacity:8 ()
  in
  let got = ref [] in
  Xmailbox.set_on_recv mb (fun v -> got := v :: !got);
  let accepted = ref [] in
  (* Offered load exceeds capacity; sender retries rejected sends after
     draining, so everything accepted arrives exactly once. *)
  for i = 0 to 99 do
    if Xmailbox.try_send mb i then accepted := i :: !accepted
    else begin
      Engine.run_group [| src_engine; dst_engine |];
      Alcotest.(check bool) "retry after drain succeeds" true
        (Xmailbox.try_send mb i);
      accepted := i :: !accepted
    end
  done;
  Engine.run_group [| src_engine; dst_engine |];
  Alcotest.(check (list int)) "no lost, no duplicated, in order"
    (List.rev !accepted) (List.rev !got)

let test_mailbox_clock_monotonic () =
  (* A message from a shard whose clock is BEHIND the destination's
     must not drag the destination backwards: delivery lands at
     dst.now, not src.now + hop. *)
  let src_engine, dst_engine = mk_pair () in
  let (_ : Engine.timer) = Engine.at dst_engine 10_000L (fun () -> ()) in
  Engine.run dst_engine;
  let mb =
    Xmailbox.create ~src:0 ~dst:1 ~src_engine ~dst_engine ~capacity:4 ()
  in
  let at = ref (-1L) in
  Xmailbox.set_on_recv mb (fun () -> at := Engine.now dst_engine);
  Alcotest.(check bool) "sent" true (Xmailbox.try_send mb ());
  Engine.run_group [| src_engine; dst_engine |];
  Alcotest.(check int64) "delivered at dst clock, not in its past" 10_000L !at

(* ---- mailbox + runtime invariants under every named fault plan ---- *)

let fault_plan_case plan_name =
  let run () =
    Metrics.reset Metrics.default;
    let t =
      Runtime.create ~n:4 ~xfrac:0.5 ~seed:17L ~fault:(plan_name, 23L) ()
    in
    let stats = Runtime.run_echo t ~flows:8 ~size:64 ~rounds:12 in
    (* Faults may abort connections (fewer ops), but the mailbox never
       loses or duplicates: everything sent is delivered once the run
       drains, and every forwarded request got its reply. *)
    let snap = Metrics.snapshot Metrics.default in
    let sum suffix =
      List.fold_left
        (fun a (name, v) ->
          if Filename.check_suffix name suffix then a + v else a)
        0 snap.Metrics.counters
    in
    Alcotest.(check int)
      (plan_name ^ ": delivered = sent")
      (sum ".core.mailbox.sent")
      (sum ".core.mailbox.delivered");
    Alcotest.(check int)
      (plan_name ^ ": no dangling requests")
      0 (Runtime.pending_count t);
    Alcotest.(check bool)
      (plan_name ^ ": made progress")
      true
      (stats.Runtime.total_ops > 0)
  in
  Alcotest.test_case plan_name `Quick run

let fault_cases = List.map (fun (n, _) -> fault_plan_case n) Fault.plan_names

(* ---- RSS placement ---- *)

let test_rss_rebalanced_spread () =
  let t = Runtime.create ~n:8 ~seed:3L () in
  let stats = Runtime.run_echo t ~flows:64 ~size:32 ~rounds:2 in
  Array.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d within 1 of even split" p.Runtime.shard)
        true
        (abs (p.Runtime.flow_count - 8) <= 1))
    stats.Runtime.per_shard

let () =
  Alcotest.run "shard-rt"
    [
      ( "determinism",
        [
          Alcotest.test_case "n1-identity" `Quick test_n1_identity;
          Alcotest.test_case "replay-n4" `Quick test_replay_identity_n4;
          Alcotest.test_case "seed-diverges" `Quick test_seed_changes_schedule;
        ] );
      ( "kv",
        [
          Alcotest.test_case "cross-shard" `Quick test_kv_cross_shard;
          Alcotest.test_case "key-home" `Quick test_key_home;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "backpressure" `Quick test_mailbox_backpressure;
          Alcotest.test_case "no-lost-dup" `Quick test_mailbox_no_lost_dup;
          Alcotest.test_case "clock-monotonic" `Quick
            test_mailbox_clock_monotonic;
        ] );
      ("mailbox-under-faults", fault_cases);
      ( "rss",
        [ Alcotest.test_case "rebalanced-spread" `Quick test_rss_rebalanced_spread ] );
    ]
