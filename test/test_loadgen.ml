(* dk_loadgen: the open-loop scenario harness (E15, `demi scenario`).

   What must stay true, in order of importance:

   1. Determinism — same (scenario, shards, seed) renders the same
      stats JSON byte for byte. The CI percentile gate and the E15
      baseline both stand on this.
   2. The open-loop invariant — the offered stream (arrival times,
      connection ids, keys, op mix) is decided by seeded RNG streams
      the service side never touches. Slowing the datapath down must
      not change what was offered, only what happened to it.
   3. Conservation and bounded memory under overload — every offered
      request is admitted or shed (offered = admitted + dropped),
      admitted work completes once the run drains, and the pending
      queue never exceeds the scenario's qcap.

   Everything runs at Scenario.smoke scale (10^4 conns, <=8ms virtual)
   so the whole suite is CI-cheap; the @scenario alias runs exactly
   this binary. *)

module Loadgen = Dk_loadgen.Loadgen
module Scenario = Dk_loadgen.Scenario
module Arrivals = Dk_loadgen.Arrivals
module Workload = Dk_apps.Workload
module Engine = Dk_sim.Engine
module Rng = Dk_sim.Rng
module Metrics = Dk_obs.Metrics

let seed = 42L

let scn name =
  match Scenario.find name with
  | Some s -> Scenario.smoke s
  | None -> Alcotest.failf "scenario %s missing from catalogue" name

(* ---- 1. determinism ---- *)

let test_same_seed_byte_identical () =
  let go () =
    Loadgen.stats_json (Loadgen.run ~scn:(scn "poisson-steady") ~shards:2 ~seed ())
  in
  let a = go () and b = go () in
  Alcotest.(check string) "same seed, same stats JSON" a b

let test_seed_changes_digest () =
  let digest s =
    (Loadgen.run ~offered_rate:200_000.0 ~scn:(scn "poisson-steady") ~shards:2
       ~seed:s ())
      .Loadgen.l_digest
  in
  Alcotest.(check bool) "different seed, different offered stream" false
    (Int64.equal (digest 1L) (digest 2L))

(* ---- 2. open-loop invariant ---- *)

(* Same seed and offered rate, but the second world serves 16x larger
   values, so every service-side timing changes. The offered stream —
   witnessed by the digest, which folds (relative arrival time, conn,
   key) for every offered request — and the offered count must not
   move. A closed-loop generator fails this by construction: its
   arrivals wait on completions. *)
let test_offered_stream_independent_of_service () =
  let run value_size =
    let s = { (scn "poisson-steady") with value_size } in
    Loadgen.run ~offered_rate:300_000.0 ~scn:s ~shards:2 ~seed ()
  in
  let fast = run 64 and slow = run 1024 in
  Alcotest.(check bool) "service got slower (else the test tests nothing)"
    true
    Dk_sim.Histogram.(
      Int64.compare (quantile slow.Loadgen.l_lat 0.5)
        (quantile fast.Loadgen.l_lat 0.5)
      > 0);
  Alcotest.(check int) "offered count unchanged" fast.Loadgen.l_offered
    slow.Loadgen.l_offered;
  Alcotest.(check bool) "offered digest unchanged" true
    (Int64.equal fast.Loadgen.l_digest slow.Loadgen.l_digest)

(* ---- 3. N=1 shard == single engine ---- *)

let test_single_shard_is_single_engine () =
  let go drive =
    Loadgen.stats_json
      (Loadgen.run ?drive ~offered_rate:200_000.0 ~scn:(scn "poisson-steady")
         ~shards:1 ~seed ())
  in
  let grouped = go None in
  let direct = go (Some (fun engines -> Engine.run engines.(0))) in
  Alcotest.(check string)
    "run_group over one shard == Engine.run on its engine" grouped direct

(* ---- 4. distribution sanity (qcheck) ---- *)

let counts_of wl ~keys ~draws =
  let c = Array.make keys 0 in
  for _ = 1 to draws do
    let k = Workload.next_key wl in
    c.(k) <- c.(k) + 1
  done;
  c

let zipf_skew =
  QCheck.Test.make ~count:30 ~name:"zipf skews, uniform does not"
    QCheck.(map Int64.of_int (int_range 1 100_000))
    (fun s ->
      let keys = 256 and draws = 4096 in
      let zipf =
        counts_of (Workload.create ~seed:s (Workload.Zipf { n = keys; theta = 0.99 }))
          ~keys ~draws
      and unif =
        counts_of (Workload.create ~seed:s (Workload.Uniform keys)) ~keys ~draws
      in
      let max_of = Array.fold_left max 0 in
      (* Zipf theta=0.99 concentrates ~11% of draws on the hottest key;
         uniform's hottest is ~1/256 plus noise. 4x separates them with
         huge margin for any seed. *)
      max_of zipf > 4 * max_of unif)

let arrival_gaps_positive =
  QCheck.Test.make ~count:50 ~name:"arrival times strictly advance"
    QCheck.(map Int64.of_int (int_range 1 100_000))
    (fun s ->
      let specs =
        [
          Arrivals.Poisson;
          Arrivals.On_off
            { on_mean_ns = 50_000.0; off_mean_ns = 100_000.0; alpha = 1.5 };
        ]
      in
      List.for_all
        (fun spec ->
          let a = Arrivals.create ~spec ~rng:(Rng.create s) in
          let now = ref 0L in
          let ok = ref true in
          for _ = 1 to 200 do
            match Arrivals.next a ~now:!now ~rate_per_ns:1e-4 with
            | Some ts ->
                if Int64.compare ts !now <= 0 then ok := false;
                now := ts
            | None -> ok := false
          done;
          !ok)
        specs)

(* ---- 5. churn conservation ---- *)

let test_churn_conserves_population () =
  let s = Loadgen.run ~scn:(scn "churn-heavy") ~shards:2 ~seed () in
  let total =
    Array.fold_left
      (fun a p -> a + p.Loadgen.ls_conns)
      0 s.Loadgen.l_per_shard
  in
  Alcotest.(check int) "churn replaces conns, never leaks them"
    s.Loadgen.l_conns total;
  Alcotest.(check bool) "churn actually happened" true (s.Loadgen.l_churn > 0)

(* ---- 6. overload: shed, conserve, stay bounded ---- *)

let test_overload_sheds_and_stays_bounded () =
  (* Fresh registry state so the qdepth high-water below is this run's,
     not a previous test's. *)
  Metrics.reset Metrics.default;
  let s = { (scn "overload") with qcap = 128 } in
  let st = Loadgen.run ~scn:s ~shards:2 ~seed () in
  Alcotest.(check bool) "overload sheds explicitly" true (st.Loadgen.l_shed > 0);
  Alcotest.(check int) "offered = admitted + dropped" st.Loadgen.l_offered
    (st.Loadgen.l_admitted + st.Loadgen.l_shed);
  Alcotest.(check int) "admitted work completes once drained"
    st.Loadgen.l_admitted st.Loadgen.l_done;
  Array.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "shard%d pending queue bounded by qcap"
           p.Loadgen.ls_shard)
        true
        (p.Loadgen.ls_qdepth_hwm <= s.Scenario.qcap);
      Alcotest.(check bool)
        (Printf.sprintf "shard%d stalls bounded by trunk count"
           p.Loadgen.ls_shard)
        true
        (p.Loadgen.ls_stall_hwm <= s.Scenario.trunks))
    st.Loadgen.l_per_shard;
  (* The explicit counter the ISSUE requires: shed load is visible in
     obs, not silently absorbed by an unbounded queue. *)
  let snap = Metrics.snapshot_with_shard_agg Metrics.default in
  let dropped =
    match List.assoc_opt "shards.agg.apps.loadgen.dropped" snap.Metrics.counters with
    | Some v -> v
    | None -> Alcotest.fail "shards.agg.apps.loadgen.dropped not exported"
  in
  Alcotest.(check int) "dropped counter matches shed total" st.Loadgen.l_shed
    dropped

(* ---- 7. every catalogue scenario runs at smoke scale ---- *)

let test_catalogue_smoke () =
  List.iter
    (fun s ->
      let sm = Scenario.smoke s in
      let st = Loadgen.run ~scn:sm ~shards:2 ~seed () in
      Alcotest.(check bool)
        (s.Scenario.name ^ " offered something")
        true
        (st.Loadgen.l_offered > 0);
      Alcotest.(check int)
        (s.Scenario.name ^ " conserves requests")
        st.Loadgen.l_offered
        (st.Loadgen.l_admitted + st.Loadgen.l_shed))
    Scenario.all

(* ---- 8. offload mode (E16): UDP trunks + device-resident table ---- *)

let offload_scn hit =
  { (scn "poisson-steady") with Scenario.offload = true; offload_hit = hit }

(* Same offered rate, same seed: the device-hit ratio is purely a
   service-side property, so the offered digest must not move between a
   cold and a hot table — and host CPU per completed op must drop when
   the device serves the hot keys. *)
let test_offload_frees_host_cpu () =
  let run hit =
    Loadgen.run ~offered_rate:150_000.0 ~scn:(offload_scn hit) ~shards:2 ~seed ()
  in
  let cold = run 0.0 and hot = run 0.9 in
  Alcotest.(check bool) "offered digest unchanged" true
    (Int64.equal cold.Loadgen.l_digest hot.Loadgen.l_digest);
  Alcotest.(check int) "cold table has no hits" 0 cold.Loadgen.l_offload_hits;
  Alcotest.(check bool) "hot table serves hits" true
    (hot.Loadgen.l_offload_hits > 0);
  let per_op s =
    Int64.to_float s.Loadgen.l_host_cpu_ns /. float_of_int s.Loadgen.l_done
  in
  Alcotest.(check bool) "hot run frees host CPU per op" true
    (per_op hot < per_op cold);
  Alcotest.(check int) "conserves requests" hot.Loadgen.l_offered
    (hot.Loadgen.l_admitted + hot.Loadgen.l_shed)

(* The offered stream is also identical between offload mode and the
   TCP datapath: the transport is service-side too. *)
let test_offload_digest_matches_tcp () =
  let tcp =
    Loadgen.run ~offered_rate:150_000.0 ~scn:(scn "poisson-steady") ~shards:2
      ~seed ()
  in
  let udp =
    Loadgen.run ~offered_rate:150_000.0 ~scn:(offload_scn 0.5) ~shards:2 ~seed ()
  in
  Alcotest.(check bool) "same digest across transports" true
    (Int64.equal tcp.Loadgen.l_digest udp.Loadgen.l_digest)

let test_offload_deterministic () =
  let go () =
    Loadgen.stats_json
      (Loadgen.run ~offered_rate:150_000.0 ~scn:(offload_scn 0.9) ~shards:2
         ~seed ())
  in
  Alcotest.(check string) "same seed, same offload stats JSON" (go ()) (go ())

let () =
  Alcotest.run "loadgen"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed byte-identical" `Quick
            test_same_seed_byte_identical;
          Alcotest.test_case "seed moves the digest" `Quick
            test_seed_changes_digest;
        ] );
      ( "open-loop",
        [
          Alcotest.test_case "offered stream independent of service" `Quick
            test_offered_stream_independent_of_service;
        ] );
      ( "identity",
        [
          Alcotest.test_case "1 shard == single engine" `Quick
            test_single_shard_is_single_engine;
        ] );
      ( "distributions",
        List.map QCheck_alcotest.to_alcotest [ zipf_skew; arrival_gaps_positive ]
      );
      ( "churn",
        [
          Alcotest.test_case "population conserved" `Quick
            test_churn_conserves_population;
        ] );
      ( "overload",
        [
          Alcotest.test_case "sheds, conserves, bounded" `Quick
            test_overload_sheds_and_stays_bounded;
        ] );
      ( "catalogue",
        [ Alcotest.test_case "all scenarios smoke" `Quick test_catalogue_smoke ]
      );
      ( "offload",
        [
          Alcotest.test_case "frees host CPU, digest fixed" `Quick
            test_offload_frees_host_cpu;
          Alcotest.test_case "digest matches TCP datapath" `Quick
            test_offload_digest_matches_tcp;
          Alcotest.test_case "deterministic" `Quick test_offload_deterministic;
        ] );
    ]
