(* Tests for the dk-lint rule engine: each rule fires on a seeded
   violation, stays quiet on clean code, and the comment/string
   stripping keeps it from tripping on text that merely mentions a
   forbidden construct. *)

open Lint_engine

let check = Alcotest.check
let check_int = check Alcotest.int

let rules findings = List.sort_uniq compare (List.map (fun f -> f.rule) findings)
let lines_of rule findings =
  List.filter_map (fun f -> if f.rule = rule then Some f.line else None) findings

let scan ?(path = "lib/mem/example.ml") src = scan_source ~path src

(* ---------------- unsafe-op ---------------- *)

let unsafe_in_fast_path () =
  let fs = scan "let f b i = Bytes.unsafe_get b i\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "unsafe-op" ] (rules fs);
  check (Alcotest.list Alcotest.int) "line" [ 1 ] (lines_of "unsafe-op" fs)

let obj_magic () =
  let fs = scan "let coerce x =\n  Obj.magic x\n" in
  check (Alcotest.list Alcotest.int) "line 2" [ 2 ] (lines_of "unsafe-op" fs)

let unsafe_outside_fast_path_ok () =
  (* the rule is scoped to lib/mem, lib/core, lib/net, lib/device *)
  let fs = scan ~path:"bench/harness.ml" "let f b i = Bytes.unsafe_get b i\n" in
  check_int "not flagged outside fast path" 0
    (List.length (lines_of "unsafe-op" fs))

let unsafe_in_device () =
  (* descriptor rings are fast-path: lib/device is in unsafe-op scope *)
  let fs = scan ~path:"lib/device/ring.ml" "let f b i = Bytes.unsafe_get b i\n" in
  check (Alcotest.list Alcotest.int) "line" [ 1 ] (lines_of "unsafe-op" fs)

let poly_compare_not_in_device () =
  (* ...but the name-heuristic poly-compare rule stays out of it *)
  let fs = scan ~path:"lib/device/ring.ml" "let same buf b = buf = b\n" in
  check_int "poly-compare not extended to lib/device" 0
    (List.length (lines_of "poly-compare" fs))

let unsafe_in_comment_ok () =
  let fs = scan "(* never call Bytes.unsafe_get here *)\nlet x = 1\n" in
  check_int "comment does not fire" 0 (List.length fs)

let unsafe_in_string_ok () =
  let fs = scan "let s = \"Obj.magic\"\n" in
  check_int "string literal does not fire" 0 (List.length fs)

(* ---------------- poly-compare ---------------- *)

let poly_eq_on_buf () =
  let fs = scan "let same buf other_buf = buf = other_buf\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "poly-compare" ] (rules fs)

let poly_compare_fn_on_sga () =
  let fs = scan "let c sga sga' = compare sga sga'\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "poly-compare" ] (rules fs)

let let_binding_is_not_compare () =
  let fs = scan "let buf = make ()\nlet rx_buf = other\n" in
  check_int "bindings not flagged" 0 (List.length (lines_of "poly-compare" fs))

let int_compare_ok () =
  let fs = scan "let f a b = a = b\n" in
  check_int "non-bufferish names not flagged" 0 (List.length fs)

(* ---------------- print-in-lib ---------------- *)

let printf_in_lib () =
  let fs = scan ~path:"lib/apps/echo.ml" "let () = Printf.printf \"hi\"\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "print-in-lib" ] (rules fs)

let print_endline_in_lib () =
  let fs = scan ~path:"lib/apps/echo.ml" "let () = print_endline \"hi\"\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "print-in-lib" ] (rules fs)

let printf_in_bench_ok () =
  (* bench/examples report results on stdout by design *)
  let fs = scan ~path:"bench/report.ml" "let () = Printf.printf \"ok\"\n" in
  check_int "bench may print" 0 (List.length fs)

let sprintf_ok () =
  let fs = scan ~path:"lib/apps/echo.ml" "let s = Printf.sprintf \"x%d\" 1\n" in
  check_int "sprintf builds strings, not output" 0 (List.length fs)

(* ---------------- catch-all-exn ---------------- *)

let try_with_wildcard () =
  let fs = scan "let f () = try g () with _ -> ()\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "catch-all-exn" ] (rules fs)

let try_with_named_exn_ok () =
  let fs = scan "let f () = try g () with Not_found -> ()\n" in
  check_int "specific handler ok" 0 (List.length fs)

let match_wildcard_ok () =
  (* a wildcard in a plain match is fine; only exception handlers count *)
  let fs = scan "let f x = match x with Some y -> y | _ -> 0\n" in
  check_int "match wildcard ok" 0 (List.length (lines_of "catch-all-exn" fs))

let multiline_try () =
  let src = "let f () =\n  try\n    g ()\n  with\n  | _ ->\n    ()\n" in
  let fs = scan src in
  check (Alcotest.list Alcotest.int) "line of the arm" [ 5 ]
    (lines_of "catch-all-exn" fs)

(* ---------------- exit-outside-bin ---------------- *)

let exit_in_lib () =
  let fs = scan "let die () = exit 1\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "exit-outside-bin" ] (rules fs)

let exit_in_bin_ok () =
  let fs = scan ~path:"bin/dk_cli.ml" "let die () = exit 1\n" in
  check_int "bin may exit" 0 (List.length fs)

(* ---------------- adhoc-counter ---------------- *)

let mutable_counter_in_lib () =
  let fs = scan ~path:"lib/net/x.ml" "type t = { mutable rx_drops : int }\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "adhoc-counter" ] (rules fs)

let ref_counter_in_lib () =
  let fs = scan ~path:"lib/device/x.ml" "let retransmits = ref 0\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "adhoc-counter" ] (rules fs)

let counter_in_obs_ok () =
  (* lib/obs is where counters live; its own state is exempt *)
  let fs =
    scan ~path:"lib/obs/metrics.ml"
      "type c = { mutable drops : int }\nlet wakeups = ref 0\n"
  in
  check_int "lib/obs exempt" 0 (List.length (lines_of "adhoc-counter" fs))

let counter_in_bench_ok () =
  let fs = scan ~path:"bench/harness.ml" "let drops = ref 0\n" in
  check_int "outside lib ok" 0 (List.length (lines_of "adhoc-counter" fs))

let non_statsy_mutable_ok () =
  (* mutable ints that aren't statistics (cursors, capacities) pass *)
  let fs =
    scan ~path:"lib/net/x.ml"
      "type t = { mutable head : int; mutable capacity : int }\nlet next_qd = ref 0\n"
  in
  check_int "non-statsy names ok" 0 (List.length (lines_of "adhoc-counter" fs))

let statsy_ref_nonzero_init_ok () =
  (* a ref seeded with a real value is state, not a counter *)
  let fs = scan ~path:"lib/net/x.ml" "let retries = ref 3\n" in
  check_int "non-zero init ok" 0 (List.length (lines_of "adhoc-counter" fs))

(* ---------------- fault-site ---------------- *)

let random_in_device () =
  let fs = scan ~path:"lib/device/nic.ml" "let flip () = Random.bool ()\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "fault-site" ] (rules fs)

let wallclock_in_fault () =
  let fs = scan ~path:"lib/fault/fault.ml" "let now () = Unix.gettimeofday ()\n" in
  check (Alcotest.list Alcotest.string) "rule" [ "fault-site" ] (rules fs)

let sys_time_in_device () =
  let fs = scan ~path:"lib/device/block.ml" "let t0 = Sys.time ()\n" in
  check (Alcotest.list Alcotest.int) "line" [ 1 ] (lines_of "fault-site" fs)

let seeded_rng_in_device_ok () =
  (* the deterministic simulator RNG is exactly what the rule steers to *)
  let fs =
    scan ~path:"lib/device/fabric.ml"
      "let jitter rng = Dk_sim.Rng.int rng 100\n"
  in
  check_int "Dk_sim.Rng allowed" 0 (List.length (lines_of "fault-site" fs))

let random_outside_device_ok () =
  let fs = scan ~path:"bench/harness.ml" "let r = Random.int 5\n" in
  check_int "scoped to device/fault dirs" 0
    (List.length (lines_of "fault-site" fs))

(* ---------------- doorbell-site ---------------- *)

let doorbell_in_device () =
  let fs =
    scan ~path:"lib/device/nic.ml"
      "let ring t = Dk_sim.Engine.consume t.engine t.cost.Dk_sim.Cost.pcie_doorbell\n"
  in
  check (Alcotest.list Alcotest.string) "rule" [ "doorbell-site" ] (rules fs)

let doorbell_in_core () =
  let fs =
    scan ~path:"lib/core/demi.ml"
      "let f t = Engine.consume t.engine t.cost.Cost.pcie_doorbell\n"
  in
  check (Alcotest.list Alcotest.int) "line" [ 1 ] (lines_of "doorbell-site" fs)

let doorbell_module_exempt () =
  (* the submission stage itself is the one legitimate consumer *)
  let fs =
    scan ~path:"lib/device/doorbell.ml"
      "let ring t = Dk_sim.Engine.consume t.engine t.cost.Dk_sim.Cost.pcie_doorbell\n"
  in
  check_int "Doorbell exempt" 0 (List.length (lines_of "doorbell-site" fs))

let doorbell_cost_def_exempt () =
  (* the cost model defines the constant; lib/sim is out of scope *)
  let fs = scan ~path:"lib/sim/cost.ml" "let f t = t.pcie_doorbell\n" in
  check_int "lib/sim exempt" 0 (List.length (lines_of "doorbell-site" fs))

let doorbell_outside_lib_ok () =
  let fs =
    scan ~path:"test/test_device.ml" "let c = cost.Cost.pcie_doorbell\n"
  in
  check_int "tests exempt" 0 (List.length (lines_of "doorbell-site" fs))

(* ---------------- offload-site ---------------- *)

let table_write_in_apps () =
  let fs =
    scan ~path:"lib/apps/kv_app.ml" "let f t k v = Table.insert t k v\n"
  in
  check (Alcotest.list Alcotest.string) "rule" [ "offload-site" ] (rules fs)

let qualified_table_read_in_shard () =
  let fs =
    scan ~path:"lib/shard/shard.ml"
      "let g t k = Dk_device.Table.lookup t k\n"
  in
  check (Alcotest.list Alcotest.int) "line" [ 1 ] (lines_of "offload-site" fs)

let ctrl_queue_bypass () =
  let fs =
    scan ~path:"lib/apps/loadgen/loadgen.ml"
      "let ins nic k v = Dk_device.Nic.ctrl_insert nic k v\n"
  in
  check (Alcotest.list Alcotest.string) "rule" [ "offload-site" ] (rules fs)

let table_in_device_ok () =
  (* the device layer owns the table *)
  let fs = scan ~path:"lib/device/nic.ml" "let f t k = Table.lookup t k\n" in
  check_int "lib/device exempt" 0 (List.length (lines_of "offload-site" fs))

let ctrl_path_in_demi_ok () =
  (* Demi.offload_insert/update/invalidate is the sanctioned host path *)
  let fs =
    scan ~path:"lib/core/demi.ml"
      "let ins stack k v = Dk_device.Nic.ctrl_insert (Stack.nic stack) k v\n"
  in
  check_int "Demi control path exempt" 0
    (List.length (lines_of "offload-site" fs))

let stats_field_projection_ok () =
  (* reading a Table.stats record field off a Demi.offload_stats result
     tokenizes with the receiver prefix, not a Table call *)
  let fs =
    scan ~path:"lib/apps/loadgen/loadgen.ml"
      "let hits s = s.Dk_device.Table.hits\n"
  in
  check_int "stats projection ok" 0 (List.length (lines_of "offload-site" fs))

let arp_table_ok () =
  (* lib/net's ARP cache is a different Table module entirely *)
  let fs =
    scan ~path:"lib/net/stack.ml" "let m t ip = Arp.Table.lookup t.arp ip\n"
  in
  check_int "Arp.Table ok" 0 (List.length (lines_of "offload-site" fs))

(* ---------------- stripping / line numbers ---------------- *)

let nested_comments () =
  let src = "(* outer (* Obj.magic inside *) still comment *)\nlet x = 1\n" in
  check_int "nested comment stripped" 0 (List.length (scan src))

let line_numbers_survive_stripping () =
  let src = "(* line 1\n   line 2 *)\nlet f () = try g () with _ -> ()\n" in
  let fs = scan src in
  check (Alcotest.list Alcotest.int) "finding on line 3" [ 3 ]
    (lines_of "catch-all-exn" fs)

(* ---------------- allowlist ---------------- *)

let allowlist_suppresses_and_reports_stale () =
  let findings =
    [
      { path = "lib/mem/a.ml"; line = 3; rule = "unsafe-op"; message = "m" };
      { path = "lib/mem/b.ml"; line = 9; rule = "poly-compare"; message = "m" };
    ]
  in
  let allow =
    [
      { a_rule = "unsafe-op"; a_path = "lib/mem/a.ml"; used = false };
      { a_rule = "print-in-lib"; a_path = "lib/gone.ml"; used = false };
    ]
  in
  let kept, stale = apply_allowlist allow findings in
  check (Alcotest.list Alcotest.string) "kept" [ "poly-compare" ] (rules kept);
  check_int "one stale entry" 1 (List.length stale);
  check Alcotest.string "the stale one" "print-in-lib"
    (List.hd stale).a_rule

let () =
  Alcotest.run "dk_lint"
    [
      ( "unsafe-op",
        [
          Alcotest.test_case "fires in fast path" `Quick unsafe_in_fast_path;
          Alcotest.test_case "Obj.magic" `Quick obj_magic;
          Alcotest.test_case "scoped to fast path" `Quick
            unsafe_outside_fast_path_ok;
          Alcotest.test_case "fires in lib/device" `Quick unsafe_in_device;
          Alcotest.test_case "poly-compare not in lib/device" `Quick
            poly_compare_not_in_device;
          Alcotest.test_case "comment immune" `Quick unsafe_in_comment_ok;
          Alcotest.test_case "string immune" `Quick unsafe_in_string_ok;
        ] );
      ( "poly-compare",
        [
          Alcotest.test_case "= on buf" `Quick poly_eq_on_buf;
          Alcotest.test_case "compare on sga" `Quick poly_compare_fn_on_sga;
          Alcotest.test_case "let-binding immune" `Quick
            let_binding_is_not_compare;
          Alcotest.test_case "plain names immune" `Quick int_compare_ok;
        ] );
      ( "print-in-lib",
        [
          Alcotest.test_case "printf" `Quick printf_in_lib;
          Alcotest.test_case "print_endline" `Quick print_endline_in_lib;
          Alcotest.test_case "bench exempt" `Quick printf_in_bench_ok;
          Alcotest.test_case "sprintf ok" `Quick sprintf_ok;
        ] );
      ( "catch-all-exn",
        [
          Alcotest.test_case "try with _" `Quick try_with_wildcard;
          Alcotest.test_case "named handler ok" `Quick try_with_named_exn_ok;
          Alcotest.test_case "match wildcard ok" `Quick match_wildcard_ok;
          Alcotest.test_case "multiline try" `Quick multiline_try;
        ] );
      ( "exit",
        [
          Alcotest.test_case "exit in lib" `Quick exit_in_lib;
          Alcotest.test_case "exit in bin ok" `Quick exit_in_bin_ok;
        ] );
      ( "adhoc-counter",
        [
          Alcotest.test_case "mutable field" `Quick mutable_counter_in_lib;
          Alcotest.test_case "ref cell" `Quick ref_counter_in_lib;
          Alcotest.test_case "lib/obs exempt" `Quick counter_in_obs_ok;
          Alcotest.test_case "bench exempt" `Quick counter_in_bench_ok;
          Alcotest.test_case "non-statsy ok" `Quick non_statsy_mutable_ok;
          Alcotest.test_case "non-zero init ok" `Quick statsy_ref_nonzero_init_ok;
        ] );
      ( "fault-site",
        [
          Alcotest.test_case "Random in lib/device" `Quick random_in_device;
          Alcotest.test_case "wall-clock in lib/fault" `Quick wallclock_in_fault;
          Alcotest.test_case "Sys.time in lib/device" `Quick sys_time_in_device;
          Alcotest.test_case "Dk_sim.Rng ok" `Quick seeded_rng_in_device_ok;
          Alcotest.test_case "scoped to device dirs" `Quick
            random_outside_device_ok;
        ] );
      ( "doorbell-site",
        [
          Alcotest.test_case "in lib/device" `Quick doorbell_in_device;
          Alcotest.test_case "in lib/core" `Quick doorbell_in_core;
          Alcotest.test_case "Doorbell module exempt" `Quick
            doorbell_module_exempt;
          Alcotest.test_case "lib/sim exempt" `Quick doorbell_cost_def_exempt;
          Alcotest.test_case "outside lib ok" `Quick doorbell_outside_lib_ok;
        ] );
      ( "offload-site",
        [
          Alcotest.test_case "Table write in lib/apps" `Quick
            table_write_in_apps;
          Alcotest.test_case "qualified read in lib/shard" `Quick
            qualified_table_read_in_shard;
          Alcotest.test_case "ctrl-queue bypass" `Quick ctrl_queue_bypass;
          Alcotest.test_case "lib/device exempt" `Quick table_in_device_ok;
          Alcotest.test_case "Demi control path exempt" `Quick
            ctrl_path_in_demi_ok;
          Alcotest.test_case "stats projection ok" `Quick
            stats_field_projection_ok;
          Alcotest.test_case "Arp.Table ok" `Quick arp_table_ok;
        ] );
      ( "stripping",
        [
          Alcotest.test_case "nested comments" `Quick nested_comments;
          Alcotest.test_case "line numbers" `Quick
            line_numbers_survive_stripping;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppress + stale" `Quick
            allowlist_suppresses_and_reports_stale;
        ] );
    ]
