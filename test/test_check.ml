(* Tests for the sanitizer layer (Dk_check): seeded use-after-free,
   double-free, canary smash, poison-on-free, shutdown leak report, and
   the token-table exactly-once audit (double complete, redeem after
   watch, dangling tokens). Each seeded bug must be detected with the
   right diagnostic; with sanitize off, behavior is the seed behavior. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

module Dk_check = Dk_mem.Dk_check
module Manager = Dk_mem.Manager
module Buffer = Dk_mem.Buffer
module Sga = Dk_mem.Sga
module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Types = Demikernel.Types
module Token = Demikernel.Token
module Demi = Demikernel.Demi

let kinds reports = List.map fst reports

let kind =
  Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (Dk_check.kind_name k))
    ( = )

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_detail name ~sub reports =
  check_bool
    (Printf.sprintf "%s: diagnostic mentions %S" name sub)
    true
    (List.exists (fun (_, d) -> contains ~sub d) reports)

let smgr () = Manager.create ~initial_region_size:4096 ~sanitize:true ()

(* ---------------- buffer lifecycle bugs ---------------- *)

let uaf_read () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 64 in
  Buffer.free b;
  let (), reports = Dk_check.capture (fun () -> ignore (Buffer.get b 0)) in
  check (Alcotest.list kind) "one UAF report" [ Dk_check.Use_after_free ]
    (List.sort_uniq compare (kinds reports));
  check_detail "uaf" ~sub:"Buffer.get" reports

let uaf_write () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 64 in
  Buffer.free b;
  let (), reports = Dk_check.capture (fun () -> Buffer.set b 0 'x') in
  check_bool "write-after-free detected" true
    (List.mem Dk_check.Use_after_free (kinds reports));
  check_detail "uaf-write" ~sub:"Buffer.set" reports

let uaf_raises_outside_capture () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 64 in
  Buffer.free b;
  check_bool "raises Violation" true
    (try
       ignore (Buffer.to_string b);
       false
     with Dk_check.Violation (Dk_check.Use_after_free, _) -> true)

let double_free () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 64 in
  Buffer.free b;
  let (), reports = Dk_check.capture (fun () -> Buffer.free b) in
  check (Alcotest.list kind) "double free" [ Dk_check.Double_free ]
    (kinds reports);
  check_detail "double-free" ~sub:"second free" reports;
  (* the duplicate free must not have corrupted the refcount *)
  let st = Manager.stats mgr in
  check_int "released exactly once" 1 st.Manager.releases

let io_hold_after_release () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 64 in
  Buffer.free b;
  let (), reports = Dk_check.capture (fun () -> Buffer.io_hold b) in
  check_bool "DMA-into-freed detected" true
    (List.mem Dk_check.Use_after_free (kinds reports));
  check_detail "io-hold" ~sub:"DMA" reports

(* ---------------- canaries & poison ---------------- *)

let canary_smash_above () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 32 in
  (* overrun past the requested length through the raw store, exactly
     what a mis-sized DMA would do (Buffer's checked API can't) *)
  Bytes.set (Buffer.store b) (Buffer.off b + Buffer.length b) 'X';
  let (), reports = Dk_check.capture (fun () -> Buffer.free b) in
  check (Alcotest.list kind) "canary smash" [ Dk_check.Canary_smash ]
    (kinds reports);
  check_detail "overflow side" ~sub:"1 above" reports

let canary_smash_below () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 32 in
  Bytes.set (Buffer.store b) (Buffer.off b - 1) 'X';
  Bytes.set (Buffer.store b) (Buffer.off b - 2) 'Y';
  let (), reports = Dk_check.capture (fun () -> Buffer.free b) in
  check (Alcotest.list kind) "canary smash" [ Dk_check.Canary_smash ]
    (kinds reports);
  check_detail "underflow side" ~sub:"2 guard byte(s) below" reports

let clean_free_has_no_reports () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 32 in
  Buffer.fill b 'z';
  let (), reports = Dk_check.capture (fun () -> Buffer.free b) in
  check_int "no reports" 0 (List.length reports)

let poison_on_free () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 32 in
  Buffer.fill b 'z';
  let store = Buffer.store b and off = Buffer.off b in
  Buffer.free b;
  (* stale raw-pointer read sees poison, not the old payload *)
  check_bool "poisoned" true (Bytes.get store off = '\xDD');
  check_bool "all poisoned" true
    (let ok = ref true in
     for i = 0 to 31 do
       if Bytes.get store (off + i) <> '\xDD' then ok := false
     done;
     !ok)

(* ---------------- shutdown leak report ---------------- *)

let leak_report () =
  let mgr = smgr () in
  let a = Manager.alloc_exn mgr 64 in
  let b = Manager.alloc_exn mgr 128 in
  Buffer.free a;
  let leaks, reports = Dk_check.capture (fun () -> Manager.check_leaks mgr) in
  check_int "one leak" 1 (List.length leaks);
  check_int "leaked payload length" 128
    (match leaks with [ l ] -> l.Manager.leak_len | _ -> -1);
  check (Alcotest.list kind) "reported as leak" [ Dk_check.Leak ]
    (kinds reports);
  check_detail "leak" ~sub:"never freed" reports;
  Buffer.free b;
  let leaks, _ = Dk_check.capture (fun () -> Manager.check_leaks mgr) in
  check_int "clean after free" 0 (List.length leaks)

let deferred_release_is_not_a_leak_after_completion () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 64 in
  Buffer.io_hold b;
  Buffer.free b;
  (* mid-flight: still live, so the sweep must list it *)
  let leaks, _ = Dk_check.capture (fun () -> Manager.check_leaks mgr) in
  check_int "in-flight counts as live" 1 (List.length leaks);
  Buffer.io_release b;
  let leaks, _ = Dk_check.capture (fun () -> Manager.check_leaks mgr) in
  check_int "clean after completion" 0 (List.length leaks)

let unsanitized_manager_unchanged () =
  let mgr = Manager.create ~sanitize:false () in
  check_bool "off" false (Manager.sanitized mgr);
  let b = Manager.alloc_exn mgr 64 in
  Buffer.free b;
  (* seed behavior: plain Invalid_argument, not a Dk_check violation *)
  Alcotest.check_raises "double free still traps as before"
    (Invalid_argument "Buffer.free: double free of a view") (fun () ->
      Buffer.free b);
  check_int "no leak tracking" 0 (List.length (Manager.check_leaks mgr))

(* ---------------- token audit ---------------- *)

let token_double_complete () =
  let t = Token.create ~audit:true () in
  let tok = Token.fresh t in
  Token.complete t tok Types.Pushed;
  let (), reports =
    Dk_check.capture (fun () -> Token.complete t tok Types.Pushed)
  in
  check (Alcotest.list kind) "double complete"
    [ Dk_check.Token_double_complete ] (kinds reports);
  check_detail "double-complete" ~sub:"completed twice" reports;
  check_int "counted" 1 (Token.audit t).Token.double_completes

let token_double_complete_after_watch () =
  let t = Token.create ~audit:true () in
  let tok = Token.fresh t in
  let hits = ref 0 in
  Token.watch t tok (fun _ -> incr hits);
  Token.complete t tok Types.Pushed;
  check_int "delivered once" 1 !hits;
  let (), reports =
    Dk_check.capture (fun () -> Token.complete t tok Types.Pushed)
  in
  check (Alcotest.list kind) "double complete via watch"
    [ Dk_check.Token_double_complete ] (kinds reports);
  check_int "not redelivered" 1 !hits

let token_redeem_after_watch_audit () =
  let t = Token.create ~audit:true () in
  let tok = Token.fresh t in
  Token.watch t tok (fun _ -> ());
  let r, reports = Dk_check.capture (fun () -> Token.redeem t tok) in
  check_bool "no result delivered" true (r = None);
  check (Alcotest.list kind) "redeem after watch"
    [ Dk_check.Token_redeem_after_watch ] (kinds reports);
  (* and after the watch consumed the completion *)
  Token.complete t tok Types.Pushed;
  let _, reports = Dk_check.capture (fun () -> Token.redeem t tok) in
  check (Alcotest.list kind) "redeem after watch consumed it"
    [ Dk_check.Token_redeem_after_watch ] (kinds reports);
  check_int "counted" 2 (Token.audit t).Token.redeems_after_watch

let token_watch_then_wait_raises () =
  (* satellite: enforced even with audit off — the seed silently
     spun forever / double-delivered *)
  let t = Token.create ~audit:false () in
  let tok = Token.fresh t in
  Token.watch t tok (fun _ -> ());
  Alcotest.check_raises "watched token cannot be waited on"
    (Invalid_argument
       "Token.redeem: token is watched; a watched token cannot also be \
        waited on") (fun () -> ignore (Token.redeem t tok))

let demi_watch_then_wait_raises () =
  let engine = Engine.create () in
  let demi = Demi.create ~engine ~cost:Cost.default ~sanitize:false () in
  let qd = Demi.queue demi in
  let tok = Result.get_ok (Demi.pop demi qd) in
  Demi.watch demi tok (fun _ -> ());
  check_bool "Demi.wait on a watched token is a clear error" true
    (try
       ignore (Demi.wait demi tok);
       false
     with Invalid_argument _ -> true)

let token_dangling () =
  let t = Token.create ~audit:true () in
  let t1 = Token.fresh t in
  let t2 = Token.fresh t in
  let t3 = Token.fresh t in
  Token.complete t t2 Types.Pushed;
  ignore (Token.redeem t t2);
  Token.watch t t3 (fun _ -> ());
  let r = Token.audit t in
  check (Alcotest.list Alcotest.int) "dangling = pending + watched" [ t1; t3 ]
    r.Token.dangling;
  let n, reports = Dk_check.capture (fun () -> Token.report_dangling t) in
  check_int "two reported" 2 n;
  check (Alcotest.list kind) "dangling kind"
    [ Dk_check.Token_dangling; Dk_check.Token_dangling ]
    (kinds reports);
  check_detail "dangling" ~sub:"still pending" reports

(* ---------------- whole-libOS shutdown sweep ---------------- *)

let demi_check_shutdown () =
  let engine = Engine.create () in
  let demi = Demi.create ~engine ~cost:Cost.default ~sanitize:true () in
  check_bool "sanitized" true (Demi.sanitized demi);
  let qd = Demi.queue demi in
  let sga = Result.get_ok (Demi.sga_alloc demi "hello") in
  ignore (Demi.blocking_push demi qd sga);
  (match Demi.blocking_pop demi qd with
  | Types.Popped sga' ->
      check_bool "payload intact" true (Sga.equal sga sga');
      Demi.sga_free demi sga'
  | r -> Alcotest.failf "expected Popped, got %a" Types.pp_op_result r);
  let (dangling, leaks), reports =
    Dk_check.capture (fun () -> Demi.check_shutdown demi)
  in
  check_int "no dangling tokens" 0 dangling;
  check_int "no leaks" 0 (List.length leaks);
  check_int "no reports" 0 (List.length reports)

let demi_check_shutdown_catches_bugs () =
  let engine = Engine.create () in
  let demi = Demi.create ~engine ~cost:Cost.default ~sanitize:true () in
  let qd = Demi.queue demi in
  (* a pop nobody ever satisfies: its token stays pending forever *)
  ignore (Demi.pop demi qd);
  (* an allocation nobody frees *)
  ignore (Result.get_ok (Demi.sga_alloc demi "leaked"));
  let (dangling, leaks), reports =
    Dk_check.capture (fun () -> Demi.check_shutdown demi)
  in
  check_int "one dangling token" 1 dangling;
  check_int "one leaked allocation" 1 (List.length leaks);
  check_bool "both kinds reported" true
    (List.mem Dk_check.Token_dangling (kinds reports)
    && List.mem Dk_check.Leak (kinds reports))

(* ---------------- capture nesting ---------------- *)

let capture_nests_and_unwinds () =
  let mgr = smgr () in
  let b = Manager.alloc_exn mgr 16 in
  Buffer.free b;
  let inner, outer =
    Dk_check.capture (fun () ->
        let (), inner = Dk_check.capture (fun () -> ignore (Buffer.get b 0)) in
        ignore (Buffer.get b 1);
        inner)
  in
  check_bool "inner frame collected its access" true (inner <> []);
  (* identical access inside and out: the outer frame must hold only
     its own access's reports, none of the inner frame's *)
  check_int "outer frame got only its own" (List.length inner)
    (List.length outer);
  (* after captures unwind, reports raise again *)
  check_bool "raises after unwind" true
    (try
       ignore (Buffer.get b 2);
       false
     with Dk_check.Violation _ -> true)

let () =
  Alcotest.run "dk_check"
    [
      ( "buffer-sanitizer",
        [
          Alcotest.test_case "use-after-free read" `Quick uaf_read;
          Alcotest.test_case "use-after-free write" `Quick uaf_write;
          Alcotest.test_case "violation raises" `Quick uaf_raises_outside_capture;
          Alcotest.test_case "double free" `Quick double_free;
          Alcotest.test_case "io_hold after release" `Quick io_hold_after_release;
        ] );
      ( "canary-poison",
        [
          Alcotest.test_case "smash above" `Quick canary_smash_above;
          Alcotest.test_case "smash below" `Quick canary_smash_below;
          Alcotest.test_case "clean free" `Quick clean_free_has_no_reports;
          Alcotest.test_case "poison on free" `Quick poison_on_free;
        ] );
      ( "leaks",
        [
          Alcotest.test_case "shutdown leak report" `Quick leak_report;
          Alcotest.test_case "deferred release" `Quick
            deferred_release_is_not_a_leak_after_completion;
          Alcotest.test_case "sanitize off = seed behavior" `Quick
            unsanitized_manager_unchanged;
        ] );
      ( "token-audit",
        [
          Alcotest.test_case "double complete" `Quick token_double_complete;
          Alcotest.test_case "double complete after watch" `Quick
            token_double_complete_after_watch;
          Alcotest.test_case "redeem after watch (audit)" `Quick
            token_redeem_after_watch_audit;
          Alcotest.test_case "watch+wait raises (enforced)" `Quick
            token_watch_then_wait_raises;
          Alcotest.test_case "Demi watch+wait raises" `Quick
            demi_watch_then_wait_raises;
          Alcotest.test_case "dangling tokens" `Quick token_dangling;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "clean run" `Quick demi_check_shutdown;
          Alcotest.test_case "dangling + leak" `Quick
            demi_check_shutdown_catches_bugs;
          Alcotest.test_case "capture nesting" `Quick capture_nests_and_unwinds;
        ] );
    ]
