(* Tests for dk_sim: engine determinism and timers, rng, histogram,
   cost model, trace. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64

module Engine = Dk_sim.Engine

(* ---------------- Engine ---------------- *)

let engine_clock_starts_zero () =
  let e = Engine.create () in
  check_i64 "t0" 0L (Engine.now e)

let engine_consume () =
  let e = Engine.create () in
  Engine.consume e 100L;
  check_i64 "advanced" 100L (Engine.now e);
  Engine.consume e (-5L);
  check_i64 "negative ignored" 100L (Engine.now e)

let engine_event_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.after e 30L (fun () -> log := 3 :: !log));
  ignore (Engine.after e 10L (fun () -> log := 1 :: !log));
  ignore (Engine.after e 20L (fun () -> log := 2 :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !log);
  check_i64 "clock at last event" 30L (Engine.now e)

let engine_tie_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.after e 10L (fun () -> log := "a" :: !log));
  ignore (Engine.after e 10L (fun () -> log := "b" :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "fifo ties" [ "a"; "b" ] (List.rev !log)

let engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.after e 5L (fun () ->
         log := "outer" :: !log;
         ignore (Engine.after e 5L (fun () -> log := "inner" :: !log))));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ]
    (List.rev !log);
  check_i64 "time" 10L (Engine.now e)

let engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.after e 10L (fun () -> fired := true) in
  check_int "pending 1" 1 (Engine.pending e);
  Engine.cancel timer;
  check_int "pending 0" 0 (Engine.pending e);
  Engine.run e;
  check_bool "not fired" false !fired;
  (* double cancel is a no-op *)
  Engine.cancel timer

let engine_cancel_after_fire () =
  let e = Engine.create () in
  let count = ref 0 in
  let timer = Engine.after e 1L (fun () -> incr count) in
  Engine.run e;
  Engine.cancel timer;
  (* must not corrupt the pending count *)
  ignore (Engine.after e 1L (fun () -> incr count));
  check_int "pending" 1 (Engine.pending e);
  Engine.run e;
  check_int "both ran" 2 !count

let engine_run_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  for _ = 1 to 10 do
    ignore (Engine.after e 10L (fun () -> incr hits))
  done;
  let reached = Engine.run_until e (fun () -> !hits >= 3) in
  check_bool "pred reached" true reached;
  check_int "stopped at 3" 3 !hits;
  let reached = Engine.run_until e (fun () -> !hits >= 100) in
  check_bool "drained without pred" false reached

let engine_run_for () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.after e 10L (fun () -> log := 10 :: !log));
  ignore (Engine.after e 50L (fun () -> log := 50 :: !log));
  Engine.run_for e 20L;
  check (Alcotest.list Alcotest.int) "only early event" [ 10 ] (List.rev !log);
  check_i64 "clock at window end" 20L (Engine.now e);
  Engine.run e;
  check (Alcotest.list Alcotest.int) "then the rest" [ 10; 50 ] (List.rev !log)

let engine_past_schedule_clamped () =
  let e = Engine.create () in
  Engine.consume e 100L;
  let at = ref 0L in
  ignore (Engine.at e 10L (fun () -> at := Engine.now e));
  Engine.run e;
  check_i64 "clamped to now" 100L !at

let engine_run_for_with_cancelled_head () =
  let e = Engine.create () in
  let fired = ref [] in
  let t1 = Engine.after e 5L (fun () -> fired := 5 :: !fired) in
  ignore (Engine.after e 10L (fun () -> fired := 10 :: !fired));
  Engine.cancel t1;
  Engine.run_for e 20L;
  check (Alcotest.list Alcotest.int) "only live event" [ 10 ] (List.rev !fired);
  check_i64 "clock at window end" 20L (Engine.now e)

(* Determinism: same script twice gives identical event sequences. *)
let engine_deterministic () =
  let run () =
    let e = Engine.create () in
    let rng = Dk_sim.Rng.create 42L in
    let log = ref [] in
    for i = 1 to 50 do
      let d = Int64.of_int (Dk_sim.Rng.int rng 100) in
      ignore (Engine.after e d (fun () -> log := (i, Engine.now e) :: !log))
    done;
    Engine.run e;
    !log
  in
  check_bool "identical logs" true (run () = run ())

(* ---------------- Rng ---------------- *)

module Rng = Dk_sim.Rng

let rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    check_i64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let rng_bounds () =
  let r = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check_bool "unit interval" true (f >= 0.0 && f < 1.0)
  done

let rng_split_independent () =
  let parent = Rng.create 3L in
  let child = Rng.split parent in
  let a = Rng.next_int64 child in
  let b = Rng.next_int64 parent in
  check_bool "streams differ" true (a <> b)

let rng_exponential_positive () =
  let r = Rng.create 9L in
  let sum = ref 0.0 in
  for _ = 1 to 1000 do
    let v = Rng.exponential r 100.0 in
    check_bool "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. 1000.0 in
  check_bool "mean near 100" true (mean > 70.0 && mean < 130.0)

let rng_bad_bound () =
  let r = Rng.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

(* ---------------- Histogram ---------------- *)

module H = Dk_sim.Histogram

let hist_empty () =
  let h = H.create () in
  check_int "count" 0 (H.count h);
  check_i64 "quantile of empty" 0L (H.quantile h 0.5)

let hist_exact_small () =
  let h = H.create () in
  List.iter (fun v -> H.record h (Int64.of_int v)) [ 1; 2; 3; 4; 5 ];
  check_i64 "min" 1L (H.min h);
  check_i64 "max" 5L (H.max h);
  check_i64 "p50" 3L (H.quantile h 0.5);
  check (Alcotest.float 0.01) "mean" 3.0 (H.mean h)

(* One sample: every quantile, plus min/max/mean, is that value. *)
let hist_single_sample () =
  let h = H.create () in
  H.record h 4242L;
  check_int "count" 1 (H.count h);
  check_i64 "min" 4242L (H.min h);
  check_i64 "max" 4242L (H.max h);
  check (Alcotest.float 0.01) "mean" 4242.0 (H.mean h);
  List.iter
    (fun q -> check_i64 (Printf.sprintf "q%.2f" q) 4242L (H.quantile h q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let hist_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone" ~count:100
    QCheck.(small_list (int_bound 1_000_000))
    (fun vs ->
      QCheck.assume (vs <> []);
      let h = H.create () in
      List.iter (fun v -> H.record h (Int64.of_int v)) vs;
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let values = List.map (H.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> Int64.compare a b <= 0 && mono rest
        | _ -> true
      in
      mono values)

let hist_quantile_bounded =
  QCheck.Test.make ~name:"quantile within [min,max]" ~count:100
    QCheck.(small_list (int_bound 10_000_000))
    (fun vs ->
      QCheck.assume (vs <> []);
      let h = H.create () in
      List.iter (fun v -> H.record h (Int64.of_int v)) vs;
      let p99 = H.quantile h 0.99 in
      Int64.compare p99 (H.max h) <= 0 && Int64.compare (H.quantile h 0.0) (H.min h) >= 0)

let hist_accuracy () =
  (* log buckets: relative error under ~3% for large values *)
  let h = H.create () in
  H.record h 1_000_000L;
  let q = Int64.to_float (H.quantile h 0.5) in
  check_bool "within 3%" true (abs_float (q -. 1_000_000.0) /. 1_000_000.0 < 0.03)

let hist_merge () =
  let a = H.create () and b = H.create () in
  H.record a 10L;
  H.record b 20L;
  let m = H.merge a b in
  check_int "merged count" 2 (H.count m);
  check_i64 "merged min" 10L (H.min m);
  check_i64 "merged max" 20L (H.max m)

let hist_clear () =
  let h = H.create () in
  H.record h 5L;
  H.clear h;
  check_int "cleared" 0 (H.count h)

(* ---------------- Cost ---------------- *)

module Cost = Dk_sim.Cost

let cost_copy_matches_paper () =
  (* §3.2: copying a 4 KB page ~ 1 us *)
  let c = Cost.copy_ns Cost.default 4096 in
  check_bool "4KB copy near 1us" true
    (Int64.compare c 950L > 0 && Int64.compare c 1100L < 0)

let cost_monotone () =
  let d = Cost.default in
  check_bool "copy grows" true
    (Int64.compare (Cost.copy_ns d 100) (Cost.copy_ns d 1000) < 0);
  check_bool "wire grows" true
    (Int64.compare (Cost.wire_ns d 64) (Cost.wire_ns d 1500) < 0);
  check_bool "dma grows" true
    (Int64.compare (Cost.dma_ns d 0) (Cost.dma_ns d 4096) < 0)

let cost_bypass_cheaper_than_kernel () =
  let d = Cost.default in
  (* one bypass send op vs one kernel-mediated op, fixed costs only *)
  let bypass = Int64.add d.Cost.pcie_doorbell d.Cost.user_net_per_pkt in
  let kernel = Int64.add d.Cost.syscall d.Cost.kernel_net_per_pkt in
  check_bool "bypass < kernel" true (Int64.compare bypass kernel < 0)

let cost_cycles () =
  let d = Cost.default in
  check_i64 "4000 cycles at 4GHz = 1000ns" 1000L (Cost.cycles_to_ns d 4000)

(* ---------------- Trace ---------------- *)

module Trace = Dk_sim.Trace

let trace_disabled_by_default () =
  let t = Trace.create () in
  Trace.emit t 0L "x";
  check_int "no entries" 0 (List.length (Trace.entries t))

let trace_enabled () =
  let t = Trace.create () in
  Trace.enable t;
  Trace.emit t 1L "a";
  Trace.emitf t 2L "b %d" 42;
  let es = Trace.entries t in
  check_int "two entries" 2 (List.length es);
  check Alcotest.string "formatted" "b 42" (snd (List.nth es 1))

let trace_bounded () =
  let t = Trace.create ~capacity:10 () in
  Trace.enable t;
  for i = 1 to 100 do
    Trace.emit t (Int64.of_int i) "e"
  done;
  check_bool "bounded" true (List.length (Trace.entries t) <= 10)

(* Property: with random schedules and cancellations, events fire in
   non-decreasing time order and cancelled events never fire. *)
let engine_timer_stress_prop =
  QCheck.Test.make ~name:"timers fire in order; cancelled never fire" ~count:200
    QCheck.(small_list (pair (int_bound 1000) bool))
    (fun script ->
      let e = Engine.create () in
      let fired = ref [] in
      let cancelled_fired = ref false in
      let timers =
        List.mapi
          (fun i (delay, cancel_it) ->
            let timer =
              Engine.after e (Int64.of_int delay) (fun () ->
                  fired := (i, Engine.now e) :: !fired;
                  if cancel_it then cancelled_fired := true)
            in
            (timer, cancel_it))
          script
      in
      List.iter (fun (timer, c) -> if c then Engine.cancel timer) timers;
      Engine.run e;
      let times = List.rev_map snd !fired in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> Int64.compare a b <= 0 && non_decreasing rest
        | _ -> true
      in
      (not !cancelled_fired) && non_decreasing times
      && Engine.pending e = 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dk_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "clock starts at zero" `Quick engine_clock_starts_zero;
          Alcotest.test_case "consume" `Quick engine_consume;
          Alcotest.test_case "event order" `Quick engine_event_order;
          Alcotest.test_case "tie fifo" `Quick engine_tie_fifo;
          Alcotest.test_case "nested schedule" `Quick engine_nested_schedule;
          Alcotest.test_case "cancel" `Quick engine_cancel;
          Alcotest.test_case "cancel after fire" `Quick engine_cancel_after_fire;
          Alcotest.test_case "run_until" `Quick engine_run_until;
          Alcotest.test_case "run_for" `Quick engine_run_for;
          Alcotest.test_case "run_for cancelled head" `Quick engine_run_for_with_cancelled_head;
          Alcotest.test_case "past schedule clamped" `Quick engine_past_schedule_clamped;
          Alcotest.test_case "deterministic" `Quick engine_deterministic;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "bounds" `Quick rng_bounds;
          Alcotest.test_case "split independent" `Quick rng_split_independent;
          Alcotest.test_case "exponential" `Quick rng_exponential_positive;
          Alcotest.test_case "bad bound" `Quick rng_bad_bound;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick hist_empty;
          Alcotest.test_case "single sample" `Quick hist_single_sample;
          Alcotest.test_case "exact small values" `Quick hist_exact_small;
          Alcotest.test_case "log bucket accuracy" `Quick hist_accuracy;
          Alcotest.test_case "merge" `Quick hist_merge;
          Alcotest.test_case "clear" `Quick hist_clear;
        ] );
      qsuite "histogram-props" [ hist_quantile_monotone; hist_quantile_bounded ];
      qsuite "engine-props" [ engine_timer_stress_prop ];
      ( "cost",
        [
          Alcotest.test_case "copy matches paper" `Quick cost_copy_matches_paper;
          Alcotest.test_case "monotone" `Quick cost_monotone;
          Alcotest.test_case "bypass cheaper" `Quick cost_bypass_cheaper_than_kernel;
          Alcotest.test_case "cycle conversion" `Quick cost_cycles;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick trace_disabled_by_default;
          Alcotest.test_case "enabled" `Quick trace_enabled;
          Alcotest.test_case "bounded" `Quick trace_bounded;
        ] );
    ]
