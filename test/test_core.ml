(* Tests for the Demikernel core: tokens, memq, the Figure-3 interface
   over TCP/UDP, composed queues (filter/map/sort/merge/qconnect),
   storage queues with recovery, RDMA queues with libOS buffer
   management and flow control, transparent memory registration, and
   wait semantics. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Sga = Dk_mem.Sga
module Types = Demikernel.Types
module Demi = Demikernel.Demi
module Prog = Dk_device.Prog
module Setup = Dk_apps.Sim_setup

let cost = Cost.default

let solo_demi () =
  let engine = Engine.create () in
  (engine, Demi.create ~engine ~cost ())

let sga_str s = Sga.of_string s

let expect_popped = function
  | Types.Popped sga -> Sga.to_string sga
  | r -> Alcotest.failf "expected Popped, got %a" Types.pp_op_result r

(* ---------------- tokens & wait ---------------- *)

let wait_bad_token () =
  let _, demi = solo_demi () in
  check_bool "bad token" true (Demi.wait demi 9999 = Types.Failed `Bad_qtoken)

let wait_deadlock () =
  let _, demi = solo_demi () in
  let qd = Demi.queue demi in
  match Demi.pop demi qd with
  | Error _ -> Alcotest.fail "pop"
  | Ok tok ->
      (* nothing will ever arrive and no events exist *)
      check_bool "deadlock detected" true (Demi.wait demi tok = Types.Failed `Deadlock)

let wait_charges_poll () =
  let engine, demi = solo_demi () in
  let qd = Demi.queue demi in
  ignore (Engine.after engine 1000L (fun () -> ()));
  let tok = Result.get_ok (Demi.pop demi qd) in
  let t0 = Engine.now engine in
  ignore (Demi.wait demi tok);
  (* waited through one event + poll iterations; clock advanced *)
  check_bool "clock advanced" true (Int64.compare (Engine.now engine) t0 > 0)

(* ---------------- memq ---------------- *)

let memq_fifo () =
  let _, demi = solo_demi () in
  let qd = Demi.queue demi in
  List.iter
    (fun s ->
      match Demi.blocking_push demi qd (sga_str s) with
      | Types.Pushed -> ()
      | _ -> Alcotest.fail "push")
    [ "a"; "b"; "c" ];
  check_str "first" "a" (expect_popped (Demi.blocking_pop demi qd));
  check_str "second" "b" (expect_popped (Demi.blocking_pop demi qd));
  check_str "third" "c" (expect_popped (Demi.blocking_pop demi qd))

let memq_atomicity () =
  (* a multi-segment sga pops out as one element with boundaries *)
  let _, demi = solo_demi () in
  let qd = Demi.queue demi in
  let sga = Sga.of_strings [ "seg1"; "seg2"; "seg3" ] in
  ignore (Demi.blocking_push demi qd sga);
  match Demi.blocking_pop demi qd with
  | Types.Popped out ->
      check_int "segments preserved" 3 (Sga.segment_count out);
      check_str "payload" "seg1seg2seg3" (Sga.to_string out)
  | r -> Alcotest.failf "unexpected %a" Types.pp_op_result r

let memq_pop_before_push () =
  let _, demi = solo_demi () in
  let qd = Demi.queue demi in
  let tok = Result.get_ok (Demi.pop demi qd) in
  ignore (Demi.blocking_push demi qd (sga_str "late"));
  check_str "completed by later push" "late" (expect_popped (Demi.wait demi tok))

let memq_close_fails_pop () =
  let _, demi = solo_demi () in
  let qd = Demi.queue demi in
  let tok = Result.get_ok (Demi.pop demi qd) in
  ignore (Demi.close demi qd);
  check_bool "pop failed on close" true
    (Demi.wait demi tok = Types.Failed `Queue_closed);
  check_bool "qd gone" true (Demi.pop demi qd = Error `Bad_qd)

(* wait wakes exactly one pop per element (§4.4) *)
let memq_exactly_one_wakeup () =
  let _, demi = solo_demi () in
  let qd = Demi.queue demi in
  let t1 = Result.get_ok (Demi.pop demi qd) in
  let t2 = Result.get_ok (Demi.pop demi qd) in
  ignore (Demi.blocking_push demi qd (sga_str "only"));
  let done1 = Demi.try_wait demi t1 in
  let done2 = Demi.try_wait demi t2 in
  check_bool "exactly one completed" true
    ((done1 <> None) <> (done2 <> None))

(* ---------------- wait_any / wait_all ---------------- *)

let wait_any_returns_first () =
  let engine, demi = solo_demi () in
  let q1 = Demi.queue demi and q2 = Demi.queue demi in
  let t1 = Result.get_ok (Demi.pop demi q1) in
  let t2 = Result.get_ok (Demi.pop demi q2) in
  ignore
    (Engine.after engine 500L (fun () ->
         ignore (Demi.push demi q2 (sga_str "two"))));
  (match Demi.wait_any demi [ t1; t2 ] with
  | Some (tok, Types.Popped sga) ->
      check_bool "q2's token" true (tok = t2);
      check_str "value" "two" (Sga.to_string sga)
  | _ -> Alcotest.fail "expected completion");
  (* t1 still outstanding *)
  check_bool "t1 pending" true (Demi.try_wait demi t1 = None)

let wait_any_timeout () =
  let _, demi = solo_demi () in
  let q = Demi.queue demi in
  let tok = Result.get_ok (Demi.pop demi q) in
  check_bool "timed out" true (Demi.wait_any ~timeout:1000L demi [ tok ] = None)

let wait_all_collects () =
  let engine, demi = solo_demi () in
  let q1 = Demi.queue demi and q2 = Demi.queue demi in
  let t1 = Result.get_ok (Demi.pop demi q1) in
  let t2 = Result.get_ok (Demi.pop demi q2) in
  ignore
    (Engine.after engine 100L (fun () ->
         ignore (Demi.push demi q1 (sga_str "one"))));
  ignore
    (Engine.after engine 200L (fun () ->
         ignore (Demi.push demi q2 (sga_str "two"))));
  match Demi.wait_all demi [ t1; t2 ] with
  | Some [ (tok1, r1); (tok2, r2) ] ->
      check_bool "order" true (tok1 = t1 && tok2 = t2);
      check_str "r1" "one" (expect_popped r1);
      check_str "r2" "two" (expect_popped r2)
  | _ -> Alcotest.fail "expected both"

let wait_timeout_keeps_token () =
  let engine, demi = solo_demi () in
  let q = Demi.queue demi in
  let tok = Result.get_ok (Demi.pop demi q) in
  check_bool "first wait times out" true
    (Demi.wait_timeout demi tok ~timeout:500L = Types.Failed `Timeout);
  ignore
    (Engine.after engine 10L (fun () ->
         ignore (Demi.push demi q (sga_str "finally"))));
  check_str "second wait succeeds" "finally"
    (expect_popped (Demi.wait demi tok))

(* Regression: a completion whose event lands exactly on the deadline
   is inside the window — redemption wins the tie, never the timeout —
   even though the poll loop's own CPU charges may have pushed the
   clock past the event before it ran. *)
let wait_timeout_deadline_tie () =
  let engine, demi = solo_demi () in
  let q = Demi.queue demi in
  let tok = Result.get_ok (Demi.pop demi q) in
  ignore
    (Engine.after engine 500L (fun () ->
         ignore (Demi.push demi q (sga_str "on the wire"))));
  check_str "tie goes to the completion" "on the wire"
    (expect_popped (Demi.wait_timeout demi tok ~timeout:500L))

let wait_timeout_just_late () =
  let engine, demi = solo_demi () in
  let q = Demi.queue demi in
  let tok = Result.get_ok (Demi.pop demi q) in
  ignore
    (Engine.after engine 501L (fun () ->
         ignore (Demi.push demi q (sga_str "late"))));
  check_bool "one past the deadline times out" true
    (Demi.wait_timeout demi tok ~timeout:500L = Types.Failed `Timeout);
  check_str "token survives to a later wait" "late"
    (expect_popped (Demi.wait demi tok))

(* ---------------- TCP queues over two runtimes ---------------- *)

let demi_pair () =
  let duo = Setup.two_hosts () in
  let da =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let db =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in
  (duo, da, db)

let start_echo demi port =
  match Dk_apps.Echo.start_demi_server ~demi ~port with
  | Ok () -> ()
  | Error e -> Alcotest.failf "echo server: %s" (Types.error_to_string e)

let tcp_queue_echo () =
  let duo, da, db = demi_pair () in
  start_echo db 7;
  let qd = Result.get_ok (Demi.socket da `Tcp) in
  (match Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "connect: %s" (Types.error_to_string e));
  let sga = Sga.of_strings [ "hello"; " "; "queues" ] in
  check_bool "pushed" true (Demi.blocking_push da qd sga = Types.Pushed);
  match Demi.blocking_pop da qd with
  | Types.Popped reply ->
      check_str "echoed" "hello queues" (Sga.to_string reply);
      (* framing preserved the segment boundaries end-to-end *)
      check_int "segments" 3 (Sga.segment_count reply)
  | r -> Alcotest.failf "unexpected %a" Types.pp_op_result r

let tcp_queue_large_message () =
  (* one message spanning many MSS-sized segments stays atomic *)
  let duo, da, db = demi_pair () in
  start_echo db 7;
  let qd = Result.get_ok (Demi.socket da `Tcp) in
  ignore (Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7));
  let big = String.init 20_000 (fun i -> Char.chr (i land 0xff)) in
  ignore (Demi.blocking_push da qd (sga_str big));
  match Demi.blocking_pop da qd with
  | Types.Popped reply ->
      check_int "length" 20_000 (Sga.length reply);
      check_bool "intact" true (String.equal big (Sga.to_string reply))
  | r -> Alcotest.failf "unexpected %a" Types.pp_op_result r

let tcp_connect_refused () =
  let duo, da, _ = demi_pair () in
  let qd = Result.get_ok (Demi.socket da `Tcp) in
  check_bool "refused" true
    (Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 99) = Error `Refused)

let tcp_close_propagates () =
  let duo, da, db = demi_pair () in
  let server_qd = ref None in
  let lqd = Result.get_ok (Demi.socket db `Tcp) in
  ignore (Demi.bind db lqd ~port:7);
  ignore (Demi.listen db lqd);
  let atok = Result.get_ok (Demi.accept_async db lqd) in
  Demi.watch db atok (function
    | Types.Accepted qd -> server_qd := Some qd
    | _ -> ());
  let qd = Result.get_ok (Demi.socket da `Tcp) in
  ignore (Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7));
  ignore (Engine.run_until duo.Setup.engine (fun () -> !server_qd <> None));
  (* server pops; client closes; server's pop must fail *)
  let sqd = Option.get !server_qd in
  let ptok = Result.get_ok (Demi.pop db sqd) in
  ignore (Demi.close da qd);
  let result = Demi.wait db ptok in
  check_bool "pop failed after peer close" true
    (match result with Types.Failed _ -> true | _ -> false)

let udp_queue_roundtrip () =
  let duo, da, db = demi_pair () in
  (* server *)
  let sqd = Result.get_ok (Demi.socket db `Udp) in
  ignore (Demi.bind db sqd ~port:53);
  ignore (Demi.connect db sqd ~dst:(Dk_net.Addr.endpoint duo.Setup.a.Setup.ip 54));
  let rec serve () =
    match Demi.pop db sqd with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch db tok (function
          | Types.Popped sga ->
              let reply = sga_str ("ack:" ^ Sga.to_string sga) in
              (match Demi.push db sqd reply with
              | Ok t -> Demi.watch db t (fun _ -> ())
              | Error _ -> ());
              serve ()
          | _ -> ())
  in
  serve ();
  (* client *)
  let cqd = Result.get_ok (Demi.socket da `Udp) in
  ignore (Demi.bind da cqd ~port:54);
  ignore (Demi.connect da cqd ~dst:(Setup.endpoint duo.Setup.b 53));
  ignore (Demi.blocking_push da cqd (sga_str "ping"));
  check_str "reply" "ack:ping" (expect_popped (Demi.blocking_pop da cqd))

let close_listener_fails_pending_accept () =
  let duo = Setup.two_hosts () in
  let db =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in
  let lqd = Result.get_ok (Demi.socket db `Tcp) in
  ignore (Demi.bind db lqd ~port:7);
  ignore (Demi.listen db lqd);
  let tok = Result.get_ok (Demi.accept_async db lqd) in
  ignore (Demi.close db lqd);
  check_bool "pending accept failed" true
    (Demi.wait db tok = Types.Failed `Queue_closed)

(* ---------------- composed queues ---------------- *)

let filter_cpu_fallback () =
  let _, demi = solo_demi () in
  let base = Demi.queue demi in
  let fq = Result.get_ok (Demi.filter demi base (Prog.Prefix "keep")) in
  check_bool "not offloaded" false (Demi.filter_offloaded demi fq);
  ignore (Demi.blocking_push demi fq (sga_str "keep me"));
  ignore (Demi.blocking_push demi fq (sga_str "drop me"));
  ignore (Demi.blocking_push demi fq (sga_str "keep too"));
  (* pops from the filtered queue see only matching elements *)
  check_str "first" "keep me" (expect_popped (Demi.blocking_pop demi fq));
  check_str "second" "keep too" (expect_popped (Demi.blocking_pop demi fq))

let filter_charges_cpu () =
  let engine, demi = solo_demi () in
  let base = Demi.queue demi in
  let fq = Result.get_ok (Demi.filter demi base (Prog.Prefix "x")) in
  let t0 = Engine.now engine in
  ignore (Demi.blocking_push demi fq (sga_str "xyz"));
  check_bool "cpu time charged" true (Int64.compare (Engine.now engine) t0 > 0)

let map_transforms () =
  let _, demi = solo_demi () in
  let base = Demi.queue demi in
  let mq = Result.get_ok (Demi.map demi base (Prog.Prepend "H:")) in
  ignore (Demi.blocking_push demi mq (sga_str "body"));
  check_str "mapped on push+pop path" "H:H:body"
    (expect_popped (Demi.blocking_pop demi mq))

let map_fn_pop_only () =
  let _, demi = solo_demi () in
  let base = Demi.queue demi in
  ignore (Demi.blocking_push demi base (sga_str "abc"));
  let mq =
    Result.get_ok
      (Demi.map_fn demi base (fun sga ->
           sga_str (String.uppercase_ascii (Sga.to_string sga))))
  in
  check_str "uppercased" "ABC" (expect_popped (Demi.blocking_pop demi mq))

let sort_priority () =
  let _, demi = solo_demi () in
  let base = Demi.queue demi in
  (* priority: shorter strings first *)
  let sq =
    Result.get_ok
      (Demi.sort demi base (fun a b -> Sga.length a < Sga.length b))
  in
  ignore (Demi.blocking_push demi sq (sga_str "mediums"));
  ignore (Demi.blocking_push demi sq (sga_str "tiny"));
  ignore (Demi.blocking_push demi sq (sga_str "the longest one"));
  check_str "highest priority first" "tiny"
    (expect_popped (Demi.blocking_pop demi sq));
  check_str "then medium" "mediums" (expect_popped (Demi.blocking_pop demi sq));
  check_str "then longest" "the longest one"
    (expect_popped (Demi.blocking_pop demi sq))

let merge_pops_both () =
  let _, demi = solo_demi () in
  let q1 = Demi.queue demi and q2 = Demi.queue demi in
  let m = Result.get_ok (Demi.merge demi q1 q2) in
  ignore (Demi.blocking_push demi q1 (sga_str "from1"));
  ignore (Demi.blocking_push demi q2 (sga_str "from2"));
  let a = expect_popped (Demi.blocking_pop demi m) in
  let b = expect_popped (Demi.blocking_pop demi m) in
  check_bool "both arrived" true
    (List.sort compare [ a; b ] = [ "from1"; "from2" ])

let merge_push_duplicates () =
  let _, demi = solo_demi () in
  let q1 = Demi.queue demi and q2 = Demi.queue demi in
  let m = Result.get_ok (Demi.merge demi q1 q2) in
  ignore (Demi.blocking_push demi m (sga_str "dup"));
  (* both parents got it... but the merged queue's pump is also popping
     the parents. The element lands back in the merged queue twice. *)
  check_str "copy one" "dup" (expect_popped (Demi.blocking_pop demi m));
  check_str "copy two" "dup" (expect_popped (Demi.blocking_pop demi m))

let qconnect_splices () =
  let _, demi = solo_demi () in
  let src = Demi.queue demi and dst = Demi.queue demi in
  ignore (Demi.qconnect demi ~src ~dst);
  ignore (Demi.blocking_push demi src (sga_str "spliced"));
  check_str "arrived at dst" "spliced" (expect_popped (Demi.blocking_pop demi dst))

let steer_partitions_completely () =
  let _, demi = solo_demi () in
  let base = Demi.queue demi in
  let ways = 4 in
  let outs =
    Result.get_ok (Demi.steer demi base ~ways ~hash_off:0 ~hash_len:8)
  in
  check_int "four ways" ways (List.length outs);
  (* push 40 keyed messages into the parent *)
  for i = 0 to 39 do
    ignore
      (Demi.blocking_push demi base (sga_str (Printf.sprintf "key-%04d!" i)))
  done;
  (* every message lands on exactly one output *)
  let counts =
    List.map
      (fun qd ->
        let n = ref 0 in
        let rec drain () =
          match Demi.pop demi qd with
          | Error _ -> ()
          | Ok tok -> (
              match Demi.wait_timeout demi tok ~timeout:1000L with
              | Types.Popped _ ->
                  incr n;
                  drain ()
              | _ -> ())
        in
        drain ();
        !n)
      outs
  in
  check_int "all delivered exactly once" 40 (List.fold_left ( + ) 0 counts);
  check_bool "spread across ways" true
    (List.length (List.filter (fun c -> c > 0) counts) >= 2)

let steer_is_deterministic_per_key () =
  (* equal keys always land on the same way: per-key FIFO *)
  let _, demi = solo_demi () in
  let base = Demi.queue demi in
  let outs = Result.get_ok (Demi.steer demi base ~ways:3 ~hash_off:0 ~hash_len:5) in
  for i = 1 to 6 do
    ignore
      (Demi.blocking_push demi base (sga_str (Printf.sprintf "kAAAA-%d" i)))
  done;
  (* all six share the 5-byte prefix hash: one way got them all, in order *)
  let found =
    List.filter_map
      (fun qd ->
        let collected = ref [] in
        let rec drain () =
          match Demi.pop demi qd with
          | Error _ -> ()
          | Ok tok -> (
              match Demi.wait_timeout demi tok ~timeout:1000L with
              | Types.Popped sga ->
                  collected := Sga.to_string sga :: !collected;
                  drain ()
              | _ -> ())
        in
        drain ();
        if !collected = [] then None else Some (List.rev !collected))
      outs
  in
  match found with
  | [ msgs ] ->
      check_int "all on one way" 6 (List.length msgs);
      check_str "fifo within way" "kAAAA-1" (List.hd msgs)
  | _ -> Alcotest.fail "keys split across ways"

let merge_stays_open_until_both_close () =
  let _, demi = solo_demi () in
  let q1 = Demi.queue demi and q2 = Demi.queue demi in
  let m = Result.get_ok (Demi.merge demi q1 q2) in
  ignore (Demi.close demi q1);
  (* the other parent still feeds the merged queue *)
  ignore (Demi.blocking_push demi q2 (sga_str "survivor"));
  check_str "still flowing" "survivor" (expect_popped (Demi.blocking_pop demi m));
  ignore (Demi.close demi q2);
  let tok = Result.get_ok (Demi.pop demi m) in
  check_bool "closed after both" true
    (Demi.wait_timeout demi tok ~timeout:1000L = Types.Failed `Queue_closed)

let qconnect_across_kinds () =
  (* splice a memq into a TCP connection queue: elements flow onto the
     wire and out of the peer *)
  let duo, da, db = demi_pair () in
  start_echo db 7;
  let qd = Result.get_ok (Demi.socket da `Tcp) in
  ignore (Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7));
  let src = Demi.queue da in
  ignore (Demi.qconnect da ~src ~dst:qd);
  ignore (Demi.blocking_push da src (sga_str "via splice"));
  check_str "echoed through the splice" "via splice"
    (expect_popped (Demi.blocking_pop da qd))

let wait_all_partial_timeout () =
  let engine, demi = solo_demi () in
  let q1 = Demi.queue demi and q2 = Demi.queue demi in
  let t1 = Result.get_ok (Demi.pop demi q1) in
  let t2 = Result.get_ok (Demi.pop demi q2) in
  ignore
    (Engine.after engine 100L (fun () ->
         ignore (Demi.push demi q1 (sga_str "only one"))));
  (* only t1 completes; wait_all must time out and leave t1 redeemable *)
  check_bool "timed out" true (Demi.wait_all ~timeout:5000L demi [ t1; t2 ] = None);
  check_str "t1 still redeemable" "only one"
    (expect_popped (Demi.wait demi t1))

let double_close_is_bad_qd () =
  let _, demi = solo_demi () in
  let qd = Demi.queue demi in
  check_bool "first close" true (Demi.close demi qd = Ok ());
  check_bool "second close" true (Demi.close demi qd = Error `Bad_qd)

let steer_invalid_ways () =
  let _, demi = solo_demi () in
  let qd = Demi.queue demi in
  Alcotest.check_raises "ways=0"
    (Invalid_argument "Demi.steer: ways must be positive") (fun () ->
      ignore (Demi.steer demi qd ~ways:0 ~hash_off:0 ~hash_len:4))

let push_after_peer_close_fails () =
  let duo, da, db = demi_pair () in
  let server_qd = ref None in
  let lqd = Result.get_ok (Demi.socket db `Tcp) in
  ignore (Demi.bind db lqd ~port:7);
  ignore (Demi.listen db lqd);
  Demi.watch db
    (Result.get_ok (Demi.accept_async db lqd))
    (function Types.Accepted qd -> server_qd := Some qd | _ -> ());
  let qd = Result.get_ok (Demi.socket da `Tcp) in
  ignore (Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7));
  ignore (Engine.run_until duo.Setup.engine (fun () -> !server_qd <> None));
  let sqd = Option.get !server_qd in
  (* graceful peer close: half-close semantics — the server may still
     send (the client's read side is open until the server FINs) *)
  ignore (Demi.close da qd);
  Engine.run duo.Setup.engine;
  let half_close_push =
    match Demi.push db sqd (sga_str "half-close data") with
    | Error e -> Types.Failed e
    | Ok tok -> Demi.wait_timeout db tok ~timeout:1_000_000L
  in
  check_bool "half-close push still works" true
    (half_close_push = Types.Pushed);
  (* but after the server closes too, pushes must fail *)
  ignore (Demi.close db sqd);
  check_bool "push after full close fails" true
    (Demi.push db sqd (sga_str "too late") = Error `Bad_qd)

(* ---------------- device-offloaded filter ---------------- *)

let offload_duo () =
  let duo = Setup.two_hosts ~programmable:true () in
  let da =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let db =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in
  (duo, da, db)

let filter_offloads_on_programmable_nic () =
  let duo, da, db = offload_duo () in
  (* server-side UDP queue with device filter *)
  let sqd = Result.get_ok (Demi.socket db `Udp) in
  ignore (Demi.bind db sqd ~port:1000);
  let fq = Result.get_ok (Demi.filter db sqd (Prog.Prefix "keep")) in
  check_bool "offloaded" true (Demi.filter_offloaded db fq);
  (* client sends matching and non-matching datagrams *)
  let cqd = Result.get_ok (Demi.socket da `Udp) in
  ignore (Demi.connect da cqd ~dst:(Setup.endpoint duo.Setup.b 1000));
  ignore (Demi.blocking_push da cqd (sga_str "drop this"));
  ignore (Demi.blocking_push da cqd (sga_str "keep this"));
  check_str "only the matching one arrives" "keep this"
    (expect_popped (Demi.blocking_pop db fq));
  (* the dropped frame never consumed host CPU: it was filtered on-NIC *)
  let stats = Dk_device.Nic.stats duo.Setup.b.Setup.nic in
  check_bool "device filtered at least one frame" true
    (stats.Dk_device.Nic.rx_filtered >= 1)

let offload_does_not_break_other_traffic () =
  let duo, da, db = offload_duo () in
  (* a filtered queue on port 1000 must not affect port 2000 *)
  let sqd = Result.get_ok (Demi.socket db `Udp) in
  ignore (Demi.bind db sqd ~port:1000);
  ignore (Demi.filter db sqd (Prog.Prefix "keep"));
  let other = Result.get_ok (Demi.socket db `Udp) in
  ignore (Demi.bind db other ~port:2000);
  let cqd = Result.get_ok (Demi.socket da `Udp) in
  ignore (Demi.connect da cqd ~dst:(Setup.endpoint duo.Setup.b 2000));
  ignore (Demi.blocking_push da cqd (sga_str "unfiltered traffic"));
  check_str "arrives untouched" "unfiltered traffic"
    (expect_popped (Demi.blocking_pop db other))

(* ---------------- storage queues ---------------- *)

let demi_with_block () =
  let engine = Engine.create () in
  let block = Dk_device.Block.create ~engine ~cost () in
  let demi = Demi.create ~engine ~cost ~block () in
  (engine, demi)

let file_queue_roundtrip () =
  let _, demi = demi_with_block () in
  let qd = Result.get_ok (Demi.fcreate demi "wal") in
  ignore (Demi.blocking_push demi qd (Sga.of_strings [ "rec"; "ord1" ]));
  ignore (Demi.blocking_push demi qd (sga_str "record2"));
  (match Demi.blocking_pop demi qd with
  | Types.Popped sga ->
      check_str "first record" "record1" (Sga.to_string sga);
      check_int "segments preserved on disk" 2 (Sga.segment_count sga)
  | r -> Alcotest.failf "unexpected %a" Types.pp_op_result r);
  check_str "second record" "record2" (expect_popped (Demi.blocking_pop demi qd))

let file_queue_durability_latency () =
  (* a push takes at least the NVMe program latency *)
  let engine, demi = demi_with_block () in
  let qd = Result.get_ok (Demi.fcreate demi "lat") in
  let t0 = Engine.now engine in
  ignore (Demi.blocking_push demi qd (sga_str "data"));
  let elapsed = Int64.sub (Engine.now engine) t0 in
  check_bool "waited for flash" true
    (Int64.compare elapsed cost.Cost.nvme_write >= 0)

let file_queue_recovery () =
  let _, demi = demi_with_block () in
  let qd = Result.get_ok (Demi.fcreate demi "db") in
  List.iter
    (fun s -> ignore (Demi.blocking_push demi qd (sga_str s)))
    [ "alpha"; "beta"; "gamma" ];
  ignore (Demi.close demi qd);
  (* re-open: recovery scans the log from the device *)
  let qd2 = Result.get_ok (Demi.fopen demi "db") in
  check_str "alpha" "alpha" (expect_popped (Demi.blocking_pop demi qd2));
  check_str "beta" "beta" (expect_popped (Demi.blocking_pop demi qd2));
  check_str "gamma" "gamma" (expect_popped (Demi.blocking_pop demi qd2))

let file_queue_append_after_recovery () =
  let _, demi = demi_with_block () in
  let qd = Result.get_ok (Demi.fcreate demi "log") in
  ignore (Demi.blocking_push demi qd (sga_str "old"));
  ignore (Demi.close demi qd);
  let qd2 = Result.get_ok (Demi.fopen demi "log") in
  ignore (Demi.blocking_push demi qd2 (sga_str "new"));
  check_str "old first" "old" (expect_popped (Demi.blocking_pop demi qd2));
  check_str "then new" "new" (expect_popped (Demi.blocking_pop demi qd2))

let fopen_unknown_fails () =
  let _, demi = demi_with_block () in
  check_bool "no such file" true (Demi.fopen demi "ghost" = Error `Bad_qd)

(* Property: arbitrary record batches round-trip through the on-disk
   log with order, contents and segment boundaries intact. *)
let file_queue_roundtrip_prop =
  QCheck.Test.make ~name:"file queue round-trips arbitrary records" ~count:25
    QCheck.(small_list (small_list (string_of_size Gen.(0 -- 64))))
    (fun records ->
      QCheck.assume (records <> []);
      (* Framing requires at least one segment; normalise *)
      let records = List.map (function [] -> [ "" ] | r -> r) records in
      let engine = Engine.create () in
      let block = Dk_device.Block.create ~engine ~cost () in
      let demi = Demi.create ~engine ~cost ~block () in
      let qd = Result.get_ok (Demi.fcreate demi "prop.log") in
      List.for_all
        (fun segs ->
          Demi.blocking_push demi qd (Sga.of_strings segs) = Types.Pushed)
        records
      && List.for_all
           (fun segs ->
             match Demi.blocking_pop demi qd with
             | Types.Popped sga ->
                 List.map Dk_mem.Buffer.to_string (Sga.segments sga) = segs
             | _ -> false)
           records)

(* Property: UDP queues deliver each datagram as one atomic element,
   never merged or split, in order. *)
let udp_atomicity_prop =
  QCheck.Test.make ~name:"udp datagrams stay atomic and ordered" ~count:20
    QCheck.(small_list (string_of_size Gen.(1 -- 400)))
    (fun payloads ->
      QCheck.assume (payloads <> []);
      let duo = Setup.two_hosts () in
      let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
      let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
      let sqd = Result.get_ok (Demi.socket db `Udp) in
      (match Demi.bind db sqd ~port:9 with Ok () -> () | Error _ -> ());
      let cqd = Result.get_ok (Demi.socket da `Udp) in
      (match Demi.connect da cqd ~dst:(Setup.endpoint duo.Setup.b 9) with
      | Ok () -> ()
      | Error _ -> ());
      List.iter
        (fun payload ->
          ignore (Demi.blocking_push da cqd (sga_str payload)))
        payloads;
      List.for_all
        (fun want ->
          match
            Demi.wait_timeout db (Result.get_ok (Demi.pop db sqd))
              ~timeout:10_000_000L
          with
          | Types.Popped sga -> String.equal want (Sga.to_string sga)
          | _ -> false)
        payloads)

(* Property: a sorted queue drained after a full batch pops in
   priority order (stable for ties). *)
let compose_sort_prop =
  QCheck.Test.make ~name:"sort pops in priority order" ~count:100
    QCheck.(small_list (string_of_size Gen.(0 -- 12)))
    (fun inputs ->
      let engine = Engine.create () in
      let demi = Demi.create ~engine ~cost () in
      let base = Demi.queue demi in
      let sq =
        Result.get_ok
          (Demi.sort demi base (fun a b -> Sga.length a < Sga.length b))
      in
      List.iter
        (fun s -> ignore (Demi.blocking_push demi sq (sga_str s)))
        inputs;
      (* drain after all arrived: lengths must be non-decreasing *)
      let rec drain acc =
        match
          Demi.wait_timeout demi (Result.get_ok (Demi.pop demi sq))
            ~timeout:1000L
        with
        | Types.Popped sga -> drain (Sga.length sga :: acc)
        | _ -> List.rev acc
      in
      let lens = drain [] in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      List.length lens = List.length inputs && sorted lens)

(* Property: filter-then-map over a memq equals the list-model
   computation. *)
let compose_pipeline_prop =
  QCheck.Test.make ~name:"filter+map pipeline matches list model" ~count:100
    QCheck.(small_list (string_of_size Gen.(0 -- 20)))
    (fun inputs ->
      let _, demi =
        let engine = Engine.create () in
        (engine, Demi.create ~engine ~cost ())
      in
      let base = Demi.queue demi in
      let fq =
        Result.get_ok (Demi.filter_fn demi base (fun sga -> Sga.length sga mod 2 = 0))
      in
      let mq =
        Result.get_ok
          (Demi.map_fn demi fq (fun sga ->
               sga_str (String.uppercase_ascii (Sga.to_string sga))))
      in
      List.iter
        (fun sga_contents ->
          ignore (Demi.blocking_push demi base (sga_str sga_contents)))
        inputs;
      let expected =
        inputs
        |> List.filter (fun s -> String.length s mod 2 = 0)
        |> List.map String.uppercase_ascii
      in
      List.for_all
        (fun want ->
          match
            Demi.wait_timeout demi (Result.get_ok (Demi.pop demi mq))
              ~timeout:1000L
          with
          | Types.Popped sga -> String.equal want (Sga.to_string sga)
          | _ -> false)
        expected)

(* ---------------- RDMA queues ---------------- *)

let rdma_pair () =
  let engine = Engine.create () in
  let rdma_a = Dk_device.Rdma.create ~engine ~cost () in
  let rdma_b = Dk_device.Rdma.create ~engine ~cost () in
  let da = Demi.create ~engine ~cost ~rdma:rdma_a () in
  let db = Demi.create ~engine ~cost ~rdma:rdma_b () in
  let qa = Dk_device.Rdma.create_qp rdma_a in
  let qb = Dk_device.Rdma.create_qp rdma_b in
  Dk_device.Rdma.connect qa qb;
  let qda = Result.get_ok (Demi.rdma_endpoint da ~depth:8 qa) in
  let qdb = Result.get_ok (Demi.rdma_endpoint db ~depth:8 qb) in
  (engine, da, db, qda, qdb, rdma_a, rdma_b)

let rdma_roundtrip () =
  let _, da, db, qda, qdb, _, _ = rdma_pair () in
  let sga = Result.get_ok (Demi.sga_alloc da "over the rdma fabric") in
  check_bool "pushed" true (Demi.blocking_push da qda sga = Types.Pushed);
  check_str "delivered" "over the rdma fabric"
    (expect_popped (Demi.blocking_pop db qdb))

let rdma_transparent_registration () =
  (* the app never registered anything; the manager's regions were
     registered with the device automatically (§4.5) *)
  let _, da, _, qda, _, rdma_a, _ = rdma_pair () in
  let sga = Result.get_ok (Demi.sga_alloc da "auto-registered") in
  ignore (Demi.blocking_push da qda sga);
  check_int "no registration failures" 0
    (Dk_device.Rdma.stats rdma_a).Dk_device.Rdma.registration_failures;
  check_bool "regions registered" true
    (Dk_mem.Registry.registrations (Demi.registry da) >= 1)

let rdma_flow_control_no_rnr () =
  (* burst of 3x the queue depth: libOS credits must prevent RNR *)
  let _, da, db, qda, qdb, rdma_a, _ = rdma_pair () in
  let toks =
    List.init 24 (fun i ->
        let sga = Result.get_ok (Demi.sga_alloc da (Printf.sprintf "m%02d" i)) in
        Result.get_ok (Demi.push da qda sga))
  in
  (* drain on the receiver so buffers recycle *)
  let received = ref [] in
  for _ = 1 to 24 do
    match Demi.blocking_pop db qdb with
    | Types.Popped sga -> received := Sga.to_string sga :: !received
    | r -> Alcotest.failf "pop failed: %a" Types.pp_op_result r
  done;
  List.iter (fun tok -> ignore (Demi.wait da tok)) toks;
  check_int "all delivered" 24 (List.length !received);
  check_int "zero RNR events" 0
    (Dk_device.Rdma.stats rdma_a).Dk_device.Rdma.rnr_events;
  (* in-order delivery *)
  check_str "first message" "m00" (List.nth (List.rev !received) 0)

let rdma_free_protection_e2e () =
  let _, da, db, qda, qdb, _, _ = rdma_pair () in
  let sga = Result.get_ok (Demi.sga_alloc da "protected payload") in
  let tok = Result.get_ok (Demi.push da qda sga) in
  (* free immediately, while DMA is in flight *)
  Demi.sga_free da sga;
  check_bool "push still completes" true (Demi.wait da tok = Types.Pushed);
  check_str "payload intact" "protected payload"
    (expect_popped (Demi.blocking_pop db qdb));
  let st = Dk_mem.Manager.stats (Demi.manager da) in
  check_bool "a release was deferred" true (st.Dk_mem.Manager.deferred_releases >= 1)

(* §4.4: "Applications can easily replace an application-level epoll
   loop with a call to wait_any." A server whose main loop is exactly
   that: wait_any over the accept token and every connection's pop
   token. The clients here are callback-driven so the server loop is
   the simulation driver. *)
let wait_any_server_loop () =
  let duo = Setup.two_hosts () in
  let server =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in
  let client =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  (* the server listens first (connect is blocking and needs it) *)
  let lqd = Result.get_ok (Demi.socket server `Tcp) in
  ignore (Demi.bind server lqd ~port:7);
  ignore (Demi.listen server lqd);
  (* callback clients: 4 connections, 3 requests each *)
  let n_conns = 4 and per_conn = 3 in
  let replies = ref 0 in
  for c = 1 to n_conns do
    let qd = Result.get_ok (Demi.socket client `Tcp) in
    (match Demi.connect client qd ~dst:(Setup.endpoint duo.Setup.b 7) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "connect");
    let rec request i =
      if i <= per_conn then
        match Demi.push client qd (sga_str (Printf.sprintf "c%d-m%d" c i)) with
        | Ok tok ->
            Demi.watch client tok (fun _ ->
                match Demi.pop client qd with
                | Ok ptok ->
                    Demi.watch client ptok (function
                      | Types.Popped _ ->
                          incr replies;
                          request (i + 1)
                      | _ -> ())
                | Error _ -> ())
        | Error _ -> ()
    in
    request 1
  done;
  (* the wait_any server: ONE loop, no epoll, no callbacks *)
  let total = n_conns * per_conn in
  let served = ref 0 in
  let tokens = ref [] in
  let token_qd = Hashtbl.create 8 in
  let add_tok qd tok =
    tokens := tok :: !tokens;
    Hashtbl.replace token_qd tok qd
  in
  add_tok lqd (Result.get_ok (Demi.accept_async server lqd));
  let rec serve () =
    if !served < total then
      match Demi.wait_any ~timeout:10_000_000L server !tokens with
      | None -> Alcotest.fail "server loop starved"
      | Some (tok, result) ->
          let qd = Hashtbl.find token_qd tok in
          tokens := List.filter (fun t -> t <> tok) !tokens;
          Hashtbl.remove token_qd tok;
          (match result with
          | Types.Accepted conn_qd ->
              (* re-arm accept, arm a pop on the new connection *)
              add_tok lqd (Result.get_ok (Demi.accept_async server lqd));
              add_tok conn_qd (Result.get_ok (Demi.pop server conn_qd))
          | Types.Popped sga ->
              incr served;
              (match Demi.push server qd sga with
              | Ok ptok -> Demi.watch server ptok (fun _ -> ())
              | Error _ -> ());
              add_tok qd (Result.get_ok (Demi.pop server qd))
          | Types.Failed _ -> ()
          | Types.Pushed -> ());
          serve ()
  in
  serve ();
  ignore
    (Engine.run_until duo.Setup.engine (fun () -> !replies >= total));
  check_int "server served all" total !served;
  check_int "clients got all replies" total !replies

(* The kernel-fallback queues still deliver atomic sgas with their
   segment boundaries (framing over the kernel byte stream). *)
let posix_fallback_preserves_boundaries () =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa =
    Dk_kernel.Posix.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost
      ~stack:duo.Setup.a.Setup.stack ()
  in
  let pb =
    Dk_kernel.Posix.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost
      ~stack:duo.Setup.b.Setup.stack ()
  in
  let da = Demi.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost ~posix:pa () in
  let db = Demi.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost ~posix:pb () in
  (* echo server over the fallback libOS *)
  (match Dk_apps.Echo.start_demi_server ~demi:db ~port:7 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "server: %s" (Types.error_to_string e));
  let qd = Result.get_ok (Demi.socket da `Tcp) in
  (match Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "connect: %s" (Types.error_to_string e));
  let sga = Sga.of_strings [ "three"; "atomic"; "segments" ] in
  check_bool "pushed" true (Demi.blocking_push da qd sga = Types.Pushed);
  match Demi.blocking_pop da qd with
  | Types.Popped reply ->
      check_int "segments preserved through the kernel" 3
        (Sga.segment_count reply);
      check_str "payload" "threeatomicsegments" (Sga.to_string reply)
  | r -> Alcotest.failf "unexpected %a" Types.pp_op_result r

(* ---------------- memory interface ---------------- *)

let sga_alloc_registered () =
  let duo = Setup.two_hosts () in
  let demi =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let sga = Result.get_ok (Demi.sga_alloc demi "registered bytes") in
  let regions = Dk_mem.Manager.regions (Demi.manager demi) in
  check_bool "one region" true (List.length regions >= 1);
  List.iter
    (fun r ->
      check_bool "registered with nic" true
        (Dk_mem.Registry.is_registered (Demi.registry demi)
           ~region_id:(Dk_mem.Region.id r) ~device:"nic0");
      check_bool "pinned" true (Dk_mem.Region.pinned r))
    regions;
  Demi.sga_free demi sga

let sga_alloc_segs_multi () =
  let _, demi = solo_demi () in
  match Demi.sga_alloc_segs demi [ "a"; "bb"; "ccc" ] with
  | Ok sga ->
      check_int "segments" 3 (Sga.segment_count sga);
      check_int "length" 6 (Sga.length sga);
      Demi.sga_free demi sga
  | Error _ -> Alcotest.fail "alloc failed"

(* ---------------- control-path errors ---------------- *)

let socket_errors () =
  let _, demi = solo_demi () in
  (* no stack attached *)
  check_bool "no stack" true (Demi.socket demi `Tcp = Error `Not_supported);
  check_bool "no storage" true (Demi.fcreate demi "f" = Error `Not_supported);
  check_bool "bad qd push" true
    (Demi.push demi 4242 (sga_str "x") = Error `Bad_qd);
  check_bool "bad qd pop" true (Demi.pop demi 4242 = Error `Bad_qd)

let listen_requires_bind () =
  let duo = Setup.two_hosts () in
  let demi =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let qd = Result.get_ok (Demi.socket demi `Tcp) in
  check_bool "listen unbound fails" true (Demi.listen demi qd = Error `Not_supported)

let qsuite_core name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "demikernel-core"
    [
      ( "tokens",
        [
          Alcotest.test_case "bad token" `Quick wait_bad_token;
          Alcotest.test_case "deadlock" `Quick wait_deadlock;
          Alcotest.test_case "wait charges poll" `Quick wait_charges_poll;
        ] );
      ( "memq",
        [
          Alcotest.test_case "fifo" `Quick memq_fifo;
          Alcotest.test_case "sga atomicity" `Quick memq_atomicity;
          Alcotest.test_case "pop before push" `Quick memq_pop_before_push;
          Alcotest.test_case "close fails pops" `Quick memq_close_fails_pop;
          Alcotest.test_case "exactly one wakeup" `Quick memq_exactly_one_wakeup;
        ] );
      ( "wait",
        [
          Alcotest.test_case "wait_any first" `Quick wait_any_returns_first;
          Alcotest.test_case "wait_any timeout" `Quick wait_any_timeout;
          Alcotest.test_case "wait_all collects" `Quick wait_all_collects;
          Alcotest.test_case "timeout keeps token" `Quick wait_timeout_keeps_token;
          Alcotest.test_case "deadline tie redeems" `Quick wait_timeout_deadline_tie;
          Alcotest.test_case "just-late times out" `Quick wait_timeout_just_late;
          Alcotest.test_case "wait_all partial timeout" `Quick wait_all_partial_timeout;
        ] );
      ( "tcp-queues",
        [
          Alcotest.test_case "echo" `Quick tcp_queue_echo;
          Alcotest.test_case "large message" `Quick tcp_queue_large_message;
          Alcotest.test_case "connect refused" `Quick tcp_connect_refused;
          Alcotest.test_case "close propagates" `Quick tcp_close_propagates;
          Alcotest.test_case "close listener" `Quick close_listener_fails_pending_accept;
          Alcotest.test_case "udp roundtrip" `Quick udp_queue_roundtrip;
          Alcotest.test_case "wait_any server loop" `Quick wait_any_server_loop;
          Alcotest.test_case "posix fallback boundaries" `Quick
            posix_fallback_preserves_boundaries;
        ] );
      ( "compose",
        [
          Alcotest.test_case "filter cpu" `Quick filter_cpu_fallback;
          Alcotest.test_case "filter charges cpu" `Quick filter_charges_cpu;
          Alcotest.test_case "map" `Quick map_transforms;
          Alcotest.test_case "map_fn" `Quick map_fn_pop_only;
          Alcotest.test_case "sort priority" `Quick sort_priority;
          Alcotest.test_case "merge pops both" `Quick merge_pops_both;
          Alcotest.test_case "merge push duplicates" `Quick merge_push_duplicates;
          Alcotest.test_case "merge half-close" `Quick merge_stays_open_until_both_close;
          Alcotest.test_case "qconnect across kinds" `Quick qconnect_across_kinds;
          Alcotest.test_case "qconnect" `Quick qconnect_splices;
          Alcotest.test_case "steer partitions" `Quick steer_partitions_completely;
          Alcotest.test_case "steer per-key fifo" `Quick steer_is_deterministic_per_key;
        ] );
      ( "offload",
        [
          Alcotest.test_case "filter offloads" `Quick filter_offloads_on_programmable_nic;
          Alcotest.test_case "scoped to port" `Quick offload_does_not_break_other_traffic;
        ] );
      ( "storage",
        [
          Alcotest.test_case "roundtrip" `Quick file_queue_roundtrip;
          Alcotest.test_case "durability latency" `Quick file_queue_durability_latency;
          Alcotest.test_case "recovery" `Quick file_queue_recovery;
          Alcotest.test_case "append after recovery" `Quick file_queue_append_after_recovery;
          Alcotest.test_case "fopen unknown" `Quick fopen_unknown_fails;
        ] );
      qsuite_core "core-props"
        [
          file_queue_roundtrip_prop;
          compose_pipeline_prop;
          compose_sort_prop;
          udp_atomicity_prop;
        ];
      ( "rdma",
        [
          Alcotest.test_case "roundtrip" `Quick rdma_roundtrip;
          Alcotest.test_case "transparent registration" `Quick rdma_transparent_registration;
          Alcotest.test_case "flow control" `Quick rdma_flow_control_no_rnr;
          Alcotest.test_case "free-protection" `Quick rdma_free_protection_e2e;
        ] );
      ( "memory",
        [
          Alcotest.test_case "alloc registered" `Quick sga_alloc_registered;
          Alcotest.test_case "multi-segment alloc" `Quick sga_alloc_segs_multi;
        ] );
      ( "control-path",
        [
          Alcotest.test_case "errors" `Quick socket_errors;
          Alcotest.test_case "listen requires bind" `Quick listen_requires_bind;
          Alcotest.test_case "double close" `Quick double_close_is_bad_qd;
          Alcotest.test_case "steer invalid ways" `Quick steer_invalid_ways;
          Alcotest.test_case "half-close semantics" `Quick push_after_peer_close_fails;
        ] );
    ]
