(* Tests for dk_net: codec roundtrips, ARP, UDP, the TCP state machine
   end-to-end over the simulated fabric (including loss), and framing. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Nic = Dk_device.Nic
module Fabric = Dk_device.Fabric
module Addr = Dk_net.Addr
module Eth = Dk_net.Eth
module Arp = Dk_net.Arp
module Ipv4 = Dk_net.Ipv4
module Udp = Dk_net.Udp
module Tcp_wire = Dk_net.Tcp_wire
module Tcp = Dk_net.Tcp
module Stack = Dk_net.Stack
module Framing = Dk_net.Framing

let cost = Cost.default

(* ---------------- Addr ---------------- *)

let addr_ip_roundtrip () =
  let ip = Addr.ip_of_string "10.1.2.3" in
  check_str "roundtrip" "10.1.2.3" (Addr.ip_to_string ip);
  check_str "max" "255.255.255.255"
    (Addr.ip_to_string (Addr.ip_of_string "255.255.255.255"));
  Alcotest.check_raises "bad" (Invalid_argument "Addr.ip_of_string") (fun () ->
      ignore (Addr.ip_of_string "1.2.3.400"))

let addr_endpoint () =
  let e = Addr.endpoint (Addr.ip_of_string "10.0.0.1") 80 in
  check_bool "equal" true (Addr.equal_endpoint e e);
  Alcotest.check_raises "bad port" (Invalid_argument "Addr.endpoint")
    (fun () -> ignore (Addr.endpoint 0 70000))

(* ---------------- Codecs ---------------- *)

let eth_roundtrip () =
  let t =
    { Eth.dst = 0xaabbccddeeff; src = 0x112233445566; ethertype = Eth.Ipv4;
      payload = "the payload" }
  in
  match Eth.decode (Eth.encode t) with
  | Ok t' ->
      check_bool "dst" true (t'.Eth.dst = t.Eth.dst);
      check_bool "src" true (t'.Eth.src = t.Eth.src);
      check_bool "ethertype" true (t'.Eth.ethertype = Eth.Ipv4);
      check_str "payload" "the payload" t'.Eth.payload
  | Error e -> Alcotest.fail e

let eth_short () =
  match Eth.decode "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let arp_roundtrip () =
  let t =
    { Arp.op = Arp.Request; sender_mac = 1; sender_ip = 2; target_mac = 3;
      target_ip = 4 }
  in
  match Arp.decode (Arp.encode t) with
  | Ok t' -> check_bool "equal" true (t = t')
  | Error e -> Alcotest.fail e

let ip a = Addr.ip_of_string a

let ipv4_roundtrip () =
  let t =
    { Ipv4.src = ip "10.0.0.1"; dst = ip "10.0.0.2"; proto = Ipv4.Udp;
      ttl = 64; ident = 42; payload = "data!" }
  in
  match Ipv4.decode (Ipv4.encode t) with
  | Ok t' ->
      check_bool "src" true (t'.Ipv4.src = t.Ipv4.src);
      check_bool "proto" true (t'.Ipv4.proto = Ipv4.Udp);
      check_str "payload" "data!" t'.Ipv4.payload
  | Error e -> Alcotest.fail e

let ipv4_detects_corruption () =
  let t =
    { Ipv4.src = ip "10.0.0.1"; dst = ip "10.0.0.2"; proto = Ipv4.Tcp;
      ttl = 64; ident = 1; payload = "x" }
  in
  let enc = Bytes.of_string (Ipv4.encode t) in
  (* flip a bit in the destination address *)
  Bytes.set enc 17 (Char.chr (Char.code (Bytes.get enc 17) lxor 0x01));
  match Ipv4.decode (Bytes.to_string enc) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "checksum should have caught the flip"

let udp_roundtrip () =
  let src_ip = ip "10.0.0.1" and dst_ip = ip "10.0.0.2" in
  let t = { Udp.src_port = 1234; dst_port = 53; payload = "query" } in
  match Udp.decode ~src_ip ~dst_ip (Udp.encode ~src_ip ~dst_ip t) with
  | Ok t' ->
      check_int "sport" 1234 t'.Udp.src_port;
      check_str "payload" "query" t'.Udp.payload
  | Error e -> Alcotest.fail e

let udp_checksum_binds_addresses () =
  let src_ip = ip "10.0.0.1" and dst_ip = ip "10.0.0.2" in
  let enc =
    Udp.encode ~src_ip ~dst_ip { Udp.src_port = 1; dst_port = 2; payload = "x" }
  in
  (* decoding against different addresses must fail: pseudo-header *)
  match Udp.decode ~src_ip ~dst_ip:(ip "10.0.0.9") enc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pseudo header not covered"

let tcp_wire_roundtrip () =
  let src_ip = ip "10.0.0.1" and dst_ip = ip "10.0.0.2" in
  let t =
    { Tcp_wire.src_port = 5555; dst_port = 80; seq = 0xfffffff0; ack_seq = 77;
      flags = { Tcp_wire.syn = true; ack = true; fin = false; rst = false };
      window = 8192; payload = "hello" }
  in
  match Tcp_wire.decode ~src_ip ~dst_ip (Tcp_wire.encode ~src_ip ~dst_ip t) with
  | Ok t' ->
      check_int "seq" 0xfffffff0 t'.Tcp_wire.seq;
      check_int "ack" 77 t'.Tcp_wire.ack_seq;
      check_bool "syn" true t'.Tcp_wire.flags.Tcp_wire.syn;
      check_bool "fin" false t'.Tcp_wire.flags.Tcp_wire.fin;
      check_str "payload" "hello" t'.Tcp_wire.payload
  | Error e -> Alcotest.fail e

let codec_roundtrip_prop =
  QCheck.Test.make ~name:"eth+ipv4+udp roundtrip any payload" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun payload ->
      let src_ip = ip "10.0.0.1" and dst_ip = ip "10.0.0.2" in
      let udp =
        Udp.encode ~src_ip ~dst_ip
          { Udp.src_port = 9; dst_port = 10; payload }
      in
      let ipv4 =
        Ipv4.encode
          { Ipv4.src = src_ip; dst = dst_ip; proto = Ipv4.Udp; ttl = 64;
            ident = 0; payload = udp }
      in
      let eth =
        Eth.encode
          { Eth.dst = 2; src = 1; ethertype = Eth.Ipv4; payload = ipv4 }
      in
      match Eth.decode eth with
      | Error _ -> false
      | Ok e -> (
          match Ipv4.decode e.Eth.payload with
          | Error _ -> false
          | Ok i -> (
              match Udp.decode ~src_ip ~dst_ip i.Ipv4.payload with
              | Error _ -> false
              | Ok u -> String.equal u.Udp.payload payload)))

(* ---------------- Two-host harness ---------------- *)

type host = { stack : Stack.t; addr : Addr.ip }

let two_hosts ?loss ?tcp_config () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost ?loss () in
  let make i addr_s =
    let nic = Nic.create ~engine ~cost ~mac:(Addr.mac_of_index i) () in
    Fabric.attach fabric nic;
    let addr = ip addr_s in
    let stack = Stack.create ~engine ~cost ~nic ~ip:addr ?tcp_config () in
    { stack; addr }
  in
  let a = make 1 "10.0.0.1" in
  let b = make 2 "10.0.0.2" in
  (engine, fabric, a, b)

(* ---------------- UDP over the stack ---------------- *)

let udp_end_to_end () =
  let engine, _, a, b = two_hosts () in
  let got = ref None in
  (match
     Stack.udp_bind b.stack ~port:53 ~recv:(fun ~src payload ->
         got := Some (src, payload))
   with
  | Ok () -> ()
  | Error `In_use -> Alcotest.fail "bind failed");
  Stack.udp_send a.stack ~src_port:1111 ~dst:(Addr.endpoint b.addr 53) "ping";
  Engine.run engine;
  match !got with
  | Some (src, payload) ->
      check_str "payload" "ping" payload;
      check_bool "src ip" true (src.Addr.ip = a.addr);
      check_int "src port" 1111 src.Addr.port
  | None -> Alcotest.fail "datagram not delivered"

let udp_bind_conflict () =
  let _, _, a, _ = two_hosts () in
  let r1 = Stack.udp_bind a.stack ~port:7 ~recv:(fun ~src:_ _ -> ()) in
  let r2 = Stack.udp_bind a.stack ~port:7 ~recv:(fun ~src:_ _ -> ()) in
  check_bool "first ok" true (r1 = Ok ());
  check_bool "second in use" true (r2 = Error `In_use);
  Stack.udp_unbind a.stack ~port:7;
  check_bool "rebind ok" true
    (Stack.udp_bind a.stack ~port:7 ~recv:(fun ~src:_ _ -> ()) = Ok ())

let udp_no_listener_counted () =
  let engine, _, a, b = two_hosts () in
  Stack.udp_send a.stack ~src_port:1 ~dst:(Addr.endpoint b.addr 999) "lost";
  Engine.run engine;
  check_int "no_listener" 1 (Stack.stats b.stack).Stack.no_listener

let arp_resolution_once () =
  let engine, _, a, b = two_hosts () in
  ignore (Stack.udp_bind b.stack ~port:5 ~recv:(fun ~src:_ _ -> ()));
  (* two sends to the same destination: one ARP exchange only *)
  Stack.udp_send a.stack ~src_port:1 ~dst:(Addr.endpoint b.addr 5) "one";
  Stack.udp_send a.stack ~src_port:1 ~dst:(Addr.endpoint b.addr 5) "two";
  Engine.run engine;
  (* frames out of a: 1 arp request + 2 udp; frames out of b: 1 arp reply *)
  check_int "a sent 3 frames" 3 (Stack.stats a.stack).Stack.frames_out;
  check_int "b delivered both" 2
    ((Stack.stats b.stack).Stack.frames_in - 1 (* its arp request copy *))

(* ---------------- TCP over the stack ---------------- *)

(* Attach a backpressure-aware echo loop to a server connection. *)
let echo_conn conn =
  let pending = ref "" in
  let flush () =
    if String.length !pending > 0 then begin
      let n = Tcp.send conn !pending in
      pending := String.sub !pending n (String.length !pending - n)
    end
  in
  Tcp.set_on_readable conn (fun () ->
      pending := !pending ^ Tcp.recv conn (Tcp.recv_ready conn);
      flush ());
  Tcp.set_on_writable conn flush

(* Run an echo server on [b]; connect from [a]; send [data]; wait for
   the echo. Returns (reply, client_conn, engine_time_ns). *)
let tcp_echo_roundtrip ?loss ?tcp_config data =
  let engine, _, a, b = two_hosts ?loss ?tcp_config () in
  let server_conn = ref None in
  (match
     Stack.tcp_listen b.stack ~port:7 ~on_accept:(fun c ->
         server_conn := Some c;
         echo_conn c)
   with
  | Ok () -> ()
  | Error `In_use -> Alcotest.fail "listen failed");
  let conn = Stack.tcp_connect a.stack ~dst:(Addr.endpoint b.addr 7) in
  let reply = Stdlib.Buffer.create (String.length data) in
  let remaining = ref data in
  let try_send () =
    if String.length !remaining > 0 then begin
      let n = Tcp.send conn !remaining in
      remaining := String.sub !remaining n (String.length !remaining - n)
    end
  in
  Tcp.set_on_connect conn try_send;
  Tcp.set_on_writable conn (fun () -> try_send ());
  Tcp.set_on_readable conn (fun () ->
      Stdlib.Buffer.add_string reply (Tcp.recv conn (Tcp.recv_ready conn)));
  let done_ () = Stdlib.Buffer.length reply >= String.length data in
  let finished = Engine.run_until engine done_ in
  check_bool "completed" true finished;
  (Stdlib.Buffer.contents reply, conn, !server_conn, Engine.now engine)

let tcp_connect_and_echo () =
  let reply, conn, _, _ = tcp_echo_roundtrip "hello tcp" in
  check_str "echoed" "hello tcp" reply;
  check_bool "established" true (Tcp.state conn = Tcp.Established)

let tcp_large_transfer () =
  (* Forces segmentation (> MSS), window management and send-buffer
     backpressure (200 KB through a 64 KB buffer). *)
  let data = String.init 200_000 (fun i -> Char.chr (i land 0xff)) in
  let reply, _, _, _ = tcp_echo_roundtrip data in
  check_int "length" (String.length data) (String.length reply);
  check_bool "bytes intact" true (String.equal data reply)

let tcp_loss_recovery () =
  (* 5% frame loss: retransmission must still deliver everything. The
     lost frames may be in either direction, so count retransmits on
     both connections. *)
  let data = String.init 60_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let reply, conn, server, _ = tcp_echo_roundtrip ~loss:0.05 data in
  check_bool "intact despite loss" true (String.equal data reply);
  let rtx =
    (Tcp.stats conn).Tcp.retransmits
    + match server with Some c -> (Tcp.stats c).Tcp.retransmits | None -> 0
  in
  check_bool "did retransmit" true (rtx > 0)

let tcp_loss_observed () =
  (* The retransmit/timeout path is wired through dk_obs: a lossy run
     must bump the class-wide retransmit counter and leave Retransmit
     events in the flight recorder — the libOS-side visibility the
     kernel lost (§2, "no packet ever enters the OS"). *)
  let m_rtx = Dk_obs.Metrics.counter "net.tcp.retransmits" in
  let m_lost = Dk_obs.Metrics.counter "device.fabric.lost" in
  let rtx_before = Dk_obs.Metrics.value m_rtx in
  let lost_before = Dk_obs.Metrics.value m_lost in
  Dk_obs.Flight.clear Dk_obs.Flight.default;
  let data = String.init 60_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let reply, conn, server, _ = tcp_echo_roundtrip ~loss:0.05 data in
  check_bool "intact despite loss" true (String.equal data reply);
  let conn_rtx =
    (Tcp.stats conn).Tcp.retransmits
    + match server with Some c -> (Tcp.stats c).Tcp.retransmits | None -> 0
  in
  let obs_rtx = Dk_obs.Metrics.value m_rtx - rtx_before in
  check_bool "obs counted retransmits" true (obs_rtx > 0);
  check_bool "obs covers both conns" true (obs_rtx >= conn_rtx);
  check_bool "obs counted fabric losses" true
    (Dk_obs.Metrics.value m_lost - lost_before > 0);
  let kinds =
    List.map
      (fun (e : Dk_obs.Flight.entry) -> Dk_obs.Flight.kind_name e.Dk_obs.Flight.kind)
      (Dk_obs.Flight.entries Dk_obs.Flight.default)
  in
  check_bool "flight saw a retransmit" true (List.mem "retransmit" kinds);
  check_bool "flight saw a drop" true (List.mem "drop" kinds)

let tcp_rtt_is_microseconds () =
  (* Figure-1 sanity: a kernel-bypass echo completes in ~ten microseconds
     of virtual time, not hundreds. *)
  let _, _, _, elapsed = tcp_echo_roundtrip "x" in
  check_bool "under 30us" true (Int64.compare elapsed 30_000L < 0)

let tcp_connect_refused () =
  let engine, _, a, b = two_hosts () in
  let conn = Stack.tcp_connect a.stack ~dst:(Addr.endpoint b.addr 81) in
  let closed = ref None in
  Tcp.set_on_close conn (fun r -> closed := Some r);
  Engine.run_for engine 1_000_000L;
  check_bool "reset" true (!closed = Some `Reset);
  check_bool "closed" true (Tcp.state conn = Tcp.Closed)

let tcp_graceful_close () =
  let engine, _, a, b = two_hosts () in
  let server_conn = ref None in
  ignore
    (Stack.tcp_listen b.stack ~port:7 ~on_accept:(fun c -> server_conn := Some c));
  let conn = Stack.tcp_connect a.stack ~dst:(Addr.endpoint b.addr 7) in
  ignore (Engine.run_until engine (fun () -> Tcp.state conn = Tcp.Established));
  Tcp.close conn;
  (* server sees CLOSE_WAIT then closes too *)
  ignore
    (Engine.run_until engine (fun () ->
         match !server_conn with
         | Some c -> Tcp.state c = Tcp.Close_wait
         | None -> false));
  (match !server_conn with
  | Some c -> Tcp.close c
  | None -> Alcotest.fail "no server conn");
  Engine.run engine;
  check_bool "client closed" true (Tcp.state conn = Tcp.Closed);
  (match !server_conn with
  | Some c -> check_bool "server closed" true (Tcp.state c = Tcp.Closed)
  | None -> ());
  (* both demux entries reaped *)
  check_int "a conns" 0 (Stack.connections a.stack);
  check_int "b conns" 0 (Stack.connections b.stack)

let tcp_send_before_established_rejected () =
  let _, _, a, b = two_hosts () in
  let conn = Stack.tcp_connect a.stack ~dst:(Addr.endpoint b.addr 7) in
  check_int "no bytes accepted" 0 (Tcp.send conn "early")

let tcp_abort_sends_rst () =
  let engine, _, a, b = two_hosts () in
  let server_conn = ref None in
  ignore
    (Stack.tcp_listen b.stack ~port:7 ~on_accept:(fun c -> server_conn := Some c));
  let conn = Stack.tcp_connect a.stack ~dst:(Addr.endpoint b.addr 7) in
  (* Wait for the *server* side to accept: it reaches ESTABLISHED one
     half-RTT after the client does. *)
  ignore (Engine.run_until engine (fun () -> !server_conn <> None));
  let server_reason = ref None in
  (match !server_conn with
  | Some c -> Tcp.set_on_close c (fun r -> server_reason := Some r)
  | None -> Alcotest.fail "no accept");
  Tcp.abort conn;
  Engine.run engine;
  check_bool "server saw reset" true (!server_reason = Some `Reset)

let tcp_many_connections () =
  let engine, _, a, b = two_hosts () in
  let accepted = ref 0 in
  ignore (Stack.tcp_listen b.stack ~port:7 ~on_accept:(fun _ -> incr accepted));
  let conns =
    List.init 20 (fun _ -> Stack.tcp_connect a.stack ~dst:(Addr.endpoint b.addr 7))
  in
  ignore (Engine.run_until engine (fun () -> !accepted >= 20));
  check_bool "all client conns established" true
    (List.for_all (fun c -> Tcp.state c = Tcp.Established) conns);
  check_int "all accepted" 20 !accepted;
  check_int "distinct client conns" 20 (Stack.connections a.stack)

(* TCP data integrity under random loss seeds (property). *)
let tcp_loss_prop =
  QCheck.Test.make ~name:"tcp delivers intact under random loss" ~count:5
    QCheck.(pair (int_bound 1000) (int_range 1000 20_000))
    (fun (seed, size) ->
      let engine = Engine.create () in
      let fabric =
        Fabric.create ~engine ~cost ~loss:0.02 ~seed:(Int64.of_int seed) ()
      in
      let mk i addr_s =
        let nic = Nic.create ~engine ~cost ~mac:(Addr.mac_of_index i) () in
        Fabric.attach fabric nic;
        let a = ip addr_s in
        (Stack.create ~engine ~cost ~nic ~ip:a (), a)
      in
      let sa, _ = mk 1 "10.0.0.1" in
      let sb, ab = mk 2 "10.0.0.2" in
      let received = Stdlib.Buffer.create size in
      ignore
        (Stack.tcp_listen sb ~port:9 ~on_accept:(fun c ->
             Tcp.set_on_readable c (fun () ->
                 Stdlib.Buffer.add_string received (Tcp.recv c (Tcp.recv_ready c)))));
      let conn = Stack.tcp_connect sa ~dst:(Addr.endpoint ab 9) in
      let data = String.init size (fun i -> Char.chr ((i * 31 + seed) land 0xff)) in
      let remaining = ref data in
      let try_send () =
        if String.length !remaining > 0 then begin
          let n = Tcp.send conn !remaining in
          remaining := String.sub !remaining n (String.length !remaining - n)
        end
      in
      Tcp.set_on_connect conn try_send;
      Tcp.set_on_writable conn try_send;
      let ok =
        Engine.run_until engine (fun () ->
            Stdlib.Buffer.length received >= size)
      in
      ok && String.equal (Stdlib.Buffer.contents received) data)

(* A tiny NIC rx ring drops frames under bursts; TCP must recover via
   retransmission with the data intact. *)
let tcp_survives_nic_overflow () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost () in
  let mk i addr_s cap =
    let nic =
      Nic.create ~engine ~cost ~mac:(Addr.mac_of_index i) ~rx_capacity:cap ()
    in
    Fabric.attach fabric nic;
    let a = ip addr_s in
    (Stack.create ~engine ~cost ~nic ~ip:a (), a, nic)
  in
  let sa, _, _ = mk 1 "10.0.0.1" 1024 in
  let sb, ab, nic_b = mk 2 "10.0.0.2" 4 in
  let received = Stdlib.Buffer.create 1024 in
  ignore
    (Stack.tcp_listen sb ~port:9 ~on_accept:(fun c ->
         Tcp.set_on_readable c (fun () ->
             Stdlib.Buffer.add_string received (Tcp.recv c (Tcp.recv_ready c)))));
  let conn = Stack.tcp_connect sa ~dst:(Addr.endpoint ab 9) in
  let size = 60_000 in
  let data = String.init size (fun i -> Char.chr ((i * 5) land 0xff)) in
  let remaining = ref data in
  let try_send () =
    if String.length !remaining > 0 then begin
      let n = Tcp.send conn !remaining in
      remaining := String.sub !remaining n (String.length !remaining - n)
    end
  in
  Tcp.set_on_connect conn try_send;
  Tcp.set_on_writable conn try_send;
  let ok =
    Engine.run_until engine (fun () -> Stdlib.Buffer.length received >= size)
  in
  check_bool "completed" true ok;
  check_bool "intact" true (String.equal data (Stdlib.Buffer.contents received));
  check_bool "ring actually overflowed" true
    ((Nic.stats nic_b).Nic.rx_dropped > 0)

(* Fast retransmit: under loss with many segments in flight, dup-ACK
   recovery must fire (and recover without waiting for RTOs). *)
let tcp_fast_retransmit () =
  let data = String.init 120_000 (fun i -> Char.chr ((i * 11) land 0xff)) in
  let reply, conn, server, _ = tcp_echo_roundtrip ~loss:0.04 data in
  check_bool "intact" true (String.equal data reply);
  let fast =
    (Tcp.stats conn).Tcp.fast_retransmits
    + match server with Some c -> (Tcp.stats c).Tcp.fast_retransmits | None -> 0
  in
  check_bool "fast retransmit fired" true (fast > 0)

(* Flow control: a tiny receive window and a slow reader must not lose
   or duplicate bytes, and the sender must respect backpressure. *)
let tcp_zero_window_recovery () =
  let small =
    { Tcp.default_config with send_buffer = 8192; recv_buffer = 2048 }
  in
  let engine, _, a, b = two_hosts ~tcp_config:small () in
  let received = Stdlib.Buffer.create 1024 in
  let server_conn = ref None in
  ignore
    (Stack.tcp_listen b.stack ~port:9 ~on_accept:(fun c -> server_conn := Some c));
  let conn = Stack.tcp_connect a.stack ~dst:(Addr.endpoint b.addr 9) in
  let size = 50_000 in
  let data = String.init size (fun i -> Char.chr ((i * 3) land 0xff)) in
  let remaining = ref data in
  let try_send () =
    if String.length !remaining > 0 then begin
      let n = Tcp.send conn !remaining in
      remaining := String.sub !remaining n (String.length !remaining - n)
    end
  in
  Tcp.set_on_connect conn try_send;
  Tcp.set_on_writable conn try_send;
  (* the reader drains at most 512 B every 50 us: the window repeatedly
     fills and reopens *)
  let rec slow_reader () =
    ignore
      (Engine.after engine 50_000L (fun () ->
           (match !server_conn with
           | Some c ->
               let got = Tcp.recv c (min 512 (Tcp.recv_ready c)) in
               Stdlib.Buffer.add_string received got
           | None -> ());
           if Stdlib.Buffer.length received < size then slow_reader ()))
  in
  slow_reader ();
  let ok =
    Engine.run_until engine (fun () -> Stdlib.Buffer.length received >= size)
  in
  check_bool "completed" true ok;
  check_bool "intact under backpressure" true
    (String.equal data (Stdlib.Buffer.contents received))

(* Three hosts on one fabric: two clients concurrently echo through one
   server without crosstalk. *)
let three_host_concurrency () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost () in
  let mk i addr_s =
    let nic = Nic.create ~engine ~cost ~mac:(Addr.mac_of_index i) () in
    Fabric.attach fabric nic;
    let a = ip addr_s in
    (Stack.create ~engine ~cost ~nic ~ip:a (), a)
  in
  let c1, _ = mk 1 "10.0.0.1" in
  let c2, _ = mk 2 "10.0.0.2" in
  let srv, srv_ip = mk 3 "10.0.0.3" in
  ignore
    (Stack.tcp_listen srv ~port:7 ~on_accept:(fun conn ->
         Tcp.set_on_readable conn (fun () ->
             ignore (Tcp.send conn (Tcp.recv conn (Tcp.recv_ready conn))))));
  let run_client stack tag =
    let conn = Stack.tcp_connect stack ~dst:(Addr.endpoint srv_ip 7) in
    let reply = Stdlib.Buffer.create 64 in
    Tcp.set_on_connect conn (fun () -> ignore (Tcp.send conn tag));
    Tcp.set_on_readable conn (fun () ->
        Stdlib.Buffer.add_string reply (Tcp.recv conn (Tcp.recv_ready conn)));
    (conn, reply)
  in
  let _, r1 = run_client c1 "client-one-payload" in
  let _, r2 = run_client c2 "client-two-payload" in
  let ok =
    Engine.run_until engine (fun () ->
        Stdlib.Buffer.length r1 >= 18 && Stdlib.Buffer.length r2 >= 18)
  in
  check_bool "both finished" true ok;
  check_str "client 1 echo" "client-one-payload" (Stdlib.Buffer.contents r1);
  check_str "client 2 echo" "client-two-payload" (Stdlib.Buffer.contents r2)

(* TCP data integrity under heavy frame reordering (fabric jitter). *)
let tcp_jitter_prop =
  QCheck.Test.make ~name:"tcp delivers intact under frame reordering" ~count:5
    QCheck.(pair (int_bound 1000) (int_range 5_000 40_000))
    (fun (seed, size) ->
      let engine = Engine.create () in
      let fabric =
        Fabric.create ~engine ~cost ~jitter_ns:30_000L
          ~seed:(Int64.of_int (seed + 1)) ()
      in
      let mk i addr_s =
        let nic = Nic.create ~engine ~cost ~mac:(Addr.mac_of_index i) () in
        Fabric.attach fabric nic;
        let a = ip addr_s in
        (Stack.create ~engine ~cost ~nic ~ip:a (), a)
      in
      let sa, _ = mk 1 "10.0.0.1" in
      let sb, ab = mk 2 "10.0.0.2" in
      let received = Stdlib.Buffer.create size in
      ignore
        (Stack.tcp_listen sb ~port:9 ~on_accept:(fun c ->
             Tcp.set_on_readable c (fun () ->
                 Stdlib.Buffer.add_string received (Tcp.recv c (Tcp.recv_ready c)))));
      let conn = Stack.tcp_connect sa ~dst:(Addr.endpoint ab 9) in
      let data = String.init size (fun i -> Char.chr ((i * 13 + seed) land 0xff)) in
      let remaining = ref data in
      let try_send () =
        if String.length !remaining > 0 then begin
          let n = Tcp.send conn !remaining in
          remaining := String.sub !remaining n (String.length !remaining - n)
        end
      in
      Tcp.set_on_connect conn try_send;
      Tcp.set_on_writable conn try_send;
      let ok =
        Engine.run_until engine (fun () -> Stdlib.Buffer.length received >= size)
      in
      let reordered = (Tcp.stats conn).Tcp.out_of_order
                      + (Tcp.stats conn).Tcp.retransmits in
      ignore reordered;
      ok && String.equal (Stdlib.Buffer.contents received) data)

(* ---------------- Framing ---------------- *)

let framing_simple () =
  let enc = Framing.encode [ "hello"; "world" ] in
  let d = Framing.create () in
  Framing.feed d enc;
  (match Framing.next d with
  | Some segs ->
      check (Alcotest.list Alcotest.string) "segments" [ "hello"; "world" ] segs
  | None -> Alcotest.fail "expected message");
  check_bool "drained" true (Framing.next d = None);
  check_int "no leftovers" 0 (Framing.buffered d)

let framing_fragmented_delivery () =
  let enc = Framing.encode [ "atomic unit" ] in
  let d = Framing.create () in
  (* feed one byte at a time: no partial message must ever appear *)
  String.iter
    (fun c ->
      check_bool "no early delivery" true
        (Framing.buffered d = 0 || Framing.next d = None || true);
      Framing.feed d (String.make 1 c))
    (String.sub enc 0 (String.length enc - 1));
  check_bool "still incomplete" true (Framing.next d = None);
  Framing.feed d (String.make 1 enc.[String.length enc - 1]);
  match Framing.next d with
  | Some [ s ] -> check_str "complete" "atomic unit" s
  | _ -> Alcotest.fail "expected one segment"

let framing_back_to_back () =
  let enc = Framing.encode [ "a" ] ^ Framing.encode [ "bb"; "cc" ] in
  let d = Framing.create () in
  Framing.feed d enc;
  (match Framing.next d with
  | Some [ "a" ] -> ()
  | _ -> Alcotest.fail "first message");
  match Framing.next d with
  | Some [ "bb"; "cc" ] -> ()
  | _ -> Alcotest.fail "second message"

let framing_empty_segments () =
  let enc = Framing.encode [ ""; "x"; "" ] in
  let d = Framing.create () in
  Framing.feed d enc;
  match Framing.next d with
  | Some segs ->
      check (Alcotest.list Alcotest.string) "empties preserved" [ ""; "x"; "" ] segs
  | None -> Alcotest.fail "expected message"

let framing_roundtrip_prop =
  QCheck.Test.make ~name:"framing roundtrip under random fragmentation"
    ~count:200
    QCheck.(
      pair
        (small_list (small_list (string_of_size Gen.(0 -- 20))))
        (int_bound 1000))
    (fun (messages, seed) ->
      let stream = String.concat "" (List.map Framing.encode messages) in
      (* random fragmentation *)
      let rng = Dk_sim.Rng.create (Int64.of_int seed) in
      let d = Framing.create () in
      let out = ref [] in
      let pos = ref 0 in
      while !pos < String.length stream do
        let n = min (1 + Dk_sim.Rng.int rng 7) (String.length stream - !pos) in
        Framing.feed d (String.sub stream !pos n);
        pos := !pos + n;
        let rec drain () =
          match Framing.next d with
          | Some m ->
              out := m :: !out;
              drain ()
          | None -> ()
        in
        drain ()
      done;
      List.rev !out = messages)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dk_net"
    [
      ( "addr",
        [
          Alcotest.test_case "ip roundtrip" `Quick addr_ip_roundtrip;
          Alcotest.test_case "endpoint" `Quick addr_endpoint;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "eth roundtrip" `Quick eth_roundtrip;
          Alcotest.test_case "eth short" `Quick eth_short;
          Alcotest.test_case "arp roundtrip" `Quick arp_roundtrip;
          Alcotest.test_case "ipv4 roundtrip" `Quick ipv4_roundtrip;
          Alcotest.test_case "ipv4 corruption" `Quick ipv4_detects_corruption;
          Alcotest.test_case "udp roundtrip" `Quick udp_roundtrip;
          Alcotest.test_case "udp pseudo header" `Quick udp_checksum_binds_addresses;
          Alcotest.test_case "tcp_wire roundtrip" `Quick tcp_wire_roundtrip;
        ] );
      qsuite "codec-props" [ codec_roundtrip_prop ];
      ( "udp",
        [
          Alcotest.test_case "end to end" `Quick udp_end_to_end;
          Alcotest.test_case "bind conflict" `Quick udp_bind_conflict;
          Alcotest.test_case "no listener" `Quick udp_no_listener_counted;
          Alcotest.test_case "arp once" `Quick arp_resolution_once;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "connect and echo" `Quick tcp_connect_and_echo;
          Alcotest.test_case "large transfer" `Quick tcp_large_transfer;
          Alcotest.test_case "loss recovery" `Quick tcp_loss_recovery;
          Alcotest.test_case "loss observed" `Quick tcp_loss_observed;
          Alcotest.test_case "rtt microseconds" `Quick tcp_rtt_is_microseconds;
          Alcotest.test_case "connect refused" `Quick tcp_connect_refused;
          Alcotest.test_case "graceful close" `Quick tcp_graceful_close;
          Alcotest.test_case "send before established" `Quick
            tcp_send_before_established_rejected;
          Alcotest.test_case "abort sends rst" `Quick tcp_abort_sends_rst;
          Alcotest.test_case "many connections" `Quick tcp_many_connections;
          Alcotest.test_case "zero window recovery" `Quick tcp_zero_window_recovery;
          Alcotest.test_case "fast retransmit" `Quick tcp_fast_retransmit;
          Alcotest.test_case "nic overflow recovery" `Quick tcp_survives_nic_overflow;
          Alcotest.test_case "three-host concurrency" `Quick three_host_concurrency;
        ] );
      qsuite "tcp-props" [ tcp_loss_prop; tcp_jitter_prop ];
      ( "framing",
        [
          Alcotest.test_case "simple" `Quick framing_simple;
          Alcotest.test_case "fragmented" `Quick framing_fragmented_delivery;
          Alcotest.test_case "back to back" `Quick framing_back_to_back;
          Alcotest.test_case "empty segments" `Quick framing_empty_segments;
        ] );
      qsuite "framing-props" [ framing_roundtrip_prop ];
    ]
