(* Tests for dk_obs: the metrics registry (counters, gauges,
   histograms, snapshots) and the flight recorder (record/entries,
   eviction, enable/disable, Dk_check dump wiring).

   The registry under test is always a private [Metrics.create ()] (or
   counter deltas on the process-global default) so the suite is
   insensitive to instrumentation that ran before it. *)

module M = Dk_obs.Metrics
module F = Dk_obs.Flight
module Export = Dk_obs.Export
module Dk_check = Dk_mem.Dk_check

let check = Alcotest.check
let check_int = check Alcotest.int
let check_i64 = check Alcotest.int64

(* ---- counters ---- *)

let counter_get_or_create () =
  let reg = M.create () in
  let a = M.counter ~reg "x.hits" in
  let b = M.counter ~reg "x.hits" in
  M.incr a;
  M.incr b;
  check_int "same instrument" 2 (M.value a);
  check_int "other name is fresh" 0 (M.value (M.counter ~reg "x.misses"))

let counter_incr_add () =
  let reg = M.create () in
  let c = M.counter ~reg "c" in
  M.incr c;
  M.add c 41;
  check_int "1 + 41" 42 (M.value c)

let default_registry_shared () =
  (* Instruments on the default registry are process-global: read a
     delta, never an absolute. *)
  let c = M.counter "test_obs.private" in
  let before = M.value c in
  M.incr c;
  check_int "delta visible" (before + 1) (M.value (M.counter "test_obs.private"))

(* ---- gauges ---- *)

let gauge_hwm () =
  let reg = M.create () in
  let g = M.gauge ~reg "depth" in
  M.gauge_add g 3;
  M.gauge_add g 4;
  M.gauge_add g (-5);
  check_int "value" 2 (M.gauge_value g);
  check_int "high-water" 7 (M.gauge_hwm g);
  M.set g 1;
  check_int "set" 1 (M.gauge_value g);
  check_int "hwm survives set" 7 (M.gauge_hwm g)

(* ---- histograms ---- *)

let hist_observe () =
  let reg = M.create () in
  let h = M.hist ~reg "lat" in
  List.iter (fun v -> M.observe h (Int64.of_int v)) [ 10; 20; 30 ];
  check_int "count" 3 (Dk_sim.Histogram.count (M.hist_data h));
  check_i64 "max" 30L (Dk_sim.Histogram.max (M.hist_data h))

(* ---- reset ---- *)

let reset_zeroes_keeps_instruments () =
  let reg = M.create () in
  let c = M.counter ~reg "c" in
  let g = M.gauge ~reg "g" in
  let h = M.hist ~reg "h" in
  M.add c 5;
  M.gauge_add g 9;
  M.observe h 100L;
  M.reset reg;
  check_int "counter zeroed" 0 (M.value c);
  check_int "gauge zeroed" 0 (M.gauge_value g);
  check_int "hwm zeroed" 0 (M.gauge_hwm g);
  check_int "hist zeroed" 0 (Dk_sim.Histogram.count (M.hist_data h));
  (* the same record is still registered: bumps after reset are seen
     through a fresh lookup *)
  M.incr c;
  check_int "still live" 1 (M.value (M.counter ~reg "c"))

(* ---- snapshot ---- *)

let snapshot_sorted_and_complete () =
  let reg = M.create () in
  M.add (M.counter ~reg "b.second") 2;
  M.add (M.counter ~reg "a.first") 1;
  M.gauge_add (M.gauge ~reg "g") 7;
  M.observe (M.hist ~reg "h") 50L;
  let s = M.snapshot reg in
  (match s.M.counters with
  | [ (n1, v1); (n2, v2) ] ->
      check Alcotest.string "sorted first" "a.first" n1;
      check_int "v1" 1 v1;
      check Alcotest.string "sorted second" "b.second" n2;
      check_int "v2" 2 v2
  | l -> Alcotest.failf "expected 2 counters, got %d" (List.length l));
  (match s.M.gauges with
  | [ (n, v, hwm) ] ->
      check Alcotest.string "gauge name" "g" n;
      check_int "gauge value" 7 v;
      check_int "gauge hwm" 7 hwm
  | l -> Alcotest.failf "expected 1 gauge, got %d" (List.length l));
  match s.M.hists with
  | [ (n, hs) ] ->
      check Alcotest.string "hist name" "h" n;
      check_int "hist count" 1 hs.M.hs_count;
      check_i64 "hist p50" 50L hs.M.hs_p50
  | l -> Alcotest.failf "expected 1 hist, got %d" (List.length l)

let snapshot_deterministic () =
  let reg = M.create () in
  List.iter (fun n -> M.incr (M.counter ~reg n)) [ "z"; "m"; "a"; "m" ];
  let s1 = M.snapshot reg and s2 = M.snapshot reg in
  check Alcotest.bool "identical snapshots" true (s1 = s2);
  check_int "three names" 3 (List.length s1.M.counters)

(* ---- exporters ---- *)

let export_table_mentions_all () =
  let reg = M.create () in
  M.add (M.counter ~reg "cnt") 3;
  M.gauge_add (M.gauge ~reg "gge") 4;
  M.observe (M.hist ~reg "hst") 5L;
  let out = Format.asprintf "%a" Export.pp_table (M.snapshot reg) in
  List.iter
    (fun needle ->
      let found =
        let n = String.length out and pl = String.length needle in
        let rec scan i =
          i + pl <= n && (String.sub out i pl = needle || scan (i + 1))
        in
        scan 0
      in
      check Alcotest.bool (needle ^ " in table") true found)
    [ "cnt"; "gge"; "hst"; "counters:"; "gauges"; "histograms" ]

let export_json_escapes () =
  check Alcotest.string "quotes and newline"
    {|"a\"b\\c\nd"|}
    (Export.json_string "a\"b\\c\nd")

(* ---- flight recorder ---- *)

let flight_record_entries () =
  let f = F.create ~capacity:4096 () in
  F.record f ~now:10L F.Push "first";
  F.record f ~now:20L F.Drop "second";
  F.recordf f ~now:30L F.Mark "n=%d" 3;
  check_int "length" 3 (F.length f);
  check_int "recorded" 3 (F.recorded f);
  check_int "evicted" 0 (F.evicted f);
  match F.entries f with
  | [ e1; e2; e3 ] ->
      check_i64 "ts oldest" 10L e1.F.at;
      check Alcotest.string "kind" "push" (F.kind_name e1.F.kind);
      check Alcotest.string "what" "first" e1.F.what;
      check Alcotest.string "drop" "second" e2.F.what;
      check Alcotest.string "formatted" "n=3" e3.F.what
  | l -> Alcotest.failf "expected 3 entries, got %d" (List.length l)

let flight_eviction () =
  (* A small ring holds only a few entries; old ones must be evicted,
     order preserved, counts accounted. *)
  let f = F.create ~capacity:128 () in
  for i = 1 to 100 do
    F.record f ~now:(Int64.of_int i) F.Enqueue (Printf.sprintf "ev%d" i)
  done;
  check_int "recorded all" 100 (F.recorded f);
  check Alcotest.bool "evicted some" true (F.evicted f > 0);
  check_int "length + evicted = recorded" 100 (F.length f + F.evicted f);
  let es = F.entries f in
  check Alcotest.bool "non-empty" true (es <> []);
  (* strictly increasing timestamps, ending at the newest *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> Int64.compare a.F.at b.F.at < 0 && increasing rest
    | _ -> true
  in
  check Alcotest.bool "ordered" true (increasing es);
  check_i64 "newest survives" 100L (List.nth es (List.length es - 1)).F.at

let flight_disable_and_clear () =
  let f = F.create ~capacity:4096 () in
  F.record f ~now:1L F.Push "kept";
  F.set_enabled f false;
  F.record f ~now:2L F.Push "ignored";
  F.recordf f ~now:3L F.Push "also %s" "ignored";
  check_int "disabled records nothing" 1 (F.length f);
  F.set_enabled f true;
  F.record f ~now:4L F.Push "kept2";
  check_int "re-enabled" 2 (F.length f);
  F.clear f;
  check_int "cleared" 0 (F.length f);
  check_int "recorded reset" 0 (F.recorded f)

let flight_label_truncated () =
  (* A label longer than the whole ring still records (truncated)
     rather than raising or looping forever. *)
  let f = F.create ~capacity:128 () in
  F.record f ~now:1L F.Mark (String.make 1000 'x');
  check_int "one entry" 1 (F.length f);
  match F.entries f with
  | [ e ] ->
      check Alcotest.bool "truncated" true (String.length e.F.what < 1000);
      check Alcotest.bool "prefix kept" true
        (String.length e.F.what > 0 && e.F.what.[0] = 'x')
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let flight_dump_on_violation () =
  (* The documented wiring: a Dk_check sink that dumps the flight ring
     when a sanitizer violation reports. *)
  let f = F.create ~capacity:4096 () in
  F.record f ~now:7L F.Drop "the smoking gun";
  let dumped = Buffer.create 256 in
  Dk_check.set_sink (fun _ _ ->
      Buffer.add_string dumped (Format.asprintf "%a" F.pp f));
  let (), reports =
    Dk_check.capture (fun () ->
        Dk_check.report Dk_check.Use_after_free "synthetic")
  in
  Dk_check.clear_sink ();
  check_int "one report" 1 (List.length reports);
  let out = Buffer.contents dumped in
  let contains needle =
    let n = String.length out and pl = String.length needle in
    let rec scan i = i + pl <= n && (String.sub out i pl = needle || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "dump has the event" true (contains "the smoking gun");
  check Alcotest.bool "dump has the kind" true (contains "drop")

let () =
  Alcotest.run "dk_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter get-or-create" `Quick counter_get_or_create;
          Alcotest.test_case "incr/add" `Quick counter_incr_add;
          Alcotest.test_case "default registry shared" `Quick default_registry_shared;
          Alcotest.test_case "gauge high-water" `Quick gauge_hwm;
          Alcotest.test_case "histogram observe" `Quick hist_observe;
          Alcotest.test_case "reset" `Quick reset_zeroes_keeps_instruments;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "sorted and complete" `Quick snapshot_sorted_and_complete;
          Alcotest.test_case "deterministic" `Quick snapshot_deterministic;
          Alcotest.test_case "table export" `Quick export_table_mentions_all;
          Alcotest.test_case "json escaping" `Quick export_json_escapes;
        ] );
      ( "flight",
        [
          Alcotest.test_case "record/entries" `Quick flight_record_entries;
          Alcotest.test_case "eviction" `Quick flight_eviction;
          Alcotest.test_case "disable/clear" `Quick flight_disable_and_clear;
          Alcotest.test_case "oversized label" `Quick flight_label_truncated;
          Alcotest.test_case "dump on violation" `Quick flight_dump_on_violation;
        ] );
    ]
