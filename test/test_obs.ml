(* Tests for dk_obs: the metrics registry (counters, gauges,
   histograms, snapshots) and the flight recorder (record/entries,
   eviction, enable/disable, Dk_check dump wiring).

   The registry under test is always a private [Metrics.create ()] (or
   counter deltas on the process-global default) so the suite is
   insensitive to instrumentation that ran before it. *)

module M = Dk_obs.Metrics
module F = Dk_obs.Flight
module Export = Dk_obs.Export
module Dk_check = Dk_mem.Dk_check

let check = Alcotest.check
let check_int = check Alcotest.int
let check_i64 = check Alcotest.int64

(* ---- counters ---- *)

let counter_get_or_create () =
  let reg = M.create () in
  let a = M.counter ~reg "x.hits" in
  let b = M.counter ~reg "x.hits" in
  M.incr a;
  M.incr b;
  check_int "same instrument" 2 (M.value a);
  check_int "other name is fresh" 0 (M.value (M.counter ~reg "x.misses"))

let counter_incr_add () =
  let reg = M.create () in
  let c = M.counter ~reg "c" in
  M.incr c;
  M.add c 41;
  check_int "1 + 41" 42 (M.value c)

let default_registry_shared () =
  (* Instruments on the default registry are process-global: read a
     delta, never an absolute. *)
  let c = M.counter "test_obs.private" in
  let before = M.value c in
  M.incr c;
  check_int "delta visible" (before + 1) (M.value (M.counter "test_obs.private"))

(* ---- gauges ---- *)

let gauge_hwm () =
  let reg = M.create () in
  let g = M.gauge ~reg "depth" in
  M.gauge_add g 3;
  M.gauge_add g 4;
  M.gauge_add g (-5);
  check_int "value" 2 (M.gauge_value g);
  check_int "high-water" 7 (M.gauge_hwm g);
  M.set g 1;
  check_int "set" 1 (M.gauge_value g);
  check_int "hwm survives set" 7 (M.gauge_hwm g)

(* ---- histograms ---- *)

let hist_observe () =
  let reg = M.create () in
  let h = M.hist ~reg "lat" in
  List.iter (fun v -> M.observe h (Int64.of_int v)) [ 10; 20; 30 ];
  check_int "count" 3 (Dk_sim.Histogram.count (M.hist_data h));
  check_i64 "max" 30L (Dk_sim.Histogram.max (M.hist_data h))

(* ---- reset ---- *)

let reset_zeroes_keeps_instruments () =
  let reg = M.create () in
  let c = M.counter ~reg "c" in
  let g = M.gauge ~reg "g" in
  let h = M.hist ~reg "h" in
  M.add c 5;
  M.gauge_add g 9;
  M.observe h 100L;
  M.reset reg;
  check_int "counter zeroed" 0 (M.value c);
  check_int "gauge zeroed" 0 (M.gauge_value g);
  check_int "hwm zeroed" 0 (M.gauge_hwm g);
  check_int "hist zeroed" 0 (Dk_sim.Histogram.count (M.hist_data h));
  (* the same record is still registered: bumps after reset are seen
     through a fresh lookup *)
  M.incr c;
  check_int "still live" 1 (M.value (M.counter ~reg "c"))

(* ---- snapshot ---- *)

let snapshot_sorted_and_complete () =
  let reg = M.create () in
  M.add (M.counter ~reg "b.second") 2;
  M.add (M.counter ~reg "a.first") 1;
  M.gauge_add (M.gauge ~reg "g") 7;
  M.observe (M.hist ~reg "h") 50L;
  let s = M.snapshot reg in
  (match s.M.counters with
  | [ (n1, v1); (n2, v2) ] ->
      check Alcotest.string "sorted first" "a.first" n1;
      check_int "v1" 1 v1;
      check Alcotest.string "sorted second" "b.second" n2;
      check_int "v2" 2 v2
  | l -> Alcotest.failf "expected 2 counters, got %d" (List.length l));
  (match s.M.gauges with
  | [ (n, v, hwm) ] ->
      check Alcotest.string "gauge name" "g" n;
      check_int "gauge value" 7 v;
      check_int "gauge hwm" 7 hwm
  | l -> Alcotest.failf "expected 1 gauge, got %d" (List.length l));
  match s.M.hists with
  | [ (n, hs) ] ->
      check Alcotest.string "hist name" "h" n;
      check_int "hist count" 1 hs.M.hs_count;
      check_i64 "hist p50" 50L hs.M.hs_p50
  | l -> Alcotest.failf "expected 1 hist, got %d" (List.length l)

let snapshot_deterministic () =
  let reg = M.create () in
  List.iter (fun n -> M.incr (M.counter ~reg n)) [ "z"; "m"; "a"; "m" ];
  let s1 = M.snapshot reg and s2 = M.snapshot reg in
  check Alcotest.bool "identical snapshots" true (s1 = s2);
  check_int "three names" 3 (List.length s1.M.counters)

(* ---- multi-shard aggregation ---- *)

let shard_agg_folds () =
  (* shard<i>.<layer>.<component>.<event> names fold into one
     shards.agg.<rest> entry; everything else passes through. *)
  let reg = M.create () in
  M.add (M.counter ~reg "shard0.app.client.ops") 3;
  M.add (M.counter ~reg "shard1.app.client.ops") 4;
  M.add (M.counter ~reg "net.tcp.segs_sent") 9;
  M.gauge_add (M.gauge ~reg "shard0.core.mailbox.inflight") 2;
  M.gauge_add (M.gauge ~reg "shard1.core.mailbox.inflight") 5;
  M.observe (M.hist ~reg "shard0.app.client.rtt") 10L;
  M.observe (M.hist ~reg "shard1.app.client.rtt") 1000L;
  let s = M.snapshot_with_shard_agg reg in
  check_int "agg counter sums shards"
    7
    (List.assoc "shards.agg.app.client.ops" s.M.counters);
  check_int "per-shard counters survive" 3
    (List.assoc "shard0.app.client.ops" s.M.counters);
  check_int "non-shard counter untouched" 9
    (List.assoc "net.tcp.segs_sent" s.M.counters);
  (match
     List.find_opt
       (fun (n, _, _) -> n = "shards.agg.core.mailbox.inflight")
       s.M.gauges
   with
  | Some (_, v, hwm) ->
      check_int "agg gauge sums levels" 7 v;
      check_int "agg gauge hwm = worst shard" 5 hwm
  | None -> Alcotest.fail "aggregated gauge missing");
  (match List.assoc_opt "shards.agg.app.client.rtt" s.M.hists with
  | Some hs ->
      check_int "agg hist merges counts" 2 hs.M.hs_count;
      check Alcotest.bool "agg hist keeps the worst sample" true
        (hs.M.hs_max >= 1000L)
  | None -> Alcotest.fail "aggregated hist missing");
  let sorted l = List.sort compare l = l in
  check Alcotest.bool "counters stay sorted" true
    (sorted (List.map fst s.M.counters));
  check Alcotest.bool "hists stay sorted" true
    (sorted (List.map fst s.M.hists))

let shard_runtime_names () =
  (* The multi-shard runtime registers every per-shard instrument under
     shard<i>.<layer>.<component>.<event> on the default registry; the
     aggregated view then carries one shards.agg.* entry per family. *)
  let module Runtime = Dk_shard_rt.Runtime in
  M.reset M.default;
  let t = Runtime.create ~n:2 ~seed:7L () in
  let _stats = Runtime.run_echo t ~flows:2 ~size:64 ~rounds:3 in
  let s = M.snapshot_with_shard_agg M.default in
  let cnames = List.map fst s.M.counters in
  let hnames = List.map fst s.M.hists in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n cnames))
    [
      "shard0.app.client.ops";
      "shard1.app.client.ops";
      "shard0.device.rss.flows";
      "shard0.core.mailbox.sent";
      "shard1.core.mailbox.delivered";
      "shards.agg.app.client.ops";
      "shards.agg.core.mailbox.sent";
    ];
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n hnames))
    [ "shard0.app.client.rtt"; "shard1.app.client.rtt"; "shards.agg.app.client.rtt" ];
  M.reset M.default

let shard_agg_noop_without_shards () =
  let reg = M.create () in
  M.add (M.counter ~reg "net.tcp.segs_sent") 1;
  M.add (M.counter ~reg "shardless.name") 2;
  M.add (M.counter ~reg "shard.nodigits") 3;
  check Alcotest.bool "no shard names => plain snapshot" true
    (M.snapshot_with_shard_agg reg = M.snapshot reg)

(* ---- exporters ---- *)

let export_table_mentions_all () =
  let reg = M.create () in
  M.add (M.counter ~reg "cnt") 3;
  M.gauge_add (M.gauge ~reg "gge") 4;
  M.observe (M.hist ~reg "hst") 5L;
  let out = Format.asprintf "%a" Export.pp_table (M.snapshot reg) in
  List.iter
    (fun needle ->
      let found =
        let n = String.length out and pl = String.length needle in
        let rec scan i =
          i + pl <= n && (String.sub out i pl = needle || scan (i + 1))
        in
        scan 0
      in
      check Alcotest.bool (needle ^ " in table") true found)
    [ "cnt"; "gge"; "hst"; "counters:"; "gauges"; "histograms" ]

let export_json_escapes () =
  check Alcotest.string "quotes and newline"
    {|"a\"b\\c\nd"|}
    (Export.json_string "a\"b\\c\nd")

(* ---- flight recorder ---- *)

let flight_record_entries () =
  let f = F.create ~capacity:4096 () in
  F.record f ~now:10L F.Push "first";
  F.record f ~now:20L F.Drop "second";
  F.recordf f ~now:30L F.Mark "n=%d" 3;
  check_int "length" 3 (F.length f);
  check_int "recorded" 3 (F.recorded f);
  check_int "evicted" 0 (F.evicted f);
  match F.entries f with
  | [ e1; e2; e3 ] ->
      check_i64 "ts oldest" 10L e1.F.at;
      check Alcotest.string "kind" "push" (F.kind_name e1.F.kind);
      check Alcotest.string "what" "first" e1.F.what;
      check Alcotest.string "drop" "second" e2.F.what;
      check Alcotest.string "formatted" "n=3" e3.F.what
  | l -> Alcotest.failf "expected 3 entries, got %d" (List.length l)

let flight_eviction () =
  (* A small ring holds only a few entries; old ones must be evicted,
     order preserved, counts accounted. *)
  let f = F.create ~capacity:128 () in
  for i = 1 to 100 do
    F.record f ~now:(Int64.of_int i) F.Enqueue (Printf.sprintf "ev%d" i)
  done;
  check_int "recorded all" 100 (F.recorded f);
  check Alcotest.bool "evicted some" true (F.evicted f > 0);
  check_int "length + evicted = recorded" 100 (F.length f + F.evicted f);
  let es = F.entries f in
  check Alcotest.bool "non-empty" true (es <> []);
  (* strictly increasing timestamps, ending at the newest *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> Int64.compare a.F.at b.F.at < 0 && increasing rest
    | _ -> true
  in
  check Alcotest.bool "ordered" true (increasing es);
  check_i64 "newest survives" 100L (List.nth es (List.length es - 1)).F.at

let flight_disable_and_clear () =
  let f = F.create ~capacity:4096 () in
  F.record f ~now:1L F.Push "kept";
  F.set_enabled f false;
  F.record f ~now:2L F.Push "ignored";
  F.recordf f ~now:3L F.Push "also %s" "ignored";
  check_int "disabled records nothing" 1 (F.length f);
  F.set_enabled f true;
  F.record f ~now:4L F.Push "kept2";
  check_int "re-enabled" 2 (F.length f);
  F.clear f;
  check_int "cleared" 0 (F.length f);
  check_int "recorded reset" 0 (F.recorded f)

let flight_label_truncated () =
  (* A label longer than the whole ring still records (truncated)
     rather than raising or looping forever. *)
  let f = F.create ~capacity:128 () in
  F.record f ~now:1L F.Mark (String.make 1000 'x');
  check_int "one entry" 1 (F.length f);
  match F.entries f with
  | [ e ] ->
      check Alcotest.bool "truncated" true (String.length e.F.what < 1000);
      check Alcotest.bool "prefix kept" true
        (String.length e.F.what > 0 && e.F.what.[0] = 'x')
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let flight_dump_on_violation () =
  (* The documented wiring: a Dk_check sink that dumps the flight ring
     when a sanitizer violation reports. *)
  let f = F.create ~capacity:4096 () in
  F.record f ~now:7L F.Drop "the smoking gun";
  let dumped = Buffer.create 256 in
  Dk_check.set_sink (fun _ _ ->
      Buffer.add_string dumped (Format.asprintf "%a" F.pp f));
  let (), reports =
    Dk_check.capture (fun () ->
        Dk_check.report Dk_check.Use_after_free "synthetic")
  in
  Dk_check.clear_sink ();
  check_int "one report" 1 (List.length reports);
  let out = Buffer.contents dumped in
  let contains needle =
    let n = String.length out and pl = String.length needle in
    let rec scan i = i + pl <= n && (String.sub out i pl = needle || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "dump has the event" true (contains "the smoking gun");
  check Alcotest.bool "dump has the kind" true (contains "drop")

(* ---- the `demi stats --json` snapshot ----

   The docs promise a JSON-lines export whose counter names include the
   core.token.* and net.tcp.* families. Drive the same echo workload
   the stats subcommand runs, then parse every line with a minimal
   JSON reader (no JSON library in the switch) and check the names. *)

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Bool of bool
    | Null

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      if !pos >= n then raise (Bad "eof");
      let c = s.[!pos] in
      incr pos;
      c
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      let g = next () in
      if g <> c then raise (Bad (Printf.sprintf "expected %c, got %c" c g))
    in
    let literal lit v =
      String.iter expect lit;
      v
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' -> (
            match next () with
            | ('"' | '\\' | '/') as c ->
                Buffer.add_char b c;
                go ()
            | 'n' -> Buffer.add_char b '\n'; go ()
            | 't' -> Buffer.add_char b '\t'; go ()
            | 'r' -> Buffer.add_char b '\r'; go ()
            | 'b' -> Buffer.add_char b '\b'; go ()
            | 'u' ->
                pos := !pos + 4;
                Buffer.add_char b '?';
                go ()
            | c -> raise (Bad (Printf.sprintf "escape %c" c)))
        | c ->
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        incr pos
      done;
      if !pos = start then raise (Bad "number");
      float_of_string (String.sub s start (!pos - start))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          expect '{';
          skip_ws ();
          if peek () = Some '}' then (incr pos; Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match next () with
              | ',' -> members ((k, v) :: acc)
              | '}' -> Obj (List.rev ((k, v) :: acc))
              | c -> raise (Bad (Printf.sprintf "in object: %c" c))
            in
            members []
      | Some '[' ->
          expect '[';
          skip_ws ();
          if peek () = Some ']' then (incr pos; Arr [])
          else
            let rec elems acc =
              let v = value () in
              skip_ws ();
              match next () with
              | ',' -> elems (v :: acc)
              | ']' -> Arr (List.rev (v :: acc))
              | c -> raise (Bad (Printf.sprintf "in array: %c" c))
            in
            elems []
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> raise (Bad "empty")
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v
end

let stats_json_workload () =
  let module Setup = Dk_apps.Sim_setup in
  let module Echo = Dk_apps.Echo in
  M.reset M.default;
  let duo = Setup.two_hosts () in
  let da =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let db =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in
  (match Echo.start_demi_server ~demi:db ~port:7 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "echo server failed to start");
  (match
     Echo.demi_rtt ~demi:da ~dst:(Setup.endpoint duo.Setup.b 7) ~size:64
       ~rounds:5
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "echo workload failed");
  let now = Dk_sim.Engine.now duo.Setup.engine in
  Export.json_lines ~now (M.snapshot M.default)

let field name = function
  | Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let stats_json_lines_parse_and_name () =
  let out = stats_json_workload () in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "snapshot is non-empty" true (lines <> []);
  let names =
    List.map
      (fun l ->
        let v = try Json.parse l with Json.Bad m -> Alcotest.fail (m ^ ": " ^ l) in
        (match field "ts" v with
        | Some (Json.Num _) -> ()
        | _ -> Alcotest.fail ("missing ts: " ^ l));
        (match field "kind" v with
        | Some (Json.Str ("counter" | "gauge" | "histogram")) -> ()
        | _ -> Alcotest.fail ("bad kind: " ^ l));
        match field "name" v with
        | Some (Json.Str n) -> n
        | _ -> Alcotest.fail ("missing name: " ^ l))
      lines
  in
  List.iter
    (fun promised ->
      Alcotest.(check bool) (promised ^ " present") true
        (List.mem promised names))
    [
      "core.token.minted";
      "core.token.completed";
      "core.token.redeemed";
      "core.token.outstanding";
      "net.tcp.segs_sent";
      "net.tcp.segs_received";
      "net.tcp.retransmits";
      (* the batching/readiness fast paths export their hit rates *)
      "core.wait.ready_hits";
      "core.push.batched";
      "nic.tx.doorbells";
      "mem.pool.fastpath_hits";
    ]

let stats_json_counter_values_sane () =
  let out = stats_json_workload () in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  let value_of name =
    List.find_map
      (fun l ->
        let v = Json.parse l in
        match (field "name" v, field "value" v) with
        | Some (Json.Str n), Some (Json.Num x) when n = name -> Some x
        | _ -> None)
      lines
  in
  (match value_of "core.token.minted" with
  | Some v -> Alcotest.(check bool) "tokens were minted" true (v > 0.)
  | None -> Alcotest.fail "core.token.minted has no value");
  (match (value_of "core.token.minted", value_of "core.token.completed") with
  | Some m, Some c ->
      Alcotest.(check bool) "completed <= minted" true (c <= m)
  | _ -> Alcotest.fail "token counters missing");
  (* the echo workload transmits frames, so its doorbells were rung and
     counted (the ready-FIFO hit accounting is exercised end-to-end by
     bench waitsmoke, which asserts the exact count) *)
  match value_of "nic.tx.doorbells" with
  | Some v -> Alcotest.(check bool) "doorbells rang" true (v > 0.)
  | None -> Alcotest.fail "nic.tx.doorbells has no value"

let () =
  Alcotest.run "dk_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter get-or-create" `Quick counter_get_or_create;
          Alcotest.test_case "incr/add" `Quick counter_incr_add;
          Alcotest.test_case "default registry shared" `Quick default_registry_shared;
          Alcotest.test_case "gauge high-water" `Quick gauge_hwm;
          Alcotest.test_case "histogram observe" `Quick hist_observe;
          Alcotest.test_case "reset" `Quick reset_zeroes_keeps_instruments;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "sorted and complete" `Quick snapshot_sorted_and_complete;
          Alcotest.test_case "deterministic" `Quick snapshot_deterministic;
          Alcotest.test_case "table export" `Quick export_table_mentions_all;
          Alcotest.test_case "json escaping" `Quick export_json_escapes;
        ] );
      ( "shard aggregation",
        [
          Alcotest.test_case "shard names fold into shards.agg" `Quick
            shard_agg_folds;
          Alcotest.test_case "runtime instrument naming scheme" `Quick
            shard_runtime_names;
          Alcotest.test_case "no shard names is a no-op" `Quick
            shard_agg_noop_without_shards;
        ] );
      ( "flight",
        [
          Alcotest.test_case "record/entries" `Quick flight_record_entries;
          Alcotest.test_case "eviction" `Quick flight_eviction;
          Alcotest.test_case "disable/clear" `Quick flight_disable_and_clear;
          Alcotest.test_case "oversized label" `Quick flight_label_truncated;
          Alcotest.test_case "dump on violation" `Quick flight_dump_on_violation;
        ] );
      ( "stats --json",
        [
          Alcotest.test_case "lines parse, promised names present" `Quick
            stats_json_lines_parse_and_name;
          Alcotest.test_case "counter values sane" `Quick
            stats_json_counter_values_sane;
        ] );
    ]
