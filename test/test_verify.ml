(* Tests for the dk-verify typestate/dataflow engine.

   The fixture corpus is the contract: every [(* FLAG rule *)] marker
   in a bad_*.ml names a finding the engine must produce on exactly
   that line, good_*.ml must come up empty, and the two sets are
   compared exactly — no extra findings tolerated either way. On top
   of the corpus, unit tests pin down the per-rule behaviors
   (escape-stops-tracking, allowlist subtraction, stale detection,
   parse errors). *)

let fixture_dir = "../tools/verify/fixtures"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixtures prefix =
  Sys.readdir fixture_dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > String.length prefix
         && String.sub f 0 (String.length prefix) = prefix
         && Filename.check_suffix f ".ml")
  |> List.sort compare

(* [(* FLAG rule ... *)] markers: expected (line, rule) pairs. *)
let expected_flags src =
  let re = Str.regexp "(\\* FLAG \\([a-z- ]+\\)\\*)" in
  let out = ref [] in
  List.iteri
    (fun i line ->
      try
        ignore (Str.search_forward re line 0);
        let rules = String.trim (Str.matched_group 1 line) in
        List.iter
          (fun r -> out := (i + 1, r) :: !out)
          (String.split_on_char ' ' rules)
      with Not_found -> ())
    (String.split_on_char '\n' src);
  List.sort compare !out

let scan_fixture file =
  let path = Filename.concat fixture_dir file in
  Verify_engine.scan_source ~path (read_file path)

let pair_list = Alcotest.(list (pair int string))

let bad_fixture_exact file () =
  let src = read_file (Filename.concat fixture_dir file) in
  let expected = expected_flags src in
  Alcotest.(check bool)
    "fixture seeds at least one violation" true
    (expected <> []);
  let got =
    scan_fixture file
    |> List.map (fun f -> (f.Lint_engine.line, f.Lint_engine.rule))
    |> List.sort compare
  in
  Alcotest.check pair_list "every seeded violation flagged, nothing else"
    expected got

let good_fixture_clean file () =
  let got = scan_fixture file in
  List.iter
    (fun f -> Printf.printf "unexpected: %s\n" (Lint_engine.pp_finding f))
    got;
  Alcotest.(check int) "clean fixture has zero findings" 0 (List.length got)

let all_rule_families_covered () =
  let rules =
    List.concat_map scan_fixture (fixtures "bad_")
    |> List.map (fun f -> f.Lint_engine.rule)
    |> List.sort_uniq compare
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " covered by corpus") true (List.mem r rules))
    [ "qd-typestate"; "token-linear"; "sga-ownership"; "ignored-result" ]

(* ---------------- unit behaviors ---------------- *)

let scan src = Verify_engine.scan_source ~path:"examples/x.ml" src
let rules fs = List.sort_uniq compare (List.map (fun f -> f.Lint_engine.rule) fs)

let escape_stops_tracking () =
  (* a qd handed to an unknown function carries no close obligation *)
  let fs =
    scan
      "let f demi handoff =\n\
      \  match Demi.socket demi `Tcp with\n\
      \  | Ok qd -> handoff qd\n\
      \  | Error _ -> ()\n"
  in
  Alcotest.(check int) "no findings after escape" 0 (List.length fs)

let closure_capture_escapes_but_body_checked () =
  (* capture releases the outer obligation, yet code inside the closure
     is still analyzed: the inner discard must fire *)
  let fs =
    scan
      "let f demi reg =\n\
      \  match Demi.socket demi `Tcp with\n\
      \  | Ok qd -> reg (fun () -> ignore (Demi.close demi qd))\n\
      \  | Error _ -> ()\n"
  in
  Alcotest.(check (list string)) "only the inner ignore fires"
    [ "ignored-result" ] (rules fs)

let underscore_binding_untracked () =
  let fs =
    scan
      "let must = function Ok v -> v | Error _ -> assert false\n\
       let f demi =\n\
      \  let _scratch = must (Demi.socket demi `Tcp) in\n\
      \  ()\n"
  in
  Alcotest.(check int) "deliberate _-prefixed discard allowed" 0
    (List.length fs)

let parse_error_reported () =
  let fs = scan "let f = (\n" in
  Alcotest.(check (list string)) "parse-error finding" [ "parse-error" ]
    (rules fs)

let real_tree_scan_smoke () =
  (* scan_dirs walks and parses the fixture dir without filesystem
     surprises; file count matches the corpus *)
  let _, n = Verify_engine.scan_dirs [ fixture_dir ] in
  Alcotest.(check int) "scans every fixture"
    (List.length (fixtures "bad_") + List.length (fixtures "good_"))
    n

let allowlist_subtracts_and_detects_stale () =
  let findings = scan_fixture "bad_token.ml" in
  Alcotest.(check bool) "corpus yields findings" true (findings <> []);
  let path = (List.hd findings).Lint_engine.path in
  let file = Filename.temp_file "verify_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      Printf.fprintf oc "# comment\ntoken-linear %s\nqd-typestate %s\n" path
        path;
      close_out oc;
      let allow = Lint_engine.load_allowlist file in
      let kept, stale = Lint_engine.apply_allowlist allow findings in
      Alcotest.(check int) "token-linear findings all suppressed" 0
        (List.length
           (List.filter (fun f -> f.Lint_engine.rule = "token-linear") kept));
      Alcotest.(check (list string)) "qd-typestate entry is stale"
        [ "qd-typestate" ]
        (List.map (fun e -> e.Lint_engine.a_rule) stale))

let () =
  let corpus_bad =
    List.map
      (fun f -> Alcotest.test_case f `Quick (bad_fixture_exact f))
      (fixtures "bad_")
  in
  let corpus_good =
    List.map
      (fun f -> Alcotest.test_case f `Quick (good_fixture_clean f))
      (fixtures "good_")
  in
  Alcotest.run "dk-verify"
    [
      ("bad fixtures (exact flag match)", corpus_bad);
      ("good fixtures (zero findings)", corpus_good);
      ( "engine behaviors",
        [
          Alcotest.test_case "all four rule families covered" `Quick
            all_rule_families_covered;
          Alcotest.test_case "escape stops tracking" `Quick
            escape_stops_tracking;
          Alcotest.test_case "closure body still checked" `Quick
            closure_capture_escapes_but_body_checked;
          Alcotest.test_case "underscore binding untracked" `Quick
            underscore_binding_untracked;
          Alcotest.test_case "parse error reported" `Quick parse_error_reported;
          Alcotest.test_case "scan_dirs walks fixtures" `Quick
            real_tree_scan_smoke;
          Alcotest.test_case "allowlist subtract + stale" `Quick
            allowlist_subtracts_and_detects_stale;
        ] );
    ]
