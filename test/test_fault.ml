(* Scenario suite for dk_fault: echo, KV, storage and RDMA workloads
   under the named fault plans, asserting liveness (every run
   terminates in bounded virtual time) and correct error surfacing
   (`Conn_aborted and `Io_error arrive through Demi.wait; nothing
   hangs) — plus the determinism properties that make the injector a
   replay tool: a rate-0 plan is bit-identical to no plan, and the
   same plan + seed replays bit-identically.

   Set DK_FAULT_CI=1 (the CI fault matrix job does) to widen the
   every-plan liveness sweep to multiple seeds. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

module Engine = Dk_sim.Engine
module Fault = Dk_fault.Fault
module Setup = Dk_apps.Sim_setup
module Echo = Dk_apps.Echo
module Kv = Dk_apps.Kv
module Kv_app = Dk_apps.Kv_app
module Demi = Demikernel.Demi
module Types = Demikernel.Types

(* Any scenario that is still running after this much virtual time has
   hung in the only way a discrete-event simulation can: by endlessly
   rescheduling itself. Every workload below finishes well under it. *)
let liveness_bound_ns = 60_000_000_000L (* 60 virtual seconds *)

let named ~seed name =
  match Fault.named ~seed name with
  | Some p -> p
  | None -> Alcotest.failf "unknown named plan %S" name

(* Reset the global registries, arm [plan] (or disarm for [None]), run
   [f], and always disarm afterwards so a failing scenario cannot
   leak its plan into the next test. *)
let with_plan plan f =
  Dk_obs.Metrics.reset Dk_obs.Metrics.default;
  Dk_obs.Flight.clear Dk_obs.Flight.default;
  (match plan with
  | Some p -> Fault.install Fault.default p
  | None -> Fault.clear Fault.default);
  Fun.protect ~finally:(fun () -> Fault.clear Fault.default) f

let err_name = function
  | None -> "none"
  | Some e -> Demikernel.Types.error_to_string e

(* ---------------- workload runners ---------------- *)

type outcome = {
  ok : int;           (* rounds / records that completed *)
  err : Types.error option; (* first surfaced error, if any *)
  final_ns : int64;   (* virtual clock when the run ended *)
}

let bounded (o : outcome) =
  check_bool "bounded virtual time" true
    (Int64.compare o.final_ns liveness_bound_ns < 0)

(* Echo client against a demikernel echo server over the faulty
   fabric; mirrors `demi faults` so CLI replays and tests agree. *)
let run_echo ?(rounds = 40) ?(size = 256) () =
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine and cost = duo.Setup.cost in
  let da = Setup.demi_of_host ~engine ~cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine ~cost duo.Setup.b () in
  ignore (Echo.start_demi_server ~demi:db ~port:7);
  let payload = String.make size 'f' in
  let err = ref None in
  let ok = ref 0 in
  (match Demi.socket da `Tcp with
  | Error e -> err := Some e
  | Ok qd -> (
      match Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7) with
      | Error e -> err := Some e
      | Ok () ->
          let i = ref 0 in
          while !i < rounds && !err = None do
            incr i;
            match Demi.sga_alloc da payload with
            | Error e -> err := Some e
            | Ok sga -> (
                match Demi.blocking_push da qd sga with
                | Types.Pushed -> (
                    match Demi.blocking_pop da qd with
                    | Types.Popped reply ->
                        incr ok;
                        Demi.sga_free da reply;
                        Demi.sga_free da sga
                    | Types.Failed e -> err := Some e
                    | _ -> err := Some `Not_supported)
                | Types.Failed e -> err := Some e
                | _ -> err := Some `Not_supported)
          done;
          ignore (Demi.close da qd)));
  { ok = !ok; err = !err; final_ns = Engine.now engine }

(* Append [records] sealed records to a log file on a faulty block
   device, reading each one back. *)
let run_storage ?(records = 8) () =
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine and cost = duo.Setup.cost in
  let block = Dk_device.Block.create ~engine ~cost () in
  let da = Setup.demi_of_host ~engine ~cost duo.Setup.a ~block () in
  let err = ref None in
  let ok = ref 0 in
  (match Demi.fcreate da "fault.log" with
  | Error e -> err := Some e
  | Ok fqd ->
      let i = ref 0 in
      while !i < records && !err = None do
        incr i;
        match Demi.sga_alloc da (Printf.sprintf "record-%03d" !i) with
        | Error e -> err := Some e
        | Ok sga -> (
            (match Demi.blocking_push da fqd sga with
            | Types.Pushed -> (
                match Demi.blocking_pop da fqd with
                | Types.Popped r ->
                    incr ok;
                    Demi.sga_free da r
                | Types.Failed e -> err := Some e
                | _ -> err := Some `Not_supported)
            | Types.Failed e -> err := Some e
            | _ -> err := Some `Not_supported);
            Demi.sga_free da sga)
      done);
  { ok = !ok; err = !err; final_ns = Engine.now engine }

(* Full KV client/server exchange (the paper's headline workload). *)
let run_kv () =
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine and cost = duo.Setup.cost in
  let da = Setup.demi_of_host ~engine ~cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine ~cost duo.Setup.b () in
  let kv = Kv.create (Demi.manager db) in
  (match Kv_app.start_tcp_server ~demi:db ~port:6379 ~kv with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kv server: %s" (Types.error_to_string e));
  let r =
    Kv_app.run_tcp_client ~demi:da ~dst:(Setup.endpoint duo.Setup.b 6379)
      ~ops:200 ~keys:50 ~value_size:64 ~read_fraction:0.9 ()
  in
  (r, Engine.now engine)

(* One RDMA push over a connected queue pair. *)
let run_rdma () =
  let engine = Engine.create () in
  let cost = Dk_sim.Cost.default in
  let rdma_a = Dk_device.Rdma.create ~engine ~cost () in
  let rdma_b = Dk_device.Rdma.create ~engine ~cost () in
  let da = Demi.create ~engine ~cost ~rdma:rdma_a () in
  let db = Demi.create ~engine ~cost ~rdma:rdma_b () in
  let qa = Dk_device.Rdma.create_qp rdma_a in
  let qb = Dk_device.Rdma.create_qp rdma_b in
  Dk_device.Rdma.connect qa qb;
  let qda = Result.get_ok (Demi.rdma_endpoint da ~depth:8 qa) in
  let qdb = Result.get_ok (Demi.rdma_endpoint db ~depth:8 qb) in
  (engine, da, db, qda, qdb)

(* ---------------- fabric scenarios ---------------- *)

(* Plans the transport absorbs: the app sees every round succeed. *)
let survives plan_name ~seed () =
  with_plan (Some (named ~seed plan_name)) @@ fun () ->
  let o = run_echo () in
  bounded o;
  check_bool
    (Printf.sprintf "no surfaced error (got %s)" (err_name o.err))
    true (o.err = None);
  check_int "all rounds" 40 o.ok

let loss_burst_injects () =
  with_plan (Some (named ~seed:7L "loss-burst")) @@ fun () ->
  let o = run_echo () in
  bounded o;
  check_int "all rounds" 40 o.ok;
  check_bool "drops actually injected" true
    (Fault.injected Fault.default Fault.Fabric_drop > 0);
  (* surviving drops means TCP retransmitted *)
  check_bool "tcp retransmitted" true
    (Dk_obs.Metrics.value (Dk_obs.Metrics.counter "net.tcp.retransmits") > 0)

let partition_aborts () =
  with_plan (Some (named ~seed:7L "partition")) @@ fun () ->
  let o = run_echo () in
  bounded o;
  check_bool "partition fired" true
    (Fault.injected Fault.default Fault.Fabric_partition > 0);
  (* RTO gives up and surfaces ECONNABORTED instead of hanging *)
  check_bool
    (Printf.sprintf "aborted, not hung (got %s)" (err_name o.err))
    true (o.err = Some `Conn_aborted);
  check_bool "some rounds before the cut" true (o.ok > 0 && o.ok < 40);
  check_bool "abort counted" true
    (Dk_obs.Metrics.value (Dk_obs.Metrics.counter "core.tcp.aborted") > 0)

let partition_heal_recovers () =
  with_plan (Some (named ~seed:7L "partition-heal")) @@ fun () ->
  let o = run_echo () in
  bounded o;
  check_bool "partition fired" true
    (Fault.injected Fault.default Fault.Fabric_partition > 0);
  check_bool
    (Printf.sprintf "healed before RTO gave up (got %s)" (err_name o.err))
    true (o.err = None);
  check_int "all rounds" 40 o.ok

let corrupt_wire_checksummed () =
  with_plan (Some (named ~seed:7L "corrupt-wire")) @@ fun () ->
  let o = run_echo () in
  bounded o;
  check_int "all rounds" 40 o.ok;
  check_bool "corruption injected" true
    (Fault.injected Fault.default Fault.Fabric_corrupt > 0);
  check_bool "no error surfaced" true (o.err = None)

let dup_storm_deduplicated () =
  with_plan (Some (named ~seed:7L "dup-storm")) @@ fun () ->
  let o = run_echo () in
  bounded o;
  check_int "all rounds" 40 o.ok;
  check_bool "duplicates injected" true
    (Fault.injected Fault.default Fault.Fabric_dup > 0
    && Fault.injected Fault.default Fault.Nic_rx_dup > 0);
  check_bool "no error surfaced" true (o.err = None)

let kv_under_loss () =
  with_plan (Some (named ~seed:11L "loss-burst")) @@ fun () ->
  match run_kv () with
  | Error e, _ -> Alcotest.failf "kv client: %s" (Types.error_to_string e)
  | Ok stats, now ->
      check_bool "bounded virtual time" true
        (Int64.compare now liveness_bound_ns < 0);
      check_int "all ops" 200 stats.Kv_app.ops;
      check_int "no misses" 0 stats.Kv_app.misses

let kv_under_corruption () =
  with_plan (Some (named ~seed:11L "corrupt-wire")) @@ fun () ->
  match run_kv () with
  | Error e, _ -> Alcotest.failf "kv client: %s" (Types.error_to_string e)
  | Ok stats, now ->
      check_bool "bounded virtual time" true
        (Int64.compare now liveness_bound_ns < 0);
      check_int "all ops" 200 stats.Kv_app.ops;
      check_int "no misses" 0 stats.Kv_app.misses

(* ---------------- block scenarios ---------------- *)

let slow_disk_completes () =
  with_plan (Some (named ~seed:7L "slow-disk")) @@ fun () ->
  let o = run_storage () in
  bounded o;
  check_int "all records" 8 o.ok;
  check_bool "stalls injected" true
    (Fault.injected Fault.default Fault.Block_stall > 0);
  check_bool "no error surfaced" true (o.err = None)

let flaky_disk_retried () =
  with_plan (Some (named ~seed:7L "flaky-disk")) @@ fun () ->
  let o = run_storage () in
  bounded o;
  check_int "all records" 8 o.ok;
  check_bool "errors injected" true
    (Fault.injected Fault.default Fault.Block_error > 0);
  check_bool "dispatcher recovered" true
    (Dk_obs.Metrics.value (Dk_obs.Metrics.counter "core.block.recovered") > 0);
  check_bool "no error surfaced" true (o.err = None)

let broken_disk_surfaces_io_error () =
  with_plan (Some (named ~seed:7L "broken-disk")) @@ fun () ->
  let o = run_storage () in
  bounded o;
  check_bool "errors injected" true
    (Fault.injected Fault.default Fault.Block_error > 0);
  check_bool
    (Printf.sprintf "EIO, not a hang (got %s)" (err_name o.err))
    true (o.err = Some `Io_error);
  check_bool "dispatcher gave up after retries" true
    (Dk_obs.Metrics.value (Dk_obs.Metrics.counter "core.block.gave_up") > 0)

let torn_write_detected () =
  with_plan (Some (named ~seed:7L "torn-write")) @@ fun () ->
  let o = run_storage () in
  bounded o;
  check_int "exactly one torn write" 1
    (Fault.injected Fault.default Fault.Block_torn_write);
  (* the CRC seal catches the truncated record on read-back *)
  check_bool
    (Printf.sprintf "EIO on read-back (got %s)" (err_name o.err))
    true (o.err = Some `Io_error)

(* ---------------- RDMA scenario ---------------- *)

let rdma_break_aborts () =
  with_plan (Some (named ~seed:7L "rdma-break")) @@ fun () ->
  let engine, da, db, qda, qdb = run_rdma () in
  let sga = Result.get_ok (Demi.sga_alloc da "doomed") in
  (match Demi.blocking_push da qda sga with
  | Types.Failed `Conn_aborted -> ()
  | r -> Alcotest.failf "push: expected Conn_aborted, got %a" Types.pp_op_result r);
  check_int "one break" 1 (Fault.injected Fault.default Fault.Rdma_qp_break);
  (* the peer's pops must not hang on the severed pair either *)
  (match Demi.pop db qdb with
  | Error _ -> ()
  | Ok tok -> (
      match Demi.wait_timeout db tok ~timeout:10_000_000L with
      | Types.Failed _ -> ()
      | r -> Alcotest.failf "pop: unexpected %a" Types.pp_op_result r));
  check_bool "bounded virtual time" true
    (Int64.compare (Engine.now engine) liveness_bound_ns < 0)

(* ---------------- the full matrix ---------------- *)

(* Every named plan, echo + storage, must terminate and surface only
   the sanctioned errors. DK_FAULT_CI=1 (the CI matrix job) widens the
   sweep to several seeds. *)
let every_plan_is_live () =
  let seeds =
    match Sys.getenv_opt "DK_FAULT_CI" with
    | Some ("1" | "true") -> [ 3L; 7L; 13L ]
    | _ -> [ 7L ]
  in
  List.iter
    (fun (name, _) ->
      List.iter
        (fun seed ->
          with_plan (Some (named ~seed name)) @@ fun () ->
          let e = run_echo ~rounds:20 () in
          bounded e;
          let s = run_storage ~records:4 () in
          bounded s;
          List.iter
            (fun o ->
              match o.err with
              | None | Some `Conn_aborted | Some `Io_error -> ()
              | Some err ->
                  Alcotest.failf "%s seed %Ld surfaced %s" name seed
                    (Types.error_to_string err))
            [ e; s ])
        seeds)
    Fault.plan_names

(* ---------------- determinism properties ---------------- *)

(* What `demi stats --json` emits: the full metrics snapshot plus the
   flight recorder, byte for byte. *)
let stats_json ~now =
  Dk_obs.Export.json_lines ~now (Dk_obs.Metrics.snapshot Dk_obs.Metrics.default)
  ^ Dk_obs.Export.json_flight Dk_obs.Flight.default

let run_echo_capture plan =
  with_plan plan @@ fun () ->
  let o = run_echo () in
  check_bool "clean run" true (o.err = None);
  stats_json ~now:o.final_ns

let rate_zero_plan_is_bit_identical () =
  let baseline = run_echo_capture None in
  let zero =
    Fault.plan ~seed:99L ~name:"all-zero"
      (List.map (fun s -> (s, Fault.spec ~rate:0.0 ())) Fault.sites)
  in
  let armed = run_echo_capture (Some zero) in
  check Alcotest.string "rate-0 plan == no plan" baseline armed;
  check_bool "nothing injected" true
    (with_plan (Some zero) (fun () -> Fault.total_injected Fault.default = 0))

let same_seed_replays_bit_identical () =
  let plan () = Some (named ~seed:9L "loss-burst") in
  let a = run_echo_capture (plan ()) in
  let b = run_echo_capture (plan ()) in
  check Alcotest.string "same plan+seed replays identically" a b;
  (* and the run was not trivially fault-free *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "faults present in the capture" true
    (contains a "fault.fabric.drop.injected")

let different_seeds_diverge () =
  (* Not a determinism requirement per se, but the property that makes
     seeds worth varying in the CI matrix: the stream actually moves. *)
  let a = run_echo_capture (Some (named ~seed:9L "loss-burst")) in
  let b = run_echo_capture (Some (named ~seed:10L "loss-burst")) in
  check_bool "seeds explore different schedules" true (a <> b)

let () =
  Alcotest.run "dk_fault"
    [
      ( "fabric",
        [
          Alcotest.test_case "loss-burst injects + survives" `Quick
            loss_burst_injects;
          Alcotest.test_case "partition aborts" `Quick partition_aborts;
          Alcotest.test_case "partition-heal recovers" `Quick
            partition_heal_recovers;
          Alcotest.test_case "corrupt-wire checksummed" `Quick
            corrupt_wire_checksummed;
          Alcotest.test_case "dup-storm deduplicated" `Quick
            dup_storm_deduplicated;
          Alcotest.test_case "reorder survives" `Quick
            (survives "reorder" ~seed:7L);
          Alcotest.test_case "nic-flaky survives" `Quick
            (survives "nic-flaky" ~seed:7L);
        ] );
      ( "kv",
        [
          Alcotest.test_case "kv under loss-burst" `Quick kv_under_loss;
          Alcotest.test_case "kv under corrupt-wire" `Quick kv_under_corruption;
        ] );
      ( "block",
        [
          Alcotest.test_case "slow-disk completes" `Quick slow_disk_completes;
          Alcotest.test_case "flaky-disk retried" `Quick flaky_disk_retried;
          Alcotest.test_case "broken-disk surfaces EIO" `Quick
            broken_disk_surfaces_io_error;
          Alcotest.test_case "torn-write detected" `Quick torn_write_detected;
        ] );
      ( "rdma",
        [ Alcotest.test_case "qp break aborts" `Quick rdma_break_aborts ] );
      ( "matrix",
        [ Alcotest.test_case "every plan is live" `Slow every_plan_is_live ] );
      ( "determinism",
        [
          Alcotest.test_case "rate-0 == no plan" `Quick
            rate_zero_plan_is_bit_identical;
          Alcotest.test_case "same seed replays" `Quick
            same_seed_replays_bit_identical;
          Alcotest.test_case "seeds diverge" `Quick different_seeds_diverge;
        ] );
    ]
