(* Tests for the dk-shard interprocedural analysis.

   The fixture corpus is the contract — but unlike dk-verify the
   corpus must be analyzed as ONE program, because the rules are
   cross-file: bad_mut_use.ml mutates a table that good_mut_decl.ml
   declared [@@shard.immutable]. Every [(* FLAG rule *)] marker names
   a finding on exactly that line, and per file the two (line, rule)
   sets must match exactly. On top of the corpus, unit tests pin down
   the call-graph layer: two-hop propagation, closure capture, module
   aliasing, and the unknown-call taint. *)

let fixture_dir = "../tools/shard/fixtures"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixtures prefix =
  Sys.readdir fixture_dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > String.length prefix
         && String.sub f 0 (String.length prefix) = prefix
         && Filename.check_suffix f ".ml")
  |> List.sort compare

(* [(* FLAG rule ... *)] markers: expected (line, rule) pairs. *)
let expected_flags src =
  let re = Str.regexp "(\\* FLAG \\([a-z- ]+\\)\\*)" in
  let out = ref [] in
  List.iteri
    (fun i line ->
      try
        ignore (Str.search_forward re line 0);
        let rules = String.trim (Str.matched_group 1 line) in
        List.iter
          (fun r -> out := (i + 1, r) :: !out)
          (String.split_on_char ' ' rules)
      with Not_found -> ())
    (String.split_on_char '\n' src);
  List.sort compare !out

(* The whole corpus, analyzed once as a single program. *)
let corpus_findings =
  lazy
    (let files = Tool_common.ml_files [ fixture_dir ] in
     let prog =
       Shard_engine.analyze_files
         (List.map (fun f -> (f, read_file f)) files)
     in
     Shard_engine.findings prog)

let findings_for file =
  Lazy.force corpus_findings
  |> List.filter (fun f -> Filename.basename f.Tool_common.path = file)
  |> List.map (fun f -> (f.Tool_common.line, f.Tool_common.rule))
  |> List.sort compare

let pair_list = Alcotest.(list (pair int string))

let bad_fixture_exact file () =
  let expected = expected_flags (read_file (Filename.concat fixture_dir file)) in
  Alcotest.(check bool)
    "fixture seeds at least one violation" true
    (expected <> []);
  Alcotest.check pair_list "every seeded violation flagged, nothing else"
    expected (findings_for file)

let good_fixture_clean file () =
  Lazy.force corpus_findings
  |> List.filter (fun f -> Filename.basename f.Tool_common.path = file)
  |> List.iter (fun f ->
         Printf.printf "unexpected: %s\n" (Tool_common.pp_finding f));
  Alcotest.check pair_list "clean fixture has zero findings" []
    (findings_for file)

let all_rule_families_covered () =
  let rules =
    Lazy.force corpus_findings
    |> List.map (fun f -> f.Tool_common.rule)
    |> List.sort_uniq compare
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " covered by corpus") true (List.mem r rules))
    [ "shard-state"; "det-source"; "poll-blocking" ]

(* ---------------- call-graph behaviors ---------------- *)

let analyze name src = Shard_engine.analyze_files [ (name, src) ]
let rules fs = List.sort_uniq compare (List.map (fun f -> f.Tool_common.rule) fs)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let two_hop_chain_reported_at_entry () =
  (* the intrinsic sits two calls below the entry point; the finding
     lands on the entry's definition line with the full chain *)
  let prog =
    analyze "hop.ml"
      "let pick () = Random.int 8\n\
       let backoff () = pick () + 1\n\
       let submit () = backoff ()\n\
       [@@shard.entry]\n"
  in
  let fs = Shard_engine.findings prog in
  Alcotest.(check (list string)) "one det-source" [ "det-source" ] (rules fs);
  let f = List.hd fs in
  Alcotest.(check int) "reported at the entry definition" 3 f.Tool_common.line;
  Alcotest.(check bool) "chain names both hops" true
    (contains ~sub:"Hop.backoff" f.Tool_common.message
    && contains ~sub:"Hop.pick" f.Tool_common.message
    && contains ~sub:"Random.int" f.Tool_common.message)

let closure_capture_propagates () =
  (* a registered closure that calls a captured local function inherits
     the local's blocking effect *)
  let prog =
    analyze "cap.ml"
      "let arm engine demi tok =\n\
      \  let redeem () = ignore (Demi.wait demi tok) in\n\
      \  ignore (Dk_sim.Engine.at engine 5L (fun () -> redeem ()))\n"
  in
  let fs = Shard_engine.findings prog in
  Alcotest.(check (list string)) "one poll-blocking" [ "poll-blocking" ]
    (rules fs);
  let f = List.hd fs in
  Alcotest.(check int) "reported at the registration" 3 f.Tool_common.line;
  Alcotest.(check bool) "blames Demi.wait" true
    (contains ~sub:"Demi.wait" f.Tool_common.message)

let module_alias_resolved () =
  (* [module E = Dk_sim.Engine] must not hide the registration surface *)
  let prog =
    analyze "ali.ml"
      "module E = Dk_sim.Engine\n\
       let go engine = ignore (E.at engine 1L (fun () -> Unix.sleep 1))\n"
  in
  let fs = Shard_engine.findings prog in
  Alcotest.(check (list string)) "alias still registers a poll root"
    [ "poll-blocking" ] (rules fs);
  Alcotest.(check bool) "blames Unix.sleep" true
    (contains ~sub:"Unix.sleep" (List.hd fs).Tool_common.message)

let unknown_call_taints_but_stays_quiet () =
  (* calling through a parameter is untrackable: the summary is marked
     unknown for honesty, but no finding is emitted — flagging every
     [t.on_event ()] callback would drown the signal *)
  let prog = analyze "unk.ml" "let call_it f = f ()\nlet pure x = x + 1\n" in
  (match Shard_engine.summary_of prog "Unk.call_it" with
  | None -> Alcotest.fail "summary for Unk.call_it missing"
  | Some s -> Alcotest.(check bool) "tainted unknown" true s.Shard_engine.unknown);
  (match Shard_engine.summary_of prog "Unk.pure" with
  | None -> Alcotest.fail "summary for Unk.pure missing"
  | Some s -> Alcotest.(check bool) "pure fn untainted" false s.Shard_engine.unknown);
  Alcotest.(check int) "no findings from unknown alone" 0
    (List.length (Shard_engine.findings prog))

let inventory_classifies () =
  let prog =
    analyze "inv.ml"
      "let table = Hashtbl.create 8 [@@shard.immutable \"decode table\"]\n\
       let hits = ref 0\n"
  in
  let inv = Shard_engine.inventory prog in
  Alcotest.(check int) "two globals inventoried" 2 (List.length inv);
  let find name = List.find (fun g -> g.Shard_engine.g_name = name) inv in
  (match (find "table").Shard_engine.g_class with
  | Shard_engine.Immutable why ->
      Alcotest.(check string) "reason kept" "decode table" why
  | _ -> Alcotest.fail "table should classify Immutable");
  (match (find "hits").Shard_engine.g_class with
  | Shard_engine.Unclassified -> ()
  | _ -> Alcotest.fail "bare ref should be Unclassified");
  Alcotest.(check (list string)) "only the bare ref is flagged"
    [ "shard-state" ]
    (rules (Shard_engine.findings prog));
  Alcotest.(check bool) "json carries the classification" true
    (contains ~sub:"\"shared-immutable\"" (Shard_engine.inventory_json inv))

let tooling_classified_and_exempt () =
  let prog =
    analyze "tool.ml"
      "let sink = ref None [@@shard.tooling \"test tap\"]\n\
       let fire () = sink := Some 1\n"
  in
  let inv = Shard_engine.inventory prog in
  (match
     (List.find (fun g -> g.Shard_engine.g_name = "sink") inv)
       .Shard_engine.g_class
   with
  | Shard_engine.Tooling why ->
      Alcotest.(check string) "reason kept" "test tap" why
  | _ -> Alcotest.fail "sink should classify Tooling");
  Alcotest.(check int) "tooling state raises no finding" 0
    (List.length (Shard_engine.findings prog));
  Alcotest.(check bool) "json carries the tooling class" true
    (contains ~sub:"\"tooling\"" (Shard_engine.inventory_json inv))

let parse_error_reported () =
  let fs = Shard_engine.findings (analyze "broken.ml" "let f = (\n") in
  Alcotest.(check (list string)) "parse-error finding" [ "parse-error" ]
    (rules fs)

let scan_dirs_walks_fixtures () =
  let _, n = Shard_engine.scan_dirs [ fixture_dir ] in
  Alcotest.(check int) "scans every fixture"
    (List.length (fixtures "bad_") + List.length (fixtures "good_"))
    n

(* ---------------- shared plumbing ---------------- *)

let walk_skips_build_and_dot_dirs () =
  (* a stray local _build/ or .git/ must never inject phantom files
     into any of the three tools *)
  let root = Filename.concat (Filename.get_temp_dir_name ()) "dk_walk_test" in
  let rec rm p =
    if Sys.is_directory p then (
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p)
    else Sys.remove p
  in
  if Sys.file_exists root then rm root;
  let touch p =
    let oc = open_out p in
    output_string oc "let x = 1\n";
    close_out oc
  in
  Sys.mkdir root 0o755;
  List.iter
    (fun d -> Sys.mkdir (Filename.concat root d) 0o755)
    [ "_build"; ".git"; "src" ];
  touch (Filename.concat root "a.ml");
  touch (Filename.concat root "src/b.ml");
  touch (Filename.concat root "_build/phantom.ml");
  touch (Filename.concat root ".git/ghost.ml");
  touch (Filename.concat root ".hidden.ml");
  touch (Filename.concat root "notes.txt");
  Fun.protect
    ~finally:(fun () -> rm root)
    (fun () ->
      Alcotest.(check (list string))
        "only real .ml files survive" [ "a.ml"; "b.ml" ]
        (Tool_common.ml_files [ root ]
        |> List.map Filename.basename
        |> List.sort compare))

let walk_missing_dir_is_empty () =
  Alcotest.(check (list string))
    "nonexistent directory yields nothing" []
    (Tool_common.ml_files [ "/nonexistent/dk_shard_test" ])

let () =
  let corpus_bad =
    List.map
      (fun f -> Alcotest.test_case f `Quick (bad_fixture_exact f))
      (fixtures "bad_")
  in
  let corpus_good =
    List.map
      (fun f -> Alcotest.test_case f `Quick (good_fixture_clean f))
      (fixtures "good_")
  in
  Alcotest.run "dk-shard"
    [
      ("bad fixtures (exact flag match)", corpus_bad);
      ("good fixtures (zero findings)", corpus_good);
      ( "call graph",
        [
          Alcotest.test_case "all three rule families covered" `Quick
            all_rule_families_covered;
          Alcotest.test_case "two-hop chain at entry" `Quick
            two_hop_chain_reported_at_entry;
          Alcotest.test_case "closure capture propagates" `Quick
            closure_capture_propagates;
          Alcotest.test_case "module alias resolved" `Quick
            module_alias_resolved;
          Alcotest.test_case "unknown call taints quietly" `Quick
            unknown_call_taints_but_stays_quiet;
          Alcotest.test_case "inventory classifies" `Quick inventory_classifies;
          Alcotest.test_case "tooling classified and exempt" `Quick
            tooling_classified_and_exempt;
          Alcotest.test_case "parse error reported" `Quick parse_error_reported;
          Alcotest.test_case "scan_dirs walks fixtures" `Quick
            scan_dirs_walks_fixtures;
        ] );
      ( "shared plumbing",
        [
          Alcotest.test_case "walk skips _build and dot dirs" `Quick
            walk_skips_build_and_dot_dirs;
          Alcotest.test_case "missing dir yields nothing" `Quick
            walk_missing_dir_is_empty;
        ] );
    ]
