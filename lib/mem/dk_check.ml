type kind =
  | Use_after_free
  | Double_free
  | Canary_smash
  | Leak
  | Token_double_complete
  | Token_redeem_after_watch
  | Token_dangling

let kind_name = function
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Canary_smash -> "canary-smash"
  | Leak -> "leak"
  | Token_double_complete -> "token-double-complete"
  | Token_redeem_after_watch -> "token-redeem-after-watch"
  | Token_dangling -> "token-dangling"

exception Violation of kind * string

let () =
  Printexc.register_printer (function
    | Violation (k, detail) ->
        Some (Printf.sprintf "Dk_check.Violation(%s): %s" (kind_name k) detail)
    | _ -> None)

let enabled_from_env () =
  match Sys.getenv_opt "DK_SANITIZE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

(* Capture frames stack so sanitizer tests can nest. *)
let captures : (kind * string) list ref list ref = ref []
[@@shard.tooling
  "sanitizer capture stack: lets DK_SANITIZE=1 tests intercept \
   violation reports process-wide; empty outside tests and never read \
   on the datapath"]

let sink : (kind -> string -> unit) option ref = ref None
[@@shard.tooling
  "sanitizer report tap for test harnesses; None outside tests and \
   never read on the datapath"]

let set_sink f = sink := Some f
let clear_sink () = sink := None

let report k detail =
  (match !sink with Some f -> f k detail | None -> ());
  match !captures with
  | acc :: _ -> acc := (k, detail) :: !acc
  | [] -> raise (Violation (k, detail))
  [@@hot.alloc
    "a sanitizer violation report allocates only when a violation \
     actually fires"]

let capture f =
  let acc = ref [] in
  captures := acc :: !captures;
  Fun.protect
    ~finally:(fun () ->
      match !captures with
      | top :: rest when top == acc -> captures := rest
      | _ -> captures := List.filter (fun r -> r != acc) !captures)
    (fun () ->
      let v = f () in
      (v, List.rev !acc))
