let page_size = 4096

type t = { id : int; store : bytes; mutable pinned : bool }

let create ~id ~size =
  if size <= 0 then invalid_arg "Region.create";
  { id; store = Bytes.create size; pinned = false }
  [@@hot.alloc
    "mapping a region's backing store happens once per region, then \
     every allocation carves views out of it"]

let id t = t.id
let size t = Bytes.length t.store
let store t = t.store
let pin t = t.pinned <- true
let pinned t = t.pinned
let pages t = (size t + page_size - 1) / page_size
