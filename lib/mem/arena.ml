type block = { offset : int; size : int; level : int }

type t = {
  reg : Region.t;
  total : int;
  min_block : int;
  levels : int; (* level 0 = whole region; level [levels-1] = min blocks *)
  free_lists : int list array; (* per level: offsets of free blocks *)
  allocated : (int, int) Hashtbl.t; (* offset -> level, for double-free checks *)
  mutable live : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let rec log2_loop v acc = if v <= 1 then acc else log2_loop (v lsr 1) (acc + 1)
let log2 n = log2_loop n 0

let create ?(min_block = 64) reg =
  let total = Region.size reg in
  if not (is_pow2 total) then
    invalid_arg "Arena.create: region size must be a power of two";
  if not (is_pow2 min_block) || min_block > total then
    invalid_arg "Arena.create: bad min_block";
  let levels = log2 (total / min_block) + 1 in
  let free_lists = Array.make levels [] in
  free_lists.(0) <- [ 0 ];
  { reg; total; min_block; levels; free_lists; allocated = Hashtbl.create 64; live = 0 }
  [@@hot.alloc
    "the per-level free lists and bookkeeping table are built once per \
     region, when it is mapped"]

let region t = t.reg
let block_size t level = t.total lsr level

(* Smallest level (largest index) whose block size still fits [n].
   The descent is a toplevel recursion so it does not close over the
   request size. *)
let rec level_descend t n level =
  if level + 1 < t.levels && block_size t (level + 1) >= n then
    level_descend t n (level + 1)
  else level

let level_for t n =
  if n > t.total then None else Some (level_descend t n 0)

let take_free t level =
  match t.free_lists.(level) with
  | [] -> None
  | off :: rest ->
      t.free_lists.(level) <- rest;
      Some off

(* Find a free block at [level], splitting larger blocks as needed. *)
let rec obtain t level =
  if level < 0 then None
  else
    match take_free t level with
    | Some off -> Some off
    | None -> (
        match obtain t (level - 1) with
        | None -> None
        | Some off ->
            (* Split: keep the low half, free the high half at this level. *)
            let half = block_size t level in
            t.free_lists.(level) <- (off + half) :: t.free_lists.(level);
            Some off)
  [@@hot.alloc "splitting a block conses the freed high half onto its level"]

let alloc t n =
  if n < 1 then invalid_arg "Arena.alloc: size must be >= 1";
  match level_for t n with
  | None -> None
  | Some level -> (
      match obtain t level with
      | None -> None
      | Some offset ->
          let size = block_size t level in
          Hashtbl.replace t.allocated offset level;
          t.live <- t.live + size;
          Some { offset; size; level })
  [@@hot.alloc
    "the block descriptor is the buddy allocator's return surface, paid \
     on the slow path behind the rx pools"]

(* One fused membership-test-and-remove pass over a level's free list
   (the old [List.mem] + [List.filter] walked it twice and closed over
   the buddy offset). [None] means the buddy is not free at this
   level. *)
let rec take_buddy buddy = function
  | [] -> None
  | o :: rest ->
      if o = buddy then Some rest
      else (
        match take_buddy buddy rest with
        | Some rest' -> Some (o :: rest')
        | None -> None)
  [@@hot.alloc
    "rebuilds the level's free-list spine only when the buddy is found \
     and the blocks coalesce"]

let rec insert_or_merge t level offset =
  let size = block_size t level in
  let buddy = offset lxor size in
  match if level > 0 then take_buddy buddy t.free_lists.(level) else None with
  | Some rest ->
      t.free_lists.(level) <- rest;
      insert_or_merge t (level - 1) (min offset buddy)
  | None -> t.free_lists.(level) <- offset :: t.free_lists.(level)
  [@@hot.alloc "buddy coalescing conses the merged block back onto its level"]

let free t b =
  (match Hashtbl.find_opt t.allocated b.offset with
  | Some level when level = b.level -> ()
  | Some _ | None ->
      invalid_arg "Arena.free: not an outstanding block (double free?)");
  Hashtbl.remove t.allocated b.offset;
  t.live <- t.live - b.size;
  insert_or_merge t b.level b.offset

let live_bytes t = t.live
let is_quiescent t = t.live = 0 && t.free_lists.(0) <> []
