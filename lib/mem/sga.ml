type t = { segs : Buffer.t list; total : int }

let empty = { segs = []; total = 0 }

(* The segment walks below recurse directly instead of going through
   List combinators: an sga's segment list is short and per-op, and
   the closure a combinator would build is itself a per-op
   allocation. *)
let rec sum_lengths = function
  | [] -> 0
  | b :: rest -> Buffer.length b + sum_lengths rest

let of_buffers segs = { segs; total = sum_lengths segs }
  [@@hot.alloc "the sga record is the API's scatter-gather descriptor"]

let of_string s = of_buffers [ Buffer.of_string s ]
  [@@hot.alloc "unmanaged fallback: wraps the string in a one-segment sga"]

let rec wrap_strings = function
  | [] -> []
  | s :: rest -> Buffer.of_string s :: wrap_strings rest
  [@@hot.alloc "unmanaged fallback: one buffer view per source string"]

let of_strings ss = of_buffers (wrap_strings ss)

let segments t = t.segs
let segment_count t = List.length t.segs
let length t = t.total

let append t b =
  { segs = t.segs @ [ b ]; total = t.total + Buffer.length b }

let concat a b = { segs = a.segs @ b.segs; total = a.total + b.total }

let rec copy_segs segs dst pos =
  match segs with
  | [] -> pos
  | b :: rest ->
      Buffer.blit_to_bytes b 0 dst pos (Buffer.length b);
      copy_segs rest dst (pos + Buffer.length b)

let copy_into t dst off =
  if off < 0 || off + t.total > Bytes.length dst then
    invalid_arg "Sga.copy_into: destination too small";
  copy_segs t.segs dst off - off

let to_string t =
  let dst = Bytes.create t.total in
  ignore (copy_into t dst 0);
  Bytes.unsafe_to_string dst
  [@@hot.alloc "serialization materializes the contiguous wire payload"]

let sub_string t pos len =
  if pos < 0 || len < 0 || pos + len > t.total then
    invalid_arg "Sga.sub_string";
  let out = Stdlib.Buffer.create len in
  let skip = ref pos and want = ref len in
  let take b =
    let blen = Buffer.length b in
    if !want > 0 then
      if !skip >= blen then skip := !skip - blen
      else begin
        let here = min (blen - !skip) !want in
        Stdlib.Buffer.add_string out
          (Bytes.sub_string (Buffer.store b) (Buffer.off b + !skip) here);
        want := !want - here;
        skip := 0
      end
  in
  List.iter take t.segs;
  Stdlib.Buffer.contents out

let equal a b = a.total = b.total && String.equal (to_string a) (to_string b)

let rec free_segs = function
  | [] -> ()
  | b :: rest ->
      Buffer.free b;
      free_segs rest

let free t = free_segs t.segs

let rec hold_segs = function
  | [] -> ()
  | b :: rest ->
      Buffer.io_hold b;
      hold_segs rest

let io_hold t = hold_segs t.segs

let rec release_segs = function
  | [] -> ()
  | b :: rest ->
      Buffer.io_release b;
      release_segs rest

let io_release t = release_segs t.segs

let pp ppf t =
  Format.fprintf ppf "sga[%d segs, %d bytes]" (segment_count t) t.total
