(** Fixed-size buffer pool with O(1) get/put.

    Device receive paths pre-post buffers from a pool (the "allocate
    enough buffers of the right size for senders" burden §2 describes);
    the libOS owns the pool so applications never see it. *)

type t

val create :
  ?sanitize:bool ->
  alloc:(unit -> Buffer.t option) ->
  size:int ->
  count:int ->
  unit ->
  t option
(** [create ~alloc ~size ~count ()] pre-allocates [count] buffers using
    [alloc] (each must return a buffer of length [size]); [None] if any
    allocation fails. With [sanitize] (default:
    {!Dk_check.enabled_from_env}), {!put} detects a buffer returned
    twice and reports [Double_free] through {!Dk_check}. *)

val buffer_size : t -> int
val available : t -> int
val outstanding : t -> int

val get : t -> Buffer.t option
(** Take a buffer; [None] when exhausted (models rx-ring underrun). *)

val put : t -> Buffer.t -> unit
(** Return a buffer previously obtained from {!get}.
    @raise Invalid_argument if the pool is already full. In sanitizer
    mode a double put is reported through {!Dk_check} ([Double_free])
    and ignored. *)

val take_all : t -> Buffer.t list
(** Empty the free list without counting hits (used by the manager's
    drain/leak sweep, not by the datapath). *)
