type stats = {
  allocs : int;
  releases : int;
  deferred_releases : int;
  live_bytes : int;
  region_count : int;
  region_bytes : int;
}

type leak = { leak_region : int; leak_off : int; leak_len : int }

type t = {
  initial_region_size : int;
  max_total_bytes : int;
  on_new_region : Region.t -> unit;
  sanitize : bool;
  (* live allocations, for the shutdown leak sweep: packed
     (region lsl 32 | block offset) -> payload length. One immediate
     int key, not a (region, offset) tuple — a tuple key would
     allocate and hash polymorphically on every sanitized alloc and
     free (dk-hot: hot-poly). Only populated when sanitizing. *)
  live_allocs : (int, int) Hashtbl.t;
  (* rx fast path: size-classed free lists (power-of-two classes) in
     front of the buddy arenas. Off by default. *)
  rx_pools : (int, Pool.t) Hashtbl.t;
  mutable rx_pooling : bool;
  mutable rx_class_capacity : int;
  mutable draining : bool; (* pool drain in progress: releases are terminal *)
  mutable arenas : Arena.t list;
  mutable next_region_id : int;
  mutable total_bytes : int;
  mutable allocs : int;
  mutable releases : int;
  mutable deferred_releases : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Class-wide obs instruments (aggregated across managers). The
   bytes-in-flight gauge is maintained with add/subtract at alloc and
   release so no per-event walk of the arenas is ever needed. *)
let m_allocs = Dk_obs.Metrics.counter "mem.manager.allocs"
let m_releases = Dk_obs.Metrics.counter "mem.manager.releases"
let m_deferred = Dk_obs.Metrics.counter "mem.manager.deferred_releases"
let m_oom = Dk_obs.Metrics.counter "mem.manager.alloc_failures"
let m_fastpath = Dk_obs.Metrics.counter "mem.pool.fastpath_hits"
let g_in_flight = Dk_obs.Metrics.gauge "mem.manager.bytes_in_flight"
let g_region_bytes = Dk_obs.Metrics.gauge "mem.manager.region_bytes"

(* Guard bytes on each side of a sanitized allocation. An overrun of
   the *requested* length lands in the canary even when the buddy
   allocator rounded the block up, so smashes are caught at the exact
   boundary the application was given. *)
let canary_len = 8
let canary_byte = '\xDB'
let poison_byte = '\xDD'

let create ?(initial_region_size = 1 lsl 20) ?(max_total_bytes = 1 lsl 28)
    ?(on_new_region = fun _ -> ()) ?(sanitize = Dk_check.enabled_from_env ())
    () =
  if not (is_pow2 initial_region_size) then
    invalid_arg "Manager.create: initial_region_size must be a power of two";
  {
    initial_region_size;
    max_total_bytes;
    on_new_region;
    sanitize;
    live_allocs = Hashtbl.create 16;
    rx_pools = Hashtbl.create 4;
    rx_pooling = false;
    rx_class_capacity = 64;
    draining = false;
    arenas = [];
    next_region_id = 0;
    total_bytes = 0;
    allocs = 0;
    releases = 0;
    deferred_releases = 0;
  }

let sanitized t = t.sanitize

(* Toplevel so the doubling walk does not close over the target. *)
let rec pow2_above n v = if v >= n then v else pow2_above n (v * 2)
let next_pow2 n = pow2_above n 1

let grow t want =
  let size = max t.initial_region_size (next_pow2 want) in
  if t.total_bytes + size > t.max_total_bytes then None
  else begin
    let reg = Region.create ~id:t.next_region_id ~size in
    t.next_region_id <- t.next_region_id + 1;
    t.total_bytes <- t.total_bytes + size;
    Dk_obs.Metrics.gauge_add g_region_bytes size;
    Region.pin reg;
    t.on_new_region reg;
    let arena = Arena.create reg in
    t.arenas <- t.arenas @ [ arena ];
    Some arena
  end
  [@@hot.alloc
    "mapping and pinning a new region happens once per growth step, \
     amortized over every allocation the region then serves"]

(* Toplevel so the guard-byte walk does not close over the store. *)
let rec count_smashed store i stop n =
  if i >= stop then n
  else
    count_smashed store (i + 1) stop
      (if Bytes.get store i <> canary_byte then n + 1 else n)

let check_canaries store ~region_id ~block_off ~data_off ~len =
  let below = count_smashed store block_off (block_off + canary_len) 0 in
  let above =
    count_smashed store (data_off + len) (data_off + len + canary_len) 0
  in
  if below > 0 || above > 0 then
    Dk_check.report Dk_check.Canary_smash
      (Printf.sprintf
         "canary smashed around allocation (region %d, off %d, len %d): %d \
          guard byte(s) below, %d above — out-of-bounds write on the data \
          path"
         region_id data_off len below above)
  [@@hot.alloc
    "the smash report formats only when guard bytes were actually \
     overwritten"]

(* Block offsets sit well inside 32 bits (regions are megabytes), so
   the pair packs losslessly; packed keys sort exactly like the
   (region, offset) pairs did, which keeps the leak sweep's order. *)
let live_key ~region_id ~off = (region_id lsl 32) lor (off land 0xffffffff)

let wrap t arena (block : Arena.block) len =
  let reg = Arena.region arena in
  let store = Region.store reg in
  let region_id = Region.id reg in
  let data_off =
    block.Arena.offset + if t.sanitize then canary_len else 0
  in
  if t.sanitize then begin
    Bytes.fill store block.Arena.offset canary_len canary_byte;
    Bytes.fill store (data_off + len) canary_len canary_byte;
    Hashtbl.replace t.live_allocs
      (live_key ~region_id ~off:block.Arena.offset)
      len
  end;
  (* [release] runs strictly after [buf] exists, so it can consult the
     buffer's deferral flag through this knot. *)
  let buf_ref = ref None in
  let release () =
    t.releases <- t.releases + 1;
    Dk_obs.Metrics.incr m_releases;
    Dk_obs.Metrics.gauge_add g_in_flight (-len);
    (match !buf_ref with
    | Some b when Buffer.was_deferred b ->
        t.deferred_releases <- t.deferred_releases + 1;
        Dk_obs.Metrics.incr m_deferred
    | Some _ | None -> ());
    if t.sanitize then begin
      Hashtbl.remove t.live_allocs (live_key ~region_id ~off:block.Arena.offset);
      check_canaries store ~region_id ~block_off:block.Arena.offset ~data_off
        ~len;
      (* Poison the whole block: stale reads through raw store access
         show 0xDD instead of plausible data. *)
      Bytes.fill store block.Arena.offset block.Arena.size poison_byte
    end;
    Arena.free arena block
  in
  let buf =
    Buffer.make_managed ~sanitize:t.sanitize ~store ~off:data_off ~len
      ~region_id ~release ()
  in
  buf_ref := Some buf;
  buf
  [@@hot.alloc
    "the release closure and its back-reference knot are the managed \
     allocation's teardown machinery, built once per buddy allocation"]

(* Toplevel so the first-fit walk does not close over the length. *)
let rec arenas_alloc len = function
  | [] -> None
  | arena :: rest -> (
      match Arena.alloc arena len with
      | Some block -> Some (arena, block)
      | None -> arenas_alloc len rest)
  [@@hot.alloc
    "the (arena, block) pair is the buddy allocator's internal return \
     surface, paid on the slow path behind the rx pools"]

let try_arenas t len = arenas_alloc len t.arenas

let alloc_raw t want =
  match try_arenas t want with
  | Some _ as hit -> hit
  | None -> (
      match grow t want with
      | None -> None
      | Some arena -> (
          match Arena.alloc arena want with
          | Some block -> Some (arena, block)
          | None -> None))
  [@@hot.alloc
    "the (arena, block) pair is the buddy allocator's internal return \
     surface, paid on the slow path behind the rx pools"]

let alloc t len =
  if len <= 0 then invalid_arg "Manager.alloc: size must be positive";
  let want = if t.sanitize then len + (2 * canary_len) else len in
  match alloc_raw t want with
  | None ->
      Dk_obs.Metrics.incr m_oom;
      None
  | Some (arena, block) ->
      t.allocs <- t.allocs + 1;
      Dk_obs.Metrics.incr m_allocs;
      Dk_obs.Metrics.gauge_add g_in_flight len;
      Some (wrap t arena block len)

(* ---- rx fast path (size-classed pools) ----

   Managed buffers are one-shot: once every reference drops, the
   release closure fires and the Buffer.t is dead. Recycling therefore
   re-wraps the same (arena, block) into a {e fresh} buffer and returns
   that to the pool — the storage never touches the buddy allocator,
   which is the point. Terminal cases (drain in progress, pool gone or
   full) fall back to the normal [Arena.free].

   Accounting: seeding a pool pays the real allocator costs
   ([mem.manager.allocs]) but does not count idle pooled storage as
   in-flight; a pool hit bumps only [mem.pool.fastpath_hits] and the
   in-flight gauge, a recycle only [mem.manager.releases] and the
   gauge — so the gauge stays balanced and the allocator counters
   measure allocator work alone. *)

let rec make_pooled t arena (block : Arena.block) size cls =
  let reg = Arena.region arena in
  let store = Region.store reg in
  let region_id = Region.id reg in
  let data_off = block.Arena.offset + if t.sanitize then canary_len else 0 in
  if t.sanitize then begin
    Bytes.fill store block.Arena.offset canary_len canary_byte;
    Bytes.fill store (data_off + size) canary_len canary_byte;
    Hashtbl.replace t.live_allocs
      (live_key ~region_id ~off:block.Arena.offset)
      size
  end;
  let buf_ref = ref None in
  let release () =
    t.releases <- t.releases + 1;
    Dk_obs.Metrics.incr m_releases;
    Dk_obs.Metrics.gauge_add g_in_flight (-size);
    (match !buf_ref with
    | Some b when Buffer.was_deferred b ->
        t.deferred_releases <- t.deferred_releases + 1;
        Dk_obs.Metrics.incr m_deferred
    | Some _ | None -> ());
    if t.sanitize then begin
      Hashtbl.remove t.live_allocs (live_key ~region_id ~off:block.Arena.offset);
      check_canaries store ~region_id ~block_off:block.Arena.offset ~data_off
        ~len:size;
      Bytes.fill store block.Arena.offset block.Arena.size poison_byte
    end;
    let recycled =
      (not t.draining)
      &&
      match Hashtbl.find_opt t.rx_pools cls with
      | Some pool when Pool.outstanding pool > 0 ->
          Pool.put pool (make_pooled t arena block size cls);
          true
      | Some _ | None -> false
    in
    if not recycled then Arena.free arena block
  in
  let buf =
    Buffer.make_managed ~sanitize:t.sanitize ~store ~off:data_off ~len:size
      ~region_id ~release ()
  in
  buf_ref := Some buf;
  buf
  [@@hot.alloc
    "recycling re-wraps the same (arena, block) into a fresh one-shot \
     handle; the descriptor is the price of the one-shot lifecycle, the \
     storage itself never touches the buddy allocator"]

(* Seeding counts as allocator work but leaves the in-flight gauge
   alone: the buffers are idle in the pool, not in any hand. The gauge
   is credited at pool-hit time instead. *)
let seed_pooled t cls () =
  let want = if t.sanitize then cls + (2 * canary_len) else cls in
  match alloc_raw t want with
  | None ->
      Dk_obs.Metrics.incr m_oom;
      None
  | Some (arena, block) ->
      t.allocs <- t.allocs + 1;
      Dk_obs.Metrics.incr m_allocs;
      Some (make_pooled t arena block cls cls)

let size_class len = next_pow2 (max len 64)

let rx_pool t cls =
  match Hashtbl.find_opt t.rx_pools cls with
  | Some _ as hit -> hit
  | None -> (
      match
        Pool.create ~sanitize:t.sanitize ~alloc:(seed_pooled t cls) ~size:cls
          ~count:t.rx_class_capacity ()
      with
      | None -> None
      | Some pool ->
          Hashtbl.replace t.rx_pools cls pool;
          Some pool)

let alloc_rx t len =
  if (not t.rx_pooling) || len <= 0 then alloc t len
  else
    let cls = size_class len in
    match rx_pool t cls with
    | None -> alloc t len
    | Some pool -> (
        match Pool.get pool with
        | None -> alloc t len
        | Some b ->
            Dk_obs.Metrics.incr m_fastpath;
            Dk_obs.Metrics.gauge_add g_in_flight cls;
            if Buffer.length b = len then Some b
            else begin
              (* Exact-length view, same contract as [alloc]. The class
                 canaries sit at the block bounds, so an overrun past
                 [len] but inside [cls] is not caught here — the price
                 of the size-classed fast path. *)
              let v = Buffer.sub b 0 len in
              Buffer.free b;
              Some v
            end)
  [@@hot.alloc
    "the exact-length view descriptor over a pooled class block is the \
     rx fast path's return surface; the bytes themselves are recycled"]

let drain_rx_pools t =
  t.draining <- true;
  Dk_util.Det.iter_sorted ~compare:Int.compare
    (fun _ pool -> List.iter Buffer.free (Pool.take_all pool))
    t.rx_pools;
  Hashtbl.reset t.rx_pools;
  t.draining <- false

let set_rx_pooling t ?class_capacity enabled =
  (match class_capacity with
  | Some c when c > 0 -> t.rx_class_capacity <- c
  | Some _ | None -> ());
  if t.rx_pooling && not enabled then drain_rx_pools t;
  t.rx_pooling <- enabled

let rx_pooling t = t.rx_pooling

let alloc_exn t len =
  match alloc t len with
  | Some b -> b
  | None -> raise Out_of_memory

let alloc_string t s =
  match alloc t (max 1 (String.length s)) with
  | None -> None
  | Some b ->
      Buffer.blit_from_string s 0 b 0 (String.length s);
      if String.length s = Buffer.length b then Some b
      else begin
        (* Trim the view to the string's exact length. *)
        let v = Buffer.sub b 0 (String.length s) in
        Buffer.free b;
        Some v
      end

let sga_of_string t s =
  Option.map (fun b -> Sga.of_buffers [ b ]) (alloc_string t s)

let regions t = List.map Arena.region t.arenas

let stats t =
  {
    allocs = t.allocs;
    releases = t.releases;
    deferred_releases = t.deferred_releases;
    live_bytes = List.fold_left (fun acc a -> acc + Arena.live_bytes a) 0 t.arenas;
    region_count = List.length t.arenas;
    region_bytes = t.total_bytes;
  }

let check_leaks t =
  (* Idle pooled rx buffers are live allocations from the sanitizer's
     point of view; hand them back before sweeping so only buffers an
     application actually holds are reported. *)
  drain_rx_pools t;
  let leaks =
    Dk_util.Det.fold_sorted ~compare:Int.compare
      (fun key leak_len acc ->
        {
          leak_region = key lsr 32;
          leak_off = key land 0xffffffff;
          leak_len;
        }
        :: acc)
      t.live_allocs []
    |> List.rev
  in
  List.iter
    (fun l ->
      Dk_check.report Dk_check.Leak
        (Printf.sprintf
           "allocation never freed: region %d, off %d, len %d still live at \
            shutdown (pinned DMA memory cannot be reclaimed)"
           l.leak_region l.leak_off l.leak_len))
    leaks;
  leaks
