type cell = {
  mutable app_refs : int;
  mutable io_refs : int;
  mutable released : bool;
  mutable deferred : bool;
  release : unit -> unit;
}

type t = {
  store : bytes;
  off : int;
  len : int;
  region_id : int option;
  cell : cell option;
  sanitize : bool; (* report lifecycle violations through Dk_check *)
  mutable live : bool; (* this view not yet freed *)
}

let of_string s =
  {
    store = Bytes.of_string s;
    off = 0;
    len = String.length s;
    region_id = None;
    cell = None;
    sanitize = false;
    live = true;
  }
  [@@hot.alloc
    "wrapping a string copies it into a fresh unmanaged store; on the \
     rx path this is the pool-miss fallback, not the fast path"]

let unmanaged n =
  if n < 0 then invalid_arg "Buffer.unmanaged";
  {
    store = Bytes.make n '\000';
    off = 0;
    len = n;
    region_id = None;
    cell = None;
    sanitize = false;
    live = true;
  }

let make_managed ?(sanitize = false) ~store ~off ~len ~region_id ~release () =
  if off < 0 || len < 0 || off + len > Bytes.length store then
    invalid_arg "Buffer.make_managed";
  let cell =
    { app_refs = 1; io_refs = 0; released = false; deferred = false; release }
  in
  {
    store;
    off;
    len;
    region_id = Some region_id;
    cell = Some cell;
    sanitize;
    live = true;
  }
  [@@hot.alloc
    "a managed allocation's refcount cell and descriptor, built once \
     per buddy allocation and recycled by the rx pools"]

let describe t =
  Printf.sprintf "allocation (region %s, off %d, len %d)"
    (match t.region_id with Some id -> string_of_int id | None -> "-")
    t.off t.len
  [@@hot.alloc
    "the identity label formats only when a sanitizer or misuse \
     diagnostic actually fires"]

(* Sanitizer guard on every data access: a freed view or a released
   allocation must not be read or written — with kernel-bypass the
   device may already own (or have recycled) the bytes. *)
let check_access t op =
  if t.sanitize then begin
    (match t.cell with
    | Some c when c.released ->
        Dk_check.report Dk_check.Use_after_free
          (Printf.sprintf "Buffer.%s on released %s" op (describe t))
    | Some _ | None -> ());
    if not t.live then
      Dk_check.report Dk_check.Use_after_free
        (Printf.sprintf "Buffer.%s on freed view of %s" op (describe t))
  end
  [@@hot.alloc
    "use-after-free diagnostics format only on a sanitizer hit"]

let store t = t.store
let off t = t.off
let length t = t.len
let region_id t = t.region_id

let retain t =
  match t.cell with
  | None -> ()
  | Some c ->
      if c.released then
        if t.sanitize then
          Dk_check.report Dk_check.Use_after_free
            (Printf.sprintf "Buffer.sub/dup on released %s" (describe t))
        else invalid_arg "Buffer: use after release"
      else c.app_refs <- c.app_refs + 1

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Buffer.sub";
  retain t;
  { t with off = t.off + pos; len; live = true }
  [@@hot.alloc
    "a sliced view is a fresh descriptor over the same backing store; \
     no bytes are copied"]

let dup t =
  retain t;
  { t with live = true }
  [@@hot.alloc "a duplicated view is a fresh descriptor, not a byte copy"]

let check_bounds t pos len name =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg name

let get t i =
  check_access t "get";
  check_bounds t i 1 "Buffer.get";
  Bytes.get t.store (t.off + i)

let set t i c =
  check_access t "set";
  check_bounds t i 1 "Buffer.set";
  Bytes.set t.store (t.off + i) c

let blit_from_string src soff t doff len =
  check_access t "blit_from_string";
  check_bounds t doff len "Buffer.blit_from_string";
  Bytes.blit_string src soff t.store (t.off + doff) len

let blit_to_bytes t soff dst doff len =
  check_access t "blit_to_bytes";
  check_bounds t soff len "Buffer.blit_to_bytes";
  Bytes.blit t.store (t.off + soff) dst doff len

let blit src soff dst doff len =
  check_access src "blit(src)";
  check_access dst "blit(dst)";
  check_bounds src soff len "Buffer.blit(src)";
  check_bounds dst doff len "Buffer.blit(dst)";
  Bytes.blit src.store (src.off + soff) dst.store (dst.off + doff) len

let fill t c =
  check_access t "fill";
  Bytes.fill t.store t.off t.len c

let to_string t =
  check_access t "to_string";
  Bytes.sub_string t.store t.off t.len
  [@@hot.alloc "serialization copies the view's bytes out of the store"]

let maybe_release c =
  if (not c.released) && c.app_refs = 0 && c.io_refs = 0 then begin
    c.released <- true;
    c.release ()
  end

let free t =
  if not t.live then begin
    if t.sanitize then
      (* raises unless captured; either way the duplicate free must not
         touch the refcount again *)
      Dk_check.report Dk_check.Double_free
        (Printf.sprintf "Buffer.free: second free of the same view of %s"
           (describe t))
    else invalid_arg "Buffer.free: double free of a view"
  end
  else begin
    t.live <- false;
    match t.cell with
    | None -> ()
    | Some c ->
        c.app_refs <- c.app_refs - 1;
        if c.app_refs = 0 && c.io_refs > 0 then c.deferred <- true;
        maybe_release c
  end
  [@@hot.alloc "the double-free diagnostic formats only on a misuse"]

let io_hold t =
  match t.cell with
  | None -> ()
  | Some c ->
      if c.released then
        if t.sanitize then
          Dk_check.report Dk_check.Use_after_free
            (Printf.sprintf "Buffer.io_hold on released %s (DMA into freed \
                             memory)" (describe t))
        else invalid_arg "Buffer.io_hold: buffer already released"
      else c.io_refs <- c.io_refs + 1
  [@@hot.alloc
    "the use-after-free diagnostic formats only on a sanitizer hit"]

let io_release t =
  match t.cell with
  | None -> ()
  | Some c ->
      if c.io_refs <= 0 then invalid_arg "Buffer.io_release: no I/O hold";
      c.io_refs <- c.io_refs - 1;
      maybe_release c

let in_flight t = match t.cell with None -> false | Some c -> c.io_refs > 0
let is_live t = t.live
let was_deferred t =
  match t.cell with None -> false | Some c -> c.deferred
