type t = {
  size : int;
  capacity : int;
  sanitize : bool;
  mutable free : Buffer.t list;
  mutable free_count : int;
}

(* Class-wide obs instruments, shared by every pool in the process. *)
let m_hits = Dk_obs.Metrics.counter "mem.pool.hits"
let m_misses = Dk_obs.Metrics.counter "mem.pool.misses"
let m_puts = Dk_obs.Metrics.counter "mem.pool.puts"

let rec free_all = function
  | [] -> ()
  | b :: rest ->
      Buffer.free b;
      free_all rest

let rec seed alloc size n acc =
  if n = 0 then Some acc
  else
    match alloc () with
    | None ->
        free_all acc;
        None
    | Some b ->
        if Buffer.length b < size then invalid_arg "Pool.create: short buffer";
        seed alloc size (n - 1) (b :: acc)
  [@@hot.alloc
    "one-time pool seeding, reached lazily on the first rx of a size \
     class; every later hit is a free-list pop"]

let create ?(sanitize = Dk_check.enabled_from_env ()) ~alloc ~size ~count () =
  if size <= 0 || count <= 0 then invalid_arg "Pool.create";
  match seed alloc size count [] with
  | None -> None
  | Some free -> Some { size; capacity = count; sanitize; free; free_count = count }
  [@@hot.alloc "the pool record itself; built once per size class"]

let buffer_size t = t.size
let available t = t.free_count
let outstanding t = t.capacity - t.free_count

let get t =
  match t.free with
  | [] ->
      Dk_obs.Metrics.incr m_misses;
      None
  | b :: rest ->
      Dk_obs.Metrics.incr m_hits;
      t.free <- rest;
      t.free_count <- t.free_count - 1;
      Some b

let rec mem_phys b = function
  | [] -> false
  | b' :: rest -> b' == b || mem_phys b rest

let put t b =
  (* Sanitizer mode: a buffer returned twice would be handed to two
     different receive operations, each DMA-ing over the other. The
     scan is O(capacity) and only runs when sanitizing — the fast path
     keeps its O(1) put. It runs before the capacity guard so a double
     put into a full pool is diagnosed as the double free it is. *)
  if t.sanitize && mem_phys b t.free then
    Dk_check.report Dk_check.Double_free
      (Printf.sprintf
         "Pool.put: buffer returned to the pool twice (size class %d); two \
          receive paths would share the same storage"
         t.size)
  else begin
    if t.free_count >= t.capacity then invalid_arg "Pool.put: pool full";
    Dk_obs.Metrics.incr m_puts;
    t.free <- b :: t.free;
    t.free_count <- t.free_count + 1
  end
  [@@hot.alloc
    "the free-list cons is the pool's O(1) put; the diagnostic formats \
     only on a sanitizer hit"]

let take_all t =
  let bufs = t.free in
  t.free <- [];
  t.free_count <- 0;
  bufs
