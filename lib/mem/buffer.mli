(** I/O buffer with free-protection (§4.5).

    A buffer is a view onto backing storage plus a lifecycle cell shared
    by all views of the same allocation. Devices take I/O holds while a
    buffer is under DMA; the application may [free] at any time, but the
    storage is only returned to its arena once the application reference
    count and the I/O hold count both reach zero — the paper's
    "free-protection for in-use memory buffers". *)

type t

val of_string : string -> t
(** An unmanaged buffer (no arena, no registration); freeing it is a
    no-op. Useful in tests and for control-path data. *)

val unmanaged : int -> t
(** An unmanaged zeroed buffer of the given size. *)

val make_managed :
  ?sanitize:bool ->
  store:bytes ->
  off:int ->
  len:int ->
  region_id:int ->
  release:(unit -> unit) ->
  unit ->
  t
(** Used by the memory manager: a managed buffer over [store] whose
    storage is returned by calling [release] when the last reference and
    the last I/O hold are gone. With [~sanitize:true] (default false)
    every access and lifecycle operation is checked and violations —
    use-after-free reads/writes, double frees, I/O holds on released
    storage — are reported through {!Dk_check} instead of silently
    corrupting (or, for double frees, raising the generic
    [Invalid_argument]). *)

val store : t -> bytes
val off : t -> int
val length : t -> int
val region_id : t -> int option

val sub : t -> int -> int -> t
(** [sub t pos len] is a view of the same allocation; it shares the
    lifecycle cell (takes an application reference). *)

val dup : t -> t
(** Another application reference to the same view. *)

val get : t -> int -> char
val set : t -> int -> char -> unit
val blit_from_string : string -> int -> t -> int -> int -> unit
val blit_to_bytes : t -> int -> bytes -> int -> int -> unit
val blit : t -> int -> t -> int -> int -> unit
val fill : t -> char -> unit
val to_string : t -> string

val free : t -> unit
(** Drop this application reference. Safe while I/O holds exist: the
    release is deferred (free-protection). Double frees of the same view
    raise [Invalid_argument]. *)

val io_hold : t -> unit
(** Taken by a device when DMA starts. *)

val io_release : t -> unit
(** Dropped on I/O completion; may trigger the deferred release. *)

val in_flight : t -> bool
(** True while any I/O hold exists on the allocation. *)

val is_live : t -> bool
(** False once this view has been freed. *)

val was_deferred : t -> bool
(** True if some [free] on this allocation had to be deferred because
    I/O was in flight — observable evidence of free-protection. *)
