(** The Demikernel memory manager (§4.5).

    Allocates application I/O buffers from large pre-registered regions,
    so that applications never register memory with devices themselves:
    when the manager creates a region it fires [on_new_region], which
    the libOS uses to register the region with every attached device
    (paying the registration cost once per region, not once per buffer).
    Buffers carry free-protection (see {!Buffer}). *)

type t

type stats = {
  allocs : int;          (** successful allocations *)
  releases : int;        (** storage actually returned *)
  deferred_releases : int; (** releases delayed by in-flight I/O *)
  live_bytes : int;
  region_count : int;
  region_bytes : int;
}

type leak = { leak_region : int; leak_off : int; leak_len : int }

val create :
  ?initial_region_size:int ->
  ?max_total_bytes:int ->
  ?on_new_region:(Region.t -> unit) ->
  ?sanitize:bool ->
  unit ->
  t
(** Defaults: 1 MiB initial region, 256 MiB cap, no registration hook.
    [initial_region_size] must be a power of two.

    [~sanitize:true] (default: [DK_SANITIZE] in the environment, see
    {!Dk_check.enabled_from_env}) turns on sanitizer mode for every
    buffer this manager hands out: 8 canary guard bytes on each side of
    the {e requested} length, verified when the storage is returned;
    poison-on-free (blocks refilled with [0xDD]); use-after-free and
    double-free detection on every access (see {!Buffer.make_managed});
    and live-allocation tracking for {!check_leaks}. Off by default —
    the fast path carries no checks beyond bounds. Note that sanitized
    allocations consume [16] extra bytes each, so [stats.live_bytes]
    and region growth differ from an unsanitized run. *)

val sanitized : t -> bool

val alloc : t -> int -> Buffer.t option
(** [None] only when the total-bytes cap prevents growing. *)

val alloc_exn : t -> int -> Buffer.t
(** @raise Out_of_memory when {!alloc} would return [None]. *)

val alloc_string : t -> string -> Buffer.t option
(** Allocate and fill with the string's bytes (the buffer's length is
    exactly the string's length... it is a view of a possibly larger
    block). *)

val sga_of_string : t -> string -> Sga.t option
(** Single-segment managed sga holding the string. *)

(** {2 Rx fast path}

    Device receive allocation is the allocator's hottest caller: every
    arriving frame needs a buffer {e now}, and the buddy-arena walk plus
    region-growth slow path is pure overhead when the same handful of
    sizes recur millions of times. With pooling on, released rx buffers
    are recycled through per-size-class free lists ({!Pool}) in front of
    the arenas — an O(1) list pop on the hit path, counted by the
    [mem.pool.fastpath_hits] counter. Off by default; when off,
    {!alloc_rx} is exactly {!alloc}. *)

val set_rx_pooling : t -> ?class_capacity:int -> bool -> unit
(** Enable/disable rx buffer pooling. [class_capacity] (default 64)
    sets how many buffers each power-of-two size class keeps. Disabling
    drains every pool back to the arenas. *)

val rx_pooling : t -> bool

val alloc_rx : t -> int -> Buffer.t option
(** Like {!alloc}, but served from the size-class pool when pooling is
    on and a recycled buffer is available; falls back to {!alloc} on a
    pool miss. The returned buffer has exactly the requested length
    either way. *)

val drain_rx_pools : t -> unit
(** Return every idle pooled buffer to the arenas (pools refill lazily
    on the next {!alloc_rx}). Called automatically by {!check_leaks}
    and when pooling is switched off. *)

val regions : t -> Region.t list
val stats : t -> stats

val check_leaks : t -> leak list
(** Shutdown leak sweep (sanitizer mode): every allocation still live —
    not yet freed, or its release still deferred behind an I/O hold —
    is reported through {!Dk_check.report} ([Leak]) and returned,
    sorted by region/offset. Always [[]] for an unsanitized manager.
    Call it once all I/O has drained; run under {!Dk_check.capture} to
    collect the list without the first leak raising. *)
