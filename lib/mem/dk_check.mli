(** Sanitizer-mode violation reporting.

    Kernel-bypass makes memory and completion bugs silent: a device DMAs
    into a buffer the application already freed, or a queue completes a
    token twice, and nothing faults — data is simply wrong later (§4.4,
    §4.5). Sanitizer mode makes those bugs loud. It is opt-in
    ([Manager.create ~sanitize:true], [Token.create ~audit:true], or
    [DK_SANITIZE=1] in the environment) so the fast path stays free of
    defensive checks when off.

    A detection calls {!report}, which raises {!Violation} — unless the
    caller is inside {!capture}, which collects reports instead (how the
    sanitizer's own tests, and shutdown leak sweeps, read multiple
    findings). *)

type kind =
  | Use_after_free      (** access to a freed view or released allocation *)
  | Double_free         (** second free of the same view *)
  | Canary_smash        (** guard bytes around an allocation overwritten *)
  | Leak                (** allocation still live at shutdown *)
  | Token_double_complete      (** queue completed the same token twice *)
  | Token_redeem_after_watch   (** watched token also waited on *)
  | Token_dangling             (** token left pending when a queue drained *)

val kind_name : kind -> string

exception Violation of kind * string

val enabled_from_env : unit -> bool
(** True when [DK_SANITIZE] is [1]/[true]/[yes]/[on]. *)

val report : kind -> string -> unit
(** Raise {!Violation} — or record it, inside {!capture}. *)

val capture : (unit -> 'a) -> 'a * (kind * string) list
(** Run the thunk with reports collected (oldest first) instead of
    raised. Nests; an exception from the thunk still unwinds the
    capture frame. *)

val set_sink : (kind -> string -> unit) -> unit
(** Observe every report (raised or captured), e.g. to mirror into a
    {!Dk_sim.Trace}. *)

val clear_sink : unit -> unit
