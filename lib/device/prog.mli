(** Verified-by-construction queue programs (§4.2–4.3).

    The paper proposes letting applications express filter and map
    functions that the libOS offloads to a programmable accelerator when
    one is present, or runs on the CPU otherwise, and suggests a
    verified framework (BPF, Floem) so devices can trust them. Here the
    programs are a total, bounded combinator language: evaluation always
    terminates, touches a statically-known number of bytes
    ({!filter_footprint}), and cannot escape the payload. *)

type pred =
  | True
  | False
  | Len_ge of int          (** payload length >= n *)
  | Len_lt of int
  | Byte_eq of int * char  (** payload.[off] = c (false if out of range) *)
  | Byte_in of int * char * char (** inclusive range test *)
  | Prefix of string       (** payload starts with the literal *)
  | Hash_mod of int * int * int * int
      (** [Hash_mod (off, len, modulo, target)]: FNV-1a over the byte
          range, reduced mod [modulo], equals [target] — the
          key-steering filter of §4.3. *)
  | All of pred list
  | Any of pred list
  | Not of pred

type filter = pred

type map =
  | Identity
  | Prepend of string
  | Append of string
  | Xor_mask of int    (** toy cipher standing in for offloaded crypto *)
  | Truncate of int
  | Chain of map list

val eval_pred : pred -> string -> bool
val eval_map : map -> string -> string

val filter_footprint : filter -> int
(** Upper bound on payload bytes a filter examines; drives the CPU
    fallback cost. *)

val map_footprint : map -> int -> int
(** [map_footprint m len]: bytes touched when mapping a payload of
    [len] bytes. *)

(** {2 Parse → match → action pipelines}

    A pipeline chains bounded stages: typed field extraction out of the
    frame ({!field}), a match on the extracted fields ({!fmatch},
    including the FNV key-steer of §4.3 via [M_mod]/[F_hash]), and an
    action — respond from a device-resident table, steer to an rx
    queue, rewrite and continue, drop, or pass to the host. Every term
    is finite and every evaluator is structural recursion over it
    ([Respond] recurses only into its own [r_on_miss] subterm), so
    evaluation provably terminates; out-of-range field and key reads
    evaluate to no-match/fall-through rather than faulting. *)

type field =
  | F_len                  (** frame length *)
  | F_u8 of int            (** byte at offset, as an integer *)
  | F_u16 of int           (** big-endian 16-bit read at offset *)
  | F_hash of int * int    (** [F_hash (off, len)]: FNV-1a over the range *)
  | F_hash_rest of int     (** FNV-1a from offset to end of frame *)

type key =
  | K_bytes of int * int   (** [K_bytes (off, len)]: literal byte range *)
  | K_rest of int          (** bytes from offset to end of frame *)

type fmatch =
  | M_pred of pred         (** embed a classic filter predicate *)
  | M_eq of field * int64  (** extracted field equals the constant *)
  | M_mod of field * int * int
      (** [M_mod (f, modulo, target)]: field reduced mod [modulo]
          equals [target] — the key-steer match. *)
  | M_all of fmatch list
  | M_any of fmatch list
  | M_not of fmatch

type action =
  | Pass                   (** stop the pipeline, deliver to the host *)
  | Drop
  | Steer of int           (** deliver to a fixed rx queue *)
  | Steer_field of field * int
      (** queue = field mod n; out-of-range falls through to the next
          stage *)
  | Rewrite of map         (** rewrite the frame, continue the pipeline *)
  | Respond of respond
      (** look the extracted key up in the device-resident table and
          answer from the device; the miss branch is a strict subterm *)

and respond = {
  r_key : key;
  r_hit_prefix : string;   (** prepended to the stored value in the reply *)
  r_max_value : int;       (** hits larger than this fall to [r_on_miss] *)
  r_on_miss : action;
}

type stage = { guard : fmatch; act : action }

type pipeline = stage list
(** Stages evaluate in order; the first stage whose guard matches runs
    its action. Falling off the end delivers to the host. *)

type verdict =
  | Deliver of string      (** hand the (possibly rewritten) frame up *)
  | Dropped
  | Steered of int * string  (** rx queue, frame *)
  | Responded of string    (** reply payload served from the device *)

val field_value : field -> string -> int64 option
(** [None] when the frame is too short for the typed read. *)

val key_bytes : key -> string -> string option

val eval_fmatch : fmatch -> string -> bool

val eval_pipeline :
  lookup:(string -> string option) -> pipeline -> string -> verdict
(** [lookup] is the device-resident table ({!Table.lookup} on the NIC;
    a CPU-side stand-in under fallback). Total: structural recursion,
    no loops. *)

val field_footprint : field -> int -> int
val key_footprint : key -> int -> int
val fmatch_footprint : fmatch -> int -> int
val action_footprint : action -> int -> int
val stage_footprint : stage -> int -> int

val pipeline_footprint : pipeline -> int -> int
(** [pipeline_footprint p len]: upper bound on bytes examined/produced
    evaluating [p] on a [len]-byte frame, summing every stage and both
    branches of every [Respond] — static in the term, so it can price
    the device latency and the CPU fallback before any frame arrives.
    Monotone: appending a stage never decreases it. *)

val pp_pred : Format.formatter -> pred -> unit
val pp_map : Format.formatter -> map -> unit
val pp_field : Format.formatter -> field -> unit
val pp_key : Format.formatter -> key -> unit
val pp_fmatch : Format.formatter -> fmatch -> unit
val pp_action : Format.formatter -> action -> unit
val pp_stage : Format.formatter -> stage -> unit
val pp_pipeline : Format.formatter -> pipeline -> unit
