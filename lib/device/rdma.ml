type status =
  [ `Ok
  | `Not_registered
  | `Rnr
  | `Too_long
  | `Not_connected
  | `Rkey
  | `Qp_broken ]

module Fault = Dk_fault.Fault

type wc = {
  wr_id : int;
  status : status;
  len : int;
  buffer : Dk_mem.Buffer.t option;
}

type stats = {
  sends : int;
  recvs : int;
  rnr_events : int;
  registration_failures : int;
}

type qp = {
  nic : t;
  mutable peer : qp option;
  recv_queue : (int * Dk_mem.Buffer.t) Queue.t; (* posted receives *)
  send_cq : wc Queue.t;
  recv_cq : wc Queue.t;
  mutable recv_notify : unit -> unit;
  mutable send_notify : unit -> unit;
  mutable window : Dk_mem.Buffer.t option; (* remotely accessible memory *)
  (* last scheduled remote-arrival time: RC ordering on the QP *)
  mutable next_arrival : int64;
}

and t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  fault : Fault.t;
  db : Doorbell.t;
  mutable is_registered : int option -> bool;
  mutable sends : int;
  mutable recvs : int;
  mutable rnr_events : int;
  mutable registration_failures : int;
}

let create ~engine ~cost ?(fault = Fault.default) ?(is_registered = fun _ -> false)
    () =
  {
    engine;
    cost;
    fault;
    db = Doorbell.create ~engine ~cost ~name:"rdma.tx.doorbells" ();
    is_registered;
    sends = 0;
    recvs = 0;
    rnr_events = 0;
    registration_failures = 0;
  }

let set_tx_window t ns = Doorbell.set_window t.db ns
let tx_doorbells t = Doorbell.rings t.db

let set_mr_check t f = t.is_registered <- f

let create_qp nic =
  {
    nic;
    peer = None;
    recv_queue = Queue.create ();
    send_cq = Queue.create ();
    recv_cq = Queue.create ();
    recv_notify = (fun () -> ());
    send_notify = (fun () -> ());
    window = None;
    next_arrival = 0L;
  }

let connect a b =
  if a.peer <> None || b.peer <> None then
    invalid_arg "Rdma.connect: queue pair already connected";
  a.peer <- Some b;
  b.peer <- Some a

(* Injected QP break, checked once per post: sever both ends so every
   later post sees [`Not_connected], and fail this one [`Qp_broken]. *)
let qp_breaks qp peer ~now =
  if Fault.fire qp.nic.fault Fault.Rdma_qp_break ~now then begin
    peer.peer <- None;
    qp.peer <- None;
    true
  end
  else false

let post_recv qp ~wr_id buf =
  Dk_mem.Buffer.io_hold buf;
  Queue.add (wr_id, buf) qp.recv_queue
  [@@hot.alloc "the (wr_id, buffer) pair is the posted-receive ring entry"]

(* Direct recursion over the segment list: [List.for_all] would close
   over the NIC once per registration check, i.e. once per post. *)
let rec segs_registered nic = function
  | [] -> true
  | b :: rest ->
      nic.is_registered (Dk_mem.Buffer.region_id b) && segs_registered nic rest

let sga_registered nic sga = segs_registered nic (Dk_mem.Sga.segments sga)

(* One round-trip-ish device+wire delay for a message of [len] bytes. *)
let transit_ns nic len =
  Int64.add nic.cost.Dk_sim.Cost.rdma_nic_proc
    (Int64.add
       (Dk_sim.Cost.dma_ns nic.cost len)
       (Dk_sim.Cost.wire_ns nic.cost len))

let complete_send qp wc =
  Queue.add wc qp.send_cq;
  qp.send_notify ()

(* Absolute, per-QP-monotonic arrival time for a message of [len]
   bytes: RC transports deliver strictly in order even when the
   simulation clock was consumed past the posting instant. *)
let arrival_time qp ~len =
  let nic = qp.nic in
  let a = Int64.add (Dk_sim.Engine.now nic.engine) (transit_ns nic len) in
  let a = if Int64.compare a qp.next_arrival < 0 then qp.next_arrival else a in
  qp.next_arrival <- a;
  a

let post_send qp ~wr_id sga =
  let nic = qp.nic in
  let len = Dk_mem.Sga.length sga in
  match qp.peer with
  | None ->
      complete_send qp { wr_id; status = `Not_connected; len; buffer = None }
  | Some peer ->
      if qp_breaks qp peer ~now:(Dk_sim.Engine.now nic.engine) then
        complete_send qp { wr_id; status = `Qp_broken; len; buffer = None }
      else if not (sga_registered nic sga) then begin
        nic.registration_failures <- nic.registration_failures + 1;
        complete_send qp { wr_id; status = `Not_registered; len; buffer = None }
      end
      else
        (* Validation already passed at post time; everything from the
           doorbell on — hold, serialisation, per-QP in-order arrival —
           runs when the (possibly coalesced) ring fires. *)
        Doorbell.submit nic.db (fun () ->
        Dk_mem.Sga.io_hold sga;
        nic.sends <- nic.sends + 1;
        let payload = Dk_mem.Sga.to_string sga in
        let[@hot.alloc
             "completion events and RNR/ACK bounce closures are the \
              sim's wire"] deliver () =
          Dk_mem.Sga.io_release sga;
          match Queue.take_opt peer.recv_queue with
          | None ->
              (* Receiver not ready: reliable transport reports the
                 failure back to the sender (simplified RNR-NAK). *)
              nic.rnr_events <- nic.rnr_events + 1;
              let back = transit_ns nic 0 in
              ignore
                (Dk_sim.Engine.after nic.engine back (fun () ->
                     complete_send qp
                       { wr_id; status = `Rnr; len; buffer = None }))
          | Some (recv_wr_id, buf) ->
              if Dk_mem.Buffer.length buf < len then begin
                Dk_mem.Buffer.io_release buf;
                Queue.add
                  { wr_id = recv_wr_id; status = `Too_long; len; buffer = Some buf }
                  peer.recv_cq;
                peer.recv_notify ();
                let back = transit_ns nic 0 in
                ignore
                  (Dk_sim.Engine.after nic.engine back (fun () ->
                       complete_send qp
                         { wr_id; status = `Too_long; len; buffer = None }))
              end
              else begin
                (* Device DMA into the posted buffer: no CPU time. *)
                Dk_mem.Buffer.blit_from_string payload 0 buf 0 len;
                Dk_mem.Buffer.io_release buf;
                (peer.nic).recvs <- (peer.nic).recvs + 1;
                Queue.add
                  { wr_id = recv_wr_id; status = `Ok; len; buffer = Some buf }
                  peer.recv_cq;
                peer.recv_notify ();
                let ack = (peer.nic).cost.Dk_sim.Cost.wire_latency in
                ignore
                  (Dk_sim.Engine.after nic.engine ack (fun () ->
                       complete_send qp { wr_id; status = `Ok; len; buffer = None }))
              end
        in
        ignore (Dk_sim.Engine.at nic.engine (arrival_time qp ~len) deliver))
  [@@hot.alloc
    "work-completion records are the verbs API's return surface; the \
     staged thunk and arrival events are the sim's wire"]

let rec post_each qp = function
  | [] -> ()
  | (wr_id, sga) :: rest ->
      post_send qp ~wr_id sga;
      post_each qp rest

let post_send_many qp sends =
  Doorbell.group qp.nic.db (fun () -> post_each qp sends)
  [@@hot.alloc "one group thunk per batch, amortized across its work requests"]

(* ---- one-sided operations (§5.1) ---- *)

let expose_window qp buf =
  if qp.nic.is_registered (Dk_mem.Buffer.region_id buf) then begin
    Dk_mem.Buffer.io_hold buf;
    (match qp.window with Some old -> Dk_mem.Buffer.io_release old | None -> ());
    qp.window <- Some buf;
    Ok ()
  end
  else Error `Not_registered

(* Validate a one-sided target range against the peer's window. *)
let window_range peer ~remote_off ~len =
  match peer.window with
  | Some w when remote_off >= 0 && len >= 0 && remote_off + len <= Dk_mem.Buffer.length w ->
      Some w
  | Some _ | None -> None

let post_read qp ~wr_id ~remote_off ~len dst =
  let nic = qp.nic in
  match qp.peer with
  | None -> complete_send qp { wr_id; status = `Not_connected; len; buffer = None }
  | Some peer ->
      if qp_breaks qp peer ~now:(Dk_sim.Engine.now nic.engine) then
        complete_send qp { wr_id; status = `Qp_broken; len; buffer = None }
      else if not (nic.is_registered (Dk_mem.Buffer.region_id dst))
              || Dk_mem.Buffer.length dst < len
      then begin
        nic.registration_failures <- nic.registration_failures + 1;
        complete_send qp { wr_id; status = `Not_registered; len; buffer = None }
      end
      else
        Doorbell.submit nic.db (fun () ->
            Dk_mem.Buffer.io_hold dst;
            nic.sends <- nic.sends + 1;
            (* request travels to the peer NIC, data comes back: one RTT
               of wire plus remote NIC processing — and zero remote
               CPU. *)
            let rtt = Int64.add (transit_ns nic 16) (transit_ns nic len) in
            ignore
              (Dk_sim.Engine.after nic.engine rtt (fun () ->
                   match window_range peer ~remote_off ~len with
                   | Some w ->
                       Dk_mem.Buffer.blit w remote_off dst 0 len;
                       Dk_mem.Buffer.io_release dst;
                       complete_send qp { wr_id; status = `Ok; len; buffer = None }
                   | None ->
                       Dk_mem.Buffer.io_release dst;
                       complete_send qp
                         { wr_id; status = `Rkey; len; buffer = None })))
  [@@hot.alloc
    "work-completion records are the verbs API's return surface; the \
     staged thunk and RTT event are the sim's wire"]

let post_write qp ~wr_id ~remote_off sga =
  let nic = qp.nic in
  let len = Dk_mem.Sga.length sga in
  match qp.peer with
  | None -> complete_send qp { wr_id; status = `Not_connected; len; buffer = None }
  | Some peer ->
      if qp_breaks qp peer ~now:(Dk_sim.Engine.now nic.engine) then
        complete_send qp { wr_id; status = `Qp_broken; len; buffer = None }
      else if not (sga_registered nic sga) then begin
        nic.registration_failures <- nic.registration_failures + 1;
        complete_send qp { wr_id; status = `Not_registered; len; buffer = None }
      end
      else
        Doorbell.submit nic.db (fun () ->
            Dk_mem.Sga.io_hold sga;
            nic.sends <- nic.sends + 1;
            let payload = Dk_mem.Sga.to_string sga in
            let when_ = arrival_time qp ~len in
            ignore
              (Dk_sim.Engine.at nic.engine when_ (fun () ->
                   Dk_mem.Sga.io_release sga;
                   match window_range peer ~remote_off ~len with
                   | Some w ->
                       Dk_mem.Buffer.blit_from_string payload 0 w remote_off len;
                       let ack = transit_ns nic 0 in
                       ignore
                         (Dk_sim.Engine.after nic.engine ack (fun () ->
                              complete_send qp
                                { wr_id; status = `Ok; len; buffer = None }))
                   | None ->
                       let back = transit_ns nic 0 in
                       ignore
                         (Dk_sim.Engine.after nic.engine back (fun () ->
                              complete_send qp
                                { wr_id; status = `Rkey; len; buffer = None })))))
  [@@hot.alloc
    "work-completion records are the verbs API's return surface; the \
     staged thunk and arrival events are the sim's wire"]

let poll_send_cq qp = Queue.take_opt qp.send_cq
let poll_recv_cq qp = Queue.take_opt qp.recv_cq
let recv_posted qp = Queue.length qp.recv_queue
let set_recv_notify qp f = qp.recv_notify <- f
let set_send_notify qp f = qp.send_notify <- f

let stats t =
  {
    sends = t.sends;
    recvs = t.recvs;
    rnr_events = t.rnr_events;
    registration_failures = t.registration_failures;
  }
