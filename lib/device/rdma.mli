(** RDMA RC NIC model (Table 1 middle column: kernel bypass plus *some*
    OS features — a reliable transport — but not buffer management or
    flow control).

    The device enforces the two obligations §2 highlights:

    - {b Memory registration}: every buffer named by a work request must
      belong to a region registered with this device, or the request
      completes with [`Not_registered].
    - {b Receiver buffering}: a SEND arriving at a queue pair with no
      posted receive buffer fails back to the sender as [`Rnr]
      (receiver-not-ready); one with a too-small buffer fails as
      [`Too_long]. Supplying enough right-sized buffers — flow control —
      is the libOS's job.

    Delivery is reliable and in-order (RC semantics); the wire/NIC
    latencies come from the cost model. *)

type t
type qp

type status =
  [ `Ok
  | `Not_registered
  | `Rnr
  | `Too_long
  | `Not_connected
  | `Rkey
  | `Qp_broken
    (** the queue pair was severed by an armed {!Dk_fault} plan
        ([rdma.qp_break]); both ends are disconnected and later posts
        complete [`Not_connected] *) ]

type wc = {
  wr_id : int;
  status : status;
  len : int;
  buffer : Dk_mem.Buffer.t option; (** the receive buffer, on recv CQs *)
}

type stats = {
  sends : int;
  recvs : int;
  rnr_events : int;
  registration_failures : int;
}

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  ?fault:Dk_fault.Fault.t ->
  ?is_registered:(int option -> bool) ->
  unit ->
  t
(** [is_registered] receives a buffer's region id ([None] for unmanaged
    memory); default rejects everything, so a memory manager hook must
    be installed before traffic flows. *)

val set_mr_check : t -> (int option -> bool) -> unit

val create_qp : t -> qp
val connect : qp -> qp -> unit
(** Cross-connect two queue pairs (the rdmacm handshake is control-path
    and not modelled). @raise Invalid_argument if either is connected. *)

val post_recv : qp -> wr_id:int -> Dk_mem.Buffer.t -> unit
(** Make a buffer available for one incoming SEND. Takes an I/O hold. *)

val post_send : qp -> wr_id:int -> Dk_mem.Sga.t -> unit
(** Transmit the sga as one message; completion appears on the send CQ.
    Takes I/O holds for the duration of the DMA (free-protection). The
    doorbell is charged through the NIC's coalescing stage
    ({!Doorbell}); validation errors complete immediately without a
    doorbell, as before. *)

val post_send_many : qp -> (int * Dk_mem.Sga.t) list -> unit
(** Post several (wr_id, sga) sends under one doorbell ring
    ({!Doorbell.group}); per-message validation and completions are
    unchanged. *)

val set_tx_window : t -> int64 -> unit
(** Tx doorbell coalescing window for all work posted on this NIC;
    [0] rings per post (the unbatched path). *)

val tx_doorbells : t -> int
(** Doorbell rings so far on this NIC. *)

(** {2 One-sided operations (§5.1)}

    RDMA READ/WRITE access a window of the peer's registered memory
    with {e zero remote CPU involvement} — the trade the FaRM-style
    systems of §6 build on. The peer must first expose a window. *)

val expose_window : qp -> Dk_mem.Buffer.t -> (unit, [ `Not_registered ]) result
(** Make a registered buffer remotely accessible on this queue pair
    (simplified: one window per QP, offset-addressed). Takes an I/O
    hold for the lifetime of the window. *)

val post_read :
  qp -> wr_id:int -> remote_off:int -> len:int -> Dk_mem.Buffer.t -> unit
(** Read [len] bytes at [remote_off] of the peer's window into a local
    registered buffer. Completes on the send CQ with [`Ok] after one
    round trip; errors: [`Not_registered] (local buffer), [`Rkey]
    (no/short window). The peer's CPU is never involved. *)

val post_write :
  qp -> wr_id:int -> remote_off:int -> Dk_mem.Sga.t -> unit
(** Write the sga into the peer's window at [remote_off]; same error
    model as {!post_read}. *)

val poll_send_cq : qp -> wc option
val poll_recv_cq : qp -> wc option

val recv_posted : qp -> int

val set_recv_notify : qp -> (unit -> unit) -> unit
(** Invoked when a receive completion is delivered. *)

val set_send_notify : qp -> (unit -> unit) -> unit
(** Invoked when a send completion is delivered. *)

val stats : t -> stats
