type stats = { delivered : int; lost : int; unrouted : int }

module Fault = Dk_fault.Fault

(* Class-wide obs instruments (aggregated across fabrics). *)
let m_delivered = Dk_obs.Metrics.counter "device.fabric.delivered"
let m_lost = Dk_obs.Metrics.counter "device.fabric.lost"
let m_unrouted = Dk_obs.Metrics.counter "device.fabric.unrouted"

let broadcast = 0xffffffffffff

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  fault : Fault.t;
  mutable loss : float;
  jitter_ns : int64;
  rng : Dk_sim.Rng.t;
  nics : (int, Nic.t) Hashtbl.t;
  (* Per (src,dst) last scheduled arrival: wire FIFO. Two levels of
     int-keyed tables rather than one keyed by the (src,dst) pair:
     tuple keys allocate on every lookup and hash polymorphically
     (dk-hot: hot-poly), and two 48-bit MACs don't pack into one
     immediate int. *)
  last_arrival : (int, (int, int64) Hashtbl.t) Hashtbl.t;
  (* MAC-sorted snapshot of [nics], rebuilt on attach: broadcast fan-out
     must not sort the live table once per frame (dk-hot:
     hot-complexity), and hash-order fan-out would perturb the event
     schedule run to run. *)
  mutable order : (int * Nic.t) array;
  mutable delivered : int;
  mutable lost : int;
  mutable unrouted : int;
}

let create ~engine ~cost ?(fault = Fault.default) ?(loss = 0.0)
    ?(jitter_ns = 0L) ?(seed = 0x5eedL) () =
  {
    engine;
    cost;
    fault;
    loss;
    jitter_ns;
    rng = Dk_sim.Rng.create seed;
    nics = Hashtbl.create 8;
    last_arrival = Hashtbl.create 16;
    order = [||];
    delivered = 0;
    lost = 0;
    unrouted = 0;
  }

let deliver t ~src ~dst ~departed nic frame =
  (* Injected partition: the link is down, the frame dies at the egress
     port. Decided at departure time so the window is crisp. *)
  if Fault.fire t.fault Fault.Fabric_partition ~now:departed then begin
    t.lost <- t.lost + 1;
    Dk_obs.Metrics.incr m_lost
  end
  else begin
    let base = Dk_sim.Cost.wire_ns t.cost (String.length frame) in
    let delay =
      if Int64.compare t.jitter_ns 0L > 0 then
        Int64.add base
          (Int64.of_int
             (Dk_sim.Rng.int t.rng (Int64.to_int t.jitter_ns + 1)))
      else base
    in
    (* Injected reorder: push this frame past its successors. The FIFO
       clamp below must not see it, or successors would be pushed back
       too and the order would be preserved after all. *)
    let reorder =
      Fault.extra_delay t.fault Fault.Fabric_reorder ~now:departed
    in
    let delay = Int64.add delay reorder in
    (* Absolute arrival from the departure time; clamped monotonic per
       (src,dst) so the wire is FIFO (unless jitter or an injected
       reorder deliberately breaks it, in which case the clamp is
       skipped). *)
    let arrival = Int64.add departed delay in
    let arrival =
      if Int64.compare t.jitter_ns 0L > 0 || Int64.compare reorder 0L > 0 then
        arrival
      else begin
        let by_dst =
          match Hashtbl.find_opt t.last_arrival src with
          | Some h -> h
          | None ->
              let h = Hashtbl.create 8 in
              Hashtbl.add t.last_arrival src h;
              h
        in
        let floor =
          match Hashtbl.find_opt by_dst dst with Some f -> f | None -> 0L
        in
        let a = if Int64.compare arrival floor < 0 then floor else arrival in
        Hashtbl.replace by_dst dst a;
        a
      end
    in
    let arrive () =
      let now = Dk_sim.Engine.now t.engine in
      if t.loss > 0.0 && Dk_sim.Rng.bool t.rng t.loss then begin
        t.lost <- t.lost + 1;
        Dk_obs.Metrics.incr m_lost;
        Dk_obs.Flight.recordf Dk_obs.Flight.default ~now Dk_obs.Flight.Drop
          "fabric lost frame %x->%x (%dB)" src dst (String.length frame)
      end
      else if Fault.fire t.fault Fault.Fabric_drop ~now then begin
        t.lost <- t.lost + 1;
        Dk_obs.Metrics.incr m_lost
      end
      else begin
        let frame =
          match Fault.mangle t.fault Fault.Fabric_corrupt ~now frame with
          | Some corrupted -> corrupted
          | None -> frame
        in
        t.delivered <- t.delivered + 1;
        Dk_obs.Metrics.incr m_delivered;
        Nic.receive nic frame
      end
    in
    ignore (Dk_sim.Engine.at t.engine arrival arrive);
    (* Injected duplicate: a second, independent delivery a magnitude
       later (it runs the loss/drop/corrupt gauntlet again). *)
    if Fault.fire t.fault Fault.Fabric_dup ~now:departed then
      ignore
        (Dk_sim.Engine.at t.engine
           (Int64.add arrival (Fault.magnitude t.fault Fault.Fabric_dup))
           arrive)
  end
  [@@hot] [@@hot.alloc
    "the per-frame arrival closure is the sim's wire: it carries the \
     frame across virtual time to the destination NIC"]

(* Index walk over the attach-time sorted snapshot: per-frame fan-out
   touches no list and sorts nothing. *)
let rec bcast t ~src ~departed frame i =
  if i < Array.length t.order then begin
    (let mac, nic = t.order.(i) in
     if mac <> src then deliver t ~src ~dst:mac ~departed nic frame);
    bcast t ~src ~departed frame (i + 1)
  end

let send t ~src ~dst ~departed frame =
  if dst = broadcast then bcast t ~src ~departed frame 0
  else
    match Hashtbl.find_opt t.nics dst with
    | Some nic -> deliver t ~src ~dst ~departed nic frame
    | None ->
        t.unrouted <- t.unrouted + 1;
        Dk_obs.Metrics.incr m_unrouted
  [@@hot]

let attach t nic =
  let mac = Nic.mac nic in
  if Hashtbl.mem t.nics mac then invalid_arg "Fabric.attach: duplicate MAC";
  Hashtbl.replace t.nics mac nic;
  t.order <-
    Array.of_list (Dk_util.Det.bindings_sorted ~compare:Int.compare t.nics);
  Nic.set_uplink nic (fun ~src ~dst ~departed frame ->
      send t ~src ~dst ~departed frame)

let stats t = { delivered = t.delivered; lost = t.lost; unrouted = t.unrouted }
let set_loss t p = t.loss <- p
