(** NVMe-style block device with paired submission/completion queues
    (SPDK-class device, Table 1 left column).

    Poll-mode: submissions cost a doorbell, completions are discovered
    by polling the CQ. Reads/writes of one block each; flash latency and
    transfer time come from the cost model. There is no kernel, no page
    cache and no file system — a libOS must bring its own layout
    (§5.3). *)

type t

type status = [ `Ok | `Bad_lba | `Io_error ]
(** [`Io_error] is only produced under an armed {!Dk_fault} plan
    ([block.error] site): the media failed the command. The libOS
    retry policy lives in [Block_dispatch], not here. *)

type completion = {
  wr_id : int;
  status : status;
  data : string option; (** filled for reads *)
}

type stats = { reads : int; writes : int; rejected : int }

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  ?fault:Dk_fault.Fault.t ->
  ?block_size:int ->
  ?block_count:int ->
  ?sq_depth:int ->
  ?programmable:bool ->
  unit ->
  t
(** [programmable] models an FPGA/computational SSD (Table 1, right
    column): it can run verified map programs on data in flight. *)

val programmable : t -> bool

val set_write_prog : t -> Prog.map option -> (unit, [ `Not_programmable ]) result
(** Transform data on the way to flash (e.g. encryption/compression,
    §4.3) at zero host CPU cost; adds device program latency. *)

val set_read_prog : t -> Prog.map option -> (unit, [ `Not_programmable ]) result
(** Transform data on the way back (e.g. decryption). *)

val block_size : t -> int
val block_count : t -> int

val engine : t -> Dk_sim.Engine.t
(** The simulation engine the device schedules completions on (lets
    dispatch layers schedule retries without threading it twice). *)

val submit_read : t -> wr_id:int -> lba:int -> bool
(** [false] when the submission queue is full. *)

val submit_write : t -> wr_id:int -> lba:int -> string -> bool
(** Data longer than a block is rejected with [Invalid_argument];
    shorter data is zero-padded. [false] when the SQ is full. *)

type op =
  | Read of { wr_id : int; lba : int }
  | Write of { wr_id : int; lba : int; data : string }

val submit_many : t -> op list -> int
(** Submit several commands under one SQ doorbell ring
    ({!Doorbell.group}); returns how many the SQ accepted. *)

val grouped : t -> (unit -> 'a) -> 'a
(** Run [f]; submissions it makes share one SQ doorbell ring. Lets
    dispatch layers batch without giving up their per-operation
    bookkeeping (see [Block_dispatch.write_many]). *)

val set_sq_window : t -> int64 -> unit
(** SQ doorbell coalescing window; [0] rings per command (the
    unbatched path). *)

val sq_doorbells : t -> int
(** Doorbell rings so far on this device. *)

val poll_cq : t -> completion option
val cq_pending : t -> int
val outstanding : t -> int
val stats : t -> stats

val set_cq_notify : t -> (unit -> unit) -> unit
(** Invoked whenever a completion lands in the CQ; poll-mode consumers
    can ignore this, interrupt-style consumers (the simulated kernel)
    use it to schedule their bottom half. *)
