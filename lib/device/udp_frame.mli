(** Raw Ethernet/IPv4/UDP frame validation and reply minting for the
    NIC rx pipeline ({!Prog.Respond}).

    The device owns no network stack, so the respond path works on raw
    bytes in exactly the layout [lib/net] emits: 14 B Ethernet header,
    20 B IPv4 header (no options), 8 B UDP header, payload at offset
    {!header_bytes}. Both the IPv4 header checksum and the UDP
    pseudo-header checksum of a request are verified before any reply
    is built — a corrupted frame must fall through to the host rather
    than be answered for the wrong key. *)

val header_bytes : int
(** 42: the UDP payload offset within a frame. *)

val validate : self_mac:int -> string -> (int * int) option
(** [(payload_offset, payload_length)] iff the frame is a well-formed
    UDP datagram addressed to [self_mac] with both checksums valid. *)

val payload : self_mac:int -> string -> string option
(** The validated UDP payload, copied out. *)

val dst_port : string -> int
(** UDP destination port (caller must have validated the frame). *)

val src_mac : string -> int

val reply : self_mac:int -> request:string -> payload:string -> (int * string) option
(** Mint the reply frame: src/dst swapped at every layer, [payload]
    carried, lengths and both checksums recomputed so the requester's
    stack accepts it. [(dst_mac, frame)], or [None] when the request
    fails {!validate} or the reply would overflow a 16-bit length. *)
