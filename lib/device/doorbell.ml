(* The datapath's single MMIO chokepoint. Every tx/submission path
   (NIC tx ring, RDMA work queues, NVMe SQ) rings its doorbell through
   one of these, and nowhere else — the dk-lint `doorbell-site` rule
   rejects any other consumer of [Cost.pcie_doorbell].

   Coalescing contract: with [window = 0] (the default), [submit] rings
   and then runs the device work immediately — the virtual-time
   sequence is bit-identical to the historical ring-per-op path. With
   [window > 0], submissions stage and one flush event at
   [now + window] rings once for everything staged — the descriptor
   writes are plain cached stores; only the MMIO ring is deferred. *)

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  counter : Dk_obs.Metrics.counter;
  mutable window : int64;
  staged : (unit -> unit) Queue.t;
  mutable flush_pending : bool;
  mutable grouping : bool;
  mutable rings : int;
}

let create ~engine ~cost ~name () =
  {
    engine;
    cost;
    counter = Dk_obs.Metrics.counter name;
    window = cost.Dk_sim.Cost.tx_batch_window;
    staged = Queue.create ();
    flush_pending = false;
    grouping = false;
    rings = 0;
  }

let set_window t ns = t.window <- (if Int64.compare ns 0L < 0 then 0L else ns)
let window t = t.window
let rings t = t.rings

let ring t =
  Dk_sim.Engine.consume t.engine t.cost.Dk_sim.Cost.pcie_doorbell;
  t.rings <- t.rings + 1;
  Dk_obs.Metrics.incr t.counter

(* Directly recursive: the drain runs once per flush on the MMIO
   chokepoint, so the old inner closure was a per-flush allocation
   (dk-hot: hot-alloc). *)
let rec run_staged t =
  match Queue.take_opt t.staged with
  | Some thunk ->
      thunk ();
      run_staged t
  | None -> ()

(* An empty stage never rings: a window in which nothing was submitted
   costs nothing. *)
let flush t =
  t.flush_pending <- false;
  if not (Queue.is_empty t.staged) then begin
    ring t;
    run_staged t
  end

let submit t thunk =
  if t.grouping then Queue.add thunk t.staged
  else if Int64.compare t.window 0L <= 0 then begin
    ring t;
    thunk ()
  end
  else begin
    Queue.add thunk t.staged;
    if not t.flush_pending then begin
      t.flush_pending <- true;
      ignore (Dk_sim.Engine.after t.engine t.window (fun () -> flush t))
    end
  end
  [@@hot.alloc
    "one flush-event closure per open window (first submission only), \
     amortized across everything the window coalesces"]

(* Explicit batch (the submit_many entry points): even at window 0 the
   group's submissions share one ring, flushed synchronously before
   [group] returns. At window > 0 the open window already coalesces.
   The grouping flag is reset by hand on both exits rather than via
   [Fun.protect], whose [~finally] closure would be a per-batch
   allocation. *)
let group t f =
  if Int64.compare t.window 0L > 0 then f ()
  else begin
    t.grouping <- true;
    match f () with
    | result ->
        t.grouping <- false;
        flush t;
        result
    | exception e ->
        t.grouping <- false;
        raise e
  end
