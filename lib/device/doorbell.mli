(** Tx doorbell coalescing: the only consumer of
    [Dk_sim.Cost.pcie_doorbell].

    Kernel-bypass devices charge the CPU one MMIO write per submission;
    batched stacks amortise it by writing many descriptors and ringing
    once. Each device tx path owns one of these stages and routes every
    submission through {!submit}/{!group}; the dk-lint rule
    [doorbell-site] forbids consuming the doorbell cost anywhere else.

    Invariant: with a zero window, {!submit} rings and runs the device
    work inline — bit-identical virtual-time behaviour to the
    historical ring-per-op path. *)

type t

val create :
  engine:Dk_sim.Engine.t -> cost:Dk_sim.Cost.t -> name:string -> unit -> t
(** [name] is the {!Dk_obs.Metrics} counter bumped once per ring (e.g.
    ["nic.tx.doorbells"]). The window starts at
    [cost.tx_batch_window]. *)

val submit : t -> (unit -> unit) -> unit
(** Submit one descriptor. Window 0: ring, then run the thunk, now.
    Window > 0: stage the thunk; one flush event [window] ns out rings
    once and runs everything staged, in order. *)

val group : t -> (unit -> 'a) -> 'a
(** Run [f]; submissions it makes share a single doorbell ring even at
    window 0 (flushed synchronously before [group] returns). The
    device's [submit_many] entry points are built on this. *)

val set_window : t -> int64 -> unit
(** Change the coalescing window (clamped at 0). Affects subsequent
    submissions; an already-scheduled flush still fires. *)

val window : t -> int64
val rings : t -> int
(** Doorbell rings so far on this instance (the class-wide counter
    aggregates across devices; benches diff this per-device value). *)
