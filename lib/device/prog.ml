type pred =
  | True
  | False
  | Len_ge of int
  | Len_lt of int
  | Byte_eq of int * char
  | Byte_in of int * char * char
  | Prefix of string
  | Hash_mod of int * int * int * int
  | All of pred list
  | Any of pred list
  | Not of pred

type filter = pred

type map =
  | Identity
  | Prepend of string
  | Append of string
  | Xor_mask of int
  | Truncate of int
  | Chain of map list

(* The hash state threads through parameters — an on-NIC program runs
   once per delivered frame, so a ref cell here would be a per-frame
   allocation (dk-hot: hot-alloc). *)
let rec fnv1a_loop s i stop h =
  if i >= stop then h
  else
    fnv1a_loop s (i + 1) stop
      (Int64.mul (Int64.logxor h (Int64.of_int (Char.code s.[i]))) 0x100000001b3L)

let fnv1a s off len =
  let stop = min (String.length s) (off + len) in
  fnv1a_loop s (max 0 off) stop 0xcbf29ce484222325L

(* Byte-by-byte prefix test: [String.sub] would copy the prefix out of
   the frame on every evaluation. *)
let rec prefix_from p s i =
  i >= String.length p || (p.[i] = s.[i] && prefix_from p s (i + 1))

(* [All]/[Any]/[Chain] recurse through dedicated mutually-recursive
   walkers rather than [List.for_all]/[exists]/[fold_left]: the
   combinator form closes over the frame, allocating one closure per
   node per frame on the rx path. *)
let rec eval_pred p s =
  match p with
  | True -> true
  | False -> false
  | Len_ge n -> String.length s >= n
  | Len_lt n -> String.length s < n
  | Byte_eq (off, c) -> off >= 0 && off < String.length s && s.[off] = c
  | Byte_in (off, lo, hi) ->
      off >= 0 && off < String.length s && s.[off] >= lo && s.[off] <= hi
  | Prefix p -> String.length s >= String.length p && prefix_from p s 0
  | Hash_mod (off, len, modulo, target) ->
      if modulo <= 0 then false
      else
        let h = fnv1a s off len in
        Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int modulo))
        = target
  | All ps -> eval_all ps s
  | Any ps -> eval_any ps s
  | Not p -> not (eval_pred p s)

and eval_all ps s =
  match ps with [] -> true | p :: rest -> eval_pred p s && eval_all rest s

and eval_any ps s =
  match ps with [] -> false | p :: rest -> eval_pred p s || eval_any rest s

let rec eval_map m s =
  match m with
  | Identity -> s
  | Prepend p -> p ^ s
  | Append a -> s ^ a
  | Xor_mask k ->
      String.map (fun c -> Char.chr (Char.code c lxor (k land 0xff))) s
  | Truncate n -> if String.length s <= n then s else String.sub s 0 n
  | Chain ms -> eval_chain ms s
  [@@hot.alloc "an on-NIC map program materializes the rewritten frame"]

and eval_chain ms s =
  match ms with [] -> s | m :: rest -> eval_chain rest (eval_map m s)

let rec filter_footprint = function
  | True | False | Len_ge _ | Len_lt _ -> 0
  | Byte_eq _ | Byte_in _ -> 1
  | Prefix p -> String.length p
  | Hash_mod (_, len, _, _) -> max 0 len
  | All ps | Any ps -> filter_list_footprint ps
  | Not p -> filter_footprint p

and filter_list_footprint = function
  | [] -> 0
  | p :: rest -> filter_footprint p + filter_list_footprint rest

let rec map_footprint m len =
  match m with
  | Identity -> 0
  | Prepend p -> String.length p + len
  | Append a -> String.length a + len
  | Xor_mask _ -> len
  | Truncate n -> min n len
  | Chain ms -> map_list_footprint ms len

and map_list_footprint ms len =
  match ms with
  | [] -> 0
  | m :: rest -> map_footprint m len + map_list_footprint rest len

(* ---- parse -> match -> action pipelines ----
   A pipeline is a bounded list of stages; every construct below is a
   finite term and every evaluator is structural recursion over it, so
   evaluation provably terminates (there is no loop construct and no
   stage can re-enter an earlier one). *)

type field =
  | F_len
  | F_u8 of int
  | F_u16 of int
  | F_hash of int * int
  | F_hash_rest of int

type key =
  | K_bytes of int * int
  | K_rest of int

type fmatch =
  | M_pred of pred
  | M_eq of field * int64
  | M_mod of field * int * int
  | M_all of fmatch list
  | M_any of fmatch list
  | M_not of fmatch

type action =
  | Pass
  | Drop
  | Steer of int
  | Steer_field of field * int
  | Rewrite of map
  | Respond of respond

and respond = {
  r_key : key;
  r_hit_prefix : string;
  r_max_value : int;
  r_on_miss : action;
}

type stage = { guard : fmatch; act : action }
type pipeline = stage list

type verdict =
  | Deliver of string
  | Dropped
  | Steered of int * string
  | Responded of string

(* Field extraction yields [None] when the frame is too short for the
   typed read — matches evaluate false and steers fall through, so an
   out-of-range access can never fault or read beyond the payload. *)
let field_value f s =
  let n = String.length s in
  match f with
  | F_len -> Some (Int64.of_int n)
  | F_u8 off ->
      if off >= 0 && off < n then Some (Int64.of_int (Char.code s.[off]))
      else None
  | F_u16 off ->
      if off >= 0 && off + 1 < n then
        Some
          (Int64.of_int ((Char.code s.[off] lsl 8) lor Char.code s.[off + 1]))
      else None
  | F_hash (off, len) ->
      if off >= 0 && len >= 0 && off + len <= n then Some (fnv1a s off len)
      else None
  | F_hash_rest off ->
      if off >= 0 && off <= n then Some (fnv1a s off (n - off)) else None

let key_bytes k s =
  let n = String.length s in
  match k with
  | K_bytes (off, len) ->
      if off >= 0 && len >= 0 && off + len <= n then
        Some (String.sub s off len)
      else None
  | K_rest off -> if off >= 0 && off <= n then Some (String.sub s off (n - off)) else None
  [@@hot.alloc "the extracted lookup key is copied out of the frame"]

(* Non-negative modular reduction, identical to [Hash_mod]. *)
let mod_reduce v m =
  Int64.to_int (Int64.rem (Int64.logand v Int64.max_int) (Int64.of_int m))

let rec eval_fmatch m s =
  match m with
  | M_pred p -> eval_pred p s
  | M_eq (f, v) -> (
      match field_value f s with Some x -> Int64.equal x v | None -> false)
  | M_mod (f, modulo, target) -> (
      if modulo <= 0 then false
      else
        match field_value f s with
        | Some x -> mod_reduce x modulo = target
        | None -> false)
  | M_all ms -> eval_fmatch_all ms s
  | M_any ms -> eval_fmatch_any ms s
  | M_not m -> not (eval_fmatch m s)

and eval_fmatch_all ms s =
  match ms with [] -> true | m :: rest -> eval_fmatch m s && eval_fmatch_all rest s

and eval_fmatch_any ms s =
  match ms with [] -> false | m :: rest -> eval_fmatch m s || eval_fmatch_any rest s

(* Mutual structural recursion: [eval_stages] descends the stage list,
   [eval_action] descends an action term (only through [r_on_miss],
   which is a strict subterm). Falling off the end delivers to the
   host — the safe default. *)
let rec eval_stages ~lookup stages s =
  match stages with
  | [] -> Deliver s
  | { guard; act } :: rest ->
      if eval_fmatch guard s then eval_action ~lookup act rest s
      else eval_stages ~lookup rest s

and eval_action ~lookup act rest s =
  match act with
  | Pass -> Deliver s
  | Drop -> Dropped
  | Steer q -> Steered (q, s)
  | Steer_field (f, n) -> (
      if n <= 0 then Deliver s
      else
        match field_value f s with
        | Some v -> Steered (mod_reduce v n, s)
        | None -> eval_stages ~lookup rest s)
  | Rewrite m -> eval_stages ~lookup rest (eval_map m s)
  | Respond r -> (
      match key_bytes r.r_key s with
      | None -> eval_action ~lookup r.r_on_miss rest s
      | Some k -> (
          match lookup k with
          | Some v when String.length v <= r.r_max_value ->
              Responded (r.r_hit_prefix ^ v)
          | Some _ | None -> eval_action ~lookup r.r_on_miss rest s))
  [@@hot.alloc "a device-resident hit materializes the response payload"]

let eval_pipeline ~lookup p s = eval_stages ~lookup p s

(* ---- static footprints ----
   Upper bound on payload bytes examined or produced when evaluating on
   a [len]-byte frame, summing every stage and both branches of every
   [Respond] — static in the term, independent of which guards fire. *)

let field_footprint f len =
  match f with
  | F_len -> 0
  | F_u8 _ -> 1
  | F_u16 _ -> 2
  | F_hash (_, l) -> max 0 l
  | F_hash_rest off -> max 0 (len - max 0 off)

let key_footprint k len =
  match k with
  | K_bytes (_, l) -> max 0 l
  | K_rest off -> max 0 (len - max 0 off)

let rec fmatch_footprint m len =
  match m with
  | M_pred p -> filter_footprint p
  | M_eq (f, _) | M_mod (f, _, _) -> field_footprint f len
  | M_all ms | M_any ms -> fmatch_list_footprint ms len
  | M_not m -> fmatch_footprint m len

and fmatch_list_footprint ms len =
  match ms with
  | [] -> 0
  | m :: rest -> fmatch_footprint m len + fmatch_list_footprint rest len

let rec action_footprint a len =
  match a with
  | Pass | Drop | Steer _ -> 0
  | Steer_field (f, _) -> field_footprint f len
  | Rewrite m -> map_footprint m len
  | Respond r ->
      key_footprint r.r_key len
      + String.length r.r_hit_prefix + max 0 r.r_max_value
      + action_footprint r.r_on_miss len

let stage_footprint st len =
  fmatch_footprint st.guard len + action_footprint st.act len

let rec pipeline_footprint p len =
  match p with
  | [] -> 0
  | st :: rest -> stage_footprint st len + pipeline_footprint rest len

let rec pp_pred ppf = function
  | True -> Format.fprintf ppf "true"
  | False -> Format.fprintf ppf "false"
  | Len_ge n -> Format.fprintf ppf "len>=%d" n
  | Len_lt n -> Format.fprintf ppf "len<%d" n
  | Byte_eq (o, c) -> Format.fprintf ppf "byte[%d]=%C" o c
  | Byte_in (o, lo, hi) -> Format.fprintf ppf "byte[%d] in [%C,%C]" o lo hi
  | Prefix p -> Format.fprintf ppf "prefix %S" p
  | Hash_mod (o, l, m, t) -> Format.fprintf ppf "hash[%d..+%d]%%%d=%d" o l m t
  | All ps ->
      Format.fprintf ppf "(all %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pred)
        ps
  | Any ps ->
      Format.fprintf ppf "(any %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pred)
        ps
  | Not p -> Format.fprintf ppf "(not %a)" pp_pred p

let rec pp_map ppf = function
  | Identity -> Format.fprintf ppf "id"
  | Prepend p -> Format.fprintf ppf "prepend %S" p
  | Append a -> Format.fprintf ppf "append %S" a
  | Xor_mask k -> Format.fprintf ppf "xor 0x%02x" (k land 0xff)
  | Truncate n -> Format.fprintf ppf "truncate %d" n
  | Chain ms ->
      Format.fprintf ppf "(chain %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_map)
        ms

let pp_field ppf = function
  | F_len -> Format.fprintf ppf "len"
  | F_u8 o -> Format.fprintf ppf "u8[%d]" o
  | F_u16 o -> Format.fprintf ppf "u16[%d]" o
  | F_hash (o, l) -> Format.fprintf ppf "hash[%d..+%d]" o l
  | F_hash_rest o -> Format.fprintf ppf "hash[%d..]" o

let pp_key ppf = function
  | K_bytes (o, l) -> Format.fprintf ppf "bytes[%d..+%d]" o l
  | K_rest o -> Format.fprintf ppf "bytes[%d..]" o

let rec pp_fmatch ppf = function
  | M_pred p -> pp_pred ppf p
  | M_eq (f, v) -> Format.fprintf ppf "%a=%Ld" pp_field f v
  | M_mod (f, m, t) -> Format.fprintf ppf "%a%%%d=%d" pp_field f m t
  | M_all ms ->
      Format.fprintf ppf "(all %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_fmatch)
        ms
  | M_any ms ->
      Format.fprintf ppf "(any %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_fmatch)
        ms
  | M_not m -> Format.fprintf ppf "(not %a)" pp_fmatch m

let rec pp_action ppf = function
  | Pass -> Format.fprintf ppf "pass"
  | Drop -> Format.fprintf ppf "drop"
  | Steer q -> Format.fprintf ppf "steer %d" q
  | Steer_field (f, n) -> Format.fprintf ppf "steer %a%%%d" pp_field f n
  | Rewrite m -> Format.fprintf ppf "rewrite %a" pp_map m
  | Respond r ->
      Format.fprintf ppf "respond key=%a prefix=%S max=%d miss=(%a)" pp_key
        r.r_key r.r_hit_prefix r.r_max_value pp_action r.r_on_miss

let pp_stage ppf st =
  Format.fprintf ppf "[%a -> %a]" pp_fmatch st.guard pp_action st.act

let pp_pipeline ppf p =
  Format.fprintf ppf "(pipeline %a)"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_stage)
    p
