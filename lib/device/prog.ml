type pred =
  | True
  | False
  | Len_ge of int
  | Len_lt of int
  | Byte_eq of int * char
  | Byte_in of int * char * char
  | Prefix of string
  | Hash_mod of int * int * int * int
  | All of pred list
  | Any of pred list
  | Not of pred

type filter = pred

type map =
  | Identity
  | Prepend of string
  | Append of string
  | Xor_mask of int
  | Truncate of int
  | Chain of map list

(* The hash state threads through parameters — an on-NIC program runs
   once per delivered frame, so a ref cell here would be a per-frame
   allocation (dk-hot: hot-alloc). *)
let rec fnv1a_loop s i stop h =
  if i >= stop then h
  else
    fnv1a_loop s (i + 1) stop
      (Int64.mul (Int64.logxor h (Int64.of_int (Char.code s.[i]))) 0x100000001b3L)

let fnv1a s off len =
  let stop = min (String.length s) (off + len) in
  fnv1a_loop s (max 0 off) stop 0xcbf29ce484222325L

(* Byte-by-byte prefix test: [String.sub] would copy the prefix out of
   the frame on every evaluation. *)
let rec prefix_from p s i =
  i >= String.length p || (p.[i] = s.[i] && prefix_from p s (i + 1))

(* [All]/[Any]/[Chain] recurse through dedicated mutually-recursive
   walkers rather than [List.for_all]/[exists]/[fold_left]: the
   combinator form closes over the frame, allocating one closure per
   node per frame on the rx path. *)
let rec eval_pred p s =
  match p with
  | True -> true
  | False -> false
  | Len_ge n -> String.length s >= n
  | Len_lt n -> String.length s < n
  | Byte_eq (off, c) -> off >= 0 && off < String.length s && s.[off] = c
  | Byte_in (off, lo, hi) ->
      off >= 0 && off < String.length s && s.[off] >= lo && s.[off] <= hi
  | Prefix p -> String.length s >= String.length p && prefix_from p s 0
  | Hash_mod (off, len, modulo, target) ->
      if modulo <= 0 then false
      else
        let h = fnv1a s off len in
        Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int modulo))
        = target
  | All ps -> eval_all ps s
  | Any ps -> eval_any ps s
  | Not p -> not (eval_pred p s)

and eval_all ps s =
  match ps with [] -> true | p :: rest -> eval_pred p s && eval_all rest s

and eval_any ps s =
  match ps with [] -> false | p :: rest -> eval_pred p s || eval_any rest s

let rec eval_map m s =
  match m with
  | Identity -> s
  | Prepend p -> p ^ s
  | Append a -> s ^ a
  | Xor_mask k ->
      String.map (fun c -> Char.chr (Char.code c lxor (k land 0xff))) s
  | Truncate n -> if String.length s <= n then s else String.sub s 0 n
  | Chain ms -> eval_chain ms s
  [@@hot.alloc "an on-NIC map program materializes the rewritten frame"]

and eval_chain ms s =
  match ms with [] -> s | m :: rest -> eval_chain rest (eval_map m s)

let rec filter_footprint = function
  | True | False | Len_ge _ | Len_lt _ -> 0
  | Byte_eq _ | Byte_in _ -> 1
  | Prefix p -> String.length p
  | Hash_mod (_, len, _, _) -> max 0 len
  | All ps | Any ps -> List.fold_left (fun acc p -> acc + filter_footprint p) 0 ps
  | Not p -> filter_footprint p

let rec map_footprint m len =
  match m with
  | Identity -> 0
  | Prepend p -> String.length p + len
  | Append a -> String.length a + len
  | Xor_mask _ -> len
  | Truncate n -> min n len
  | Chain ms -> List.fold_left (fun acc m -> acc + map_footprint m len) 0 ms

let rec pp_pred ppf = function
  | True -> Format.fprintf ppf "true"
  | False -> Format.fprintf ppf "false"
  | Len_ge n -> Format.fprintf ppf "len>=%d" n
  | Len_lt n -> Format.fprintf ppf "len<%d" n
  | Byte_eq (o, c) -> Format.fprintf ppf "byte[%d]=%C" o c
  | Byte_in (o, lo, hi) -> Format.fprintf ppf "byte[%d] in [%C,%C]" o lo hi
  | Prefix p -> Format.fprintf ppf "prefix %S" p
  | Hash_mod (o, l, m, t) -> Format.fprintf ppf "hash[%d..+%d]%%%d=%d" o l m t
  | All ps ->
      Format.fprintf ppf "(all %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pred)
        ps
  | Any ps ->
      Format.fprintf ppf "(any %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pred)
        ps
  | Not p -> Format.fprintf ppf "(not %a)" pp_pred p

let rec pp_map ppf = function
  | Identity -> Format.fprintf ppf "id"
  | Prepend p -> Format.fprintf ppf "prepend %S" p
  | Append a -> Format.fprintf ppf "append %S" a
  | Xor_mask k -> Format.fprintf ppf "xor 0x%02x" (k land 0xff)
  | Truncate n -> Format.fprintf ppf "truncate %d" n
  | Chain ms ->
      Format.fprintf ppf "(chain %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_map)
        ms
