(** Poll-mode NIC model (DPDK-class device, Table 1 left column; with
    [programmable:true], Table 1 right column).

    The NIC exposes descriptor-ring semantics: [transmit] costs one
    doorbell of CPU time and fails when the TX ring is full; received
    frames wait in a bounded RX ring and are lost when it overflows.
    There is no kernel anywhere on this path. A programmable NIC can
    additionally run a verified filter and/or map program ({!Prog}) on
    inbound frames at zero CPU cost — frames dropped by the filter never
    consume host cycles. *)

type t

type stats = {
  tx_frames : int;
  tx_bytes : int;
  tx_rejected : int; (** transmit attempts that found the TX ring full *)
  rx_frames : int;
  rx_bytes : int;
  rx_dropped : int;  (** frames lost to RX ring overflow *)
  rx_filtered : int; (** frames dropped on-device by the filter program *)
  rx_mapped : int;   (** frames transformed on-device by the map program *)
}

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  ?fault:Dk_fault.Fault.t ->
  mac:int ->
  ?rx_capacity:int ->
  ?tx_capacity:int ->
  ?programmable:bool ->
  unit ->
  t

val mac : t -> int
val programmable : t -> bool

val set_rx_filter : t -> Prog.filter option -> (unit, [ `Not_programmable ]) result
val set_rx_map : t -> Prog.map option -> (unit, [ `Not_programmable ]) result

val transmit : t -> dst:int -> string -> bool
(** Charge a doorbell (through the coalescing stage — see
    {!Doorbell}) and start DMA; [false] if the TX ring is full. *)

val transmit_many : t -> dst:int -> string list -> int
(** Submit several frames under one doorbell ring ({!Doorbell.group});
    returns how many the TX ring accepted. *)

val set_tx_window : t -> int64 -> unit
(** Tx doorbell coalescing window; [0] (the default from
    [Cost.tx_batch_window]) rings per frame, bit-identically to the
    unbatched path. *)

val tx_doorbells : t -> int
(** Doorbell rings so far on this NIC. *)

val poll_rx : t -> string option
(** Take the next received frame, if any (free — the poll-loop cost is
    charged by the caller, which knows how often it spins). *)

val rx_pending : t -> int
val stats : t -> stats

(** {2 Wiring (used by {!Fabric})} *)

val set_uplink :
  t -> (src:int -> dst:int -> departed:int64 -> string -> unit) -> unit
(** [departed] is the absolute DMA-completion (wire departure) time. *)

val receive : t -> string -> unit
(** Deliver a frame into the RX path (filter/map, then ring). *)

val set_rx_notify : t -> (unit -> unit) -> unit
(** Invoked after each frame lands in the RX ring; network stacks use
    this to schedule their poll step in the event loop. *)
