(** Poll-mode NIC model (DPDK-class device, Table 1 left column; with
    [programmable:true], Table 1 right column).

    The NIC exposes descriptor-ring semantics: [transmit] costs one
    doorbell of CPU time and fails when the TX ring is full; received
    frames wait in a bounded RX ring and are lost when it overflows.
    There is no kernel anywhere on this path. A programmable NIC can
    additionally run a verified filter and/or map program ({!Prog}) on
    inbound frames at zero CPU cost — frames dropped by the filter never
    consume host cycles. *)

type t

type stats = {
  tx_frames : int;
  tx_bytes : int;
  tx_rejected : int; (** transmit attempts that found the TX ring full *)
  rx_frames : int;
  rx_bytes : int;
  rx_dropped : int;  (** frames lost to RX ring overflow *)
  rx_filtered : int; (** frames dropped on-device (filter or pipeline) *)
  rx_mapped : int;   (** frames transformed on-device by the map program *)
  rx_responded : int; (** frames answered from the device-resident table *)
  rx_steered : int;  (** frames handed to the steer sink by the pipeline *)
}

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  ?fault:Dk_fault.Fault.t ->
  mac:int ->
  ?rx_capacity:int ->
  ?tx_capacity:int ->
  ?programmable:bool ->
  unit ->
  t

val mac : t -> int
val programmable : t -> bool

val set_rx_filter : t -> Prog.filter option -> (unit, [ `Not_programmable ]) result
val set_rx_map : t -> Prog.map option -> (unit, [ `Not_programmable ]) result

(** {2 Rx pipelines and the device-resident table}

    A programmable NIC can run a {!Prog.pipeline} on inbound frames
    ahead of the classic filter/map pair, at device latency priced by
    {!Prog.pipeline_footprint} (one program element per 64 touched
    bytes on [Cost.device_prog_per_elem]) and zero host CPU. [Respond]
    verdicts are served from a bounded {!Table} and transmitted back
    without ringing any host doorbell; the reply is only sent when the
    request frame re-validates ({!Udp_frame.reply} checks both
    checksums), otherwise the frame falls through to the host. *)

val set_rx_pipeline : t -> Prog.pipeline -> (unit, [ `Not_programmable ]) result
(** [[]] unloads the pipeline — the rx path is then byte-identical to
    a NIC that never had one. *)

val rx_pipeline : t -> Prog.pipeline

val offload_enable :
  t ->
  ?policy:Table.policy ->
  ?obs_prefix:string ->
  capacity:int ->
  max_value:int ->
  unit ->
  (Table.t, [ `Not_programmable ]) result
(** Create (or return the existing) device-resident table. Counters
    are registered lazily here — offload-off runs register nothing. *)

val offload_table : t -> Table.t option

val set_rx_steer : t -> (queue:int -> string -> unit) -> unit
(** Sink for [Steer]/[Steer_field] verdicts (e.g. an {!Rss}-backed
    dispatch to per-shard queues). Without one, steered frames land in
    this NIC's own rx ring — the single-queue degenerate case. *)

(** {3 Host → device control queue}

    Table writes from the host ride a dedicated doorbell
    ([nic.ctrl.doorbells]) with a permanently-zero coalescing window:
    each op charges the host one doorbell and has completed on the
    device before the call returns. kv SETs/DELs use this to
    update/invalidate the device entry {e before} their response is
    sent, which is what makes stale device GETs impossible. All return
    the no-op/failure value when no table is enabled. *)

val ctrl_insert : t -> string -> string -> (unit, [ `Rejected ]) result
val ctrl_update : t -> string -> string -> bool
val ctrl_invalidate : t -> string -> bool

val ctrl_doorbells : t -> int
(** Control-queue doorbell rings so far. *)

val transmit : t -> dst:int -> string -> bool
(** Charge a doorbell (through the coalescing stage — see
    {!Doorbell}) and start DMA; [false] if the TX ring is full. *)

val transmit_many : t -> dst:int -> string list -> int
(** Submit several frames under one doorbell ring ({!Doorbell.group});
    returns how many the TX ring accepted. *)

val set_tx_window : t -> int64 -> unit
(** Tx doorbell coalescing window; [0] (the default from
    [Cost.tx_batch_window]) rings per frame, bit-identically to the
    unbatched path. *)

val tx_doorbells : t -> int
(** Doorbell rings so far on this NIC. *)

val poll_rx : t -> string option
(** Take the next received frame, if any (free — the poll-loop cost is
    charged by the caller, which knows how often it spins). *)

val rx_pending : t -> int
val stats : t -> stats

(** {2 Wiring (used by {!Fabric})} *)

val set_uplink :
  t -> (src:int -> dst:int -> departed:int64 -> string -> unit) -> unit
(** [departed] is the absolute DMA-completion (wire departure) time. *)

val receive : t -> string -> unit
(** Deliver a frame into the RX path (filter/map, then ring). *)

val set_rx_notify : t -> (unit -> unit) -> unit
(** Invoked after each frame lands in the RX ring; network stacks use
    this to schedule their poll step in the event loop. *)
