(* Receive-side scaling: the NIC-level steering stage that hashes a
   flow's 5-tuple through a configurable indirection table to pick the
   per-core rx queue (= shard) that owns the flow. This is the
   mechanism real NICs use to give each core a private descriptor ring;
   in the simulation the steering decision is made once per flow at
   admission time (hardware would make the same decision per frame, but
   a flow's tuple never changes, so per-flow is equivalent and costs no
   host CPU — exactly the "device classifies, host never touches it"
   split of §4.3).

   The hash is a deterministic FNV-1a over the 13 tuple bytes — a
   stand-in for the Toeplitz hash real hardware uses; what matters for
   the reproduction is that it is a pure function of the tuple, so
   steering is replayable and `dune build @shard` can treat it as a
   sanctioned (deterministic) source. *)

type t = {
  queues : int;
  table : int array; (* indirection table: hash bucket -> queue *)
}

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

(* FNV's final multiply leaves the low bits poorly avalanched, and the
   indirection-table reduction reads exactly those bits — without a
   finalizer, consecutive tuples collapse into a handful of buckets.
   Hardware Toeplitz does not have this problem; borrow murmur3's
   64-bit finisher to get the same any-bit-affects-any-bit property. *)
let finalize h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash_flow ~src_ip ~src_port ~dst_ip ~dst_port ~proto =
  let h = fnv_offset in
  let h = fnv1a_byte h src_ip in
  let h = fnv1a_byte h (src_ip lsr 8) in
  let h = fnv1a_byte h (src_ip lsr 16) in
  let h = fnv1a_byte h (src_ip lsr 24) in
  let h = fnv1a_byte h dst_ip in
  let h = fnv1a_byte h (dst_ip lsr 8) in
  let h = fnv1a_byte h (dst_ip lsr 16) in
  let h = fnv1a_byte h (dst_ip lsr 24) in
  let h = fnv1a_byte h src_port in
  let h = fnv1a_byte h (src_port lsr 8) in
  let h = fnv1a_byte h dst_port in
  let h = fnv1a_byte h (dst_port lsr 8) in
  let h = fnv1a_byte h proto in
  Int64.to_int (Int64.logand (finalize h) 0x3fffffffffffffffL)

let create ~queues ?(table_size = 128) () =
  if queues <= 0 then invalid_arg "Rss.create: queues must be positive";
  if table_size <= 0 then invalid_arg "Rss.create: table_size must be positive";
  (* Default indirection table: round-robin, the even spread hardware
     initialises to. *)
  { queues; table = Array.init table_size (fun i -> i mod queues) }

let queues t = t.queues
let table_size t = Array.length t.table

let set_entry t i q =
  if i < 0 || i >= Array.length t.table then invalid_arg "Rss.set_entry: index";
  if q < 0 || q >= t.queues then invalid_arg "Rss.set_entry: queue";
  t.table.(i) <- q

let entry t i =
  if i < 0 || i >= Array.length t.table then invalid_arg "Rss.entry: index";
  t.table.(i)

let select t ~src_ip ~src_port ~dst_ip ~dst_port ~proto =
  let h = hash_flow ~src_ip ~src_port ~dst_ip ~dst_port ~proto in
  t.table.(h mod Array.length t.table)

(* Indirection-table rebalancing: given the observed per-bucket flow
   weight, repoint entries so queue loads equalise — the software
   counterpart of `ethtool -X`. Greedy longest-processing-time: place
   buckets in descending weight on the least-loaded queue, ties broken
   to the lower bucket index / queue id so the result is a pure
   function of the weights. *)
let rebalance t weights =
  if Array.length weights <> Array.length t.table then
    invalid_arg "Rss.rebalance: weight per table entry required";
  let order = Array.init (Array.length weights) (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare weights.(b) weights.(a) with
      | 0 -> compare a b
      | c -> c)
    order;
  let load = Array.make t.queues 0 in
  Array.iter
    (fun bucket ->
      let q = ref 0 in
      for j = 1 to t.queues - 1 do
        if load.(j) < load.(!q) then q := j
      done;
      t.table.(bucket) <- !q;
      load.(!q) <- load.(!q) + weights.(bucket))
    order
