type status = [ `Ok | `Bad_lba | `Io_error ]

module Fault = Dk_fault.Fault

type completion = { wr_id : int; status : status; data : string option }

type stats = { reads : int; writes : int; rejected : int }

(* Class-wide obs instruments (aggregated across block devices). The
   latency histogram measures submit-to-completion in virtual ns. *)
let m_reads = Dk_obs.Metrics.counter "device.block.reads"
let m_writes = Dk_obs.Metrics.counter "device.block.writes"
let m_rejected = Dk_obs.Metrics.counter "device.block.rejected"
let g_inflight = Dk_obs.Metrics.gauge "device.block.sq_inflight"
let h_latency = Dk_obs.Metrics.hist "device.block.sq_latency"

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  fault : Fault.t;
  db : Doorbell.t;
  block_size : int;
  block_count : int;
  sq_depth : int;
  programmable : bool;
  mutable write_prog : Prog.map option;
  mutable read_prog : Prog.map option;
  store : (int, string) Hashtbl.t; (* lba -> block contents *)
  cq : completion Queue.t;
  mutable cq_notify : unit -> unit;
  mutable inflight : int;
  mutable reads : int;
  mutable writes : int;
  mutable rejected : int;
}

let create ~engine ~cost ?(fault = Fault.default) ?(block_size = 4096)
    ?(block_count = 1 lsl 20) ?(sq_depth = 256) ?(programmable = false) () =
  if block_size <= 0 || block_count <= 0 || sq_depth <= 0 then
    invalid_arg "Block.create";
  {
    engine;
    cost;
    fault;
    db = Doorbell.create ~engine ~cost ~name:"block.sq.doorbells" ();
    block_size;
    block_count;
    sq_depth;
    programmable;
    write_prog = None;
    read_prog = None;
    store = Hashtbl.create 1024;
    cq = Queue.create ();
    cq_notify = (fun () -> ());
    inflight = 0;
    reads = 0;
    writes = 0;
    rejected = 0;
  }

let block_size t = t.block_size
let block_count t = t.block_count
let engine t = t.engine
let programmable t = t.programmable

let set_write_prog t prog =
  if t.programmable then begin
    t.write_prog <- prog;
    Ok ()
  end
  else Error `Not_programmable

let set_read_prog t prog =
  if t.programmable then begin
    t.read_prog <- prog;
    Ok ()
  end
  else Error `Not_programmable

(* Device program latency applies when a program touches the data. *)
let prog_latency t prog =
  match prog with
  | Some _ -> t.cost.Dk_sim.Cost.device_prog_per_elem
  | None -> 0L

let complete t delay comp =
  let submitted = Dk_sim.Engine.now t.engine in
  (* Injected completion stall: the command sits in the device for an
     extra magnitude before the CQ entry lands. *)
  let delay =
    Int64.add delay (Fault.extra_delay t.fault Fault.Block_stall ~now:submitted)
  in
  ignore
    (Dk_sim.Engine.after t.engine delay (fun () ->
         t.inflight <- t.inflight - 1;
         Dk_obs.Metrics.gauge_add g_inflight (-1);
         let now = Dk_sim.Engine.now t.engine in
         Dk_obs.Metrics.observe h_latency (Int64.sub now submitted);
         Dk_obs.Flight.recordf Dk_obs.Flight.default ~now
           Dk_obs.Flight.Completion "block wr_id %d (%Ldns in queue)"
           comp.wr_id (Int64.sub now submitted);
         Queue.add comp t.cq;
         t.cq_notify ()))

let submit t make_completion latency =
  if t.inflight >= t.sq_depth then begin
    t.rejected <- t.rejected + 1;
    Dk_obs.Metrics.incr m_rejected;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop
      "block SQ full (%d in flight)" t.inflight;
    false
  end
  else begin
    Doorbell.submit t.db (fun () ->
        t.inflight <- t.inflight + 1;
        Dk_obs.Metrics.gauge_add g_inflight 1;
        complete t latency (make_completion ()));
    true
  end

let submit_read t ~wr_id ~lba =
  let make () =
    if lba < 0 || lba >= t.block_count then
      { wr_id; status = `Bad_lba; data = None }
    else if
      Fault.fire t.fault Fault.Block_error
        ~now:(Dk_sim.Engine.now t.engine)
    then { wr_id; status = `Io_error; data = None }
    else
      let data =
        match Hashtbl.find_opt t.store lba with
        | Some s -> s
        | None -> String.make t.block_size '\000'
      in
      let data =
        match t.read_prog with
        | Some prog -> Prog.eval_map prog data
        | None -> data
      in
      { wr_id; status = `Ok; data = Some data }
  in
  let latency =
    Int64.add (prog_latency t t.read_prog)
      (Int64.add t.cost.Dk_sim.Cost.nvme_read
         (Dk_sim.Cost.nvme_transfer_ns t.cost t.block_size))
  in
  let ok = submit t make latency in
  if ok then begin
    t.reads <- t.reads + 1;
    Dk_obs.Metrics.incr m_reads
  end;
  ok

let submit_write t ~wr_id ~lba data =
  if String.length data > t.block_size then
    invalid_arg "Block.submit_write: data exceeds block size";
  let make () =
    if lba < 0 || lba >= t.block_count then
      { wr_id; status = `Bad_lba; data = None }
    else if
      Fault.fire t.fault Fault.Block_error
        ~now:(Dk_sim.Engine.now t.engine)
    then
      (* Media error: nothing persists. *)
      { wr_id; status = `Io_error; data = None }
    else begin
      let data =
        match t.write_prog with
        | Some prog -> Prog.eval_map prog data
        | None -> data
      in
      let data =
        (* Torn write: only a prefix reaches the media, yet the device
           reports success — the failure mode log-structured layouts
           defend against with per-record CRCs (§5.3). *)
        if
          Fault.fire t.fault Fault.Block_torn_write
            ~now:(Dk_sim.Engine.now t.engine)
        then
          String.sub data 0
            (Fault.cut_point t.fault Fault.Block_torn_write
               ~len:(String.length data))
        else data
      in
      let padded =
        if String.length data >= t.block_size then
          String.sub data 0 t.block_size
        else data ^ String.make (t.block_size - String.length data) '\000'
      in
      Hashtbl.replace t.store lba padded;
      { wr_id; status = `Ok; data = None }
    end
  in
  let latency =
    Int64.add (prog_latency t t.write_prog)
      (Int64.add t.cost.Dk_sim.Cost.nvme_write
         (Dk_sim.Cost.nvme_transfer_ns t.cost (String.length data)))
  in
  let ok = submit t make latency in
  if ok then begin
    t.writes <- t.writes + 1;
    Dk_obs.Metrics.incr m_writes
  end;
  ok

type op =
  | Read of { wr_id : int; lba : int }
  | Write of { wr_id : int; lba : int; data : string }

let submit_many t ops =
  Doorbell.group t.db (fun () ->
      List.fold_left
        (fun acc op ->
          let ok =
            match op with
            | Read { wr_id; lba } -> submit_read t ~wr_id ~lba
            | Write { wr_id; lba; data } -> submit_write t ~wr_id ~lba data
          in
          if ok then acc + 1 else acc)
        0 ops)

let grouped t f = Doorbell.group t.db f
let set_sq_window t ns = Doorbell.set_window t.db ns
let sq_doorbells t = Doorbell.rings t.db

let poll_cq t = Queue.take_opt t.cq
let cq_pending t = Queue.length t.cq
let outstanding t = t.inflight

let stats t = { reads = t.reads; writes = t.writes; rejected = t.rejected }

let set_cq_notify t f = t.cq_notify <- f
