(** Bounded device-resident key/value table (NIC SRAM model) backing
    the {!Prog.Respond} pipeline action.

    Capacity and value-size caps are fixed at creation. [Lru] lets the
    device admit and evict on its own (deterministic logical-tick LRU);
    [Host_managed] never admits or evicts device-side — population is
    entirely the host's job, and inserts past capacity are rejected.

    Host code must not touch a table directly: reads and writes reach
    it only from [lib/device] (the NIC rx pipeline and its control
    queue, {!Nic.ctrl_insert} etc.) and the sanctioned kv control path
    — enforced by the dk-lint [offload-site] rule.

    Obs counters ([<prefix>device.nic.offload.hits/misses/insertions/
    evictions/invalidations/bytes]) are created per instance at
    {!create}, so runs that never enable offload register nothing. *)

type t

type policy = Lru | Host_managed

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;       (** new keys admitted *)
  updates : int;          (** existing keys overwritten in place *)
  evictions : int;        (** LRU victims *)
  invalidations : int;    (** explicit removals (incl. oversized updates) *)
  rejected : int;         (** writes refused: value too large, or full
                              under [Host_managed] *)
}

val create :
  ?policy:policy ->
  ?obs_prefix:string ->
  capacity:int ->
  max_value:int ->
  unit ->
  t
(** Defaults: [Lru], empty prefix (shards pass ["shard<i>."] so the
    aggregator folds a [shards.agg.*] view). Raises [Invalid_argument]
    on non-positive caps. *)

val policy : t -> policy
val capacity : t -> int
val max_value : t -> int
val length : t -> int
val mem : t -> string -> bool

val lookup : t -> string -> string option
(** Device-side read (the pipeline's [lookup]); hits refresh LRU
    recency and count into [hits]/[bytes]. *)

val insert : t -> string -> string -> (unit, [ `Rejected ]) result
(** Admit or overwrite. Oversized values are rejected; at capacity,
    [Lru] evicts the least-recently-used entry, [Host_managed]
    rejects. *)

val update : t -> string -> string -> bool
(** Overwrite only if present ([false] otherwise — the key was never
    resident, nothing to go stale). An oversized update {e removes} the
    entry instead of leaving the old value resident. *)

val invalidate : t -> string -> bool
(** Remove; [true] if the key was resident. *)

val clear : t -> unit

val stats : t -> stats
