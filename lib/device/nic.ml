type stats = {
  tx_frames : int;
  tx_bytes : int;
  tx_rejected : int;
  rx_frames : int;
  rx_bytes : int;
  rx_dropped : int;
  rx_filtered : int;
  rx_mapped : int;
}

module Fault = Dk_fault.Fault

(* Class-wide obs instruments (aggregated across NICs); the flight
   recorder entries carry the MAC to tell instances apart. *)
let m_tx_frames = Dk_obs.Metrics.counter "device.nic.tx_frames"
let m_tx_bytes = Dk_obs.Metrics.counter "device.nic.tx_bytes"
let m_tx_rejected = Dk_obs.Metrics.counter "device.nic.tx_rejected"
let m_rx_frames = Dk_obs.Metrics.counter "device.nic.rx_frames"
let m_rx_bytes = Dk_obs.Metrics.counter "device.nic.rx_bytes"
let m_rx_dropped = Dk_obs.Metrics.counter "device.nic.rx_dropped"
let m_rx_filtered = Dk_obs.Metrics.counter "device.nic.rx_filtered"
let g_rx_pending = Dk_obs.Metrics.gauge "device.nic.rx_pending"
let g_tx_inflight = Dk_obs.Metrics.gauge "device.nic.tx_inflight"

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  fault : Fault.t;
  mac : int;
  programmable : bool;
  db : Doorbell.t;
  rxq : string Dk_util.Bqueue.t;
  tx_capacity : int;
  mutable tx_inflight : int;
  mutable rx_filter : Prog.filter option;
  mutable rx_map : Prog.map option;
  mutable uplink : (src:int -> dst:int -> departed:int64 -> string -> unit) option;
  mutable rx_notify : unit -> unit;
  mutable tx_frames : int;
  mutable tx_bytes : int;
  mutable tx_rejected : int;
  mutable rx_frames : int;
  mutable rx_bytes : int;
  mutable rx_dropped : int;
  mutable rx_filtered : int;
  mutable rx_mapped : int;
}

let create ~engine ~cost ?(fault = Fault.default) ~mac ?(rx_capacity = 1024)
    ?(tx_capacity = 1024) ?(programmable = false) () =
  {
    engine;
    cost;
    fault;
    mac;
    programmable;
    db = Doorbell.create ~engine ~cost ~name:"nic.tx.doorbells" ();
    rxq = Dk_util.Bqueue.create rx_capacity;
    tx_capacity;
    tx_inflight = 0;
    rx_filter = None;
    rx_map = None;
    uplink = None;
    rx_notify = (fun () -> ());
    tx_frames = 0;
    tx_bytes = 0;
    tx_rejected = 0;
    rx_frames = 0;
    rx_bytes = 0;
    rx_dropped = 0;
    rx_filtered = 0;
    rx_mapped = 0;
  }

let mac t = t.mac
let programmable t = t.programmable

let set_rx_filter t prog =
  if t.programmable then begin
    t.rx_filter <- prog;
    Ok ()
  end
  else Error `Not_programmable

let set_rx_map t prog =
  if t.programmable then begin
    t.rx_map <- prog;
    Ok ()
  end
  else Error `Not_programmable

let transmit t ~dst frame =
  if t.tx_inflight >= t.tx_capacity then begin
    t.tx_rejected <- t.tx_rejected + 1;
    Dk_obs.Metrics.incr m_tx_rejected;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop
      "nic %x tx ring full (%d in flight)" t.mac t.tx_inflight;
    false
  end
  else begin
    (* The CPU pays only for the doorbell (via the coalescing stage);
       the DMA engine does the rest. The departure time is fixed when
       the doorbell fires (absolute), so that late event execution —
       the clock having been consumed past this point — cannot reorder
       frames on the wire. Under a coalescing window the ring-capacity
       check above sees the pre-flush inflight count. *)
    Doorbell.submit t.db (fun () ->
        t.tx_inflight <- t.tx_inflight + 1;
        Dk_obs.Metrics.gauge_add g_tx_inflight 1;
        let len = String.length frame in
        let departed =
          Int64.add (Dk_sim.Engine.now t.engine) (Dk_sim.Cost.dma_ns t.cost len)
        in
        let finish () =
          t.tx_inflight <- t.tx_inflight - 1;
          t.tx_frames <- t.tx_frames + 1;
          t.tx_bytes <- t.tx_bytes + len;
          Dk_obs.Metrics.gauge_add g_tx_inflight (-1);
          Dk_obs.Metrics.incr m_tx_frames;
          Dk_obs.Metrics.add m_tx_bytes len;
          (* Injected tx drop: the DMA completed (the host paid for it)
             but the frame dies at the PHY and never reaches the
             fabric. *)
          if
            Fault.fire t.fault Fault.Nic_tx_drop
              ~now:(Dk_sim.Engine.now t.engine)
          then ()
          else
            match t.uplink with
            | Some send -> send ~src:t.mac ~dst ~departed frame
            | None -> ()
        in
        ignore (Dk_sim.Engine.at t.engine departed finish));
    true
  end
  [@@hot.alloc
    "the staged tx thunk and its DMA-completion event are the sim's \
     stand-in for descriptor writes; the host CPU pays only the doorbell"]

let rec transmit_count t ~dst frames acc =
  match frames with
  | [] -> acc
  | frame :: rest ->
      transmit_count t ~dst rest (if transmit t ~dst frame then acc + 1 else acc)

let transmit_many t ~dst frames =
  Doorbell.group t.db (fun () -> transmit_count t ~dst frames 0)
  [@@hot.alloc "one group thunk per batch, amortized across its frames"]

let set_tx_window t ns = Doorbell.set_window t.db ns
let tx_doorbells t = Doorbell.rings t.db

let enqueue_rx t frame =
  if Dk_util.Bqueue.push t.rxq frame then begin
    t.rx_frames <- t.rx_frames + 1;
    t.rx_bytes <- t.rx_bytes + String.length frame;
    Dk_obs.Metrics.incr m_rx_frames;
    Dk_obs.Metrics.add m_rx_bytes (String.length frame);
    Dk_obs.Metrics.gauge_add g_rx_pending 1;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Enqueue
      "nic %x rx %dB (ring %d)" t.mac (String.length frame)
      (Dk_util.Bqueue.length t.rxq);
    t.rx_notify ()
  end
  else begin
    t.rx_dropped <- t.rx_dropped + 1;
    Dk_obs.Metrics.incr m_rx_dropped;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop
      "nic %x rx ring full, frame dropped (%dB)" t.mac (String.length frame)
  end

(* Toplevel (not a local closure inside [receive]): the filter/map
   stage runs once per delivered frame, and the plain path — no program
   loaded — must stay allocation-free. *)
let process_rx t frame =
  let keep =
    match t.rx_filter with
    | None -> true
    | Some p -> Prog.eval_pred p frame
  in
  if not keep then begin
    t.rx_filtered <- t.rx_filtered + 1;
    Dk_obs.Metrics.incr m_rx_filtered
  end
  else
    let frame =
      match t.rx_map with
      | None -> frame
      | Some m ->
          t.rx_mapped <- t.rx_mapped + 1;
          Prog.eval_map m frame
    in
    enqueue_rx t frame

let receive t frame =
  let now = Dk_sim.Engine.now t.engine in
  (* Fault hooks sit at the wire edge, before any on-NIC program: a
     dropped frame never reaches the filter, a corrupted one is what
     the filter (and the host checksum) sees. *)
  if Fault.fire t.fault Fault.Nic_rx_drop ~now then begin
    t.rx_dropped <- t.rx_dropped + 1;
    Dk_obs.Metrics.incr m_rx_dropped
  end
  else begin
    let frame =
      match Fault.mangle t.fault Fault.Nic_rx_corrupt ~now frame with
      | Some corrupted -> corrupted
      | None -> frame
    in
    let copies = if Fault.fire t.fault Fault.Nic_rx_dup ~now then 2 else 1 in
    let prog_active =
      (match t.rx_filter with Some _ -> true | None -> false)
      || match t.rx_map with Some _ -> true | None -> false
    in
    for _ = 1 to copies do
      if prog_active then
        (* On-device program execution adds device latency but no CPU. *)
        ignore
          (Dk_sim.Engine.after t.engine t.cost.Dk_sim.Cost.device_prog_per_elem
             (fun () -> process_rx t frame))
      else process_rx t frame
    done
  end
  [@@hot.alloc
    "the deferral thunk exists only when an on-NIC program is loaded; \
     the plain rx path is closure-free"]

let poll_rx t =
  match Dk_util.Bqueue.pop t.rxq with
  | Some _ as hit ->
      Dk_obs.Metrics.gauge_add g_rx_pending (-1);
      hit
  | None -> None
let rx_pending t = Dk_util.Bqueue.length t.rxq

let stats t =
  {
    tx_frames = t.tx_frames;
    tx_bytes = t.tx_bytes;
    tx_rejected = t.tx_rejected;
    rx_frames = t.rx_frames;
    rx_bytes = t.rx_bytes;
    rx_dropped = t.rx_dropped;
    rx_filtered = t.rx_filtered;
    rx_mapped = t.rx_mapped;
  }

let set_uplink t f = t.uplink <- Some f
let set_rx_notify t f = t.rx_notify <- f
