type stats = {
  tx_frames : int;
  tx_bytes : int;
  tx_rejected : int;
  rx_frames : int;
  rx_bytes : int;
  rx_dropped : int;
  rx_filtered : int;
  rx_mapped : int;
  rx_responded : int;
  rx_steered : int;
}

module Fault = Dk_fault.Fault

(* Class-wide obs instruments (aggregated across NICs); the flight
   recorder entries carry the MAC to tell instances apart. *)
let m_tx_frames = Dk_obs.Metrics.counter "device.nic.tx_frames"
let m_tx_bytes = Dk_obs.Metrics.counter "device.nic.tx_bytes"
let m_tx_rejected = Dk_obs.Metrics.counter "device.nic.tx_rejected"
let m_rx_frames = Dk_obs.Metrics.counter "device.nic.rx_frames"
let m_rx_bytes = Dk_obs.Metrics.counter "device.nic.rx_bytes"
let m_rx_dropped = Dk_obs.Metrics.counter "device.nic.rx_dropped"
let m_rx_filtered = Dk_obs.Metrics.counter "device.nic.rx_filtered"
let g_rx_pending = Dk_obs.Metrics.gauge "device.nic.rx_pending"
let g_tx_inflight = Dk_obs.Metrics.gauge "device.nic.tx_inflight"

let no_lookup (_ : string) : string option = None

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  fault : Fault.t;
  mac : int;
  programmable : bool;
  db : Doorbell.t;
  ctrl_db : Doorbell.t;
  rxq : string Dk_util.Bqueue.t;
  tx_capacity : int;
  mutable tx_inflight : int;
  mutable rx_filter : Prog.filter option;
  mutable rx_map : Prog.map option;
  mutable rx_pipeline : Prog.pipeline;
  mutable table : Table.t option;
  mutable lookup_fn : string -> string option;
  mutable steer : (queue:int -> string -> unit) option;
  mutable uplink : (src:int -> dst:int -> departed:int64 -> string -> unit) option;
  mutable rx_notify : unit -> unit;
  mutable tx_frames : int;
  mutable tx_bytes : int;
  mutable tx_rejected : int;
  mutable rx_frames : int;
  mutable rx_bytes : int;
  mutable rx_dropped : int;
  mutable rx_filtered : int;
  mutable rx_mapped : int;
  mutable rx_responded : int;
  mutable rx_steered : int;
}

let create ~engine ~cost ?(fault = Fault.default) ~mac ?(rx_capacity = 1024)
    ?(tx_capacity = 1024) ?(programmable = false) () =
  let ctrl_db = Doorbell.create ~engine ~cost ~name:"nic.ctrl.doorbells" () in
  (* The control queue is a correctness channel (SET invalidations ride
     it): it never coalesces, so a submitted op completes synchronously
     before the submitting host call returns. *)
  Doorbell.set_window ctrl_db 0L;
  let t =
    {
      engine;
      cost;
      fault;
      mac;
      programmable;
      db = Doorbell.create ~engine ~cost ~name:"nic.tx.doorbells" ();
      ctrl_db;
      rxq = Dk_util.Bqueue.create rx_capacity;
      tx_capacity;
      tx_inflight = 0;
      rx_filter = None;
      rx_map = None;
      rx_pipeline = [];
      table = None;
      lookup_fn = no_lookup;
      steer = None;
      uplink = None;
      rx_notify = (fun () -> ());
      tx_frames = 0;
      tx_bytes = 0;
      tx_rejected = 0;
      rx_frames = 0;
      rx_bytes = 0;
      rx_dropped = 0;
      rx_filtered = 0;
      rx_mapped = 0;
      rx_responded = 0;
      rx_steered = 0;
    }
  in
  (* One closure per NIC, built here rather than per frame. *)
  t.lookup_fn <-
    (fun k -> match t.table with Some tbl -> Table.lookup tbl k | None -> None);
  t

let mac t = t.mac
let programmable t = t.programmable

let set_rx_filter t prog =
  if t.programmable then begin
    t.rx_filter <- prog;
    Ok ()
  end
  else Error `Not_programmable

let set_rx_map t prog =
  if t.programmable then begin
    t.rx_map <- prog;
    Ok ()
  end
  else Error `Not_programmable

let set_rx_pipeline t p =
  if t.programmable then begin
    t.rx_pipeline <- p;
    Ok ()
  end
  else Error `Not_programmable

let rx_pipeline t = t.rx_pipeline

let offload_enable t ?policy ?obs_prefix ~capacity ~max_value () =
  if not t.programmable then Error `Not_programmable
  else
    match t.table with
    | Some tbl -> Ok tbl
    | None ->
        let tbl = Table.create ?policy ?obs_prefix ~capacity ~max_value () in
        t.table <- Some tbl;
        Ok tbl

let offload_table t = t.table
let set_rx_steer t f = t.steer <- Some f

(* ---- host -> device control queue ----
   Table writes from the host travel over their own doorbell
   ([nic.ctrl.doorbells], zero window: see [create]), so a control op
   has completed on the device before the submitting call returns —
   the ordering the no-stale-GET invariant rests on. *)

let ctrl t f =
  match t.table with
  | None -> None
  | Some tbl ->
      let out = ref None in
      Doorbell.submit t.ctrl_db (fun () -> out := Some (f tbl));
      !out
  [@@hot.alloc
    "one result cell + thunk per control-queue op; the kv SET/DEL path \
     pays it alongside its doorbell, never the per-frame rx path"]

let ctrl_insert t k v =
  match ctrl t (fun tbl -> Table.insert tbl k v) with
  | Some r -> r
  | None -> Error `Rejected
  [@@hot.alloc "control-queue closure (see ctrl)"]

let ctrl_update t k v =
  match ctrl t (fun tbl -> Table.update tbl k v) with
  | Some r -> r
  | None -> false
  [@@hot.alloc "control-queue closure (see ctrl)"]

let ctrl_invalidate t k =
  match ctrl t (fun tbl -> Table.invalidate tbl k) with
  | Some r -> r
  | None -> false
  [@@hot.alloc "control-queue closure (see ctrl)"]

let ctrl_doorbells t = Doorbell.rings t.ctrl_db

(* The tx descriptor body: DMA then uplink. [transmit] reaches it
   through the doorbell; the device-side respond path calls it
   directly — a NIC answering from its own table rings no host
   doorbell (that is the point of the offload). *)
let tx_start t ~dst frame =
  t.tx_inflight <- t.tx_inflight + 1;
  Dk_obs.Metrics.gauge_add g_tx_inflight 1;
  let len = String.length frame in
  let departed =
    Int64.add (Dk_sim.Engine.now t.engine) (Dk_sim.Cost.dma_ns t.cost len)
  in
  let finish () =
    t.tx_inflight <- t.tx_inflight - 1;
    t.tx_frames <- t.tx_frames + 1;
    t.tx_bytes <- t.tx_bytes + len;
    Dk_obs.Metrics.gauge_add g_tx_inflight (-1);
    Dk_obs.Metrics.incr m_tx_frames;
    Dk_obs.Metrics.add m_tx_bytes len;
    (* Injected tx drop: the DMA completed (the host paid for it)
       but the frame dies at the PHY and never reaches the
       fabric. *)
    if Fault.fire t.fault Fault.Nic_tx_drop ~now:(Dk_sim.Engine.now t.engine)
    then ()
    else
      match t.uplink with
      | Some send -> send ~src:t.mac ~dst ~departed frame
      | None -> ()
  in
  ignore (Dk_sim.Engine.at t.engine departed finish)
  [@@hot.alloc
    "the DMA-completion event is the sim's stand-in for descriptor \
     writes"]

let tx_ring_full t =
  t.tx_rejected <- t.tx_rejected + 1;
  Dk_obs.Metrics.incr m_tx_rejected;
  Dk_obs.Flight.recordf Dk_obs.Flight.default
    ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop
    "nic %x tx ring full (%d in flight)" t.mac t.tx_inflight

let transmit t ~dst frame =
  if t.tx_inflight >= t.tx_capacity then begin
    tx_ring_full t;
    false
  end
  else begin
    (* The CPU pays only for the doorbell (via the coalescing stage);
       the DMA engine does the rest. The departure time is fixed when
       the doorbell fires (absolute), so that late event execution —
       the clock having been consumed past this point — cannot reorder
       frames on the wire. Under a coalescing window the ring-capacity
       check above sees the pre-flush inflight count. *)
    Doorbell.submit t.db (fun () -> tx_start t ~dst frame);
    true
  end
  [@@hot.alloc
    "the staged tx thunk and its DMA-completion event are the sim's \
     stand-in for descriptor writes; the host CPU pays only the doorbell"]

(* Device-originated tx (pipeline [Respond]): same ring-capacity check,
   DMA model and tx fault site as [transmit], but no doorbell — no host
   CPU is involved. *)
let device_transmit t ~dst frame =
  if t.tx_inflight >= t.tx_capacity then begin
    tx_ring_full t;
    false
  end
  else begin
    tx_start t ~dst frame;
    true
  end

let rec transmit_count t ~dst frames acc =
  match frames with
  | [] -> acc
  | frame :: rest ->
      transmit_count t ~dst rest (if transmit t ~dst frame then acc + 1 else acc)

let transmit_many t ~dst frames =
  Doorbell.group t.db (fun () -> transmit_count t ~dst frames 0)
  [@@hot.alloc "one group thunk per batch, amortized across its frames"]

let set_tx_window t ns = Doorbell.set_window t.db ns
let tx_doorbells t = Doorbell.rings t.db

let enqueue_rx t frame =
  if Dk_util.Bqueue.push t.rxq frame then begin
    t.rx_frames <- t.rx_frames + 1;
    t.rx_bytes <- t.rx_bytes + String.length frame;
    Dk_obs.Metrics.incr m_rx_frames;
    Dk_obs.Metrics.add m_rx_bytes (String.length frame);
    Dk_obs.Metrics.gauge_add g_rx_pending 1;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Enqueue
      "nic %x rx %dB (ring %d)" t.mac (String.length frame)
      (Dk_util.Bqueue.length t.rxq);
    t.rx_notify ()
  end
  else begin
    t.rx_dropped <- t.rx_dropped + 1;
    Dk_obs.Metrics.incr m_rx_dropped;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop
      "nic %x rx ring full, frame dropped (%dB)" t.mac (String.length frame)
  end

(* Toplevel (not a local closure inside [receive]): the filter/map
   stage runs once per delivered frame, and the plain path — no program
   loaded — must stay allocation-free. *)
let process_filter_map t frame =
  let keep =
    match t.rx_filter with
    | None -> true
    | Some p -> Prog.eval_pred p frame
  in
  if not keep then begin
    t.rx_filtered <- t.rx_filtered + 1;
    Dk_obs.Metrics.incr m_rx_filtered
  end
  else
    let frame =
      match t.rx_map with
      | None -> frame
      | Some m ->
          t.rx_mapped <- t.rx_mapped + 1;
          Prog.eval_map m frame
    in
    enqueue_rx t frame

(* Pipeline first (when loaded), then the classic filter/map pair on
   whatever the pipeline delivers. A [Responded] verdict is re-checked
   against the raw frame ([Udp_frame.reply] verifies both checksums):
   a corrupt frame that reached a table hit anyway falls through to the
   host, whose stack will reject it — the device never answers for a
   key it cannot trust. *)
let process_rx t frame =
  match t.rx_pipeline with
  | [] -> process_filter_map t frame
  | p -> (
      match Prog.eval_pipeline ~lookup:t.lookup_fn p frame with
      | Prog.Deliver frame -> process_filter_map t frame
      | Prog.Dropped ->
          t.rx_filtered <- t.rx_filtered + 1;
          Dk_obs.Metrics.incr m_rx_filtered
      | Prog.Steered (q, frame) -> (
          match t.steer with
          | Some sink ->
              t.rx_steered <- t.rx_steered + 1;
              sink ~queue:q frame
          | None ->
              (* Single-queue NIC: every rx queue is this ring. *)
              process_filter_map t frame)
      | Prog.Responded payload -> (
          match Udp_frame.reply ~self_mac:t.mac ~request:frame ~payload with
          | Some (dst, reply) ->
              t.rx_responded <- t.rx_responded + 1;
              ignore (device_transmit t ~dst reply)
          | None -> process_filter_map t frame))

let receive t frame =
  let now = Dk_sim.Engine.now t.engine in
  (* Fault hooks sit at the wire edge, before any on-NIC program: a
     dropped frame never reaches the filter, a corrupted one is what
     the filter (and the host checksum) sees. *)
  if Fault.fire t.fault Fault.Nic_rx_drop ~now then begin
    t.rx_dropped <- t.rx_dropped + 1;
    Dk_obs.Metrics.incr m_rx_dropped
  end
  else begin
    let frame =
      match Fault.mangle t.fault Fault.Nic_rx_corrupt ~now frame with
      | Some corrupted -> corrupted
      | None -> frame
    in
    let copies = if Fault.fire t.fault Fault.Nic_rx_dup ~now then 2 else 1 in
    for _ = 1 to copies do
      match t.rx_pipeline with
      | _ :: _ as p ->
          (* Pipeline latency scales with the statically-priced
             footprint: one program element per 64 touched bytes, all
             on the device clock — no host CPU. *)
          let elems =
            1 + (Prog.pipeline_footprint p (String.length frame) / 64)
          in
          ignore
            (Dk_sim.Engine.after t.engine
               (Int64.mul t.cost.Dk_sim.Cost.device_prog_per_elem
                  (Int64.of_int elems))
               (fun () -> process_rx t frame))
      | [] ->
          let prog_active =
            (match t.rx_filter with Some _ -> true | None -> false)
            || match t.rx_map with Some _ -> true | None -> false
          in
          if prog_active then
            (* On-device program execution adds device latency but no CPU. *)
            ignore
              (Dk_sim.Engine.after t.engine
                 t.cost.Dk_sim.Cost.device_prog_per_elem (fun () ->
                   process_rx t frame))
          else process_rx t frame
    done
  end
  [@@hot.alloc
    "the deferral thunk exists only when an on-NIC program is loaded; \
     the plain rx path is closure-free"]

let poll_rx t =
  match Dk_util.Bqueue.pop t.rxq with
  | Some _ as hit ->
      Dk_obs.Metrics.gauge_add g_rx_pending (-1);
      hit
  | None -> None
let rx_pending t = Dk_util.Bqueue.length t.rxq

let stats t =
  {
    tx_frames = t.tx_frames;
    tx_bytes = t.tx_bytes;
    tx_rejected = t.tx_rejected;
    rx_frames = t.rx_frames;
    rx_bytes = t.rx_bytes;
    rx_dropped = t.rx_dropped;
    rx_filtered = t.rx_filtered;
    rx_mapped = t.rx_mapped;
    rx_responded = t.rx_responded;
    rx_steered = t.rx_steered;
  }

let set_uplink t f = t.uplink <- Some f
let set_rx_notify t f = t.rx_notify <- f
