(* Raw Ethernet/IPv4/UDP frame handling for the NIC rx pipeline.

   The device has no network stack — when a [Prog.Respond] verdict
   fires it must validate the request frame and mint the reply from raw
   bytes, exactly the byte layout [lib/net]'s Eth/Ipv4/Udp codecs emit
   and verify. Both request checksums are checked before a response is
   trusted: a corrupted frame (Nic_rx_corrupt) whose key bytes changed
   must fall through to the host (whose stack will reject it) rather
   than answer for the wrong key. *)

let header_bytes = 42 (* 14 eth + 20 ipv4 + 8 udp *)

let get_u16 s i = (Char.code s.[i] lsl 8) lor Char.code s.[i + 1]

let get_u48 s i =
  let hi = (Char.code s.[i] lsl 8) lor Char.code s.[i + 1] in
  let mid = (Char.code s.[i + 2] lsl 8) lor Char.code s.[i + 3] in
  let lo = (Char.code s.[i + 4] lsl 8) lor Char.code s.[i + 5] in
  (hi lsl 32) lor (mid lsl 16) lor lo

let set_u16 b i v =
  Bytes.set b i (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (i + 1) (Char.chr (v land 0xff))

let set_u48 b i v =
  set_u16 b i ((v lsr 32) land 0xffff);
  set_u16 b (i + 2) ((v lsr 16) land 0xffff);
  set_u16 b (i + 4) (v land 0xffff)

let set_u32 b i v =
  set_u16 b i ((v lsr 16) land 0xffff);
  set_u16 b (i + 2) (v land 0xffff)

let udp_pseudo_sum ~src_ip ~dst_ip ~len =
  let b = Bytes.create 12 in
  set_u32 b 0 src_ip;
  set_u32 b 4 dst_ip;
  Bytes.set b 8 '\000';
  Bytes.set b 9 '\017';
  set_u16 b 10 len;
  Dk_util.Checksum.ones_complement_sum b 0 12
  [@@hot.alloc "the 12-byte pseudo-header is a fixed-size scratch buffer"]

(* A frame is a valid UDP request for [self_mac] iff every layer
   parses, is addressed to us at L2, and both the IPv4 header checksum
   and the UDP checksum (pseudo-header included) verify. Returns the
   UDP payload offset/length on success. *)
let validate ~self_mac s =
  let n = String.length s in
  if n < header_bytes then None
  else if get_u48 s 0 <> self_mac then None
  else if get_u16 s 12 <> 0x0800 then None
  else if Char.code s.[14] <> 0x45 then None
  else if Char.code s.[23] <> 17 then None
  else
    let b = Bytes.unsafe_of_string s in
    if not (Dk_util.Checksum.verify b 14 20) then None
    else
      let total = get_u16 s 16 in
      if total < 28 || 14 + total > n then None
      else
        let ulen = get_u16 s 38 in
        if ulen < 8 || 34 + ulen > 14 + total then None
        else
          let pseudo =
            udp_pseudo_sum ~src_ip:(get_u16 s 26 lsl 16 lor get_u16 s 28)
              ~dst_ip:(get_u16 s 30 lsl 16 lor get_u16 s 32)
              ~len:ulen
          in
          let folded =
            Dk_util.Checksum.finish
              (Dk_util.Checksum.ones_complement_sum ~init:pseudo b 34 ulen)
          in
          if folded <> 0 then None else Some (header_bytes, ulen - 8)
  [@@hot.alloc "the validated (payload offset, length) view is one small tuple"]

let payload ~self_mac s =
  match validate ~self_mac s with
  | Some (off, len) -> Some (String.sub s off len)
  | None -> None
  [@@hot.alloc "copies the validated UDP payload out of the frame"]

let dst_port s = get_u16 s 36
let src_mac s = get_u48 s 6

(* Mint the reply frame for a validated request: swap src/dst at every
   layer, carry [payload], recompute lengths and both checksums so the
   requester's host stack accepts it. Returns [(dst_mac, frame)], or
   [None] when the request fails validation or the reply would not fit
   a 16-bit length field. *)
let reply ~self_mac ~request ~payload =
  match validate ~self_mac request with
  | None -> None
  | Some _ ->
      let plen = String.length payload in
      let ulen = 8 + plen in
      let total = 20 + ulen in
      if total > 0xffff then None
      else begin
        let b = Bytes.create (14 + total) in
        (* eth: back to the requester, from us *)
        set_u48 b 0 (get_u48 request 6);
        set_u48 b 6 self_mac;
        set_u16 b 12 0x0800;
        (* ipv4: swapped addresses, fresh checksum *)
        Bytes.set b 14 '\x45';
        Bytes.set b 15 '\000';
        set_u16 b 16 total;
        set_u16 b 18 (get_u16 request 18); (* reuse the request ident *)
        set_u16 b 20 0;
        Bytes.set b 22 '\064'; (* ttl 64 *)
        Bytes.set b 23 '\017';
        set_u16 b 24 0;
        Bytes.blit_string request 30 b 26 4; (* src ip := request dst ip *)
        Bytes.blit_string request 26 b 30 4; (* dst ip := request src ip *)
        set_u16 b 24 (Dk_util.Checksum.compute b 14 20);
        (* udp: swapped ports, pseudo-header checksum *)
        Bytes.blit_string request 36 b 34 2; (* src port := request dst *)
        Bytes.blit_string request 34 b 36 2; (* dst port := request src *)
        set_u16 b 38 ulen;
        set_u16 b 40 0;
        Bytes.blit_string payload 0 b header_bytes plen;
        let pseudo =
          udp_pseudo_sum
            ~src_ip:(get_u16 request 30 lsl 16 lor get_u16 request 32)
            ~dst_ip:(get_u16 request 26 lsl 16 lor get_u16 request 28)
            ~len:ulen
        in
        let csum =
          Dk_util.Checksum.finish
            (Dk_util.Checksum.ones_complement_sum ~init:pseudo b 34 ulen)
        in
        set_u16 b 40 (if csum = 0 then 0xffff else csum);
        Some (get_u48 request 6, Bytes.unsafe_to_string b)
      end
  [@@hot.alloc "the minted reply frame is the respond path's one product"]
