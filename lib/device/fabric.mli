(** Switched fabric connecting NICs.

    Models in-rack propagation plus line-rate serialisation (both from
    the {!Dk_sim.Cost} model) and, optionally, random frame loss — the
    failure-injection hook the TCP tests use. Delivery order between a
    given pair of NICs is FIFO (the event queue breaks timestamp ties
    by insertion order) unless jitter is configured. *)

type t

type stats = { delivered : int; lost : int; unrouted : int }

val broadcast : int
(** Destination address that delivers to every attached NIC except the
    sender. *)

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  ?fault:Dk_fault.Fault.t ->
  ?loss:float ->
  ?jitter_ns:int64 ->
  ?seed:int64 ->
  unit ->
  t
(** [fault] selects the fault-injection domain (defaults to the
    process-wide {!Dk_fault.Fault.default}); per-shard fabrics pass
    their own so injected faults stay within the shard.

    [jitter_ns] adds a uniform random 0..jitter extra delay per frame;
    jitter larger than the inter-frame gap reorders deliveries, which
    exercises receivers' reassembly paths. *)

val attach : t -> Nic.t -> unit
(** Connect a NIC; its transmissions now route through this fabric.
    @raise Invalid_argument on duplicate MAC. *)

val stats : t -> stats
val set_loss : t -> float -> unit
