(** Receive-side scaling: NIC-level flow steering for the multi-shard
    datapath.

    A 5-tuple is hashed (deterministic FNV-1a, the simulation's
    stand-in for hardware Toeplitz) into a configurable indirection
    table whose entries name per-core rx queues — shard ids in
    [Dk_shard_rt]. The table defaults to a round-robin spread and can
    be repointed entry by entry, which is how real deployments rebalance
    flows without rehashing.

    Steering is a pure function of the tuple: no engine, no RNG, no
    CPU cost — the device classifies, the host never sees frames for
    other cores' flows (§4.3). *)

type t

val create : queues:int -> ?table_size:int -> unit -> t
(** [create ~queues ()] builds an indirection table (default 128
    entries) spreading hash buckets round-robin over [queues] rx
    queues. Raises [Invalid_argument] on a non-positive queue or table
    size. *)

val queues : t -> int
val table_size : t -> int

val set_entry : t -> int -> int -> unit
(** [set_entry t i q] repoints indirection-table entry [i] at queue
    [q]. Raises [Invalid_argument] out of range. *)

val entry : t -> int -> int

val rebalance : t -> int array -> unit
(** [rebalance t weights] repoints the whole indirection table from the
    observed per-bucket flow weight ([weights.(i)] flows hash to bucket
    [i]) so per-queue load equalises — the software counterpart of
    [ethtool -X]. Deterministic greedy longest-processing-time
    placement. Raises [Invalid_argument] unless there is exactly one
    weight per table entry. *)

val hash_flow :
  src_ip:int -> src_port:int -> dst_ip:int -> dst_port:int -> proto:int -> int
(** Deterministic non-negative hash of the 5-tuple. *)

val select :
  t ->
  src_ip:int ->
  src_port:int ->
  dst_ip:int ->
  dst_port:int ->
  proto:int ->
  int
(** The rx queue (shard) owning the flow: [hash_flow] reduced through
    the indirection table. *)
