(* Bounded device-resident key/value table backing [Prog.Respond].

   The table models NIC SRAM: hard capacity and value-size caps fixed
   at creation, an LRU policy (deterministic: logical ticks, ties to
   the smallest key) or host-managed population where the device never
   admits or evicts on its own. Everything here runs on the device —
   host code reaches it only through the NIC control queue
   ([Nic.ctrl_*]); the dk-lint `offload-site` rule rejects other
   callers. *)

type policy = Lru | Host_managed

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;
  updates : int;
  evictions : int;
  invalidations : int;
  rejected : int;
}

type entry = { mutable value : string; mutable used : int }

type t = {
  policy : policy;
  capacity : int;
  max_value : int;
  entries : (string, entry) Hashtbl.t;
  mutable tick : int;
  (* Obs instruments are created here, per instance, never at module
     toplevel: a run that never enables offload must snapshot exactly
     as before (the committed BENCH baselines embed the snapshot). *)
  m_hits : Dk_obs.Metrics.counter;
  m_misses : Dk_obs.Metrics.counter;
  m_insertions : Dk_obs.Metrics.counter;
  m_evictions : Dk_obs.Metrics.counter;
  m_invalidations : Dk_obs.Metrics.counter;
  m_bytes : Dk_obs.Metrics.counter;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable updates : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable rejected : int;
}

let create ?(policy = Lru) ?(obs_prefix = "") ~capacity ~max_value () =
  if capacity <= 0 then invalid_arg "Table.create: capacity must be positive";
  if max_value <= 0 then invalid_arg "Table.create: max_value must be positive";
  let m name = Dk_obs.Metrics.counter (obs_prefix ^ "device.nic.offload." ^ name) in
  {
    policy;
    capacity;
    max_value;
    entries = Hashtbl.create (min capacity 1024);
    tick = 0;
    m_hits = m "hits";
    m_misses = m "misses";
    m_insertions = m "insertions";
    m_evictions = m "evictions";
    m_invalidations = m "invalidations";
    m_bytes = m "bytes";
    lookups = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    updates = 0;
    evictions = 0;
    invalidations = 0;
    rejected = 0;
  }

let policy t = t.policy
let capacity t = t.capacity
let max_value t = t.max_value
let length t = Hashtbl.length t.entries
let mem t k = Hashtbl.mem t.entries k

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let lookup t k =
  t.lookups <- t.lookups + 1;
  match Hashtbl.find_opt t.entries k with
  | Some e ->
      t.hits <- t.hits + 1;
      e.used <- next_tick t;
      Dk_obs.Metrics.incr t.m_hits;
      Dk_obs.Metrics.add t.m_bytes (String.length e.value);
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      Dk_obs.Metrics.incr t.m_misses;
      None

(* Deterministic LRU victim: the minimum (used, key) pair. The
   key-sorted walk (Dk_util.Det) makes the scan independent of
   hashtable iteration order, so replay sees the same victim;
   O(capacity log capacity) models a small SRAM table honestly
   enough. *)
let evict_lru t =
  let victim =
    Dk_util.Det.fold_sorted ~compare:String.compare
      (fun k (e : entry) acc ->
        match acc with
        | Some (_, bu) when bu <= e.used -> acc
        | _ -> Some (k, e.used))
      t.entries None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.entries k;
      t.evictions <- t.evictions + 1;
      Dk_obs.Metrics.incr t.m_evictions
  | None -> ()

let reject t =
  t.rejected <- t.rejected + 1;
  Error `Rejected

let insert t k v =
  if String.length v > t.max_value then reject t
  else
    match Hashtbl.find_opt t.entries k with
    | Some e ->
        e.value <- v;
        e.used <- next_tick t;
        t.updates <- t.updates + 1;
        Ok ()
    | None ->
        if Hashtbl.length t.entries >= t.capacity then begin
          match t.policy with
          | Host_managed -> reject t
          | Lru ->
              evict_lru t;
              Hashtbl.replace t.entries k { value = v; used = next_tick t };
              t.insertions <- t.insertions + 1;
              Dk_obs.Metrics.incr t.m_insertions;
              Ok ()
        end
        else begin
          Hashtbl.replace t.entries k { value = v; used = next_tick t };
          t.insertions <- t.insertions + 1;
          Dk_obs.Metrics.incr t.m_insertions;
          Ok ()
        end

let update t k v =
  if String.length v > t.max_value then begin
    (* Too large to stay resident: drop the entry rather than serve the
       stale previous value. *)
    if Hashtbl.mem t.entries k then begin
      Hashtbl.remove t.entries k;
      t.invalidations <- t.invalidations + 1;
      Dk_obs.Metrics.incr t.m_invalidations
    end;
    ignore (reject t);
    false
  end
  else
    match Hashtbl.find_opt t.entries k with
    | Some e ->
        e.value <- v;
        e.used <- next_tick t;
        t.updates <- t.updates + 1;
        true
    | None -> false

let invalidate t k =
  match Hashtbl.find_opt t.entries k with
  | Some _ ->
      Hashtbl.remove t.entries k;
      t.invalidations <- t.invalidations + 1;
      Dk_obs.Metrics.incr t.m_invalidations;
      true
  | None -> false

let clear t =
  let n = Hashtbl.length t.entries in
  Hashtbl.reset t.entries;
  t.invalidations <- t.invalidations + n;
  Dk_obs.Metrics.add t.m_invalidations n

let stats t =
  {
    lookups = t.lookups;
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    updates = t.updates;
    evictions = t.evictions;
    invalidations = t.invalidations;
    rejected = t.rejected;
  }
