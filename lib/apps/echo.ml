module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Posix = Dk_kernel.Posix
module Mtcp = Dk_kernel.Mtcp
module Engine = Dk_sim.Engine

(* ---- Demikernel ---- *)

let rec demi_echo_conn demi qd =
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (function
        | Types.Popped sga ->
            (match Demi.push demi qd sga with
            | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
            | Error _ -> ());
            demi_echo_conn demi qd
        | Types.Failed _ -> (
            (* best-effort teardown: the peer is already gone *)
            match Demi.close demi qd with Ok () | Error _ -> ())
        | Types.Pushed | Types.Accepted _ -> ())

let rec demi_accept_loop demi lqd =
  match Demi.accept_async demi lqd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (function
        | Types.Accepted qd ->
            demi_echo_conn demi qd;
            demi_accept_loop demi lqd
        | Types.Failed _ -> ()
        | Types.Pushed | Types.Popped _ -> ())

let start_demi_server ~demi ~port =
  let ( let* ) = Result.bind in
  let* lqd = Demi.socket demi `Tcp in
  let* () = Demi.bind demi lqd ~port in
  let* () = Demi.listen demi lqd in
  demi_accept_loop demi lqd;
  Ok ()

let demi_rtt ~demi ~dst ~size ~rounds =
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Tcp in
  let* () = Demi.connect demi qd ~dst in
  let engine = Demi.engine demi in
  let hist = Dk_sim.Histogram.create () in
  let payload = String.make size 'e' in
  let failed = ref false in
  for _ = 1 to rounds do
    if not !failed then begin
      match Demi.sga_alloc demi payload with
      | Error _ -> failed := true
      | Ok sga -> (
          let t0 = Engine.now engine in
          match Demi.blocking_push demi qd sga with
          | Types.Pushed -> (
              match Demi.blocking_pop demi qd with
              | Types.Popped reply ->
                  Dk_sim.Histogram.record hist
                    (Int64.sub (Engine.now engine) t0);
                  Demi.sga_free demi reply;
                  Demi.sga_free demi sga
              | Types.Pushed | Types.Accepted _ | Types.Failed _ ->
                  failed := true)
          | Types.Popped _ | Types.Accepted _ | Types.Failed _ ->
              failed := true)
    end
  done;
  (match Demi.close demi qd with Ok () | Error _ -> ());
  if !failed then Error `Queue_closed else Ok hist

(* ---- POSIX ---- *)

let start_posix_server ~posix ~port =
  let lsock = Posix.socket posix in
  match Posix.listen posix lsock ~port with
  | Error e -> Error e
  | Ok () ->
      let epfd = Posix.epoll_create posix in
      (match Posix.epoll_add posix epfd lsock [ `In ] with
      | Ok () -> ()
      | Error _ -> ());
      let buf = Bytes.create 65536 in
      let rec loop () =
        Posix.epoll_wait_block posix epfd ~max:16 (fun events ->
            List.iter
              (fun (fd, _) ->
                if fd = lsock then begin
                  match Posix.accept posix lsock with
                  | Ok c -> ignore (Posix.epoll_add posix epfd c [ `In ])
                  | Error _ -> ()
                end
                else begin
                  (* echo raw bytes back *)
                  let rec drain () =
                    match Posix.read posix fd buf 0 (Bytes.length buf) with
                    | Ok 0 ->
                        Posix.epoll_del posix epfd fd;
                        Posix.close posix fd
                    | Ok n ->
                        ignore (Posix.write posix fd (Bytes.sub_string buf 0 n));
                        drain ()
                    | Error _ -> ()
                  in
                  drain ()
                end)
              events;
            loop ())
      in
      loop ();
      Ok ()

let posix_rtt ~posix ~engine ~dst ~size ~rounds =
  let fd = Posix.socket posix in
  match Posix.connect posix fd ~dst with
  | Error e -> Error e
  | Ok () ->
      if not (Engine.run_until engine (fun () -> Posix.connected posix fd))
      then Error `Connection_closed
      else begin
        let epfd = Posix.epoll_create posix in
        (match Posix.epoll_add posix epfd fd [ `In ] with
        | Ok () -> ()
        | Error _ -> ());
        let hist = Dk_sim.Histogram.create () in
        let payload = String.make size 'p' in
        let buf = Bytes.create (max size 1) in
        for _ = 1 to rounds do
          let t0 = Engine.now engine in
          let rec write_all data =
            if String.length data > 0 then
              match Posix.write posix fd data with
              | Ok n -> write_all (String.sub data n (String.length data - n))
              | Error `Again -> if Engine.step engine then write_all data
              | Error _ -> ()
          in
          write_all payload;
          let received = ref 0 in
          let rec await () =
            if !received < size then
              match Posix.read posix fd buf 0 size with
              | Ok 0 -> ()
              | Ok n ->
                  received := !received + n;
                  await ()
              | Error `Again ->
                  let woke = ref false in
                  Posix.epoll_wait_block posix epfd ~max:4 (fun _ ->
                      woke := true);
                  if Engine.run_until engine (fun () -> !woke) then await ()
              | Error _ -> ()
          in
          await ();
          Dk_sim.Histogram.record hist (Int64.sub (Engine.now engine) t0)
        done;
        Ok hist
      end

(* ---- mTCP ---- *)

let start_mtcp_server ~mtcp ~port =
  Mtcp.listen mtcp ~port ~on_accept:(fun conn ->
      Mtcp.set_on_readable conn (fun () ->
          let data = Mtcp.recv conn (Mtcp.recv_ready conn) in
          ignore (Mtcp.send conn data)))

let mtcp_rtt ~mtcp ~engine ~dst ~size ~rounds =
  let conn = Mtcp.connect mtcp ~dst in
  let connected = ref false in
  Mtcp.set_on_connect conn (fun () -> connected := true);
  ignore (Engine.run_until engine (fun () -> !connected));
  let hist = Dk_sim.Histogram.create () in
  let payload = String.make size 'm' in
  for _ = 1 to rounds do
    let t0 = Engine.now engine in
    ignore (Mtcp.send conn payload);
    let received = ref 0 in
    ignore
      (Engine.run_until engine (fun () ->
           let avail = Mtcp.recv_ready conn in
           if avail > 0 then begin
             let got = Mtcp.recv conn avail in
             received := !received + String.length got
           end;
           !received >= size));
    Dk_sim.Histogram.record hist (Int64.sub (Engine.now engine) t0)
  done;
  hist
