(** Canned simulation topologies shared by tests, examples and the
    benchmark harness: an engine + switched fabric with two or more
    hosts, each host exposing whichever interface a scenario needs
    (Demikernel runtime, POSIX kernel, or mTCP). *)

type host = {
  nic : Dk_device.Nic.t;
  stack : Dk_net.Stack.t;
  ip : Dk_net.Addr.ip;
}

val make_engine :
  ?fault:Dk_fault.Fault.t -> ?loss:float -> ?cost:Dk_sim.Cost.t -> unit ->
  Dk_sim.Engine.t * Dk_device.Fabric.t * Dk_sim.Cost.t
(** [fault] scopes the fabric to its own fault domain (defaults to the
    process-wide [Dk_fault.Fault.default]); a multi-shard run passes a
    per-shard domain so injected faults stay within one shard. *)

val add_host :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  fabric:Dk_device.Fabric.t ->
  index:int ->
  ip:string ->
  ?fault:Dk_fault.Fault.t ->
  ?programmable:bool ->
  ?kernel_stack:bool ->
  unit ->
  host
(** [kernel_stack] makes the host's stack charge the in-kernel
    per-packet cost (for POSIX baseline hosts). [fault] scopes the
    host's NIC to a per-shard fault domain. *)

val demi_of_host :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  host ->
  ?block:Dk_device.Block.t ->
  ?rdma:Dk_device.Rdma.t ->
  unit ->
  Demikernel.Demi.t

val posix_of_host :
  engine:Dk_sim.Engine.t -> cost:Dk_sim.Cost.t -> host -> Dk_kernel.Posix.t

val mtcp_of_host :
  engine:Dk_sim.Engine.t -> cost:Dk_sim.Cost.t -> host -> Dk_kernel.Mtcp.t

(** {2 One-call topologies} *)

type duo = {
  engine : Dk_sim.Engine.t;
  fabric : Dk_device.Fabric.t;
  cost : Dk_sim.Cost.t;
  a : host; (** 10.0.0.1 — conventionally the client *)
  b : host; (** 10.0.0.2 — conventionally the server *)
}

val two_hosts :
  ?fault:Dk_fault.Fault.t -> ?loss:float -> ?cost:Dk_sim.Cost.t ->
  ?programmable:bool -> ?kernel_stack:bool -> unit -> duo

val endpoint : host -> int -> Dk_net.Addr.endpoint
