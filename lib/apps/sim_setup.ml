module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Nic = Dk_device.Nic
module Fabric = Dk_device.Fabric
module Addr = Dk_net.Addr
module Stack = Dk_net.Stack

type host = { nic : Nic.t; stack : Stack.t; ip : Addr.ip }

let make_engine ?fault ?loss ?(cost = Cost.default) () =
  let engine = Engine.create () in
  let fabric = Fabric.create ~engine ~cost ?fault ?loss () in
  (engine, fabric, cost)

let add_host ~engine ~cost ~fabric ~index ~ip ?fault ?(programmable = false)
    ?(kernel_stack = false) () =
  let nic =
    Nic.create ~engine ~cost ?fault ~mac:(Addr.mac_of_index index)
      ~programmable ()
  in
  Fabric.attach fabric nic;
  let addr = Addr.ip_of_string ip in
  let pkt_cost =
    if kernel_stack then Some cost.Cost.kernel_net_per_pkt else None
  in
  let stack = Stack.create ~engine ~cost ~nic ~ip:addr ?pkt_cost () in
  { nic; stack; ip = addr }

let demi_of_host ~engine ~cost host ?block ?rdma () =
  Demikernel.Demi.create ~engine ~cost ~stack:host.stack ?block ?rdma ()

let posix_of_host ~engine ~cost host =
  Dk_kernel.Posix.create ~engine ~cost ~stack:host.stack ()

let mtcp_of_host ~engine ~cost host =
  Dk_kernel.Mtcp.create ~engine ~cost ~stack:host.stack ()

type duo = {
  engine : Engine.t;
  fabric : Fabric.t;
  cost : Cost.t;
  a : host;
  b : host;
}

let two_hosts ?fault ?loss ?cost ?(programmable = false)
    ?(kernel_stack = false) () =
  let engine, fabric, cost = make_engine ?fault ?loss ?cost () in
  let a =
    add_host ~engine ~cost ~fabric ~index:1 ~ip:"10.0.0.1" ?fault ~programmable
      ~kernel_stack ()
  in
  let b =
    add_host ~engine ~cost ~fabric ~index:2 ~ip:"10.0.0.2" ?fault ~programmable
      ~kernel_stack ()
  in
  { engine; fabric; cost; a; b }

let endpoint host port = Addr.endpoint host.ip port
