(* Open-loop load generation at 10^5+ connection scale.

   The trick that makes a million connections simulable: a modeled
   connection is four integers (an id, hashed on demand into a 5-tuple
   for RSS steering, a slow-reader bit, a home shard), not a fiber and
   not a TCP control block. Requests drawn for those connections are
   multiplexed over a small set of REAL Demikernel TCP connections per
   shard ("trunks"), so the service rate is whatever the actual
   datapath — TCP, NIC queues, waitsets, pools, doorbell windows — can
   sustain, while the offered side scales to any connection count.

   Open-loop discipline: every decision on the offered side (arrival
   times, which connection, which key, get/set, churn, incast victims)
   is drawn from seeded [Dk_sim.Rng] streams that the service side
   never touches. The service side (trunk pumps, completions) consumes
   those decisions but contributes no randomness and no feedback. The
   per-run [digest] folds the offered stream (relative arrival time,
   connection, key) and is therefore a checkable witness: change the
   cost model and the digest must not move.

   Overload is explicit, not accidental: each shard's pending-request
   queue is bounded at [qcap]; beyond it arrivals are shed and counted
   in [apps.loadgen.dropped]. Conservation holds by construction:
   offered = admitted + dropped, and after the run drains,
   admitted = completed.

   Clocking: stations live on per-shard engines driven by
   [Engine.run_group]. An arrival decided on shard [i] for a
   connection RSS steers to shard [j] is delivered by scheduling on
   [j]'s engine at the arrival timestamp — legal because the group
   scheduler never lets any engine's clock pass a pending event's
   timestamp, and exactly the NIC-delivers-to-owning-core semantics of
   the sharded datapath. *)

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Rng = Dk_sim.Rng
module Histogram = Dk_sim.Histogram
module Metrics = Dk_obs.Metrics
module Rss = Dk_device.Rss
module Addr = Dk_net.Addr
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Proto = Dk_apps.Proto
module Kv = Dk_apps.Kv
module Kv_app = Dk_apps.Kv_app
module Workload = Dk_apps.Workload
module Sim_setup = Dk_apps.Sim_setup
module Shard = Dk_shard_rt.Shard

let kv_port = 6379

(* Offload mode trunks are UDP sockets with fixed client-side ports:
   trunk k runs (client:40000+k) <-> (server:kv_port+k), one request
   outstanding per trunk, so responses correlate FIFO without tags. *)
let trunk_port k = 40000 + k

(* ---- seeded stream derivation (splitmix-style, pure) ---- *)

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let substream seed salt = mix64 (Int64.add seed (Int64.mul golden salt))

(* ---- a pending (admitted or queued) request ---- *)

type pendreq = { p_conn : int; p_born : int64; p_key : int; p_get : bool }

(* ---- per-shard station ---- *)

type station = {
  id : int;
  sh : Shard.t;
  eng : Engine.t;
  arr : Arrivals.t;
  wl : Workload.t;  (* key popularity stream *)
  rng : Rng.t;  (* connection-mix / churn stream *)
  mutable active : int array;  (* dense long-lived conn ids, swap-remove *)
  mutable n_active : int;
  pend : pendreq Queue.t;  (* bounded at qcap *)
  idle : Types.qd Queue.t;  (* parked trunks *)
  mutable shutting : bool;
  (* Offered-side tallies (mirrored into Dk_obs counters below; kept as
     plain fields too so stats are exact even when the shared registry
     carries residue from a calibration world). *)
  mutable m_offered : int;
  mutable m_admitted : int;
  mutable m_shed : int;
  mutable m_done : int;
  mutable m_inwin : int;  (* completions inside the offered window *)
  mutable m_churn : int;
  mutable m_stall : int;
  mutable m_digest : int64;
  lat : Histogram.t;
  c_offered : Metrics.counter;
  c_admitted : Metrics.counter;
  c_dropped : Metrics.counter;
  c_done : Metrics.counter;
  c_churn : Metrics.counter;
  g_qdepth : Metrics.gauge;
  g_stall : Metrics.gauge;
  h_lat : Metrics.hist;
}

type t = {
  cfg : Scenario.t;
  n : int;
  seed : int64;
  stations : station array;
  engines : Engine.t array;
  rss : Rss.t;
  value : string;  (* Set payload, fixed per run *)
  t0 : int64;  (* virtual time the offered window opens *)
  deadline : int64;  (* ... and closes (strict) *)
  rate_per_ns : float;  (* offered rate, ops per virtual ns *)
  inc_rng : Rng.t;  (* incast victim stream *)
  inc_wl : Workload.t;  (* incast key stream *)
  mutable inc_digest : int64;
  mutable eph : int;  (* next ephemeral (short-lived/churned) conn id *)
}

(* Instrument names: [apps.loadgen.*] single-shard, [shard<i>.apps.loadgen.*]
   multi-shard so [snapshot_with_shard_agg] synthesizes the totals. *)
let mname n id rest =
  if n = 1 then "apps.loadgen." ^ rest
  else Shard.obs_name id ("apps.loadgen." ^ rest)

(* Slow-reader bit: a pure hash of (seed, conn), not an RNG stream, so
   it never perturbs draw order however service interleaves. *)
let conn_is_slow t conn =
  if t.cfg.slow_frac <= 0.0 then false
  else
    let z = mix64 (Int64.add (Int64.mul golden (Int64.of_int (conn + 1))) t.seed) in
    let u =
      Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0
    in
    u < t.cfg.slow_frac

(* ---- RSS steering of modeled connections ---- *)

let flow_tuple c =
  let src_ip = Addr.ip_of_string "10.200.0.0" + c in
  let src_port = 40000 + (c land 0x3fff) in
  let dst_ip = Addr.ip_of_string "10.255.0.100" in
  (src_ip, src_port, dst_ip, kv_port, 6)

let rss_target rss c =
  let src_ip, src_port, dst_ip, dst_port, proto = flow_tuple c in
  Rss.select rss ~src_ip ~src_port ~dst_ip ~dst_port ~proto

(* Admission-time placement of the long-lived population, mirroring
   Runtime.place_flows: weigh the hash buckets, rebalance the
   indirection table (the `ethtool -X` move), then steer. *)
let place_conns rss ~conns =
  let weights = Array.make (Rss.table_size rss) 0 in
  for c = 0 to conns - 1 do
    let src_ip, src_port, dst_ip, dst_port, proto = flow_tuple c in
    let b =
      Rss.hash_flow ~src_ip ~src_port ~dst_ip ~dst_port ~proto
      mod Rss.table_size rss
    in
    weights.(b) <- weights.(b) + 1
  done;
  Rss.rebalance rss weights

(* ---- the served side: a local KV server per shard ---- *)

let rec serve_conn sh qd =
  let demi = Shard.demi_server sh in
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (function
        | Types.Popped sga ->
            Engine.consume (Shard.engine sh) (Shard.cost sh).Cost.app_request;
            (match Proto.request_of_sga sga with
            | None -> ()
            | Some req -> (
                let resp = Kv.apply_zero_copy (Shard.kv sh) req in
                match Demi.push demi qd resp with
                | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
                | Error _ -> ()));
            Dk_mem.Sga.free sga;
            serve_conn sh qd
        | Types.Failed _ -> (
            match Demi.close demi qd with Ok () | Error _ -> ())
        | Types.Pushed | Types.Accepted _ -> ())

let rec accept_loop sh lqd =
  let demi = Shard.demi_server sh in
  match Demi.accept_async demi lqd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (function
        | Types.Accepted qd ->
            serve_conn sh qd;
            accept_loop sh lqd
        | Types.Failed _ -> ()
        | Types.Pushed | Types.Popped _ -> ())

let start_server sh =
  let demi = Shard.demi_server sh in
  let ( let* ) = Result.bind in
  let* lqd = Demi.socket demi `Tcp in
  let* () = Demi.bind demi lqd ~port:kv_port in
  let* () = Demi.listen demi lqd in
  accept_loop sh lqd;
  Ok ()

let connect_client sh =
  let demi = Shard.demi_client sh in
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Tcp in
  let* () = Demi.connect demi qd ~dst:(Shard.server_endpoint sh kv_port) in
  Ok qd

let key_dist (scn : Scenario.t) =
  if scn.zipf_theta <= 0.0 then Workload.Uniform scn.keys
  else Workload.Zipf { n = scn.keys; theta = scn.zipf_theta }

(* ---- offload mode: UDP trunk servers + device-table population ----

   One Kv_app offload server per trunk port, all sharing the shard's KV
   store and the server NIC's single device-resident table. After the
   servers are up, the smallest hot-key prefix carrying [offload_hit]
   of the popularity mass is pushed into the table over the control
   queue: with SETs applied update-only (Kv_app), the resident set is
   pinned for the whole run, so the offered hit ratio tracks the
   prefix mass. *)

let offload_resident (scn : Scenario.t) =
  if not scn.offload then 0
  else Workload.hot_prefix (key_dist scn) ~mass:scn.offload_hit

let start_server_udp (scn : Scenario.t) n sh =
  let demi = Shard.demi_server sh in
  let prefix = if n = 1 then "" else Shard.obs_name (Shard.id sh) "" in
  let client_ip = (Shard.client_host sh).Sim_setup.ip in
  let ( let* ) = Result.bind in
  let rec go k =
    if k >= scn.trunks then Ok ()
    else
      let* srv =
        Kv_app.start_udp_offload_server ~demi ~port:(kv_port + k)
          ~kv:(Shard.kv sh) ~obs_prefix:prefix ~capacity:(max 16 scn.keys)
          ~max_value:(max 64 scn.value_size) ()
      in
      let* () = Kv_app.set_udp_peer srv (Addr.endpoint client_ip (trunk_port k)) in
      go (k + 1)
  in
  let* () = go 0 in
  let v = String.make scn.value_size 'v' in
  for i = 0 to offload_resident scn - 1 do
    match Demi.offload_insert demi (Workload.key_name i) v with
    | Ok () | Error `Rejected -> ()
  done;
  Ok ()

let connect_client_udp sh k =
  let demi = Shard.demi_client sh in
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Udp in
  let* () = Demi.bind demi qd ~port:(trunk_port k) in
  let* () = Demi.connect demi qd ~dst:(Shard.server_endpoint sh (kv_port + k)) in
  Ok qd

let preload (scn : Scenario.t) sh =
  (* Any key may be asked of any shard (the key space is global, the
     conn->shard map is RSS), so every shard's store holds them all. *)
  let v = String.make scn.value_size 'v' in
  for k = 0 to scn.keys - 1 do
    let (_ : bool) = Kv.set (Shard.kv sh) (Workload.key_name k) v in
    ()
  done

(* ---- trunk pump: issue, complete, pump the bounded queue ---- *)

let rec issue t j qd p =
  let st = t.stations.(j) in
  let demi = Shard.demi_client st.sh in
  let key = Workload.key_name p.p_key in
  let req = if p.p_get then Proto.Get key else Proto.Set (key, t.value) in
  let sga =
    if t.cfg.offload then
      Dk_mem.Sga.of_strings [ Proto.udp_request_string req ]
    else Proto.request_sga req
  in
  (match Demi.push demi qd sga with
  | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
  | Error _ -> ());
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (function
        | Types.Popped reply ->
            Dk_mem.Sga.free reply;
            let now = Engine.now st.eng in
            let dt = Int64.sub now p.p_born in
            Histogram.record st.lat dt;
            Metrics.observe st.h_lat dt;
            st.m_done <- st.m_done + 1;
            if Int64.compare now t.deadline <= 0 then
              st.m_inwin <- st.m_inwin + 1;
            Metrics.incr st.c_done;
            if conn_is_slow t p.p_conn then begin
              (* Slow reader: the response sits undrained, stalling the
                 trunk — head-of-line pressure the queue then feels. *)
              st.m_stall <- st.m_stall + 1;
              Metrics.gauge_add st.g_stall 1;
              let (_ : Engine.timer) =
                Engine.after st.eng t.cfg.slow_delay_ns (fun () ->
                    st.m_stall <- st.m_stall - 1;
                    Metrics.gauge_add st.g_stall (-1);
                    pump t j qd)
              in
              ()
            end
            else pump t j qd
        | Types.Failed _ -> (
            match Demi.close demi qd with Ok () | Error _ -> ())
        | Types.Pushed | Types.Accepted _ -> ())

and pump t j qd =
  let st = t.stations.(j) in
  if Queue.is_empty st.pend then
    if st.shutting then (
      match Demi.close (Shard.demi_client st.sh) qd with
      | Ok () | Error _ -> ())
    else Queue.push qd st.idle
  else begin
    let p = Queue.pop st.pend in
    Metrics.gauge_add st.g_qdepth (-1);
    issue t j qd p
  end

(* Admission: idle trunk -> issue now; room in the queue -> park the
   request; full queue -> shed. This is the only place load is refused,
   and it is counted. *)
let enqueue t j p =
  let st = t.stations.(j) in
  st.m_offered <- st.m_offered + 1;
  Metrics.incr st.c_offered;
  if not (Queue.is_empty st.idle) then begin
    st.m_admitted <- st.m_admitted + 1;
    Metrics.incr st.c_admitted;
    issue t j (Queue.pop st.idle) p
  end
  else if Queue.length st.pend >= t.cfg.qcap then begin
    st.m_shed <- st.m_shed + 1;
    Metrics.incr st.c_dropped
  end
  else begin
    st.m_admitted <- st.m_admitted + 1;
    Metrics.incr st.c_admitted;
    Queue.push p st.pend;
    Metrics.gauge_add st.g_qdepth 1
  end

(* Deliver an offered request to the shard that owns its connection, on
   that shard's clock, at the arrival timestamp. *)
let deliver t j p =
  let (_ : Engine.timer) =
    Engine.at t.engines.(j) p.p_born (fun () -> enqueue t j p)
  in
  ()

(* ---- the offered side: arrivals, churn, incast ---- *)

let fresh_conn t =
  let c = t.eph in
  t.eph <- t.eph + 1;
  c

let digest_mix d ~rel ~conn ~key =
  mix64
    (Int64.logxor d
       (Int64.add rel
          (Int64.mul golden (Int64.of_int ((conn * 2_097_169) + key)))))

let rec arrival_fire t i ts =
  let st = t.stations.(i) in
  let conn, target =
    if Rng.float st.rng < t.cfg.short_frac || st.n_active = 0 then
      (* a fresh short-lived flow; the NIC steers it by 5-tuple *)
      let c = fresh_conn t in
      (c, rss_target t.rss c)
    else (st.active.(Rng.int st.rng st.n_active), i)
  in
  let key = Workload.next_key st.wl in
  let get = Workload.is_get st.wl ~read_fraction:t.cfg.read_fraction in
  st.m_digest <-
    digest_mix st.m_digest ~rel:(Int64.sub ts t.t0) ~conn ~key;
  deliver t target { p_conn = conn; p_born = ts; p_key = key; p_get = get };
  schedule_arrival t i ~now:ts

(* A station's share of the global offered rate follows its share of
   the long-lived population (churn moves it); zero-share stations
   re-probe on a fixed cadence rather than drawing from the RNG, so the
   stream stays aligned. *)
and schedule_arrival t i ~now =
  let st = t.stations.(i) in
  if Int64.compare now t.deadline >= 0 then ()
  else
    let share = float_of_int st.n_active /. float_of_int t.cfg.conns in
    match Arrivals.next st.arr ~now ~rate_per_ns:(t.rate_per_ns *. share) with
    | Some ts when Int64.compare ts t.deadline < 0 ->
        let (_ : Engine.timer) =
          Engine.at st.eng ts (fun () -> arrival_fire t i ts)
        in
        ()
    | Some _ -> ()
    | None ->
        (* Zero share right now (churn drained this station): re-probe on
           a fixed cadence, in logical time so the offered stream never
           reads the service-perturbed clock. *)
        let again = Int64.add now 100_000L in
        let (_ : Engine.timer) =
          Engine.at st.eng again (fun () -> schedule_arrival t i ~now:again)
        in
        ()

let rec churn_fire t i ts =
  let st = t.stations.(i) in
  if st.n_active > 0 then begin
    let k = Rng.int st.rng st.n_active in
    st.active.(k) <- st.active.(st.n_active - 1);
    st.n_active <- st.n_active - 1;
    st.m_churn <- st.m_churn + 1;
    Metrics.incr st.c_churn;
    (* The replacement flow hashes wherever RSS sends it — churn is
       exactly how per-shard load drifts off the rebalanced placement. *)
    let c = fresh_conn t in
    let j = rss_target t.rss c in
    let (_ : Engine.timer) =
      Engine.at t.engines.(j) ts (fun () ->
          let sj = t.stations.(j) in
          sj.active.(sj.n_active) <- c;
          sj.n_active <- sj.n_active + 1)
    in
    ()
  end;
  schedule_churn t i ~now:ts

and schedule_churn t i ~now =
  let st = t.stations.(i) in
  if t.cfg.churn_per_s <= 0.0 || Int64.compare now t.deadline >= 0 then ()
  else
    let rate =
      t.cfg.churn_per_s /. 1e9
      *. (float_of_int st.n_active /. float_of_int t.cfg.conns)
    in
    if rate <= 0.0 then begin
      let again = Int64.add now 100_000L in
      let (_ : Engine.timer) =
        Engine.at st.eng again (fun () -> schedule_churn t i ~now:again)
      in
      ()
    end
    else
      let gap = Float.max 1.0 (Rng.exponential st.rng (1.0 /. rate)) in
      let ts = Int64.add now (Int64.of_float gap) in
      if Int64.compare ts t.deadline < 0 then begin
        let (_ : Engine.timer) =
          Engine.at st.eng ts (fun () -> churn_fire t i ts)
        in
        ()
      end

(* Incast: every [incast_every_ns], [incast_fanin] requests land on one
   shard at the same instant, victims drawn from that shard's own
   population — the fan-in pattern that makes p99.9 diverge from p50. *)
let rec incast_fire t ~burst ts =
  let j = burst mod t.n in
  let st = t.stations.(j) in
  for _k = 1 to t.cfg.incast_fanin do
    let conn =
      if st.n_active = 0 then fresh_conn t
      else st.active.(Rng.int t.inc_rng st.n_active)
    in
    let key = Workload.next_key t.inc_wl in
    t.inc_digest <-
      digest_mix t.inc_digest ~rel:(Int64.sub ts t.t0) ~conn ~key;
    deliver t j { p_conn = conn; p_born = ts; p_key = key; p_get = true }
  done;
  schedule_incast t ~burst:(burst + 1) ~now:ts

and schedule_incast t ~burst ~now =
  if Int64.compare t.cfg.incast_every_ns 0L <= 0 || t.cfg.incast_fanin <= 0
  then ()
  else
    let ts = Int64.add now t.cfg.incast_every_ns in
    if Int64.compare ts t.deadline < 0 then begin
      let (_ : Engine.timer) =
        Engine.at t.engines.(0) ts (fun () -> incast_fire t ~burst ts)
      in
      ()
    end

(* ---- run stats ---- *)

type shard_stats = {
  ls_shard : int;
  ls_conns : int;  (* long-lived population at end of run *)
  ls_offered : int;
  ls_admitted : int;
  ls_shed : int;
  ls_done : int;
  ls_inwin : int;
  ls_churn : int;
  ls_qdepth_hwm : int;
  ls_stall_hwm : int;
  ls_lat : Histogram.t;
}

type stats = {
  l_scenario : string;
  l_shards : int;
  l_conns : int;
  l_seed : int64;
  l_capacity : float;  (* calibrated closed-loop ops/s; 0 if rate forced *)
  l_offered_rate : float;  (* ops/s *)
  l_duration_ns : int64;
  l_offered : int;
  l_admitted : int;
  l_shed : int;
  l_done : int;
  l_inwin : int;
  l_churn : int;
  l_goodput : float;  (* in-window completed ops/s *)
  l_digest : int64;
  l_lat : Histogram.t;
  l_per_shard : shard_stats array;
  l_offload : bool;
  l_offload_resident : int;  (* hot keys pre-inserted per shard *)
  l_offload_hits : int;  (* device-table hits, summed over shards *)
  l_offload_lookups : int;
  l_host_cpu_ns : int64;  (* total host busy ns, window open -> drained *)
}

(* ---- world construction ---- *)

let build_stations ~(scn : Scenario.t) ~n ~seed =
  let dist =
    if scn.zipf_theta <= 0.0 then Workload.Uniform scn.keys
    else Workload.Zipf { n = scn.keys; theta = scn.zipf_theta }
  in
  Array.init n (fun id ->
      let sh = Shard.create ~id ~programmable:scn.offload ~seed () in
      let arr_rng = Rng.create (substream seed (Int64.of_int (100 + id))) in
      {
        id;
        sh;
        eng = Shard.engine sh;
        arr = Arrivals.create ~spec:scn.arrival ~rng:arr_rng;
        wl =
          Workload.create ~seed:(substream seed (Int64.of_int (200 + id))) dist;
        rng = Rng.create (substream seed (Int64.of_int (300 + id)));
        active = Array.make scn.conns 0;
        n_active = 0;
        pend = Queue.create ();
        idle = Queue.create ();
        shutting = false;
        m_offered = 0;
        m_admitted = 0;
        m_shed = 0;
        m_done = 0;
        m_inwin = 0;
        m_churn = 0;
        m_stall = 0;
        m_digest = substream seed (Int64.of_int (400 + id));
        lat = Histogram.create ();
        c_offered = Metrics.counter (mname n id "offered");
        c_admitted = Metrics.counter (mname n id "admitted");
        c_dropped = Metrics.counter (mname n id "dropped");
        c_done = Metrics.counter (mname n id "completed");
        c_churn = Metrics.counter (mname n id "churned");
        g_qdepth = Metrics.gauge (mname n id "qdepth");
        g_stall = Metrics.gauge (mname n id "slow_stalls");
        h_lat = Metrics.hist (mname n id "latency_ns");
      })

(* ---- calibration ----

   Saturated ceiling of the same world shape (same shard count, same
   trunks, same key mix): each trunk keeps a window of requests
   outstanding — a plain ping-pong would under-read capacity by ~2x
   because back-to-back pushes amortize doorbells and per-packet costs
   exactly the way a backlogged open-loop queue does. Capacity is
   total ops over the slowest shard's elapsed time, and the scenario's
   [offered_mult] is applied to it, so "80% load" means the same thing
   on 1 shard and on 16. *)

let cal_ops_per_trunk = 200
let cal_window = 8

let rec cal_pop sh wl ~udp ~read_fraction ~value qd ~to_push ~to_pop ~fin =
  let demi = Shard.demi_client sh in
  if !to_pop <= 0 then begin
    (* Elapsed runs to the last completion, not engine drain: closing
       leaves TCP teardown timers (FIN, TIME_WAIT) on the clock that
       would otherwise halve the measured capacity. *)
    let now = Engine.now (Shard.engine sh) in
    if Int64.compare now !fin > 0 then fin := now;
    match Demi.close demi qd with Ok () | Error _ -> ()
  end
  else
    match Demi.pop demi qd with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch demi tok (function
          | Types.Popped reply ->
              Dk_mem.Sga.free reply;
              decr to_pop;
              if !to_push > 0 then begin
                decr to_push;
                cal_push sh wl ~udp ~read_fraction ~value qd
              end;
              cal_pop sh wl ~udp ~read_fraction ~value qd ~to_push ~to_pop ~fin
          | Types.Failed _ -> (
              match Demi.close demi qd with Ok () | Error _ -> ())
          | Types.Pushed | Types.Accepted _ -> ())

and cal_push sh wl ~udp ~read_fraction ~value qd =
  let demi = Shard.demi_client sh in
  let key = Workload.key_name (Workload.next_key wl) in
  let req =
    if Workload.is_get wl ~read_fraction then Proto.Get key
    else Proto.Set (key, value)
  in
  let sga =
    if udp then Dk_mem.Sga.of_strings [ Proto.udp_request_string req ]
    else Proto.request_sga req
  in
  match Demi.push demi qd sga with
  | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
  | Error _ -> ()

let cal_trunk sh wl ~udp ~read_fraction ~value qd ~fin =
  let w = min cal_window cal_ops_per_trunk in
  for _k = 1 to w do
    cal_push sh wl ~udp ~read_fraction ~value qd
  done;
  cal_pop sh wl ~udp ~read_fraction ~value qd
    ~to_push:(ref (cal_ops_per_trunk - w))
    ~to_pop:(ref cal_ops_per_trunk) ~fin

let calibrate ~(scn : Scenario.t) ~shards ~seed =
  let n = shards in
  let cseed = substream seed 0x5CA1AB1EL in
  let shs =
    Array.init n (fun id ->
        Shard.create ~id ~programmable:scn.offload ~seed:cseed ())
  in
  let engines = Array.map Shard.engine shs in
  Array.iter (preload scn) shs;
  Array.iter
    (fun sh ->
      match
        if scn.offload then start_server_udp scn n sh else start_server sh
      with
      | Ok () -> ()
      | Error _ -> invalid_arg "Loadgen.calibrate: server start failed")
    shs;
  let value = String.make scn.value_size 'v' in
  let dist = key_dist scn in
  let conns =
    Array.init n (fun i ->
        Array.init scn.trunks (fun k ->
            let wl =
              Workload.create
                ~seed:(substream cseed (Int64.of_int ((i * 1000) + k)))
                dist
            in
            let trunk =
              if scn.offload then connect_client_udp shs.(i) k
              else connect_client shs.(i)
            in
            match trunk with
            | Ok qd -> (i, qd, wl)
            | Error _ -> invalid_arg "Loadgen.calibrate: connect failed"))
    |> Array.to_list |> Array.concat
  in
  let starts = Array.map Engine.now engines in
  let fins = Array.map (fun s -> ref s) starts in
  Array.iter
    (fun (i, qd, wl) ->
      cal_trunk shs.(i) wl ~udp:scn.offload ~read_fraction:scn.read_fraction
        ~value qd ~fin:fins.(i))
    conns;
  Engine.run_group engines;
  let elapsed =
    Array.to_list (Array.mapi (fun i f -> Int64.sub !f starts.(i)) fins)
    |> List.fold_left (fun a x -> if Int64.compare x a > 0 then x else a) 1L
  in
  let total = n * scn.trunks * cal_ops_per_trunk in
  float_of_int total /. Int64.to_float elapsed *. 1e9

(* ---- the run ---- *)

let run ?drive ?offered_rate ~(scn : Scenario.t) ~shards ~seed () =
  let n = shards in
  if n <= 0 then invalid_arg "Loadgen.run: shards must be positive";
  let capacity, rate_s =
    match offered_rate with
    | Some r -> (0.0, r)
    | None ->
        let c = calibrate ~scn ~shards:n ~seed in
        (c, c *. scn.offered_mult)
  in
  let stations = build_stations ~scn ~n ~seed in
  let engines = Array.map (fun st -> st.eng) stations in
  let rss = Rss.create ~queues:n () in
  place_conns rss ~conns:scn.conns;
  for c = 0 to scn.conns - 1 do
    let st = stations.(rss_target rss c) in
    st.active.(st.n_active) <- c;
    st.n_active <- st.n_active + 1
  done;
  Array.iter
    (fun st ->
      preload scn st.sh;
      match
        if scn.offload then start_server_udp scn n st.sh
        else start_server st.sh
      with
      | Ok () -> ()
      | Error _ -> invalid_arg "Loadgen.run: server start failed")
    stations;
  Array.iter
    (fun st ->
      for k = 0 to scn.trunks - 1 do
        match
          if scn.offload then connect_client_udp st.sh k
          else connect_client st.sh
        with
        | Ok qd -> Queue.push qd st.idle
        | Error _ -> invalid_arg "Loadgen.run: connect failed"
      done)
    stations;
  (* The offered window opens once every shard is past setup: trunk
     connects block on their own engines, so clocks differ here. *)
  let t0 =
    Array.fold_left
      (fun a e -> if Int64.compare (Engine.now e) a > 0 then Engine.now e else a)
      0L engines
  in
  (* Host-CPU meter baseline: everything consumed from here on is the
     run's own busy time (setup/preload/population excluded). *)
  let host_cpu0 =
    Array.fold_left (fun a e -> Int64.add a (Engine.consumed e)) 0L engines
  in
  let deadline =
    Int64.add t0 (Int64.mul (Int64.of_int scn.duration_ms) 1_000_000L)
  in
  let t =
    {
      cfg = scn;
      n;
      seed;
      stations;
      engines;
      rss;
      value = String.make scn.value_size 'v';
      t0;
      deadline;
      rate_per_ns = rate_s /. 1e9;
      inc_rng = Rng.create (substream seed 500L);
      inc_wl =
        Workload.create ~seed:(substream seed 600L)
          (if scn.zipf_theta <= 0.0 then Workload.Uniform scn.keys
           else Workload.Zipf { n = scn.keys; theta = scn.zipf_theta });
      inc_digest = substream seed 700L;
      eph = scn.conns;
    }
  in
  Array.iter
    (fun st ->
      schedule_arrival t st.id ~now:t0;
      schedule_churn t st.id ~now:t0;
      (* At the deadline the offered window closes: busy trunks drain
         the queue then hang up; idle trunks hang up now. *)
      let (_ : Engine.timer) =
        Engine.at st.eng deadline (fun () ->
            st.shutting <- true;
            while not (Queue.is_empty st.idle) do
              match Demi.close (Shard.demi_client st.sh) (Queue.pop st.idle) with
              | Ok () | Error _ -> ()
            done)
      in
      ())
    stations;
  schedule_incast t ~burst:0 ~now:t0;
  (match drive with
  | Some f -> f engines
  | None -> Engine.run_group engines);
  let per_shard =
    Array.map
      (fun st ->
        {
          ls_shard = st.id;
          ls_conns = st.n_active;
          ls_offered = st.m_offered;
          ls_admitted = st.m_admitted;
          ls_shed = st.m_shed;
          ls_done = st.m_done;
          ls_inwin = st.m_inwin;
          ls_churn = st.m_churn;
          ls_qdepth_hwm = Metrics.gauge_hwm st.g_qdepth;
          ls_stall_hwm = Metrics.gauge_hwm st.g_stall;
          ls_lat = st.lat;
        })
      stations
  in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 per_shard in
  let merged =
    Array.fold_left
      (fun acc s -> Histogram.merge acc s.ls_lat)
      (Histogram.create ()) per_shard
  in
  let duration_ns = Int64.sub deadline t0 in
  let total_done = sum (fun s -> s.ls_done) in
  (* Goodput only counts work served while load was offered: completions
     in the post-deadline drain are late by definition, and counting
     them would let an overloaded run report goodput above capacity. *)
  let goodput =
    float_of_int (sum (fun s -> s.ls_inwin))
    /. Int64.to_float duration_ns *. 1e9
  in
  Metrics.set
    (Metrics.gauge "apps.loadgen.goodput_kops")
    (int_of_float (goodput /. 1e3));
  let digest =
    Array.fold_left
      (fun a st -> mix64 (Int64.logxor a st.m_digest))
      t.inc_digest stations
  in
  let host_cpu_ns =
    Int64.sub
      (Array.fold_left (fun a e -> Int64.add a (Engine.consumed e)) 0L engines)
      host_cpu0
  in
  let off_hits, off_lookups =
    Array.fold_left
      (fun (h, l) st ->
        match Demi.offload_stats (Shard.demi_server st.sh) with
        | None -> (h, l)
        | Some s ->
            (h + s.Dk_device.Table.hits, l + s.Dk_device.Table.lookups))
      (0, 0) stations
  in
  {
    l_scenario = scn.name;
    l_shards = n;
    l_conns = scn.conns;
    l_seed = seed;
    l_capacity = capacity;
    l_offered_rate = rate_s;
    l_duration_ns = duration_ns;
    l_offered = sum (fun s -> s.ls_offered);
    l_admitted = sum (fun s -> s.ls_admitted);
    l_shed = sum (fun s -> s.ls_shed);
    l_done = total_done;
    l_inwin = sum (fun s -> s.ls_inwin);
    l_churn = sum (fun s -> s.ls_churn);
    l_goodput = goodput;
    l_digest = digest;
    l_lat = merged;
    l_per_shard = per_shard;
    l_offload = scn.offload;
    l_offload_resident = offload_resident scn;
    l_offload_hits = off_hits;
    l_offload_lookups = off_lookups;
    l_host_cpu_ns = host_cpu_ns;
  }

(* ---- deterministic JSON export ---- *)

let json_hist h =
  Printf.sprintf
    "{\"count\":%d,\"mean\":%.1f,\"p50\":%Ld,\"p99\":%Ld,\"p999\":%Ld,\"max\":%Ld}"
    (Histogram.count h) (Histogram.mean h)
    (Histogram.quantile h 0.5)
    (Histogram.quantile h 0.99)
    (Histogram.quantile h 0.999)
    (Histogram.max h)

let stats_json s =
  let b = Buffer.create 1024 in
  (* The offload object appears only in offload mode, so non-offload
     output stays byte-identical to the pre-offload format. *)
  let offload_fields =
    if not s.l_offload then ""
    else
      Printf.sprintf
        "\"offload\":{\"resident\":%d,\"hits\":%d,\"lookups\":%d,\
         \"host_cpu_ns\":%Ld},"
        s.l_offload_resident s.l_offload_hits s.l_offload_lookups
        s.l_host_cpu_ns
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"scenario\":%S,\"shards\":%d,\"conns\":%d,\"seed\":%Ld,\
        \"capacity_ops_s\":%.3f,\"offered_ops_s\":%.3f,\"duration_ns\":%Ld,\
        \"offered\":%d,\"admitted\":%d,\"dropped\":%d,\"completed\":%d,\
        \"completed_in_window\":%d,\"churned\":%d,\"goodput_ops_s\":%.3f,\
        \"digest\":\"0x%016Lx\",\"latency_ns\":%s,%s\"per_shard\":["
       s.l_scenario s.l_shards s.l_conns s.l_seed s.l_capacity
       s.l_offered_rate s.l_duration_ns s.l_offered s.l_admitted s.l_shed
       s.l_done s.l_inwin s.l_churn s.l_goodput s.l_digest
       (json_hist s.l_lat) offload_fields);
  Array.iteri
    (fun i sh ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"shard\":%d,\"conns\":%d,\"offered\":%d,\"admitted\":%d,\
            \"dropped\":%d,\"completed\":%d,\"completed_in_window\":%d,\
            \"churned\":%d,\"qdepth_hwm\":%d,\"stall_hwm\":%d,\
            \"latency_ns\":%s}"
           sh.ls_shard sh.ls_conns sh.ls_offered sh.ls_admitted sh.ls_shed
           sh.ls_done sh.ls_inwin sh.ls_churn sh.ls_qdepth_hwm sh.ls_stall_hwm
           (json_hist sh.ls_lat)))
    s.l_per_shard;
  Buffer.add_string b "]}";
  Buffer.contents b
