(* The named scenario catalogue: each entry is a complete, seeded
   description of an offered workload — arrival process, key
   popularity, connection mix, churn, reader pathology, fan-in — at a
   scale (10^5 connections) where O(n) anywhere in the datapath shows
   up in the tail.

   [offered_mult] is relative to the calibrated closed-loop capacity of
   the world under test (see Loadgen.calibrate): 0.8 means "80% of what
   the datapath can serve", so the same scenario stresses a 1-shard and
   a 16-shard world equally instead of trivially flattening one and
   starving the other. *)

type t = {
  name : string;
  summary : string;
  conns : int;  (** concurrent modeled connections *)
  duration_ms : int;  (** virtual time arrivals keep coming *)
  offered_mult : float;  (** offered rate as a multiple of capacity *)
  arrival : Arrivals.spec;
  keys : int;  (** kv key-space size *)
  zipf_theta : float;  (** 0.0 = uniform keys *)
  read_fraction : float;
  value_size : int;
  short_frac : float;  (** fraction of arrivals on fresh one-shot conns *)
  churn_per_s : float;  (** long-lived conns replaced per virtual second *)
  slow_frac : float;  (** fraction of conns that are slow readers *)
  slow_delay_ns : int64;  (** trunk stall while a slow reader drains *)
  incast_every_ns : int64;  (** 0 = no incast source *)
  incast_fanin : int;  (** simultaneous requests per incast burst *)
  qcap : int;  (** per-shard pending-request bound (shed above) *)
  trunks : int;  (** real datapath connections multiplexed per shard *)
  offload : bool;
      (** serve kv over UDP trunks with the GET hot path offloaded to
          the (programmable) server NIC's device-resident table *)
  offload_hit : float;
      (** target device-hit fraction of GETs: the smallest hot-key
          prefix carrying this much popularity mass is pre-inserted
          into the device table (0.0 = cold table, every GET misses) *)
}

let base =
  {
    name = "base";
    summary = "";
    conns = 100_000;
    duration_ms = 40;
    offered_mult = 0.8;
    arrival = Arrivals.Poisson;
    keys = 4096;
    zipf_theta = 0.99;
    read_fraction = 0.9;
    value_size = 64;
    short_frac = 0.0;
    churn_per_s = 0.0;
    slow_frac = 0.0;
    slow_delay_ns = 0L;
    incast_every_ns = 0L;
    incast_fanin = 0;
    qcap = 4096;
    trunks = 8;
    offload = false;
    offload_hit = 0.0;
  }

let all =
  [
    {
      base with
      name = "poisson-steady";
      summary = "open-loop Poisson at 80% capacity, Zipf keys";
    };
    {
      base with
      name = "bursty-onoff";
      summary = "self-similar on/off (Pareto phases), same average rate";
      arrival =
        Arrivals.On_off
          { on_mean_ns = 200_000.0; off_mean_ns = 600_000.0; alpha = 1.5 };
      offered_mult = 0.7;
    };
    {
      base with
      name = "churn-heavy";
      summary = "half the arrivals on fresh flows, heavy conn turnover";
      offered_mult = 0.7;
      short_frac = 0.5;
      churn_per_s = 200_000.0;
    };
    {
      base with
      name = "incast";
      summary = "periodic fan-in bursts onto one shard + slow readers";
      offered_mult = 0.5;
      slow_frac = 0.1;
      slow_delay_ns = 200_000L;
      incast_every_ns = 1_000_000L;
      incast_fanin = 256;
    };
    {
      base with
      name = "overload";
      summary = "offered 2x capacity: shedding and queueing made explicit";
      offered_mult = 2.0;
      duration_ms = 20;
      (* Tight enough that sustained 2x overload visibly sheds instead
         of parking the whole backlog in a deep queue. *)
      qcap = 512;
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
let names () = List.map (fun s -> s.name) all

(* CI smoke scale: same shape, 10^4 conns and a short window, so the
   whole catalogue runs in seconds. *)
let smoke s =
  {
    s with
    conns = 10_000;
    duration_ms = min s.duration_ms 8;
    qcap = min s.qcap 1024;
  }
