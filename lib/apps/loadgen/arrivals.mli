(** Open-loop arrival processes over the virtual clock.

    Arrival times are a function of the seeded RNG and the clock only —
    no feedback from completions or queue depths — so offered load is
    independent of how the system under test is coping (the open-loop
    property the scenario tests pin). *)

type spec =
  | Poisson  (** memoryless arrivals at the offered rate *)
  | On_off of { on_mean_ns : float; off_mean_ns : float; alpha : float }
      (** bursty source: truncated-Pareto (tail index [alpha]) ON/OFF
          phases, arrivals only during ON at a rate compensated so the
          long-run average equals the offered rate *)

type t

val create : spec:spec -> rng:Dk_sim.Rng.t -> t

val next : t -> now:int64 -> rate_per_ns:float -> int64 option
(** Absolute virtual time of the next arrival strictly after [now] at
    the given offered rate, or [None] when the rate is zero (caller
    re-probes later — rates change as churn re-steers flows). *)
