(** Named load scenarios: complete seeded descriptions of an offered
    workload (arrival process, key popularity, connection mix, churn,
    reader pathology, incast fan-in) at 10^5-connection scale.

    [offered_mult] is relative to the calibrated capacity of the world
    under test ({!Loadgen.calibrate}), so the same scenario stresses
    any shard count equally. *)

type t = {
  name : string;
  summary : string;
  conns : int;
  duration_ms : int;
  offered_mult : float;
  arrival : Arrivals.spec;
  keys : int;
  zipf_theta : float;
  read_fraction : float;
  value_size : int;
  short_frac : float;
  churn_per_s : float;
  slow_frac : float;
  slow_delay_ns : int64;
  incast_every_ns : int64;
  incast_fanin : int;
  qcap : int;
  trunks : int;
  offload : bool;
  offload_hit : float;
}

val base : t
(** Template the catalogue derives from; also the base for ad-hoc
    scenarios in tests. *)

val all : t list
(** The catalogue: poisson-steady, bursty-onoff, churn-heavy, incast,
    overload. *)

val find : string -> t option
val names : unit -> string list

val smoke : t -> t
(** Same shape at CI scale: 10^4 connections, a few virtual ms. *)
