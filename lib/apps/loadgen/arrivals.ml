(* Open-loop arrival processes over the virtual clock.

   An open-loop generator decides arrival times from the clock and its
   seeded RNG alone — never from completions, queue depths or any
   other feedback from the system under test. That is what makes
   saturation visible: when offered rate exceeds service rate the
   backlog grows (and is shed), instead of the generator politely
   slowing down the way a closed-loop harness does.

   Two processes:
   - [Poisson]: exponential inter-arrival gaps at the offered rate —
     the steady memoryless baseline.
   - [On_off]: a heavy-tailed burst process. The source alternates
     between ON phases (arrivals at a compensated burst rate) and OFF
     phases (silence); phase lengths are truncated-Pareto draws, whose
     heavy tail is the classic self-similar traffic construction
     (aggregating many on-off sources with Pareto sojourns). The burst
     rate is scaled so the long-run average still equals the offered
     rate, which keeps goodput-vs-offered curves comparable across
     arrival models. *)

module Rng = Dk_sim.Rng

type spec =
  | Poisson
  | On_off of { on_mean_ns : float; off_mean_ns : float; alpha : float }

type t = {
  spec : spec;
  rng : Rng.t;
  (* On/off phase machine; unused for Poisson. *)
  mutable in_burst : bool;
  mutable phase_end : int64;
}

let create ~spec ~rng = { spec; rng; in_burst = false; phase_end = 0L }

let max64 a b = if Int64.compare a b >= 0 then a else b

(* Truncated Pareto with the given mean: heavy-tailed (index [alpha])
   but capped at 50x the mean so one extreme draw cannot silence a
   source for the whole run. *)
let pareto rng ~mean ~alpha =
  let xm = mean *. (alpha -. 1.0) /. alpha in
  let u = Rng.float rng in
  let raw = xm /. ((1.0 -. u) ** (1.0 /. alpha)) in
  Float.min raw (mean *. 50.0)

let exp_gap rng rate_per_ns =
  Float.max 1.0 (Rng.exponential rng (1.0 /. rate_per_ns))

(* [next t ~now ~rate_per_ns] is the absolute virtual time of the next
   arrival strictly after [now], or [None] when the offered rate is
   zero (the caller re-probes; rates move as churn re-steers flows). *)
let next t ~now ~rate_per_ns =
  if rate_per_ns <= 0.0 then None
  else
    match t.spec with
    | Poisson -> Some (Int64.add now (Int64.of_float (exp_gap t.rng rate_per_ns)))
    | On_off { on_mean_ns; off_mean_ns; alpha } ->
        let burst_rate =
          rate_per_ns *. (on_mean_ns +. off_mean_ns) /. on_mean_ns
        in
        (* Walk the phase machine forward from [now] until a draw lands
           inside an ON phase. Each iteration either returns or strictly
           advances the cursor, so this terminates. *)
        let rec walk cursor =
          if Int64.compare cursor t.phase_end >= 0 then begin
            t.in_burst <- not t.in_burst;
            let mean = if t.in_burst then on_mean_ns else off_mean_ns in
            let len = Float.max 1.0 (pareto t.rng ~mean ~alpha) in
            t.phase_end <-
              Int64.add (max64 cursor t.phase_end) (Int64.of_float len);
            walk cursor
          end
          else if not t.in_burst then walk t.phase_end
          else
            let at = Int64.add cursor (Int64.of_float (exp_gap t.rng burst_rate)) in
            if Int64.compare at t.phase_end <= 0 then at else walk t.phase_end
        in
        Some (walk now)
