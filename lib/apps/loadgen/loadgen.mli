(** Open-loop load generation at 10^5+ connection scale.

    Connections are modeled as lightweight ids (RSS-steered by a
    synthetic 5-tuple, slow-reader bit by pure hash); their requests
    are multiplexed over a small set of real Demikernel TCP trunks per
    shard, so the service rate is whatever the actual datapath
    sustains while the offered side scales to any connection count.

    Open-loop discipline: every offered-side decision draws from
    seeded [Dk_sim.Rng] streams the service side never touches, and
    the run digest folds the offered stream alone — change the cost
    model and the digest must not move. Overload sheds at the bounded
    per-shard queue and is counted in [apps.loadgen.dropped]
    ([shard<i>.apps.loadgen.dropped] multi-shard); conservation holds:
    offered = admitted + dropped, and admitted = completed once the
    run drains. *)

type shard_stats = {
  ls_shard : int;
  ls_conns : int;  (** long-lived population at end of run *)
  ls_offered : int;
  ls_admitted : int;
  ls_shed : int;
  ls_done : int;
  ls_inwin : int;  (** completions inside the offered window *)
  ls_churn : int;
  ls_qdepth_hwm : int;  (** bounded-memory witness: <= scenario qcap *)
  ls_stall_hwm : int;  (** slow-reader stalled trunks: <= trunks *)
  ls_lat : Dk_sim.Histogram.t;
}

type stats = {
  l_scenario : string;
  l_shards : int;
  l_conns : int;
  l_seed : int64;
  l_capacity : float;  (** calibrated closed-loop ops/s; 0 if rate forced *)
  l_offered_rate : float;  (** ops/s *)
  l_duration_ns : int64;  (** length of the offered window *)
  l_offered : int;
  l_admitted : int;
  l_shed : int;
  l_done : int;
  l_inwin : int;
  l_churn : int;
  l_goodput : float;
      (** in-window completed ops/s — drain-phase completions are late
          by definition and do not count, so an overloaded run's
          goodput flattens at capacity instead of tracking offered *)
  l_digest : int64;  (** offered-stream witness (open-loop invariant) *)
  l_lat : Dk_sim.Histogram.t;  (** merged born-to-completion latency *)
  l_per_shard : shard_stats array;
  l_offload : bool;  (** the run served kv over NIC-offloaded UDP trunks *)
  l_offload_resident : int;
      (** hot keys pre-inserted into each shard's device table *)
  l_offload_hits : int;  (** device-table GET hits, summed over shards *)
  l_offload_lookups : int;
  l_host_cpu_ns : int64;
      (** total host busy time ({!Dk_sim.Engine.consumed}) across all
          shard engines from window open to drain — device-served hits
          move goodput without moving this *)
}

val calibrate : scn:Scenario.t -> shards:int -> seed:int64 -> float
(** Closed-loop capacity (ops/s) of a throwaway world of the same
    shape; [Scenario.offered_mult] is applied to this. *)

val run :
  ?drive:(Dk_sim.Engine.t array -> unit) ->
  ?offered_rate:float ->
  scn:Scenario.t ->
  shards:int ->
  seed:int64 ->
  unit ->
  stats
(** Run one scenario. [offered_rate] (ops/s) skips calibration and
    forces the rate — the sweep and the tests use it. [drive] replaces
    [Engine.run_group] for the main run (N=1 identity tests drive
    [Engine.run] directly). *)

val stats_json : stats -> string
(** Deterministic single-line JSON: equal (scenario, shards, seed) runs
    render byte-identically. *)
