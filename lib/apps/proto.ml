type request = Get of string | Set of string * string | Del of string

type response = Value of string | Not_found | Stored | Deleted

let request_segments = function
  | Get key -> [ "G"; key ]
  | Set (key, value) -> [ "S"; key; value ]
  | Del key -> [ "D"; key ]

let request_of_segments = function
  | [ "G"; key ] -> Some (Get key)
  | [ "S"; key; value ] -> Some (Set (key, value))
  | [ "D"; key ] -> Some (Del key)
  | _ -> None

let response_segments = function
  | Value v -> [ "+"; v ]
  | Not_found -> [ "-" ]
  | Stored -> [ "!" ]
  | Deleted -> [ "x" ]

let response_of_segments = function
  | [ "+"; v ] -> Some (Value v)
  | [ "-" ] -> Some Not_found
  | [ "!" ] -> Some Stored
  | [ "x" ] -> Some Deleted
  | _ -> None

let segments_of_sga sga =
  List.map Dk_mem.Buffer.to_string (Dk_mem.Sga.segments sga)

let request_sga r = Dk_mem.Sga.of_strings (request_segments r)
let response_sga r = Dk_mem.Sga.of_strings (response_segments r)
let request_of_sga sga = request_of_segments (segments_of_sga sga)
let response_of_sga sga = response_of_segments (segments_of_sga sga)

let value_response_sga buf =
  Dk_mem.Sga.of_buffers [ Dk_mem.Buffer.of_string "+"; Dk_mem.Buffer.dup buf ]

(* ---- single-datagram (UDP) codec ----
   One flat string per request/response, chosen so a GET is exactly the
   segment encoding flattened ("G" ^ key) and a Value response is
   exactly "+" ^ value: a device pipeline that serves GETs from its
   table ([K_rest 1], hit prefix "+") produces byte-identical replies
   to the host path. SET carries a 2-byte big-endian key length so the
   key/value split is unambiguous in one segment. *)

let u16be n = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xff))

let udp_request_string = function
  | Get key -> "G" ^ key
  | Set (key, value) ->
      if String.length key > 0xffff then invalid_arg "Proto: key too long"
      else "S" ^ u16be (String.length key) ^ key ^ value
  | Del key -> "D" ^ key

let udp_request_of_string s =
  let n = String.length s in
  if n = 0 then None
  else
    match s.[0] with
    | 'G' -> Some (Get (String.sub s 1 (n - 1)))
    | 'D' -> Some (Del (String.sub s 1 (n - 1)))
    | 'S' ->
        if n < 3 then None
        else
          let klen = (Char.code s.[1] lsl 8) lor Char.code s.[2] in
          if 3 + klen > n then None
          else
            Some (Set (String.sub s 3 klen, String.sub s (3 + klen) (n - 3 - klen)))
    | _ -> None

let udp_response_string = function
  | Value v -> "+" ^ v
  | Not_found -> "-"
  | Stored -> "!"
  | Deleted -> "x"

let udp_response_of_string s =
  let n = String.length s in
  if n = 0 then None
  else
    match s.[0] with
    | '+' -> Some (Value (String.sub s 1 (n - 1)))
    | '-' when n = 1 -> Some Not_found
    | '!' when n = 1 -> Some Stored
    | 'x' when n = 1 -> Some Deleted
    | _ -> None
