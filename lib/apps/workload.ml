type key_dist = Uniform of int | Zipf of { n : int; theta : float }

type t = {
  rng : Dk_sim.Rng.t;
  dist : key_dist;
  (* For Zipf: cumulative distribution over ranks. *)
  cdf : float array;
}

let build_zipf_cdf n theta =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf

let create ?(seed = 7L) dist =
  let cdf =
    match dist with
    | Uniform _ -> [||]
    | Zipf { n; theta } ->
        if n <= 0 then invalid_arg "Workload.create";
        build_zipf_cdf n theta
  in
  { rng = Dk_sim.Rng.create seed; dist; cdf }

let next_key t =
  match t.dist with
  | Uniform n -> Dk_sim.Rng.int t.rng n
  | Zipf { n; _ } ->
      let u = Dk_sim.Rng.float t.rng in
      (* binary search for the first rank with cdf >= u *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
      done;
      !lo

let key_name i = Printf.sprintf "key-%08d" i

let hot_prefix dist ~mass =
  if mass <= 0.0 then 0
  else
    match dist with
    | Uniform n ->
        if mass >= 1.0 then n
        else min n (int_of_float (Float.ceil (mass *. float_of_int n)))
    | Zipf { n; theta } ->
        if mass >= 1.0 then n
        else begin
          let cdf = build_zipf_cdf n theta in
          (* cdf.(k) is the mass of the top k+1 ranks *)
          let k = ref 0 in
          while !k < n && cdf.(!k) < mass do incr k done;
          min n (!k + 1)
        end

let is_get t ~read_fraction = Dk_sim.Rng.float t.rng < read_fraction

let value t ~size =
  let tag = Dk_sim.Rng.int t.rng 1_000_000 in
  let prefix = Printf.sprintf "v%06d-" tag in
  if size <= String.length prefix then String.sub prefix 0 (max 0 size)
  else
    prefix
    ^ String.init (size - String.length prefix) (fun i ->
          Char.chr (Char.code 'a' + (i mod 26)))
