module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost

type server = {
  demi : Demi.t;
  kv : Kv.t;
  mutable served : int;
  mutable udp_qd : Types.qd option;
  udp_port : int option;
}

let app_work srv =
  Engine.consume (Demi.engine srv.demi) (Demi.cost srv.demi).Cost.app_request

let answer srv qd sga =
  app_work srv;
  (match Proto.request_of_sga sga with
  | Some req ->
      let resp = Kv.apply_zero_copy srv.kv req in
      (match Demi.push srv.demi qd resp with
      | Ok tok -> Demi.watch srv.demi tok (fun _ -> ())
      | Error _ -> ());
      srv.served <- srv.served + 1
  | None -> ());
  Dk_mem.Sga.free sga

let rec serve_conn srv qd =
  match Demi.pop srv.demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch srv.demi tok (function
        | Types.Popped sga ->
            answer srv qd sga;
            serve_conn srv qd
        | Types.Failed _ -> (
            (* best-effort teardown: the peer is already gone *)
            match Demi.close srv.demi qd with Ok () | Error _ -> ())
        | Types.Pushed | Types.Accepted _ -> ())

let rec accept_loop srv lqd =
  match Demi.accept_async srv.demi lqd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch srv.demi tok (function
        | Types.Accepted qd ->
            serve_conn srv qd;
            accept_loop srv lqd
        | Types.Failed _ -> ()
        | Types.Pushed | Types.Popped _ -> ())

let start_tcp_server ~demi ~port ~kv =
  let ( let* ) = Result.bind in
  let* lqd = Demi.socket demi `Tcp in
  let* () = Demi.bind demi lqd ~port in
  let* () = Demi.listen demi lqd in
  let srv = { demi; kv; served = 0; udp_qd = None; udp_port = None } in
  accept_loop srv lqd;
  Ok srv

let start_udp_server ~demi ~port ~kv =
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Udp in
  let* () = Demi.bind demi qd ~port in
  let srv = { demi; kv; served = 0; udp_qd = Some qd; udp_port = Some port } in
  serve_conn srv qd;
  Ok srv

let set_udp_peer srv peer =
  match srv.udp_qd with
  | Some qd -> Demi.connect srv.demi qd ~dst:peer
  | None -> Ok ()

let requests_served srv = srv.served

type client_stats = {
  ops : int;
  hits : int;
  misses : int;
  latency : Dk_sim.Histogram.t;
  elapsed_ns : int64;
}

let rpc demi qd sga =
  match Demi.blocking_push demi qd sga with
  | Types.Pushed -> (
      match Demi.blocking_pop demi qd with
      | Types.Popped resp -> Some resp
      | Types.Pushed | Types.Accepted _ | Types.Failed _ -> None)
  | Types.Popped _ | Types.Accepted _ | Types.Failed _ -> None

let run_tcp_client ~demi ~dst ~ops ~keys ~value_size ~read_fraction
    ?(zipf_theta = 0.99) ?(seed = 11L) () =
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Tcp in
  let* () = Demi.connect demi qd ~dst in
  let engine = Demi.engine demi in
  let wl = Workload.create ~seed (Workload.Zipf { n = keys; theta = zipf_theta }) in
  let latency = Dk_sim.Histogram.create () in
  let hits = ref 0 and misses = ref 0 in
  (* preload *)
  let preload_failed = ref false in
  for i = 0 to keys - 1 do
    if not !preload_failed then begin
      let req =
        Proto.Set (Workload.key_name i, Workload.value wl ~size:value_size)
      in
      match rpc demi qd (Proto.request_sga req) with
      | Some _ -> ()
      | None -> preload_failed := true
    end
  done;
  if !preload_failed then Error `Queue_closed
  else begin
    let start = Engine.now engine in
    let aborted = ref false in
    for _ = 1 to ops do
      if not !aborted then begin
        let key = Workload.key_name (Workload.next_key wl) in
        let req =
          if Workload.is_get wl ~read_fraction then Proto.Get key
          else Proto.Set (key, Workload.value wl ~size:value_size)
        in
        let t0 = Engine.now engine in
        match rpc demi qd (Proto.request_sga req) with
        | Some resp ->
            Dk_sim.Histogram.record latency (Int64.sub (Engine.now engine) t0);
            (match Proto.response_of_sga resp with
            | Some (Proto.Value _) -> incr hits
            | Some Proto.Not_found -> incr misses
            | Some (Proto.Stored | Proto.Deleted) | None -> ());
            Dk_mem.Sga.free resp
        | None -> aborted := true
      end
    done;
    if !aborted then Error `Queue_closed
    else
      Ok
        {
          ops;
          hits = !hits;
          misses = !misses;
          latency;
          elapsed_ns = Int64.sub (Engine.now engine) start;
        }
  end
