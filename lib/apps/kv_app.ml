module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Prog = Dk_device.Prog

type server = {
  demi : Demi.t;
  kv : Kv.t;
  mutable served : int;
  mutable udp_qd : Types.qd option;
  udp_port : int option;
  offloaded : bool;
  populate : bool;
  cpu_pipeline : Prog.pipeline;
      (* payload-level GET pipeline evaluated on the host when the NIC
         is not programmable; [] everywhere else *)
}

let app_work srv =
  Engine.consume (Demi.engine srv.demi) (Demi.cost srv.demi).Cost.app_request

let answer srv qd sga =
  app_work srv;
  (match Proto.request_of_sga sga with
  | Some req ->
      let resp = Kv.apply_zero_copy srv.kv req in
      (match Demi.push srv.demi qd resp with
      | Ok tok -> Demi.watch srv.demi tok (fun _ -> ())
      | Error _ -> ());
      srv.served <- srv.served + 1
  | None -> ());
  Dk_mem.Sga.free sga

let rec serve_conn srv qd =
  match Demi.pop srv.demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch srv.demi tok (function
        | Types.Popped sga ->
            answer srv qd sga;
            serve_conn srv qd
        | Types.Failed _ -> (
            (* best-effort teardown: the peer is already gone *)
            match Demi.close srv.demi qd with Ok () | Error _ -> ())
        | Types.Pushed | Types.Accepted _ -> ())

let rec accept_loop srv lqd =
  match Demi.accept_async srv.demi lqd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch srv.demi tok (function
        | Types.Accepted qd ->
            serve_conn srv qd;
            accept_loop srv lqd
        | Types.Failed _ -> ()
        | Types.Pushed | Types.Popped _ -> ())

let start_tcp_server ~demi ~port ~kv =
  let ( let* ) = Result.bind in
  let* lqd = Demi.socket demi `Tcp in
  let* () = Demi.bind demi lqd ~port in
  let* () = Demi.listen demi lqd in
  let srv =
    {
      demi;
      kv;
      served = 0;
      udp_qd = None;
      udp_port = None;
      offloaded = false;
      populate = false;
      cpu_pipeline = [];
    }
  in
  accept_loop srv lqd;
  Ok srv

let start_udp_server ~demi ~port ~kv =
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Udp in
  let* () = Demi.bind demi qd ~port in
  let srv =
    {
      demi;
      kv;
      served = 0;
      udp_qd = Some qd;
      udp_port = Some port;
      offloaded = false;
      populate = false;
      cpu_pipeline = [];
    }
  in
  serve_conn srv qd;
  Ok srv

(* ---- offloaded UDP server (single-datagram codec) ----

   Requests arrive as flat strings under the Proto UDP codec. When the
   NIC is programmable, GET hits never reach this loop — the device
   answers them from its resident table; only misses, SETs and DELs
   land here. Device-table coherence is maintained *before* a mutating
   response is pushed (over the synchronous control queue), so a client
   that has seen a SET acknowledged can never read a stale device
   entry. Without a programmable NIC the same pipeline stages run here
   on the host, priced by their static footprint. *)

let push_flat srv qd s =
  match Demi.push srv.demi qd (Dk_mem.Sga.of_strings [ s ]) with
  | Ok tok -> Demi.watch srv.demi tok (fun _ -> ())
  | Error _ -> ()

let answer_udp srv qd sga =
  let payload =
    String.concat "" (List.map Dk_mem.Buffer.to_string (Dk_mem.Sga.segments sga))
  in
  Dk_mem.Sga.free sga;
  let fallback_hit =
    match srv.cpu_pipeline with
    | [] -> None
    | p -> (
        Engine.consume (Demi.engine srv.demi)
          (Demi.pipeline_cpu_ns srv.demi p (String.length payload));
        match Prog.eval_pipeline ~lookup:(Kv.get_copy srv.kv) p payload with
        | Prog.Responded r -> Some r
        | Prog.Deliver _ | Prog.Dropped | Prog.Steered _ -> None)
  in
  match fallback_hit with
  | Some raw ->
      push_flat srv qd raw;
      srv.served <- srv.served + 1
  | None -> (
      app_work srv;
      match Proto.udp_request_of_string payload with
      | None -> ()
      | Some req ->
          let resp = Kv.apply srv.kv req in
          (match (req, resp) with
          | Proto.Set (k, v), Proto.Stored ->
              ignore (Demi.offload_update srv.demi k v : bool)
          | Proto.Del k, _ ->
              ignore (Demi.offload_invalidate srv.demi k : bool)
          | Proto.Get k, Proto.Value v when srv.populate && srv.offloaded -> (
              match Demi.offload_insert srv.demi k v with
              | Ok () | Error `Rejected -> ())
          | _ -> ());
          push_flat srv qd (Proto.udp_response_string resp);
          srv.served <- srv.served + 1)

let rec serve_udp srv qd =
  match Demi.pop srv.demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch srv.demi tok (function
        | Types.Popped sga ->
            answer_udp srv qd sga;
            serve_udp srv qd
        | Types.Failed _ -> (
            match Demi.close srv.demi qd with Ok () | Error _ -> ())
        | Types.Pushed | Types.Accepted _ -> ())

let start_udp_offload_server ~demi ~port ~kv ?policy ?obs_prefix ?capacity
    ?(max_value = 4096) ?(populate = false) () =
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Udp in
  let* () = Demi.bind demi qd ~port in
  let offloaded =
    match
      Demi.offload_udp_get demi qd ?policy ?obs_prefix ?capacity ~max_value ()
    with
    | Ok () -> true
    | Error _ -> false
  in
  let cpu_pipeline = if offloaded then [] else Demi.get_pipeline ~max_value in
  let srv =
    {
      demi;
      kv;
      served = 0;
      udp_qd = Some qd;
      udp_port = Some port;
      offloaded;
      populate;
      cpu_pipeline;
    }
  in
  serve_udp srv qd;
  Ok srv

let server_offloaded srv = srv.offloaded

let set_udp_peer srv peer =
  match srv.udp_qd with
  | Some qd -> Demi.connect srv.demi qd ~dst:peer
  | None -> Ok ()

let requests_served srv = srv.served

type client_stats = {
  ops : int;
  hits : int;
  misses : int;
  latency : Dk_sim.Histogram.t;
  elapsed_ns : int64;
}

let rpc demi qd sga =
  match Demi.blocking_push demi qd sga with
  | Types.Pushed -> (
      match Demi.blocking_pop demi qd with
      | Types.Popped resp -> Some resp
      | Types.Pushed | Types.Accepted _ | Types.Failed _ -> None)
  | Types.Popped _ | Types.Accepted _ | Types.Failed _ -> None

let run_tcp_client ~demi ~dst ~ops ~keys ~value_size ~read_fraction
    ?(zipf_theta = 0.99) ?(seed = 11L) () =
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Tcp in
  let* () = Demi.connect demi qd ~dst in
  let engine = Demi.engine demi in
  let wl = Workload.create ~seed (Workload.Zipf { n = keys; theta = zipf_theta }) in
  let latency = Dk_sim.Histogram.create () in
  let hits = ref 0 and misses = ref 0 in
  (* preload *)
  let preload_failed = ref false in
  for i = 0 to keys - 1 do
    if not !preload_failed then begin
      let req =
        Proto.Set (Workload.key_name i, Workload.value wl ~size:value_size)
      in
      match rpc demi qd (Proto.request_sga req) with
      | Some _ -> ()
      | None -> preload_failed := true
    end
  done;
  if !preload_failed then Error `Queue_closed
  else begin
    let start = Engine.now engine in
    let aborted = ref false in
    for _ = 1 to ops do
      if not !aborted then begin
        let key = Workload.key_name (Workload.next_key wl) in
        let req =
          if Workload.is_get wl ~read_fraction then Proto.Get key
          else Proto.Set (key, Workload.value wl ~size:value_size)
        in
        let t0 = Engine.now engine in
        match rpc demi qd (Proto.request_sga req) with
        | Some resp ->
            Dk_sim.Histogram.record latency (Int64.sub (Engine.now engine) t0);
            (match Proto.response_of_sga resp with
            | Some (Proto.Value _) -> incr hits
            | Some Proto.Not_found -> incr misses
            | Some (Proto.Stored | Proto.Deleted) | None -> ());
            Dk_mem.Sga.free resp
        | None -> aborted := true
      end
    done;
    if !aborted then Error `Queue_closed
    else
      Ok
        {
          ops;
          hits = !hits;
          misses = !misses;
          latency;
          elapsed_ns = Int64.sub (Engine.now engine) start;
        }
  end
