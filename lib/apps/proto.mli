(** Key-value wire protocol.

    Requests and responses are scatter-gather messages with one logical
    field per segment — the natural encoding on Demikernel queues
    (§4.2: the sga gives the device the compute granularity). The same
    segments travel over POSIX byte streams via the {!Dk_net.Framing}
    length-prefixed encoding. *)

type request =
  | Get of string
  | Set of string * string
  | Del of string

type response =
  | Value of string   (** GET hit *)
  | Not_found         (** GET/DEL miss *)
  | Stored            (** SET ok *)
  | Deleted           (** DEL ok *)

val request_segments : request -> string list
val request_of_segments : string list -> request option
val response_segments : response -> string list
val response_of_segments : string list -> response option

val request_sga : request -> Dk_mem.Sga.t
val response_sga : response -> Dk_mem.Sga.t
val request_of_sga : Dk_mem.Sga.t -> request option
val response_of_sga : Dk_mem.Sga.t -> response option

(** GET responses can avoid materialising the value: *)

val value_response_sga : Dk_mem.Buffer.t -> Dk_mem.Sga.t
(** Wrap a stored value buffer (a new reference) as a [Value] response
    without copying — the Redis zero-copy pattern of §4.5. *)

(** {2 Single-datagram (UDP) codec}

    One flat string per message, for the offloaded UDP kv path. A GET
    encodes as ["G" ^ key] and a [Value] reply as ["+" ^ value] — the
    exact bytes the NIC's device-resident table pipeline produces
    ([K_rest 1] key extraction, hit prefix ["+"]) — so device-served
    and host-served replies are wire-identical. SET carries a 2-byte
    big-endian key length ahead of the key. *)

val udp_request_string : request -> string
(** Raises [Invalid_argument] on a SET key longer than 65535 bytes. *)

val udp_request_of_string : string -> request option
val udp_response_string : response -> string
val udp_response_of_string : string -> response option
