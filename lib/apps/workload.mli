(** Workload generation for the evaluation harness: Zipf-distributed
    keys (the skew typical of caching workloads), uniform keys,
    GET/SET mixes and value sizing. *)

type key_dist = Uniform of int | Zipf of { n : int; theta : float }

type t

val create : ?seed:int64 -> key_dist -> t

val next_key : t -> int
(** Key index in [0, n). *)

val key_name : int -> string
(** Canonical fixed-width key string for an index. *)

val hot_prefix : key_dist -> mass:float -> int
(** Smallest count [k] such that the top-[k] keys of the popularity
    ranking (indices [0, k)) carry at least [mass] of the request
    probability — e.g. how many keys a device-resident cache must hold
    for an expected hit ratio of [mass] on GETs. 0 when [mass <= 0],
    the whole key space when [mass >= 1]. *)

val is_get : t -> read_fraction:float -> bool
(** Draw the op type for a GET/SET mix. *)

val value : t -> size:int -> string
(** A deterministic-per-draw printable value of [size] bytes. *)
