(** Redis-like server and closed-loop client on the Demikernel API.

    The server is callback-driven: it keeps one outstanding pop per
    connection and answers with zero-copy responses
    ({!Kv.apply_zero_copy}); each request charges
    [Cost.app_request] of application work (the paper's ~2 µs Redis
    figure). The client drives the simulation with blocking waits and
    records per-operation latency. *)

type server

val start_tcp_server :
  demi:Demikernel.Demi.t -> port:int -> kv:Kv.t -> (server, Demikernel.Types.error) result

val start_udp_server :
  demi:Demikernel.Demi.t -> port:int -> kv:Kv.t -> (server, Demikernel.Types.error) result
(** Single-peer UDP server: replies go to the configured peer (set it
    with [Demi.connect] on the same port before traffic flows, or rely
    on the client being the only sender). For the UDP server to answer,
    its queue's peer must be set via {!set_udp_peer}. *)

val start_udp_offload_server :
  demi:Demikernel.Demi.t ->
  port:int ->
  kv:Kv.t ->
  ?policy:Dk_device.Table.policy ->
  ?obs_prefix:string ->
  ?capacity:int ->
  ?max_value:int ->
  ?populate:bool ->
  unit ->
  (server, Demikernel.Types.error) result
(** UDP server speaking the single-datagram codec
    ({!Proto.udp_request_string}) with the GET hot path offloaded to
    the NIC via {!Demikernel.Demi.offload_udp_get}: on a programmable
    NIC, GET hits are answered from the device-resident table at zero
    host CPU and only misses/SETs/DELs reach this loop. SETs and DELs
    update/invalidate the device entry over the synchronous control
    queue {e before} the response is pushed, so acknowledged writes are
    never followed by stale device reads. [populate] additionally
    inserts host-served GET hits into the device table (default:
    host-managed population only). Without a programmable NIC the same
    pipeline runs on the host, charged per datagram by its static
    footprint ({!Demikernel.Demi.pipeline_cpu_ns}) — responses are
    byte-identical either way. *)

val server_offloaded : server -> bool
(** Whether the GET pipeline actually landed on the device. *)

val set_udp_peer :
  server -> Dk_net.Addr.endpoint -> (unit, Demikernel.Types.error) result
val requests_served : server -> int

type client_stats = {
  ops : int;
  hits : int;
  misses : int;
  latency : Dk_sim.Histogram.t; (** per-op round trip, ns *)
  elapsed_ns : int64;
}

val run_tcp_client :
  demi:Demikernel.Demi.t ->
  dst:Dk_net.Addr.endpoint ->
  ops:int ->
  keys:int ->
  value_size:int ->
  read_fraction:float ->
  ?zipf_theta:float ->
  ?seed:int64 ->
  unit ->
  (client_stats, Demikernel.Types.error) result
(** Pre-populates every key with one SET pass, then runs [ops]
    operations closed-loop. *)
