(** Redis-like server and closed-loop client on the Demikernel API.

    The server is callback-driven: it keeps one outstanding pop per
    connection and answers with zero-copy responses
    ({!Kv.apply_zero_copy}); each request charges
    [Cost.app_request] of application work (the paper's ~2 µs Redis
    figure). The client drives the simulation with blocking waits and
    records per-operation latency. *)

type server

val start_tcp_server :
  demi:Demikernel.Demi.t -> port:int -> kv:Kv.t -> (server, Demikernel.Types.error) result

val start_udp_server :
  demi:Demikernel.Demi.t -> port:int -> kv:Kv.t -> (server, Demikernel.Types.error) result
(** Single-peer UDP server: replies go to the configured peer (set it
    with [Demi.connect] on the same port before traffic flows, or rely
    on the client being the only sender). For the UDP server to answer,
    its queue's peer must be set via {!set_udp_peer}. *)

val set_udp_peer :
  server -> Dk_net.Addr.endpoint -> (unit, Demikernel.Types.error) result
val requests_served : server -> int

type client_stats = {
  ops : int;
  hits : int;
  misses : int;
  latency : Dk_sim.Histogram.t; (** per-op round trip, ns *)
  elapsed_ns : int64;
}

val run_tcp_client :
  demi:Demikernel.Demi.t ->
  dst:Dk_net.Addr.endpoint ->
  ops:int ->
  keys:int ->
  value_size:int ->
  read_fraction:float ->
  ?zipf_theta:float ->
  ?seed:int64 ->
  unit ->
  (client_stats, Demikernel.Types.error) result
(** Pre-populates every key with one SET pass, then runs [ops]
    operations closed-loop. *)
