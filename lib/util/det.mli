(** Deterministic (key-sorted) iteration over [Hashtbl.t].

    [Hashtbl] iteration order is a function of the hash seed and
    insertion history, so effects produced under [Hashtbl.iter] /
    [Hashtbl.fold] are not reproducible across runs. Code in [lib/]
    whose iteration order is observable — packet delivery schedules,
    readiness batches, audit reports — must iterate through this module
    instead. dk-shard's [det-source] rule flags direct hash-order
    iteration reachable from the datapath and exempts [Det]. *)

val bindings_sorted :
  compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key. With duplicate keys (from
    [Hashtbl.add] shadowing), relative order of equal keys is
    unspecified but stable for a given table state. *)

val iter_sorted :
  compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted ~compare f tbl] applies [f] to every binding in
    ascending key order. *)

val fold_sorted :
  compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** Fold in ascending key order. *)

val keys_sorted : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** Keys in ascending order. *)
