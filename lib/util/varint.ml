let encoded_size v =
  if v < 0 then invalid_arg "Varint.encoded_size";
  let rec loop v n = if v < 0x80 then n else loop (v lsr 7) (n + 1) in
  loop v 1

let write buf v =
  if v < 0 then invalid_arg "Varint.write";
  let rec loop v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      loop (v lsr 7)
    end
  in
  loop v

(* Toplevel so the per-call decode does not close over the buffer. *)
let rec read_loop buf len off i shift acc =
  if i >= len || shift > 56 then None
  else
    let b = Char.code (Bytes.get buf i) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then Some (acc, i - off + 1)
    else read_loop buf len off (i + 1) (shift + 7) acc
  [@@hot.alloc "the decoded (value, width) pair is the codec's return surface"]

let read buf off =
  let len = Bytes.length buf in
  if off < 0 || off >= len then None else read_loop buf len off off 0 0
