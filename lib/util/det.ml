(* Deterministic iteration over hash tables.

   Hashtbl iteration order depends on the hash seed and insertion
   history, so any observable output produced by [Hashtbl.iter] /
   [Hashtbl.fold] varies run to run. Everything in lib/ that walks a
   table and produces ordered effects (delivery schedules, readiness
   batches, reports) must go through these helpers instead; dk-shard's
   det-source rule flags direct hash-order iteration reachable from the
   datapath, and exempts this module. *)

let bindings_sorted ~compare tbl =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (ka, _) (kb, _) -> compare ka kb) all

let iter_sorted ~compare f tbl =
  List.iter (fun (k, v) -> f k v) (bindings_sorted ~compare tbl)

let fold_sorted ~compare f tbl init =
  List.fold_left
    (fun acc (k, v) -> f k v acc)
    init (bindings_sorted ~compare tbl)

let keys_sorted ~compare tbl =
  List.map fst (bindings_sorted ~compare tbl)
