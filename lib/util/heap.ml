type 'a entry = { key : int64; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 16 None; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let entry_lt a b =
  match Int64.compare a.key b.key with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let get t i =
  match t.arr.(i) with
  | Some e -> e
  | None -> assert false

let grow t =
  let arr = Array.make (2 * Array.length t.arr) None in
  Array.blit t.arr 0 arr 0 t.size;
  t.arr <- arr
  [@@hot.alloc "amortized doubling of the preallocated event slab"]

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get t i) (get t parent) then begin
      let tmp = t.arr.(i) in
      t.arr.(i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      sift_up t parent
    end
  end

(* The smallest-of-three pick threads through plain lets: a ref here
   would allocate once per sift level on every event pop (dk-hot). *)
let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && entry_lt (get t l) (get t i) then l else i in
  let smallest =
    if r < t.size && entry_lt (get t r) (get t smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = t.arr.(i) in
    t.arr.(i) <- t.arr.(smallest);
    t.arr.(smallest) <- tmp;
    sift_down t smallest
  end

let push t key value =
  if t.size = Array.length t.arr then grow t;
  t.arr.(t.size) <- Some { key; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)
  [@@hot.alloc "heap entries are boxed (key, seq, value) records in the slab"]

let min_key t = if t.size = 0 then None else Some (get t 0).key

let min t =
  if t.size = 0 then None
  else
    let e = get t 0 in
    Some (e.key, e.value)
  [@@hot.alloc "the (key, value) option pair is the peek API's return surface"]

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    t.arr.(0) <- t.arr.(t.size);
    t.arr.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (top.key, top.value)
  end
  [@@hot.alloc "the (key, value) option pair is the pop API's return surface"]

let clear t =
  Array.fill t.arr 0 (Array.length t.arr) None;
  t.size <- 0
