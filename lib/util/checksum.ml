(* Big-endian 16-bit word accumulation as a tail-recursive loop: no
   ref cells, so the rx hot path (checksum verification runs on every
   offloaded frame) allocates nothing here. *)
let rec sum_words buf i stop acc =
  if i < stop then
    sum_words buf (i + 2) stop
      (acc + (Char.code (Bytes.get buf i) lsl 8)
      + Char.code (Bytes.get buf (i + 1)))
  else acc

let ones_complement_sum ?(init = 0) buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.ones_complement_sum";
  let sum = sum_words buf off (off + len - 1) init in
  if len land 1 = 1 then
    sum + (Char.code (Bytes.get buf (off + len - 1)) lsl 8)
  else sum

(* Fold the carries back in until the sum fits 16 bits. Pure recursion
   (terminates: each step strictly shrinks a positive sum) — no ref
   cell, the fold runs on the rx hot path for every offloaded frame. *)
let rec finish sum =
  if sum lsr 16 = 0 then lnot sum land 0xffff
  else finish ((sum land 0xffff) + (sum lsr 16))

let compute buf off len = finish (ones_complement_sum buf off len)

let verify buf off len =
  finish (ones_complement_sum buf off len) = 0
