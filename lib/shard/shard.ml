(* One shard: a shared-nothing slice of the datapath pinned to one
   virtual core. The shard owns everything it touches — its own
   discrete-event engine (= its core's clock), its own switched fabric
   and hosts, its own Demikernel instances (and with them qd tables,
   token waitsets, ready FIFOs, memory manager and rx pools, TCP
   state, doorbell windows), its own KV store, its own fault domain
   and its own workload RNG. Nothing here is reachable from another
   shard except through an explicit [Xmailbox]; `dune build @shard`
   enforces that no module-level state crept in. *)

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Rng = Dk_sim.Rng
module Fault = Dk_fault.Fault
module Metrics = Dk_obs.Metrics
module Sim_setup = Dk_apps.Sim_setup
module Demi = Demikernel.Demi

type t = {
  id : int;
  engine : Engine.t;
  fabric : Dk_device.Fabric.t;
  cost : Cost.t;
  fault : Fault.t;
  client : Sim_setup.host;
  server : Sim_setup.host;
  demi_client : Demi.t;
  demi_server : Demi.t;
  kv : Dk_apps.Kv.t;
  rng : Rng.t;
  h_rtt : Metrics.hist;
  c_ops : Metrics.counter;
  c_remote : Metrics.counter;
  c_flows : Metrics.counter;
}

let obs_name id rest = Printf.sprintf "shard%d.%s" id rest

(* Distinct per-shard subnets/MAC indices: nothing collides even though
   each shard also has its own private fabric. *)
let client_ip id = Printf.sprintf "10.%d.0.1" (id land 0xff)
let server_ip id = Printf.sprintf "10.%d.0.2" (id land 0xff)

let create ~id ?(cost = Cost.default) ?fault_plan ?(programmable = false) ~seed
    () =
  if id < 0 then invalid_arg "Shard.create: negative id";
  let fault = Fault.create () in
  (match fault_plan with Some p -> Fault.install fault p | None -> ());
  let engine, fabric, cost = Sim_setup.make_engine ~fault ~cost () in
  let client =
    Sim_setup.add_host ~engine ~cost ~fabric ~index:((2 * id) + 1)
      ~ip:(client_ip id) ~fault ()
  in
  let server =
    Sim_setup.add_host ~engine ~cost ~fabric ~index:((2 * id) + 2)
      ~ip:(server_ip id) ~fault ~programmable ()
  in
  let demi_client = Sim_setup.demi_of_host ~engine ~cost client () in
  let demi_server = Sim_setup.demi_of_host ~engine ~cost server () in
  let kv = Dk_apps.Kv.create (Demi.manager demi_server) in
  (* Independent per-shard stream derived from the run seed: shard i's
     draws never depend on how many draws other shards made. *)
  let rng =
    Rng.create
      (Int64.logxor seed (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (id + 1))))
  in
  {
    id;
    engine;
    fabric;
    cost;
    fault;
    client;
    server;
    demi_client;
    demi_server;
    kv;
    rng;
    h_rtt = Metrics.hist (obs_name id "app.client.rtt");
    c_ops = Metrics.counter (obs_name id "app.client.ops");
    c_remote = Metrics.counter (obs_name id "app.client.remote");
    c_flows = Metrics.counter (obs_name id "device.rss.flows");
  }

let id t = t.id
let engine t = t.engine
let fabric t = t.fabric
let client_host t = t.client
let server_host t = t.server
let cost t = t.cost
let fault t = t.fault
let demi_client t = t.demi_client
let demi_server t = t.demi_server
let kv t = t.kv
let rng t = t.rng
let server_endpoint t port = Sim_setup.endpoint t.server port
let rtt_hist t = t.h_rtt
let ops_counter t = t.c_ops
let remote_counter t = t.c_remote
let flows_counter t = t.c_flows
