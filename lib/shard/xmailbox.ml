(* Cross-shard mailbox: the ONLY sanctioned channel between shards.

   Shards are shared-nothing — each owns its qds, pools, TCP state and
   virtual clock — so the rare operation that must touch another
   shard's state (ownership migration, a KV request whose key lives
   elsewhere) travels as an explicit message. The mailbox is a bounded
   SPSC ring over the virtual clock: one producer (the source shard's
   poll loop), one consumer (the destination shard's), a fixed
   capacity, and a `try_send` that reports backpressure by returning
   [false] instead of blocking — the same contract as a hardware
   descriptor ring, which is why the ring itself is a
   [Dk_util.Bqueue].

   Delivery is an event on the DESTINATION engine at
   [max(dst.now, src.now + hop_ns)] ([Engine.at] clamps to now): a
   message can never arrive in the destination's past, so per-shard
   clocks stay independently monotonic. The delivery event pops the
   ring head rather than carrying its message, so FIFO order holds even
   when two deliveries land on the same timestamp. *)

module Engine = Dk_sim.Engine
module Metrics = Dk_obs.Metrics
module Bqueue = Dk_util.Bqueue

type 'a t = {
  src : int;
  dst : int;
  hop_ns : int64;
  src_engine : Engine.t;
  dst_engine : Engine.t;
  ring : 'a Bqueue.t;
  mutable handler : ('a -> unit) option;
  stash : 'a Queue.t; (* delivered before a handler attached *)
  c_sent : Metrics.counter;
  c_delivered : Metrics.counter;
  c_backpressure : Metrics.counter;
  g_inflight : Metrics.gauge;
}

let create ~src ~dst ~src_engine ~dst_engine ?(capacity = 4096)
    ?(hop_ns = 500L) () =
  if src = dst then invalid_arg "Xmailbox.create: src = dst";
  if Int64.compare hop_ns 0L < 0 then invalid_arg "Xmailbox.create: hop_ns";
  {
    src;
    dst;
    hop_ns;
    src_engine;
    dst_engine;
    ring = Bqueue.create capacity;
    handler = None;
    stash = Queue.create ();
    c_sent = Metrics.counter (Printf.sprintf "shard%d.core.mailbox.sent" src);
    c_delivered =
      Metrics.counter (Printf.sprintf "shard%d.core.mailbox.delivered" dst);
    c_backpressure =
      Metrics.counter (Printf.sprintf "shard%d.core.mailbox.backpressure" src);
    g_inflight =
      Metrics.gauge (Printf.sprintf "shard%d.core.mailbox.inflight" src);
  }

let src t = t.src
let dst t = t.dst
let capacity t = Bqueue.capacity t.ring
let in_flight t = Bqueue.length t.ring

let dispatch t msg =
  Metrics.gauge_add t.g_inflight (-1);
  Metrics.incr t.c_delivered;
  match t.handler with
  | Some f -> f msg
  | None -> Queue.add msg t.stash

let deliver t =
  match Bqueue.pop t.ring with
  | None -> () (* impossible: exactly one delivery event per send *)
  | Some msg -> dispatch t msg

let try_send t msg =
  if not (Bqueue.push t.ring msg) then begin
    Metrics.incr t.c_backpressure;
    false
  end
  else begin
    Metrics.incr t.c_sent;
    Metrics.gauge_add t.g_inflight 1;
    let due = Int64.add (Engine.now t.src_engine) t.hop_ns in
    let (_ : Engine.timer) = Engine.at t.dst_engine due (fun () -> deliver t) in
    true
  end

let set_on_recv t f =
  t.handler <- Some f;
  let rec drain () =
    match Queue.take_opt t.stash with
    | None -> ()
    | Some msg ->
        f msg;
        drain ()
  in
  drain ()
