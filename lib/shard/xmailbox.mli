(** Bounded SPSC cross-shard mailbox over the virtual clock — the only
    sanctioned channel between shards in the multi-shard datapath.

    Sends are non-blocking: [try_send] returns [false] when the ring is
    full (backpressure), and otherwise schedules delivery on the
    {e destination} engine at [max(dst.now, src.now + hop_ns)], so a
    message never lands in the destination's past. Delivery order is
    strictly FIFO per mailbox. Instrumented under the sender's
    namespace ([shard<src>.core.mailbox.{sent,backpressure,inflight}])
    and the receiver's ([shard<dst>.core.mailbox.delivered]). *)

type 'a t

val create :
  src:int ->
  dst:int ->
  src_engine:Dk_sim.Engine.t ->
  dst_engine:Dk_sim.Engine.t ->
  ?capacity:int ->
  ?hop_ns:int64 ->
  unit ->
  'a t
(** Default capacity 4096 messages, hop 500 ns (a cross-core cacheline
    handoff plus wakeup, not a NIC round trip). Raises
    [Invalid_argument] if [src = dst], the capacity is not positive, or
    [hop_ns] is negative. *)

val try_send : 'a t -> 'a -> bool
(** [false] when the ring is full: the message is NOT enqueued and the
    sender must retry later or shed load. *)

val set_on_recv : 'a t -> ('a -> unit) -> unit
(** Attach the consumer. Messages delivered before a consumer was
    attached are replayed immediately, in order. *)

val src : 'a t -> int
val dst : 'a t -> int
val capacity : 'a t -> int

val in_flight : 'a t -> int
(** Messages sent but not yet delivered. *)
