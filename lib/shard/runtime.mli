(** The multi-shard datapath: N shared-nothing shards, RSS flow
    steering, a full {!Xmailbox} mesh, and the closed-loop echo and KV
    workloads the evaluation (experiment E14) drives through it.

    Determinism: every shard's engine advances independently and the
    group scheduler always fires the globally earliest event (ties to
    the lowest shard id), so a fixed (seed, N, xfrac) replays
    byte-identically; with N=1 the group loop {e is} the plain
    single-engine loop.

    Cross-shard traffic: each request draws a home shard (local, or
    with probability [xfrac] uniform over the others). A request
    landing on a non-owner is forwarded over the mailbox, applied by
    the owner against its own state, and answered after the owner's
    ack — values cross the boundary as copies, never as another
    shard's buffers. *)

type msg =
  | Probe of string
  | Probe_ack of string
  | Kv_req of Dk_apps.Proto.request
  | Kv_resp of Dk_apps.Proto.response

type t

val create :
  n:int ->
  ?xfrac:float ->
  ?seed:int64 ->
  ?fault:string * int64 ->
  ?cost:Dk_sim.Cost.t ->
  ?mailbox_capacity:int ->
  ?hop_ns:int64 ->
  ?rss_table_size:int ->
  unit ->
  t
(** Build N shards plus the mailbox mesh and RSS table. [fault] names
    a {!Dk_fault.Fault.plan_names} plan and a base seed; each shard
    installs the plan into its private fault domain with the seed
    offset by its id (correlated failure mode, independent draws).
    Raises [Invalid_argument] on [n <= 0], [xfrac] outside [0,1], or
    an unknown plan name. A runtime drives one workload run; build a
    fresh one per run. *)

(** {2 Results} *)

type shard_stats = {
  shard : int;
  flow_count : int;  (** flows RSS steered to this shard *)
  op_count : int;  (** client ops completed on this shard *)
  remote_count : int;  (** ops whose home was another shard *)
  elapsed_ns : int64;  (** this shard's clock: run end - traffic start *)
  latency : Dk_sim.Histogram.t;  (** per-shard client RTT *)
}

type stats = {
  per_shard : shard_stats array;
  total_ops : int;
  total_remote : int;
  wall_ns : int64;  (** max over shards of [elapsed_ns] *)
}

(** {2 Workloads}

    [?drive] overrides how the engine group is driven (default
    {!Dk_sim.Engine.run_group}) — the N=1 identity test drives the
    single engine with the plain [Engine.run] loop instead. *)

val run_echo :
  ?drive:(Dk_sim.Engine.t array -> unit) ->
  t ->
  flows:int ->
  size:int ->
  rounds:int ->
  stats
(** [flows] client connections placed by RSS, each doing [rounds]
    closed-loop echoes of [size]-byte payloads whose first byte names
    the drawn home shard. *)

val run_kv :
  ?drive:(Dk_sim.Engine.t array -> unit) ->
  t ->
  flows:int ->
  ops_per_flow:int ->
  keys_per_shard:int ->
  value_size:int ->
  read_fraction:float ->
  stats
(** Striped key space (key [k] lives on shard [k mod n]), preloaded
    directly into each shard's store before traffic starts. *)

(** {2 Accessors} *)

val shard_count : t -> int
val shards : t -> Shard.t array
val engines : t -> Dk_sim.Engine.t array
val rss : t -> Dk_device.Rss.t
val xfrac : t -> float
val seed : t -> int64

val key_home : t -> string -> int
(** Owner shard of a [Dk_apps.Workload.key_name]-format key. *)

val pending_count : t -> int
(** Cross-shard requests forwarded but not yet answered; 0 after a
    fully drained run (no lost replies). *)
