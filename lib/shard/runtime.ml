(* The multi-shard run: N shards, RSS flow steering, a full mailbox
   mesh, and the two closed-loop workloads (echo, KV) the evaluation
   drives through it.

   Scheduling: every shard's engine advances independently; the group
   scheduler ([Engine.run_group]) always fires the globally earliest
   event, tie-broken to the lowest shard id. With N=1 that IS the
   plain single-engine loop, which is what makes a one-shard run
   bit-identical to the pre-shard engine.

   Cross-shard traffic: a request arriving at shard [i] whose home is
   shard [j] (first payload byte for echo, key ownership [idx mod n]
   for KV) is forwarded over the [i]->[j] mailbox; the owner applies
   it against its own state and sends the reply back over [j]->[i];
   only then does [i] answer its client. Nothing else crosses shard
   boundaries — values travel as copies inside mailbox messages, never
   as another shard's buffers. *)

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Rng = Dk_sim.Rng
module Fault = Dk_fault.Fault
module Metrics = Dk_obs.Metrics
module Histogram = Dk_sim.Histogram
module Rss = Dk_device.Rss
module Addr = Dk_net.Addr
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Proto = Dk_apps.Proto
module Kv = Dk_apps.Kv

type msg =
  | Probe of string (* echo: touch the owner shard's state *)
  | Probe_ack of string
  | Kv_req of Proto.request
  | Kv_resp of Proto.response

type envelope = { req_id : int; origin : int; payload : msg }

type t = {
  n : int;
  seed : int64;
  xfrac : float;
  shards : Shard.t array;
  engines : Engine.t array;
  (* [mailboxes.(src).(dst)]: None on the diagonal. *)
  mailboxes : envelope Xmailbox.t option array array;
  rss : Rss.t;
  (* Continuations for requests this shard forwarded to an owner. *)
  pending : (int, msg -> unit) Hashtbl.t array;
  mutable next_req_id : int;
}

let mailbox t ~src ~dst =
  match t.mailboxes.(src).(dst) with
  | Some mb -> mb
  | None -> invalid_arg "Runtime: no self-mailbox"

(* ---- construction ---- *)

let rec create ~n ?(xfrac = 0.0) ?(seed = 42L) ?fault ?cost
    ?(mailbox_capacity = 4096) ?(hop_ns = 500L) ?(rss_table_size = 128) () =
  if n <= 0 then invalid_arg "Runtime.create: n must be positive";
  if xfrac < 0.0 || xfrac > 1.0 then
    invalid_arg "Runtime.create: xfrac outside [0,1]";
  let shards =
    Array.init n (fun id ->
        let fault_plan =
          match fault with
          | None -> None
          | Some (plan_name, fseed) -> (
              (* Same named plan in every shard's domain, seed offset by
                 shard id: correlated failure mode, independent draws. *)
              match
                Fault.named ~seed:(Int64.add fseed (Int64.of_int id)) plan_name
              with
              | Some p -> Some p
              | None ->
                  invalid_arg
                    (Printf.sprintf "Runtime.create: unknown fault plan %s"
                       plan_name))
        in
        Shard.create ~id ?cost ?fault_plan ~seed ())
  in
  let engines = Array.map Shard.engine shards in
  let mailboxes =
    Array.init n (fun src ->
        Array.init n (fun dst ->
            if src = dst then None
            else
              Some
                (Xmailbox.create ~src ~dst ~src_engine:engines.(src)
                   ~dst_engine:engines.(dst) ~capacity:mailbox_capacity
                   ~hop_ns ())))
  in
  let t =
    {
      n;
      seed;
      xfrac;
      shards;
      engines;
      mailboxes;
      rss = Rss.create ~queues:n ~table_size:rss_table_size ();
      pending = Array.init n (fun _ -> Hashtbl.create 64);
      next_req_id = 0;
    }
  in
  (* Wire every shard's receive side once, up front. *)
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      match t.mailboxes.(src).(dst) with
      | None -> ()
      | Some mb -> Xmailbox.set_on_recv mb (fun env -> handle_msg t dst env)
    done
  done;
  t

(* ---- cross-shard request/reply ---- *)

and send_retrying t ~src ~dst env =
  (* The ring being full is backpressure, not loss: park the message on
     the sender's clock and retry after a hop. Terminates because the
     destination drains its ring as its engine runs. *)
  let mb = mailbox t ~src ~dst in
  if not (Xmailbox.try_send mb env) then
    let (_ : Engine.timer) =
      Engine.after t.engines.(src) 500L (fun () ->
          send_retrying t ~src ~dst env)
    in
    ()

and request t ~src ~dst payload k =
  let req_id = t.next_req_id in
  t.next_req_id <- req_id + 1;
  Hashtbl.replace t.pending.(src) req_id k;
  send_retrying t ~src ~dst { req_id; origin = src; payload }

and handle_msg t self env =
  match env.payload with
  | Probe body ->
      (* We own the state the probe touches: charge the app cost on OUR
         clock, then ack back to the origin. *)
      Engine.consume t.engines.(self) (Shard.cost t.shards.(self)).Cost.app_request;
      send_retrying t ~src:self ~dst:env.origin
        { env with origin = self; payload = Probe_ack body }
  | Kv_req req ->
      Engine.consume t.engines.(self) (Shard.cost t.shards.(self)).Cost.app_request;
      (* Copy semantics ([Kv.apply], not the zero-copy path): the value
         crosses a shard boundary, so it must leave our pools. *)
      let resp = Kv.apply (Shard.kv t.shards.(self)) req in
      send_retrying t ~src:self ~dst:env.origin
        { env with origin = self; payload = Kv_resp resp }
  | Probe_ack _ | Kv_resp _ -> (
      match Hashtbl.find_opt t.pending.(self) env.req_id with
      | None -> ()
      | Some k ->
          Hashtbl.remove t.pending.(self) env.req_id;
          k env.payload)

(* ---- RSS flow placement ---- *)

(* Synthetic admission-time 5-tuples for [flows] client connections:
   the NIC hashes each into the indirection table to pick the owning
   shard, then (rebalanced, the `ethtool -X` move) the table is
   repointed so per-queue load equalises. The simulation then
   instantiates each flow on the client host of the shard RSS steered
   it to — the core the NIC delivers the flow's frames to is the core
   that runs it. *)
let flow_tuple c ~dst_port =
  let src_ip = Addr.ip_of_string "10.200.0.0" + c in
  let src_port = 40000 + (c land 0x3fff) in
  let dst_ip = Addr.ip_of_string "10.255.0.100" in
  (src_ip, src_port, dst_ip, dst_port, 6)

let place_flows t ~flows ~dst_port =
  let tuples = Array.init flows (fun c -> flow_tuple c ~dst_port) in
  let weights = Array.make (Rss.table_size t.rss) 0 in
  Array.iter
    (fun (src_ip, src_port, dst_ip, dst_port, proto) ->
      let b =
        Rss.hash_flow ~src_ip ~src_port ~dst_ip ~dst_port ~proto
        mod Rss.table_size t.rss
      in
      weights.(b) <- weights.(b) + 1)
    tuples;
  Rss.rebalance t.rss weights;
  Array.map
    (fun (src_ip, src_port, dst_ip, dst_port, proto) ->
      let owner = Rss.select t.rss ~src_ip ~src_port ~dst_ip ~dst_port ~proto in
      Metrics.incr (Shard.flows_counter t.shards.(owner));
      owner)
    tuples

(* ---- per-run bookkeeping ---- *)

type shard_stats = {
  shard : int;
  flow_count : int;
  op_count : int;
  remote_count : int;
  elapsed_ns : int64;
  latency : Histogram.t;
}

type stats = {
  per_shard : shard_stats array;
  total_ops : int;
  total_remote : int;
  wall_ns : int64;
}

type tally = {
  mutable t_flows : int;
  mutable t_ops : int;
  mutable t_remote : int;
  t_lat : Histogram.t;
}

let finish_stats t tallies starts =
  let per_shard =
    Array.init t.n (fun i ->
        {
          shard = i;
          flow_count = tallies.(i).t_flows;
          op_count = tallies.(i).t_ops;
          remote_count = tallies.(i).t_remote;
          elapsed_ns = Int64.sub (Engine.now t.engines.(i)) starts.(i);
          latency = tallies.(i).t_lat;
        })
  in
  let total_ops = Array.fold_left (fun a s -> a + s.op_count) 0 per_shard in
  let total_remote =
    Array.fold_left (fun a s -> a + s.remote_count) 0 per_shard
  in
  let wall_ns =
    Array.fold_left
      (fun a s -> if Int64.compare s.elapsed_ns a > 0 then s.elapsed_ns else a)
      0L per_shard
  in
  { per_shard; total_ops; total_remote; wall_ns }

(* Draw the home shard for one request: local, or (with probability
   [xfrac]) uniform over the other shards. *)
let draw_home t i =
  if t.n = 1 then i
  else if Rng.bool (Shard.rng t.shards.(i)) t.xfrac then begin
    let k = Rng.int (Shard.rng t.shards.(i)) (t.n - 1) in
    if k >= i then k + 1 else k
  end
  else i

let record_op t i tally dt ~remote =
  let sh = t.shards.(i) in
  Histogram.record tally.t_lat dt;
  Metrics.observe (Shard.rtt_hist sh) dt;
  Metrics.incr (Shard.ops_counter sh);
  tally.t_ops <- tally.t_ops + 1;
  if remote then begin
    Metrics.incr (Shard.remote_counter sh);
    tally.t_remote <- tally.t_remote + 1
  end

(* ---- echo workload ---- *)

let echo_port = 7

(* Server side: echo, except a payload whose first byte names another
   shard models state owned elsewhere — the touch is forwarded over
   the mailbox and the echo reply waits for the owner's ack. *)
let rec serve_echo_conn t i qd =
  let demi = Shard.demi_server t.shards.(i) in
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (function
        | Types.Popped sga ->
            let body = Dk_mem.Sga.to_string sga in
            let home =
              if String.length body = 0 then i
              else
                let h = Char.code body.[0] in
                if h < t.n then h else i
            in
            if home = i then (
              match Demi.push demi qd sga with
              | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
              | Error _ -> ())
            else begin
              Demi.sga_free demi sga;
              request t ~src:i ~dst:home (Probe body) (fun reply ->
                  let out =
                    match reply with Probe_ack s -> s | _ -> body
                  in
                  match Demi.sga_alloc demi out with
                  | Error _ -> ()
                  | Ok sga' -> (
                      match Demi.push demi qd sga' with
                      | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
                      | Error _ -> ()))
            end;
            serve_echo_conn t i qd
        | Types.Failed _ -> (
            match Demi.close demi qd with Ok () | Error _ -> ())
        | Types.Pushed | Types.Accepted _ -> ())

let rec accept_loop t i lqd serve =
  let demi = Shard.demi_server t.shards.(i) in
  match Demi.accept_async demi lqd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (function
        | Types.Accepted qd ->
            serve t i qd;
            accept_loop t i lqd serve
        | Types.Failed _ -> ()
        | Types.Pushed | Types.Popped _ -> ())

let start_server t i ~port serve =
  let demi = Shard.demi_server t.shards.(i) in
  let ( let* ) = Result.bind in
  let* lqd = Demi.socket demi `Tcp in
  let* () = Demi.bind demi lqd ~port in
  let* () = Demi.listen demi lqd in
  accept_loop t i lqd serve;
  Ok ()

let connect_client t i ~port =
  let demi = Shard.demi_client t.shards.(i) in
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Tcp in
  let* () = Demi.connect demi qd ~dst:(Shard.server_endpoint t.shards.(i) port) in
  Ok qd

let echo_payload ~home ~size =
  let b = Bytes.make (max 1 size) 'e' in
  Bytes.set b 0 (Char.chr (home land 0xff));
  Bytes.to_string b

(* Client side: closed-loop ping over one connection, event-driven so
   the group scheduler interleaves shards fairly. *)
let rec echo_flow_round t i tally qd ~size ~rounds_left =
  let sh = t.shards.(i) in
  let demi = Shard.demi_client sh in
  if rounds_left <= 0 then (
    match Demi.close demi qd with Ok () | Error _ -> ())
  else
    let home = draw_home t i in
    match Demi.sga_alloc demi (echo_payload ~home ~size) with
    | Error _ -> ()
    | Ok sga -> (
        let t0 = Engine.now (Shard.engine sh) in
        (match Demi.push demi qd sga with
        | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
        | Error _ -> ());
        match Demi.pop demi qd with
        | Error _ -> ()
        | Ok tok ->
            Demi.watch demi tok (function
              | Types.Popped reply ->
                  record_op t i tally
                    (Int64.sub (Engine.now (Shard.engine sh)) t0)
                    ~remote:(home <> i);
                  Demi.sga_free demi reply;
                  Demi.sga_free demi sga;
                  echo_flow_round t i tally qd ~size
                    ~rounds_left:(rounds_left - 1)
              | Types.Failed _ -> (
                  match Demi.close demi qd with Ok () | Error _ -> ())
              | Types.Pushed | Types.Accepted _ -> ()))

let run_echo ?drive t ~flows ~size ~rounds =
  let owners = place_flows t ~flows ~dst_port:echo_port in
  let tallies =
    Array.init t.n (fun _ ->
        { t_flows = 0; t_ops = 0; t_remote = 0; t_lat = Histogram.create () })
  in
  for i = 0 to t.n - 1 do
    match start_server t i ~port:echo_port serve_echo_conn with
    | Ok () -> ()
    | Error _ -> invalid_arg "Runtime.run_echo: server start failed"
  done;
  (* Connection setup is blocking and runs only the owner's engine;
     shards do not interact yet, so doing it in flow order is
     deterministic. *)
  let conns =
    Array.map
      (fun owner ->
        tallies.(owner).t_flows <- tallies.(owner).t_flows + 1;
        match connect_client t owner ~port:echo_port with
        | Ok qd -> (owner, qd)
        | Error _ -> invalid_arg "Runtime.run_echo: connect failed")
      owners
  in
  let starts = Array.map Engine.now t.engines in
  Array.iter
    (fun (owner, qd) ->
      echo_flow_round t owner tallies.(owner) qd ~size ~rounds_left:rounds)
    conns;
  (match drive with
  | Some f -> f t.engines
  | None -> Engine.run_group t.engines);
  finish_stats t tallies starts

(* ---- KV workload ---- *)

let kv_port = 6379

(* Global key space striped across shards: key index k lives on shard
   [k mod n]. *)
let key_home t key =
  (* Workload.key_name format: "key-%08d". *)
  if String.length key < 5 then 0
  else
    match int_of_string_opt (String.sub key 4 (String.length key - 4)) with
    | Some idx when idx >= 0 -> idx mod t.n
    | Some _ | None -> 0

let kv_answer t i qd sga =
  let sh = t.shards.(i) in
  let demi = Shard.demi_server sh in
  Engine.consume (Shard.engine sh) (Shard.cost sh).Cost.app_request;
  (match Proto.request_of_sga sga with
  | None -> ()
  | Some req ->
      let key =
        match req with
        | Proto.Get k | Proto.Del k -> k
        | Proto.Set (k, _) -> k
      in
      let home = key_home t key in
      if home = i then (
        let resp = Kv.apply_zero_copy (Shard.kv sh) req in
        match Demi.push demi qd resp with
        | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
        | Error _ -> ())
      else
        request t ~src:i ~dst:home (Kv_req req) (fun reply ->
            let resp =
              match reply with Kv_resp r -> r | _ -> Proto.Not_found
            in
            match Demi.push demi qd (Proto.response_sga resp) with
            | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
            | Error _ -> ()));
  Dk_mem.Sga.free sga

let rec serve_kv_conn t i qd =
  let demi = Shard.demi_server t.shards.(i) in
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (function
        | Types.Popped sga ->
            kv_answer t i qd sga;
            serve_kv_conn t i qd
        | Types.Failed _ -> (
            match Demi.close demi qd with Ok () | Error _ -> ())
        | Types.Pushed | Types.Accepted _ -> ())

let kv_request t i ~keys_per_shard ~value_size ~read_fraction =
  let sh = t.shards.(i) in
  let home = draw_home t i in
  let local = Rng.int (Shard.rng sh) keys_per_shard in
  let key = Dk_apps.Workload.key_name (home + (t.n * local)) in
  let req =
    if Rng.bool (Shard.rng sh) read_fraction then Proto.Get key
    else Proto.Set (key, String.make value_size 'v')
  in
  (req, home)

let rec kv_flow_round t i tally qd ~keys_per_shard ~value_size ~read_fraction
    ~ops_left =
  let sh = t.shards.(i) in
  let demi = Shard.demi_client sh in
  if ops_left <= 0 then (
    match Demi.close demi qd with Ok () | Error _ -> ())
  else
    let req, home =
      kv_request t i ~keys_per_shard ~value_size ~read_fraction
    in
    let sga = Proto.request_sga req in
    let t0 = Engine.now (Shard.engine sh) in
    (match Demi.push demi qd sga with
    | Ok ptok -> Demi.watch demi ptok (fun _ -> ())
    | Error _ -> ());
    match Demi.pop demi qd with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch demi tok (function
          | Types.Popped reply ->
              record_op t i tally
                (Int64.sub (Engine.now (Shard.engine sh)) t0)
                ~remote:(home <> i);
              Dk_mem.Sga.free reply;
              kv_flow_round t i tally qd ~keys_per_shard ~value_size
                ~read_fraction ~ops_left:(ops_left - 1)
          | Types.Failed _ -> (
              match Demi.close demi qd with Ok () | Error _ -> ())
          | Types.Pushed | Types.Accepted _ -> ())

let preload_kv t ~keys_per_shard ~value_size =
  (* Warm every shard's store directly (no network): key k lives on
     shard [k mod n]. *)
  for i = 0 to t.n - 1 do
    for local = 0 to keys_per_shard - 1 do
      let key = Dk_apps.Workload.key_name (i + (t.n * local)) in
      let (_ : bool) =
        Kv.set (Shard.kv t.shards.(i)) key (String.make value_size 'v')
      in
      ()
    done
  done

let run_kv ?drive t ~flows ~ops_per_flow ~keys_per_shard ~value_size
    ~read_fraction =
  if keys_per_shard <= 0 then invalid_arg "Runtime.run_kv: keys_per_shard";
  let owners = place_flows t ~flows ~dst_port:kv_port in
  let tallies =
    Array.init t.n (fun _ ->
        { t_flows = 0; t_ops = 0; t_remote = 0; t_lat = Histogram.create () })
  in
  preload_kv t ~keys_per_shard ~value_size;
  for i = 0 to t.n - 1 do
    match start_server t i ~port:kv_port serve_kv_conn with
    | Ok () -> ()
    | Error _ -> invalid_arg "Runtime.run_kv: server start failed"
  done;
  let conns =
    Array.map
      (fun owner ->
        tallies.(owner).t_flows <- tallies.(owner).t_flows + 1;
        match connect_client t owner ~port:kv_port with
        | Ok qd -> (owner, qd)
        | Error _ -> invalid_arg "Runtime.run_kv: connect failed")
      owners
  in
  let starts = Array.map Engine.now t.engines in
  Array.iter
    (fun (owner, qd) ->
      kv_flow_round t owner tallies.(owner) qd ~keys_per_shard ~value_size
        ~read_fraction ~ops_left:ops_per_flow)
    conns;
  (match drive with
  | Some f -> f t.engines
  | None -> Engine.run_group t.engines);
  finish_stats t tallies starts

(* ---- accessors ---- *)

let shard_count t = t.n

let pending_count t =
  Array.fold_left (fun a tbl -> a + Hashtbl.length tbl) 0 t.pending
let shards t = t.shards
let engines t = t.engines
let rss t = t.rss
let xfrac t = t.xfrac
let seed t = t.seed
