(** One shared-nothing shard of the multi-shard datapath.

    A shard is a virtual core: its own engine (clock), fabric, client
    and server hosts, Demikernel instances — and with them qd tables,
    token waitsets, ready FIFOs, memory/rx pools, TCP state and
    doorbell windows — a KV store, an isolated fault domain, a
    workload RNG, and [shard<i>.*]-namespaced observability
    instruments. Cross-shard communication happens only through
    {!Xmailbox}. *)

type t

val create :
  id:int ->
  ?cost:Dk_sim.Cost.t ->
  ?fault_plan:Dk_fault.Fault.plan ->
  ?programmable:bool ->
  seed:int64 ->
  unit ->
  t
(** Build the shard's whole world. [fault_plan], when given, is
    installed into the shard's private {!Dk_fault.Fault.t} domain —
    faults never leak across shards. [programmable] (default [false])
    gives the {e server} host a programmable NIC so the shard can
    offload its kv GET hot path ({!Demikernel.Demi.offload_udp_get});
    its device table's instruments live under the shard's own
    [shard<i>.] namespace. The shard's RNG stream is derived from
    [seed] and [id], so it is independent of other shards' draw
    counts. *)

val id : t -> int
val engine : t -> Dk_sim.Engine.t
val fabric : t -> Dk_device.Fabric.t
val client_host : t -> Dk_apps.Sim_setup.host
val server_host : t -> Dk_apps.Sim_setup.host
val cost : t -> Dk_sim.Cost.t
val fault : t -> Dk_fault.Fault.t
val demi_client : t -> Demikernel.Demi.t
val demi_server : t -> Demikernel.Demi.t
val kv : t -> Dk_apps.Kv.t
val rng : t -> Dk_sim.Rng.t
val server_endpoint : t -> int -> Dk_net.Addr.endpoint

(** Per-shard instruments (in the default registry, names
    [shard<i>.<layer>.<component>.<event>]): *)

val rtt_hist : t -> Dk_obs.Metrics.hist
val ops_counter : t -> Dk_obs.Metrics.counter
val remote_counter : t -> Dk_obs.Metrics.counter
val flows_counter : t -> Dk_obs.Metrics.counter

val obs_name : int -> string -> string
(** [obs_name i rest] is ["shard<i>.<rest>"] — the naming scheme every
    per-shard instrument follows. *)
