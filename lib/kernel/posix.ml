module Stack = Dk_net.Stack
module Tcp = Dk_net.Tcp

type fd = int

type error =
  [ `Bad_fd | `Again | `In_use | `Not_supported | `Connection_closed ]

type stats = { syscalls : int; bytes_copied : int }

type sock_state = {
  mutable conn : Tcp.conn option;
  backlog : Tcp.conn Queue.t;
  mutable listening : bool;
  mutable is_connected : bool;
  mutable peer_closed : bool;
}

type kind =
  | Sock of sock_state
  | Pipe_read of Kpipe.t
  | Pipe_write of Kpipe.t
  | Epoll of (fd, [ `In | `Out ] list) Hashtbl.t

type event = [ `In | `Out ]

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  stack : Stack.t;
  fds : (fd, kind) Hashtbl.t;
  mutable next_fd : int;
  mutable syscalls : int;
  mutable bytes_copied : int;
  (* blocked epoll_wait callers: (epfd, max, continuation) *)
  mutable blocked : (fd * int * ((fd * event) list -> unit)) list;
}

let create ~engine ~cost ~stack () =
  {
    engine;
    cost;
    stack;
    fds = Hashtbl.create 32;
    next_fd = 3;
    syscalls = 0;
    bytes_copied = 0;
    blocked = [];
  }

let charge_syscall t =
  t.syscalls <- t.syscalls + 1;
  Dk_sim.Engine.consume t.engine t.cost.Dk_sim.Cost.syscall

let charge_copy t n =
  t.bytes_copied <- t.bytes_copied + n;
  Dk_sim.Engine.consume t.engine (Dk_sim.Cost.copy_ns t.cost n)

let charge_demux t =
  Dk_sim.Engine.consume t.engine t.cost.Dk_sim.Cost.kernel_sock_demux

let fresh_fd t kind =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fds fd kind;
  fd

let find t fd = Hashtbl.find_opt t.fds fd

(* ---- readiness ---- *)

let sock_readable s =
  (s.listening && not (Queue.is_empty s.backlog))
  || s.peer_closed
  ||
  match s.conn with Some c -> Tcp.recv_ready c > 0 | None -> false

let sock_writable s =
  match s.conn with
  | Some c -> s.is_connected && Tcp.send_space c > 0 && not s.peer_closed
  | None -> false

let readable t fd =
  match find t fd with
  | Some (Sock s) -> sock_readable s
  | Some (Pipe_read p) -> Kpipe.readable p > 0 || Kpipe.eof p
  | Some (Pipe_write _ | Epoll _) | None -> false

let writable t fd =
  match find t fd with
  | Some (Sock s) -> sock_writable s
  | Some (Pipe_write p) -> Kpipe.writable p > 0
  | Some (Pipe_read _ | Epoll _) | None -> false

let collect_ready t epfd max =
  match find t epfd with
  | Some (Epoll interests) ->
      let ready = ref [] in
      let count = ref 0 in
      (* Sorted by fd: [max] truncates, so hash-order iteration would
         make *which* fds get reported depend on the hash seed. *)
      Dk_util.Det.iter_sorted ~compare:Int.compare
        (fun fd events ->
          List.iter
            (fun ev ->
              if !count < max then
                let is_ready =
                  match ev with `In -> readable t fd | `Out -> writable t fd
                in
                if is_ready then begin
                  ready := (fd, ev) :: !ready;
                  incr count
                end)
            events)
        interests;
      !ready
  | Some _ | None -> []

(* A socket event occurred: wake blocked epoll_wait callers whose sets
   are now ready. Each wakeup costs a context switch. *)
let poke t =
  let still_blocked, to_wake =
    List.partition
      (fun (epfd, max, _) -> collect_ready t epfd max = [])
      t.blocked
  in
  t.blocked <- still_blocked;
  List.iter
    (fun (epfd, max, k) ->
      ignore
        (Dk_sim.Engine.after t.engine t.cost.Dk_sim.Cost.context_switch
           (fun () -> k (collect_ready t epfd max))))
    to_wake

let wire_conn t s conn =
  s.conn <- Some conn;
  Tcp.set_on_readable conn (fun () -> poke t);
  Tcp.set_on_writable conn (fun () -> poke t);
  Tcp.set_on_connect conn (fun () ->
      s.is_connected <- true;
      poke t);
  (* Peer FIN is the read-side EOF, long before the connection fully
     closes. *)
  Tcp.set_on_peer_fin conn (fun () ->
      s.peer_closed <- true;
      poke t);
  Tcp.set_on_close conn (fun _ ->
      s.peer_closed <- true;
      poke t)

(* ---- sockets ---- *)

let socket t =
  charge_syscall t;
  fresh_fd t
    (Sock
       {
         conn = None;
         backlog = Queue.create ();
         listening = false;
         is_connected = false;
         peer_closed = false;
       })

let listen t fd ~port =
  charge_syscall t;
  match find t fd with
  | Some (Sock s) -> (
      match
        Stack.tcp_listen t.stack ~port ~on_accept:(fun conn ->
            Queue.add conn s.backlog;
            poke t)
      with
      | Ok () ->
          s.listening <- true;
          Ok ()
      | Error `In_use -> Error `In_use)
  | Some _ -> Error `Not_supported
  | None -> Error `Bad_fd

let accept t fd =
  charge_syscall t;
  charge_demux t;
  match find t fd with
  | Some (Sock s) when s.listening -> (
      match Queue.take_opt s.backlog with
      | None -> Error `Again
      | Some conn ->
          let state =
            {
              conn = None;
              backlog = Queue.create ();
              listening = false;
              is_connected = true;
              peer_closed = false;
            }
          in
          wire_conn t state conn;
          Ok (fresh_fd t (Sock state)))
  | Some (Sock _) -> Error `Not_supported
  | Some _ -> Error `Not_supported
  | None -> Error `Bad_fd

let connect t fd ~dst =
  charge_syscall t;
  match find t fd with
  | Some (Sock s) ->
      if s.conn <> None then Error `In_use
      else begin
        let conn = Stack.tcp_connect t.stack ~dst in
        wire_conn t s conn;
        Ok ()
      end
  | Some _ -> Error `Not_supported
  | None -> Error `Bad_fd

let connected t fd =
  match find t fd with
  | Some (Sock { is_connected; _ }) -> is_connected
  | Some _ | None -> false

let read t fd buf off len =
  charge_syscall t;
  match find t fd with
  | Some (Sock s) -> (
      charge_demux t;
      match s.conn with
      | None -> Error `Not_supported
      | Some conn ->
          let avail = Tcp.recv_ready conn in
          if avail = 0 then
            if s.peer_closed then Ok 0 (* EOF *) else Error `Again
          else begin
            let n = Tcp.recv_into conn buf off (min len avail) in
            charge_copy t n;
            Ok n
          end)
  | Some (Pipe_read p) ->
      let s = Kpipe.read p len in
      let n = String.length s in
      if n = 0 then if Kpipe.eof p then Ok 0 else Error `Again
      else begin
        Bytes.blit_string s 0 buf off n;
        charge_copy t n;
        Ok n
      end
  | Some (Pipe_write _ | Epoll _) -> Error `Not_supported
  | None -> Error `Bad_fd

let write t fd data =
  charge_syscall t;
  match find t fd with
  | Some (Sock s) -> (
      charge_demux t;
      match s.conn with
      | None -> Error `Not_supported
      | Some conn ->
          if s.peer_closed then Error `Connection_closed
          else begin
            (* user -> kernel copy happens before the stack sees it *)
            let n = Tcp.send conn data in
            if n = 0 then Error `Again
            else begin
              charge_copy t n;
              Ok n
            end
          end)
  | Some (Pipe_write p) ->
      let n = Kpipe.write p data in
      if n = 0 then Error `Again
      else begin
        charge_copy t n;
        Ok n
      end
  | Some (Pipe_read _ | Epoll _) -> Error `Not_supported
  | None -> Error `Bad_fd

let close t fd =
  charge_syscall t;
  (match find t fd with
  | Some (Sock s) -> (
      match s.conn with Some conn -> Tcp.close conn | None -> ())
  | Some (Pipe_write p) -> Kpipe.close_write p
  | Some (Pipe_read _ | Epoll _) | None -> ());
  Hashtbl.remove t.fds fd

let pipe t =
  charge_syscall t;
  let p = Kpipe.create () in
  let r = fresh_fd t (Pipe_read p) in
  let w = fresh_fd t (Pipe_write p) in
  (r, w)

(* ---- epoll ---- *)

let epoll_create t =
  charge_syscall t;
  fresh_fd t (Epoll (Hashtbl.create 16))

let epoll_add t epfd fd events =
  charge_syscall t;
  match find t epfd with
  | Some (Epoll interests) ->
      if Hashtbl.mem t.fds fd then begin
        Hashtbl.replace interests fd (events :> [ `In | `Out ] list);
        Ok ()
      end
      else Error `Bad_fd
  | Some _ -> Error `Not_supported
  | None -> Error `Bad_fd

let epoll_del t epfd fd =
  charge_syscall t;
  match find t epfd with
  | Some (Epoll interests) -> Hashtbl.remove interests fd
  | Some _ | None -> ()

let epoll_wait t epfd ~max =
  charge_syscall t;
  collect_ready t epfd max

let epoll_wait_block t epfd ~max k =
  charge_syscall t;
  match collect_ready t epfd max with
  | [] -> t.blocked <- (epfd, max, k) :: t.blocked
  | ready -> k ready

let stats t = { syscalls = t.syscalls; bytes_copied = t.bytes_copied }
