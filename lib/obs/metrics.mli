(** Datapath metrics registry: named counters, gauges and log-linear
    latency histograms.

    Kernel-bypass removes the kernel's observability along with its
    overheads; the libOS must supply its own (§2, §4.4). This registry
    is that replacement. Two invariants govern every instrument here:

    - {b Fast-path cost}: recording an event is one mutable-field bump
      on a pre-resolved record. Name resolution (hashtable lookup)
      happens once, when the instrument is created, never per event.
    - {b Zero virtual time}: no operation in this module touches
      [Dk_sim.Engine] or [Dk_sim.Rng]. Instrumented and uninstrumented
      runs produce bit-identical simulated-time results.

    Instruments are get-or-create by name: asking twice for the same
    name in the same registry returns the same instrument, so
    components of the same class share one aggregate unless they embed
    an instance id in the name.

    Naming scheme (see DESIGN.md "Observability"):
    [<layer>.<component>.<event>], e.g. [net.tcp.retransmits],
    [device.nic.rx_dropped], [core.qd3.pushes]. *)

type counter
type gauge
type hist

type t
(** A registry. Most code uses {!default}; tests create their own. *)

val create : unit -> t

val default : t
(** The process-wide registry every built-in instrument registers
    with. [reset] it between runs that must not see each other. *)

(* ---- counters: monotonically increasing event counts ---- *)

val counter : ?reg:t -> string -> counter
(** Get or create. Defaults to the {!default} registry. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

(* ---- gauges: instantaneous levels with a high-water mark ---- *)

val gauge : ?reg:t -> string -> gauge
val set : gauge -> int -> unit

val gauge_add : gauge -> int -> unit
(** Aggregate level across instances sharing the gauge: each instance
    adds on entry and subtracts on exit. *)

val gauge_value : gauge -> int

val gauge_hwm : gauge -> int
(** Highest value ever [set]/reached since creation or [reset]. *)

val gauge_name : gauge -> string

(* ---- histograms: latency distributions (ns) ---- *)

val hist : ?reg:t -> string -> hist

val observe : hist -> int64 -> unit
(** Record one sample. Negative samples clamp to zero (see
    {!Dk_sim.Histogram}). *)

val hist_data : hist -> Dk_sim.Histogram.t
val hist_name : hist -> string

(* ---- registry-wide operations ---- *)

val reset : t -> unit
(** Zero every instrument; registrations (and the instrument records
    components hold) survive, so live components keep working. *)

type hist_summary = {
  hs_count : int;
  hs_mean : float;
  hs_p50 : int64;
  hs_p90 : int64;
  hs_p99 : int64;
  hs_p999 : int64;  (** SLO tail: p99.9 (see DESIGN.md "Scenario harness") *)
  hs_max : int64;
}

type snapshot = {
  counters : (string * int) list;          (** sorted by name *)
  gauges : (string * int * int) list;      (** name, value, high-water *)
  hists : (string * hist_summary) list;    (** sorted by name *)
}

val snapshot : t -> snapshot
(** A consistent, name-sorted view; independent of creation order so
    exports are deterministic. *)

val snapshot_with_shard_agg : t -> snapshot
(** {!snapshot} plus one synthesized [shards.agg.<rest>] entry for
    every metric that appears as [shard<i>.<rest>] (the multi-shard
    namespacing): counters sum across shards, gauges sum their levels
    (high-water = worst single shard), histograms merge before
    summarizing. A registry with no [shard<i>.*] instruments
    snapshots unchanged. *)
