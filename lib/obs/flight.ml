type kind =
  | Enqueue
  | Dequeue
  | Push
  | Pop
  | Completion
  | Drop
  | Retransmit
  | Wakeup
  | Mark

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Push -> "push"
  | Pop -> "pop"
  | Completion -> "completion"
  | Drop -> "drop"
  | Retransmit -> "retransmit"
  | Wakeup -> "wakeup"
  | Mark -> "mark"

let kind_tag = function
  | Enqueue -> 0
  | Dequeue -> 1
  | Push -> 2
  | Pop -> 3
  | Completion -> 4
  | Drop -> 5
  | Retransmit -> 6
  | Wakeup -> 7
  | Mark -> 8

let kind_of_tag = function
  | 0 -> Enqueue
  | 1 -> Dequeue
  | 2 -> Push
  | 3 -> Pop
  | 4 -> Completion
  | 5 -> Drop
  | 6 -> Retransmit
  | 7 -> Wakeup
  | _ -> Mark

type entry = { at : int64; kind : kind; what : string }

(* Wire format inside the byte ring, per entry:
   [2B payload length, big-endian][8B timestamp][1B kind tag][label].
   The length prefix makes eviction O(1) per evicted entry: read the
   prefix, drop that many bytes. *)
let header_len = 2
let payload_fixed = 9 (* timestamp + tag *)

type t = {
  ring : Dk_util.Ring.t;
  capacity : int;
  mutable on : bool;
  mutable count : int;    (* entries currently in the ring *)
  mutable total : int;    (* entries ever recorded *)
  mutable dropped : int;  (* entries evicted to make room *)
}

let create ?(capacity = 64 * 1024) () =
  if capacity < header_len + payload_fixed + 1 then
    invalid_arg "Flight.create: capacity too small for one entry";
  {
    ring = Dk_util.Ring.create capacity;
    capacity;
    on = true;
    count = 0;
    total = 0;
    dropped = 0;
  }

let default = create ()
[@@shard.per_shard
  "process-wide default flight recorder; shard-local code passes its own \
   recorder so entries stay within the shard"]

let enabled t = t.on
let set_enabled t on = t.on <- on

let evict_one t =
  let hdr = Bytes.create header_len in
  let got = Dk_util.Ring.read t.ring hdr 0 header_len in
  if got = header_len then begin
    let len = Bytes.get_uint16_be hdr 0 in
    ignore (Dk_util.Ring.drop t.ring len);
    t.count <- t.count - 1;
    t.dropped <- t.dropped + 1
  end
  [@@hot.alloc
    "a fixed-size header scratch when the ring wraps and must evict"]

let record t ~now kind what =
  if t.on then begin
    let max_label = t.capacity - header_len - payload_fixed in
    let what =
      if String.length what > max_label then String.sub what 0 max_label
      else what
    in
    let plen = payload_fixed + String.length what in
    let need = header_len + plen in
    while Dk_util.Ring.available t.ring < need do
      evict_one t
    done;
    let buf = Bytes.create need in
    Bytes.set_uint16_be buf 0 plen;
    Bytes.set_int64_be buf header_len now;
    Bytes.set_uint8 buf (header_len + 8) (kind_tag kind);
    Bytes.blit_string what 0 buf (header_len + payload_fixed)
      (String.length what);
    ignore (Dk_util.Ring.write t.ring buf 0 need);
    t.count <- t.count + 1;
    t.total <- t.total + 1
  end
  [@@hot.alloc
    "one bounded scratch buffer per recorded entry; the ring itself is \
     preallocated"]

let recordf t ~now kind fmt =
  if t.on then Format.kasprintf (fun s -> record t ~now kind s) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt
  [@@hot.alloc
    "formatting the flight-recorder label allocates; recording is \
     opt-in observability, not datapath payload"]

let entries t =
  let len = Dk_util.Ring.length t.ring in
  let buf = Bytes.create (max 1 len) in
  let got = Dk_util.Ring.peek t.ring buf 0 len in
  let rec parse off acc =
    if off + header_len > got then List.rev acc
    else begin
      let plen = Bytes.get_uint16_be buf off in
      if off + header_len + plen > got then List.rev acc
      else
        let at = Bytes.get_int64_be buf (off + header_len) in
        let kind = kind_of_tag (Bytes.get_uint8 buf (off + header_len + 8)) in
        let what =
          Bytes.sub_string buf
            (off + header_len + payload_fixed)
            (plen - payload_fixed)
        in
        parse (off + header_len + plen) ({ at; kind; what } :: acc)
    end
  in
  parse 0 []

let length t = t.count
let recorded t = t.total
let evicted t = t.dropped

let clear t =
  Dk_util.Ring.clear t.ring;
  t.count <- 0;
  t.total <- 0;
  t.dropped <- 0

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%12Ld  %-10s %s@\n" e.at (kind_name e.kind) e.what)
    (entries t)
