let pp_table ppf (s : Metrics.snapshot) =
  let name_width =
    List.fold_left
      (fun w n -> max w (String.length n))
      12
      (List.map fst s.Metrics.counters
      @ List.map (fun (n, _, _) -> n) s.Metrics.gauges
      @ List.map fst s.Metrics.hists)
  in
  if s.Metrics.counters <> [] then begin
    Format.fprintf ppf "counters:@\n";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-*s %d@\n" name_width name v)
      s.Metrics.counters
  end;
  if s.Metrics.gauges <> [] then begin
    Format.fprintf ppf "gauges (value / high-water):@\n";
    List.iter
      (fun (name, v, hwm) ->
        Format.fprintf ppf "  %-*s %d / %d@\n" name_width name v hwm)
      s.Metrics.gauges
  end;
  if s.Metrics.hists <> [] then begin
    Format.fprintf ppf "histograms (ns):@\n";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf
          "  %-*s n=%d mean=%.0f p50=%Ld p90=%Ld p99=%Ld p99.9=%Ld max=%Ld@\n"
          name_width name h.Metrics.hs_count h.Metrics.hs_mean h.Metrics.hs_p50
          h.Metrics.hs_p90 h.Metrics.hs_p99 h.Metrics.hs_p999 h.Metrics.hs_max)
      s.Metrics.hists
  end

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_hist (h : Metrics.hist_summary) =
  Printf.sprintf
    "{\"count\":%d,\"mean\":%.1f,\"p50\":%Ld,\"p90\":%Ld,\"p99\":%Ld,\"p999\":%Ld,\"max\":%Ld}"
    h.Metrics.hs_count h.Metrics.hs_mean h.Metrics.hs_p50 h.Metrics.hs_p90
    h.Metrics.hs_p99 h.Metrics.hs_p999 h.Metrics.hs_max

let fields items = String.concat "," items

let json_value ~now (s : Metrics.snapshot) =
  let counters =
    fields
      (List.map
         (fun (n, v) -> Printf.sprintf "%s:%d" (json_string n) v)
         s.Metrics.counters)
  in
  let gauges =
    fields
      (List.map
         (fun (n, v, hwm) ->
           Printf.sprintf "%s:{\"value\":%d,\"hwm\":%d}" (json_string n) v hwm)
         s.Metrics.gauges)
  in
  let hists =
    fields
      (List.map
         (fun (n, h) -> Printf.sprintf "%s:%s" (json_string n) (json_hist h))
         s.Metrics.hists)
  in
  Printf.sprintf
    "{\"ts\":%Ld,\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}" now
    counters gauges hists

let json_lines ~now (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  List.iter
    (fun (n, v) ->
      line "{\"ts\":%Ld,\"kind\":\"counter\",\"name\":%s,\"value\":%d}" now
        (json_string n) v)
    s.Metrics.counters;
  List.iter
    (fun (n, v, hwm) ->
      line "{\"ts\":%Ld,\"kind\":\"gauge\",\"name\":%s,\"value\":%d,\"hwm\":%d}"
        now (json_string n) v hwm)
    s.Metrics.gauges;
  List.iter
    (fun (n, h) ->
      line "{\"ts\":%Ld,\"kind\":\"histogram\",\"name\":%s,\"summary\":%s}" now
        (json_string n) (json_hist h))
    s.Metrics.hists;
  Buffer.contents buf

let json_flight fl =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (e : Flight.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"ts\":%Ld,\"event\":\"%s\",\"what\":%s}\n"
           e.Flight.at
           (Flight.kind_name e.Flight.kind)
           (json_string e.Flight.what)))
    (Flight.entries fl);
  Buffer.contents buf
