(** Exporters for {!Metrics} snapshots and {!Flight} recordings.

    Two formats: a human-readable table for terminals (`demi stats`)
    and JSON for machine consumption (`BENCH_<exp>.json`, `demi stats
    --json`). JSON lines are keyed by the virtual timestamp the caller
    passes — the exporter never reads the engine clock itself. *)

val pp_table : Format.formatter -> Metrics.snapshot -> unit
(** Counters, gauges (with high-water marks) and histogram summaries,
    one instrument per line, grouped and name-sorted. *)

val json_string : string -> string
(** JSON string literal with the necessary escapes, including the
    surrounding quotes. *)

val json_value : now:int64 -> Metrics.snapshot -> string
(** The whole snapshot as one JSON object:
    [{"ts":N,"counters":{...},"gauges":{"name":{"value":V,"hwm":H}},
      "histograms":{"name":{"count":..,"mean":..,"p50":..,"p90":..,
      "p99":..,"max":..}}}]. *)

val json_lines : now:int64 -> Metrics.snapshot -> string
(** One JSON object per line, each carrying ["ts"], ["kind"]
    ([counter]/[gauge]/[histogram]), ["name"] and the value fields —
    the append-friendly form for long-running collectors. *)

val json_flight : Flight.t -> string
(** One JSON object per line per entry:
    [{"ts":N,"event":"drop","what":"..."}], oldest first. *)
