(** Flight recorder: a fixed-capacity ring of the most recent datapath
    events, for post-mortem introspection of a path the kernel can no
    longer see.

    Entries are length-prefixed records packed into a
    {!Dk_util.Ring.t} byte ring; when the ring fills, the oldest
    entries are evicted, so memory use is bounded by [capacity] bytes
    regardless of event rate. Dump it on demand ({!pp}) or wire it to
    sanitizer violations:

    {[ Dk_check.set_sink (fun _ _ -> Format.eprintf "%a" Flight.pp Flight.default) ]}

    Recording never touches the simulation engine: timestamps are
    passed in by the caller ([Engine.now] reads, never consumes), so
    the recorder obeys the same zero-virtual-time invariant as
    {!Metrics}. *)

type kind =
  | Enqueue      (** element entered a device/queue ring *)
  | Dequeue      (** element left a device/queue ring *)
  | Push         (** application push on a queue descriptor *)
  | Pop          (** application pop on a queue descriptor *)
  | Completion   (** an operation's token completed *)
  | Drop         (** element lost: full ring, lossy fabric, filter *)
  | Retransmit   (** TCP resent a segment (RTO or fast retransmit) *)
  | Wakeup       (** a waiter/fiber/worker was woken *)
  | Mark         (** free-form annotation *)

val kind_name : kind -> string

type entry = { at : int64; kind : kind; what : string }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is in bytes of encoded entries (default 64 KiB).
    @raise Invalid_argument if too small to hold a single entry. *)

val default : t
(** Process-wide recorder the built-in instrumentation writes to. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> now:int64 -> kind -> string -> unit
(** Append an entry (evicting the oldest as needed). Labels longer
    than the ring allows are truncated. No-op when disabled. *)

val recordf :
  t -> now:int64 -> kind -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the label is only built when enabled, so
    disabled recorders cost one branch per site. *)

val entries : t -> entry list
(** Oldest first. Non-destructive. *)

val length : t -> int
(** Entries currently held. *)

val recorded : t -> int
(** Total entries ever recorded (including evicted ones). *)

val evicted : t -> int
(** Entries evicted to make room since creation or [clear]. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One line per entry: [%12Ld  %-10s %s] (timestamp, kind, label). *)
