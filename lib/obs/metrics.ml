type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : int; mutable g_hwm : int }

type hist = { h_name : string; h_data : Dk_sim.Histogram.t }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let default = create ()
[@@shard.per_shard
  "process-wide default instrument registry; shard-local code passes its \
   own ~reg so counters stay within the shard"]

let get_or_create table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace table name v;
      v

let counter ?(reg = default) name =
  get_or_create reg.counters name (fun () -> { c_name = name; c_value = 0 })

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let counter_name c = c.c_name

let gauge ?(reg = default) name =
  get_or_create reg.gauges name (fun () ->
      { g_name = name; g_value = 0; g_hwm = 0 })

let set g v =
  g.g_value <- v;
  if v > g.g_hwm then g.g_hwm <- v

let gauge_add g n = set g (g.g_value + n)
let gauge_value g = g.g_value
let gauge_hwm g = g.g_hwm
let gauge_name g = g.g_name

let hist ?(reg = default) name =
  get_or_create reg.hists name (fun () ->
      { h_name = name; h_data = Dk_sim.Histogram.create () })

let observe h v = Dk_sim.Histogram.record h.h_data v
let hist_data h = h.h_data
let hist_name h = h.h_name

let reset t =
  let iter f tbl = Dk_util.Det.iter_sorted ~compare:String.compare f tbl in
  iter (fun _ c -> c.c_value <- 0) t.counters;
  iter
    (fun _ g ->
      g.g_value <- 0;
      g.g_hwm <- 0)
    t.gauges;
  iter (fun _ h -> Dk_sim.Histogram.clear h.h_data) t.hists

type hist_summary = {
  hs_count : int;
  hs_mean : float;
  hs_p50 : int64;
  hs_p90 : int64;
  hs_p99 : int64;
  hs_p999 : int64;
  hs_max : int64;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int * int) list;
  hists : (string * hist_summary) list;
}

let sorted_bindings table f =
  Dk_util.Det.fold_sorted ~compare:String.compare
    (fun name v acc -> (name, f v) :: acc)
    table []
  |> List.rev

let summarize (h : Dk_sim.Histogram.t) =
  {
    hs_count = Dk_sim.Histogram.count h;
    hs_mean = Dk_sim.Histogram.mean h;
    hs_p50 = Dk_sim.Histogram.quantile h 0.5;
    hs_p90 = Dk_sim.Histogram.quantile h 0.9;
    hs_p99 = Dk_sim.Histogram.quantile h 0.99;
    hs_p999 = Dk_sim.Histogram.quantile h 0.999;
    hs_max = Dk_sim.Histogram.max h;
  }

let snapshot (t : t) : snapshot =
  {
    counters = sorted_bindings t.counters (fun c -> c.c_value);
    gauges =
      (sorted_bindings t.gauges (fun g -> (g.g_value, g.g_hwm))
      |> List.map (fun (n, (v, h)) -> (n, v, h)));
    hists = sorted_bindings t.hists (fun h -> summarize h.h_data);
  }

(* ---- multi-shard aggregation ----

   The multi-shard datapath namespaces every per-shard instrument as
   shard<i>.<layer>.<component>.<event>. The aggregated view folds
   those back into one shards.agg.<layer>.<component>.<event> entry
   per metric — the operator's "whole box" view next to the per-core
   ones — without touching the underlying instruments. *)

let agg_prefix = "shards.agg."

(* "shard<digits>.<rest>" -> Some rest *)
let shard_rest name =
  let n = String.length name in
  if n < 7 || not (String.equal (String.sub name 0 5) "shard") then None
  else begin
    let i = ref 5 in
    while !i < n && name.[!i] >= '0' && name.[!i] <= '9' do
      i := !i + 1
    done;
    if !i > 5 && !i < n - 1 && name.[!i] = '.' then
      Some (String.sub name (!i + 1) (n - !i - 1))
    else None
  end

let by_name_fst a b = String.compare (fst a) (fst b)
let by_name_3 (a, _, _) (b, _, _) = String.compare a b

let snapshot_with_shard_agg (t : t) : snapshot =
  let base = snapshot t in
  let csum = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      match shard_rest name with
      | None -> ()
      | Some rest ->
          let prev =
            match Hashtbl.find_opt csum rest with Some p -> p | None -> 0
          in
          Hashtbl.replace csum rest (prev + v))
    base.counters;
  let gsum = Hashtbl.create 16 in
  List.iter
    (fun (name, v, hwm) ->
      match shard_rest name with
      | None -> ()
      | Some rest ->
          let pv, ph =
            match Hashtbl.find_opt gsum rest with
            | Some p -> p
            | None -> (0, 0)
          in
          (* Aggregate level sums across shards; the high-water of the
             sum is unknowable after the fact, so report the worst
             single shard's. *)
          Hashtbl.replace gsum rest (pv + v, Stdlib.max ph hwm))
    base.gauges;
  let hmerge = Hashtbl.create 16 in
  Dk_util.Det.iter_sorted ~compare:String.compare
    (fun name h ->
      match shard_rest name with
      | None -> ()
      | Some rest ->
          let merged =
            match Hashtbl.find_opt hmerge rest with
            | Some prev -> Dk_sim.Histogram.merge prev h.h_data
            | None -> Dk_sim.Histogram.merge (Dk_sim.Histogram.create ()) h.h_data
          in
          Hashtbl.replace hmerge rest merged)
    t.hists;
  let folded tbl f =
    Dk_util.Det.fold_sorted ~compare:String.compare
      (fun rest v acc -> f (agg_prefix ^ rest) v :: acc)
      tbl []
  in
  {
    counters =
      List.sort by_name_fst (base.counters @ folded csum (fun n v -> (n, v)));
    gauges =
      List.sort by_name_3
        (base.gauges @ folded gsum (fun n (v, hwm) -> (n, v, hwm)));
    hists =
      List.sort by_name_fst
        (base.hists @ folded hmerge (fun n h -> (n, summarize h)));
  }
