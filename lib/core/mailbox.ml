type t = {
  tokens : Token.t;
  ready : Types.op_result Queue.t;
  waiters : Types.qtoken Queue.t;
  mutable terminal : Types.error option;
  mutable on_deliver : unit -> unit;
}

let create tokens =
  {
    tokens;
    ready = Queue.create ();
    waiters = Queue.create ();
    terminal = None;
    on_deliver = (fun () -> ());
  }

(* Class-wide obs instruments (aggregated across mailboxes): the
   buffered gauge is the total depth of all ready queues, its
   high-water mark the worst backlog any run accumulated. *)
let m_delivered = Dk_obs.Metrics.counter "core.mailbox.delivered"
let g_buffered = Dk_obs.Metrics.gauge "core.mailbox.buffered"

let deliver t result =
  Dk_obs.Metrics.incr m_delivered;
  (match Queue.take_opt t.waiters with
  | Some tok -> Token.complete t.tokens tok result
  | None ->
      Queue.add result t.ready;
      Dk_obs.Metrics.gauge_add g_buffered 1);
  t.on_deliver ()

let pop t tok =
  match Queue.take_opt t.ready with
  | Some result ->
      Dk_obs.Metrics.gauge_add g_buffered (-1);
      Token.complete t.tokens tok result
  | None -> (
      match t.terminal with
      | Some err -> Token.complete t.tokens tok (Types.Failed err)
      | None -> Queue.add tok t.waiters)

let fail t err =
  if t.terminal = None then begin
    t.terminal <- Some err;
    Queue.iter
      (fun tok -> Token.complete t.tokens tok (Types.Failed err))
      t.waiters;
    Queue.clear t.waiters
  end

let close t = fail t `Queue_closed
let buffered t = Queue.length t.ready
let waiting t = Queue.length t.waiters
let set_on_deliver t f = t.on_deliver <- f
