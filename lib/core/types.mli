(** Shared types of the Demikernel interface (Figure 3).

    System calls that give applications access to I/O return {e queue
    descriptors} ([qd]) instead of file descriptors; non-blocking data
    path operations return {e queue tokens} ([qtoken]) that are later
    redeemed with the [wait_*] calls. *)

type qd = int
type qtoken = int

type error =
  [ `Bad_qd        (** unknown or closed queue descriptor *)
  | `Bad_qtoken    (** unknown or already-redeemed token *)
  | `Queue_closed  (** operation on a closed/reset queue *)
  | `Would_block   (** non-blocking operation found nothing *)
  | `Refused       (** connection refused (RST) *)
  | `Timeout       (** wait timeout or transport timeout *)
  | `Conn_aborted  (** established transport gave up (ECONNABORTED):
                       TCP exhausted its RTO retries, or an RDMA queue
                       pair broke under an active operation *)
  | `Io_error      (** device I/O failed after the libOS exhausted its
                       retry budget (NVMe completion error) *)
  | `No_memory     (** memory manager exhausted *)
  | `Not_supported (** operation not valid for this queue kind *)
  | `Deadlock      (** the simulation ran out of events while waiting *)
  ]

type op_result =
  | Pushed                       (** push accepted by the libOS/device *)
  | Popped of Dk_mem.Sga.t       (** an atomic queue element *)
  | Accepted of qd               (** new connection queue (listen pops) *)
  | Failed of error

val pp_error : Format.formatter -> error -> unit
val pp_op_result : Format.formatter -> op_result -> unit
val error_to_string : error -> string
