(** Ready-element buffer shared by queue implementations.

    Holds completed results until a pop arrives, and pending pop tokens
    until a result arrives. Delivery order is FIFO in both directions,
    and each delivery completes exactly one waiting token. *)

type t

val create : Token.t -> t

val deliver : t -> Types.op_result -> unit
(** An element (or terminal error) is ready: complete the oldest
    waiting pop token, or buffer it. *)

val pop : t -> Types.qtoken -> unit
(** Redeem the oldest buffered element into [token], or queue the token.
    After {!close}, tokens complete immediately with
    [Failed `Queue_closed] once the buffer drains. *)

val close : t -> unit
(** Fail all waiting tokens; buffered elements remain poppable.
    Equivalent to [fail t `Queue_closed]. *)

val fail : t -> Types.error -> unit
(** Terminal failure with a specific error: waiting tokens (and every
    future pop, once the buffer drains) complete [Failed err]. The
    first terminal error wins; later [fail]/[close] calls are no-ops.
    Used to surface [`Conn_aborted] from a timed-out TCP connection or
    [`Io_error] from a dead block device instead of the generic
    [`Queue_closed]. *)

val buffered : t -> int
val waiting : t -> int

val set_on_deliver : t -> (unit -> unit) -> unit
(** Hook invoked after each delivery (used by composed queues to pump). *)
