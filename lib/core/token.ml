module Dk_check = Dk_mem.Dk_check

(* A wait set is the readiness FIFO for one waiter: completions of
   registered tokens enqueue the token here, so the waiter learns about
   readiness in O(1) per completion instead of rescanning its whole
   token list each poll iteration. The wakeup still targets exactly the
   registered waiter (§4.4) — a token is in at most one wait set. *)
type waitset = { ready : Types.qtoken Queue.t }

type state =
  | Pending
  | Watched of (Types.op_result -> unit)
  | Queued of waitset
  | Done of Types.op_result

type audit_report = {
  dangling : Types.qtoken list;
  double_completes : int;
  redeems_after_watch : int;
}

type t = {
  table : (Types.qtoken, state) Hashtbl.t;
  audit : bool;
  (* virtual clock, when the owner has one: lets completions land in the
     flight recorder with a timestamp. Never consumes simulated time. *)
  clock : (unit -> int64) option;
  (* tombstones for tokens consumed by a watch callback, so a later
     redeem/complete on them is diagnosable (audit mode only) *)
  consumed : (Types.qtoken, unit) Hashtbl.t;
  mutable next : int;
  mutable pending : int;
  mutable double_completes : int;
  mutable redeems_after_watch : int;
}

(* Class-wide obs instruments (aggregated across token tables). *)
let m_minted = Dk_obs.Metrics.counter "core.token.minted"
let m_completed = Dk_obs.Metrics.counter "core.token.completed"
let m_redeemed = Dk_obs.Metrics.counter "core.token.redeemed"
let g_outstanding = Dk_obs.Metrics.gauge "core.token.outstanding"

let create ?(audit = Dk_check.enabled_from_env ()) ?now () =
  {
    table = Hashtbl.create 64;
    audit;
    clock = now;
    consumed = Hashtbl.create (if audit then 64 else 1);
    next = 1;
    pending = 0;
    double_completes = 0;
    redeems_after_watch = 0;
  }

let audited t = t.audit

let fresh t =
  let tok = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.table tok Pending;
  t.pending <- t.pending + 1;
  Dk_obs.Metrics.incr m_minted;
  Dk_obs.Metrics.gauge_add g_outstanding 1;
  tok

let record_completion t tok =
  Dk_obs.Metrics.incr m_completed;
  Dk_obs.Metrics.gauge_add g_outstanding (-1);
  match t.clock with
  | Some now ->
      Dk_obs.Flight.recordf Dk_obs.Flight.default ~now:(now ())
        Dk_obs.Flight.Completion "qtoken %d" tok
  | None -> ()

let double_complete t tok =
  if t.audit then begin
    t.double_completes <- t.double_completes + 1;
    Dk_check.report Dk_check.Token_double_complete
      (Printf.sprintf
         "token %d completed twice: the second completion's wakeup would be \
          lost or delivered to the wrong waiter"
         tok)
  end
  else invalid_arg "Token.complete: token already completed"
  [@@hot.alloc "the double-complete diagnostic formats only on a misuse"]

let complete t tok result =
  match Hashtbl.find_opt t.table tok with
  | Some Pending ->
      Hashtbl.replace t.table tok (Done result);
      t.pending <- t.pending - 1;
      record_completion t tok
  | Some (Watched k) ->
      Hashtbl.remove t.table tok;
      t.pending <- t.pending - 1;
      if t.audit then Hashtbl.replace t.consumed tok ();
      record_completion t tok;
      k result
  | Some (Queued ws) ->
      Hashtbl.replace t.table tok (Done result);
      t.pending <- t.pending - 1;
      record_completion t tok;
      Queue.add tok ws.ready
  | Some (Done _) -> double_complete t tok
  | None ->
      if t.audit && Hashtbl.mem t.consumed tok then double_complete t tok
      else invalid_arg "Token.complete: unknown token"

let status t tok =
  match Hashtbl.find_opt t.table tok with
  | Some (Pending | Watched _ | Queued _) -> `Pending
  | Some (Done _) -> `Done
  | None -> `Unknown

let peek t tok =
  match Hashtbl.find_opt t.table tok with
  | Some (Done r) -> Some r
  | Some (Pending | Watched _ | Queued _) | None -> None

(* A watched token is auto-redeemed by its callback; redeeming it by
   hand would double-deliver the completion (§4.4: exactly one wakeup
   per token). Enforced, not just documented. *)
let redeem_watched t tok =
  if t.audit then begin
    t.redeems_after_watch <- t.redeems_after_watch + 1;
    Dk_check.report Dk_check.Token_redeem_after_watch
      (Printf.sprintf
         "token %d is watched: its completion is delivered to the watch \
          callback and cannot also be waited on"
         tok);
    None
  end
  else
    invalid_arg
      "Token.redeem: token is watched; a watched token cannot also be waited \
       on"
  [@@hot.alloc "the redeem-after-watch diagnostic formats only on a misuse"]

let redeem t tok =
  match Hashtbl.find_opt t.table tok with
  | Some (Done r) ->
      Hashtbl.remove t.table tok;
      Dk_obs.Metrics.incr m_redeemed;
      Some r
  | Some (Watched _) -> redeem_watched t tok
  | Some (Pending | Queued _) -> None
  | None ->
      if t.audit && Hashtbl.mem t.consumed tok then redeem_watched t tok
      else None

let watch t tok k =
  match Hashtbl.find_opt t.table tok with
  (* A queued token may still be watched: the wait set simply never
     hears about it, exactly as a scanning waiter never saw a watched
     token's completion. *)
  | Some (Pending | Queued _) -> Hashtbl.replace t.table tok (Watched k)
  | Some (Done r) ->
      Hashtbl.remove t.table tok;
      if t.audit then Hashtbl.replace t.consumed tok ();
      k r
  | Some (Watched _) -> invalid_arg "Token.watch: already watched"
  | None -> invalid_arg "Token.watch: unknown token"

let outstanding t = t.pending

let waitset () = { ready = Queue.create () }

let register t ws tok =
  match Hashtbl.find_opt t.table tok with
  | Some (Pending | Queued _) -> Hashtbl.replace t.table tok (Queued ws)
  | Some (Done _) -> Queue.add tok ws.ready
  (* Watched or unknown tokens never become ready: the waiter keeps
     polling without a hit, matching the scanning implementation where
     [peek] never returned their result either. *)
  | Some (Watched _) | None -> ()

let unregister t ws tok =
  match Hashtbl.find_opt t.table tok with
  | Some (Queued ws') when ws' == ws -> Hashtbl.replace t.table tok Pending
  | _ -> ()

let rec take_ready t ws =
  match Queue.take_opt ws.ready with
  | None -> None
  | Some tok -> (
      (* Skip stale entries: a token already redeemed (or re-minted
         state changes) since it was enqueued must not produce a second
         wakeup. *)
      match Hashtbl.find_opt t.table tok with
      | Some (Done _) -> Some tok
      | _ -> take_ready t ws)

let audit t =
  let dangling =
    Dk_util.Det.fold_sorted ~compare
      (fun tok state acc ->
        match state with
        | Pending | Watched _ | Queued _ -> tok :: acc
        | Done _ -> acc)
      t.table []
    |> List.rev
  in
  {
    dangling;
    double_completes = t.double_completes;
    redeems_after_watch = t.redeems_after_watch;
  }

let report_dangling ?(context = "queue drain") t =
  let r = audit t in
  List.iter
    (fun tok ->
      Dk_check.report Dk_check.Token_dangling
        (Printf.sprintf
           "token %d still pending at %s: its completion will never arrive \
            and any waiter is stuck forever"
           tok context))
    r.dangling;
  List.length r.dangling
