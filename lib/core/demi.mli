(** The Demikernel runtime and system-call interface (Figure 3).

    One [Demi.t] per application/host. It bundles the libOS pieces: the
    token table, the memory manager (with transparent device
    registration, §4.5), the queue-descriptor table, and whichever
    kernel-bypass devices the host has — a NIC with a user-level stack
    (DPDK-class), an RDMA NIC, and/or an NVMe-class block device.

    {b Control path} calls ([socket], [bind], [listen], [connect],
    [accept], [fopen] ...) may block: they drive the simulation until
    the operation resolves, mirroring the paper's slow-path/kernel
    split. {b Data path} calls ([push], [pop]) never block: they return
    qtokens redeemed via the [wait_*] family. *)

type t

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  ?stack:Dk_net.Stack.t ->
  ?posix:Dk_kernel.Posix.t ->
  ?rdma:Dk_device.Rdma.t ->
  ?block:Dk_device.Block.t ->
  ?mem_initial:int ->
  ?mem_max:int ->
  ?sanitize:bool ->
  unit ->
  t
(** [stack] gives kernel-bypass networking (DPDK-class). [posix] gives
    the kernel-fallback libOS instead: same interface, every operation
    through the legacy kernel (used when a host has no accelerator —
    the portability backstop). When both are provided, [stack] wins.

    [sanitize] (default: [DK_SANITIZE] in the environment) turns on
    sanitizer mode for the whole libOS instance: the memory manager's
    canary/poison/use-after-free checks ({!Dk_mem.Manager.create}) and
    the token table's exactly-once audit ({!Token.create}). *)

val engine : t -> Dk_sim.Engine.t
val cost : t -> Dk_sim.Cost.t
val manager : t -> Dk_mem.Manager.t
val registry : t -> Dk_mem.Registry.t
val outstanding_tokens : t -> int

val sanitized : t -> bool

val audit_tokens : t -> Token.audit_report
(** Exactly-once bookkeeping snapshot — see {!Token.audit}. *)

val check_shutdown : t -> int * Dk_mem.Manager.leak list
(** Sanitizer-mode shutdown sweep: report (via {!Dk_mem.Dk_check}) any
    token still dangling and any allocation still live, returning
    (dangling count, leaks). Meaningful once the application believes
    all I/O has drained. *)

(** {2 Memory (§4.5)} *)

val sga_alloc : t -> string -> (Dk_mem.Sga.t, Types.error) result
(** A managed single-segment sga holding the string; its region is
    already registered with every attached device — no explicit
    registration call exists in this interface. *)

val sga_alloc_segs : t -> string list -> (Dk_mem.Sga.t, Types.error) result
val sga_free : t -> Dk_mem.Sga.t -> unit

(** {2 Control path: network} *)

val socket : t -> [ `Tcp | `Udp ] -> (Types.qd, Types.error) result
val bind : t -> Types.qd -> port:int -> (unit, Types.error) result
val listen : t -> Types.qd -> (unit, Types.error) result

val accept_async : t -> Types.qd -> (Types.qtoken, Types.error) result
(** Completes with [Accepted qd]. *)

val accept : t -> Types.qd -> (Types.qd, Types.error) result
(** Blocking accept (drives the simulation). *)

val connect :
  t -> Types.qd -> dst:Dk_net.Addr.endpoint -> (unit, Types.error) result
(** TCP: blocks until ESTABLISHED or failure. UDP: sets the default
    peer (binding an ephemeral port if unbound). *)

val close : t -> Types.qd -> (unit, Types.error) result

(** {2 Control path: RDMA} *)

val rdma_endpoint :
  t -> ?depth:int -> ?recv_size:int -> Dk_device.Rdma.qp -> (Types.qd, Types.error) result
(** Wrap an already-connected queue pair (connection management is
    out-of-band control path) as an I/O queue with libOS-provided
    buffer management and flow control. *)

(** {2 Control path: storage} *)

val fcreate : t -> string -> (Types.qd, Types.error) result
(** Create a named log-structured file queue (§5.3). *)

val fopen : t -> string -> (Types.qd, Types.error) result
(** Re-open an existing file queue, recovering its length by scanning
    the device log (blocks while the scan runs). *)

(** {2 Control path: queues} *)

val queue : t -> Types.qd
(** A plain in-memory queue. *)

val merge : t -> Types.qd -> Types.qd -> (Types.qd, Types.error) result

val filter :
  t -> Types.qd -> Dk_device.Prog.pred -> (Types.qd, Types.error) result
(** Filter with a verified program. If the descriptor is a UDP queue on
    a programmable NIC, the program is compiled to a frame-level filter
    and installed {e on the device} — dropped messages then cost zero
    CPU; otherwise it runs on the CPU per element (§4.3). The original
    descriptor is subsumed by the returned one. *)

val filter_fn :
  t -> Types.qd -> (Dk_mem.Sga.t -> bool) -> (Types.qd, Types.error) result
(** Arbitrary OCaml predicate: always CPU. *)

val map : t -> Types.qd -> Dk_device.Prog.map -> (Types.qd, Types.error) result
val map_fn :
  t -> Types.qd -> (Dk_mem.Sga.t -> Dk_mem.Sga.t) -> (Types.qd, Types.error) result

val sort :
  t ->
  Types.qd ->
  (Dk_mem.Sga.t -> Dk_mem.Sga.t -> bool) ->
  (Types.qd, Types.error) result

val steer :
  t ->
  Types.qd ->
  ways:int ->
  hash_off:int ->
  hash_len:int ->
  (Types.qd list, Types.error) result
(** Key-based steering (§4.3: "improve cache utilization by steering
    I/O to CPUs based on application-specific parameters (e.g., keys in
    a key-value store)"). Partitions the parent's elements across
    [ways] queues by a hash of the byte range [hash_off, hash_off +
    hash_len): each element lands on exactly one output queue, FIFO per
    way. The classification runs on the device when the source is a UDP
    queue on a programmable NIC (RSS-style, zero host CPU), on the CPU
    otherwise. *)

val qconnect : t -> src:Types.qd -> dst:Types.qd -> (unit, Types.error) result

val filter_offloaded : t -> Types.qd -> bool
(** Whether the given (filtered) queue's program runs on the device. *)

(** {2 Deep NIC offload: rx pipelines and the device-resident table}

    Payload-level {!Dk_device.Prog.pipeline} stages installed on a
    bound UDP queue compile to frame-level stages (offsets shifted past
    the 42-byte headers, every guard conjoined with the port match — the
    E8 filter compilation, lifted to pipelines) and load onto the
    programmable NIC. Traffic for other ports is untouched by
    construction; with no pipeline installed the rx path is
    byte-identical to a stock NIC. *)

val offload_udp_pipeline :
  t -> Types.qd -> Dk_device.Prog.pipeline -> (unit, Types.error) result
(** Install (or replace) the pipeline for this socket's port.
    [Error `Not_supported] when the descriptor is not a bound UDP queue
    on a programmable NIC — callers fall back to evaluating the same
    stages on the CPU at {!pipeline_cpu_ns} per element. *)

val get_pipeline : max_value:int -> Dk_device.Prog.pipeline
(** The payload-level kv GET pipeline {!offload_udp_get} installs:
    one stage guarding on a leading ['G'] byte, responding from the
    table keyed by the rest of the datagram with hit prefix ["+"].
    Exposed so the CPU fallback (and tests) can evaluate the very same
    stages through {!Dk_device.Prog.eval_pipeline}. *)

val offload_udp_get :
  t ->
  Types.qd ->
  ?policy:Dk_device.Table.policy ->
  ?obs_prefix:string ->
  ?capacity:int ->
  ?max_value:int ->
  unit ->
  (unit, Types.error) result
(** Offload the kv GET hot path: enable the device-resident table
    (defaults: LRU, 4096 entries, 4096-byte values) and install the
    GET pipeline — datagrams starting with ['G'] are looked up by key
    (the rest of the payload) and hits are answered from the device as
    ["+" ^ value], byte-identical to the host's reply under the UDP
    codec; misses and non-GETs pass to the host. *)

val offload_insert : t -> string -> string -> (unit, [ `Rejected ]) result
(** Populate the device table over the host→device control queue; the
    write has completed on the device when this returns. *)

val offload_update : t -> string -> string -> bool
(** Overwrite only if resident ([false] otherwise); an oversized value
    invalidates instead. The kv SET path calls this {e before}
    answering, which is what makes stale device GETs impossible. *)

val offload_invalidate : t -> string -> bool

val offload_stats : t -> Dk_device.Table.stats option
(** [None] until a table is enabled. *)

val pipeline_cpu_ns : t -> Dk_device.Prog.pipeline -> int -> int64
(** CPU-fallback cost of one element through the pipeline: the
    statically-derived {!Dk_device.Prog.pipeline_footprint} priced at
    the filter CPU rate — the same footprint that prices the device
    latency. *)

(** {2 Data path} *)

val push : t -> Types.qd -> Dk_mem.Sga.t -> (Types.qtoken, Types.error) result

val push_batch :
  t -> Types.qd -> Dk_mem.Sga.t list -> (Types.qtoken list, Types.error) result
(** Submit several sgas to one queue, in order, minting one token per
    sga. When the device's tx batch window is open (see
    {!set_batch_window}), the whole batch rings the doorbell once; with
    a zero window it behaves exactly like [push] per element. *)

val pop : t -> Types.qd -> (Types.qtoken, Types.error) result

val wait : t -> Types.qtoken -> Types.op_result
(** Drive the simulation until the token completes; each idle iteration
    charges one poll-loop step. *)

val wait_timeout : t -> Types.qtoken -> timeout:int64 -> Types.op_result
(** [Failed `Timeout] if the deadline passes first (the token stays
    outstanding and can be waited again). *)

val wait_any :
  ?timeout:int64 -> t -> Types.qtoken list -> (Types.qtoken * Types.op_result) option
(** First completion among the tokens ([None] on timeout/deadlock).
    Exactly one token is redeemed — no spurious wakeups (§4.4). *)

val wait_all :
  ?timeout:int64 ->
  t ->
  Types.qtoken list ->
  (Types.qtoken * Types.op_result) list option
(** All completions, in argument order ([None] on timeout/deadlock). *)

val try_wait : t -> Types.qtoken -> Types.op_result option
(** Non-blocking poll of one token. *)

(** {2 Persistent wait sets}

    [wait_any] registers and tears down its token list on every call;
    a server with thousands of outstanding operations should instead
    register each token once and drain completions in O(1) per event —
    the readiness path the paper's single-digit-µs budget demands. *)

type waitset

val waitset : t -> waitset
(** A fresh, empty wait set. *)

val waitset_add : t -> waitset -> Types.qtoken -> unit
(** Route the token's completion to the wait set. An
    already-completed token becomes ready immediately. A token is in at
    most one wait set (latest registration wins). *)

val wait_next :
  ?timeout:int64 -> t -> waitset -> (Types.qtoken * Types.op_result) option
(** Next completion from the wait set, driving the simulation while it
    is empty ([None] on timeout/deadlock). Each completion is delivered
    exactly once; completion order, not registration order. *)

val watch : t -> Types.qtoken -> (Types.op_result -> unit) -> unit
(** Scheduler integration (§4.4): run the callback when the token
    completes (immediately if it already did), redeeming it. Used by
    [Dk_sched.Fiber] to suspend lightweight threads on qtokens; a
    watched token must not also be passed to [wait_*]. *)

val set_batch_window : t -> int64 -> unit
(** Tx doorbell coalescing window for every attached device (NIC, RDMA
    NIC, block SQ). [0] — the default, from [Cost.tx_batch_window] —
    rings the doorbell per operation, bit-identically to the unbatched
    path; [w > 0] lets submissions landing within [w] ns share one
    ring. *)

val set_rx_pooling : t -> ?class_capacity:int -> bool -> unit
(** Serve device receive allocations (NIC rx delivery, RDMA receive
    ring refill) from size-classed free lists in front of the memory
    manager's arenas ({!Dk_mem.Manager.set_rx_pooling}) — the
    [mem.pool.fastpath_hits] counter tracks hits. Off by default; when
    off the rx path is bit-identical to the unpooled allocator. *)

val blocking_push : t -> Types.qd -> Dk_mem.Sga.t -> Types.op_result
(** push + wait (Figure 3 line 8). *)

val blocking_pop : t -> Types.qd -> Types.op_result
(** pop + wait (Figure 3 line 10). *)
