(** Shared completion routing for one block device.

    The device has a single completion queue; this dispatcher lets any
    number of file queues (and the recovery scanner) submit operations
    with per-operation continuations.

    Transient device errors ([`Io_error], produced only under an armed
    {!Dk_fault} plan) are absorbed here: the operation is resubmitted
    after a bounded exponential backoff ([retry_backoff_ns * 2^n], up
    to [max_retries] times) before the error reaches the continuation.
    Counters: [core.block.retries], [core.block.recovered],
    [core.block.gave_up]. *)

type t

val create :
  ?max_retries:int -> ?retry_backoff_ns:int64 -> Dk_device.Block.t -> t
(** Defaults: 4 retries, 10us initial backoff. *)

val block : t -> Dk_device.Block.t

val read : t -> lba:int -> (Dk_device.Block.completion -> unit) -> bool
(** [false] if the submission queue is full on the {e first} submission
    (continuation dropped); retries of errored operations are never
    dropped on a full SQ — they back off and resubmit. *)

val write :
  t -> lba:int -> string -> (Dk_device.Block.completion -> unit) -> bool

val write_many :
  t ->
  (int * string * (Dk_device.Block.completion -> unit)) list ->
  bool list
(** Submit several (lba, data, continuation) writes under one SQ
    doorbell ring ({!Dk_device.Block.grouped}); per-operation results
    match {!write}, in order. *)
