module Block = Dk_device.Block

(* Retry accounting: transient device errors absorbed (or not) by the
   dispatcher's bounded exponential backoff. *)
let m_retries = Dk_obs.Metrics.counter "core.block.retries"
let m_recovered = Dk_obs.Metrics.counter "core.block.recovered"
let m_gave_up = Dk_obs.Metrics.counter "core.block.gave_up"

type t = {
  block : Block.t;
  engine : Dk_sim.Engine.t;
  max_retries : int;
  retry_backoff_ns : int64;
  handlers : (int, Block.completion -> unit) Hashtbl.t;
  mutable next_wr : int;
}

let create ?(max_retries = 4) ?(retry_backoff_ns = 10_000L) block =
  let t =
    {
      block;
      engine = Block.engine block;
      max_retries;
      retry_backoff_ns;
      handlers = Hashtbl.create 32;
      next_wr = 1;
    }
  in
  Block.set_cq_notify block (fun () ->
      let rec loop () =
        match Block.poll_cq block with
        | None -> ()
        | Some c ->
            (match Hashtbl.find_opt t.handlers c.Block.wr_id with
            | Some k ->
                Hashtbl.remove t.handlers c.Block.wr_id;
                k c
            | None -> ());
            loop ()
      in
      loop ());
  t

let block t = t.block

let fresh t =
  let id = t.next_wr in
  t.next_wr <- t.next_wr + 1;
  id

let backoff_ns t attempt =
  Int64.mul t.retry_backoff_ns (Int64.of_int (1 lsl min attempt 16))

(* Submit with retry: an [`Io_error] completion (or an SQ-full retry
   slot) is resubmitted after an exponentially growing backoff, up to
   [max_retries] times; only then does the error reach the caller's
   continuation. The *first* submission keeps the historical contract —
   [false] on a full SQ, continuation dropped — so callers' own
   backpressure handling still works. *)
let rec attempt_op t ~resubmit ~attempt k =
  let wr = fresh t in
  let retry_later () =
    Dk_obs.Metrics.incr m_retries;
    ignore
      (Dk_sim.Engine.after t.engine (backoff_ns t attempt) (fun () ->
           ignore (attempt_op t ~resubmit ~attempt:(attempt + 1) k)))
  in
  let handler c =
    match c.Block.status with
    | `Io_error when attempt < t.max_retries -> retry_later ()
    | `Io_error ->
        Dk_obs.Metrics.incr m_gave_up;
        Dk_obs.Flight.recordf Dk_obs.Flight.default
          ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop
          "block wr_id %d failed after %d retries" c.Block.wr_id attempt;
        k c
    | `Ok | `Bad_lba ->
        if attempt > 0 then Dk_obs.Metrics.incr m_recovered;
        k c
  in
  Hashtbl.replace t.handlers wr handler;
  let ok = resubmit wr in
  if not ok then begin
    Hashtbl.remove t.handlers wr;
    if attempt = 0 then false
    else begin
      (* A retry must not be dropped on a momentarily full SQ. *)
      if attempt < t.max_retries then retry_later ()
      else begin
        Dk_obs.Metrics.incr m_gave_up;
        k { Block.wr_id = wr; status = `Io_error; data = None }
      end;
      true
    end
  end
  else true

let read t ~lba k =
  attempt_op t
    ~resubmit:(fun wr -> Block.submit_read t.block ~wr_id:wr ~lba)
    ~attempt:0 k

let write t ~lba data k =
  attempt_op t
    ~resubmit:(fun wr -> Block.submit_write t.block ~wr_id:wr ~lba data)
    ~attempt:0 k

(* Batched submission: the first submissions share one SQ doorbell
   ring; each operation keeps its own continuation and retry state
   (retries ring individually — they are rare and already paid for by
   the backoff). *)
let write_many t items =
  Block.grouped t.block
    (fun () -> List.map (fun (lba, data, k) -> write t ~lba data k) items)
