module Rdma = Dk_device.Rdma

type state = {
  tokens : Token.t;
  manager : Dk_mem.Manager.t;
  qp : Rdma.qp;
  recv_size : int;
  mbox : Mailbox.t;
  mutable credits : int;
  pending_sends : (Dk_mem.Sga.t * Types.qtoken) Queue.t;
  inflight : (int, Types.qtoken) Hashtbl.t; (* send wr_id -> token *)
  mutable next_wr : int;
  mutable closed : bool;
}

let fresh_wr st =
  let id = st.next_wr in
  st.next_wr <- st.next_wr + 1;
  id

let replenish st =
  (* Receive-ring refill is the allocator's hottest call site: with rx
     pooling on, the buffer comes off a size-class free list instead of
     walking the arenas (identical to [alloc] when pooling is off). *)
  match Dk_mem.Manager.alloc_rx st.manager st.recv_size with
  | Some buf -> Rdma.post_recv st.qp ~wr_id:(fresh_wr st) buf
  | None -> () (* arena exhausted: the peer will see backpressure *)

let drain_recv st =
  let rec loop () =
    match Rdma.poll_recv_cq st.qp with
    | None -> ()
    | Some { Rdma.status = `Ok; len; buffer = Some buf; _ } ->
        (* Zero-copy delivery: hand the app a right-sized view. *)
        let view = Dk_mem.Buffer.sub buf 0 len in
        Dk_mem.Buffer.free buf;
        Mailbox.deliver st.mbox (Types.Popped (Dk_mem.Sga.of_buffers [ view ]));
        replenish st;
        loop ()
    | Some { Rdma.buffer = Some buf; _ } ->
        (* Errored receive: recycle the buffer and keep the slot. *)
        Dk_mem.Buffer.free buf;
        replenish st;
        loop ()
    | Some { Rdma.buffer = None; _ } -> loop ()
  in
  loop ()

let status_to_result = function
  | `Ok -> Types.Pushed
  | `Rnr -> Types.Failed `Would_block
  | `Not_registered | `Too_long | `Rkey -> Types.Failed `Not_supported
  | `Not_connected -> Types.Failed `Queue_closed
  | `Qp_broken -> Types.Failed `Conn_aborted

let rec issue_send st sga tok =
  if st.credits > 0 then begin
    st.credits <- st.credits - 1;
    let wr = fresh_wr st in
    Hashtbl.replace st.inflight wr tok;
    Rdma.post_send st.qp ~wr_id:wr sga
  end
  else Queue.add (sga, tok) st.pending_sends

and drain_send st =
  let rec loop () =
    match Rdma.poll_send_cq st.qp with
    | None -> ()
    | Some { Rdma.wr_id; status; _ } ->
        (* A broken QP is terminal: nothing queued behind this send can
           ever complete, and no more receives will arrive. Fail the
           lot with [`Conn_aborted] instead of letting waiters hang. *)
        if status = `Qp_broken then begin
          Mailbox.fail st.mbox `Conn_aborted;
          Queue.iter
            (fun (_, qtok) ->
              Token.complete st.tokens qtok (Types.Failed `Conn_aborted))
            st.pending_sends;
          Queue.clear st.pending_sends
        end;
        (match Hashtbl.find_opt st.inflight wr_id with
        | Some tok ->
            Hashtbl.remove st.inflight wr_id;
            st.credits <- st.credits + 1;
            Token.complete st.tokens tok (status_to_result status)
        | None -> ());
        loop ()
  in
  loop ();
  (* Freed credits may unblock queued pushes. *)
  let rec drain_pending () =
    if st.credits > 0 then
      match Queue.take_opt st.pending_sends with
      | Some (sga, tok) ->
          issue_send st sga tok;
          drain_pending ()
      | None -> ()
  in
  drain_pending ()

let create ~tokens ~manager ~qp ?(depth = 64) ?(recv_size = 16384) () =
  if depth <= 0 || recv_size <= 0 then invalid_arg "Rdma_queue.create";
  let st =
    {
      tokens;
      manager;
      qp;
      recv_size;
      mbox = Mailbox.create tokens;
      credits = depth;
      pending_sends = Queue.create ();
      inflight = Hashtbl.create 16;
      next_wr = 1;
      closed = false;
    }
  in
  (* Pre-post the receive ring: the buffer-management burden §2
     describes, hidden from the application. *)
  for _ = 1 to depth do
    replenish st
  done;
  if Rdma.recv_posted qp < depth then Error `No_memory
  else begin
    Rdma.set_recv_notify qp (fun () -> drain_recv st);
    Rdma.set_send_notify qp (fun () -> drain_send st);
    Ok
      {
        Qimpl.kind = "rdma";
        push =
          (fun sga tok ->
            if st.closed then Token.complete tokens tok (Types.Failed `Queue_closed)
            else if Dk_mem.Sga.length sga > st.recv_size then
              Token.complete tokens tok (Types.Failed `Not_supported)
            else issue_send st sga tok);
        pop = (fun tok -> Mailbox.pop st.mbox tok);
        close =
          (fun () ->
            st.closed <- true;
            Mailbox.close st.mbox);
      }
  end
