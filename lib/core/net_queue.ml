module Tcp = Dk_net.Tcp
module Stack = Dk_net.Stack
module Framing = Dk_net.Framing

(* ---- TCP connection queues ---- *)

(* Connections torn down by RTO exhaustion (give-up after bounded
   exponential backoff), surfaced to waiters as [`Conn_aborted]. *)
let m_aborted = Dk_obs.Metrics.counter "core.tcp.aborted"

type conn_state = {
  tokens : Token.t;
  conn : Tcp.conn;
  mbox : Mailbox.t;
  decoder : Framing.decoder;
  (* pushes not yet fully handed to the stack: bytes left + token *)
  txq : (string ref * Types.qtoken) Queue.t;
}

let pump_tx st =
  let progress = ref true in
  while !progress do
    progress := false;
    match Queue.peek_opt st.txq with
    | None -> ()
    | Some (remaining, tok) ->
        let n = Tcp.send st.conn !remaining in
        if n > 0 then begin
          remaining := String.sub !remaining n (String.length !remaining - n);
          if String.length !remaining = 0 then begin
            ignore (Queue.pop st.txq);
            Token.complete st.tokens tok Types.Pushed;
            progress := true
          end
        end
  done

let pump_rx st =
  let avail = Tcp.recv_ready st.conn in
  if avail > 0 then begin
    Framing.feed st.decoder (Tcp.recv st.conn avail);
    let rec drain () =
      match Framing.next st.decoder with
      | Some segments ->
          let sga = Dk_mem.Sga.of_strings segments in
          Mailbox.deliver st.mbox (Types.Popped sga);
          drain ()
      | None -> ()
    in
    drain ()
  end

let fail_tx st err =
  Queue.iter
    (fun (_, tok) -> Token.complete st.tokens tok (Types.Failed err))
    st.txq;
  Queue.clear st.txq

let of_conn ~tokens ~conn () =
  let st =
    {
      tokens;
      conn;
      mbox = Mailbox.create tokens;
      decoder = Framing.create ();
      txq = Queue.create ();
    }
  in
  Tcp.set_on_readable conn (fun () -> pump_rx st);
  Tcp.set_on_writable conn (fun () -> pump_tx st);
  Tcp.set_on_peer_fin conn (fun () -> Mailbox.close st.mbox);
  Tcp.set_on_close conn (fun reason ->
      let err =
        match reason with
        | `Normal -> `Queue_closed
        | `Reset -> `Refused
        (* RTO retries exhausted (the peer is partitioned or dead):
           ECONNABORTED, so `Demi.wait` returns instead of hanging. *)
        | `Timeout -> `Conn_aborted
      in
      (if err = `Conn_aborted then Dk_obs.Metrics.incr m_aborted);
      fail_tx st err;
      Mailbox.fail st.mbox err);
  {
    Qimpl.kind = "tcp";
    push =
      (fun sga tok ->
        match Tcp.state conn with
        | Tcp.Established | Tcp.Close_wait | Tcp.Syn_sent | Tcp.Syn_rcvd ->
            Queue.add (ref (Framing.encode_sga sga), tok) st.txq;
            pump_tx st
        | _ -> Token.complete tokens tok (Types.Failed `Queue_closed));
    pop = (fun tok -> Mailbox.pop st.mbox tok);
    close = (fun () -> Tcp.close conn);
  }

(* ---- listeners ---- *)

let listener ~tokens ~stack ~port ~register =
  let mbox = Mailbox.create tokens in
  match
    Stack.tcp_listen stack ~port ~on_accept:(fun conn ->
        let impl = of_conn ~tokens ~conn () in
        let qd = register impl in
        Mailbox.deliver mbox (Types.Accepted qd))
  with
  | Error `In_use -> Error `In_use
  | Ok () ->
      Ok
        {
          Qimpl.kind = "tcp-listen";
          push =
            (fun _ tok -> Token.complete tokens tok (Types.Failed `Not_supported));
          pop = (fun tok -> Mailbox.pop mbox tok);
          close =
            (fun () ->
              Stack.tcp_unlisten stack ~port;
              Mailbox.close mbox);
        }

(* ---- UDP datagram queues ---- *)

let udp ~tokens ~stack ~port ~peer =
  let mbox = Mailbox.create tokens in
  match
    Stack.udp_bind stack ~port ~recv:(fun ~src:_ payload ->
        Mailbox.deliver mbox (Types.Popped (Dk_mem.Sga.of_string payload)))
  with
  | Error `In_use -> Error `In_use
  | Ok () ->
      Ok
        {
          Qimpl.kind = "udp";
          push =
            (fun sga tok ->
              match !peer with
              | None -> Token.complete tokens tok (Types.Failed `Not_supported)
              | Some dst ->
                  (* One datagram per sga: naturally atomic, no framing. *)
                  Stack.udp_send stack ~src_port:port ~dst
                    (Dk_mem.Sga.to_string sga);
                  Token.complete tokens tok Types.Pushed);
          pop = (fun tok -> Mailbox.pop mbox tok);
          close =
            (fun () ->
              Stack.udp_unbind stack ~port;
              Mailbox.close mbox);
        }
