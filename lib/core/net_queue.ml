module Tcp = Dk_net.Tcp
module Stack = Dk_net.Stack
module Framing = Dk_net.Framing

(* Build the sga delivered to a popper. With a pooling manager
   attached, each segment's storage comes from the rx size-class pools
   (an O(1) free-list pop on the hit path); otherwise — no manager, or
   pooling off — the unmanaged [Sga.of_string] path is byte-for-byte
   the historical behaviour, so existing stats stay untouched. *)
let rx_buffer manager s =
  let len = String.length s in
  if len = 0 then None
  else
    match manager with
    | Some m when Dk_mem.Manager.rx_pooling m -> (
        match Dk_mem.Manager.alloc_rx m len with
        | Some b ->
            Dk_mem.Buffer.blit_from_string s 0 b 0 len;
            Some b
        | None -> None)
    | Some _ | None -> None

(* All-or-nothing pooling in one pass: [Some bufs] when every segment
   got a pooled buffer; on the first miss, release what was pooled on
   the way back up and answer [None]. The old List.map / for_all /
   filter_map chain built two intermediate result lists per delivered
   sga and kept pooling past a miss it would then undo. *)
let rec pool_segs manager = function
  | [] -> Some []
  | s :: rest -> (
      match rx_buffer manager s with
      | None -> None
      | Some b -> (
          match pool_segs manager rest with
          | Some bs -> Some (b :: bs)
          | None ->
              Dk_mem.Buffer.free b;
              None))
  [@@hot.alloc "the pooled-buffer list is the delivered sga's segment spine"]

let rx_sga manager segments =
  match pool_segs manager segments with
  | Some bufs -> Dk_mem.Sga.of_buffers bufs
  | None ->
      (* Miss (pooling off, zero-length segment, or pool exhausted):
         the unmanaged path is byte-for-byte the historical one. *)
      Dk_mem.Sga.of_strings segments
  [@@hot]

(* ---- TCP connection queues ---- *)

(* Connections torn down by RTO exhaustion (give-up after bounded
   exponential backoff), surfaced to waiters as [`Conn_aborted]. *)
let m_aborted = Dk_obs.Metrics.counter "core.tcp.aborted"

type conn_state = {
  tokens : Token.t;
  manager : Dk_mem.Manager.t option;
  conn : Tcp.conn;
  mbox : Mailbox.t;
  decoder : Framing.decoder;
  (* pushes not yet fully handed to the stack: bytes left + token *)
  txq : (string ref * Types.qtoken) Queue.t;
}

(* Directly recursive drain (no progress ref, no inner loop): recurse
   to the next staged push only after the head buffer fully drains —
   exactly when the old flag went true. *)
let rec pump_tx st =
  match Queue.peek_opt st.txq with
  | None -> ()
  | Some (remaining, tok) ->
      let n = Tcp.send st.conn !remaining in
      if n > 0 then begin
        remaining := String.sub !remaining n (String.length !remaining - n);
        if String.length !remaining = 0 then begin
          ignore (Queue.pop st.txq);
          Token.complete st.tokens tok Types.Pushed;
          pump_tx st
        end
      end
  [@@hot]
  [@@hot.alloc "a partial send re-slices the staged tx string"]

let rec drain_rx st =
  match Framing.next st.decoder with
  | Some segments ->
      let sga = rx_sga st.manager segments in
      Mailbox.deliver st.mbox (Types.Popped sga);
      drain_rx st
  | None -> ()

let pump_rx st =
  let avail = Tcp.recv_ready st.conn in
  if avail > 0 then begin
    Framing.feed st.decoder (Tcp.recv st.conn avail);
    drain_rx st
  end
  [@@hot]

let fail_tx st err =
  Queue.iter
    (fun (_, tok) -> Token.complete st.tokens tok (Types.Failed err))
    st.txq;
  Queue.clear st.txq

let of_conn ~tokens ?manager ~conn () =
  let st =
    {
      tokens;
      manager;
      conn;
      mbox = Mailbox.create tokens;
      decoder = Framing.create ();
      txq = Queue.create ();
    }
  in
  Tcp.set_on_readable conn (fun () -> pump_rx st);
  Tcp.set_on_writable conn (fun () -> pump_tx st);
  Tcp.set_on_peer_fin conn (fun () -> Mailbox.close st.mbox);
  Tcp.set_on_close conn (fun reason ->
      let err =
        match reason with
        | `Normal -> `Queue_closed
        | `Reset -> `Refused
        (* RTO retries exhausted (the peer is partitioned or dead):
           ECONNABORTED, so `Demi.wait` returns instead of hanging. *)
        | `Timeout -> `Conn_aborted
      in
      (if err = `Conn_aborted then Dk_obs.Metrics.incr m_aborted);
      fail_tx st err;
      Mailbox.fail st.mbox err);
  {
    Qimpl.kind = "tcp";
    push =
      (fun sga tok ->
        match Tcp.state conn with
        | Tcp.Established | Tcp.Close_wait | Tcp.Syn_sent | Tcp.Syn_rcvd ->
            Queue.add (ref (Framing.encode_sga sga), tok) st.txq;
            pump_tx st
        | _ -> Token.complete tokens tok (Types.Failed `Queue_closed));
    pop = (fun tok -> Mailbox.pop st.mbox tok);
    close = (fun () -> Tcp.close conn);
  }

(* ---- listeners ---- *)

let listener ~tokens ?manager ~stack ~port ~register () =
  let mbox = Mailbox.create tokens in
  match
    Stack.tcp_listen stack ~port ~on_accept:(fun conn ->
        let impl = of_conn ~tokens ?manager ~conn () in
        let qd = register impl in
        Mailbox.deliver mbox (Types.Accepted qd))
  with
  | Error `In_use -> Error `In_use
  | Ok () ->
      Ok
        {
          Qimpl.kind = "tcp-listen";
          push =
            (fun _ tok -> Token.complete tokens tok (Types.Failed `Not_supported));
          pop = (fun tok -> Mailbox.pop mbox tok);
          close =
            (fun () ->
              Stack.tcp_unlisten stack ~port;
              Mailbox.close mbox);
        }

(* ---- UDP datagram queues ---- *)

let udp ~tokens ?manager ~stack ~port ~peer () =
  let mbox = Mailbox.create tokens in
  match
    Stack.udp_bind stack ~port ~recv:(fun ~src:_ payload ->
        Mailbox.deliver mbox (Types.Popped (rx_sga manager [ payload ])))
  with
  | Error `In_use -> Error `In_use
  | Ok () ->
      Ok
        {
          Qimpl.kind = "udp";
          push =
            (fun sga tok ->
              match !peer with
              | None -> Token.complete tokens tok (Types.Failed `Not_supported)
              | Some dst ->
                  (* One datagram per sga: naturally atomic, no framing. *)
                  Stack.udp_send stack ~src_port:port ~dst
                    (Dk_mem.Sga.to_string sga);
                  Token.complete tokens tok Types.Pushed);
          pop = (fun tok -> Mailbox.pop mbox tok);
          close =
            (fun () ->
              Stack.udp_unbind stack ~port;
              Mailbox.close mbox);
        }
