module Block = Dk_device.Block
module Framing = Dk_net.Framing

let record_overhead = 8 (* u32 length prefix + u32 crc *)

let u32_to_string v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (v land 0xff));
  Bytes.unsafe_to_string b

let u32_of_string s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let seal_record payload =
  let crc = Int32.to_int (Dk_util.Crc32.digest_string payload) land 0xffffffff in
  u32_to_string (String.length payload) ^ payload ^ u32_to_string (crc land 0xffffffff)

(* Parse one record at [off] in [raw]; [None] if incomplete,
   [Some (Error ())] if corrupt. *)
let parse_record raw off =
  let avail = String.length raw - off in
  if avail < 4 then None
  else
    let len = u32_of_string raw off in
    if len = 0 || len > 1 lsl 26 then Some (Error ())
    else if avail < 4 + len + 4 then None
    else
      let payload = String.sub raw (off + 4) len in
      let crc = u32_of_string raw (off + 4 + len) in
      let expect =
        Int32.to_int (Dk_util.Crc32.digest_string payload) land 0xffffffff
      in
      if crc <> expect then Some (Error ())
      else Some (Ok (payload, 4 + len + 4))

type state = {
  tokens : Token.t;
  engine : Dk_sim.Engine.t;
  disp : Block_dispatch.t;
  base_lba : int;
  capacity_bytes : int;
  bs : int;
  mbox : Mailbox.t;
  (* writer *)
  mutable log_len : int;     (* bytes appended (incl. in-flight) *)
  mutable durable_len : int; (* bytes whose writes completed *)
  mutable shadow : Bytes.t;  (* full log image for assembling partial blocks *)
  mutable shadow_len : int;
  pending_appends : (string * Types.qtoken) Queue.t;
  mutable append_active : bool;
  (* reader *)
  mutable fed : int; (* bytes handed to the parser *)
  raw : Stdlib.Buffer.t;
  mutable parse_off : int;
  mutable fetching : bool;
  mutable corrupt : bool;
}

let ensure_shadow st n =
  if Bytes.length st.shadow < n then begin
    let grown = Bytes.make (max n (max 4096 (2 * Bytes.length st.shadow))) '\000' in
    Bytes.blit st.shadow 0 grown 0 st.shadow_len;
    st.shadow <- grown
  end

(* ---- reader ---- *)

let rec parse_loop st =
  if not st.corrupt then begin
    (* A zero length prefix is block-alignment padding (appends after
       recovery restart at a block boundary): skip to the boundary. *)
    let raw_now = Stdlib.Buffer.contents st.raw in
    if
      String.length raw_now - st.parse_off >= 4
      && u32_of_string raw_now st.parse_off = 0
    then begin
      let next_boundary = ((st.parse_off / st.bs) + 1) * st.bs in
      if next_boundary <= String.length raw_now then begin
        st.parse_off <- next_boundary;
        parse_loop st
      end
    end
    else parse_payload st
  end

and parse_payload st =
    match parse_record (Stdlib.Buffer.contents st.raw) st.parse_off with
    | None -> ()
    | Some (Error ()) ->
        (* CRC/framing mismatch: a torn or corrupted record. Surface it
           as an I/O error, not a polite close. *)
        st.corrupt <- true;
        Mailbox.fail st.mbox `Io_error
    | Some (Ok (payload, used)) ->
        st.parse_off <- st.parse_off + used;
        let decoder = Framing.create () in
        Framing.feed decoder payload;
        (match Framing.next decoder with
        | Some segments ->
            Mailbox.deliver st.mbox
              (Types.Popped (Dk_mem.Sga.of_strings segments))
        | None ->
            st.corrupt <- true;
            Mailbox.fail st.mbox `Io_error);
        parse_loop st

and try_fetch st =
  if (not st.fetching) && (not st.corrupt) && st.fed < st.durable_len then begin
    st.fetching <- true;
    let idx = st.fed / st.bs in
    (* The device returns the block as of submission; only feed bytes
       durable *now* — later appends land in the snapshot as zeros and
       must not reach the parser. *)
    let bound = st.durable_len in
    let on_complete (c : Block.completion) =
      (match c.Block.data with
      | Some data when c.Block.status = `Ok ->
          let lo = st.fed mod st.bs in
          let hi = min st.bs (bound - (idx * st.bs)) in
          if hi > lo then begin
            Stdlib.Buffer.add_string st.raw (String.sub data lo (hi - lo));
            st.fed <- st.fed + (hi - lo)
          end
      | Some _ | None ->
          (* The dispatcher already retried with backoff: this block is
             unreadable. Fail waiters instead of re-fetching forever. *)
          st.corrupt <- true;
          Mailbox.fail st.mbox `Io_error);
      st.fetching <- false;
      parse_loop st;
      (* Keep streaming while a pop is outstanding. *)
      if Mailbox.waiting st.mbox > 0 then try_fetch st
    in
    if not (Block_dispatch.read st.disp ~lba:(st.base_lba + idx) on_complete)
    then st.fetching <- false
  end

(* ---- writer ---- *)

let rec start_append st =
  if not st.append_active then
    match Queue.take_opt st.pending_appends with
    | None -> ()
    | Some (record, tok) ->
        st.append_active <- true;
        let off = st.log_len in
        let len = String.length record in
        if off + len > st.capacity_bytes then begin
          Token.complete st.tokens tok (Types.Failed `No_memory);
          st.append_active <- false;
          start_append st
        end
        else begin
          ensure_shadow st (off + len);
          Bytes.blit_string record 0 st.shadow off len;
          st.shadow_len <- max st.shadow_len (off + len);
          st.log_len <- off + len;
          let first = off / st.bs and last = (off + len - 1) / st.bs in
          let remaining = ref (last - first + 1) in
          let failed = ref false in
          let errored = ref false in
          for idx = first to last do
            if not !failed then begin
              let start = idx * st.bs in
              let chunk_len = min st.bs (st.log_len - start) in
              let chunk = Bytes.sub_string st.shadow start chunk_len in
              let on_written (c : Block.completion) =
                decr remaining;
                if c.Block.status <> `Ok then errored := true;
                if !remaining = 0 then
                  if !errored then begin
                    (* The device gave up after retries: the tail never
                       became durable. Roll the log back and surface the
                       error — silently "succeeding" would hand a later
                       reader a hole. *)
                    st.log_len <- off;
                    Token.complete st.tokens tok (Types.Failed `Io_error);
                    st.append_active <- false;
                    start_append st
                  end
                  else begin
                    st.durable_len <- st.log_len;
                    Token.complete st.tokens tok Types.Pushed;
                    st.append_active <- false;
                    (* New durable bytes may satisfy waiting pops. *)
                    if Mailbox.waiting st.mbox > 0 then try_fetch st;
                    start_append st
                  end
              in
              if
                not
                  (Block_dispatch.write st.disp ~lba:(st.base_lba + idx) chunk
                     on_written)
              then failed := true
            end
          done;
          if !failed then begin
            Token.complete st.tokens tok (Types.Failed `Would_block);
            st.append_active <- false;
            start_append st
          end
        end

let create ~tokens ~engine ~disp ~base_lba ~capacity_blocks ?(existing_len = 0)
    () =
  let bs = Block.block_size (Block_dispatch.block disp) in
  let st =
    {
      tokens;
      engine;
      disp;
      base_lba;
      capacity_bytes = capacity_blocks * bs;
      bs;
      mbox = Mailbox.create tokens;
      log_len = existing_len;
      durable_len = existing_len;
      shadow = Bytes.create 0;
      shadow_len = 0;
      pending_appends = Queue.create ();
      append_active = false;
      fed = 0;
      raw = Stdlib.Buffer.create 4096;
      parse_off = 0;
      fetching = false;
      corrupt = false;
    }
  in
  (* Appends after recovery need the existing bytes in the shadow to
     assemble partial tail blocks; fetch them lazily on first append
     would complicate the path, so reads below re-feed them. For the
     shadow, re-reading happens through the reader; appends to a
     recovered log start at a block boundary to stay safe. *)
  if existing_len > 0 then begin
    let aligned = ((existing_len + bs - 1) / bs) * bs in
    st.log_len <- aligned;
    st.durable_len <- existing_len;
    ensure_shadow st aligned;
    st.shadow_len <- aligned
  end;
  {
    Qimpl.kind = "file";
    push =
      (fun sga tok ->
        let record = seal_record (Framing.encode_sga sga) in
        Queue.add (record, tok) st.pending_appends;
        start_append st);
    pop =
      (fun tok ->
        Mailbox.pop st.mbox tok;
        if Mailbox.waiting st.mbox > 0 then try_fetch st);
    close = (fun () -> Mailbox.close st.mbox);
  }

let recover ~engine ~disp ~base_lba ~capacity_blocks k =
  ignore engine;
  let raw = Stdlib.Buffer.create 4096 in
  let valid = ref 0 in
  let off = ref 0 in
  let rec parse () =
    match parse_record (Stdlib.Buffer.contents raw) !off with
    | Some (Ok (_, used)) ->
        off := !off + used;
        valid := !off;
        parse ()
    | Some (Error ()) -> `Stop
    | None -> `More
  in
  let rec scan idx =
    if idx >= capacity_blocks then k !valid
    else begin
      let on_read (c : Block.completion) =
        match c.Block.data with
        | Some s when c.Block.status = `Ok -> (
            Stdlib.Buffer.add_string raw s;
            match parse () with
            | `Stop -> k !valid
            | `More ->
                (* Heuristic: an all-zero prefix after the valid tail
                   means we've reached unwritten space. *)
                if
                  Stdlib.Buffer.length raw >= !off + 4
                  && u32_of_string (Stdlib.Buffer.contents raw) !off = 0
                then k !valid
                else scan (idx + 1))
        | Some _ | None -> k !valid
      in
      if not (Block_dispatch.read disp ~lba:(base_lba + idx) on_read) then
        k !valid
    end
  in
  scan 0
