(** Network I/O queues over the user-level stack (the DPDK-class
    libOS).

    Three queue flavours:
    - {!of_conn}: a TCP connection queue. Pushed sgas are framed
      (§5.2) onto the byte stream; pops yield whole messages with their
      original segment boundaries — the atomic data unit of §4.2.
    - {!listener}: pops yield [Accepted qd] for each new connection.
    - {!udp}: datagram queue; one message per datagram, no framing
      needed.

    No data copies are charged anywhere on these paths: sgas flow to
    the NIC by (simulated) DMA — the zero-copy interface of §4.5.

    When [manager] is given and its rx pooling is on
    ({!Dk_mem.Manager.set_rx_pooling}), received message storage comes
    from the manager's size-class pools; otherwise delivery uses plain
    unmanaged sgas, byte-identical to the historical path. *)

val of_conn :
  tokens:Token.t ->
  ?manager:Dk_mem.Manager.t ->
  conn:Dk_net.Tcp.conn ->
  unit ->
  Qimpl.t

val listener :
  tokens:Token.t ->
  ?manager:Dk_mem.Manager.t ->
  stack:Dk_net.Stack.t ->
  port:int ->
  register:(Qimpl.t -> Types.qd) ->
  unit ->
  (Qimpl.t, [ `In_use ]) result
(** [register] installs a new connection queue in the runtime's
    descriptor table and returns its qd. *)

val udp :
  tokens:Token.t ->
  ?manager:Dk_mem.Manager.t ->
  stack:Dk_net.Stack.t ->
  port:int ->
  peer:Dk_net.Addr.endpoint option ref ->
  unit ->
  (Qimpl.t, [ `In_use ]) result
(** A datagram queue bound to [port]. Pushes go to [!peer] (set by the
    runtime's [connect]); pops yield one sga per datagram. *)
