(* Keep exactly one pop outstanding on [parent]; each arriving element
   goes through [on_elem]. Stops pumping when the parent fails
   terminally (closed), after delivering the failure via [on_done]. *)
let pump ~tokens ~(parent : Qimpl.t) ~on_elem ~on_done =
  let rec next () =
    let tok = Token.fresh tokens in
    parent.Qimpl.pop tok;
    Token.watch tokens tok (fun result ->
        match result with
        | Types.Popped sga ->
            on_elem sga;
            next ()
        | Types.Pushed | Types.Accepted _ -> next ()
        | Types.Failed err -> on_done err)
  in
  next ()

let forward_push ~tokens ~(parent : Qimpl.t) sga tok =
  let ptok = Token.fresh tokens in
  parent.Qimpl.push sga ptok;
  Token.watch tokens ptok (fun result -> Token.complete tokens tok result)

let filter ~tokens ~engine ~parent ~pred ~elem_cost =
  let mbox = Mailbox.create tokens in
  let eval sga =
    Dk_sim.Engine.consume engine (elem_cost sga);
    pred sga
  in
  pump ~tokens ~parent
    ~on_elem:(fun sga ->
      if eval sga then Mailbox.deliver mbox (Types.Popped sga))
    ~on_done:(fun _ -> Mailbox.close mbox);
  {
    Qimpl.kind = "filter(" ^ parent.Qimpl.kind ^ ")";
    push =
      (fun sga tok ->
        if eval sga then forward_push ~tokens ~parent sga tok
        else
          (* Filtered out: the push is a successful no-op. *)
          Token.complete tokens tok Types.Pushed);
    pop = (fun tok -> Mailbox.pop mbox tok);
    close = (fun () -> Mailbox.close mbox);
  }

let map ~tokens ~engine ~parent ~fn ~elem_cost =
  let mbox = Mailbox.create tokens in
  let apply sga =
    Dk_sim.Engine.consume engine (elem_cost sga);
    fn sga
  in
  pump ~tokens ~parent
    ~on_elem:(fun sga -> Mailbox.deliver mbox (Types.Popped (apply sga)))
    ~on_done:(fun _ -> Mailbox.close mbox);
  {
    Qimpl.kind = "map(" ^ parent.Qimpl.kind ^ ")";
    push = (fun sga tok -> forward_push ~tokens ~parent (apply sga) tok);
    pop = (fun tok -> Mailbox.pop mbox tok);
    close = (fun () -> Mailbox.close mbox);
  }

(* Sorted queues keep a binary heap keyed by a rank assigned at
   insertion: elements are compared against those already buffered.
   With a comparison predicate rather than a key function, we rank by
   insertion into a sorted list — O(n) insert, fine for the control
   structure this is. *)
let sort ~tokens ~engine ~parent ~higher_priority =
  ignore engine;
  let mbox = Mailbox.create tokens in
  (* Elements not yet handed to the mailbox, highest priority first. *)
  let buffer = ref [] in
  let insert sga =
    let rec go = function
      | [] -> [ sga ]
      | x :: rest ->
          if higher_priority sga x then sga :: x :: rest else x :: go rest
    in
    buffer := go !buffer
  in
  let rec deliver_if_waiting () =
    if Mailbox.waiting mbox > 0 then
      match !buffer with
      | best :: rest ->
          buffer := rest;
          Mailbox.deliver mbox (Types.Popped best);
          deliver_if_waiting ()
      | [] -> ()
  in
  pump ~tokens ~parent
    ~on_elem:(fun sga ->
      insert sga;
      deliver_if_waiting ())
    ~on_done:(fun _ -> Mailbox.close mbox);
  {
    Qimpl.kind = "sort(" ^ parent.Qimpl.kind ^ ")";
    push = (fun sga tok -> forward_push ~tokens ~parent sga tok);
    pop =
      (fun tok ->
        match !buffer with
        | best :: rest ->
            buffer := rest;
            Token.complete tokens tok (Types.Popped best)
        | [] -> Mailbox.pop mbox tok);
    close = (fun () -> Mailbox.close mbox);
  }

let merge ~tokens ~engine ~a ~b =
  ignore engine;
  let mbox = Mailbox.create tokens in
  let closed_parents = ref 0 in
  let on_done _ =
    incr closed_parents;
    if !closed_parents = 2 then Mailbox.close mbox
  in
  let on_elem sga = Mailbox.deliver mbox (Types.Popped sga) in
  pump ~tokens ~parent:a ~on_elem ~on_done;
  pump ~tokens ~parent:b ~on_elem ~on_done;
  {
    Qimpl.kind = "merge(" ^ a.Qimpl.kind ^ "," ^ b.Qimpl.kind ^ ")";
    push =
      (fun sga tok ->
        (* Push to both parents; complete when both accept. *)
        let pending = ref 2 in
        let first_failure = ref None in
        let finish result =
          (match result with
          | Types.Failed _ when !first_failure = None ->
              first_failure := Some result
          | _ -> ());
          decr pending;
          if !pending = 0 then
            Token.complete tokens tok
              (match !first_failure with Some f -> f | None -> Types.Pushed)
        in
        List.iter
          (fun (parent : Qimpl.t) ->
            let ptok = Token.fresh tokens in
            parent.Qimpl.push sga ptok;
            Token.watch tokens ptok finish)
          [ a; b ]);
    pop = (fun tok -> Mailbox.pop mbox tok);
    close = (fun () -> Mailbox.close mbox);
  }

let qconnect ~tokens ~src ~dst =
  pump ~tokens ~parent:src
    ~on_elem:(fun sga ->
      let tok = Token.fresh tokens in
      dst.Qimpl.push sga tok;
      Token.watch tokens tok (fun _ -> ()))
    ~on_done:(fun _ -> ())
