module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Stack = Dk_net.Stack
module Addr = Dk_net.Addr
module Prog = Dk_device.Prog

type sock_meta = {
  proto : [ `Tcp | `Udp ];
  mutable port : int option;
  peer : Addr.endpoint option ref; (* UDP default destination *)
}

type file_meta = { base_lba : int; capacity_blocks : int }

type t = {
  engine : Engine.t;
  cost : Cost.t;
  stack : Stack.t option;
  posix : Dk_kernel.Posix.t option;
  rdma : Dk_device.Rdma.t option;
  disp : Block_dispatch.t option;
  tokens : Token.t;
  manager : Dk_mem.Manager.t;
  registry : Dk_mem.Registry.t;
  qds : (Types.qd, Qimpl.t) Hashtbl.t;
  socks : (Types.qd, sock_meta) Hashtbl.t;
  files : (string, file_meta) Hashtbl.t;
  (* device-offloaded filters: (udp port, payload-level predicate) *)
  mutable device_filters : (int * Prog.pred) list;
  (* device-offloaded rx pipelines: (udp port, payload-level stages) *)
  mutable device_pipelines : (int * Prog.pipeline) list;
  offloaded : (Types.qd, unit) Hashtbl.t;
  mutable next_qd : int;
  mutable next_file_lba : int;
  mutable next_udp_ephemeral : int;
  file_capacity_blocks : int;
}

let device_names t =
  List.concat
    [
      (match t.stack with Some _ -> [ "nic0" ] | None -> []);
      (match t.rdma with Some _ -> [ "rdma0" ] | None -> []);
      (match t.disp with Some _ -> [ "nvme0" ] | None -> []);
    ]

let create ~engine ~cost ?stack ?posix ?rdma ?block ?(mem_initial = 1 lsl 20)
    ?(mem_max = 1 lsl 28) ?(sanitize = Dk_mem.Dk_check.enabled_from_env ()) ()
    =
  let registry = Dk_mem.Registry.create () in
  let disp = Option.map Block_dispatch.create block in
  let t_ref = ref None in
  (* Transparent registration (§4.5): each new region the manager
     creates is registered with every attached device, paying the
     registration and pinning costs once per region. *)
  let on_new_region region =
    match !t_ref with
    | None -> ()
    | Some t ->
        let names = device_names t in
        if names <> [] then begin
          Engine.consume t.engine t.cost.Cost.register_region;
          Engine.consume t.engine
            (Int64.mul
               (Int64.of_int (Dk_mem.Region.pages region))
               t.cost.Cost.pin_per_page);
          List.iter
            (fun device ->
              Dk_mem.Registry.register t.registry
                ~region_id:(Dk_mem.Region.id region) ~device)
            names
        end
  in
  let manager =
    Dk_mem.Manager.create ~initial_region_size:mem_initial
      ~max_total_bytes:mem_max ~on_new_region ~sanitize ()
  in
  let t =
    {
      engine;
      cost;
      stack;
      posix;
      rdma;
      disp;
      tokens = Token.create ~audit:sanitize ~now:(fun () -> Engine.now engine) ();
      manager;
      registry;
      qds = Hashtbl.create 64;
      socks = Hashtbl.create 16;
      files = Hashtbl.create 8;
      device_filters = [];
      device_pipelines = [];
      offloaded = Hashtbl.create 4;
      next_qd = 1;
      next_file_lba = 0;
      next_udp_ephemeral = 40000;
      file_capacity_blocks = 4096;
    }
  in
  t_ref := Some t;
  (match rdma with
  | Some dev ->
      Dk_device.Rdma.set_mr_check dev (fun region_id ->
          match region_id with
          | Some id ->
              Dk_mem.Registry.is_registered t.registry ~region_id:id
                ~device:"rdma0"
          | None -> false)
  | None -> ());
  t

let engine t = t.engine
let cost t = t.cost
let manager t = t.manager
let registry t = t.registry
let outstanding_tokens t = Token.outstanding t.tokens
let sanitized t = Dk_mem.Manager.sanitized t.manager
let audit_tokens t = Token.audit t.tokens

(* Shutdown sweep for sanitizer mode: once the application believes all
   I/O has drained, every minted token must be completed+redeemed (or
   watched and delivered) and every buffer freed. Reports through
   Dk_check and returns (dangling tokens, leaked allocations). *)
let check_shutdown t =
  let dangling = Token.report_dangling ~context:"libOS shutdown" t.tokens in
  let leaks = Dk_mem.Manager.check_leaks t.manager in
  (dangling, leaks)

(* ---- descriptor table ---- *)

(* Aggregates across all queues; the per-qd counters installed below
   break the same totals down per descriptor. *)
let m_pushes = Dk_obs.Metrics.counter "core.pushes"
let m_pops = Dk_obs.Metrics.counter "core.pops"
let m_poll_iters = Dk_obs.Metrics.counter "core.poll_iters"
let m_ready_hits = Dk_obs.Metrics.counter "core.wait.ready_hits"
let m_push_batched = Dk_obs.Metrics.counter "core.push.batched"

(* Every descriptor's push/pop goes through this shim: one counter bump
   plus a flight-recorder entry per operation, no virtual time. *)
let install t impl =
  let qd = t.next_qd in
  t.next_qd <- t.next_qd + 1;
  let m_push = Dk_obs.Metrics.counter (Printf.sprintf "core.qd%d.pushes" qd) in
  let m_pop = Dk_obs.Metrics.counter (Printf.sprintf "core.qd%d.pops" qd) in
  let instrumented =
    {
      impl with
      Qimpl.push =
        (fun sga tok ->
          Dk_obs.Metrics.incr m_push;
          Dk_obs.Metrics.incr m_pushes;
          Dk_obs.Flight.recordf Dk_obs.Flight.default
            ~now:(Engine.now t.engine) Dk_obs.Flight.Push "qd %d (%s) tok %d"
            qd impl.Qimpl.kind tok;
          impl.Qimpl.push sga tok);
      pop =
        (fun tok ->
          Dk_obs.Metrics.incr m_pop;
          Dk_obs.Metrics.incr m_pops;
          Dk_obs.Flight.recordf Dk_obs.Flight.default
            ~now:(Engine.now t.engine) Dk_obs.Flight.Pop "qd %d (%s) tok %d"
            qd impl.Qimpl.kind tok;
          impl.Qimpl.pop tok);
    }
  in
  Hashtbl.replace t.qds qd instrumented;
  qd

let lookup t qd = Hashtbl.find_opt t.qds qd

(* ---- memory ---- *)

let sga_alloc_segs t strings =
  let bufs =
    List.map
      (fun s ->
        match Dk_mem.Manager.alloc_string t.manager s with
        | Some b -> Some b
        | None -> None)
      strings
  in
  if List.for_all Option.is_some bufs then
    Ok (Dk_mem.Sga.of_buffers (List.map Option.get bufs))
  else begin
    List.iter (function Some b -> Dk_mem.Buffer.free b | None -> ()) bufs;
    Error `No_memory
  end

let sga_alloc t s = sga_alloc_segs t [ s ]

let sga_free t sga =
  Engine.consume t.engine t.cost.Cost.free;
  Dk_mem.Sga.free sga

(* ---- waiting ---- *)

let wait_step t =
  Dk_obs.Metrics.incr m_poll_iters;
  Engine.consume t.engine t.cost.Cost.poll_iter

let wait t tok =
  match Token.status t.tokens tok with
  | `Unknown -> Types.Failed `Bad_qtoken
  | `Pending | `Done ->
      let rec loop () =
        match Token.redeem t.tokens tok with
        | Some r -> r
        | None ->
            wait_step t;
            if Engine.step t.engine then loop () else Types.Failed `Deadlock
      in
      loop ()

(* Nothing left in the event queue but a deadline remains: the poll
   loop spins until it; model that by jumping the clock. *)
let spin_to t deadline =
  if Int64.compare (Engine.now t.engine) deadline < 0 then
    Engine.consume t.engine (Int64.sub deadline (Engine.now t.engine))

let wait_timeout t tok ~timeout =
  let deadline = Int64.add (Engine.now t.engine) timeout in
  (* At expiry, completions scheduled at-or-before the deadline have
     still happened inside the window even if the poll loop's own CPU
     charges pushed the clock past them; run those events (late-run
     semantics: the clock does not move) and give redemption one last
     chance. Ties at the deadline go to the completion, never the
     timeout. *)
  let expire () =
    let rec drain_due () =
      match Engine.next_at t.engine with
      | Some ts when Int64.compare ts deadline <= 0 ->
          ignore (Engine.step t.engine);
          drain_due ()
      | Some _ | None -> ()
    in
    drain_due ();
    match Token.redeem t.tokens tok with
    | Some r -> r
    | None -> Types.Failed `Timeout
  in
  let rec loop () =
    match Token.redeem t.tokens tok with
    | Some r -> r
    | None ->
        if Int64.compare (Engine.now t.engine) deadline >= 0 then expire ()
        else begin
          wait_step t;
          (* Never run an event scheduled past the deadline: it is
             outside the window, and running it would hand its
             completion to this wait instead of a later one. *)
          match Engine.next_at t.engine with
          | Some ts when Int64.compare ts deadline <= 0 ->
              ignore (Engine.step t.engine);
              loop ()
          | Some _ | None ->
              spin_to t deadline;
              expire ()
        end
  in
  loop ()

(* wait_any / wait_all register every token into a wait set once, then
   dequeue readiness in O(1) per completion — no rescanning of [toks]
   per poll iteration. Any token left unredeemed is unregistered before
   returning, so it stays redeemable by a later wait. *)

let wait_any ?timeout t toks =
  let deadline = Option.map (Int64.add (Engine.now t.engine)) timeout in
  let expired () =
    match deadline with
    | Some d -> Int64.compare (Engine.now t.engine) d >= 0
    | None -> false
  in
  let ws = Token.waitset () in
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i tok ->
      if not (Hashtbl.mem index tok) then Hashtbl.add index tok i;
      Token.register t.tokens ws tok)
    toks;
  let unregister_all () = List.iter (Token.unregister t.tokens ws) toks in
  (* Draining the whole FIFO at a poll point yields exactly the set of
     currently-completed tokens; picking the minimum argument index
     keeps selection identical to the seed's left-to-right scan when
     several tokens completed in the same step. *)
  let idx tok =
    match Hashtbl.find_opt index tok with Some i -> i | None -> max_int
  in
  let rec drain best =
    match Token.take_ready t.tokens ws with
    | None -> best
    | Some tok ->
        let best =
          match best with
          | Some b when idx b <= idx tok -> Some b
          | Some _ | None -> Some tok
        in
        drain best
  in
  let rec loop () =
    match drain None with
    | Some tok ->
        unregister_all ();
        Dk_obs.Metrics.incr m_ready_hits;
        let r = Option.get (Token.redeem t.tokens tok) in
        Some (tok, r)
    | None ->
        if expired () then begin
          unregister_all ();
          None
        end
        else begin
          wait_step t;
          if Engine.step t.engine then loop ()
          else begin
            Option.iter (spin_to t) deadline;
            unregister_all ();
            None
          end
        end
  in
  loop ()

let wait_all ?timeout t toks =
  let deadline = Option.map (Int64.add (Engine.now t.engine)) timeout in
  let expired () =
    match deadline with
    | Some d -> Int64.compare (Engine.now t.engine) d >= 0
    | None -> false
  in
  let ws = Token.waitset () in
  List.iter (Token.register t.tokens ws) toks;
  let unregister_all () = List.iter (Token.unregister t.tokens ws) toks in
  (* Completion target: distinct tokens (registering a duplicate moves
     it, so its completion is enqueued once). Nothing is redeemed until
     every token is done — a partial set must stay waitable after a
     timeout. *)
  let seen = Hashtbl.create 16 in
  let n =
    List.fold_left
      (fun acc tok ->
        if Hashtbl.mem seen tok then acc
        else begin
          Hashtbl.add seen tok ();
          acc + 1
        end)
      0 toks
  in
  Hashtbl.reset seen;
  let done_count = ref 0 in
  let drain () =
    let rec go () =
      match Token.take_ready t.tokens ws with
      | None -> ()
      | Some tok ->
          if not (Hashtbl.mem seen tok) then begin
            Hashtbl.add seen tok ();
            incr done_count
          end;
          go ()
    in
    go ()
  in
  let rec loop () =
    drain ();
    if !done_count >= n then begin
      unregister_all ();
      Dk_obs.Metrics.add m_ready_hits n;
      Some
        (List.map
           (fun tok -> (tok, Option.get (Token.redeem t.tokens tok)))
           toks)
    end
    else if expired () then begin
      unregister_all ();
      None
    end
    else begin
      wait_step t;
      if Engine.step t.engine then loop ()
      else begin
        Option.iter (spin_to t) deadline;
        unregister_all ();
        None
      end
    end
  in
  loop ()

(* ---- persistent wait sets (epoll-style registration, exactly-once
   delivery): register once, then drain completions in O(1) per event.
   This is what a server with thousands of outstanding ops should use;
   wait_any builds and tears down the registration per call. *)

type waitset = Token.waitset

let waitset (_ : t) = Token.waitset ()
let waitset_add t ws tok = Token.register t.tokens ws tok

(* The drain loop lives at toplevel with its state in parameters: the
   old local [expired]/[loop] closure pair and the [Option.map] deadline
   allocated on every call to the hottest wait entry point. *)
let rec wait_next_loop t ws deadline =
  match Token.take_ready t.tokens ws with
  | Some tok ->
      Dk_obs.Metrics.incr m_ready_hits;
      let r = Option.get (Token.redeem t.tokens tok) in
      Some (tok, r)
  | None ->
      let expired =
        match deadline with
        | Some d -> Int64.compare (Engine.now t.engine) d >= 0
        | None -> false
      in
      if expired then None
      else begin
        wait_step t;
        if Engine.step t.engine then wait_next_loop t ws deadline
        else begin
          Option.iter (spin_to t) deadline;
          None
        end
      end
  [@@hot.alloc
    "the (token, result) completion pair is the wait API's return surface"]

let wait_next ?timeout t ws =
  let deadline =
    match timeout with
    | Some ns -> Some (Int64.add (Engine.now t.engine) ns)
    | None -> None
  in
  wait_next_loop t ws deadline

let try_wait t tok = Token.redeem t.tokens tok
let watch t tok k = Token.watch t.tokens tok k

(* ---- batching knobs ---- *)

(* One window for every attached device's submission stage. 0 (the
   default) rings per operation — the bit-identical unbatched path. *)
let set_batch_window t ns =
  (match t.stack with
  | Some stack -> Dk_device.Nic.set_tx_window (Stack.nic stack) ns
  | None -> ());
  (match t.rdma with
  | Some dev -> Dk_device.Rdma.set_tx_window dev ns
  | None -> ());
  match t.disp with
  | Some disp -> Dk_device.Block.set_sq_window (Block_dispatch.block disp) ns
  | None -> ()

let set_rx_pooling t ?class_capacity enabled =
  Dk_mem.Manager.set_rx_pooling t.manager ?class_capacity enabled

(* ---- data path ---- *)

let push t qd sga =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some impl ->
      let tok = Token.fresh t.tokens in
      impl.Qimpl.push sga tok;
      Ok tok

(* Batched submission: one descriptor-table lookup, one token minted
   per sga, and — when the device's tx window is open — one doorbell
   for the whole batch instead of one per element. *)
let rec push_tokens t impl = function
  | [] -> []
  | sga :: rest ->
      let tok = Token.fresh t.tokens in
      Dk_obs.Metrics.incr m_push_batched;
      impl.Qimpl.push sga tok;
      tok :: push_tokens t impl rest
  [@@hot.alloc "the batch API returns one fresh token list per call"]

let push_batch t qd sgas =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some impl -> Ok (push_tokens t impl sgas)

let pop t qd =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some impl ->
      let tok = Token.fresh t.tokens in
      impl.Qimpl.pop tok;
      Ok tok

let blocking_push t qd sga =
  match push t qd sga with
  | Error e -> Types.Failed e
  | Ok tok -> wait t tok

let blocking_pop t qd =
  match pop t qd with
  | Error e -> Types.Failed e
  | Ok tok -> wait t tok

(* ---- sockets ---- *)

let socket t proto =
  match (t.stack, t.posix) with
  | None, None -> Error `Not_supported
  | _ ->
      let qd = install t (Qimpl.not_supported t.tokens ~kind:"unbound-socket") in
      Hashtbl.replace t.socks qd { proto; port = None; peer = ref None };
      Ok qd

let alloc_udp_port t =
  let port = t.next_udp_ephemeral in
  t.next_udp_ephemeral <- t.next_udp_ephemeral + 1;
  port

let bind_udp t qd meta port =
  match t.stack with
  | None -> Error `Not_supported
  | Some stack -> (
      match Net_queue.udp ~tokens:t.tokens ~manager:t.manager ~stack ~port ~peer:meta.peer () with
      | Error `In_use -> Error `Not_supported
      | Ok impl ->
          meta.port <- Some port;
          Hashtbl.replace t.qds qd impl;
          Ok ())

let bind t qd ~port =
  match Hashtbl.find_opt t.socks qd with
  | None -> Error `Bad_qd
  | Some meta -> (
      if meta.port <> None then Error `Not_supported
      else
        match meta.proto with
        | `Udp -> bind_udp t qd meta port
        | `Tcp ->
            meta.port <- Some port;
            Ok ())

let listen t qd =
  match Hashtbl.find_opt t.socks qd with
  | None -> Error `Bad_qd
  | Some meta -> (
      match (meta.proto, meta.port, t.stack, t.posix) with
      | `Tcp, Some port, Some stack, _ -> (
          let register impl = install t impl in
          match Net_queue.listener ~tokens:t.tokens ~manager:t.manager ~stack ~port ~register () with
          | Error `In_use -> Error `Not_supported
          | Ok impl ->
              Hashtbl.replace t.qds qd impl;
              Ok ())
      | `Tcp, Some port, None, Some posix -> (
          (* kernel-fallback listener *)
          let register impl = install t impl in
          match Posix_queue.listener ~tokens:t.tokens ~posix ~port ~register with
          | Error `In_use -> Error `Not_supported
          | Ok impl ->
              Hashtbl.replace t.qds qd impl;
              Ok ())
      | `Tcp, _, _, _ | `Udp, _, _, _ -> Error `Not_supported)

let accept_async t qd =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some impl ->
      if impl.Qimpl.kind <> "tcp-listen" && impl.Qimpl.kind <> "posix-listen"
      then Error `Not_supported
      else begin
        let tok = Token.fresh t.tokens in
        impl.Qimpl.pop tok;
        Ok tok
      end

let accept t qd =
  match accept_async t qd with
  | Error e -> Error e
  | Ok tok -> (
      match wait t tok with
      | Types.Accepted qd' -> Ok qd'
      | Types.Failed e -> Error e
      | Types.Pushed | Types.Popped _ -> Error `Not_supported)

(* Kernel-fallback connect: through the legacy kernel's sockets. *)
let posix_connect t qd posix ~dst =
  let fd = Dk_kernel.Posix.socket posix in
  match Dk_kernel.Posix.connect posix fd ~dst with
  | Error _ -> Error `Refused
  | Ok () ->
      let ok =
        Engine.run_until t.engine (fun () ->
            Dk_kernel.Posix.connected posix fd)
      in
      if not ok && not (Dk_kernel.Posix.connected posix fd) then Error `Refused
      else begin
        let impl = Posix_queue.of_fd ~tokens:t.tokens ~posix ~fd () in
        Hashtbl.replace t.qds qd impl;
        Ok ()
      end

let connect t qd ~dst =
  match (Hashtbl.find_opt t.socks qd, t.stack) with
  | None, _ -> Error `Bad_qd
  | Some meta, None -> (
      match (meta.proto, t.posix) with
      | `Tcp, Some posix -> posix_connect t qd posix ~dst
      | (`Tcp | `Udp), _ -> Error `Not_supported)
  | Some meta, Some stack -> (
      match meta.proto with
      | `Udp ->
          meta.peer := Some dst;
          if meta.port = None then bind_udp t qd meta (alloc_udp_port t)
          else Ok ()
      | `Tcp ->
          let conn = Stack.tcp_connect stack ~dst in
          let failed = ref None in
          Dk_net.Tcp.set_on_close conn (fun reason -> failed := Some reason);
          let resolved () =
            Dk_net.Tcp.state conn = Dk_net.Tcp.Established || !failed <> None
          in
          let ok = Engine.run_until t.engine resolved in
          if not ok && not (resolved ()) then Error `Deadlock
          else if !failed <> None then
            Error
              (match !failed with
              | Some `Reset -> `Refused
              | Some `Timeout -> `Timeout
              | Some `Normal | None -> `Queue_closed)
          else begin
            let impl = Net_queue.of_conn ~tokens:t.tokens ~manager:t.manager ~conn () in
            Hashtbl.replace t.qds qd impl;
            Ok ()
          end)

let close t qd =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some impl ->
      impl.Qimpl.close ();
      Hashtbl.remove t.qds qd;
      Hashtbl.remove t.socks qd;
      Ok ()

(* ---- RDMA ---- *)

let rdma_endpoint t ?depth ?recv_size qp =
  match t.rdma with
  | None -> Error `Not_supported
  | Some _ -> (
      match
        Rdma_queue.create ~tokens:t.tokens ~manager:t.manager ~qp ?depth
          ?recv_size ()
      with
      | Error e -> Error e
      | Ok impl -> Ok (install t impl))

(* ---- storage ---- *)

let fcreate t path =
  match t.disp with
  | None -> Error `Not_supported
  | Some disp ->
      if Hashtbl.mem t.files path then Error `Not_supported
      else begin
        let meta =
          { base_lba = t.next_file_lba; capacity_blocks = t.file_capacity_blocks }
        in
        t.next_file_lba <- t.next_file_lba + t.file_capacity_blocks;
        Hashtbl.replace t.files path meta;
        let impl =
          File_queue.create ~tokens:t.tokens ~engine:t.engine ~disp
            ~base_lba:meta.base_lba ~capacity_blocks:meta.capacity_blocks ()
        in
        Ok (install t impl)
      end

let fopen t path =
  match (t.disp, Hashtbl.find_opt t.files path) with
  | None, _ -> Error `Not_supported
  | Some _, None -> Error `Bad_qd
  | Some disp, Some meta ->
      let recovered = ref None in
      File_queue.recover ~engine:t.engine ~disp ~base_lba:meta.base_lba
        ~capacity_blocks:meta.capacity_blocks (fun len -> recovered := Some len);
      let ok = Engine.run_until t.engine (fun () -> !recovered <> None) in
      if not ok && !recovered = None then Error `Deadlock
      else
        let existing_len = Option.value ~default:0 !recovered in
        let impl =
          File_queue.create ~tokens:t.tokens ~engine:t.engine ~disp
            ~base_lba:meta.base_lba ~capacity_blocks:meta.capacity_blocks
            ~existing_len ()
        in
        Ok (install t impl)

(* ---- queues & composition ---- *)

let queue t = install t (Memq.impl (Memq.create t.tokens))

let with_two t qd1 qd2 f =
  match (lookup t qd1, lookup t qd2) with
  | Some a, Some b -> f a b
  | None, _ | _, None -> Error `Bad_qd

let merge t qd1 qd2 =
  with_two t qd1 qd2 (fun a b ->
      Ok (install t (Compose.merge ~tokens:t.tokens ~engine:t.engine ~a ~b)))

let prog_filter_cost t pred =
  let footprint = Dk_device.Prog.filter_footprint pred in
  fun (_ : Dk_mem.Sga.t) -> Dk_sim.Cost.filter_cpu_ns t.cost footprint

(* Compile a payload-level predicate into a frame-level predicate for
   UDP datagrams on port [port]: shift offsets past the
   ethernet+IPv4+UDP headers and keep all frames not addressed to the
   port. *)
let header_bytes = 42

let rec shift_pred off (p : Prog.pred) : Prog.pred =
  match p with
  | Prog.True -> Prog.True
  | Prog.False -> Prog.False
  | Prog.Len_ge n -> Prog.Len_ge (n + off)
  | Prog.Len_lt n -> Prog.Len_lt (n + off)
  | Prog.Byte_eq (o, c) -> Prog.Byte_eq (o + off, c)
  | Prog.Byte_in (o, lo, hi) -> Prog.Byte_in (o + off, lo, hi)
  | Prog.Prefix s ->
      Prog.All
        (Prog.Len_ge (off + String.length s)
        :: List.init (String.length s) (fun i -> Prog.Byte_eq (off + i, s.[i])))
  | Prog.Hash_mod (o, l, m, tgt) -> Prog.Hash_mod (o + off, l, m, tgt)
  | Prog.All ps -> Prog.All (List.map (shift_pred off) ps)
  | Prog.Any ps -> Prog.Any (List.map (shift_pred off) ps)
  | Prog.Not p -> Prog.Not (shift_pred off p)

let udp_port_match port =
  Prog.All
    [
      Prog.Byte_eq (12, '\x08');
      Prog.Byte_eq (13, '\x00');
      Prog.Byte_eq (23, '\x11');
      Prog.Byte_eq (36, Char.chr ((port lsr 8) land 0xff));
      Prog.Byte_eq (37, Char.chr (port land 0xff));
    ]

let rebuild_device_filter t =
  match t.stack with
  | None -> ()
  | Some stack ->
      let nic = Stack.nic stack in
      let conjuncts =
        List.map
          (fun (port, pred) ->
            Prog.Any [ Prog.Not (udp_port_match port); shift_pred header_bytes pred ])
          t.device_filters
      in
      let program =
        match conjuncts with [] -> None | cs -> Some (Prog.All cs)
      in
      ignore (Dk_device.Nic.set_rx_filter nic program)

let try_offload_filter t qd pred =
  match (t.stack, lookup t qd, Hashtbl.find_opt t.socks qd) with
  | Some stack, Some impl, meta_opt
    when impl.Qimpl.kind = "udp"
         && Dk_device.Nic.programmable (Stack.nic stack) -> (
      match meta_opt with
      | Some { port = Some port; _ } ->
          t.device_filters <- (port, pred) :: t.device_filters;
          rebuild_device_filter t;
          Some impl
      | Some _ | None -> None)
  | _ -> None

let filter t qd pred =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some parent -> (
      match try_offload_filter t qd pred with
      | Some impl ->
          (* Device-filtered: elements are dropped before they reach the
             host, so the queue itself is the filtered queue. The socket
             identity (port, peer) moves to the new descriptor. *)
          let qd' = install t impl in
          Hashtbl.replace t.offloaded qd' ();
          Hashtbl.remove t.qds qd;
          (match Hashtbl.find_opt t.socks qd with
          | Some meta ->
              Hashtbl.remove t.socks qd;
              Hashtbl.replace t.socks qd' meta
          | None -> ());
          Ok qd'
      | None ->
          let payload_pred sga =
            Dk_device.Prog.eval_pred pred (Dk_mem.Sga.to_string sga)
          in
          Ok
            (install t
               (Compose.filter ~tokens:t.tokens ~engine:t.engine ~parent
                  ~pred:payload_pred ~elem_cost:(prog_filter_cost t pred))))

let filter_fn t qd fn =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some parent ->
      let elem_cost sga =
        Dk_sim.Cost.filter_cpu_ns t.cost (Dk_mem.Sga.length sga)
      in
      Ok
        (install t
           (Compose.filter ~tokens:t.tokens ~engine:t.engine ~parent ~pred:fn
              ~elem_cost))

let map t qd prog =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some parent ->
      let fn sga =
        Dk_mem.Sga.of_string
          (Dk_device.Prog.eval_map prog (Dk_mem.Sga.to_string sga))
      in
      let elem_cost sga =
        Dk_sim.Cost.filter_cpu_ns t.cost
          (Dk_device.Prog.map_footprint prog (Dk_mem.Sga.length sga))
      in
      Ok
        (install t
           (Compose.map ~tokens:t.tokens ~engine:t.engine ~parent ~fn ~elem_cost))

let map_fn t qd fn =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some parent ->
      let elem_cost sga =
        Dk_sim.Cost.filter_cpu_ns t.cost (Dk_mem.Sga.length sga)
      in
      Ok
        (install t
           (Compose.map ~tokens:t.tokens ~engine:t.engine ~parent ~fn ~elem_cost))

let sort t qd higher_priority =
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some parent ->
      Ok
        (install t
           (Compose.sort ~tokens:t.tokens ~engine:t.engine ~parent
              ~higher_priority))

let steer t qd ~ways ~hash_off ~hash_len =
  if ways <= 0 then invalid_arg "Demi.steer: ways must be positive";
  match lookup t qd with
  | None -> Error `Bad_qd
  | Some parent ->
      (* Classification cost: zero when the device can classify
         (RSS-style, programmable NIC under a UDP queue), the
         filter-evaluation cost per element otherwise. *)
      let on_device =
        (match (t.stack, Hashtbl.find_opt t.socks qd) with
        | Some stack, Some _ ->
            parent.Qimpl.kind = "udp"
            && Dk_device.Nic.programmable (Stack.nic stack)
        | _ -> false)
        || Hashtbl.mem t.offloaded qd
      in
      let classify_cost =
        if on_device then 0L else Dk_sim.Cost.filter_cpu_ns t.cost hash_len
      in
      let outs = Array.init ways (fun _ -> Memq.create t.tokens) in
      let way_of sga =
        let s = Dk_mem.Sga.to_string sga in
        (* find the matching partition; Hash_mod partitions exactly *)
        let rec find i =
          if i >= ways then 0
          else if
            Dk_device.Prog.eval_pred (Prog.Hash_mod (hash_off, hash_len, ways, i)) s
          then i
          else find (i + 1)
        in
        find 0
      in
      let deliver sga =
        Engine.consume t.engine classify_cost;
        Mailbox.deliver (Memq.mailbox outs.(way_of sga)) (Types.Popped sga)
      in
      (* one outstanding pop on the parent, distributing as elements
         arrive *)
      let rec pump () =
        let tok = Token.fresh t.tokens in
        parent.Qimpl.pop tok;
        Token.watch t.tokens tok (fun result ->
            match result with
            | Types.Popped sga ->
                deliver sga;
                pump ()
            | Types.Failed _ ->
                Array.iter (fun m -> Mailbox.close (Memq.mailbox m)) outs
            | Types.Pushed | Types.Accepted _ -> pump ())
      in
      pump ();
      Ok (Array.to_list (Array.map (fun m -> install t (Memq.impl m)) outs))

let qconnect t ~src ~dst =
  with_two t src dst (fun s d ->
      Compose.qconnect ~tokens:t.tokens ~src:s ~dst:d;
      Ok ())

let filter_offloaded t qd = Hashtbl.mem t.offloaded qd

(* ---- rx pipeline offload (deep NIC offload) ----

   Payload-level pipelines compile to frame-level ones exactly the way
   E8 filters do: every offset shifts past the 42-byte
   ethernet+IPv4+UDP headers and every stage guard is conjoined with
   the port match, so a pipeline installed for one socket can never
   touch another port's traffic. Pipelines for all offloaded ports
   concatenate (sorted by port — install order cannot change the
   program) into the single NIC rx pipeline. *)

let shift_field off (f : Prog.field) : Prog.field =
  match f with
  | Prog.F_len -> Prog.F_len
  | Prog.F_u8 o -> Prog.F_u8 (o + off)
  | Prog.F_u16 o -> Prog.F_u16 (o + off)
  | Prog.F_hash (o, l) -> Prog.F_hash (o + off, l)
  | Prog.F_hash_rest o -> Prog.F_hash_rest (o + off)

let shift_key off (k : Prog.key) : Prog.key =
  match k with
  | Prog.K_bytes (o, l) -> Prog.K_bytes (o + off, l)
  | Prog.K_rest o -> Prog.K_rest (o + off)

let rec shift_fmatch off (m : Prog.fmatch) : Prog.fmatch =
  match m with
  | Prog.M_pred p -> Prog.M_pred (shift_pred off p)
  | Prog.M_eq (f, v) -> Prog.M_eq (shift_field off f, v)
  | Prog.M_mod (f, m, tgt) -> Prog.M_mod (shift_field off f, m, tgt)
  | Prog.M_all ms -> Prog.M_all (List.map (shift_fmatch off) ms)
  | Prog.M_any ms -> Prog.M_any (List.map (shift_fmatch off) ms)
  | Prog.M_not m -> Prog.M_not (shift_fmatch off m)

let rec shift_action off (a : Prog.action) : Prog.action =
  match a with
  | Prog.Pass | Prog.Drop | Prog.Steer _ -> a
  | Prog.Steer_field (f, n) -> Prog.Steer_field (shift_field off f, n)
  | Prog.Rewrite m -> Prog.Rewrite m
  | Prog.Respond r ->
      Prog.Respond
        {
          r with
          Prog.r_key = shift_key off r.Prog.r_key;
          Prog.r_on_miss = shift_action off r.Prog.r_on_miss;
        }

let shift_stage off port (st : Prog.stage) : Prog.stage =
  {
    Prog.guard =
      Prog.M_all
        [ Prog.M_pred (udp_port_match port); shift_fmatch off st.Prog.guard ];
    Prog.act = shift_action off st.Prog.act;
  }

let rebuild_device_pipeline t =
  match t.stack with
  | None -> ()
  | Some stack ->
      let nic = Stack.nic stack in
      let sorted =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          t.device_pipelines
      in
      let program =
        List.concat_map
          (fun (port, stages) ->
            List.map (shift_stage header_bytes port) stages)
          sorted
      in
      ignore (Dk_device.Nic.set_rx_pipeline nic program)

let offload_udp_pipeline t qd stages =
  match (t.stack, lookup t qd, Hashtbl.find_opt t.socks qd) with
  | _, None, _ -> Error `Bad_qd
  | Some stack, Some impl, Some { proto = `Udp; port = Some port; _ }
    when impl.Qimpl.kind = "udp"
         && Dk_device.Nic.programmable (Stack.nic stack) ->
      t.device_pipelines <-
        (port, stages)
        :: List.filter (fun (p, _) -> p <> port) t.device_pipelines;
      rebuild_device_pipeline t;
      Ok ()
  | _, Some _, _ -> Error `Not_supported

(* The kv GET hot-path pipeline, payload level: a datagram starting
   with 'G' is a GET whose key is the rest of the payload; answer hits
   as "+" ^ value (byte-identical to the host's Value reply under the
   UDP codec), pass misses — and everything that is not a GET — to the
   host. *)
let get_pipeline ~max_value : Prog.pipeline =
  [
    {
      Prog.guard = Prog.M_pred (Prog.All [ Prog.Len_ge 1; Prog.Byte_eq (0, 'G') ]);
      Prog.act =
        Prog.Respond
          {
            Prog.r_key = Prog.K_rest 1;
            Prog.r_hit_prefix = "+";
            Prog.r_max_value = max_value;
            Prog.r_on_miss = Prog.Pass;
          };
    };
  ]

let offload_udp_get t qd ?policy ?obs_prefix ?(capacity = 4096)
    ?(max_value = 4096) () =
  match t.stack with
  | None -> Error `Not_supported
  | Some stack -> (
      match
        Dk_device.Nic.offload_enable (Stack.nic stack) ?policy ?obs_prefix
          ~capacity ~max_value ()
      with
      | Error `Not_programmable -> Error `Not_supported
      | Ok _ -> offload_udp_pipeline t qd (get_pipeline ~max_value))

(* Host -> device control-queue wrappers: the sanctioned path for table
   writes (dk-lint `offload-site`). Each completes on the device before
   returning — see [Nic.ctrl_insert]. *)

let offload_insert t k v =
  match t.stack with
  | None -> Error `Rejected
  | Some stack -> Dk_device.Nic.ctrl_insert (Stack.nic stack) k v

let offload_update t k v =
  match t.stack with
  | None -> false
  | Some stack -> Dk_device.Nic.ctrl_update (Stack.nic stack) k v

let offload_invalidate t k =
  match t.stack with
  | None -> false
  | Some stack -> Dk_device.Nic.ctrl_invalidate (Stack.nic stack) k

let offload_stats t =
  match t.stack with
  | None -> None
  | Some stack ->
      Option.map Dk_device.Table.stats
        (Dk_device.Nic.offload_table (Stack.nic stack))

let pipeline_cpu_ns t p len =
  Dk_sim.Cost.filter_cpu_ns t.cost (Prog.pipeline_footprint p len)
