type qd = int
type qtoken = int

type error =
  [ `Bad_qd
  | `Bad_qtoken
  | `Queue_closed
  | `Would_block
  | `Refused
  | `Timeout
  | `Conn_aborted
  | `Io_error
  | `No_memory
  | `Not_supported
  | `Deadlock ]

type op_result =
  | Pushed
  | Popped of Dk_mem.Sga.t
  | Accepted of qd
  | Failed of error

let error_to_string = function
  | `Bad_qd -> "bad queue descriptor"
  | `Bad_qtoken -> "bad queue token"
  | `Queue_closed -> "queue closed"
  | `Would_block -> "would block"
  | `Refused -> "connection refused"
  | `Timeout -> "timeout"
  | `Conn_aborted -> "connection aborted"
  | `Io_error -> "device I/O error"
  | `No_memory -> "out of memory"
  | `Not_supported -> "not supported"
  | `Deadlock -> "simulation deadlock"

let pp_error ppf e = Format.fprintf ppf "%s" (error_to_string e)

let pp_op_result ppf = function
  | Pushed -> Format.fprintf ppf "pushed"
  | Popped sga -> Format.fprintf ppf "popped %a" Dk_mem.Sga.pp sga
  | Accepted qd -> Format.fprintf ppf "accepted qd=%d" qd
  | Failed e -> Format.fprintf ppf "failed: %a" pp_error e
