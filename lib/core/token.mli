(** Queue-token table.

    Every non-blocking push/pop mints a fresh token; the queue
    implementation completes it exactly once; the application redeems
    it with a [wait_*] call, which removes it. Because each token is
    unique to a single queue operation, a completion wakes exactly the
    operation's waiter — the contrast §4.4 draws with epoll's wake-all
    file-descriptor readiness.

    The exactly-once contract is enforced: completing a completed token
    or redeeming a watched one raises [Invalid_argument] — or, with
    audit mode on ([~audit:true] or [DK_SANITIZE=1]), is recorded and
    reported through {!Dk_mem.Dk_check} so a whole run can be audited
    with {!audit}. *)

type t

type waitset
(** Readiness FIFO for one waiter. Tokens {!register}ed into a wait set
    are enqueued on it when they complete, so the waiter dequeues
    readiness in O(1) per completion ({!take_ready}) instead of
    rescanning its token list. A token belongs to at most one wait set
    (latest registration wins), preserving the exactly-one-wakeup
    contract. *)

type audit_report = {
  dangling : Types.qtoken list;
      (** minted, never completed nor redeemed — lost wakeups *)
  double_completes : int;
  redeems_after_watch : int;
}

val create : ?audit:bool -> ?now:(unit -> int64) -> unit -> t
(** [audit] defaults to {!Dk_mem.Dk_check.enabled_from_env}. [now], when
    given, timestamps completions in the {!Dk_obs.Flight} recorder; it is
    only ever read, never consumed against, so instrumentation cannot
    perturb virtual time. *)

val audited : t -> bool

val fresh : t -> Types.qtoken
(** Mint a pending token. *)

val complete : t -> Types.qtoken -> Types.op_result -> unit
(** Deliver the result. @raise Invalid_argument if the token is unknown
    or already completed (queue implementations must complete exactly
    once); in audit mode a double complete is counted and reported via
    {!Dk_mem.Dk_check.report} instead. *)

val status : t -> Types.qtoken -> [ `Pending | `Done | `Unknown ]

val peek : t -> Types.qtoken -> Types.op_result option
(** Result if completed, without redeeming. *)

val redeem : t -> Types.qtoken -> Types.op_result option
(** Take the result and forget the token.
    @raise Invalid_argument if the token is watched: a watched token's
    completion goes to its callback, so waiting on it too would deliver
    the same completion twice. In audit mode this is counted/reported
    and [None] is returned under {!Dk_mem.Dk_check.capture}. *)

val watch : t -> Types.qtoken -> (Types.op_result -> unit) -> unit
(** Internal plumbing for composed queues: run the callback when the
    token completes (immediately if it already has), auto-redeeming it.
    A watched token must not also be waited on — see {!redeem}. *)

val outstanding : t -> int
(** Pending (unredeemed, uncompleted) tokens. *)

val waitset : unit -> waitset
(** A fresh, empty wait set. *)

val register : t -> waitset -> Types.qtoken -> unit
(** Route [tok]'s completion to the wait set's ready FIFO. An
    already-completed token is enqueued immediately; a watched or
    unknown token is ignored (it can never become ready for a waiter,
    exactly as under the scanning implementation). Registering a token
    that is already in a wait set moves it — latest registration
    wins. *)

val unregister : t -> waitset -> Types.qtoken -> unit
(** Detach [tok] from this wait set (back to plain pending). No-op if
    the token is not currently registered with [ws] — in particular a
    completed-but-unredeemed token stays redeemable. *)

val take_ready : t -> waitset -> Types.qtoken option
(** Dequeue the next ready (completed, still unredeemed) token.
    Entries whose token was redeemed since being enqueued are skipped:
    a completion produces at most one wakeup. *)

val audit : t -> audit_report
(** Snapshot of the exactly-once bookkeeping: tokens still dangling
    (pending or watched-but-never-completed, sorted), plus the
    double-complete and redeem-after-watch counts recorded so far
    (audit mode only; both are [0] otherwise, because the violations
    raised instead). *)

val report_dangling : ?context:string -> t -> int
(** Report every dangling token through {!Dk_mem.Dk_check.report}
    ([Token_dangling]) and return how many there were. Call when a
    queue or the whole libOS drains: every in-flight operation should
    have been completed or failed by then. *)
