let encode segments =
  let buf = Stdlib.Buffer.create 64 in
  Dk_util.Varint.write buf (List.length segments);
  List.iter (fun s -> Dk_util.Varint.write buf (String.length s)) segments;
  List.iter (Stdlib.Buffer.add_string buf) segments;
  Stdlib.Buffer.contents buf

let encode_sga sga =
  encode (List.map Dk_mem.Buffer.to_string (Dk_mem.Sga.segments sga))

let frame_overhead segments =
  Dk_util.Varint.encoded_size (List.length segments)
  + List.fold_left
      (fun acc s -> acc + Dk_util.Varint.encoded_size (String.length s))
      0 segments

type decoder = {
  mutable pending : string; (* undecoded stream bytes *)
}

let create () = { pending = "" }

let feed t s = if String.length s > 0 then t.pending <- t.pending ^ s
  [@@hot.alloc
    "the decoder carries the undecoded stream tail as one string; \
     feeding appends to it"]

let buffered t = String.length t.pending

(* Decode [nsegs] segment lengths starting at [off]; toplevel so the
   per-message call allocates no closure environment. *)
let rec read_lengths b nsegs i off acc =
  if i = nsegs then Some (List.rev acc, off)
  else
    match Dk_util.Varint.read b off with
    | None -> None
    | Some (len, used) ->
        if len < 0 then failwith "framing: bad segment length"
        else read_lengths b nsegs (i + 1) (off + used) (len :: acc)
  [@@hot.alloc "the decoded segment-length list is the frame header"]

let rec sum_lens = function [] -> 0 | n :: rest -> n + sum_lens rest

let rec cut_segs pending pos = function
  | [] -> []
  | len :: rest -> String.sub pending pos len :: cut_segs pending (pos + len) rest
  [@@hot.alloc "decoding materializes each delivered segment"]

(* Try to decode one message from the head of [pending]. *)
let next t =
  let b = Bytes.unsafe_of_string t.pending in
  match Dk_util.Varint.read b 0 with
  | None -> None
  | Some (nsegs, used0) ->
      if nsegs < 0 || nsegs > 1 lsl 16 then failwith "framing: bad segment count"
      else begin
        match read_lengths b nsegs 0 used0 [] with
        | None -> None
        | Some (lens, header) ->
            let total = sum_lens lens in
            if String.length t.pending < header + total then None
            else begin
              let segs = cut_segs t.pending header lens in
              let tail_at = header + total in
              t.pending <-
                String.sub t.pending tail_at (String.length t.pending - tail_at);
              Some segs
            end
      end
  [@@hot.alloc "the remaining stream tail is re-sliced after each message"]
