type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"

type config = {
  mss : int;
  send_buffer : int;
  recv_buffer : int;
  rto_initial : int64;
  rto_max : int64;
  max_retries : int;
  time_wait : int64;
}

let default_config =
  {
    mss = 1460;
    send_buffer = 64 * 1024;
    recv_buffer = 64 * 1024;
    rto_initial = 100_000L; (* 100 us: datacenter-scale RTTs *)
    rto_max = 4_000_000L;
    max_retries = 8;
    time_wait = 1_000_000L;
  }

type close_reason = [ `Normal | `Reset | `Timeout ]

type stats = {
  segs_sent : int;
  segs_received : int;
  bytes_sent : int;
  bytes_received : int;
  retransmits : int;
  fast_retransmits : int;
  dup_acks : int;
  out_of_order : int;
}

(* Class-wide obs instruments (aggregated across connections); the
   flight recorder entries name the 4-tuple to tell flows apart. *)
let m_segs_sent = Dk_obs.Metrics.counter "net.tcp.segs_sent"
let m_segs_received = Dk_obs.Metrics.counter "net.tcp.segs_received"
let m_retransmits = Dk_obs.Metrics.counter "net.tcp.retransmits"
let m_fast_retransmits = Dk_obs.Metrics.counter "net.tcp.fast_retransmits"
let m_rto_fired = Dk_obs.Metrics.counter "net.tcp.rto_fired"
let m_conn_timeouts = Dk_obs.Metrics.counter "net.tcp.conn_timeouts"
let m_dup_acks = Dk_obs.Metrics.counter "net.tcp.dup_acks"
let m_ooo = Dk_obs.Metrics.counter "net.tcp.out_of_order"

(* 32-bit modular sequence arithmetic. *)
let seq_mask = 0xffffffff
let seq_add a n = (a + n) land seq_mask
let seq_diff a b = (a - b) land seq_mask
(* a < b in sequence space *)
let seq_lt a b = a <> b && seq_diff b a < 0x80000000
let seq_le a b = a = b || seq_lt a b

type conn = {
  engine : Dk_sim.Engine.t;
  config : config;
  local : Addr.endpoint;
  remote : Addr.endpoint;
  emit : Tcp_wire.t -> unit;
  mutable st : state;
  (* send side *)
  send_ring : Dk_util.Ring.t; (* unacked + unsent bytes; head = snd_una *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int; (* peer's advertised window *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable fin_pending : bool; (* close requested; FIN after data drains *)
  mutable fin_sent : bool;
  mutable fin_seq : int;
  (* receive side *)
  recv_ring : Dk_util.Ring.t; (* in-order data ready for the app *)
  mutable rcv_nxt : int;
  mutable ooo : (int * string) list; (* out-of-order segments, by seq *)
  mutable peer_fin : int option; (* seq of peer's FIN, once seen *)
  (* timers *)
  mutable rto : int64;
  mutable retries : int;
  mutable rtx_timer : Dk_sim.Engine.timer option;
  (* callbacks *)
  mutable on_connect : unit -> unit;
  mutable on_readable : unit -> unit;
  mutable on_peer_fin : unit -> unit;
  mutable on_writable : unit -> unit;
  mutable on_close : close_reason -> unit;
  mutable internal_teardown : close_reason -> unit;
  (* stats *)
  mutable segs_sent : int;
  mutable segs_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable retransmits : int;
  mutable fast_retransmits : int;
  mutable dup_acks : int;
  mutable dup_ack_streak : int; (* consecutive dup acks since last advance *)
  mutable ooo_count : int;
}

let state t = t.st
let local t = t.local
let remote t = t.remote

let stats t =
  {
    segs_sent = t.segs_sent;
    segs_received = t.segs_received;
    bytes_sent = t.bytes_sent;
    bytes_received = t.bytes_received;
    retransmits = t.retransmits;
    fast_retransmits = t.fast_retransmits;
    dup_acks = t.dup_acks;
    out_of_order = t.ooo_count;
  }

let set_on_connect t f = t.on_connect <- f
let set_on_readable t f = t.on_readable <- f
let set_on_peer_fin t f = t.on_peer_fin <- f
let set_on_writable t f = t.on_writable <- f
let set_on_close t f = t.on_close <- f
let set_internal_teardown t f = t.internal_teardown <- f

let recv_window t = Dk_util.Ring.available t.recv_ring

let emit_seg t ?(payload = "") flags =
  t.segs_sent <- t.segs_sent + 1;
  Dk_obs.Metrics.incr m_segs_sent;
  t.bytes_sent <- t.bytes_sent + String.length payload;
  t.emit
    {
      Tcp_wire.src_port = t.local.Addr.port;
      dst_port = t.remote.Addr.port;
      seq = t.snd_nxt;
      ack_seq = t.rcv_nxt;
      flags;
      window = min 0xffff (recv_window t);
      payload;
    }
  [@@hot.alloc
    "the segment record is the wire representation handed to the \
     stack's emit"]

(* Emit a segment whose SEQ is not snd_nxt (retransmission). *)
let emit_at t ~seq ?(payload = "") flags =
  t.segs_sent <- t.segs_sent + 1;
  Dk_obs.Metrics.incr m_segs_sent;
  t.emit
    {
      Tcp_wire.src_port = t.local.Addr.port;
      dst_port = t.remote.Addr.port;
      seq;
      ack_seq = t.rcv_nxt;
      flags;
      window = min 0xffff (recv_window t);
      payload;
    }
  [@@hot.alloc
    "the segment record is the wire representation handed to the \
     stack's emit"]

let ack_flags = { Tcp_wire.no_flags with ack = true }

let send_ack t = emit_seg t ack_flags

let cancel_rtx t =
  match t.rtx_timer with
  | Some timer ->
      Dk_sim.Engine.cancel timer;
      t.rtx_timer <- None
  | None -> ()

let enter_closed t reason =
  cancel_rtx t;
  if t.st <> Closed then begin
    t.st <- Closed;
    t.internal_teardown reason;
    t.on_close reason
  end

(* Bytes in the send ring that have been transmitted but not acked. *)
let unacked t = seq_diff t.snd_nxt t.snd_una

(* Bytes in the send ring not yet transmitted. The FIN, if queued,
   occupies sequence space but not ring space. *)
let unsent t =
  let ring_unsent = Dk_util.Ring.length t.send_ring - unacked t in
  max 0 ring_unsent

let rec arm_rtx t =
  cancel_rtx t;
  if unacked t > 0 || (t.fin_sent && seq_lt t.snd_una t.snd_nxt) then
    t.rtx_timer <- Some (Dk_sim.Engine.after t.engine t.rto (fun () -> on_rto t))
  [@@hot.alloc
    "the RTO thunk arms go-back-N retransmission: one per outstanding \
     window, not per segment"]

and on_rto t =
  t.rtx_timer <- None;
  Dk_obs.Metrics.incr m_rto_fired;
  if t.retries >= t.config.max_retries then begin
    Dk_obs.Metrics.incr m_conn_timeouts;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop
      "tcp %d->%d gave up after %d retries" t.local.Addr.port
      t.remote.Addr.port t.retries;
    enter_closed t `Timeout
  end
  else begin
    t.retries <- t.retries + 1;
    t.retransmits <- t.retransmits + 1;
    Dk_obs.Metrics.incr m_retransmits;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Retransmit
      "tcp %d->%d rto #%d, seq %d (rto now %Ldns)" t.local.Addr.port
      t.remote.Addr.port t.retries t.snd_una
      (Int64.min t.config.rto_max (Int64.mul t.rto 2L));
    (* Multiplicative decrease, back to slow start. *)
    t.ssthresh <- max (t.cwnd / 2) (2 * t.config.mss);
    t.cwnd <- t.config.mss;
    t.rto <- Int64.min t.config.rto_max (Int64.mul t.rto 2L);
    retransmit_head t;
    arm_rtx t
  end

(* Resend one MSS from snd_una (go-back-N restart). *)
and retransmit_head t =
  match t.st with
  | Syn_sent ->
      emit_at t ~seq:t.snd_una { Tcp_wire.no_flags with syn = true }
  | Syn_rcvd ->
      emit_at t ~seq:t.snd_una { Tcp_wire.no_flags with syn = true; ack = true }
  | _ ->
      let pending_data = unacked t in
      let data_bytes = min (min pending_data t.config.mss) pending_data in
      if data_bytes > 0 then begin
        let buf = Bytes.create data_bytes in
        let got = Dk_util.Ring.peek t.send_ring buf 0 data_bytes in
        let payload = Bytes.sub_string buf 0 got in
        emit_at t ~seq:t.snd_una ~payload ack_flags
      end
      else if t.fin_sent then
        emit_at t ~seq:t.fin_seq { ack_flags with fin = true }
  [@@hot.alloc
    "loss recovery materializes the resent segment's flags and payload; \
     it runs on RTO or triple-dup-ACK, not per delivered segment"]

(* How many new payload bytes we may put on the wire right now. *)
let send_allowance t =
  let flight = unacked t in
  let wnd = min (max t.snd_wnd t.config.mss) t.cwnd in
  max 0 (wnd - flight)

let can_carry_data t =
  match t.st with
  | Established | Close_wait | Fin_wait_1 | Closing -> true
  | Closed | Listen | Syn_sent | Syn_rcvd | Fin_wait_2 | Last_ack | Time_wait ->
      false

(* One MSS-or-less segment per round, budget threaded through the
   parameter: the old budget/progress ref pair allocated two cells on
   every output attempt. *)
let rec output_rounds t budget =
  let avail = unsent t in
  let n = min (min avail t.config.mss) budget in
  if n > 0 then begin
    let buf = Bytes.create n in
    (* The bytes to send start [unacked t] into the ring. *)
    let skip = unacked t in
    let tmp = Bytes.create (skip + n) in
    let got = Dk_util.Ring.peek t.send_ring tmp 0 (skip + n) in
    if got = skip + n then begin
      Bytes.blit tmp skip buf 0 n;
      let payload = Bytes.unsafe_to_string buf in
      emit_seg t ~payload ack_flags;
      t.snd_nxt <- seq_add t.snd_nxt n;
      output_rounds t (budget - n)
    end
  end
  [@@hot.alloc "each emitted segment materializes its payload from the ring"]

(* Transmit as much queued data as windows allow, then the FIN if it is
   due. *)
let rec try_output t =
  if can_carry_data t || t.st = Fin_wait_1 || t.st = Last_ack then begin
    output_rounds t (send_allowance t);
    maybe_send_fin t;
    if t.rtx_timer = None then arm_rtx t
  end

and maybe_send_fin t =
  if t.fin_pending && (not t.fin_sent) && unsent t = 0 then begin
    t.fin_sent <- true;
    t.fin_seq <- t.snd_nxt;
    emit_seg t { ack_flags with fin = true };
    t.snd_nxt <- seq_add t.snd_nxt 1;
    arm_rtx t
  end
  [@@hot.alloc "the FIN flag record is built at half-close, once per side"]

let make ~engine ~config ~local ~remote ~iss ~emit st =
  {
    engine;
    config;
    local;
    remote;
    emit;
    st;
    send_ring = Dk_util.Ring.create config.send_buffer;
    snd_una = iss;
    snd_nxt = iss;
    snd_wnd = config.mss;
    cwnd = 2 * config.mss;
    ssthresh = 64 * 1024;
    fin_pending = false;
    fin_sent = false;
    fin_seq = 0;
    recv_ring = Dk_util.Ring.create config.recv_buffer;
    rcv_nxt = 0;
    ooo = [];
    peer_fin = None;
    rto = config.rto_initial;
    retries = 0;
    rtx_timer = None;
    on_connect = (fun () -> ());
    on_readable = (fun () -> ());
    on_peer_fin = (fun () -> ());
    on_writable = (fun () -> ());
    on_close = (fun _ -> ());
    internal_teardown = (fun _ -> ());
    segs_sent = 0;
    segs_received = 0;
    bytes_sent = 0;
    bytes_received = 0;
    retransmits = 0;
    fast_retransmits = 0;
    dup_acks = 0;
    dup_ack_streak = 0;
    ooo_count = 0;
  }

let create_active ~engine ~config ~local ~remote ~iss ~emit =
  let t = make ~engine ~config ~local ~remote ~iss ~emit Syn_sent in
  emit_seg t { Tcp_wire.no_flags with syn = true };
  t.snd_nxt <- seq_add t.snd_nxt 1;
  arm_rtx t;
  t

let create_passive ~engine ~config ~local ~remote ~iss ~emit ~remote_seq =
  let t = make ~engine ~config ~local ~remote ~iss ~emit Syn_rcvd in
  t.rcv_nxt <- seq_add remote_seq 1;
  emit_seg t { Tcp_wire.no_flags with syn = true; ack = true };
  t.snd_nxt <- seq_add t.snd_nxt 1;
  arm_rtx t;
  t

(* ---- application side ---- *)

let send_space t = Dk_util.Ring.available t.send_ring

let send t data =
  match t.st with
  | Established | Close_wait when not t.fin_pending ->
      let n = Dk_util.Ring.write_string t.send_ring data in
      if n > 0 then try_output t;
      n
  | _ -> 0

let recv_ready t = Dk_util.Ring.length t.recv_ring

let recv_into t buf off len =
  let n = Dk_util.Ring.read t.recv_ring buf off len in
  (* Opening the receive window may deserve a window update; piggyback
     on the next ACK instead of emitting pure window updates. *)
  n

let recv t len =
  let len = min len (recv_ready t) in
  let buf = Bytes.create len in
  let n = recv_into t buf 0 len in
  Bytes.sub_string buf 0 n
  [@@hot.alloc "recv materializes the requested bytes out of the recv ring"]

let close t =
  match t.st with
  | Established | Syn_rcvd ->
      t.fin_pending <- true;
      t.st <- Fin_wait_1;
      maybe_send_fin t
  | Close_wait ->
      t.fin_pending <- true;
      t.st <- Last_ack;
      maybe_send_fin t
  | Syn_sent | Listen -> enter_closed t `Normal
  | Closed | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait -> ()

let abort t =
  (match t.st with
  | Closed | Listen -> ()
  | _ ->
      emit_seg t { Tcp_wire.no_flags with rst = true; ack = true });
  enter_closed t `Reset

(* ---- segment processing ---- *)

let enter_time_wait t =
  cancel_rtx t;
  t.st <- Time_wait;
  ignore
    (Dk_sim.Engine.after t.engine t.config.time_wait (fun () ->
         enter_closed t `Normal))

(* Merge an out-of-order segment list entry into the recv ring if its
   turn has come; returns true when progress was made. *)
let rec drain_ooo t =
  let ready, rest =
    List.partition (fun (seq, _) -> seq_le seq t.rcv_nxt) t.ooo
  in
  t.ooo <- rest;
  match ready with
  | [] -> ()
  | _ ->
      let advanced = ref false in
      List.iter
        (fun (seq, payload) ->
          (* The segment may partially duplicate delivered data. *)
          let skip = seq_diff t.rcv_nxt seq in
          if skip < String.length payload then begin
            let fresh = String.sub payload skip (String.length payload - skip) in
            let n = Dk_util.Ring.write_string t.recv_ring fresh in
            t.rcv_nxt <- seq_add t.rcv_nxt n;
            if n > 0 then advanced := true
          end)
        (List.sort (fun (a, _) (b, _) -> compare (seq_diff a t.rcv_nxt) (seq_diff b t.rcv_nxt)) ready);
      if !advanced then drain_ooo t

let accept_payload t (seg : Tcp_wire.t) =
  let payload = seg.payload in
  if String.length payload = 0 then false
  else begin
    t.bytes_received <- t.bytes_received + String.length payload;
    if seg.seq = t.rcv_nxt then begin
      let n = Dk_util.Ring.write_string t.recv_ring payload in
      t.rcv_nxt <- seq_add t.rcv_nxt n;
      drain_ooo t;
      n > 0
    end
    else if seq_lt t.rcv_nxt seg.seq then begin
      (* Future data: stash for reassembly (bounded by window). *)
      if seq_diff seg.seq t.rcv_nxt <= t.config.recv_buffer then begin
        t.ooo_count <- t.ooo_count + 1;
        Dk_obs.Metrics.incr m_ooo;
        t.ooo <- (seg.seq, payload) :: t.ooo
      end;
      false
    end
    else begin
      (* Stale/overlapping: deliver any fresh suffix. *)
      let skip = seq_diff t.rcv_nxt seg.seq in
      if skip < String.length payload then begin
        let fresh = String.sub payload skip (String.length payload - skip) in
        let n = Dk_util.Ring.write_string t.recv_ring fresh in
        t.rcv_nxt <- seq_add t.rcv_nxt n;
        drain_ooo t;
        n > 0
      end
      else false
    end
  end

let process_ack t (seg : Tcp_wire.t) =
  if seg.flags.Tcp_wire.ack then begin
    let ack = seg.ack_seq in
    if seq_lt t.snd_una ack && seq_le ack t.snd_nxt then begin
      let acked = seq_diff ack t.snd_una in
      (* The FIN occupies sequence space but no ring bytes. *)
      let fin_acked = t.fin_sent && ack = seq_add t.fin_seq 1 in
      let data_acked = acked - (if fin_acked then 1 else 0) in
      let syn_acked =
        (t.st = Syn_sent || t.st = Syn_rcvd) && acked > 0
      in
      let data_acked = data_acked - (if syn_acked then 1 else 0) in
      if data_acked > 0 then ignore (Dk_util.Ring.drop t.send_ring data_acked);
      t.snd_una <- ack;
      t.dup_ack_streak <- 0;
      t.retries <- 0;
      t.rto <- t.config.rto_initial;
      (* Congestion window growth. *)
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd + t.config.mss
      else t.cwnd <- t.cwnd + max 1 (t.config.mss * t.config.mss / t.cwnd);
      if unacked t = 0 then cancel_rtx t else arm_rtx t;
      if data_acked > 0 then t.on_writable ();
      true
    end
    else begin
      (* Duplicate ACK: the receiver is missing the segment at snd_una.
         Three in a row trigger fast retransmit (no RTO wait). *)
      if
        ack = t.snd_una
        && String.length seg.payload = 0
        && unacked t > 0
        && not seg.flags.Tcp_wire.syn
        && not seg.flags.Tcp_wire.fin
      then begin
        t.dup_acks <- t.dup_acks + 1;
        Dk_obs.Metrics.incr m_dup_acks;
        t.dup_ack_streak <- t.dup_ack_streak + 1;
        if t.dup_ack_streak = 3 then begin
          t.dup_ack_streak <- 0;
          t.fast_retransmits <- t.fast_retransmits + 1;
          t.retransmits <- t.retransmits + 1;
          Dk_obs.Metrics.incr m_fast_retransmits;
          Dk_obs.Metrics.incr m_retransmits;
          Dk_obs.Flight.recordf Dk_obs.Flight.default
            ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Retransmit
            "tcp %d->%d fast retransmit, seq %d (3 dup acks)"
            t.local.Addr.port t.remote.Addr.port t.snd_una;
          t.ssthresh <- max (t.cwnd / 2) (2 * t.config.mss);
          t.cwnd <- t.ssthresh;
          retransmit_head t;
          arm_rtx t
        end
      end;
      false
    end
  end
  else false

let segment_arrives t (seg : Tcp_wire.t) =
  t.segs_received <- t.segs_received + 1;
  Dk_obs.Metrics.incr m_segs_received;
  t.snd_wnd <- seg.window;
  if seg.flags.Tcp_wire.rst then begin
    match t.st with
    | Closed | Listen -> ()
    | _ -> enter_closed t `Reset
  end
  else
    match t.st with
    | Closed | Listen -> () (* stack-level states; nothing to do here *)
    | Syn_sent ->
        if seg.flags.Tcp_wire.syn && seg.flags.Tcp_wire.ack then begin
          if seg.ack_seq = t.snd_nxt then begin
            t.rcv_nxt <- seq_add seg.seq 1;
            t.snd_una <- seg.ack_seq;
            t.st <- Established;
            t.retries <- 0;
            t.rto <- t.config.rto_initial;
            cancel_rtx t;
            send_ack t;
            t.on_connect ();
            try_output t
          end
        end
        else if seg.flags.Tcp_wire.syn then begin
          (* Simultaneous open. *)
          t.rcv_nxt <- seq_add seg.seq 1;
          t.st <- Syn_rcvd;
          emit_at t ~seq:t.snd_una { Tcp_wire.no_flags with syn = true; ack = true }
        end
    | Syn_rcvd ->
        if seg.flags.Tcp_wire.syn && not seg.flags.Tcp_wire.ack then
          (* Duplicate SYN: re-answer. *)
          emit_at t ~seq:t.snd_una { Tcp_wire.no_flags with syn = true; ack = true }
        else if process_ack t seg then begin
          t.st <- Established;
          t.on_connect ();
          let readable = accept_payload t seg in
          if String.length seg.payload > 0 then send_ack t;
          if readable then t.on_readable ();
          try_output t
        end
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
      ->
        let acked = process_ack t seg in
        let readable =
          match t.st with
          | Established | Fin_wait_1 | Fin_wait_2 -> accept_payload t seg
          | _ -> false
        in
        (* Peer FIN handling. The FIN occupies the sequence slot right
           after the segment's payload. A FIN whose slot is beyond
           rcv_nxt (data still missing) is ignored — the peer will
           retransmit it and the gap will have filled by then. *)
        let fin_pos = seq_add seg.seq (String.length seg.payload) in
        let fin_now =
          seg.flags.Tcp_wire.fin && fin_pos = t.rcv_nxt && t.peer_fin = None
        in
        if fin_now then begin
          t.peer_fin <- Some fin_pos;
          t.rcv_nxt <- seq_add t.rcv_nxt 1;
          send_ack t;
          t.on_peer_fin ();
          match t.st with
          | Established -> t.st <- Close_wait
          | Fin_wait_1 ->
              (* Did they also ack our FIN? *)
              if t.fin_sent && t.snd_una = seq_add t.fin_seq 1 then
                enter_time_wait t
              else t.st <- Closing
          | Fin_wait_2 -> enter_time_wait t
          | _ -> ()
        end
        else if seg.flags.Tcp_wire.fin && t.peer_fin <> None then
          (* Retransmitted FIN: re-ack so the peer stops. *)
          send_ack t
        else if String.length seg.payload > 0 then send_ack t;
        (* Our FIN fully acked? *)
        if t.fin_sent && t.snd_una = seq_add t.fin_seq 1 then begin
          match t.st with
          | Fin_wait_1 -> t.st <- Fin_wait_2
          | Closing -> enter_time_wait t
          | Last_ack -> enter_closed t `Normal
          | _ -> ()
        end;
        if readable then t.on_readable ();
        if acked then try_output t
    | Time_wait ->
        (* Re-ack retransmitted FINs. *)
        if seg.flags.Tcp_wire.fin then send_ack t
