(** Minimal ARP: IPv4-over-ethernet request/reply. *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Addr.mac;
  sender_ip : Addr.ip;
  target_mac : Addr.mac;
  target_ip : Addr.ip;
}

val encode : t -> string
val decode : string -> (t, string) result

(** ARP cache with pending-query tracking. *)
module Table : sig
  type table

  val create : unit -> table
  val lookup : table -> Addr.ip -> Addr.mac option
  val insert : table -> Addr.ip -> Addr.mac -> unit

  val enqueue_pending : table -> Addr.ip -> (Addr.mac -> unit) -> bool
  (** Queue a continuation to run when the mapping arrives; returns
      [true] if this is the first waiter (i.e. a request should be
      sent). *)

  val resolve_pending : table -> Addr.ip -> Addr.mac -> int
  (** Insert the mapping and run all queued continuations, returning
      how many were waiting (the sends that just recovered from a
      stalled resolution). *)

  val drop_pending : table -> Addr.ip -> int
  (** Abandon a resolution attempt: discard queued continuations
      (returning how many) so a later query can start a fresh round.
      Dropped traffic is recovered by upper-layer retransmission. *)
end
