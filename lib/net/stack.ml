type stats = {
  frames_in : int;
  frames_out : int;
  decode_errors : int;
  not_for_us : int;
  no_listener : int;
}

type listener = { on_accept : Tcp.conn -> unit }

(* Class-wide obs instruments (aggregated across stacks). *)
let m_frames_in = Dk_obs.Metrics.counter "net.stack.frames_in"
let m_frames_out = Dk_obs.Metrics.counter "net.stack.frames_out"
let m_decode_errors = Dk_obs.Metrics.counter "net.stack.decode_errors"
let m_checksum_failures = Dk_obs.Metrics.counter "net.stack.checksum_failures"
let m_no_listener = Dk_obs.Metrics.counter "net.stack.no_listener"
let m_not_for_us = Dk_obs.Metrics.counter "net.stack.not_for_us"
let m_arp_requests = Dk_obs.Metrics.counter "net.arp.requests"
let m_arp_misses = Dk_obs.Metrics.counter "net.arp.misses"
let m_arp_abandoned = Dk_obs.Metrics.counter "net.arp.abandoned"
let m_arp_recovered = Dk_obs.Metrics.counter "net.arp.recovered"

let mentions_checksum msg =
  let n = String.length msg and p = "checksum" in
  let pl = String.length p in
  let rec scan i = i + pl <= n && (String.sub msg i pl = p || scan (i + 1)) in
  scan 0

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  pkt_cost : int64;
  nic : Dk_device.Nic.t;
  ip : Addr.ip;
  tcp_config : Tcp.config;
  arp : Arp.Table.table;
  udp_ports : (int, src:Addr.endpoint -> string -> unit) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  (* TCP demux, two levels of int-keyed tables: packed
     (local_port, remote_port) -> remote_ip -> conn. A single table
     keyed by the (local_port, remote_ip, remote_port) triple would
     allocate the key tuple and hash it polymorphically on every
     delivered segment (dk-hot: hot-poly). Ports are 16-bit so the pair
     packs into one immediate int; the remote IP keys the inner
     table. *)
  conns : (int, (Addr.ip, Tcp.conn) Hashtbl.t) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable next_ident : int;
  mutable iss_counter : int;
  mutable process_scheduled : bool;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable decode_errors : int;
  mutable not_for_us : int;
  mutable no_listener : int;
}

let engine t = t.engine
let ip t = t.ip
let mac t = Dk_device.Nic.mac t.nic
let nic t = t.nic
let tcp_config t = t.tcp_config

let connections t =
  Hashtbl.fold (fun _ by_ip acc -> acc + Hashtbl.length by_ip) t.conns 0

let stats t =
  {
    frames_in = t.frames_in;
    frames_out = t.frames_out;
    decode_errors = t.decode_errors;
    not_for_us = t.not_for_us;
    no_listener = t.no_listener;
  }

(* A decode failure counts once; checksum failures — corruption the
   hardware would normally have caught — also count separately. *)
let decode_error t msg =
  t.decode_errors <- t.decode_errors + 1;
  Dk_obs.Metrics.incr m_decode_errors;
  if mentions_checksum msg then begin
    Dk_obs.Metrics.incr m_checksum_failures;
    Dk_obs.Flight.recordf Dk_obs.Flight.default
      ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop "stack %x: %s"
      t.ip msg
  end

(* ---- transmit path ---- *)

let transmit_eth t ~dst_mac ~ethertype payload =
  Dk_sim.Engine.consume t.engine t.pkt_cost;
  t.frames_out <- t.frames_out + 1;
  Dk_obs.Metrics.incr m_frames_out;
  let frame =
    Eth.encode { Eth.dst = dst_mac; src = mac t; ethertype; payload }
  in
  ignore (Dk_device.Nic.transmit t.nic ~dst:dst_mac frame)

let send_arp_request t target_ip =
  Dk_obs.Metrics.incr m_arp_requests;
  let pkt =
    Arp.encode
      {
        Arp.op = Arp.Request;
        sender_mac = mac t;
        sender_ip = t.ip;
        target_mac = 0;
        target_ip;
      }
  in
  transmit_eth t ~dst_mac:Addr.mac_broadcast ~ethertype:Eth.Arp pkt

let arp_retry_ns = 200_000L
let arp_max_attempts = 5

(* Resolve [dst_ip] and then run [k dst_mac]; datagrams issued during
   resolution wait in the ARP pending queue. Requests are retried a few
   times; on give-up the queued traffic is dropped (upper layers
   retransmit) so a later send can start a fresh resolution round. *)
let with_mac t dst_ip k =
  match Arp.Table.lookup t.arp dst_ip with
  | Some m -> k m
  | None ->
      Dk_obs.Metrics.incr m_arp_misses;
      let first = Arp.Table.enqueue_pending t.arp dst_ip k in
      if first then begin
        let rec attempt n =
          if Arp.Table.lookup t.arp dst_ip = None then
            if n = 0 then begin
              let dropped = Arp.Table.drop_pending t.arp dst_ip in
              Dk_obs.Metrics.incr m_arp_abandoned;
              Dk_obs.Flight.recordf Dk_obs.Flight.default
                ~now:(Dk_sim.Engine.now t.engine) Dk_obs.Flight.Drop
                "arp gave up on %x after %d tries (%d queued sends dropped)"
                dst_ip arp_max_attempts dropped
            end
            else begin
              send_arp_request t dst_ip;
              ignore
                (Dk_sim.Engine.after t.engine arp_retry_ns (fun () ->
                     attempt (n - 1)))
            end
        in
        attempt arp_max_attempts
      end

let send_ipv4 t ~dst_ip ~proto payload =
  let ident = t.next_ident in
  t.next_ident <- (t.next_ident + 1) land 0xffff;
  let pkt =
    Ipv4.encode { Ipv4.src = t.ip; dst = dst_ip; proto; ttl = 64; ident; payload }
  in
  with_mac t dst_ip (fun dst_mac ->
      transmit_eth t ~dst_mac ~ethertype:Eth.Ipv4 pkt)

(* ---- UDP ---- *)

let udp_bind t ~port ~recv =
  if Hashtbl.mem t.udp_ports port then Error `In_use
  else begin
    Hashtbl.replace t.udp_ports port recv;
    Ok ()
  end

let udp_unbind t ~port = Hashtbl.remove t.udp_ports port

let udp_send t ~src_port ~dst payload =
  let datagram =
    Udp.encode ~src_ip:t.ip ~dst_ip:dst.Addr.ip
      { Udp.src_port; dst_port = dst.Addr.port; payload }
  in
  send_ipv4 t ~dst_ip:dst.Addr.ip ~proto:Ipv4.Udp datagram

(* ---- TCP ---- *)

let next_iss t =
  t.iss_counter <- (t.iss_counter + 64007) land 0xffffffff;
  t.iss_counter

let port_key ~local_port ~remote_port = (local_port lsl 16) lor remote_port

let find_conn t ~local_port ~remote_ip ~remote_port =
  match Hashtbl.find_opt t.conns (port_key ~local_port ~remote_port) with
  | Some by_ip -> Hashtbl.find_opt by_ip remote_ip
  | None -> None

let register_conn t ~local_port ~remote conn =
  let pk = port_key ~local_port ~remote_port:remote.Addr.port in
  let by_ip =
    match Hashtbl.find_opt t.conns pk with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add t.conns pk h;
        h
  in
  Hashtbl.replace by_ip remote.Addr.ip conn;
  Tcp.set_internal_teardown conn (fun _ ->
      match Hashtbl.find_opt t.conns pk with
      | Some h -> Hashtbl.remove h remote.Addr.ip
      | None -> ())

let tcp_emit t ~remote_ip seg =
  let payload = Tcp_wire.encode ~src_ip:t.ip ~dst_ip:remote_ip seg in
  send_ipv4 t ~dst_ip:remote_ip ~proto:Ipv4.Tcp payload

let tcp_listen t ~port ~on_accept =
  if Hashtbl.mem t.listeners port then Error `In_use
  else begin
    Hashtbl.replace t.listeners port { on_accept };
    Ok ()
  end

let tcp_unlisten t ~port = Hashtbl.remove t.listeners port

let alloc_ephemeral t =
  let start = t.next_ephemeral in
  let rec loop p =
    let candidate = 49152 + ((p - 49152) mod 16384) in
    if Hashtbl.mem t.listeners candidate then loop (candidate + 1)
    else begin
      t.next_ephemeral <- candidate + 1;
      candidate
    end
  in
  loop start

let tcp_connect t ~dst =
  let local_port = alloc_ephemeral t in
  let local = Addr.endpoint t.ip local_port in
  let conn =
    Tcp.create_active ~engine:t.engine ~config:t.tcp_config ~local ~remote:dst
      ~iss:(next_iss t)
      ~emit:(fun seg -> tcp_emit t ~remote_ip:dst.Addr.ip seg)
  in
  register_conn t ~local_port ~remote:dst conn;
  conn

(* A segment for which no connection exists: answer with RST so active
   opens to dead ports fail fast. *)
let send_rst t ~remote (seg : Tcp_wire.t) =
  if not seg.Tcp_wire.flags.Tcp_wire.rst then begin
    let rst =
      {
        Tcp_wire.src_port = seg.Tcp_wire.dst_port;
        dst_port = seg.Tcp_wire.src_port;
        seq = seg.Tcp_wire.ack_seq;
        ack_seq =
          (seg.Tcp_wire.seq + String.length seg.Tcp_wire.payload + 1)
          land 0xffffffff;
        flags = { Tcp_wire.no_flags with rst = true; ack = true };
        window = 0;
        payload = "";
      }
    in
    tcp_emit t ~remote_ip:remote rst
  end

let handle_tcp t ~src_ip segment =
  match Tcp_wire.decode ~src_ip ~dst_ip:t.ip segment with
  | Error e -> decode_error t e
  | Ok seg ->
      let local_port = seg.Tcp_wire.dst_port in
      let remote = Addr.endpoint src_ip seg.Tcp_wire.src_port in
      (match
         find_conn t ~local_port ~remote_ip:src_ip
           ~remote_port:seg.Tcp_wire.src_port
       with
      | Some conn -> Tcp.segment_arrives conn seg
      | None -> (
          match Hashtbl.find_opt t.listeners local_port with
          | Some l
            when seg.Tcp_wire.flags.Tcp_wire.syn
                 && not seg.Tcp_wire.flags.Tcp_wire.ack ->
              let local = Addr.endpoint t.ip local_port in
              let conn =
                Tcp.create_passive ~engine:t.engine ~config:t.tcp_config
                  ~local ~remote ~iss:(next_iss t)
                  ~emit:(fun s -> tcp_emit t ~remote_ip:src_ip s)
                  ~remote_seq:seg.Tcp_wire.seq
              in
              register_conn t ~local_port ~remote conn;
              Tcp.set_on_connect conn (fun () -> l.on_accept conn)
          | Some _ | None ->
              t.no_listener <- t.no_listener + 1;
              Dk_obs.Metrics.incr m_no_listener;
              send_rst t ~remote:src_ip seg))

(* ---- receive path ---- *)

let handle_arp t payload =
  match Arp.decode payload with
  | Error e -> decode_error t e
  | Ok { Arp.op; sender_mac; sender_ip; target_ip; _ } -> (
      (* Learn the sender either way. *)
      let recovered = Arp.Table.resolve_pending t.arp sender_ip sender_mac in
      if recovered > 0 then Dk_obs.Metrics.add m_arp_recovered recovered;
      match op with
      | Arp.Request when target_ip = t.ip ->
          let reply =
            Arp.encode
              {
                Arp.op = Arp.Reply;
                sender_mac = mac t;
                sender_ip = t.ip;
                target_mac = sender_mac;
                target_ip = sender_ip;
              }
          in
          transmit_eth t ~dst_mac:sender_mac ~ethertype:Eth.Arp reply
      | Arp.Request | Arp.Reply -> ())

let handle_udp t ~src_ip payload =
  match Udp.decode ~src_ip ~dst_ip:t.ip payload with
  | Error e -> decode_error t e
  | Ok { Udp.src_port; dst_port; payload } -> (
      match Hashtbl.find_opt t.udp_ports dst_port with
      | Some recv -> recv ~src:(Addr.endpoint src_ip src_port) payload
      | None ->
          t.no_listener <- t.no_listener + 1;
          Dk_obs.Metrics.incr m_no_listener)

let handle_frame t frame =
  t.frames_in <- t.frames_in + 1;
  Dk_obs.Metrics.incr m_frames_in;
  Dk_sim.Engine.consume t.engine t.pkt_cost;
  match Eth.decode frame with
  | Error e -> decode_error t e
  | Ok { Eth.dst; ethertype; payload; _ } ->
      if dst <> mac t && dst <> Addr.mac_broadcast then begin
        t.not_for_us <- t.not_for_us + 1;
        Dk_obs.Metrics.incr m_not_for_us
      end
      else (
        match ethertype with
        | Eth.Arp -> handle_arp t payload
        | Eth.Ipv4 -> (
            match Ipv4.decode payload with
            | Error e -> decode_error t e
            | Ok { Ipv4.src; dst; proto; payload; _ } ->
                if dst <> t.ip then begin
                  t.not_for_us <- t.not_for_us + 1;
                  Dk_obs.Metrics.incr m_not_for_us
                end
                else (
                  match proto with
                  | Ipv4.Udp -> handle_udp t ~src_ip:src payload
                  | Ipv4.Tcp -> handle_tcp t ~src_ip:src payload
                  | Ipv4.Unknown _ -> decode_error t "ipv4: unknown protocol"))
        | Eth.Unknown _ -> decode_error t "eth: unknown ethertype")

let rec process t =
  t.process_scheduled <- false;
  match Dk_device.Nic.poll_rx t.nic with
  | None -> ()
  | Some frame ->
      handle_frame t frame;
      process t

let schedule_process t =
  if not t.process_scheduled then begin
    t.process_scheduled <- true;
    ignore (Dk_sim.Engine.after t.engine 0L (fun () -> process t))
  end

let create ~engine ~cost ~nic ~ip ?(tcp_config = Tcp.default_config)
    ?pkt_cost () =
  let pkt_cost =
    Option.value ~default:cost.Dk_sim.Cost.user_net_per_pkt pkt_cost
  in
  let t =
    {
      engine;
      cost;
      pkt_cost;
      nic;
      ip;
      tcp_config;
      arp = Arp.Table.create ();
      udp_ports = Hashtbl.create 8;
      listeners = Hashtbl.create 8;
      conns = Hashtbl.create 32;
      next_ephemeral = 49152;
      next_ident = 1;
      iss_counter = ip land 0xffff;
      process_scheduled = false;
      frames_in = 0;
      frames_out = 0;
      decode_errors = 0;
      not_for_us = 0;
      no_listener = 0;
    }
  in
  Dk_device.Nic.set_rx_notify nic (fun () -> schedule_process t);
  t
