type op = Request | Reply

type t = {
  op : op;
  sender_mac : Addr.mac;
  sender_ip : Addr.ip;
  target_mac : Addr.mac;
  target_ip : Addr.ip;
}

let size = 2 + 6 + 4 + 6 + 4

let encode t =
  let b = Bytes.create size in
  Wire.set_u16 b 0 (match t.op with Request -> 1 | Reply -> 2);
  Wire.set_u48 b 2 t.sender_mac;
  Wire.set_u32 b 8 t.sender_ip;
  Wire.set_u48 b 12 t.target_mac;
  Wire.set_u32 b 18 t.target_ip;
  Bytes.unsafe_to_string b

let decode s =
  if String.length s < size then Error "arp: too short"
  else
    let b = Bytes.unsafe_of_string s in
    match Wire.get_u16 b 0 with
    | (1 | 2) as op ->
        Ok
          {
            op = (if op = 1 then Request else Reply);
            sender_mac = Wire.get_u48 b 2;
            sender_ip = Wire.get_u32 b 8;
            target_mac = Wire.get_u48 b 12;
            target_ip = Wire.get_u32 b 18;
          }
    | _ -> Error "arp: bad op"

module Table = struct
  type table = {
    entries : (Addr.ip, Addr.mac) Hashtbl.t;
    pending : (Addr.ip, (Addr.mac -> unit) list) Hashtbl.t;
  }

  let create () = { entries = Hashtbl.create 16; pending = Hashtbl.create 4 }
  let lookup t ip = Hashtbl.find_opt t.entries ip
  let insert t ip mac = Hashtbl.replace t.entries ip mac

  let enqueue_pending t ip k =
    match Hashtbl.find_opt t.pending ip with
    | None ->
        Hashtbl.replace t.pending ip [ k ];
        true
    | Some ks ->
        Hashtbl.replace t.pending ip (k :: ks);
        false

  let resolve_pending t ip mac =
    insert t ip mac;
    match Hashtbl.find_opt t.pending ip with
    | None -> 0
    | Some ks ->
        Hashtbl.remove t.pending ip;
        List.iter (fun k -> k mac) (List.rev ks);
        List.length ks

  let drop_pending t ip =
    match Hashtbl.find_opt t.pending ip with
    | None -> 0
    | Some ks ->
        Hashtbl.remove t.pending ip;
        List.length ks
end
