module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost

type mode = [ `Epoll_herd | `Qtoken ]

type stats = {
  jobs_done : int;
  wakeups : int;
  wasted_wakeups : int;
  dispatch_latency : Dk_sim.Histogram.t;
  makespan_ns : int64;
}

type job = { arrival : int64 }

(* Class-wide obs instruments (aggregated across pool runs). *)
let m_jobs_done = Dk_obs.Metrics.counter "sched.pool.jobs_done"
let m_wakeups = Dk_obs.Metrics.counter "sched.pool.wakeups"
let m_wasted = Dk_obs.Metrics.counter "sched.pool.wasted_wakeups"

type state = {
  engine : Engine.t;
  cost : Cost.t;
  mode : mode;
  ready : job Queue.t;
  mutable idle : int list; (* idle worker ids *)
  mutable jobs_done : int;
  mutable wakeups : int;
  mutable wasted : int;
  latency : Dk_sim.Histogram.t;
  service_ns : int64;
  total_jobs : int;
}

(* Execute [job] on worker [id]; when done, pull more ready work or go
   idle. *)
let rec execute st id job =
  Dk_sim.Histogram.record st.latency
    (Int64.sub (Engine.now st.engine) job.arrival);
  let finish () =
    st.jobs_done <- st.jobs_done + 1;
    Dk_obs.Metrics.incr m_jobs_done;
    (* Look for more (unassigned) work without sleeping first. *)
    match Queue.take_opt st.ready with
    | Some next -> execute st id next
    | None -> st.idle <- id :: st.idle
  in
  ignore (Engine.after st.engine st.service_ns finish)

(* Epoll mode: a woken worker races to the shared ready queue and may
   find nothing. *)
let herd_worker_wakes st id =
  st.wakeups <- st.wakeups + 1;
  Dk_obs.Metrics.incr m_wakeups;
  Dk_obs.Flight.recordf Dk_obs.Flight.default ~now:(Engine.now st.engine)
    Dk_obs.Flight.Wakeup "herd worker %d" id;
  match Queue.take_opt st.ready with
  | None ->
      (* Thundering herd loser: woke for nothing, back to sleep. *)
      st.wasted <- st.wasted + 1;
      Dk_obs.Metrics.incr m_wasted;
      st.idle <- id :: st.idle
  | Some job ->
      (* Reading the data is a second syscall the qtoken interface
         avoids (wait returns the data directly). *)
      Dk_sim.Engine.consume st.engine st.cost.Cost.syscall;
      execute st id job

let job_arrives st =
  match st.mode with
  | `Epoll_herd ->
      Queue.add { arrival = Engine.now st.engine } st.ready;
      (* Wake every idle worker; each pays a context switch. *)
      let sleepers = st.idle in
      st.idle <- [];
      List.iter
        (fun id ->
          ignore
            (Engine.after st.engine st.cost.Cost.context_switch (fun () ->
                 herd_worker_wakes st id)))
        sleepers
  | `Qtoken -> (
      let job = { arrival = Engine.now st.engine } in
      (* Exactly one waiter holds this operation's token: the job is
         bound to that worker; nobody else can steal it or wake for
         it. *)
      match st.idle with
      | [] -> Queue.add job st.ready (* all busy; a finisher picks it up *)
      | id :: rest ->
          st.idle <- rest;
          ignore
            (Engine.after st.engine st.cost.Cost.context_switch (fun () ->
                 st.wakeups <- st.wakeups + 1;
                 Dk_obs.Metrics.incr m_wakeups;
                 Dk_obs.Flight.recordf Dk_obs.Flight.default
                   ~now:(Engine.now st.engine) Dk_obs.Flight.Wakeup
                   "qtoken worker %d" id;
                 execute st id job)))

let run ~engine ~cost ~mode ~workers ~jobs ~mean_interarrival_ns ~service_ns
    ?(seed = 99L) () =
  if workers <= 0 || jobs <= 0 then invalid_arg "Worker_pool.run";
  let st =
    {
      engine;
      cost;
      mode;
      ready = Queue.create ();
      idle = List.init workers (fun i -> i);
      jobs_done = 0;
      wakeups = 0;
      wasted = 0;
      latency = Dk_sim.Histogram.create ();
      service_ns;
      total_jobs = jobs;
    }
  in
  let rng = Dk_sim.Rng.create seed in
  let start = Engine.now engine in
  (* Poisson arrivals. *)
  let rec schedule_arrival n at =
    if n < jobs then begin
      ignore (Engine.at engine at (fun () -> job_arrives st));
      let gap = Dk_sim.Rng.exponential rng mean_interarrival_ns in
      schedule_arrival (n + 1) (Int64.add at (Int64.of_float gap))
    end
  in
  schedule_arrival 0 (Int64.add start 1L);
  ignore (Engine.run_until engine (fun () -> st.jobs_done >= st.total_jobs));
  {
    jobs_done = st.jobs_done;
    wakeups = st.wakeups;
    wasted_wakeups = st.wasted;
    dispatch_latency = st.latency;
    makespan_ns = Int64.sub (Engine.now engine) start;
  }
