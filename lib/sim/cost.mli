(** Centralised cost model for the simulated substrate.

    Every nanosecond charged anywhere in the reproduction comes from one
    of these constants, so the mapping from a paper claim to a model
    parameter is auditable. The defaults are calibrated against the
    paper's own numbers and public figures for the device classes:

    - §3.2: copying a 4 KB page costs ~1 µs on a 4 GHz CPU
      ([copy_per_byte] = 0.244 ns/B), and a Redis read spends ~2 µs of
      application work ([app_request] = 2000 ns).
    - Kernel-mediated I/O pays [syscall] per crossing plus
      [kernel_net_per_pkt] of stack processing — µs-scale per operation,
      matching the overheads cited in §1/§3.
    - Kernel-bypass devices pay only [pcie_doorbell] + DMA + wire time.
    - mTCP-style user stacks trade latency for throughput via
      [mtcp_batch_delay] (§6: its latency was higher than the kernel's).
*)

type t = {
  cpu_ghz : float;          (** nominal core clock, for cycle conversions *)
  syscall : int64;          (** one user/kernel crossing *)
  context_switch : int64;   (** waking a blocked thread *)
  copy_base : int64;        (** fixed cost of any memcpy *)
  copy_per_byte : float;    (** ns per copied byte *)
  malloc : int64;           (** heap allocation *)
  free : int64;             (** heap free *)
  kernel_net_per_pkt : int64; (** kernel network stack, per segment *)
  kernel_sock_demux : int64;  (** socket lookup/locking, per operation *)
  user_net_per_pkt : int64;   (** user-level (libOS) stack, per segment *)
  mtcp_batch_delay : int64;   (** added latency of batched user TCP *)
  pcie_doorbell : int64;    (** MMIO doorbell write *)
  tx_batch_window : int64;  (** tx doorbell coalescing quantum; [0] rings
                                per submission (the unbatched path,
                                bit-identical to no coalescing stage) *)
  dma_base : int64;         (** DMA engine setup *)
  dma_per_byte : float;     (** DMA transfer, ns per byte *)
  wire_latency : int64;     (** propagation, NIC-to-NIC in-rack *)
  wire_per_byte : float;    (** serialisation at line rate (100 Gb/s) *)
  rdma_nic_proc : int64;    (** RDMA NIC work-request processing *)
  nvme_read : int64;        (** NVMe flash read latency *)
  nvme_write : int64;       (** NVMe flash program latency *)
  nvme_per_byte : float;    (** flash transfer, ns per byte *)
  vfs_overhead : int64;     (** VFS/page-cache/dentry work per file op *)
  register_region : int64;  (** registering a memory region with a device *)
  pin_per_page : int64;     (** pinning one 4 KB page *)
  poll_iter : int64;        (** one empty poll-loop iteration *)
  filter_cpu_base : int64;  (** evaluating a filter/map on the CPU *)
  filter_cpu_per_byte : float;
  device_prog_per_elem : int64; (** device-side program latency (no CPU) *)
  app_request : int64;      (** application work per request (Redis ≈ 2 µs) *)
}

val default : t

val copy_ns : t -> int -> int64
(** Cost of copying [n] bytes. *)

val dma_ns : t -> int -> int64
val wire_ns : t -> int -> int64
val nvme_transfer_ns : t -> int -> int64
val filter_cpu_ns : t -> int -> int64

val cycles_to_ns : t -> int -> int64

val pp : Format.formatter -> t -> unit
(** Print every constant, for experiment logs. *)
