type t = {
  cpu_ghz : float;
  syscall : int64;
  context_switch : int64;
  copy_base : int64;
  copy_per_byte : float;
  malloc : int64;
  free : int64;
  kernel_net_per_pkt : int64;
  kernel_sock_demux : int64;
  user_net_per_pkt : int64;
  mtcp_batch_delay : int64;
  pcie_doorbell : int64;
  tx_batch_window : int64;
  dma_base : int64;
  dma_per_byte : float;
  wire_latency : int64;
  wire_per_byte : float;
  rdma_nic_proc : int64;
  nvme_read : int64;
  nvme_write : int64;
  nvme_per_byte : float;
  vfs_overhead : int64;
  register_region : int64;
  pin_per_page : int64;
  poll_iter : int64;
  filter_cpu_base : int64;
  filter_cpu_per_byte : float;
  device_prog_per_elem : int64;
  app_request : int64;
}

let default =
  {
    cpu_ghz = 4.0;
    syscall = 450L;
    context_switch = 1300L;
    copy_base = 30L;
    copy_per_byte = 0.244; (* 4 KB ~ 1 us, per the paper *)
    malloc = 50L;
    free = 30L;
    kernel_net_per_pkt = 1800L;
    kernel_sock_demux = 300L;
    user_net_per_pkt = 250L;
    mtcp_batch_delay = 15000L; (* one event-loop batching quantum *)
    pcie_doorbell = 120L;
    tx_batch_window = 0L; (* 0 = ring per submission, bit-identical *)
    dma_base = 180L;
    dma_per_byte = 0.02;
    wire_latency = 600L;
    wire_per_byte = 0.08; (* 100 Gb/s line rate *)
    rdma_nic_proc = 250L;
    nvme_read = 12000L;
    nvme_write = 8000L;
    nvme_per_byte = 0.3;
    vfs_overhead = 1500L;
    register_region = 25000L;
    pin_per_page = 300L;
    poll_iter = 25L;
    filter_cpu_base = 40L;
    filter_cpu_per_byte = 0.05;
    device_prog_per_elem = 80L;
    app_request = 2000L;
  }

let scale base per_byte n =
  Int64.add base (Int64.of_float (per_byte *. float_of_int (max 0 n)))

let copy_ns t n = scale t.copy_base t.copy_per_byte n
let dma_ns t n = scale t.dma_base t.dma_per_byte n
let wire_ns t n = scale t.wire_latency t.wire_per_byte n
let nvme_transfer_ns t n = scale 0L t.nvme_per_byte n
let filter_cpu_ns t n = scale t.filter_cpu_base t.filter_cpu_per_byte n

let cycles_to_ns t cycles =
  Int64.of_float (float_of_int cycles /. t.cpu_ghz)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cpu_ghz=%.1f syscall=%Ldns ctx_switch=%Ldns copy=%Ld+%.3fns/B@ \
     malloc=%Ldns free=%Ldns kernel_net=%Ldns/pkt sock_demux=%Ldns \
     user_net=%Ldns/pkt mtcp_batch=%Ldns@ \
     pcie=%Ldns tx_batch=%Ldns dma=%Ld+%.3fns/B wire=%Ld+%.3fns/B \
     rdma_nic=%Ldns@ \
     nvme_r=%Ldns nvme_w=%Ldns nvme=%.2fns/B vfs=%Ldns@ \
     reg_region=%Ldns pin_page=%Ldns poll=%Ldns filter_cpu=%Ld+%.3fns/B \
     dev_prog=%Ldns app_req=%Ldns@]"
    t.cpu_ghz t.syscall t.context_switch t.copy_base t.copy_per_byte
    t.malloc t.free t.kernel_net_per_pkt t.kernel_sock_demux
    t.user_net_per_pkt t.mtcp_batch_delay t.pcie_doorbell t.tx_batch_window
    t.dma_base
    t.dma_per_byte t.wire_latency t.wire_per_byte t.rdma_nic_proc
    t.nvme_read t.nvme_write t.nvme_per_byte t.vfs_overhead
    t.register_region t.pin_per_page t.poll_iter t.filter_cpu_base
    t.filter_cpu_per_byte t.device_prog_per_elem t.app_request
