(** Deterministic discrete-event simulation engine with a virtual
    nanosecond clock.

    Everything in the reproduction that would be hardware or wall-clock
    time in the paper's testbed — CPU work, PCIe doorbells, DMA, wire
    propagation, NVMe access — is charged to this clock. Events are
    ordered by (timestamp, insertion order), so runs are fully
    deterministic. *)

type t

type timer
(** Handle for a cancellable scheduled event (e.g. a TCP retransmission
    timer). *)

val create : unit -> t

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val consume : t -> int64 -> unit
(** [consume t ns] models the CPU being busy for [ns]: advances the clock
    without running events scheduled in the skipped interval early —
    they run at their timestamps the next time the loop steps, which
    matches a single-core poll loop that cannot observe interrupts while
    computing. Negative durations are ignored. *)

val consumed : t -> int64
(** Cumulative ns ever charged through {!consume} — the engine's total
    CPU busy time, as opposed to {!now} which also advances while the
    core idles between events. [consumed b - consumed a] across a
    workload is its host-CPU cost; device-side work (DMA, on-NIC
    programs) never moves it. *)

val at : t -> int64 -> (unit -> unit) -> timer
(** Schedule a thunk at an absolute time (clamped to [now]). *)

val after : t -> int64 -> (unit -> unit) -> timer
(** Schedule a thunk [ns] after [now]. *)

val cancel : timer -> unit
(** Cancelling a fired or already-cancelled timer is a no-op. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val next_at : t -> int64 option
(** Timestamp of the earliest live (uncancelled) event, without running
    it. [None] when nothing is scheduled. Lets poll loops with a
    deadline decide whether an event due at-or-before the deadline is
    still outstanding (see [Demi.wait_timeout]: completions landing
    exactly on the deadline must win the tie). *)

val step : t -> bool
(** Run the earliest event, advancing the clock to its timestamp.
    Returns [false] if no events are pending. *)

val run : t -> unit
(** Step until no events remain. *)

val run_until : t -> (unit -> bool) -> bool
(** Step until the predicate holds (checked before each step) or events
    run out; returns whether the predicate held. *)

val run_for : t -> int64 -> unit
(** Process all events with timestamps within [ns] of the current time,
    leaving the clock at the end of the window. *)

(** {2 Multi-clock scheduling}

    A group of engines models per-core shards, each owning an
    independent virtual clock (the multi-shard datapath in
    [Dk_shard_rt]). The group scheduler always advances the engine
    holding the globally earliest pending event, breaking timestamp
    ties toward the lowest array index — a total, deterministic order,
    so a fixed (seed, N) replays byte-identically. With a single
    engine, [step_group [| e |]] is exactly [step e], which is what
    makes an N=1 shard run bit-identical to a plain single-engine
    run. *)

val group_next : t array -> (int * int64) option
(** Index and timestamp of the engine owning the earliest live event
    across the group (tie broken to the lowest index); [None] when
    every engine is drained. *)

val step_group : t array -> bool
(** Run the single earliest event in the group. Returns [false] when no
    engine has pending events. *)

val run_group : t array -> unit
(** Step the group until every engine is drained. *)
