(** Deterministic discrete-event simulation engine with a virtual
    nanosecond clock.

    Everything in the reproduction that would be hardware or wall-clock
    time in the paper's testbed — CPU work, PCIe doorbells, DMA, wire
    propagation, NVMe access — is charged to this clock. Events are
    ordered by (timestamp, insertion order), so runs are fully
    deterministic. *)

type t

type timer
(** Handle for a cancellable scheduled event (e.g. a TCP retransmission
    timer). *)

val create : unit -> t

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val consume : t -> int64 -> unit
(** [consume t ns] models the CPU being busy for [ns]: advances the clock
    without running events scheduled in the skipped interval early —
    they run at their timestamps the next time the loop steps, which
    matches a single-core poll loop that cannot observe interrupts while
    computing. Negative durations are ignored. *)

val at : t -> int64 -> (unit -> unit) -> timer
(** Schedule a thunk at an absolute time (clamped to [now]). *)

val after : t -> int64 -> (unit -> unit) -> timer
(** Schedule a thunk [ns] after [now]. *)

val cancel : timer -> unit
(** Cancelling a fired or already-cancelled timer is a no-op. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val next_at : t -> int64 option
(** Timestamp of the earliest live (uncancelled) event, without running
    it. [None] when nothing is scheduled. Lets poll loops with a
    deadline decide whether an event due at-or-before the deadline is
    still outstanding (see [Demi.wait_timeout]: completions landing
    exactly on the deadline must win the tie). *)

val step : t -> bool
(** Run the earliest event, advancing the clock to its timestamp.
    Returns [false] if no events are pending. *)

val run : t -> unit
(** Step until no events remain. *)

val run_until : t -> (unit -> bool) -> bool
(** Step until the predicate holds (checked before each step) or events
    run out; returns whether the predicate held. *)

val run_for : t -> int64 -> unit
(** Process all events with timestamps within [ns] of the current time,
    leaving the clock at the end of the window. *)
