type event = { mutable cancelled : bool; thunk : unit -> unit }

type t = {
  mutable clock : int64;
  queue : event Dk_util.Heap.t;
  mutable live : int; (* scheduled and not cancelled *)
  mutable busy : int64; (* total ns ever passed to [consume] *)
}

type timer = { ev : event; owner : t }

let create () =
  { clock = 0L; queue = Dk_util.Heap.create (); live = 0; busy = 0L }

let now t = t.clock

let consume t ns =
  if Int64.compare ns 0L > 0 then begin
    t.clock <- Int64.add t.clock ns;
    t.busy <- Int64.add t.busy ns
  end

let consumed t = t.busy

let at t time thunk =
  let time = if Int64.compare time t.clock < 0 then t.clock else time in
  let ev = { cancelled = false; thunk } in
  Dk_util.Heap.push t.queue time ev;
  t.live <- t.live + 1;
  { ev; owner = t }
  [@@hot.alloc
    "the event and timer records are the scheduler's unit of pending \
     work — scheduling is what this sim allocates for"]

let after t ns thunk = at t (Int64.add t.clock (max 0L ns)) thunk

(* The event object stays in the heap until popped; only the live count
   is adjusted here so [pending] stays exact. *)
let cancel { ev; owner } =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    owner.live <- owner.live - 1
  end

let pending t = t.live

(* Discard cancelled events sitting at the head so peeks see the next
   event that will actually run. *)
let rec drop_cancelled t =
  match Dk_util.Heap.min t.queue with
  | Some (_, ev) when ev.cancelled ->
      ignore (Dk_util.Heap.pop t.queue);
      drop_cancelled t
  | Some _ | None -> ()

let next_at t =
  drop_cancelled t;
  Dk_util.Heap.min_key t.queue

(* Directly recursive (no inner loop closure): [step] runs once per
   simulated event, so a per-call closure would be heap churn on the
   hottest loop in the tree (dk-hot: hot-alloc). *)
let rec step t =
  match Dk_util.Heap.pop t.queue with
  | None -> false
  | Some (time, ev) ->
      if ev.cancelled then step t
      else begin
        t.live <- t.live - 1;
        (* Mark fired so a later [cancel] on this timer is a no-op. *)
        ev.cancelled <- true;
        if Int64.compare time t.clock > 0 then t.clock <- time;
        ev.thunk ();
        true
      end

let run t = while step t do () done

let run_until t pred =
  let rec loop () =
    if pred () then true
    else if step t then loop ()
    else false
  in
  loop ()

(* ---- multi-clock scheduling ----
   A group of engines models per-core shards, each with its own virtual
   clock. Advancing whichever engine has the globally earliest pending
   event (ties to the lowest index) keeps cross-engine causality: an
   event scheduled from engine A onto engine B at a timestamp >= A's
   now can never be overtaken by B running ahead of it. *)

(* Scan by index with everything in parameters: the old
   ref-accumulator + [Array.iteri] closure pair allocated twice per
   group step. Ties go to the lowest index (strict [<] keeps the
   first minimum). *)
let rec group_scan engines i best_i best_ts =
  if i >= Array.length engines then
    if best_i < 0 then None else Some (best_i, best_ts)
  else
    match next_at engines.(i) with
    | Some ts when best_i < 0 || Int64.compare ts best_ts < 0 ->
        group_scan engines (i + 1) i ts
    | Some _ | None -> group_scan engines (i + 1) best_i best_ts
  [@@hot.alloc "the (engine, timestamp) pick is the scheduler's return pair"]

let group_next engines = group_scan engines 0 (-1) 0L

let step_group engines =
  match group_next engines with
  | None -> false
  | Some (i, _) -> step engines.(i)

let run_group engines = while step_group engines do () done

let run_for t ns =
  let deadline = Int64.add t.clock (max 0L ns) in
  let rec loop () =
    drop_cancelled t;
    match Dk_util.Heap.min_key t.queue with
    | Some key when Int64.compare key deadline <= 0 ->
        ignore (step t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if Int64.compare t.clock deadline < 0 then t.clock <- deadline
