(** dk_fault: deterministic fault injection at the device boundary.

    The paper argues a kernel-bypass libOS must absorb the OS's duties,
    including surviving the failures real devices exhibit: lost,
    duplicated, reordered and corrupted frames; stalled or errored NVMe
    completions; torn writes; RDMA queue-pair breaks. Real DPDK/SPDK
    rigs cannot produce those failures on demand; the simulated
    {!Dk_device} substrate can, {e deterministically}.

    A {e plan} names a set of injection {e sites} and, per site, a
    probability, a virtual-time window and an optional budget. Devices
    consult the plan through the hooks below ({!fire}, {!mangle},
    {!extra_delay}); dk-lint's [fault-site] rule keeps ad-hoc
    randomness out of [lib/device/], so these hooks are the only
    source of injected misbehaviour.

    {b Determinism contract.}
    - Every decision is drawn from a per-site {!Dk_sim.Rng} stream
      seeded from [plan seed ⊕ site], so two runs with the same plan,
      seed and workload inject identical faults, and adding a spec for
      one site never perturbs another site's stream.
    - With no plan installed — or a spec whose [rate] is [0.] — no
      hook draws from any RNG and no virtual time is charged:
      zero-fault runs are bit-identical to runs without this module.
    - Hooks never read wall-clock time; windows are virtual ns. *)

type site =
  | Nic_rx_drop      (** receive ring: frame vanishes before enqueue *)
  | Nic_tx_drop      (** transmit path: frame DMAs but never reaches the wire *)
  | Nic_rx_dup       (** receive ring: frame enqueued twice *)
  | Nic_rx_corrupt   (** receive ring: one bit flipped (checksums catch it) *)
  | Fabric_drop      (** in-flight frame lost *)
  | Fabric_dup       (** in-flight frame delivered twice *)
  | Fabric_reorder   (** frame delayed past its successors (FIFO clamp waived) *)
  | Fabric_corrupt   (** one bit flipped on the wire *)
  | Fabric_partition (** link down: every frame in the window is lost *)
  | Block_stall      (** NVMe completion delayed by [magnitude_ns] *)
  | Block_error      (** NVMe completion returns [`Io_error] *)
  | Block_torn_write (** write persists a prefix only, still reports [`Ok] *)
  | Rdma_qp_break    (** queue pair severed; the post completes [`Qp_broken] *)

val sites : site list
(** Every site, in declaration order. *)

val site_name : site -> string
(** ["nic.rx_drop"], ["fabric.partition"], ["block.stall"], ... *)

val site_of_name : string -> site option

val describe : site -> string
(** One-line description for [demi faults]. *)

type spec = {
  rate : float;            (** injection probability per opportunity;
                               [0.] never fires (and never draws),
                               [>= 1.] always fires (without drawing) *)
  from_ns : int64;         (** window start, virtual ns *)
  until_ns : int64 option; (** window end (exclusive); [None] = forever *)
  max_count : int option;  (** injection budget; [None] = unbounded *)
  magnitude_ns : int64;    (** site-specific scale: stall/reorder delay *)
}

val spec :
  rate:float ->
  ?from_ns:int64 ->
  ?until_ns:int64 ->
  ?max_count:int ->
  ?magnitude_ns:int64 ->
  unit ->
  spec
(** Defaults: window \[[0], ∞), no budget, [magnitude_ns = 100_000]. *)

type plan = { seed : int64; plan_name : string; specs : (site * spec) list }

val plan : seed:int64 -> ?name:string -> (site * spec) list -> plan
(** Later duplicates of a site override earlier ones. *)

(** {2 Named plans}

    The scenario library shared by [test/test_fault.ml] and
    [demi faults --plan <name> --seed <n>]. *)

val plan_names : (string * string) list
(** [(name, description)] for every named plan. *)

val named : seed:int64 -> string -> plan option

(** {2 The injection engine} *)

type t

val create : unit -> t

val default : t
(** The process-wide engine every device hook consults, mirroring
    {!Dk_obs.Metrics.default}. *)

val install : t -> plan -> unit
(** Arm the plan, resetting per-site RNG streams and budgets. Replaces
    any previous plan. *)

val clear : t -> unit
(** Disarm; subsequent runs are zero-fault (bit-identical to a process
    that never installed a plan). *)

val installed : t -> plan option
val active : t -> bool

(** {3 Hooks (device layer only)} *)

val fire : t -> site -> now:int64 -> bool
(** One injection opportunity at virtual time [now]. [true] means the
    caller must misbehave; the engine has already counted the injection
    ([fault.<site>.injected]) and logged it to the flight recorder. *)

val mangle : t -> site -> now:int64 -> string -> string option
(** Corruption sites: [Some frame'] with one deterministically chosen
    bit flipped when the site fires, [None] otherwise. *)

val extra_delay : t -> site -> now:int64 -> int64
(** Stall/reorder sites: the configured [magnitude_ns] (plus a
    deterministic jitter for reorder) when the site fires, [0L]
    otherwise. *)

val magnitude : t -> site -> int64
(** The armed spec's [magnitude_ns] ([0L] when the site is not armed).
    Does not draw or count: use after {!fire} when the caller needs the
    scale itself, e.g. the offset of a duplicated delivery. *)

val cut_point : t -> site -> len:int -> int
(** Torn writes: deterministic prefix length in \[[1], [len - 1]\] (or
    [0] for [len <= 1]). Call only after {!fire} returned [true] —
    it draws from the site's stream. *)

(** {3 Accounting} *)

val injected : t -> site -> int
(** Injections so far under the current plan. *)

val total_injected : t -> int

val injected_counter : site -> Dk_obs.Metrics.counter
(** The [fault.<site>.injected] counter (default obs registry), for
    assertions in tests. *)
