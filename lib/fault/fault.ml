type site =
  | Nic_rx_drop
  | Nic_tx_drop
  | Nic_rx_dup
  | Nic_rx_corrupt
  | Fabric_drop
  | Fabric_dup
  | Fabric_reorder
  | Fabric_corrupt
  | Fabric_partition
  | Block_stall
  | Block_error
  | Block_torn_write
  | Rdma_qp_break

let sites =
  [
    Nic_rx_drop;
    Nic_tx_drop;
    Nic_rx_dup;
    Nic_rx_corrupt;
    Fabric_drop;
    Fabric_dup;
    Fabric_reorder;
    Fabric_corrupt;
    Fabric_partition;
    Block_stall;
    Block_error;
    Block_torn_write;
    Rdma_qp_break;
  ]

let site_name = function
  | Nic_rx_drop -> "nic.rx_drop"
  | Nic_tx_drop -> "nic.tx_drop"
  | Nic_rx_dup -> "nic.rx_dup"
  | Nic_rx_corrupt -> "nic.rx_corrupt"
  | Fabric_drop -> "fabric.drop"
  | Fabric_dup -> "fabric.dup"
  | Fabric_reorder -> "fabric.reorder"
  | Fabric_corrupt -> "fabric.corrupt"
  | Fabric_partition -> "fabric.partition"
  | Block_stall -> "block.stall"
  | Block_error -> "block.error"
  | Block_torn_write -> "block.torn_write"
  | Rdma_qp_break -> "rdma.qp_break"

let site_of_name name = List.find_opt (fun s -> site_name s = name) sites

let describe = function
  | Nic_rx_drop -> "receive ring drops the frame before it is enqueued"
  | Nic_tx_drop -> "transmitted frame DMAs but never reaches the wire"
  | Nic_rx_dup -> "receive ring enqueues the frame twice"
  | Nic_rx_corrupt -> "one bit of the received frame flips (checksums catch it)"
  | Fabric_drop -> "in-flight frame is lost"
  | Fabric_dup -> "in-flight frame is delivered twice"
  | Fabric_reorder -> "frame is delayed past its successors (wire FIFO waived)"
  | Fabric_corrupt -> "one bit flips on the wire"
  | Fabric_partition -> "link is down: every frame in the window is lost"
  | Block_stall -> "NVMe completion is delayed by the spec's magnitude"
  | Block_error -> "NVMe completion returns `Io_error"
  | Block_torn_write -> "write persists a prefix only, yet reports `Ok"
  | Rdma_qp_break -> "queue pair is severed; the post completes `Qp_broken"

(* Toplevel, state in parameters: [site_index] runs on every fault
   check, i.e. on every frame touching an instrumented edge, so the old
   local closure was a per-check allocation. *)
let rec site_find s i = function
  | [] -> 0
  | x :: rest -> if x = s then i else site_find s (i + 1) rest

let site_index s = site_find s 0 sites

let n_sites = List.length sites

type spec = {
  rate : float;
  from_ns : int64;
  until_ns : int64 option;
  max_count : int option;
  magnitude_ns : int64;
}

let spec ~rate ?(from_ns = 0L) ?until_ns ?max_count
    ?(magnitude_ns = 100_000L) () =
  { rate; from_ns; until_ns; max_count; magnitude_ns }

type plan = { seed : int64; plan_name : string; specs : (site * spec) list }

let plan ~seed ?(name = "custom") specs = { seed; plan_name = name; specs }

(* ---- named plans: the scenario library ---- *)

let plan_names =
  [
    ("loss-burst", "25% fabric loss between 100us and 700us");
    ("partition-heal", "total partition from 150us, healing at 1.5ms");
    ("partition", "total partition from 200us that never heals");
    ("corrupt-wire", "4% of frames get one bit flipped on the wire");
    ("dup-storm", "frames duplicated on the wire and in the rx ring");
    ("reorder", "30% of frames delayed past their successors");
    ("nic-flaky", "rx/tx rings drop frames between 100us and 900us");
    ("slow-disk", "half of NVMe completions stall an extra 2ms");
    ("flaky-disk", "30% of NVMe completions error, 12-injection budget");
    ("broken-disk", "every NVMe completion errors from 50us on");
    ("torn-write", "exactly one write persists a prefix yet reports Ok");
    ("rdma-break", "the queue pair severs on one post");
  ]

let named ~seed name =
  let mk specs = Some (plan ~seed ~name specs) in
  match name with
  | "loss-burst" ->
      mk
        [
          ( Fabric_drop,
            spec ~rate:0.25 ~from_ns:100_000L ~until_ns:700_000L () );
        ]
  | "partition-heal" ->
      mk
        [
          ( Fabric_partition,
            spec ~rate:1.0 ~from_ns:150_000L ~until_ns:1_500_000L () );
        ]
  | "partition" ->
      mk [ (Fabric_partition, spec ~rate:1.0 ~from_ns:200_000L ()) ]
  | "corrupt-wire" -> mk [ (Fabric_corrupt, spec ~rate:0.04 ()) ]
  | "dup-storm" ->
      mk
        [
          (Fabric_dup, spec ~rate:0.25 ~magnitude_ns:2_000L ());
          (Nic_rx_dup, spec ~rate:0.15 ());
        ]
  | "reorder" -> mk [ (Fabric_reorder, spec ~rate:0.3 ~magnitude_ns:50_000L ()) ]
  | "nic-flaky" ->
      mk
        [
          (Nic_rx_drop, spec ~rate:0.15 ~from_ns:100_000L ~until_ns:900_000L ());
          (Nic_tx_drop, spec ~rate:0.1 ~from_ns:100_000L ~until_ns:900_000L ());
        ]
  | "slow-disk" ->
      mk [ (Block_stall, spec ~rate:0.5 ~magnitude_ns:2_000_000L ()) ]
  | "flaky-disk" -> mk [ (Block_error, spec ~rate:0.3 ~max_count:12 ()) ]
  | "broken-disk" -> mk [ (Block_error, spec ~rate:1.0 ~from_ns:50_000L ()) ]
  | "torn-write" -> mk [ (Block_torn_write, spec ~rate:1.0 ~max_count:1 ()) ]
  | "rdma-break" -> mk [ (Rdma_qp_break, spec ~rate:1.0 ~max_count:1 ()) ]
  | _ -> None

(* ---- the injection engine ---- *)

(* Injection counters live in the default obs registry so `demi stats`
   and the bench JSON dumps surface them; they are created eagerly so a
   snapshot lists every site even at zero. *)
let injected_counter site =
  Dk_obs.Metrics.counter ("fault." ^ site_name site ^ ".injected")

let all_counters = Array.of_list (List.map injected_counter sites)
[@@shard.immutable
  "array of obs counter handles, filled once at module init and only read \
   afterwards"]

type armed = {
  aspec : spec;
  rng : Dk_sim.Rng.t;
  mutable shots : int; (* injections under the current installation *)
}

type t = {
  mutable current : plan option;
  slots : armed option array; (* indexed by site_index *)
}

let create () = { current = None; slots = Array.make n_sites None }
let default = create ()
[@@shard.per_shard
  "process-wide fallback fault domain; the device constructors take ?fault \
   so each shard can run its own isolated fault plan"]

(* Per-site RNG stream: seed ⊕ a site-specific odd constant, mixed by
   the Rng itself. Streams are independent across sites, so arming one
   site never shifts another's draws. *)
let site_stream seed site =
  Dk_sim.Rng.create
    (Int64.logxor seed
       (Int64.mul 0x2545f4914f6cdd1dL (Int64.of_int (site_index site + 1))))

let clear t =
  t.current <- None;
  Array.fill t.slots 0 n_sites None

let install t p =
  clear t;
  t.current <- Some p;
  List.iter
    (fun (site, aspec) ->
      t.slots.(site_index site) <-
        Some { aspec; rng = site_stream p.seed site; shots = 0 })
    p.specs

let installed t = t.current
let active t = t.current <> None

let injected t site =
  match t.slots.(site_index site) with None -> 0 | Some a -> a.shots

let total_injected t =
  List.fold_left (fun acc s -> acc + injected t s) 0 sites

let in_window aspec now =
  Int64.compare now aspec.from_ns >= 0
  && (match aspec.until_ns with
     | None -> true
     | Some u -> Int64.compare now u < 0)

let fire t site ~now =
  match t.slots.(site_index site) with
  | None -> false
  | Some a ->
      let budget_left =
        match a.aspec.max_count with None -> true | Some m -> a.shots < m
      in
      if (not budget_left) || a.aspec.rate <= 0.0 || not (in_window a.aspec now)
      then false
      else begin
        let hit =
          a.aspec.rate >= 1.0 || Dk_sim.Rng.bool a.rng a.aspec.rate
        in
        if hit then begin
          a.shots <- a.shots + 1;
          Dk_obs.Metrics.incr all_counters.(site_index site);
          Dk_obs.Flight.recordf Dk_obs.Flight.default ~now Dk_obs.Flight.Drop
            "fault injected: %s (#%d)" (site_name site) a.shots
        end;
        hit
      end

let magnitude t site =
  match t.slots.(site_index site) with
  | None -> 0L
  | Some a -> a.aspec.magnitude_ns

let draw t site bound =
  match t.slots.(site_index site) with
  | None -> 0
  | Some a -> if bound <= 0 then 0 else Dk_sim.Rng.int a.rng bound

let mangle t site ~now frame =
  if String.length frame = 0 || not (fire t site ~now) then None
  else begin
    let bit = draw t site (String.length frame * 8) in
    let b = Bytes.of_string frame in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Some (Bytes.to_string b)
  end
  [@@hot.alloc
    "fault injection materializes the corrupted frame copy — only when \
     the site actually fires"]

let extra_delay t site ~now =
  if not (fire t site ~now) then 0L
  else
    let m = magnitude t site in
    match site with
    | Fabric_reorder ->
        (* Vary the push-back so a burst of reordered frames does not
           collapse back into FIFO order. *)
        Int64.add m (Int64.of_int (draw t site (1 + Int64.to_int m)))
    | _ -> m

let cut_point t site ~len =
  if len <= 1 then 0 else 1 + draw t site (len - 1)
