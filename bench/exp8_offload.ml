(* E8 — §4.2–4.3: filter/map offload. A sender blasts datagrams at a
   receiver whose queue filter keeps only a fraction; with a
   programmable NIC the filter runs on-device (dropped frames cost the
   host nothing), with a raw NIC the libOS evaluates it on the CPU per
   message. We sweep selectivity and report host CPU time per
   *delivered* message. *)

module Setup = Dk_apps.Sim_setup
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Prog = Dk_device.Prog
module Sga = Dk_mem.Sga

let total = 400
let payload_size = 200

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

(* Send [total] datagrams, a fraction [keep] of which match the filter.
   Returns (virtual ns consumed end-to-end, frames filtered on device,
   messages delivered). *)
let run_case ~programmable ~keep =
  let duo = Setup.two_hosts ~programmable () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  let engine = duo.Setup.engine in
  let sqd = Result.get_ok (Demi.socket db `Udp) in
  must (Demi.bind db sqd ~port:9);
  let fq = Result.get_ok (Demi.filter db sqd (Prog.Prefix "EVT:")) in
  let delivered = ref 0 in
  let rec drain () =
    match Demi.pop db fq with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch db tok (function
          | Types.Popped sga ->
              Sga.free sga;
              incr delivered;
              drain ()
          | _ -> ())
  in
  drain ();
  let cqd = Result.get_ok (Demi.socket da `Udp) in
  must (Demi.connect da cqd ~dst:(Setup.endpoint duo.Setup.b 9));
  let rng = Dk_sim.Rng.create 31L in
  let expected = ref 0 in
  let t0 = Engine.now engine in
  for _ = 1 to total do
    let matches = Dk_sim.Rng.bool rng keep in
    if matches then incr expected;
    let prefix = if matches then "EVT:" else "IGN:" in
    let body = prefix ^ String.make (payload_size - 4) 'z' in
    ignore (Demi.blocking_push da cqd (Sga.of_string body))
  done;
  ignore (Engine.run_until engine (fun () -> !delivered >= !expected));
  Engine.run engine;
  let elapsed = Int64.sub (Engine.now engine) t0 in
  must (Demi.close da cqd);
  let nic_stats = Dk_device.Nic.stats duo.Setup.b.Setup.nic in
  (elapsed, nic_stats.Dk_device.Nic.rx_filtered, !delivered)

let run () =
  Report.header ~id:"E8: filter offload" ~source:"§4.2-4.3"
    ~claim:
      "Offloaded filters drop traffic before it costs host cycles; the CPU\n\
       fallback pays per evaluated message. The lower the selectivity, the\n\
       bigger the offload win.";
  let widths = [ 12; 14; 14; 12; 14 ] in
  let rows =
    List.map
      (fun keep ->
        let cpu_ns, _, cpu_del = run_case ~programmable:false ~keep in
        let dev_ns, dev_filtered, dev_del = run_case ~programmable:true ~keep in
        [
          Printf.sprintf "%.0f%%" (keep *. 100.0);
          Printf.sprintf "%Ld" (Int64.div cpu_ns (Int64.of_int (max 1 cpu_del)));
          Printf.sprintf "%Ld" (Int64.div dev_ns (Int64.of_int (max 1 dev_del)));
          string_of_int dev_filtered;
          Report.ratio
            (Int64.div cpu_ns (Int64.of_int (max 1 cpu_del)))
            (Int64.div dev_ns (Int64.of_int (max 1 dev_del)));
        ])
      [ 0.9; 0.5; 0.1 ]
  in
  Report.table widths
    [ "keep rate"; "cpu ns/msg"; "dev ns/msg"; "dev drops"; "win" ]
    rows;
  Report.footnote "%d datagrams of %d B per cell.\n" total payload_size
