(* E16 — deep NIC offload: kv GETs served from the device-resident
   table. The paper's §5 argues the device should run more of the
   steady-state datapath; here the server NIC holds a bounded key/value
   table and a parse→match→action rx pipeline answers GET hits on the
   device clock — the host never even pops them. The sweep pins the
   device-hit ratio by pre-inserting the smallest hot-key prefix
   carrying {0, 50, 90, 99}% of the Zipf popularity mass, at a fixed
   offered rate, and watches host CPU per completed op fall while
   goodput holds. The offered stream (digest) is identical in every
   row: hit ratio and transport are service-side properties.

   hostcpu(ns/op) is Engine.consumed — cumulative host busy time —
   summed over the shard engines and divided by completed ops; client
   and server share the engines, so the client's constant tx/rx cost
   is inside every row and the decline is all server-side work the
   device absorbed. The p99 columns ride the same E15 SLO gate. *)

module Loadgen = Dk_loadgen.Loadgen
module Scenario = Dk_loadgen.Scenario
module H = Dk_sim.Histogram

let shards = 2
let seed = 42L
let offered_rate = 150_000.0
let duration_ms = 15
let hit_targets = [ 0.0; 0.5; 0.9; 0.99 ]

let kops v = Printf.sprintf "%.0f" (v /. 1e3)

let base () =
  match Scenario.find "poisson-steady" with
  | Some s -> { s with Scenario.duration_ms }
  | None -> invalid_arg "E16: poisson-steady missing"

let per_op_ns (s : Loadgen.stats) =
  Int64.to_float s.Loadgen.l_host_cpu_ns /. float_of_int (max 1 s.Loadgen.l_done)

let widths = [ 9; 9; 9; 9; 8; 12; 13; 8; 8; 9 ]

let row label (s : Loadgen.stats) =
  [
    label;
    string_of_int s.Loadgen.l_offload_resident;
    string_of_int s.Loadgen.l_offload_hits;
    string_of_int s.Loadgen.l_offload_lookups;
    string_of_int s.Loadgen.l_done;
    kops s.Loadgen.l_goodput;
    Printf.sprintf "%.0f" (per_op_ns s);
    Report.ns (H.quantile s.Loadgen.l_lat 0.5);
    Report.ns (H.quantile s.Loadgen.l_lat 0.99);
    Report.ns (H.quantile s.Loadgen.l_lat 0.999);
  ]

let run () =
  Report.header ~id:"E16: NIC-offload hit-ratio sweep"
    ~source:"\u{00a7}5 \"move compute to the data\" (device-resident state)"
    ~claim:
      "With the kv GET hot path compiled onto the programmable NIC, host \
       CPU per completed op falls monotonically as the device-resident \
       table covers more of the Zipf popularity mass, while goodput holds \
       at the fixed offered rate and the offered stream stays identical \
       (hit ratio is a service-side property).";
  print_endline "";
  Printf.printf
    "poisson-steady shape, %d shards, seed %Ld, %.0f kops/s offered, %dms \
     window; UDP trunks + device table vs the host-only TCP datapath:\n"
    shards seed (offered_rate /. 1e3) duration_ms;
  let tcp = Loadgen.run ~offered_rate ~scn:(base ()) ~shards ~seed () in
  let arms =
    List.map
      (fun hit ->
        let scn =
          { (base ()) with Scenario.offload = true; Scenario.offload_hit = hit }
        in
        (hit, Loadgen.run ~offered_rate ~scn ~shards ~seed ()))
      hit_targets
  in
  Report.table widths
    [
      "arm"; "resident"; "dev-hits"; "lookups"; "done"; "goodput(kops)";
      "hostcpu(ns/op)"; "p50(ns)"; "p99(ns)"; "p99.9(ns)";
    ]
    (row "tcp-host" tcp
    :: List.map
         (fun (hit, s) ->
           row (Printf.sprintf "hit-%.0f%%" (hit *. 100.)) s)
         arms);
  (* The acceptance claims, checked from the actual numbers so a silent
     regression turns the bench (and the CI baseline diff) red. *)
  let ops = List.map snd arms in
  let monotone =
    let rec chk = function
      | a :: (b :: _ as tl) -> per_op_ns b <= per_op_ns a && chk tl
      | _ -> true
    in
    chk ops
  in
  let cold = List.assoc 0.0 arms and hot = List.assoc 0.9 arms in
  let freed = per_op_ns cold /. per_op_ns hot in
  let digests_equal =
    List.for_all
      (fun s -> Int64.equal s.Loadgen.l_digest tcp.Loadgen.l_digest)
      ops
  in
  Printf.printf
    "\nhost CPU/op monotone in hit ratio: %b; freed at 90%% hits: %.2fx \
     (>= 2x required); offered digest identical across all rows: %b\n"
    monotone freed digests_equal;
  if not (monotone && freed >= 2.0 && digests_equal) then
    failwith "E16: offload acceptance violated";
  Report.footnote
    "Device hits are answered by the NIC's rx pipeline out of the bounded \
     table — no doorbell, no host pop, no app work — so each percentage \
     point of hit ratio converts directly into freed host cycles. SETs and \
     DELs write through the synchronous host\u{2192}device control queue \
     before the host acknowledges, which is why the sweep can promise \
     freshness while the table serves reads on the device clock.\n"
