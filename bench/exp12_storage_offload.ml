(* E12 — §4.3's storage offload example: "encrypting data in a storage
   I/O queue before writing to disk". Appends through the log-structured
   file queue with encryption (a) on the host CPU before pushing, or
   (b) as a map program on a computational SSD (Table 1 right column) —
   zero host cycles, a fixed device-latency bump.

   This is the ablation DESIGN.md calls out: where should a queue's
   map run? *)

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Prog = Dk_device.Prog
module Sga = Dk_mem.Sga
module H = Dk_sim.Histogram

let cost = Cost.default
let records = 100
let record_size = 4000
let mask = 0x5a

(* software stream-cipher cost: ~0.75 ns/B (3 cycles/B at 4 GHz) *)
let crypto_ns len = Int64.of_float (0.75 *. float_of_int len)

let run_case ~on_device =
  let engine = Engine.create () in
  let block =
    Dk_device.Block.create ~engine ~cost ~programmable:on_device ()
  in
  if on_device then begin
    (match Dk_device.Block.set_write_prog block (Some (Prog.Xor_mask mask)) with
    | Ok () -> ()
    | Error `Not_programmable -> failwith "device not programmable");
    ignore (Dk_device.Block.set_read_prog block (Some (Prog.Xor_mask mask)))
  end;
  let demi = Demi.create ~engine ~cost ~block () in
  let qd = Result.get_ok (Demi.fcreate demi "enc.log") in
  let payload = String.make record_size 'p' in
  let append = H.create () in
  let cpu_spent = ref 0L in
  for _ = 1 to records do
    let t0 = Engine.now engine in
    let data =
      if on_device then payload
      else begin
        (* host-side encryption: charge the cycles and do the work *)
        let c = crypto_ns record_size in
        cpu_spent := Int64.add !cpu_spent c;
        Engine.consume engine c;
        Prog.eval_map (Prog.Xor_mask mask) payload
      end
    in
    (match Demi.blocking_push demi qd (Sga.of_string data) with
    | Types.Pushed -> ()
    | _ -> failwith "append failed");
    H.record append (Int64.sub (Engine.now engine) t0)
  done;
  (match Demi.close demi qd with
  | Ok () -> ()
  | Error e -> failwith (Types.error_to_string e));
  (H.quantile append 0.5, Int64.div !cpu_spent (Int64.of_int records))

let run () =
  Report.header ~id:"E12: storage map offload" ~source:"§4.3 (ablation)"
    ~claim:
      "A storage queue's map (encryption before writing) can run on the CPU\n\
       or on a computational SSD; offloading frees host cycles for a fixed\n\
       device-latency bump.";
  let cpu_p50, cpu_per_op = run_case ~on_device:false in
  let dev_p50, _ = run_case ~on_device:true in
  let widths = [ 26; 16; 18 ] in
  Report.table widths
    [ "where the map runs"; "append p50(ns)"; "host CPU ns/op" ]
    [
      [ "host CPU (libOS fallback)"; Report.ns cpu_p50; Report.ns cpu_per_op ];
      [ "computational SSD"; Report.ns dev_p50; "0" ];
    ];
  Report.footnote
    "%d x %d B encrypted appends; device program latency %Ld ns/record.\n"
    records record_size cost.Cost.device_prog_per_elem
