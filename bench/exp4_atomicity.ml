(* E4 — §3.2 stream claim: "UNIX pipes force applications to operate on
   streams of data; [...] by the time Redis has inspected a pipe and
   found that its read operation is incomplete, it could have processed
   a request that was ready."

   A producer writes framed requests into a kernel pipe in fragments;
   the consumer must re-inspect the stream every time bytes arrive and
   often finds no complete request. The same messages through a
   Demikernel queue complete exactly one pop per message — no wasted
   inspections, ever. *)

module Kpipe = Dk_kernel.Kpipe
module Framing = Dk_net.Framing
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine

let messages = 200
let payload = String.make 120 'q'

(* Stream consumer over a pipe, fragment size [frag]: counts decoder
   inspections that found nothing (incomplete request). *)
let stream_run frag =
  let pipe = Kpipe.create ~capacity:(1 lsl 20) () in
  let encoded = Framing.encode [ "G"; payload ] in
  let decoder = Framing.create () in
  let wasted = ref 0 and complete = ref 0 in
  let inspect () =
    let rec drain () =
      match Framing.next decoder with
      | Some _ ->
          incr complete;
          drain ()
      | None -> incr wasted
    in
    drain ()
  in
  for _ = 1 to messages do
    (* fragmented arrival: every fragment triggers an inspection, like
       an epoll-woken reader *)
    let pos = ref 0 in
    while !pos < String.length encoded do
      let n = min frag (String.length encoded - !pos) in
      ignore (Kpipe.write pipe (String.sub encoded !pos n));
      pos := !pos + n;
      let available = Kpipe.read pipe 4096 in
      Framing.feed decoder available;
      inspect ()
    done
  done;
  (!complete, !wasted)

(* Queue consumer: one pop per message by construction. *)
let queue_run () =
  let engine = Engine.create () in
  let demi = Demi.create ~engine ~cost:Dk_sim.Cost.default () in
  let qd = Demi.queue demi in
  let pops = ref 0 in
  for _ = 1 to messages do
    ignore (Demi.blocking_push demi qd (Dk_mem.Sga.of_strings [ "G"; payload ]));
    match Demi.blocking_pop demi qd with
    | Types.Popped _ -> incr pops
    | _ -> ()
  done;
  (match Demi.close demi qd with
  | Ok () -> ()
  | Error e -> failwith (Types.error_to_string e));
  !pops

let run () =
  Report.header ~id:"E4: atomic queue units vs streams" ~source:"§3.2, §4.2"
    ~claim:
      "Streams make the application inspect partial data; queues deliver\n\
       whole elements, so every wakeup has work to do.";
  let pops = queue_run () in
  let widths = [ 14; 12; 18; 20 ] in
  let rows =
    List.map
      (fun frag ->
        let complete, wasted = stream_run frag in
        [
          string_of_int frag;
          string_of_int complete;
          string_of_int wasted;
          Printf.sprintf "%.2f" (float_of_int wasted /. float_of_int complete);
        ])
      [ 16; 32; 64; 128 ]
  in
  Report.table widths
    [ "fragment(B)"; "requests"; "empty inspections"; "wasted/request" ]
    rows;
  Report.footnote
    "demikernel queue: %d requests, %d pops, 0 empty inspections (atomic pop).\n"
    messages pops
