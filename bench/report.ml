(* Minimal fixed-width table printer for experiment output. Each
   experiment's tables and obs counters are also dumped to
   BENCH_<exp>.json (suppress with DK_BENCH_JSON=0). *)

let hr width = print_endline (String.make width '-')

(* Pending JSON state for the experiment whose header printed last. *)
let current : (string * string * string) option ref = ref None
let captured : (string list * string list list) list ref = ref []

let json_enabled () = Sys.getenv_opt "DK_BENCH_JSON" <> Some "0"

(* "E1: data-path architectures" -> "e1" *)
let slug_of_id id =
  let stem =
    match String.index_opt id ':' with
    | Some i -> String.sub id 0 i
    | None -> ( match String.index_opt id ' ' with
               | Some i -> String.sub id 0 i
               | None -> id)
  in
  String.lowercase_ascii (String.trim stem)

let finish () =
  (match !current with
  | Some (slug, source, claim) when json_enabled () ->
      let js = Dk_obs.Export.json_string in
      let cells row = String.concat "," (List.map js row) in
      let tables =
        String.concat ","
          (List.rev_map
             (fun (head, rows) ->
               Printf.sprintf "{\"head\":[%s],\"rows\":[%s]}" (cells head)
                 (String.concat ","
                    (List.map (fun r -> "[" ^ cells r ^ "]") rows)))
             !captured)
      in
      let obs =
        Dk_obs.Export.json_value ~now:0L
          (Dk_obs.Metrics.snapshot Dk_obs.Metrics.default)
      in
      let oc = open_out (Printf.sprintf "BENCH_%s.json" slug) in
      Printf.fprintf oc
        "{\"experiment\":%s,\"source\":%s,\"claim\":%s,\"tables\":[%s],\"obs\":%s}\n"
        (js slug) (js source) (js claim) tables obs;
      close_out oc
  | Some _ | None -> ());
  current := None;
  captured := []

let header ~id ~source ~claim =
  finish ();
  (* Each experiment reads its own obs deltas, not its predecessors'. *)
  Dk_obs.Metrics.reset Dk_obs.Metrics.default;
  Dk_obs.Flight.clear Dk_obs.Flight.default;
  current := Some (slug_of_id id, source, claim);
  print_newline ();
  hr 78;
  Printf.printf "%s  [%s]\n" id source;
  Printf.printf "%s\n" claim;
  hr 78

let row widths cells =
  let pad w s =
    let n = String.length s in
    if n >= w then s else s ^ String.make (w - n) ' '
  in
  print_endline (String.concat "  " (List.map2 pad widths cells))

let table widths head rows =
  captured := (head, rows) :: !captured;
  row widths head;
  row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (row widths) rows

let ns v = Printf.sprintf "%Ld" v
let ns_f v = Printf.sprintf "%.0f" v
let ratio a b = Printf.sprintf "%.1fx" (Int64.to_float a /. Int64.to_float b)

let kops_per_sec ops elapsed_ns =
  if Int64.compare elapsed_ns 0L <= 0 then "-"
  else
    Printf.sprintf "%.0f" (float_of_int ops /. (Int64.to_float elapsed_ns /. 1e9) /. 1000.0)

let footnote fmt = Printf.printf fmt
