(* WAITSMOKE — readiness-path invariants (§4.4), run under
   @bench-smoke. Every check here is a deterministic virtual-time
   assertion (selection order, exactly-once delivery, ready_hits
   accounting) so a regression in the ready-FIFO wait machinery fails
   `dune runtest` without any wall-clock flakiness. The wall-clock
   scaling story lives in the micro benchmarks. *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Sga = Dk_mem.Sga

let n = 32

let fail fmt = Printf.ksprintf failwith fmt

let run () =
  Report.header ~id:"WAITSMOKE: readiness-path invariants" ~source:"§4.4"
    ~claim:
      "wait_any / wait_all / wait_next dequeue completions from per-wait-set\n\
       ready queues: exactly-once delivery, seed-identical selection order,\n\
       and core.wait.ready_hits accounts for every completion.";
  let engine = Engine.create () in
  let demi = Demi.create ~engine ~cost:Dk_sim.Cost.default () in
  let push qd =
    let tok = Result.get_ok (Demi.push demi qd (Sga.of_string "x")) in
    match Demi.wait demi tok with
    | Types.Pushed -> ()
    | _ -> fail "waitsmoke: push failed"
  in
  let fresh_batch () =
    let qds = Array.init n (fun _ -> Demi.queue demi) in
    let toks = Array.map (fun qd -> Result.get_ok (Demi.pop demi qd)) qds in
    (qds, toks)
  in
  (* wait_any returns the lowest-argument-index ready token — the
     seed's left-to-right scan order — even though completions arrive
     here in reverse. *)
  let qds, toks = fresh_batch () in
  for i = n - 1 downto 0 do
    push qds.(i)
  done;
  let t0 = Engine.now engine in
  for expect = 0 to n - 1 do
    let remaining = Array.to_list (Array.sub toks expect (n - expect)) in
    match Demi.wait_any demi remaining with
    | Some (tok, Types.Popped s) ->
        if tok <> toks.(expect) then
          fail "wait_any selection: got token %d, wanted index %d" tok expect;
        Sga.free s
    | Some _ -> fail "wait_any: unexpected completion kind"
    | None -> fail "wait_any: deadlock"
  done;
  let any_ns = Int64.sub (Engine.now engine) t0 in
  (* wait_next delivers in completion order, each completion exactly
     once: push evens then odds, read the same sequence back. *)
  let qds, toks = fresh_batch () in
  let ws = Demi.waitset demi in
  Array.iter (fun tok -> Demi.waitset_add demi ws tok) toks;
  let order =
    List.init n (fun i -> if i < n / 2 then 2 * i else (2 * (i - (n / 2))) + 1)
  in
  List.iter (fun i -> push qds.(i)) order;
  let t0 = Engine.now engine in
  List.iter
    (fun i ->
      match Demi.wait_next demi ws with
      | Some (tok, Types.Popped s) ->
          if tok <> toks.(i) then
            fail "wait_next order: got token %d, wanted index %d" tok i;
          Sga.free s
      | Some _ -> fail "wait_next: unexpected completion kind"
      | None -> fail "wait_next: deadlock")
    order;
  (match Demi.wait_next ~timeout:1000L demi ws with
  | None -> ()
  | Some _ -> fail "wait_next: delivered a completion twice");
  let next_ns = Int64.sub (Engine.now engine) t0 in
  (* wait_all returns argument order regardless of completion order. *)
  let qds, toks = fresh_batch () in
  for i = n - 1 downto 0 do
    push qds.(i)
  done;
  let t0 = Engine.now engine in
  (match Demi.wait_all demi (Array.to_list toks) with
  | Some results ->
      if List.length results <> n then fail "wait_all: wrong count";
      List.iteri
        (fun i (tok, r) ->
          if tok <> toks.(i) then fail "wait_all: out of argument order";
          match r with
          | Types.Popped s -> Sga.free s
          | _ -> fail "wait_all: unexpected completion kind")
        results
  | None -> fail "wait_all: deadlock");
  let all_ns = Int64.sub (Engine.now engine) t0 in
  (* Every completion above was served from a ready FIFO. *)
  let hits = Dk_obs.Metrics.(value (counter "core.wait.ready_hits")) in
  if hits <> 3 * n then
    fail "ready_hits accounting: %d completions delivered, %d counted" (3 * n)
      hits;
  let widths = [ 12; 13; 13 ] in
  Report.table widths
    [ "path"; "completions"; "elapsed(ns)" ]
    [
      [ "wait_any"; string_of_int n; Report.ns any_ns ];
      [ "wait_next"; string_of_int n; Report.ns next_ns ];
      [ "wait_all"; string_of_int n; Report.ns all_ns ];
    ];
  Report.footnote
    "all assertions virtual-time deterministic; ready_hits == %d == every\n\
     completion delivered through the readiness path.\n"
    (3 * n)
