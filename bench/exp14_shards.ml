(* E14 — multi-shard datapath scaling. The paper's endpoint for the
   datapath: one core's libOS becomes N shared-nothing shards, each
   with its own clock, qds, pools, TCP state and fault domain; the NIC
   steers flows to shards with RSS (rebalanced indirection table), and
   the only cross-shard channel is an explicit bounded mailbox. We
   weak-scale echo and KV from 1 to 16 shards (fixed flows per shard)
   and ablate the cross-shard traffic fraction: shared-nothing scaling
   is linear at 0% remote and degrades smoothly as requests must hop
   to their home shard and back. Per-shard latency comes from the
   shard<i>.app.client.rtt obs histograms. *)

module Runtime = Dk_shard_rt.Runtime
module Shard = Dk_shard_rt.Shard
module Metrics = Dk_obs.Metrics
module H = Dk_sim.Histogram

let shard_counts = [ 1; 2; 4; 8; 16 ]
let flows_per_shard = 8
let echo_rounds = 100
let kv_ops_per_flow = 100
let seed = 42L

let obs_shard_hist i =
  Metrics.hist_data (Metrics.hist (Shard.obs_name i "app.client.rtt"))

(* Merge the per-shard obs histograms into the run-wide distribution. *)
let merged_hist n =
  let rec go acc i =
    if i >= n then acc else go (H.merge acc (obs_shard_hist i)) (i + 1)
  in
  go (H.create ()) 0

let worst_p99 n =
  let worst = ref 0L in
  for i = 0 to n - 1 do
    let h = obs_shard_hist i in
    if H.count h > 0 then begin
      let p = H.quantile h 0.99 in
      if Int64.compare p !worst > 0 then worst := p
    end
  done;
  !worst

type workload = Echo | Kv

let workload_name = function Echo -> "echo" | Kv -> "kv"

let run_cell workload ~n ~xfrac =
  (* Each cell reads its own obs deltas: fresh registry, fresh world. *)
  Metrics.reset Metrics.default;
  let t = Runtime.create ~n ~xfrac ~seed () in
  let flows = flows_per_shard * n in
  match workload with
  | Echo -> Runtime.run_echo t ~flows ~size:64 ~rounds:echo_rounds
  | Kv ->
      Runtime.run_kv t ~flows ~ops_per_flow:kv_ops_per_flow ~keys_per_shard:64
        ~value_size:128 ~read_fraction:0.9

let kops (s : Runtime.stats) =
  float_of_int s.Runtime.total_ops
  /. (Int64.to_float s.Runtime.wall_ns /. 1e9)
  /. 1000.0

let scaling_widths = [ 6; 6; 6; 7; 8; 8; 8; 9; 13 ]

let scaling_table workload =
  let base = ref 0.0 in
  List.map
    (fun n ->
      let s = run_cell workload ~n ~xfrac:0.0 in
      let k = kops s in
      if n = 1 then base := k;
      let m = merged_hist n in
      [
        string_of_int n;
        string_of_int (flows_per_shard * n);
        string_of_int s.Runtime.total_ops;
        Printf.sprintf "%.0f" k;
        Printf.sprintf "%.1fx" (k /. !base);
        Report.ns (H.quantile m 0.5);
        Report.ns (H.quantile m 0.99);
        Report.ns (H.quantile m 0.999);
        Report.ns (worst_p99 n);
      ])
    shard_counts

let ablation_widths = [ 8; 6; 6; 7; 8; 7; 8; 8; 9 ]

let ablation_rows () =
  List.concat_map
    (fun workload ->
      List.map
        (fun xfrac ->
          let n = 8 in
          let s = run_cell workload ~n ~xfrac in
          let m = merged_hist n in
          [
            workload_name workload;
            Printf.sprintf "%.0f%%" (xfrac *. 100.0);
            string_of_int s.Runtime.total_ops;
            string_of_int s.Runtime.total_remote;
            Printf.sprintf "%.0f" (kops s);
            Report.ns (H.quantile m 0.5);
            Report.ns (H.quantile m 0.99);
            Report.ns (H.quantile m 0.999);
            Report.ns (worst_p99 n);
          ])
        [ 0.0; 0.05; 0.20 ])
    [ Echo; Kv ]

let per_shard_widths = [ 5; 5; 5; 6; 8; 8; 8 ]

let per_shard_rows () =
  let n = 16 in
  let s = run_cell Echo ~n ~xfrac:0.20 in
  Array.to_list
    (Array.map
       (fun p ->
         let h = obs_shard_hist p.Runtime.shard in
         [
           string_of_int p.Runtime.shard;
           string_of_int p.Runtime.flow_count;
           string_of_int p.Runtime.op_count;
           string_of_int p.Runtime.remote_count;
           Report.ns (H.quantile h 0.5);
           Report.ns (H.quantile h 0.99);
           Report.ns (H.quantile h 0.999);
         ])
       s.Runtime.per_shard)

let run () =
  Report.header ~id:"E14: multi-shard datapath scaling"
    ~source:"design: shared-nothing shards, \u{00a7}4.3 steering"
    ~claim:
      "N per-core shards with RSS steering scale throughput ~linearly at 0% \
       cross-shard traffic; an explicit bounded mailbox makes remote touches \
       cost one hop each way, visible as a smooth latency/throughput ablation.";
  print_endline "";
  print_endline "echo, weak scaling (8 flows/shard, 0% cross-shard):";
  Report.table scaling_widths
    [
      "shards"; "flows"; "ops"; "kops/s"; "speedup"; "p50(ns)"; "p99(ns)";
      "p99.9(ns)"; "worstp99(ns)";
    ]
    (scaling_table Echo);
  print_endline "";
  print_endline "kv (striped keys, 90% GET), weak scaling:";
  Report.table scaling_widths
    [
      "shards"; "flows"; "ops"; "kops/s"; "speedup"; "p50(ns)"; "p99(ns)";
      "p99.9(ns)"; "worstp99(ns)";
    ]
    (scaling_table Kv);
  print_endline "";
  print_endline "cross-shard traffic ablation (8 shards):";
  Report.table ablation_widths
    [
      "workload"; "xfrac"; "ops"; "remote"; "kops/s"; "p50(ns)"; "p99(ns)";
      "p99.9(ns)"; "worstp99(ns)";
    ]
    (ablation_rows ());
  print_endline "";
  print_endline "per-shard detail (echo, 16 shards, 20% cross-shard):";
  Report.table per_shard_widths
    [ "shard"; "flows"; "ops"; "remote"; "p50(ns)"; "p99(ns)"; "p99.9(ns)" ]
    (per_shard_rows ());
  Report.footnote
    "Weak scaling: flows/shard fixed, so ideal speedup equals the shard \
     count. RSS hashes each flow's 5-tuple through the indirection table, \
     then the table is rebalanced (the ethtool -X move) so per-shard flow \
     counts stay within one of even. Remote requests pay two mailbox hops \
     plus the owner's app cost on the owner's clock.\n"
