(* Real wall-clock micro-benchmarks (Bechamel) of the library's hot
   paths. Unlike E1-E10 — which report *virtual* (cost-model) time —
   these measure actual OCaml execution speed of the reproduction
   itself: how fast the simulated stack, queues and allocators run on
   the host machine. *)

open Bechamel
open Toolkit
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Setup = Dk_apps.Sim_setup
module Sga = Dk_mem.Sga

let memq_roundtrip () =
  let engine = Dk_sim.Engine.create () in
  let demi = Demi.create ~engine ~cost:Dk_sim.Cost.default () in
  let qd = Demi.queue demi in
  let sga = Sga.of_string "payload" in
  Staged.stage (fun () ->
      ignore (Demi.blocking_push demi qd sga);
      match Demi.blocking_pop demi qd with
      | Types.Popped _ -> ()
      | _ -> assert false)

let sga_alloc_free () =
  let mgr = Dk_mem.Manager.create () in
  Staged.stage (fun () ->
      let b = Dk_mem.Manager.alloc_exn mgr 1024 in
      Dk_mem.Buffer.free b)

let buddy_alloc_free () =
  let region = Dk_mem.Region.create ~id:0 ~size:(1 lsl 20) in
  let arena = Dk_mem.Arena.create region in
  Staged.stage (fun () ->
      match Dk_mem.Arena.alloc arena 4096 with
      | Some b -> Dk_mem.Arena.free arena b
      | None -> assert false)

let framing_roundtrip () =
  let segs = [ "G"; "key-00000042"; String.make 256 'v' ] in
  Staged.stage (fun () ->
      let enc = Dk_net.Framing.encode segs in
      let d = Dk_net.Framing.create () in
      Dk_net.Framing.feed d enc;
      match Dk_net.Framing.next d with Some _ -> () | None -> assert false)

let checksum_1500 () =
  let buf = Bytes.make 1500 '\x5a' in
  Staged.stage (fun () -> ignore (Dk_util.Checksum.compute buf 0 1500))

let crc32_4k () =
  let buf = Bytes.make 4096 '\x7e' in
  Staged.stage (fun () -> ignore (Dk_util.Crc32.digest buf 0 4096))

let engine_event () =
  let engine = Dk_sim.Engine.create () in
  Staged.stage (fun () ->
      ignore (Dk_sim.Engine.after engine 10L (fun () -> ()));
      ignore (Dk_sim.Engine.step engine))

let tcp_echo_rtt () =
  (* full simulated stack: eth/arp/ip/tcp both ways, per run *)
  let duo = Setup.two_hosts () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  (match Dk_apps.Echo.start_demi_server ~demi:db ~port:7 with
  | Ok () -> ()
  | Error _ -> assert false);
  let qd = Result.get_ok (Demi.socket da `Tcp) in
  (match Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7) with
  | Ok () -> ()
  | Error _ -> assert false);
  let sga = Sga.of_string (String.make 64 'x') in
  Staged.stage (fun () ->
      ignore (Demi.blocking_push da qd sga);
      match Demi.blocking_pop da qd with
      | Types.Popped _ -> ()
      | _ -> assert false)

let kv_set_get () =
  let kv = Dk_apps.Kv.create (Dk_mem.Manager.create ()) in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      let key = "key-" ^ string_of_int (!i land 0xff) in
      ignore (Dk_apps.Kv.set kv key "value-bytes");
      ignore (Dk_apps.Kv.get kv key))

let histogram_record () =
  let h = Dk_sim.Histogram.create () in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      Dk_sim.Histogram.record h (Int64.of_int (!i * 97)))

let tests =
  Test.make_grouped ~name:"micro" ~fmt:"%s/%s"
    [
      Test.make ~name:"memq push+pop" (memq_roundtrip ());
      Test.make ~name:"sga alloc+free (manager)" (sga_alloc_free ());
      Test.make ~name:"buddy alloc+free" (buddy_alloc_free ());
      Test.make ~name:"framing encode+decode" (framing_roundtrip ());
      Test.make ~name:"inet checksum 1500B" (checksum_1500 ());
      Test.make ~name:"crc32 4KB" (crc32_4k ());
      Test.make ~name:"engine schedule+step" (engine_event ());
      Test.make ~name:"tcp echo RTT (full stack)" (tcp_echo_rtt ());
      Test.make ~name:"kv set+get" (kv_set_get ());
      Test.make ~name:"histogram record" (histogram_record ());
    ]

(* ---- wait_any scaling ----

   The seed's wait_any scanned every argument token per poll iteration;
   the readiness path (persistent wait set + ready FIFO) dequeues each
   completion in O(1). Serve [k] completions among [n] outstanding pop
   tokens, completions placed at the far end of the scan order — the
   representative worst case, where the scanner walks the whole pending
   set per event. *)

let wait_scaling_case n =
  let k = min n 500 in
  let mk () =
    let engine = Dk_sim.Engine.create () in
    let demi = Demi.create ~engine ~cost:Dk_sim.Cost.default () in
    let qds = Array.init n (fun _ -> Demi.queue demi) in
    let toks = Array.map (fun qd -> Result.get_ok (Demi.pop demi qd)) qds in
    let sga = Sga.of_string "x" in
    let push i =
      let ptok = Result.get_ok (Demi.push demi qds.(i) sga) in
      ignore (Demi.wait demi ptok)
    in
    (demi, toks, push)
  in
  (* seed algorithm: linear redeem scan over the argument tokens *)
  let demi, toks, push = mk () in
  let t0 = Unix.gettimeofday () in
  for j = 0 to k - 1 do
    push (n - 1 - j);
    let found = ref false in
    let i = ref 0 in
    while not !found do
      (match Demi.try_wait demi toks.(!i) with
      | Some _ -> found := true
      | None -> ());
      incr i
    done
  done;
  let scan_s = Unix.gettimeofday () -. t0 in
  (* readiness path: register once, dequeue completions in O(1) *)
  let demi, toks, push = mk () in
  let t0 = Unix.gettimeofday () in
  let ws = Demi.waitset demi in
  Array.iter (fun tok -> Demi.waitset_add demi ws tok) toks;
  for j = 0 to k - 1 do
    push (n - 1 - j);
    match Demi.wait_next demi ws with Some _ -> () | None -> assert false
  done;
  let ready_s = Unix.gettimeofday () -. t0 in
  let per ns = ns /. float_of_int k *. 1e9 in
  (per scan_s, per ready_s)

let wait_scaling () =
  print_newline ();
  Printf.printf "wait_any scaling (wall clock, worst-case scan order):\n";
  Printf.printf "%-14s %14s %14s %10s\n" "outstanding" "scan ns/ev"
    "ready ns/ev" "speedup";
  List.iter
    (fun n ->
      let scan, ready = wait_scaling_case n in
      Printf.printf "%-14d %14.0f %14.0f %9.1fx\n" n scan ready (scan /. ready))
    [ 10; 100; 1000; 10000 ]

let run () =
  Report.header ~id:"MICRO: host-execution benchmarks" ~source:"bechamel"
    ~claim:
      "Wall-clock cost of the reproduction's own hot paths (not virtual\n\
       time): ns per operation on this machine.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-42s %12.1f ns/op\n" name est)
    (List.sort compare !rows);
  wait_scaling ()
