(* E11 — §5.1 design choice: "whether to use one- or two-sided
   operations for RDMA communication" (and the §6 debate: FaRM-style
   one-sided reads vs FaSST/RFP-style RPCs).

   A KV lookup three ways on the RDMA-class device:
     - rpc       : two-sided SEND/RECV through Demikernel queues;
                   1 RTT + server CPU (the ~2 us request work).
     - read x1   : one-sided READ of a known slot; 1 RTT, zero server
                   CPU — but only possible when the location is known.
     - read x2   : index lookup + value fetch, 2 dependent READs —
                   the general case for hash-table layouts.

   Expected shape (what the literature found): 1 READ wins; the
   general 2-READ case loses to the RPC once server work is cheaper
   than a second round trip — "hybrid is better". *)

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Rdma = Dk_device.Rdma
module H = Dk_sim.Histogram

let cost = Cost.default
let rounds = 50
let value_size = 256
let slots = 64

(* two-sided RPC through Demikernel rdma queues, with server app work *)
let rpc_p50 () =
  let engine = Engine.create () in
  let na = Rdma.create ~engine ~cost () and nb = Rdma.create ~engine ~cost () in
  let da = Demi.create ~engine ~cost ~rdma:na () in
  let db = Demi.create ~engine ~cost ~rdma:nb () in
  let qpa = Rdma.create_qp na and qpb = Rdma.create_qp nb in
  Rdma.connect qpa qpb;
  let qa = Result.get_ok (Demi.rdma_endpoint da ~depth:16 qpa) in
  let qb = Result.get_ok (Demi.rdma_endpoint db ~depth:16 qpb) in
  let value = String.make value_size 'v' in
  let rec serve () =
    match Demi.pop db qb with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch db tok (function
          | Types.Popped req ->
              Dk_mem.Sga.free req;
              (* server-side request processing *)
              Engine.consume engine cost.Cost.app_request;
              (match Demi.sga_alloc db value with
              | Ok resp -> (
                  match Demi.push db qb resp with
                  | Ok t -> Demi.watch db t (fun _ -> ())
                  | Error _ -> ())
              | Error _ -> ());
              serve ()
          | _ -> ())
  in
  serve ();
  let h = H.create () in
  for i = 1 to rounds do
    let req = Result.get_ok (Demi.sga_alloc da (Printf.sprintf "GET %d" i)) in
    let t0 = Engine.now engine in
    ignore (Demi.blocking_push da qa req);
    (match Demi.blocking_pop da qa with
    | Types.Popped resp -> Demi.sga_free da resp
    | _ -> failwith "rpc failed");
    H.record h (Int64.sub (Engine.now engine) t0);
    Demi.sga_free da req
  done;
  (match Demi.close da qa with
  | Ok () -> ()
  | Error e -> failwith (Types.error_to_string e));
  H.quantile h 0.5

(* one-sided READs against a server-exposed slot table *)
let read_p50 ~reads_per_lookup () =
  let engine = Engine.create () in
  let na = Rdma.create ~engine ~cost () and nb = Rdma.create ~engine ~cost () in
  let da = Demi.create ~engine ~cost ~rdma:na () in
  let db = Demi.create ~engine ~cost ~rdma:nb () in
  let qpa = Rdma.create_qp na and qpb = Rdma.create_qp nb in
  Rdma.connect qpa qpb;
  (* server: a slot table in registered memory, exposed once *)
  let table = Dk_mem.Manager.alloc_exn (Demi.manager db) (slots * value_size) in
  Dk_mem.Buffer.fill table 'v';
  (match Rdma.expose_window qpb table with
  | Ok () -> ()
  | Error _ -> failwith "expose failed");
  (* one dummy registered allocation on A to force region setup *)
  let dst = Dk_mem.Manager.alloc_exn (Demi.manager da) value_size in
  let index_buf = Dk_mem.Manager.alloc_exn (Demi.manager da) 16 in
  let h = H.create () in
  let rng = Dk_sim.Rng.create 3L in
  for _ = 1 to rounds do
    let slot = Dk_sim.Rng.int rng slots in
    let t0 = Engine.now engine in
    (* optional first read: consult the "index" (16 B of the table) *)
    if reads_per_lookup = 2 then begin
      let done1 = ref false in
      Rdma.post_read qpa ~wr_id:1 ~remote_off:0 ~len:16 index_buf;
      Rdma.set_send_notify qpa (fun () ->
          match Rdma.poll_send_cq qpa with Some _ -> done1 := true | None -> ());
      ignore (Engine.run_until engine (fun () -> !done1))
    end;
    let done2 = ref false in
    Rdma.post_read qpa ~wr_id:2 ~remote_off:(slot * value_size) ~len:value_size dst;
    Rdma.set_send_notify qpa (fun () ->
        match Rdma.poll_send_cq qpa with Some _ -> done2 := true | None -> ());
    ignore (Engine.run_until engine (fun () -> !done2));
    H.record h (Int64.sub (Engine.now engine) t0)
  done;
  H.quantile h 0.5

let run () =
  Report.header ~id:"E11: one-sided vs two-sided RDMA" ~source:"§5.1, §6"
    ~claim:
      "LibOS design choice: one-sided READs skip the server CPU but pay a\n\
       round trip per pointer hop; RPCs pay server CPU once. Neither\n\
       dominates — which is why the libOS must choose per workload.";
  let rpc = rpc_p50 () in
  let r1 = read_p50 ~reads_per_lookup:1 () in
  let r2 = read_p50 ~reads_per_lookup:2 () in
  let widths = [ 26; 12; 18 ] in
  Report.table widths
    [ "access method"; "p50 (ns)"; "server CPU/op (ns)" ]
    [
      [ "one-sided READ x1"; Report.ns r1; "0" ];
      [ "two-sided RPC"; Report.ns rpc; Report.ns cost.Cost.app_request ];
      [ "one-sided READ x2 (index)"; Report.ns r2; "0" ];
    ];
  Report.footnote
    "%d lookups of %d B values. Known-location READ wins; once a lookup\n\
     needs a second dependent READ, the RPC's single round trip competes.\n"
    rounds value_size
