(* Benchmark harness: one experiment per figure/table/claim of the
   paper (see DESIGN.md's experiment index), plus wall-clock
   micro-benchmarks of the library itself.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe e3 e7      # a subset
     dune exec bench/main.exe micro      # just the bechamel runs *)

let experiments =
  [
    ("e1", Exp1_datapath.run);
    ("e2", Exp2_categories.run);
    ("e3", Exp3_zerocopy.run);
    ("e4", Exp4_atomicity.run);
    ("e5", Exp5_wakeup.run);
    ("e6", Exp6_memory.run);
    ("e7", Exp7_stacks.run);
    ("e8", Exp8_offload.run);
    ("e9", Exp9_kv.run);
    ("e10", Exp10_storage.run);
    ("e11", Exp11_onesided.run);
    ("e12", Exp12_storage_offload.run);
    ("e13", Exp13_batching.run);
    ("e14", Exp14_shards.run);
    ("e15", Exp15_scenario.run);
    ("e16", Exp16_offload_hit.run);
    ("waitsmoke", Wait_smoke.run);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map String.lowercase_ascii names
    | _ -> List.map fst experiments
  in
  print_endline "Demikernel reproduction benchmark harness";
  print_endline "=========================================";
  Format.printf "cost model: %a@." Dk_sim.Cost.pp Dk_sim.Cost.default;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None -> Printf.eprintf "unknown experiment %S (skipped)\n" name)
    requested;
  (* Flush the last experiment's BENCH_<exp>.json. *)
  Report.finish ()
