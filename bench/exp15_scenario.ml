(* E15 — million-connection open-loop scenarios. The paper's argument
   is about what the OS layer must provide *under real load*: heavy
   tails, churn, fan-in, saturation — not closed-loop ping-pong. The
   loadgen layer models 10^5 connections as RSS-steered ids whose
   requests are multiplexed over real Demikernel trunks on N shards,
   with open-loop (Poisson / self-similar on-off) arrivals at a rate
   set relative to the world's calibrated capacity. Results are
   SLO-style: p50/p99/p99.9 of born-to-completion latency, explicit
   shed counts, and a goodput-vs-offered curve whose knee is the
   saturation point. The p99/p99.9 columns here are gated in CI
   against a committed baseline (tools/ci/bench_diff). *)

module Loadgen = Dk_loadgen.Loadgen
module Scenario = Dk_loadgen.Scenario
module H = Dk_sim.Histogram

let shards = 4
let seed = 42L
let sweep_mults = [ 0.5; 0.8; 0.95; 1.1; 1.4 ]
let sweep_duration_ms = 15

let kops v = Printf.sprintf "%.0f" (v /. 1e3)

let scenario_widths = [ 14; 7; 6; 9; 9; 8; 8; 12; 8; 8; 9; 6 ]

let scenario_row (s : Loadgen.stats) =
  [
    s.Loadgen.l_scenario;
    string_of_int s.Loadgen.l_conns;
    string_of_int s.Loadgen.l_shards;
    kops s.Loadgen.l_offered_rate;
    string_of_int s.Loadgen.l_offered;
    string_of_int s.Loadgen.l_shed;
    string_of_int s.Loadgen.l_churn;
    kops s.Loadgen.l_goodput;
    Report.ns (H.quantile s.Loadgen.l_lat 0.5);
    Report.ns (H.quantile s.Loadgen.l_lat 0.99);
    Report.ns (H.quantile s.Loadgen.l_lat 0.999);
    string_of_int
      (Array.fold_left
         (fun a p -> max a p.Loadgen.ls_qdepth_hwm)
         0 s.Loadgen.l_per_shard);
  ]

let scenario_rows () =
  List.map
    (fun scn -> scenario_row (Loadgen.run ~scn ~shards ~seed ()))
    Scenario.all

let sweep_widths = [ 5; 9; 9; 8; 12; 8; 8; 9 ]

let sweep_rows () =
  (* One calibration, shared across the sweep, so the x-axis is a clean
     multiple of a single capacity number. *)
  let scn =
    match Scenario.find "poisson-steady" with
    | Some s -> { s with Scenario.duration_ms = sweep_duration_ms }
    | None -> invalid_arg "E15: poisson-steady missing"
  in
  let capacity = Loadgen.calibrate ~scn ~shards ~seed in
  List.map
    (fun mult ->
      let s =
        Loadgen.run ~offered_rate:(capacity *. mult) ~scn ~shards ~seed ()
      in
      [
        Printf.sprintf "%.2f" mult;
        kops s.Loadgen.l_offered_rate;
        string_of_int s.Loadgen.l_offered;
        string_of_int s.Loadgen.l_shed;
        kops s.Loadgen.l_goodput;
        Report.ns (H.quantile s.Loadgen.l_lat 0.5);
        Report.ns (H.quantile s.Loadgen.l_lat 0.99);
        Report.ns (H.quantile s.Loadgen.l_lat 0.999);
      ])
    sweep_mults

let run () =
  Report.header ~id:"E15: open-loop scenario harness"
    ~source:"design: open-loop load, SLO tails (PAPERS.md \u{00b5}s-scale survey)"
    ~claim:
      "Open-loop load at 10^5 modeled connections over the real sharded \
       datapath: tails (p99/p99.9) and shed counts are first-class results, \
       and the goodput-vs-offered curve makes the saturation knee explicit \
       instead of letting a closed loop hide it.";
  print_endline "";
  Printf.printf "named scenarios (%d shards, seed %Ld, rate = mult x calibrated capacity):\n"
    shards seed;
  Report.table scenario_widths
    [
      "scenario"; "conns"; "shards"; "off(kops)"; "offered"; "dropped";
      "churned"; "goodput(kops)"; "p50(ns)"; "p99(ns)"; "p99.9(ns)"; "qhwm";
    ]
    (scenario_rows ());
  print_endline "";
  print_endline "goodput vs offered rate (poisson-steady shape, shared calibration):";
  Report.table sweep_widths
    [
      "mult"; "off(kops)"; "offered"; "dropped"; "goodput(kops)"; "p50(ns)";
      "p99(ns)"; "p99.9(ns)";
    ]
    (sweep_rows ());
  Report.footnote
    "Open loop: arrivals are decided by seeded RNG streams alone, so offered \
     load never slows down when the datapath saturates — beyond the knee, \
     goodput flattens at capacity, the bounded per-shard queues shed \
     (dropped), and p99/p99.9 jump by orders of magnitude while p50 barely \
     moves. Each modeled connection is an RSS-steered id multiplexed over \
     real per-shard Demikernel trunks; churn re-steers flows mid-run and \
     incast lands fan-in bursts on one shard.\n"
