(* E2 — Table 1: the three kernel-bypass accelerator categories, and
   where OS functionality runs for each. One ping-pong workload per
   category, same message size, reporting the division of labour and
   the measured round trip. *)

module Setup = Dk_apps.Sim_setup
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Rdma = Dk_device.Rdma
module Prog = Dk_device.Prog
module Sga = Dk_mem.Sga
module H = Dk_sim.Histogram

let rounds = 50
let size = 256

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

(* No accelerator at all: the same application on the kernel-fallback
   libOS ("Catnap"-style), paying legacy prices. *)
let fallback_class () =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
  let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
  let da = Demi.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost ~posix:pa () in
  let db = Demi.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost ~posix:pb () in
  ignore (Dk_apps.Echo.start_demi_server ~demi:db ~port:7);
  match
    Dk_apps.Echo.demi_rtt ~demi:da ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds
  with
  | Ok h -> H.quantile h 0.5
  | Error _ -> failwith "fallback-class run failed"

(* DPDK-class: raw NIC; the libOS supplies the entire network stack. *)
let dpdk_class () =
  let duo = Setup.two_hosts () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  ignore (Dk_apps.Echo.start_demi_server ~demi:db ~port:7);
  match
    Dk_apps.Echo.demi_rtt ~demi:da ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds
  with
  | Ok h -> H.quantile h 0.5
  | Error _ -> failwith "dpdk-class run failed"

(* RDMA-class: the device does reliable transport; the libOS supplies
   buffer management and flow control. *)
let rdma_class () =
  let engine = Engine.create () in
  let cost = Dk_sim.Cost.default in
  let na = Rdma.create ~engine ~cost () and nb = Rdma.create ~engine ~cost () in
  let da = Demi.create ~engine ~cost ~rdma:na () in
  let db = Demi.create ~engine ~cost ~rdma:nb () in
  let qpa = Rdma.create_qp na and qpb = Rdma.create_qp nb in
  Rdma.connect qpa qpb;
  let qa = Result.get_ok (Demi.rdma_endpoint da ~depth:16 qpa) in
  let qb = Result.get_ok (Demi.rdma_endpoint db ~depth:16 qpb) in
  let rec pong () =
    match Demi.pop db qb with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch db tok (function
          | Types.Popped sga ->
              (match Demi.push db qb sga with
              | Ok t -> Demi.watch db t (fun _ -> ())
              | Error _ -> ());
              pong ()
          | _ -> ())
  in
  pong ();
  let h = H.create () in
  let payload = String.make size 'r' in
  for _ = 1 to rounds do
    let sga = Result.get_ok (Demi.sga_alloc da payload) in
    let t0 = Engine.now engine in
    ignore (Demi.blocking_push da qa sga);
    (match Demi.blocking_pop da qa with
    | Types.Popped reply ->
        H.record h (Int64.sub (Engine.now engine) t0);
        Demi.sga_free da reply
    | _ -> ());
    Demi.sga_free da sga
  done;
  must (Demi.close da qa);
  H.quantile h 0.5

(* Programmable-class: as DPDK, plus an offloaded filter program that
   drops half the inbound traffic on-device. *)
let programmable_class () =
  let duo = Setup.two_hosts ~programmable:true () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  (* UDP ping-pong with a device-side filter on the server's queue *)
  let sqd = Result.get_ok (Demi.socket db `Udp) in
  must (Demi.bind db sqd ~port:9);
  let fq = Result.get_ok (Demi.filter db sqd (Prog.Prefix "P:")) in
  must (Demi.connect db fq ~dst:(Dk_net.Addr.endpoint duo.Setup.a.Setup.ip 10));
  let offloaded = Demi.filter_offloaded db fq in
  let rec pong () =
    match Demi.pop db fq with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch db tok (function
          | Types.Popped sga ->
              (match Demi.push db fq sga with
              | Ok t -> Demi.watch db t (fun _ -> ())
              | Error _ -> ());
              pong ()
          | _ -> ())
  in
  pong ();
  let cqd = Result.get_ok (Demi.socket da `Udp) in
  must (Demi.bind da cqd ~port:10);
  must (Demi.connect da cqd ~dst:(Setup.endpoint duo.Setup.b 9));
  let h = H.create () in
  let payload = "P:" ^ String.make (size - 2) 'p' in
  let engine = duo.Setup.engine in
  for _ = 1 to rounds do
    let t0 = Engine.now engine in
    ignore (Demi.blocking_push da cqd (Sga.of_string payload));
    match Demi.blocking_pop da cqd with
    | Types.Popped reply ->
        H.record h (Int64.sub (Engine.now engine) t0);
        Sga.free reply
    | _ -> ()
  done;
  must (Demi.close da cqd);
  (H.quantile h 0.5, offloaded)

let run () =
  Report.header ~id:"E2: accelerator categories" ~source:"Table 1"
    ~claim:
      "The same application runs unmodified on all three device classes; the\n\
       libOS implements whatever OS functionality the device lacks.";
  let dpdk = dpdk_class () in
  let rdma = rdma_class () in
  let prog, offloaded = programmable_class () in
  let fallback = fallback_class () in
  let widths = [ 22; 26; 26; 12 ] in
  Report.table widths
    [ "device class"; "device provides"; "libOS provides"; "p50 RTT(ns)" ]
    [
      [ "none (kernel fallback)"; "-"; "POSIX adapter"; Report.ns fallback ];
      [ "DPDK/SPDK (raw)"; "queues, DMA"; "TCP/IP stack, framing"; Report.ns dpdk ];
      [ "RDMA (+OS features)"; "reliable transport"; "buffers, flow control"; Report.ns rdma ];
      [ "FPGA/SoC (+other)"; "transport + programs"; "stack; compiles filters"; Report.ns prog ];
    ];
  Report.footnote
    "filter program ran on-device: %b (Table 1 right column). The same\n\
     application binary ran on all four rows, including the host with no\n\
     accelerator at all.\n"
    offloaded
