(* E13 — tx doorbell coalescing. Each MMIO doorbell write costs
   [Cost.pcie_doorbell] whether it announces one descriptor or sixteen;
   a submission stage that lets descriptors queued within one poll
   quantum share a ring amortizes that cost across the batch (the
   mTCP/batching lineage the paper's §3 discusses). We blast fixed-size
   UDP batches through [Demi.push_batch] across coalescing windows and
   report doorbells per operation and delivered-batch latency. *)

module Setup = Dk_apps.Sim_setup
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Sga = Dk_mem.Sga
module H = Dk_sim.Histogram

let batch = 16
let rounds = 150
let payload = String.make 64 'b'

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

(* One window setting: [rounds] batches of [batch] datagrams from a to
   b, each round timed from first push to last delivery. Returns
   (doorbell rings, ops, per-op latency histogram). *)
let run_case window =
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine in
  let da = Setup.demi_of_host ~engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine ~cost:duo.Setup.cost duo.Setup.b () in
  let sqd = Result.get_ok (Demi.socket db `Udp) in
  must (Demi.bind db sqd ~port:9);
  let delivered = ref 0 in
  let rec drain () =
    match Demi.pop db sqd with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch db tok (function
          | Types.Popped sga ->
              Sga.free sga;
              incr delivered;
              drain ()
          | _ -> ())
  in
  drain ();
  let cqd = Result.get_ok (Demi.socket da `Udp) in
  must (Demi.connect da cqd ~dst:(Setup.endpoint duo.Setup.b 9));
  Demi.set_batch_window da window;
  let h = H.create () in
  let doorbells0 = Dk_device.Nic.tx_doorbells duo.Setup.a.Setup.nic in
  let target = ref 0 in
  for _ = 1 to rounds do
    let t0 = Engine.now engine in
    let sgas = List.init batch (fun _ -> Sga.of_string payload) in
    let toks = must (Demi.push_batch da cqd sgas) in
    (match Demi.wait_all da toks with
    | Some _ -> ()
    | None -> failwith "push batch deadlocked");
    target := !target + batch;
    if not (Engine.run_until engine (fun () -> !delivered >= !target)) then
      failwith "batch never delivered";
    let elapsed = Int64.sub (Engine.now engine) t0 in
    H.record h (Int64.div elapsed (Int64.of_int batch))
  done;
  Engine.run engine;
  must (Demi.close da cqd);
  let rings = Dk_device.Nic.tx_doorbells duo.Setup.a.Setup.nic - doorbells0 in
  (rings, rounds * batch, h)

let run () =
  Report.header ~id:"E13: tx doorbell coalescing" ~source:"§3 (batching)"
    ~claim:
      "An MMIO doorbell costs the same for 1 or 16 descriptors; a submission\n\
       stage that coalesces rings within a window amortizes it across the\n\
       batch without hurting delivered latency.";
  let widths = [ 11; 11; 13; 10; 10; 10 ] in
  let rows =
    List.map
      (fun window ->
        let rings, ops, h = run_case window in
        [
          Printf.sprintf "%Ld" window;
          string_of_int rings;
          Printf.sprintf "%.3f" (float_of_int rings /. float_of_int ops);
          Report.ns (H.quantile h 0.5);
          Report.ns (H.quantile h 0.99);
          Printf.sprintf "%.1fx"
            (float_of_int ops /. float_of_int (max 1 rings));
        ])
      [ 0L; 200L; 1000L; 5000L ]
  in
  Report.table widths
    [ "window(ns)"; "doorbells"; "doorbells/op"; "p50(ns)"; "p99(ns)"; "amort" ]
    rows;
  Report.footnote
    "%d rounds of %d-datagram batches (%d B each); per-op latency is the\n\
     round's first-push-to-last-delivery time divided by the batch size.\n"
    rounds batch (String.length payload)
