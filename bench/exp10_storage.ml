(* E10 — §5.3: an accelerator-specific storage layout. 4 KB record
   appends and sequential scans: the Demikernel log-structured file
   queue straight on the NVMe-class device vs the same records through
   the simulated kernel's VFS (syscall + VFS overhead + copies +
   interrupt wakeups). *)

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Vfs = Dk_kernel.Vfs
module Sga = Dk_mem.Sga
module H = Dk_sim.Histogram

let cost = Cost.default
let records = 100
let record_size = 4000 (* leaves room for framing within one block *)

let demi_storage () =
  let engine = Engine.create () in
  let block = Dk_device.Block.create ~engine ~cost () in
  let demi = Demi.create ~engine ~cost ~block () in
  let qd = Result.get_ok (Demi.fcreate demi "bench.log") in
  let append = H.create () and scan = H.create () in
  let payload = String.make record_size 'd' in
  for _ = 1 to records do
    let t0 = Engine.now engine in
    (match Demi.blocking_push demi qd (Sga.of_string payload) with
    | Types.Pushed -> ()
    | _ -> failwith "append failed");
    H.record append (Int64.sub (Engine.now engine) t0)
  done;
  for _ = 1 to records do
    let t0 = Engine.now engine in
    (match Demi.blocking_pop demi qd with
    | Types.Popped _ -> ()
    | _ -> failwith "scan failed");
    H.record scan (Int64.sub (Engine.now engine) t0)
  done;
  (match Demi.close demi qd with
  | Ok () -> ()
  | Error e -> failwith (Types.error_to_string e));
  (append, scan)

let vfs_storage () =
  let engine = Engine.create () in
  let block = Dk_device.Block.create ~engine ~cost () in
  let vfs = Vfs.create ~engine ~cost ~block () in
  ignore (Vfs.creat vfs "bench.dat");
  let append = H.create () and scan = H.create () in
  let payload = String.make record_size 'v' in
  for i = 0 to records - 1 do
    let t0 = Engine.now engine in
    let finished = ref false in
    Vfs.write vfs ~path:"bench.dat" ~off:(i * record_size) payload (fun _ ->
        finished := true);
    ignore (Engine.run_until engine (fun () -> !finished));
    H.record append (Int64.sub (Engine.now engine) t0)
  done;
  for i = 0 to records - 1 do
    let t0 = Engine.now engine in
    let finished = ref false in
    Vfs.read vfs ~path:"bench.dat" ~off:(i * record_size) ~len:record_size
      (fun _ -> finished := true);
    ignore (Engine.run_until engine (fun () -> !finished));
    H.record scan (Int64.sub (Engine.now engine) t0)
  done;
  (append, scan)

let run () =
  Report.header ~id:"E10: storage layouts" ~source:"§5.3"
    ~claim:
      "A libOS-specific log layout on the raw device avoids the kernel's\n\
       storage stack entirely; the trade-off is that only a compatible\n\
       libOS can read the data.";
  let da, ds = demi_storage () in
  let va, vs = vfs_storage () in
  let widths = [ 22; 16; 16; 9 ] in
  Report.table widths
    [ "operation"; "vfs p50(ns)"; "demi p50(ns)"; "speedup" ]
    [
      [
        "append 4KB (durable)";
        Report.ns (H.quantile va 0.5);
        Report.ns (H.quantile da 0.5);
        Report.ratio (H.quantile va 0.5) (H.quantile da 0.5);
      ];
      [
        "sequential read 4KB";
        Report.ns (H.quantile vs 0.5);
        Report.ns (H.quantile ds 0.5);
        Report.ratio (H.quantile vs 0.5) (H.quantile ds 0.5);
      ];
    ];
  Report.footnote
    "%d records; both paths wait for flash durability. The VFS adds\n\
     syscall + VFS bookkeeping + two boundary copies + interrupt wakeup.\n"
    records
