(* Tests for the simulated legacy kernel: pipes, POSIX sockets, epoll
   (polling and blocking), the VFS, and the mTCP model. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Kpipe = Dk_kernel.Kpipe
module Posix = Dk_kernel.Posix
module Vfs = Dk_kernel.Vfs
module Mtcp = Dk_kernel.Mtcp
module Setup = Dk_apps.Sim_setup

let cost = Cost.default

(* ---------------- Kpipe ---------------- *)

let pipe_stream_semantics () =
  let p = Kpipe.create () in
  ignore (Kpipe.write p "msg1");
  ignore (Kpipe.write p "msg2");
  (* boundaries lost: one read can return both *)
  check_str "merged stream" "msg1msg2" (Kpipe.read p 100)

let pipe_backpressure () =
  let p = Kpipe.create ~capacity:4 () in
  check_int "partial write" 4 (Kpipe.write p "toolong");
  check_int "full" 0 (Kpipe.write p "x");
  check_str "kept" "tool" (Kpipe.read p 10)

let pipe_eof () =
  let p = Kpipe.create () in
  ignore (Kpipe.write p "last");
  Kpipe.close_write p;
  check_bool "not eof yet" false (Kpipe.eof p);
  check_str "drain" "last" (Kpipe.read p 10);
  check_bool "eof" true (Kpipe.eof p)

(* ---------------- Posix sockets ---------------- *)

let posix_pair () =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa =
    Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a
  in
  let pb =
    Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b
  in
  (duo, pa, pb)

let posix_connect_accept_read_write () =
  let duo, pa, pb = posix_pair () in
  let engine = duo.Setup.engine in
  let ls = Posix.socket pb in
  check_bool "listen" true (Posix.listen pb ls ~port:80 = Ok ());
  let cs = Posix.socket pa in
  check_bool "connect" true
    (Posix.connect pa cs ~dst:(Setup.endpoint duo.Setup.b 80) = Ok ());
  ignore (Engine.run_until engine (fun () -> Posix.connected pa cs));
  (* accept on the server *)
  ignore (Engine.run_until engine (fun () -> Posix.readable pb ls));
  let sfd =
    match Posix.accept pb ls with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "accept"
  in
  (* client -> server *)
  (match Posix.write pa cs "kernel path" with
  | Ok n -> check_int "wrote all" 11 n
  | Error _ -> Alcotest.fail "write");
  ignore (Engine.run_until engine (fun () -> Posix.readable pb sfd));
  let buf = Bytes.create 64 in
  (match Posix.read pb sfd buf 0 64 with
  | Ok n -> check_str "read" "kernel path" (Bytes.sub_string buf 0 n)
  | Error _ -> Alcotest.fail "read");
  (* EAGAIN on empty socket *)
  check_bool "eagain" true (Posix.read pb sfd buf 0 64 = Error `Again)

let posix_costs_charged () =
  (* the kernel path must charge syscalls and copies *)
  let duo, pa, pb = posix_pair () in
  let engine = duo.Setup.engine in
  let ls = Posix.socket pb in
  ignore (Posix.listen pb ls ~port:80);
  let cs = Posix.socket pa in
  ignore (Posix.connect pa cs ~dst:(Setup.endpoint duo.Setup.b 80));
  ignore (Engine.run_until engine (fun () -> Posix.connected pa cs));
  let before = Posix.stats pa in
  let payload = String.make 4096 'c' in
  ignore (Posix.write pa cs payload);
  let after = Posix.stats pa in
  check_bool "syscall counted" true (after.Posix.syscalls > before.Posix.syscalls);
  check_int "bytes copied" 4096
    (after.Posix.bytes_copied - before.Posix.bytes_copied)

let posix_eof_on_close () =
  let duo, pa, pb = posix_pair () in
  let engine = duo.Setup.engine in
  let ls = Posix.socket pb in
  ignore (Posix.listen pb ls ~port:80);
  let cs = Posix.socket pa in
  ignore (Posix.connect pa cs ~dst:(Setup.endpoint duo.Setup.b 80));
  ignore (Engine.run_until engine (fun () -> Posix.readable pb ls));
  let sfd = Result.get_ok (Posix.accept pb ls) in
  Posix.close pa cs;
  ignore (Engine.run_until engine (fun () -> Posix.readable pb sfd));
  let buf = Bytes.create 8 in
  check_bool "eof" true (Posix.read pb sfd buf 0 8 = Ok 0)

let posix_pipe_fds () =
  let duo, pa, _ = posix_pair () in
  ignore duo;
  let r, w = Posix.pipe pa in
  (match Posix.write pa w "through the kernel" with
  | Ok n -> check_int "wrote" 18 n
  | Error _ -> Alcotest.fail "pipe write");
  let buf = Bytes.create 64 in
  (match Posix.read pa r buf 0 64 with
  | Ok n -> check_str "read" "through the kernel" (Bytes.sub_string buf 0 n)
  | Error _ -> Alcotest.fail "pipe read");
  check_bool "empty again" true (Posix.read pa r buf 0 64 = Error `Again);
  Posix.close pa w;
  (* write end closed and drained: EOF *)
  check_bool "eof" true (Posix.read pa r buf 0 64 = Ok 0)

let posix_bad_fds () =
  let _, pa, _ = posix_pair () in
  let buf = Bytes.create 4 in
  check_bool "read bad fd" true (Posix.read pa 999 buf 0 4 = Error `Bad_fd);
  check_bool "write bad fd" true (Posix.write pa 999 "x" = Error `Bad_fd);
  check_bool "accept bad fd" true
    (match Posix.accept pa 999 with Error `Bad_fd -> true | _ -> false);
  let r, _ = Posix.pipe pa in
  check_bool "write to read end" true
    (Posix.write pa r "x" = Error `Not_supported)

(* ---------------- epoll ---------------- *)

let epoll_level_triggered () =
  let duo, pa, pb = posix_pair () in
  let engine = duo.Setup.engine in
  let ls = Posix.socket pb in
  ignore (Posix.listen pb ls ~port:80);
  let cs = Posix.socket pa in
  ignore (Posix.connect pa cs ~dst:(Setup.endpoint duo.Setup.b 80));
  ignore (Engine.run_until engine (fun () -> Posix.readable pb ls));
  let sfd = Result.get_ok (Posix.accept pb ls) in
  let ep = Posix.epoll_create pb in
  check_bool "add ok" true (Posix.epoll_add pb ep sfd [ `In ] = Ok ());
  check_int "nothing ready" 0 (List.length (Posix.epoll_wait pb ep ~max:8));
  ignore (Posix.write pa cs "wake");
  ignore (Engine.run_until engine (fun () -> Posix.readable pb sfd));
  (match Posix.epoll_wait pb ep ~max:8 with
  | [ (fd, `In) ] -> check_int "right fd" sfd fd
  | _ -> Alcotest.fail "expected one ready event");
  (* level triggered: still ready until drained *)
  check_int "still ready" 1 (List.length (Posix.epoll_wait pb ep ~max:8))

let epoll_blocking_wakeup () =
  let duo, pa, pb = posix_pair () in
  let engine = duo.Setup.engine in
  let ls = Posix.socket pb in
  ignore (Posix.listen pb ls ~port:80);
  let ep = Posix.epoll_create pb in
  ignore (Posix.epoll_add pb ep ls [ `In ]);
  let woke = ref None in
  Posix.epoll_wait_block pb ep ~max:8 (fun evs -> woke := Some evs);
  check_bool "blocked" true (!woke = None);
  (* a connection arrives; the waiter must wake *)
  let cs = Posix.socket pa in
  ignore (Posix.connect pa cs ~dst:(Setup.endpoint duo.Setup.b 80));
  ignore (Engine.run_until engine (fun () -> !woke <> None));
  match !woke with
  | Some [ (fd, `In) ] -> check_int "listener ready" ls fd
  | _ -> Alcotest.fail "expected wakeup with listener event"

let epoll_wakeup_costs_context_switch () =
  let duo, pa, pb = posix_pair () in
  let engine = duo.Setup.engine in
  let ls = Posix.socket pb in
  ignore (Posix.listen pb ls ~port:80);
  let ep = Posix.epoll_create pb in
  ignore (Posix.epoll_add pb ep ls [ `In ]);
  let woke_at = ref None in
  Posix.epoll_wait_block pb ep ~max:8 (fun _ -> woke_at := Some (Engine.now engine));
  let cs = Posix.socket pa in
  ignore (Posix.connect pa cs ~dst:(Setup.endpoint duo.Setup.b 80));
  ignore (Engine.run_until engine (fun () -> !woke_at <> None));
  (* the wakeup happened strictly after the connect flowed through plus
     a context switch; just assert it's not instantaneous *)
  check_bool "wakeup delayed" true
    (match !woke_at with
    | Some t -> Int64.compare t cost.Cost.context_switch >= 0
    | None -> false)

(* ---------------- VFS ---------------- *)

let vfs_setup () =
  let engine = Engine.create () in
  let block = Dk_device.Block.create ~engine ~cost () in
  let vfs = Vfs.create ~engine ~cost ~block () in
  (engine, vfs)

let vfs_write_read () =
  let engine, vfs = vfs_setup () in
  check_bool "creat" true (Vfs.creat vfs "file" = Ok ());
  let wrote = ref None in
  Vfs.write vfs ~path:"file" ~off:0 "hello vfs" (fun r -> wrote := Some r);
  ignore (Engine.run_until engine (fun () -> !wrote <> None));
  check_bool "write ok" true (!wrote = Some (Ok 9));
  let got = ref None in
  Vfs.read vfs ~path:"file" ~off:0 ~len:100 (fun r -> got := Some r);
  ignore (Engine.run_until engine (fun () -> !got <> None));
  check_bool "read back" true (!got = Some (Ok "hello vfs"))

let vfs_cross_block_write () =
  let engine, vfs = vfs_setup () in
  ignore (Vfs.creat vfs "big");
  let data = String.init 10000 (fun i -> Char.chr (i land 0xff)) in
  let wrote = ref None in
  Vfs.write vfs ~path:"big" ~off:0 data (fun r -> wrote := Some r);
  ignore (Engine.run_until engine (fun () -> !wrote <> None));
  let got = ref None in
  Vfs.read vfs ~path:"big" ~off:1234 ~len:5000 (fun r -> got := Some r);
  ignore (Engine.run_until engine (fun () -> !got <> None));
  check_bool "middle range intact" true
    (!got = Some (Ok (String.sub data 1234 5000)))

let vfs_errors () =
  let engine, vfs = vfs_setup () in
  ignore (Vfs.creat vfs "f");
  check_bool "exists" true (Vfs.creat vfs "f" = Error `Exists);
  let r = ref None in
  Vfs.read vfs ~path:"ghost" ~off:0 ~len:1 (fun x -> r := Some x);
  ignore (Engine.run_until engine (fun () -> !r <> None));
  check_bool "no such file" true (!r = Some (Error `No_such_file));
  check_bool "unlink" true (Vfs.unlink vfs "f" = Ok ());
  check_bool "unlink gone" true (Vfs.unlink vfs "f" = Error `No_such_file)

let vfs_fsync () =
  let engine, vfs = vfs_setup () in
  ignore (Vfs.creat vfs "f");
  let synced = ref false and wrote = ref false in
  Vfs.write vfs ~path:"f" ~off:0 "data" (fun _ -> wrote := true);
  Vfs.fsync vfs ~path:"f" (fun _ -> synced := true);
  check_bool "not synced yet" false !synced;
  ignore (Engine.run_until engine (fun () -> !synced));
  check_bool "write completed first" true !wrote

let vfs_charges_more_than_bypass () =
  (* one 4K VFS write must cost more virtual time than one raw block
     write: syscall + vfs + copy + interrupt vs doorbell only *)
  let engine, vfs = vfs_setup () in
  ignore (Vfs.creat vfs "f");
  let t0 = Engine.now engine in
  let wrote = ref false in
  Vfs.write vfs ~path:"f" ~off:0 (String.make 4096 'x') (fun _ -> wrote := true);
  ignore (Engine.run_until engine (fun () -> !wrote));
  let vfs_ns = Int64.sub (Engine.now engine) t0 in
  (* raw device write *)
  let engine2 = Engine.create () in
  let block2 = Dk_device.Block.create ~engine:engine2 ~cost () in
  let t1 = Engine.now engine2 in
  ignore (Dk_device.Block.submit_write block2 ~wr_id:1 ~lba:0 (String.make 4096 'x'));
  Engine.run engine2;
  let raw_ns = Int64.sub (Engine.now engine2) t1 in
  check_bool "vfs slower than raw" true (Int64.compare vfs_ns raw_ns > 0)

(* ---------------- mTCP ---------------- *)

let mtcp_roundtrip () =
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine in
  let ma = Setup.mtcp_of_host ~engine ~cost:duo.Setup.cost duo.Setup.a in
  let mb = Setup.mtcp_of_host ~engine ~cost:duo.Setup.cost duo.Setup.b in
  check_bool "listen" true
    (Dk_apps.Echo.start_mtcp_server ~mtcp:mb ~port:7 = Ok ());
  let hist =
    Dk_apps.Echo.mtcp_rtt ~mtcp:ma ~engine ~dst:(Setup.endpoint duo.Setup.b 7)
      ~size:64 ~rounds:10
  in
  check_int "ten rounds" 10 (Dk_sim.Histogram.count hist)

let vfs_device_busy () =
  let engine = Engine.create () in
  let block = Dk_device.Block.create ~engine ~cost ~sq_depth:1 () in
  let vfs = Vfs.create ~engine ~cost ~block () in
  ignore (Vfs.creat vfs "f");
  let r1 = ref None and r2 = ref None in
  Vfs.write vfs ~path:"f" ~off:0 "one" (fun r -> r1 := Some r);
  (* second write while the device queue is full *)
  Vfs.write vfs ~path:"f" ~off:4096 "two" (fun r -> r2 := Some r);
  ignore (Engine.run_until engine (fun () -> !r1 <> None && !r2 <> None));
  check_bool "first landed" true (!r1 = Some (Ok 3));
  check_bool "second rejected busy" true (!r2 = Some (Error `Device_busy))

let mtcp_copies_charged () =
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine in
  let ma = Setup.mtcp_of_host ~engine ~cost:duo.Setup.cost duo.Setup.a in
  let mb = Setup.mtcp_of_host ~engine ~cost:duo.Setup.cost duo.Setup.b in
  ignore (Dk_apps.Echo.start_mtcp_server ~mtcp:mb ~port:7);
  ignore
    (Dk_apps.Echo.mtcp_rtt ~mtcp:ma ~engine ~dst:(Setup.endpoint duo.Setup.b 7)
       ~size:1024 ~rounds:5);
  (* POSIX-style semantics: data crossed the API by copy, twice per rtt *)
  check_bool "copies charged" true (Mtcp.bytes_copied ma >= 2 * 5 * 1024)

let mtcp_latency_exceeds_batch_delays () =
  (* each direction adds a batch delay: RTT >= 2 batches *)
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine in
  let ma = Setup.mtcp_of_host ~engine ~cost:duo.Setup.cost duo.Setup.a in
  let mb = Setup.mtcp_of_host ~engine ~cost:duo.Setup.cost duo.Setup.b in
  ignore (Dk_apps.Echo.start_mtcp_server ~mtcp:mb ~port:7 = Ok ());
  let hist =
    Dk_apps.Echo.mtcp_rtt ~mtcp:ma ~engine ~dst:(Setup.endpoint duo.Setup.b 7)
      ~size:64 ~rounds:5
  in
  let floor = Int64.mul 2L cost.Cost.mtcp_batch_delay in
  check_bool "rtt over 2 batch delays" true
    (Int64.compare (Dk_sim.Histogram.min hist) floor >= 0)

let () =
  Alcotest.run "dk_kernel"
    [
      ( "kpipe",
        [
          Alcotest.test_case "stream semantics" `Quick pipe_stream_semantics;
          Alcotest.test_case "backpressure" `Quick pipe_backpressure;
          Alcotest.test_case "eof" `Quick pipe_eof;
        ] );
      ( "posix",
        [
          Alcotest.test_case "connect/accept/io" `Quick posix_connect_accept_read_write;
          Alcotest.test_case "costs charged" `Quick posix_costs_charged;
          Alcotest.test_case "eof on close" `Quick posix_eof_on_close;
          Alcotest.test_case "pipe fds" `Quick posix_pipe_fds;
          Alcotest.test_case "bad fds" `Quick posix_bad_fds;
        ] );
      ( "epoll",
        [
          Alcotest.test_case "level triggered" `Quick epoll_level_triggered;
          Alcotest.test_case "blocking wakeup" `Quick epoll_blocking_wakeup;
          Alcotest.test_case "wakeup cost" `Quick epoll_wakeup_costs_context_switch;
        ] );
      ( "vfs",
        [
          Alcotest.test_case "write/read" `Quick vfs_write_read;
          Alcotest.test_case "cross-block" `Quick vfs_cross_block_write;
          Alcotest.test_case "errors" `Quick vfs_errors;
          Alcotest.test_case "fsync barrier" `Quick vfs_fsync;
          Alcotest.test_case "device busy" `Quick vfs_device_busy;
          Alcotest.test_case "dearer than bypass" `Quick vfs_charges_more_than_bypass;
        ] );
      ( "mtcp",
        [
          Alcotest.test_case "roundtrip" `Quick mtcp_roundtrip;
          Alcotest.test_case "copies charged" `Quick mtcp_copies_charged;
          Alcotest.test_case "batch latency floor" `Quick mtcp_latency_exceeds_batch_delays;
        ] );
    ]
