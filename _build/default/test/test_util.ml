(* Unit and property tests for dk_util: ring buffer, heap, checksum,
   crc32, varint, bitset, bounded queue, hexdump. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_str = check Alcotest.string
let check_bool = check Alcotest.bool

(* ---------------- Ring ---------------- *)

module Ring = Dk_util.Ring

let ring_basic () =
  let r = Ring.create 8 in
  check_int "capacity" 8 (Ring.capacity r);
  check_int "empty length" 0 (Ring.length r);
  check_bool "is_empty" true (Ring.is_empty r);
  check_int "write 5" 5 (Ring.write_string r "hello");
  check_int "length 5" 5 (Ring.length r);
  check_int "available 3" 3 (Ring.available r);
  check_str "read back" "hello" (Ring.read_all r);
  check_bool "empty again" true (Ring.is_empty r)

let ring_overflow () =
  let r = Ring.create 4 in
  check_int "partial write" 4 (Ring.write_string r "abcdef");
  check_bool "is_full" true (Ring.is_full r);
  check_int "no more" 0 (Ring.write_string r "x");
  check_str "kept prefix" "abcd" (Ring.read_all r)

let ring_wraparound () =
  let r = Ring.create 4 in
  ignore (Ring.write_string r "ab");
  check_str "first" "ab" (Ring.read_all r);
  (* head is now at 2; writing 4 bytes wraps *)
  check_int "wrap write" 4 (Ring.write_string r "wxyz");
  check_str "wrapped read" "wxyz" (Ring.read_all r)

let ring_peek_drop () =
  let r = Ring.create 8 in
  ignore (Ring.write_string r "abcdef");
  let buf = Bytes.create 3 in
  check_int "peek 3" 3 (Ring.peek r buf 0 3);
  check_str "peeked" "abc" (Bytes.to_string buf);
  check_int "length unchanged" 6 (Ring.length r);
  check_int "drop 2" 2 (Ring.drop r 2);
  check_str "after drop" "cdef" (Ring.read_all r)

let ring_partial_read () =
  let r = Ring.create 8 in
  ignore (Ring.write_string r "abc");
  let buf = Bytes.create 8 in
  check_int "short read" 3 (Ring.read r buf 0 8)

let ring_clear () =
  let r = Ring.create 8 in
  ignore (Ring.write_string r "abc");
  Ring.clear r;
  check_int "cleared" 0 (Ring.length r)

let ring_invalid () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Ring.create: capacity must be positive")
    (fun () -> ignore (Ring.create 0))

(* Property: a ring behaves like a FIFO byte queue. *)
let ring_fifo_model =
  QCheck.Test.make ~name:"ring matches FIFO model" ~count:300
    QCheck.(pair (int_bound 200) (small_list (pair (string_of_size Gen.(0 -- 20)) (int_bound 20))))
    (fun (cap_raw, script) ->
      let cap = max 1 cap_raw in
      let r = Ring.create cap in
      let model = Stdlib.Buffer.create 64 in
      let model_read = ref 0 in
      List.iter
        (fun (write, read_n) ->
          let wrote = Ring.write_string r write in
          (* model: only the accepted prefix enters *)
          Stdlib.Buffer.add_string model (String.sub write 0 wrote);
          let buf = Bytes.create read_n in
          let got = Ring.read r buf 0 read_n in
          let expected =
            String.sub (Stdlib.Buffer.contents model) !model_read got
          in
          model_read := !model_read + got;
          if not (String.equal expected (Bytes.sub_string buf 0 got)) then
            QCheck.Test.fail_reportf "read mismatch: %S vs %S" expected
              (Bytes.sub_string buf 0 got))
        script;
      let remaining =
        String.sub
          (Stdlib.Buffer.contents model)
          !model_read
          (Stdlib.Buffer.length model - !model_read)
      in
      String.equal remaining (Ring.read_all r))

(* ---------------- Heap ---------------- *)

module Heap = Dk_util.Heap

let heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h (Int64.of_int k) k) [ 5; 3; 9; 1; 7 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 3; 5; 7; 9 ] (List.rev !order)

let heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 5L "a";
  Heap.push h 5L "b";
  Heap.push h 5L "c";
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  check_str "first" "a" (pop ());
  check_str "second" "b" (pop ());
  check_str "third" "c" (pop ())

let heap_min_peek () =
  let h = Heap.create () in
  check_bool "empty min" true (Heap.min h = None);
  Heap.push h 9L "x";
  Heap.push h 2L "y";
  (match Heap.min h with
  | Some (k, v) ->
      check_int "min key" 2 (Int64.to_int k);
      check_str "min value" "y" v
  | None -> Alcotest.fail "expected min");
  check_int "length" 2 (Heap.length h)

let heap_sorted_prop =
  QCheck.Test.make ~name:"heap drains sorted" ~count:300
    QCheck.(small_list int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h (Int64.of_int k) k) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let out = drain [] in
      out = List.stable_sort compare keys)

(* ---------------- Checksum ---------------- *)

module Checksum = Dk_util.Checksum

let checksum_known () =
  (* RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, cksum 0x220d *)
  let data = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check_int "rfc1071" 0x220d (Checksum.compute data 0 8)

let checksum_verify_roundtrip () =
  (* Even-length region: the appended checksum must land on a 16-bit
     boundary for the fold-to-zero property to hold. *)
  let data = Bytes.of_string "\x45\x00\x00\x1cHELLO world padding." in
  let c = Checksum.compute data 0 (Bytes.length data) in
  (* Append the checksum and verify over the whole thing *)
  let whole = Bytes.create (Bytes.length data + 2) in
  Bytes.blit data 0 whole 0 (Bytes.length data);
  Bytes.set whole (Bytes.length data) (Char.chr (c lsr 8));
  Bytes.set whole (Bytes.length data + 1) (Char.chr (c land 0xff));
  check_bool "verifies" true (Checksum.verify whole 0 (Bytes.length whole))

let checksum_odd_length () =
  let data = Bytes.of_string "abc" in
  let c = Checksum.compute data 0 3 in
  check_bool "in range" true (c >= 0 && c <= 0xffff)

let checksum_verify_prop =
  QCheck.Test.make ~name:"checksum verify detects single-bit flips" ~count:200
    QCheck.(string_of_size Gen.(2 -- 64))
    (fun s ->
      QCheck.assume (String.length s mod 2 = 0);
      let data = Bytes.of_string s in
      let c = Checksum.compute data 0 (Bytes.length data) in
      let whole = Bytes.create (Bytes.length data + 2) in
      Bytes.blit data 0 whole 0 (Bytes.length data);
      Bytes.set whole (Bytes.length data) (Char.chr (c lsr 8));
      Bytes.set whole (Bytes.length data + 1) (Char.chr (c land 0xff));
      Checksum.verify whole 0 (Bytes.length whole))

(* ---------------- Crc32 ---------------- *)

let crc32_known () =
  (* Standard test vector: crc32("123456789") = 0xCBF43926 *)
  check (Alcotest.int32) "123456789" 0xCBF43926l
    (Dk_util.Crc32.digest_string "123456789");
  check (Alcotest.int32) "empty" 0l (Dk_util.Crc32.digest_string "")

let crc32_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Dk_util.Crc32.digest_string s in
  let b = Bytes.of_string s in
  let half = String.length s / 2 in
  let part1 = Dk_util.Crc32.digest b 0 half in
  let part2 = Dk_util.Crc32.digest ~init:part1 b half (String.length s - half) in
  check (Alcotest.int32) "incremental equals whole" whole part2

(* ---------------- Varint ---------------- *)

module Varint = Dk_util.Varint

let varint_known () =
  let enc v =
    let b = Stdlib.Buffer.create 8 in
    Varint.write b v;
    Stdlib.Buffer.contents b
  in
  check_str "0" "\x00" (enc 0);
  check_str "127" "\x7f" (enc 127);
  check_str "128" "\x80\x01" (enc 128);
  check_str "300" "\xac\x02" (enc 300)

let varint_truncated () =
  check_bool "incomplete returns None" true
    (Varint.read (Bytes.of_string "\x80") 0 = None);
  check_bool "empty returns None" true (Varint.read (Bytes.of_string "") 0 = None)

let varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound max_int)
    (fun v ->
      let b = Stdlib.Buffer.create 10 in
      Varint.write b v;
      let s = Stdlib.Buffer.contents b in
      String.length s = Varint.encoded_size v
      &&
      match Varint.read (Bytes.of_string s) 0 with
      | Some (v', used) -> v = v' && used = String.length s
      | None -> false)

(* ---------------- Bitset ---------------- *)

module Bitset = Dk_util.Bitset

let bitset_basic () =
  let b = Bitset.create 100 in
  check_int "size" 100 (Bitset.size b);
  check_bool "not mem" false (Bitset.mem b 63);
  Bitset.set b 63;
  check_bool "mem" true (Bitset.mem b 63);
  check_int "cardinal" 1 (Bitset.cardinal b);
  Bitset.set b 63;
  check_int "idempotent set" 1 (Bitset.cardinal b);
  Bitset.unset b 63;
  check_bool "unset" false (Bitset.mem b 63)

let bitset_first_clear () =
  let b = Bitset.create 4 in
  check_bool "first clear 0" true (Bitset.first_clear b = Some 0);
  Bitset.set b 0;
  Bitset.set b 1;
  check_bool "first clear 2" true (Bitset.first_clear b = Some 2);
  Bitset.set b 2;
  Bitset.set b 3;
  check_bool "full" true (Bitset.first_clear b = None)

let bitset_cross_word () =
  let b = Bitset.create 200 in
  for i = 0 to 149 do
    Bitset.set b i
  done;
  check_bool "first clear 150" true (Bitset.first_clear b = Some 150);
  let seen = ref 0 in
  Bitset.iter_set (fun _ -> incr seen) b;
  check_int "iter count" 150 !seen

let bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set b 10)

(* Property: bitset agrees with a set-of-ints model. *)
let bitset_model_prop =
  QCheck.Test.make ~name:"bitset matches set model" ~count:200
    QCheck.(small_list (pair bool (int_bound 199)))
    (fun script ->
      let b = Bitset.create 200 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (set_it, i) ->
          if set_it then begin
            Bitset.set b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.unset b i;
            Hashtbl.remove model i
          end)
        script;
      let ok = ref (Bitset.cardinal b = Hashtbl.length model) in
      for i = 0 to 199 do
        if Bitset.mem b i <> Hashtbl.mem model i then ok := false
      done;
      (* first_clear agrees with the model's first absent index *)
      let rec first_absent i =
        if i >= 200 then None
        else if not (Hashtbl.mem model i) then Some i
        else first_absent (i + 1)
      in
      !ok && Bitset.first_clear b = first_absent 0)

(* ---------------- Bqueue ---------------- *)

module Bqueue = Dk_util.Bqueue

let bqueue_basic () =
  let q = Bqueue.create 2 in
  check_bool "push 1" true (Bqueue.push q 1);
  check_bool "push 2" true (Bqueue.push q 2);
  check_bool "push 3 fails" false (Bqueue.push q 3);
  check_bool "peek" true (Bqueue.peek q = Some 1);
  check_bool "pop 1" true (Bqueue.pop q = Some 1);
  check_bool "pop 2" true (Bqueue.pop q = Some 2);
  check_bool "pop empty" true (Bqueue.pop q = None)

(* ---------------- Hexdump ---------------- *)

let hexdump_simple () =
  let out = Dk_util.Hexdump.to_string "ABC" in
  (* 41 42 43 must appear *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec loop i = i + nl <= hl && (String.sub hay i nl = needle || loop (i + 1)) in
    loop 0
  in
  check_bool "hex bytes present" true (contains out "41 42 43");
  check_bool "ascii present" true (contains out "|ABC|");
  check_str "empty" "(empty)" (Dk_util.Hexdump.to_string "")

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dk_util"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick ring_basic;
          Alcotest.test_case "overflow" `Quick ring_overflow;
          Alcotest.test_case "wraparound" `Quick ring_wraparound;
          Alcotest.test_case "peek/drop" `Quick ring_peek_drop;
          Alcotest.test_case "partial read" `Quick ring_partial_read;
          Alcotest.test_case "clear" `Quick ring_clear;
          Alcotest.test_case "invalid" `Quick ring_invalid;
        ] );
      qsuite "ring-props" [ ring_fifo_model ];
      ( "heap",
        [
          Alcotest.test_case "order" `Quick heap_order;
          Alcotest.test_case "fifo ties" `Quick heap_fifo_ties;
          Alcotest.test_case "min peek" `Quick heap_min_peek;
        ] );
      qsuite "heap-props" [ heap_sorted_prop ];
      ( "checksum",
        [
          Alcotest.test_case "known vector" `Quick checksum_known;
          Alcotest.test_case "verify roundtrip" `Quick checksum_verify_roundtrip;
          Alcotest.test_case "odd length" `Quick checksum_odd_length;
        ] );
      qsuite "checksum-props" [ checksum_verify_prop ];
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick crc32_known;
          Alcotest.test_case "incremental" `Quick crc32_incremental;
        ] );
      ( "varint",
        [
          Alcotest.test_case "known encodings" `Quick varint_known;
          Alcotest.test_case "truncated" `Quick varint_truncated;
        ] );
      qsuite "varint-props" [ varint_roundtrip ];
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick bitset_basic;
          Alcotest.test_case "first_clear" `Quick bitset_first_clear;
          Alcotest.test_case "cross word" `Quick bitset_cross_word;
          Alcotest.test_case "bounds" `Quick bitset_bounds;
        ] );
      qsuite "bitset-props" [ bitset_model_prop ];
      ( "bqueue",
        [ Alcotest.test_case "basic" `Quick bqueue_basic ] );
      ( "hexdump",
        [ Alcotest.test_case "simple" `Quick hexdump_simple ] );
    ]
