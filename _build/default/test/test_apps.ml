(* Tests for the application layer: workload generators, the KV
   protocol, the store, and end-to-end servers/clients on both the
   Demikernel and POSIX interfaces — including the latency-shape
   assertions that mirror the paper's claims. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Workload = Dk_apps.Workload
module Proto = Dk_apps.Proto
module Kv = Dk_apps.Kv
module Kv_app = Dk_apps.Kv_app
module Kv_posix = Dk_apps.Kv_posix
module Echo = Dk_apps.Echo
module Setup = Dk_apps.Sim_setup
module Demi = Demikernel.Demi


(* ---------------- Workload ---------------- *)

let zipf_skew () =
  let wl = Workload.create (Workload.Zipf { n = 1000; theta = 0.99 }) in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let k = Workload.next_key wl in
    counts.(k) <- counts.(k) + 1
  done;
  (* rank-0 key must dominate any deep-tail key *)
  check_bool "head hot" true (counts.(0) > 10 * (counts.(900) + 1));
  check_bool "in range" true (Array.for_all (fun c -> c >= 0) counts)

let uniform_coverage () =
  let wl = Workload.create (Workload.Uniform 10) in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Workload.next_key wl) <- true
  done;
  check_bool "all keys drawn" true (Array.for_all (fun b -> b) seen)

let workload_mix () =
  let wl = Workload.create (Workload.Uniform 10) in
  let gets = ref 0 in
  for _ = 1 to 10_000 do
    if Workload.is_get wl ~read_fraction:0.9 then incr gets
  done;
  check_bool "~90% reads" true (!gets > 8500 && !gets < 9500)

let workload_value_size () =
  let wl = Workload.create (Workload.Uniform 10) in
  check_int "exact size" 100 (String.length (Workload.value wl ~size:100));
  check_int "small size" 3 (String.length (Workload.value wl ~size:3))

let zipf_deterministic () =
  let a = Workload.create ~seed:5L (Workload.Zipf { n = 100; theta = 0.9 }) in
  let b = Workload.create ~seed:5L (Workload.Zipf { n = 100; theta = 0.9 }) in
  for _ = 1 to 100 do
    check_int "same stream" (Workload.next_key a) (Workload.next_key b)
  done

(* ---------------- Proto ---------------- *)

let proto_roundtrips () =
  let reqs =
    [ Proto.Get "k"; Proto.Set ("key", "value with spaces"); Proto.Del "gone" ]
  in
  List.iter
    (fun r ->
      check_bool "request roundtrip" true
        (Proto.request_of_segments (Proto.request_segments r) = Some r))
    reqs;
  let resps = [ Proto.Value "v"; Proto.Not_found; Proto.Stored; Proto.Deleted ] in
  List.iter
    (fun r ->
      check_bool "response roundtrip" true
        (Proto.response_of_segments (Proto.response_segments r) = Some r))
    resps;
  check_bool "garbage rejected" true (Proto.request_of_segments [ "?" ] = None)

let proto_sga_roundtrip () =
  let r = Proto.Set ("k1", "v1") in
  check_bool "sga roundtrip" true (Proto.request_of_sga (Proto.request_sga r) = Some r)

let proto_value_response_shares_buffer () =
  let mgr = Dk_mem.Manager.create () in
  let buf = Dk_mem.Manager.alloc_exn mgr 8 in
  Dk_mem.Buffer.blit_from_string "thevalue" 0 buf 0 8;
  let sga = Proto.value_response_sga buf in
  (match Proto.response_of_sga sga with
  | Some (Proto.Value v) -> check_str "value" "thevalue" v
  | _ -> Alcotest.fail "decode");
  (* mutating the stored buffer shows through: no copy was made *)
  Dk_mem.Buffer.set buf 0 'T';
  match Proto.response_of_sga sga with
  | Some (Proto.Value v) -> check_str "shared" "Thevalue" v
  | _ -> Alcotest.fail "decode2"

(* ---------------- Kv ---------------- *)

let kv_basic () =
  let kv = Kv.create (Dk_mem.Manager.create ()) in
  check_bool "set" true (Kv.set kv "a" "1");
  check_bool "get hit" true (Kv.get_copy kv "a" = Some "1");
  check_bool "get miss" true (Kv.get_copy kv "b" = None);
  check_bool "overwrite" true (Kv.set kv "a" "2");
  check_bool "new value" true (Kv.get_copy kv "a" = Some "2");
  check_bool "del" true (Kv.del kv "a");
  check_bool "del miss" false (Kv.del kv "a");
  check_int "empty" 0 (Kv.size kv)

let kv_apply () =
  let kv = Kv.create (Dk_mem.Manager.create ()) in
  check_bool "set" true (Kv.apply kv (Proto.Set ("k", "v")) = Proto.Stored);
  check_bool "get" true (Kv.apply kv (Proto.Get "k") = Proto.Value "v");
  check_bool "del" true (Kv.apply kv (Proto.Del "k") = Proto.Deleted);
  check_bool "get miss" true (Kv.apply kv (Proto.Get "k") = Proto.Not_found)

(* Model-based property: Kv agrees with a simple Map. *)
let kv_model_prop =
  QCheck.Test.make ~name:"kv matches model map" ~count:100
    QCheck.(
      small_list
        (triple (int_bound 2) (string_of_size Gen.(1 -- 8)) (string_of_size Gen.(0 -- 32))))
    (fun script ->
      let kv = Kv.create (Dk_mem.Manager.create ()) in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key, value) ->
          match op with
          | 0 ->
              ignore (Kv.set kv key value);
              Hashtbl.replace model key value;
              true
          | 1 ->
              let expected = Hashtbl.find_opt model key in
              Kv.get_copy kv key = expected
          | _ ->
              let existed = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Kv.del kv key = existed)
        script)

let kv_overwrite_frees_old_value () =
  let mgr = Dk_mem.Manager.create () in
  let kv = Kv.create mgr in
  ignore (Kv.set kv "k" (String.make 64 'a'));
  let before = (Dk_mem.Manager.stats mgr).Dk_mem.Manager.releases in
  ignore (Kv.set kv "k" (String.make 64 'b'));
  let after = (Dk_mem.Manager.stats mgr).Dk_mem.Manager.releases in
  check_int "old buffer released" (before + 1) after

(* ---------------- end-to-end KV ---------------- *)

let demi_kv_end_to_end () =
  let duo = Setup.two_hosts () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  let kv = Kv.create (Demi.manager db) in
  let srv =
    match Kv_app.start_tcp_server ~demi:db ~port:6379 ~kv with
    | Ok s -> s
    | Error _ -> Alcotest.fail "server"
  in
  match
    Kv_app.run_tcp_client ~demi:da ~dst:(Setup.endpoint duo.Setup.b 6379)
      ~ops:200 ~keys:50 ~value_size:64 ~read_fraction:0.9 ()
  with
  | Error _ -> Alcotest.fail "client"
  | Ok stats ->
      check_int "all ops" 200 stats.Kv_app.ops;
      (* keys were preloaded: every GET must hit *)
      check_int "no misses" 0 stats.Kv_app.misses;
      check_bool "server saw them" true (Kv_app.requests_served srv >= 250);
      check_int "latencies recorded" 200
        (Dk_sim.Histogram.count stats.Kv_app.latency)

let posix_kv_end_to_end () =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
  let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
  let kv = Kv.create (Dk_mem.Manager.create ()) in
  let srv =
    match
      Kv_posix.start_server ~posix:pb ~cost:duo.Setup.cost
        ~engine:duo.Setup.engine ~port:6379 ~kv
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "server"
  in
  match
    Kv_posix.run_client ~posix:pa ~cost:duo.Setup.cost ~engine:duo.Setup.engine
      ~dst:(Setup.endpoint duo.Setup.b 6379) ~ops:100 ~keys:20 ~value_size:64
      ~read_fraction:0.9 ()
  with
  | Error _ -> Alcotest.fail "client"
  | Ok stats ->
      check_int "all ops" 100 stats.Kv_app.ops;
      check_int "no misses" 0 stats.Kv_app.misses;
      check_bool "server processed" true (Kv_posix.requests_served srv >= 120)

(* The portability claim, end to end: the *identical* application code
   (Kv_app server and client, written against the Demikernel interface)
   runs over the kernel-fallback libOS on hosts with no accelerator —
   just slower. *)
let kernel_fallback_libos_runs_same_app () =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
  let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
  let da =
    Demi.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost ~posix:pa ()
  in
  let db =
    Demi.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost ~posix:pb ()
  in
  let kv = Kv.create (Demi.manager db) in
  let srv =
    match Kv_app.start_tcp_server ~demi:db ~port:6379 ~kv with
    | Ok s -> s
    | Error e -> Alcotest.failf "server: %s" (Demikernel.Types.error_to_string e)
  in
  match
    Kv_app.run_tcp_client ~demi:da ~dst:(Setup.endpoint duo.Setup.b 6379)
      ~ops:100 ~keys:20 ~value_size:64 ~read_fraction:0.9 ()
  with
  | Error e -> Alcotest.failf "client: %s" (Demikernel.Types.error_to_string e)
  | Ok stats ->
      check_int "all ops" 100 stats.Kv_app.ops;
      check_int "no misses" 0 stats.Kv_app.misses;
      check_bool "served" true (Kv_app.requests_served srv >= 120);
      (* and it paid kernel prices: syscalls were made *)
      check_bool "kernel was involved" true
        ((Dk_kernel.Posix.stats pb).Dk_kernel.Posix.syscalls > 100)

let fallback_slower_than_bypass () =
  let bypass_p50 =
    let duo = Setup.two_hosts () in
    let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
    let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
    let kv = Kv.create (Demi.manager db) in
    ignore (Kv_app.start_tcp_server ~demi:db ~port:1 ~kv);
    match
      Kv_app.run_tcp_client ~demi:da ~dst:(Setup.endpoint duo.Setup.b 1)
        ~ops:50 ~keys:10 ~value_size:256 ~read_fraction:1.0 ()
    with
    | Ok s -> Dk_sim.Histogram.quantile s.Kv_app.latency 0.5
    | Error _ -> Alcotest.fail "bypass run"
  in
  let fallback_p50 =
    let duo = Setup.two_hosts ~kernel_stack:true () in
    let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
    let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
    let da = Demi.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost ~posix:pa () in
    let db = Demi.create ~engine:duo.Setup.engine ~cost:duo.Setup.cost ~posix:pb () in
    let kv = Kv.create (Demi.manager db) in
    ignore (Kv_app.start_tcp_server ~demi:db ~port:1 ~kv);
    match
      Kv_app.run_tcp_client ~demi:da ~dst:(Setup.endpoint duo.Setup.b 1)
        ~ops:50 ~keys:10 ~value_size:256 ~read_fraction:1.0 ()
    with
    | Ok s -> Dk_sim.Histogram.quantile s.Kv_app.latency 0.5
    | Error _ -> Alcotest.fail "fallback run"
  in
  check_bool "fallback pays kernel prices" true
    (Int64.compare fallback_p50 bypass_p50 > 0)

(* The headline shape: demikernel KV latency beats the POSIX path. *)
let kv_latency_shape () =
  let run_demi () =
    let duo = Setup.two_hosts () in
    let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
    let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
    let kv = Kv.create (Demi.manager db) in
    ignore (Kv_app.start_tcp_server ~demi:db ~port:1 ~kv);
    match
      Kv_app.run_tcp_client ~demi:da ~dst:(Setup.endpoint duo.Setup.b 1)
        ~ops:100 ~keys:20 ~value_size:1024 ~read_fraction:1.0 ()
    with
    | Ok s -> Dk_sim.Histogram.quantile s.Kv_app.latency 0.5
    | Error _ -> Alcotest.fail "demi run"
  in
  let run_posix () =
    let duo = Setup.two_hosts ~kernel_stack:true () in
    let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
    let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
    let kv = Kv.create (Dk_mem.Manager.create ()) in
    ignore
      (Kv_posix.start_server ~posix:pb ~cost:duo.Setup.cost
         ~engine:duo.Setup.engine ~port:1 ~kv);
    match
      Kv_posix.run_client ~posix:pa ~cost:duo.Setup.cost
        ~engine:duo.Setup.engine ~dst:(Setup.endpoint duo.Setup.b 1) ~ops:100
        ~keys:20 ~value_size:1024 ~read_fraction:1.0 ()
    with
    | Ok s -> Dk_sim.Histogram.quantile s.Kv_app.latency 0.5
    | Error _ -> Alcotest.fail "posix run"
  in
  let demi_p50 = run_demi () and posix_p50 = run_posix () in
  check_bool "demikernel faster" true (Int64.compare demi_p50 posix_p50 < 0)

(* ---------------- echo across the three interfaces ---------------- *)

let echo_three_way_latency_order () =
  (* Demikernel < kernel < mTCP in *latency* — the §6 claim that
     mTCP's latency is worse than the kernel's. *)
  let demi_rtt =
    let duo = Setup.two_hosts () in
    let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
    let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
    ignore (Echo.start_demi_server ~demi:db ~port:7);
    match
      Echo.demi_rtt ~demi:da ~dst:(Setup.endpoint duo.Setup.b 7) ~size:64
        ~rounds:20
    with
    | Ok h -> Dk_sim.Histogram.quantile h 0.5
    | Error _ -> Alcotest.fail "demi echo"
  in
  let posix_rtt =
    let duo = Setup.two_hosts ~kernel_stack:true () in
    let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
    let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
    ignore (Echo.start_posix_server ~posix:pb ~port:7);
    match
      Echo.posix_rtt ~posix:pa ~engine:duo.Setup.engine
        ~dst:(Setup.endpoint duo.Setup.b 7) ~size:64 ~rounds:20
    with
    | Ok h -> Dk_sim.Histogram.quantile h 0.5
    | Error _ -> Alcotest.fail "posix echo"
  in
  let mtcp_rtt =
    let duo = Setup.two_hosts () in
    let ma = Setup.mtcp_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
    let mb = Setup.mtcp_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
    ignore (Echo.start_mtcp_server ~mtcp:mb ~port:7);
    let h =
      Echo.mtcp_rtt ~mtcp:ma ~engine:duo.Setup.engine
        ~dst:(Setup.endpoint duo.Setup.b 7) ~size:64 ~rounds:20
    in
    Dk_sim.Histogram.quantile h 0.5
  in
  check_bool "demikernel < kernel" true (Int64.compare demi_rtt posix_rtt < 0);
  check_bool "kernel < mtcp (latency)" true (Int64.compare posix_rtt mtcp_rtt < 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dk_apps"
    [
      ( "workload",
        [
          Alcotest.test_case "zipf skew" `Quick zipf_skew;
          Alcotest.test_case "uniform coverage" `Quick uniform_coverage;
          Alcotest.test_case "mix" `Quick workload_mix;
          Alcotest.test_case "value size" `Quick workload_value_size;
          Alcotest.test_case "deterministic" `Quick zipf_deterministic;
        ] );
      ( "proto",
        [
          Alcotest.test_case "roundtrips" `Quick proto_roundtrips;
          Alcotest.test_case "sga roundtrip" `Quick proto_sga_roundtrip;
          Alcotest.test_case "zero-copy value" `Quick proto_value_response_shares_buffer;
        ] );
      ( "kv",
        [
          Alcotest.test_case "basic" `Quick kv_basic;
          Alcotest.test_case "apply" `Quick kv_apply;
          Alcotest.test_case "overwrite frees" `Quick kv_overwrite_frees_old_value;
        ] );
      qsuite "kv-props" [ kv_model_prop ];
      ( "end-to-end",
        [
          Alcotest.test_case "demikernel kv" `Quick demi_kv_end_to_end;
          Alcotest.test_case "posix kv" `Quick posix_kv_end_to_end;
          Alcotest.test_case "kernel-fallback libOS" `Quick kernel_fallback_libos_runs_same_app;
          Alcotest.test_case "fallback slower than bypass" `Quick fallback_slower_than_bypass;
          Alcotest.test_case "kv latency shape" `Quick kv_latency_shape;
          Alcotest.test_case "echo latency order" `Quick echo_three_way_latency_order;
        ] );
    ]
