(* Tests for dk_sched: effect-based fibers over qtokens, and the
   worker-pool wakeup model (epoll herd vs qtoken). *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Fiber = Dk_sched.Fiber
module Worker_pool = Dk_sched.Worker_pool
module Sga = Dk_mem.Sga
module Setup = Dk_apps.Sim_setup

let cost = Cost.default

let solo () =
  let engine = Engine.create () in
  (engine, Demi.create ~engine ~cost ())

(* ---------------- Fiber ---------------- *)

let fiber_basic () =
  let _, demi = solo () in
  let sched = Fiber.create demi in
  let log = ref [] in
  Fiber.spawn sched (fun () -> log := "a" :: !log);
  Fiber.spawn sched (fun () -> log := "b" :: !log);
  Fiber.run sched;
  check (Alcotest.list Alcotest.string) "both ran" [ "a"; "b" ] (List.rev !log);
  check_int "none live" 0 (Fiber.live_fibers sched)

let fiber_await_memq () =
  let _, demi = solo () in
  let sched = Fiber.create demi in
  let q = Demi.queue demi in
  let got = ref "" in
  Fiber.spawn sched (fun () ->
      match Fiber.await_pop sched q with
      | Types.Popped sga -> got := Sga.to_string sga
      | _ -> ());
  Fiber.spawn sched (fun () ->
      ignore (Fiber.await_push sched q (Sga.of_string "handoff")));
  Fiber.run sched;
  check_str "value crossed fibers" "handoff" !got

let fiber_sleep_orders () =
  let engine, demi = solo () in
  let sched = Fiber.create demi in
  let log = ref [] in
  Fiber.spawn sched (fun () ->
      Fiber.sleep sched 200L;
      log := ("late", Engine.now engine) :: !log);
  Fiber.spawn sched (fun () ->
      Fiber.sleep sched 100L;
      log := ("early", Engine.now engine) :: !log);
  Fiber.run sched;
  match List.rev !log with
  | [ ("early", t1); ("late", t2) ] ->
      check_bool "ordered by time" true (Int64.compare t1 t2 < 0)
  | _ -> Alcotest.fail "wrong order"

let fiber_yield_interleaves () =
  let _, demi = solo () in
  let sched = Fiber.create demi in
  let log = ref [] in
  Fiber.spawn sched (fun () ->
      log := 1 :: !log;
      Fiber.yield sched;
      log := 3 :: !log);
  Fiber.spawn sched (fun () -> log := 2 :: !log);
  Fiber.run sched;
  check (Alcotest.list Alcotest.int) "interleaved" [ 1; 2; 3 ] (List.rev !log)

(* An end-to-end echo written in direct style with fibers. *)
let fiber_echo_e2e () =
  let duo = Setup.two_hosts () in
  let da =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let db =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in
  (match Dk_apps.Echo.start_demi_server ~demi:db ~port:7 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "server");
  let sched = Fiber.create da in
  let reply = ref "" in
  Fiber.spawn sched (fun () ->
      let qd = Result.get_ok (Demi.socket da `Tcp) in
      (match Demi.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7) with
      | Ok () -> ()
      | Error _ -> failwith "connect");
      ignore (Fiber.await_push sched qd (Sga.of_string "fiber says hi"));
      match Fiber.await_pop sched qd with
      | Types.Popped sga -> reply := Sga.to_string sga
      | _ -> ());
  Fiber.run sched;
  check_str "echo through fibers" "fiber says hi" !reply

let fiber_exception_propagates () =
  let _, demi = solo () in
  let sched = Fiber.create demi in
  Fiber.spawn sched (fun () -> failwith "boom");
  Fiber.spawn sched (fun () -> ());
  (match Fiber.run sched with
  | () -> Alcotest.fail "expected exception"
  | exception Failure msg -> check_str "propagated" "boom" msg);
  (* the failing fiber was retired from the live count *)
  check_bool "live count sane" true (Fiber.live_fibers sched <= 1)

(* ---------------- Event loop ---------------- *)

module Event_loop = Dk_sched.Event_loop

let evloop_kv_roundtrip () =
  let duo = Setup.two_hosts () in
  let server = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  let client = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let loop = Event_loop.create server in
  let lqd = Result.get_ok (Demi.socket server `Tcp) in
  ignore (Demi.bind server lqd ~port:5);
  ignore (Demi.listen server lqd);
  let served = ref 0 in
  Event_loop.on_accept loop lqd (fun conn ->
      Event_loop.on_message loop conn (fun sga ->
          incr served;
          Event_loop.send loop conn
            (Sga.of_string ("re:" ^ Sga.to_string sga))));
  let qd = Result.get_ok (Demi.socket client `Tcp) in
  ignore (Demi.connect client qd ~dst:(Setup.endpoint duo.Setup.b 5));
  ignore (Demi.blocking_push client qd (Sga.of_string "ping"));
  (match Demi.blocking_pop client qd with
  | Types.Popped sga -> check_str "reply" "re:ping" (Sga.to_string sga)
  | _ -> Alcotest.fail "no reply");
  check_int "served" 1 !served

let evloop_on_close_fires () =
  let duo = Setup.two_hosts () in
  let server = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  let client = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let loop = Event_loop.create server in
  let lqd = Result.get_ok (Demi.socket server `Tcp) in
  ignore (Demi.bind server lqd ~port:5);
  ignore (Demi.listen server lqd);
  let closed = ref false in
  Event_loop.on_accept loop lqd (fun conn ->
      Event_loop.on_message loop conn (fun _ -> ());
      Event_loop.on_close loop conn (fun _ -> closed := true));
  let qd = Result.get_ok (Demi.socket client `Tcp) in
  ignore (Demi.connect client qd ~dst:(Setup.endpoint duo.Setup.b 5));
  ignore (Demi.close client qd);
  ignore (Event_loop.run loop ~until:(fun () -> !closed));
  check_bool "close delivered" true !closed;
  (* the connection is unwatched after close; only the listener stays *)
  check_int "watched" 1 (Event_loop.watched loop)

let evloop_over_storage_queue () =
  (* callbacks on a file queue: storage events through the same API *)
  let engine = Engine.create () in
  let block = Dk_device.Block.create ~engine ~cost () in
  let demi = Demi.create ~engine ~cost ~block () in
  let loop = Event_loop.create demi in
  let qd = Result.get_ok (Demi.fcreate demi "evlog") in
  let got = ref [] in
  Event_loop.on_message loop qd (fun sga ->
      got := Sga.to_string sga :: !got);
  Event_loop.send loop qd (Sga.of_string "first");
  Event_loop.send loop qd (Sga.of_string "second");
  ignore (Event_loop.run loop ~until:(fun () -> List.length !got >= 2));
  check (Alcotest.list Alcotest.string) "records via callbacks"
    [ "first"; "second" ] (List.rev !got)

let evloop_unwatch_stops_delivery () =
  let engine = Engine.create () in
  let demi = Demi.create ~engine ~cost () in
  let loop = Event_loop.create demi in
  let qd = Demi.queue demi in
  let got = ref 0 in
  Event_loop.on_message loop qd (fun _ -> incr got);
  ignore (Demi.blocking_push demi qd (Sga.of_string "one"));
  Engine.run engine;
  check_int "first delivered" 1 !got;
  Event_loop.unwatch loop qd;
  ignore (Demi.blocking_push demi qd (Sga.of_string "two"));
  Engine.run engine;
  check_int "second suppressed" 1 !got

(* ---------------- Worker pool ---------------- *)

let pool_run mode workers =
  let engine = Engine.create () in
  Worker_pool.run ~engine ~cost ~mode ~workers ~jobs:200
    ~mean_interarrival_ns:3000.0 ~service_ns:2000L ()

let herd_wastes_wakeups () =
  let herd = pool_run `Epoll_herd 16 in
  let token = pool_run `Qtoken 16 in
  check_int "herd finished" 200 herd.Worker_pool.jobs_done;
  check_int "token finished" 200 token.Worker_pool.jobs_done;
  check_bool "herd wastes wakeups" true (herd.Worker_pool.wasted_wakeups > 0);
  check_int "token wastes none" 0 token.Worker_pool.wasted_wakeups;
  check_bool "herd wakes more" true
    (herd.Worker_pool.wakeups > token.Worker_pool.wakeups)

let herd_waste_grows_with_workers () =
  let w4 = pool_run `Epoll_herd 4 in
  let w32 = pool_run `Epoll_herd 32 in
  check_bool "more workers, more waste" true
    (w32.Worker_pool.wasted_wakeups > w4.Worker_pool.wasted_wakeups)

let token_latency_not_worse () =
  let herd = pool_run `Epoll_herd 16 in
  let token = pool_run `Qtoken 16 in
  let h_p99 = Dk_sim.Histogram.quantile herd.Worker_pool.dispatch_latency 0.99 in
  let t_p99 = Dk_sim.Histogram.quantile token.Worker_pool.dispatch_latency 0.99 in
  check_bool "qtoken p99 <= herd p99" true (Int64.compare t_p99 h_p99 <= 0)

let single_worker_equivalent () =
  (* with one worker there is no herd: waste must be zero in both *)
  let herd = pool_run `Epoll_herd 1 in
  check_int "no waste possible" 0 herd.Worker_pool.wasted_wakeups

let () =
  Alcotest.run "dk_sched"
    [
      ( "fiber",
        [
          Alcotest.test_case "basic" `Quick fiber_basic;
          Alcotest.test_case "await memq" `Quick fiber_await_memq;
          Alcotest.test_case "sleep ordering" `Quick fiber_sleep_orders;
          Alcotest.test_case "yield interleaves" `Quick fiber_yield_interleaves;
          Alcotest.test_case "echo end-to-end" `Quick fiber_echo_e2e;
          Alcotest.test_case "exception propagates" `Quick fiber_exception_propagates;
        ] );
      ( "event-loop",
        [
          Alcotest.test_case "kv roundtrip" `Quick evloop_kv_roundtrip;
          Alcotest.test_case "on_close fires" `Quick evloop_on_close_fires;
          Alcotest.test_case "unwatch" `Quick evloop_unwatch_stops_delivery;
          Alcotest.test_case "storage events" `Quick evloop_over_storage_queue;
        ] );
      ( "worker-pool",
        [
          Alcotest.test_case "herd wastes wakeups" `Quick herd_wastes_wakeups;
          Alcotest.test_case "waste grows with workers" `Quick herd_waste_grows_with_workers;
          Alcotest.test_case "qtoken latency" `Quick token_latency_not_worse;
          Alcotest.test_case "single worker" `Quick single_worker_equivalent;
        ] );
    ]
