(* A Redis-style key-value store on Demikernel queues — the workload
   the paper's introduction motivates (§3.2 uses Redis throughout).

   The server answers GETs with zero-copy responses that share the
   stored value buffer; the client runs a Zipf-skewed 90/10 GET/SET
   mix and reports the latency distribution.

   Run with:  dune exec examples/kv_store.exe *)

module Demi = Demikernel.Demi
module Setup = Dk_apps.Sim_setup
module Kv = Dk_apps.Kv
module Kv_app = Dk_apps.Kv_app
module H = Dk_sim.Histogram

let () =
  let duo = Setup.two_hosts () in
  let client =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let server =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in
  let kv = Kv.create (Demi.manager server) in
  let srv =
    match Kv_app.start_tcp_server ~demi:server ~port:6379 ~kv with
    | Ok s -> s
    | Error e -> failwith (Demikernel.Types.error_to_string e)
  in
  match
    Kv_app.run_tcp_client ~demi:client ~dst:(Setup.endpoint duo.Setup.b 6379)
      ~ops:2000 ~keys:500 ~value_size:512 ~read_fraction:0.9 ()
  with
  | Error e -> failwith (Demikernel.Types.error_to_string e)
  | Ok stats ->
      let lat = stats.Kv_app.latency in
      Format.printf "ops        : %d (hits %d, misses %d)@." stats.Kv_app.ops
        stats.Kv_app.hits stats.Kv_app.misses;
      Format.printf "server saw : %d requests@." (Kv_app.requests_served srv);
      Format.printf "latency    : p50=%Ld ns  p99=%Ld ns  max=%Ld ns@."
        (H.quantile lat 0.5) (H.quantile lat 0.99) (H.max lat);
      let secs = Int64.to_float stats.Kv_app.elapsed_ns /. 1e9 in
      Format.printf "throughput : %.0f ops/s (virtual time)@."
        (float_of_int stats.Kv_app.ops /. secs);
      let mem = Dk_mem.Manager.stats (Demi.manager server) in
      Format.printf
        "server mem : %d allocs, %d releases (%d deferred by free-protection)@."
        mem.Dk_mem.Manager.allocs mem.Dk_mem.Manager.releases
        mem.Dk_mem.Manager.deferred_releases
