examples/storage_log.mli:
