examples/kv_store.ml: Demikernel Dk_apps Dk_mem Dk_sim Format Int64
