examples/event_server.mli:
