examples/pipeline.ml: Demikernel Dk_apps Dk_device Dk_mem Dk_sim Format List Result
