examples/pipeline.mli:
