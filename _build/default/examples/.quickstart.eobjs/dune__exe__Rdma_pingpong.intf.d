examples/rdma_pingpong.mli:
