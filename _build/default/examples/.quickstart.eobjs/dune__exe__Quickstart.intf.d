examples/quickstart.mli:
