examples/steering.mli:
