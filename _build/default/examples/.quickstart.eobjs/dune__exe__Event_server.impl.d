examples/event_server.ml: Demikernel Dk_apps Dk_mem Dk_sched Format Result
