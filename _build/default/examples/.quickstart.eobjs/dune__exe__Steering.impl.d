examples/steering.ml: Array Demikernel Dk_apps Dk_mem Dk_sched Dk_sim Format List Result
