examples/rdma_pingpong.ml: Demikernel Dk_device Dk_mem Dk_sim Format Int64 Printf Result
