examples/storage_log.ml: Demikernel Dk_device Dk_mem Dk_sim Format Int64 List Result
