(** libevent-style callback dispatch over Demikernel queues (§4.4).

    The paper plans "a libevent-based Demikernel OS, which would enable
    applications, like memcached, to achieve the benefits of
    kernel-bypass transparently". This module is that adapter: register
    a handler per queue and the loop keeps the pops outstanding,
    invoking the handler once per complete message — replacing an
    application-level epoll loop with [wait_any] semantics (exactly one
    handler fires per completion, with the data already in hand). *)

type t

val create : Demikernel.Demi.t -> t

val on_accept : t -> Demikernel.Types.qd -> (Demikernel.Types.qd -> unit) -> unit
(** Watch a listening queue; the callback receives each new
    connection's queue descriptor. *)

val on_message :
  t -> Demikernel.Types.qd -> (Dk_mem.Sga.t -> unit) -> unit
(** Watch a data queue; the callback receives each popped element. *)

val on_close : t -> Demikernel.Types.qd -> (Demikernel.Types.error -> unit) -> unit
(** Invoked once when a watched queue fails/closes; the queue is then
    unwatched. *)

val send : t -> Demikernel.Types.qd -> Dk_mem.Sga.t -> unit
(** Push without waiting (completion is discarded; failures surface via
    [on_close]). *)

val unwatch : t -> Demikernel.Types.qd -> unit
(** Stop delivering events for this queue (in-flight pops may still
    deliver one last message). *)

val run : t -> until:(unit -> bool) -> bool
(** Drive the simulation until the predicate holds; [false] if events
    ran dry first. Handlers run from inside this loop. *)

val watched : t -> int
