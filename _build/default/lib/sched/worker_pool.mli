(** Multi-worker wakeup model for the §4.4 comparison.

    Simulates a pool of worker threads serving a shared stream of
    requests under two notification disciplines:

    - [`Epoll_herd]: all idle workers block on one shared epoll set;
      every arrival wakes {e all} of them (one context switch each),
      one wins the request, the rest find nothing ("wasted wake ups for
      threads with no data to process") — and the winner still pays a
      second syscall to actually read the data.
    - [`Qtoken]: each worker waits on its own queue token; an arrival
      completes exactly one token, waking exactly one worker, with the
      data already attached to the completion.

    Workers run on independent cores; request service time is
    [service_ns]. Results: wakeups, wasted wakeups, and the
    arrival-to-service-start latency distribution. *)

type mode = [ `Epoll_herd | `Qtoken ]

type stats = {
  jobs_done : int;
  wakeups : int;
  wasted_wakeups : int;
  dispatch_latency : Dk_sim.Histogram.t;
      (** arrival -> service start, per job *)
  makespan_ns : int64;
}

val run :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  mode:mode ->
  workers:int ->
  jobs:int ->
  mean_interarrival_ns:float ->
  service_ns:int64 ->
  ?seed:int64 ->
  unit ->
  stats
