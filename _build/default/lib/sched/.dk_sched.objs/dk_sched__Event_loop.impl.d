lib/sched/event_loop.ml: Demikernel Dk_sim Hashtbl
