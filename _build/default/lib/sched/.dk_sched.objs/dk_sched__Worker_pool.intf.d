lib/sched/worker_pool.mli: Dk_sim
