lib/sched/fiber.ml: Demikernel Dk_sim Effect Queue
