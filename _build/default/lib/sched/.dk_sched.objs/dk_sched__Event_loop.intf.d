lib/sched/event_loop.mli: Demikernel Dk_mem
