lib/sched/fiber.mli: Demikernel Dk_mem
