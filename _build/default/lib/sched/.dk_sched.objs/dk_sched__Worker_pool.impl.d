lib/sched/worker_pool.ml: Dk_sim Int64 List Queue
