(** Cooperative fibers integrated with Demikernel qtokens (§4.4).

    The paper envisions libOSes "tightly integrated with existing
    scheduling libraries"; this is that integration: lightweight
    threads (OCaml effects) that suspend on qtokens. [await] parks the
    calling fiber until the token completes — because tokens are unique
    to one operation, exactly that fiber wakes, with the operation's
    data in hand; there is no wake-everyone readiness step and no
    second syscall to fetch the data. *)

type scheduler

val create : Demikernel.Demi.t -> scheduler

val spawn : scheduler -> (unit -> unit) -> unit
(** Queue a fiber; it starts when {!run} (or the running scheduler)
    gets to it. *)

val await : scheduler -> Demikernel.Types.qtoken -> Demikernel.Types.op_result
(** Suspend the current fiber until the token completes. Must be called
    from inside a fiber. *)

val await_push :
  scheduler -> Demikernel.Types.qd -> Dk_mem.Sga.t -> Demikernel.Types.op_result
(** push + await. *)

val await_pop : scheduler -> Demikernel.Types.qd -> Demikernel.Types.op_result
(** pop + await. *)

val sleep : scheduler -> int64 -> unit
(** Suspend the current fiber for a virtual duration. *)

val yield : scheduler -> unit

val run : scheduler -> unit
(** Run fibers and the simulation until all fibers finish or no
    progress is possible. *)

val live_fibers : scheduler -> int
