module Demi = Demikernel.Demi
module Types = Demikernel.Types

type _ Effect.t +=
  | Await : Demikernel.Types.qtoken -> Demikernel.Types.op_result Effect.t
  | Sleep : int64 -> unit Effect.t
  | Yield : unit Effect.t

type scheduler = {
  demi : Demi.t;
  runq : (unit -> unit) Queue.t;
  mutable live : int; (* started and not finished *)
}

let create demi = { demi; runq = Queue.create (); live = 0 }

let enqueue sched thunk = Queue.add thunk sched.runq

(* Run one fiber body under the effect handler. Suspension points
   enqueue resumption thunks; continuations carry the handler with
   them, so resuming from the run queue stays inside it. *)
let start sched body =
  let open Effect.Deep in
  sched.live <- sched.live + 1;
  match_with body ()
    {
      retc = (fun () -> sched.live <- sched.live - 1);
      exnc =
        (fun e ->
          sched.live <- sched.live - 1;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Await tok ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Demi.watch sched.demi tok (fun result ->
                      enqueue sched (fun () -> continue k result)))
          | Sleep ns ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore
                    (Dk_sim.Engine.after (Demi.engine sched.demi) ns (fun () ->
                         enqueue sched (fun () -> continue k ()))))
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  enqueue sched (fun () -> continue k ()))
          | _ -> None);
    }

let spawn sched body = enqueue sched (fun () -> start sched body)

let await (_ : scheduler) tok = Effect.perform (Await tok)

let await_push sched qd sga =
  match Demi.push sched.demi qd sga with
  | Error e -> Types.Failed e
  | Ok tok -> await sched tok

let await_pop sched qd =
  match Demi.pop sched.demi qd with
  | Error e -> Types.Failed e
  | Ok tok -> await sched tok

let sleep (_ : scheduler) ns = Effect.perform (Sleep ns)
let yield (_ : scheduler) = Effect.perform Yield

let run sched =
  let engine = Demi.engine sched.demi in
  let rec loop () =
    match Queue.take_opt sched.runq with
    | Some thunk ->
        thunk ();
        loop ()
    | None ->
        (* No runnable fiber: advance the simulation; completions may
           re-enqueue suspended fibers. *)
        if sched.live > 0 then begin
          if Dk_sim.Engine.step engine then loop ()
          (* else: deadlock — suspended fibers can never resume *)
        end
  in
  loop ()

let live_fibers sched = sched.live
