module Demi = Demikernel.Demi
module Types = Demikernel.Types

type watch_state = {
  mutable active : bool;
  mutable close_cb : Types.error -> unit;
}

type t = {
  demi : Demi.t;
  watches : (Types.qd, watch_state) Hashtbl.t;
}

let create demi = { demi; watches = Hashtbl.create 16 }

let state t qd =
  match Hashtbl.find_opt t.watches qd with
  | Some st -> st
  | None ->
      let st = { active = true; close_cb = (fun _ -> ()) } in
      Hashtbl.replace t.watches qd st;
      st

let closed t qd st err =
  if st.active then begin
    st.active <- false;
    Hashtbl.remove t.watches qd;
    st.close_cb err
  end

let rec pump t qd st handle =
  if st.active then
    match Demi.pop t.demi qd with
    | Error e -> closed t qd st e
    | Ok tok ->
        Demi.watch t.demi tok (fun result ->
            if st.active then
              match result with
              | Types.Popped _ | Types.Accepted _ ->
                  handle result;
                  pump t qd st handle
              | Types.Failed e -> closed t qd st e
              | Types.Pushed -> pump t qd st handle)

let on_accept t qd cb =
  let st = state t qd in
  pump t qd st (function
    | Types.Accepted conn_qd -> cb conn_qd
    | Types.Popped _ | Types.Pushed | Types.Failed _ -> ())

let on_message t qd cb =
  let st = state t qd in
  pump t qd st (function
    | Types.Popped sga -> cb sga
    | Types.Accepted _ | Types.Pushed | Types.Failed _ -> ())

let on_close t qd cb = (state t qd).close_cb <- cb

let send t qd sga =
  match Demi.push t.demi qd sga with
  | Ok tok -> Demi.watch t.demi tok (fun _ -> ())
  | Error e -> (
      match Hashtbl.find_opt t.watches qd with
      | Some st -> closed t qd st e
      | None -> ())

let unwatch t qd =
  match Hashtbl.find_opt t.watches qd with
  | Some st ->
      st.active <- false;
      Hashtbl.remove t.watches qd
  | None -> ()

let run t ~until = Dk_sim.Engine.run_until (Demi.engine t.demi) until

let watched t = Hashtbl.length t.watches
