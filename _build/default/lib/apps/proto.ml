type request = Get of string | Set of string * string | Del of string

type response = Value of string | Not_found | Stored | Deleted

let request_segments = function
  | Get key -> [ "G"; key ]
  | Set (key, value) -> [ "S"; key; value ]
  | Del key -> [ "D"; key ]

let request_of_segments = function
  | [ "G"; key ] -> Some (Get key)
  | [ "S"; key; value ] -> Some (Set (key, value))
  | [ "D"; key ] -> Some (Del key)
  | _ -> None

let response_segments = function
  | Value v -> [ "+"; v ]
  | Not_found -> [ "-" ]
  | Stored -> [ "!" ]
  | Deleted -> [ "x" ]

let response_of_segments = function
  | [ "+"; v ] -> Some (Value v)
  | [ "-" ] -> Some Not_found
  | [ "!" ] -> Some Stored
  | [ "x" ] -> Some Deleted
  | _ -> None

let segments_of_sga sga =
  List.map Dk_mem.Buffer.to_string (Dk_mem.Sga.segments sga)

let request_sga r = Dk_mem.Sga.of_strings (request_segments r)
let response_sga r = Dk_mem.Sga.of_strings (response_segments r)
let request_of_sga sga = request_of_segments (segments_of_sga sga)
let response_of_sga sga = response_of_segments (segments_of_sga sga)

let value_response_sga buf =
  Dk_mem.Sga.of_buffers [ Dk_mem.Buffer.of_string "+"; Dk_mem.Buffer.dup buf ]
