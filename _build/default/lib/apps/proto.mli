(** Key-value wire protocol.

    Requests and responses are scatter-gather messages with one logical
    field per segment — the natural encoding on Demikernel queues
    (§4.2: the sga gives the device the compute granularity). The same
    segments travel over POSIX byte streams via the {!Dk_net.Framing}
    length-prefixed encoding. *)

type request =
  | Get of string
  | Set of string * string
  | Del of string

type response =
  | Value of string   (** GET hit *)
  | Not_found         (** GET/DEL miss *)
  | Stored            (** SET ok *)
  | Deleted           (** DEL ok *)

val request_segments : request -> string list
val request_of_segments : string list -> request option
val response_segments : response -> string list
val response_of_segments : string list -> response option

val request_sga : request -> Dk_mem.Sga.t
val response_sga : response -> Dk_mem.Sga.t
val request_of_sga : Dk_mem.Sga.t -> request option
val response_of_sga : Dk_mem.Sga.t -> response option

(** GET responses can avoid materialising the value: *)

val value_response_sga : Dk_mem.Buffer.t -> Dk_mem.Sga.t
(** Wrap a stored value buffer (a new reference) as a [Value] response
    without copying — the Redis zero-copy pattern of §4.5. *)
