lib/apps/kv.mli: Dk_mem Proto
