lib/apps/kv_app.ml: Demikernel Dk_mem Dk_sim Int64 Kv Proto Result Workload
