lib/apps/kv_posix.ml: Bytes Dk_kernel Dk_net Dk_sim Hashtbl Int64 Kv Kv_app List Proto String Workload
