lib/apps/kv_posix.mli: Dk_kernel Dk_net Dk_sim Kv Kv_app
