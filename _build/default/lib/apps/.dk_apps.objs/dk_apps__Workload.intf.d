lib/apps/workload.mli:
