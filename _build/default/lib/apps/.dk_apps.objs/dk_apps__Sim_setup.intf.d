lib/apps/sim_setup.mli: Demikernel Dk_device Dk_kernel Dk_net Dk_sim
