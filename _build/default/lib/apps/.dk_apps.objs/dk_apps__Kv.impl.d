lib/apps/kv.ml: Dk_mem Hashtbl Option Proto
