lib/apps/workload.ml: Array Char Dk_sim Printf String
