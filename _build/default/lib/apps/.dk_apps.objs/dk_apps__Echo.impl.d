lib/apps/echo.ml: Bytes Demikernel Dk_kernel Dk_sim Int64 List Result String
