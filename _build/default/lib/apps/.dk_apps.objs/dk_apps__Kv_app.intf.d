lib/apps/kv_app.mli: Demikernel Dk_net Dk_sim Kv
