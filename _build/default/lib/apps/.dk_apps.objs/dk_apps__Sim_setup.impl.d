lib/apps/sim_setup.ml: Demikernel Dk_device Dk_kernel Dk_net Dk_sim
