lib/apps/proto.mli: Dk_mem
