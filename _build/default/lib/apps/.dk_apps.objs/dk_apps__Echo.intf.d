lib/apps/echo.mli: Demikernel Dk_kernel Dk_net Dk_sim
