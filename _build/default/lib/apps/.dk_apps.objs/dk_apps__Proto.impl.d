lib/apps/proto.ml: Dk_mem List
