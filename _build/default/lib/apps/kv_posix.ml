module Posix = Dk_kernel.Posix
module Framing = Dk_net.Framing
module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost

type conn = {
  fd : Posix.fd;
  decoder : Framing.decoder;
  mutable outbuf : string; (* bytes not yet accepted by write() *)
}

type server = {
  posix : Posix.t;
  cost : Cost.t;
  engine : Engine.t;
  kv : Kv.t;
  lsock : Posix.fd;
  epfd : Posix.fd;
  conns : (Posix.fd, conn) Hashtbl.t;
  mutable served : int;
}

let read_chunk = 16384

let app_work srv = Engine.consume srv.engine srv.cost.Cost.app_request

(* Try to flush a connection's pending output; keep `Out interest only
   while bytes remain (otherwise a level-triggered epoll would spin on
   the always-writable socket). *)
let flush srv c =
  if String.length c.outbuf > 0 then begin
    (match Posix.write srv.posix c.fd c.outbuf with
    | Ok n -> c.outbuf <- String.sub c.outbuf n (String.length c.outbuf - n)
    | Error `Again -> ()
    | Error _ -> c.outbuf <- "");
    let interest = if String.length c.outbuf > 0 then [ `In; `Out ] else [ `In ] in
    ignore (Posix.epoll_add srv.posix srv.epfd c.fd interest)
  end

let process_messages srv c =
  let rec loop () =
    match Framing.next c.decoder with
    | None -> ()
    | Some segments ->
        app_work srv;
        (match Proto.request_of_segments segments with
        | Some req ->
            let resp = Kv.apply srv.kv req in
            srv.served <- srv.served + 1;
            c.outbuf <- c.outbuf ^ Framing.encode (Proto.response_segments resp)
        | None -> ());
        loop ()
  in
  loop ();
  flush srv c

let handle_readable srv c =
  let buf = Bytes.create read_chunk in
  let rec drain () =
    match Posix.read srv.posix c.fd buf 0 read_chunk with
    | Ok 0 ->
        (* EOF *)
        Posix.epoll_del srv.posix srv.epfd c.fd;
        Posix.close srv.posix c.fd;
        Hashtbl.remove srv.conns c.fd
    | Ok n ->
        Framing.feed c.decoder (Bytes.sub_string buf 0 n);
        drain ()
    | Error `Again -> process_messages srv c
    | Error _ ->
        Posix.epoll_del srv.posix srv.epfd c.fd;
        Hashtbl.remove srv.conns c.fd
  in
  drain ()

let handle_accept srv =
  let rec loop () =
    match Posix.accept srv.posix srv.lsock with
    | Ok fd ->
        let c = { fd; decoder = Framing.create (); outbuf = "" } in
        Hashtbl.replace srv.conns fd c;
        ignore (Posix.epoll_add srv.posix srv.epfd fd [ `In ]);
        loop ()
    | Error `Again -> ()
    | Error _ -> ()
  in
  loop ()

let rec event_loop srv =
  Posix.epoll_wait_block srv.posix srv.epfd ~max:64 (fun events ->
      List.iter
        (fun (fd, ev) ->
          if fd = srv.lsock then handle_accept srv
          else
            match (Hashtbl.find_opt srv.conns fd, ev) with
            | Some c, `In -> handle_readable srv c
            | Some c, `Out -> flush srv c
            | None, _ -> ())
        events;
      event_loop srv)

let start_server ~posix ~cost ~engine ~port ~kv =
  let lsock = Posix.socket posix in
  match Posix.listen posix lsock ~port with
  | Error e -> Error e
  | Ok () ->
      let epfd = Posix.epoll_create posix in
      (match Posix.epoll_add posix epfd lsock [ `In ] with
      | Ok () -> ()
      | Error _ -> ());
      let srv =
        { posix; cost; engine; kv; lsock; epfd; conns = Hashtbl.create 16; served = 0 }
      in
      event_loop srv;
      Ok srv

let requests_served srv = srv.served

(* ---- client ---- *)

(* Synchronous-looking RPC: drive the simulation until the reply is
   decoded. *)
let rpc ~posix ~engine ~epfd ~fd ~decoder req =
  let payload = Framing.encode (Proto.request_segments req) in
  (* write, handling partial writes and EAGAIN by driving the engine *)
  let rec write_all data =
    if String.length data > 0 then
      match Posix.write posix fd data with
      | Ok n -> write_all (String.sub data n (String.length data - n))
      | Error `Again -> if Engine.step engine then write_all data else ()
      | Error _ -> ()
  in
  write_all payload;
  let buf = Bytes.create read_chunk in
  let result = ref None in
  let rec await () =
    match Framing.next decoder with
    | Some segments -> result := Proto.response_of_segments segments
    | None -> (
        match Posix.read posix fd buf 0 read_chunk with
        | Ok 0 -> ()
        | Ok n ->
            Framing.feed decoder (Bytes.sub_string buf 0 n);
            await ()
        | Error `Again ->
            (* Block in epoll until readable. *)
            let woke = ref false in
            Posix.epoll_wait_block posix epfd ~max:4 (fun _ -> woke := true);
            if Engine.run_until engine (fun () -> !woke) then await ()
        | Error _ -> ())
  in
  await ();
  !result

let run_client ~posix ~cost ~engine ~dst ~ops ~keys ~value_size ~read_fraction
    ?(zipf_theta = 0.99) ?(seed = 11L) () =
  ignore cost;
  let fd = Posix.socket posix in
  match Posix.connect posix fd ~dst with
  | Error e -> Error e
  | Ok () ->
      if not (Engine.run_until engine (fun () -> Posix.connected posix fd))
      then Error `Connection_closed
      else begin
        let epfd = Posix.epoll_create posix in
        (match Posix.epoll_add posix epfd fd [ `In ] with
        | Ok () -> ()
        | Error _ -> ());
        let decoder = Framing.create () in
        let wl =
          Workload.create ~seed (Workload.Zipf { n = keys; theta = zipf_theta })
        in
        let latency = Dk_sim.Histogram.create () in
        let hits = ref 0 and misses = ref 0 in
        for i = 0 to keys - 1 do
          let req =
            Proto.Set (Workload.key_name i, Workload.value wl ~size:value_size)
          in
          ignore (rpc ~posix ~engine ~epfd ~fd ~decoder req)
        done;
        let start = Engine.now engine in
        for _ = 1 to ops do
          let key = Workload.key_name (Workload.next_key wl) in
          let req =
            if Workload.is_get wl ~read_fraction then Proto.Get key
            else Proto.Set (key, Workload.value wl ~size:value_size)
          in
          let t0 = Engine.now engine in
          (match rpc ~posix ~engine ~epfd ~fd ~decoder req with
          | Some (Proto.Value _) -> incr hits
          | Some Proto.Not_found -> incr misses
          | Some (Proto.Stored | Proto.Deleted) | None -> ());
          Dk_sim.Histogram.record latency (Int64.sub (Engine.now engine) t0)
        done;
        Ok
          {
            Kv_app.ops;
            hits = !hits;
            misses = !misses;
            latency;
            elapsed_ns = Int64.sub (Engine.now engine) start;
          }
      end
