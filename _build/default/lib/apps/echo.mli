(** Echo servers and round-trip measurement on three I/O interfaces:

    - Demikernel queues (kernel-bypass data path, Figure 1 right),
    - POSIX sockets through the simulated kernel (Figure 1 left),
    - mTCP-style batched user-level TCP with the POSIX API (§6).

    Used by experiments E1 and E7 to regenerate the paper's
    architecture comparison. *)

val start_demi_server :
  demi:Demikernel.Demi.t -> port:int -> (unit, Demikernel.Types.error) result

val demi_rtt :
  demi:Demikernel.Demi.t ->
  dst:Dk_net.Addr.endpoint ->
  size:int ->
  rounds:int ->
  (Dk_sim.Histogram.t, Demikernel.Types.error) result

val start_posix_server :
  posix:Dk_kernel.Posix.t -> port:int -> (unit, Dk_kernel.Posix.error) result

val posix_rtt :
  posix:Dk_kernel.Posix.t ->
  engine:Dk_sim.Engine.t ->
  dst:Dk_net.Addr.endpoint ->
  size:int ->
  rounds:int ->
  (Dk_sim.Histogram.t, Dk_kernel.Posix.error) result

val start_mtcp_server :
  mtcp:Dk_kernel.Mtcp.t -> port:int -> (unit, [ `In_use ]) result

val mtcp_rtt :
  mtcp:Dk_kernel.Mtcp.t ->
  engine:Dk_sim.Engine.t ->
  dst:Dk_net.Addr.endpoint ->
  size:int ->
  rounds:int ->
  Dk_sim.Histogram.t
