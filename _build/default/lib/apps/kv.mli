(** Redis-like in-memory key-value store.

    Values live in manager-allocated (device-registered) buffers so GET
    responses can reference them without copying. A SET allocates a new
    buffer and swaps the pointer — the paper's observation that Redis
    "allocates a new value buffer for each put request" — and frees the
    old one, which free-protection keeps alive while any in-flight
    response still references it (§4.5). *)

type t

val create : Dk_mem.Manager.t -> t

val set : t -> string -> string -> bool
(** [false] if allocation failed. *)

val get : t -> string -> Dk_mem.Buffer.t option
(** The live value buffer (no reference taken — dup it to keep it). *)

val get_copy : t -> string -> string option

val del : t -> string -> bool
(** [true] if the key existed. *)

val size : t -> int

val apply : t -> Proto.request -> Proto.response
(** Execute a request against the store, with copy semantics
    (materialised values). *)

val apply_zero_copy : t -> Proto.request -> Dk_mem.Sga.t
(** Execute and build the response sga; GET hits share the stored
    buffer instead of copying it. *)
