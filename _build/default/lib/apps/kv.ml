type t = {
  manager : Dk_mem.Manager.t;
  table : (string, Dk_mem.Buffer.t) Hashtbl.t;
}

let create manager = { manager; table = Hashtbl.create 1024 }

let set t key value =
  match Dk_mem.Manager.alloc_string t.manager value with
  | None -> false
  | Some buf ->
      (match Hashtbl.find_opt t.table key with
      | Some old -> Dk_mem.Buffer.free old
      | None -> ());
      Hashtbl.replace t.table key buf;
      true

let get t key = Hashtbl.find_opt t.table key

let get_copy t key = Option.map Dk_mem.Buffer.to_string (get t key)

let del t key =
  match Hashtbl.find_opt t.table key with
  | Some buf ->
      Dk_mem.Buffer.free buf;
      Hashtbl.remove t.table key;
      true
  | None -> false

let size t = Hashtbl.length t.table

let apply t = function
  | Proto.Get key -> (
      match get_copy t key with
      | Some v -> Proto.Value v
      | None -> Proto.Not_found)
  | Proto.Set (key, value) ->
      ignore (set t key value);
      Proto.Stored
  | Proto.Del key -> if del t key then Proto.Deleted else Proto.Not_found

let apply_zero_copy t = function
  | Proto.Get key -> (
      match get t key with
      | Some buf -> Proto.value_response_sga buf
      | None -> Proto.response_sga Proto.Not_found)
  | Proto.Set (key, value) ->
      ignore (set t key value);
      Proto.response_sga Proto.Stored
  | Proto.Del key ->
      Proto.response_sga (if del t key then Proto.Deleted else Proto.Not_found)
