(** The same KV server and client on the legacy POSIX interface — the
    baseline the paper argues against.

    Every accept/read/write is a syscall; every byte of request and
    response crosses the user/kernel boundary by copy; requests arrive
    on a byte stream, so the server runs a framing decoder per
    connection and can only process a request once enough stream bytes
    have accumulated (§3.2). The event loop blocks in epoll. *)

type server

val start_server :
  posix:Dk_kernel.Posix.t ->
  cost:Dk_sim.Cost.t ->
  engine:Dk_sim.Engine.t ->
  port:int ->
  kv:Kv.t ->
  (server, Dk_kernel.Posix.error) result

val requests_served : server -> int

val run_client :
  posix:Dk_kernel.Posix.t ->
  cost:Dk_sim.Cost.t ->
  engine:Dk_sim.Engine.t ->
  dst:Dk_net.Addr.endpoint ->
  ops:int ->
  keys:int ->
  value_size:int ->
  read_fraction:float ->
  ?zipf_theta:float ->
  ?seed:int64 ->
  unit ->
  (Kv_app.client_stats, Dk_kernel.Posix.error) result
