(** Verified-by-construction queue programs (§4.2–4.3).

    The paper proposes letting applications express filter and map
    functions that the libOS offloads to a programmable accelerator when
    one is present, or runs on the CPU otherwise, and suggests a
    verified framework (BPF, Floem) so devices can trust them. Here the
    programs are a total, bounded combinator language: evaluation always
    terminates, touches a statically-known number of bytes
    ({!filter_footprint}), and cannot escape the payload. *)

type pred =
  | True
  | False
  | Len_ge of int          (** payload length >= n *)
  | Len_lt of int
  | Byte_eq of int * char  (** payload.[off] = c (false if out of range) *)
  | Byte_in of int * char * char (** inclusive range test *)
  | Prefix of string       (** payload starts with the literal *)
  | Hash_mod of int * int * int * int
      (** [Hash_mod (off, len, modulo, target)]: FNV-1a over the byte
          range, reduced mod [modulo], equals [target] — the
          key-steering filter of §4.3. *)
  | All of pred list
  | Any of pred list
  | Not of pred

type filter = pred

type map =
  | Identity
  | Prepend of string
  | Append of string
  | Xor_mask of int    (** toy cipher standing in for offloaded crypto *)
  | Truncate of int
  | Chain of map list

val eval_pred : pred -> string -> bool
val eval_map : map -> string -> string

val filter_footprint : filter -> int
(** Upper bound on payload bytes a filter examines; drives the CPU
    fallback cost. *)

val map_footprint : map -> int -> int
(** [map_footprint m len]: bytes touched when mapping a payload of
    [len] bytes. *)

val pp_pred : Format.formatter -> pred -> unit
val pp_map : Format.formatter -> map -> unit
