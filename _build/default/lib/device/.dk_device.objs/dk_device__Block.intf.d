lib/device/block.mli: Dk_sim Prog
