lib/device/block.ml: Dk_sim Hashtbl Int64 Prog Queue String
