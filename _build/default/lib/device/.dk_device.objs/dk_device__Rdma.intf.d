lib/device/rdma.mli: Dk_mem Dk_sim
