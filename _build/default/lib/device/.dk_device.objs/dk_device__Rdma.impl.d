lib/device/rdma.ml: Dk_mem Dk_sim Int64 List Queue
