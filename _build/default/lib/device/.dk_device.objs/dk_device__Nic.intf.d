lib/device/nic.mli: Dk_sim Prog
