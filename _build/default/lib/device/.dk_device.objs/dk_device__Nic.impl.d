lib/device/nic.ml: Dk_sim Dk_util Int64 Prog String
