lib/device/fabric.mli: Dk_sim Nic
