lib/device/prog.mli: Format
