lib/device/prog.ml: Char Format Int64 List String
