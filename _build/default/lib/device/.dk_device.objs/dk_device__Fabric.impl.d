lib/device/fabric.ml: Dk_sim Hashtbl Int64 Nic Option String
