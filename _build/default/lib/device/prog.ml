type pred =
  | True
  | False
  | Len_ge of int
  | Len_lt of int
  | Byte_eq of int * char
  | Byte_in of int * char * char
  | Prefix of string
  | Hash_mod of int * int * int * int
  | All of pred list
  | Any of pred list
  | Not of pred

type filter = pred

type map =
  | Identity
  | Prepend of string
  | Append of string
  | Xor_mask of int
  | Truncate of int
  | Chain of map list

let fnv1a s off len =
  let h = ref 0xcbf29ce484222325L in
  let stop = min (String.length s) (off + len) in
  for i = max 0 off to stop - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let rec eval_pred p s =
  match p with
  | True -> true
  | False -> false
  | Len_ge n -> String.length s >= n
  | Len_lt n -> String.length s < n
  | Byte_eq (off, c) -> off >= 0 && off < String.length s && s.[off] = c
  | Byte_in (off, lo, hi) ->
      off >= 0 && off < String.length s && s.[off] >= lo && s.[off] <= hi
  | Prefix p ->
      String.length s >= String.length p
      && String.equal (String.sub s 0 (String.length p)) p
  | Hash_mod (off, len, modulo, target) ->
      if modulo <= 0 then false
      else
        let h = fnv1a s off len in
        Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int modulo))
        = target
  | All ps -> List.for_all (fun p -> eval_pred p s) ps
  | Any ps -> List.exists (fun p -> eval_pred p s) ps
  | Not p -> not (eval_pred p s)

let rec eval_map m s =
  match m with
  | Identity -> s
  | Prepend p -> p ^ s
  | Append a -> s ^ a
  | Xor_mask k ->
      String.map (fun c -> Char.chr (Char.code c lxor (k land 0xff))) s
  | Truncate n -> if String.length s <= n then s else String.sub s 0 n
  | Chain ms -> List.fold_left (fun acc m -> eval_map m acc) s ms

let rec filter_footprint = function
  | True | False | Len_ge _ | Len_lt _ -> 0
  | Byte_eq _ | Byte_in _ -> 1
  | Prefix p -> String.length p
  | Hash_mod (_, len, _, _) -> max 0 len
  | All ps | Any ps -> List.fold_left (fun acc p -> acc + filter_footprint p) 0 ps
  | Not p -> filter_footprint p

let rec map_footprint m len =
  match m with
  | Identity -> 0
  | Prepend p -> String.length p + len
  | Append a -> String.length a + len
  | Xor_mask _ -> len
  | Truncate n -> min n len
  | Chain ms -> List.fold_left (fun acc m -> acc + map_footprint m len) 0 ms

let rec pp_pred ppf = function
  | True -> Format.fprintf ppf "true"
  | False -> Format.fprintf ppf "false"
  | Len_ge n -> Format.fprintf ppf "len>=%d" n
  | Len_lt n -> Format.fprintf ppf "len<%d" n
  | Byte_eq (o, c) -> Format.fprintf ppf "byte[%d]=%C" o c
  | Byte_in (o, lo, hi) -> Format.fprintf ppf "byte[%d] in [%C,%C]" o lo hi
  | Prefix p -> Format.fprintf ppf "prefix %S" p
  | Hash_mod (o, l, m, t) -> Format.fprintf ppf "hash[%d..+%d]%%%d=%d" o l m t
  | All ps ->
      Format.fprintf ppf "(all %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pred)
        ps
  | Any ps ->
      Format.fprintf ppf "(any %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pred)
        ps
  | Not p -> Format.fprintf ppf "(not %a)" pp_pred p

let rec pp_map ppf = function
  | Identity -> Format.fprintf ppf "id"
  | Prepend p -> Format.fprintf ppf "prepend %S" p
  | Append a -> Format.fprintf ppf "append %S" a
  | Xor_mask k -> Format.fprintf ppf "xor 0x%02x" (k land 0xff)
  | Truncate n -> Format.fprintf ppf "truncate %d" n
  | Chain ms ->
      Format.fprintf ppf "(chain %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_map)
        ms
