(** Log-bucketed latency histogram (HDR-style) over non-negative [int64]
    nanosecond samples. Quantile error is bounded by the bucket width
    (~1.6% with the default 64 sub-buckets per power of two). *)

type t

val create : unit -> t
val record : t -> int64 -> unit
val count : t -> int
val mean : t -> float
val min : t -> int64
val max : t -> int64

val quantile : t -> float -> int64
(** [quantile t q] for [q] in [0,1]; returns 0 on an empty histogram. *)

val merge : t -> t -> t
(** Combined distribution; inputs are unchanged. *)

val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One-line [count/mean/p50/p99/max] summary. *)
