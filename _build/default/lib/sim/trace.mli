(** Lightweight bounded event trace for debugging simulations.

    Disabled by default; when enabled it keeps the most recent [capacity]
    entries. *)

type t

val create : ?capacity:int -> unit -> t
val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> int64 -> string -> unit
(** [emit t now label] records an entry when enabled. *)

val emitf :
  t -> int64 -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the message is only built when enabled. *)

val entries : t -> (int64 * string) list
(** Oldest first. *)

val pp : Format.formatter -> t -> unit
