let clz v =
  if v <= 0 then 63
  else begin
    let n = ref 0 in
    let v = ref v in
    if !v land 0x7fffffff00000000 = 0 then begin n := !n + 31; v := !v lsl 31 end;
    while !v land 0x4000000000000000 = 0 do
      incr n;
      v := !v lsl 1
    done;
    !n
  end
