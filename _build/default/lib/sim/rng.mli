(** Deterministic pseudo-random numbers (SplitMix64).

    Workload generators and the lossy fabric draw from explicit [Rng.t]
    states so every experiment is reproducible from its seed. *)

type t

val create : int64 -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** A new generator whose stream is independent of further draws from
    the parent. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws an exponential variate (e.g. Poisson
    inter-arrival gaps in nanoseconds). *)
