let sub_bits = 6 (* sub-buckets per power of two: 2^6 *)
let sub_count = 1 lsl sub_bits
let bucket_groups = 64 - sub_bits

type t = {
  counts : int array; (* bucket_groups * sub_count *)
  mutable total : int;
  mutable sum : float;
  mutable min_v : int64;
  mutable max_v : int64;
}

let create () =
  {
    counts = Array.make (bucket_groups * sub_count) 0;
    total = 0;
    sum = 0.0;
    min_v = Int64.max_int;
    max_v = 0L;
  }

(* Bucket index: values below [sub_count] map directly; larger values use
   the position of their top bit for the group and the next [sub_bits]
   bits for the sub-bucket. *)
let index_of v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  let iv = Int64.to_int (Int64.min v Int64.max_int) in
  if iv < sub_count then iv
  else
    let top = 62 - Bits.clz iv in
    let group = top - sub_bits + 1 in
    let sub = (iv lsr (top - sub_bits)) land (sub_count - 1) in
    (* group 0 is the linear region [0, sub_count). *)
    (group * sub_count) + sub

(* Representative (upper-bound midpoint) value for a bucket index. *)
let value_of idx =
  if idx < sub_count then Int64.of_int idx
  else
    let group = idx / sub_count in
    let sub = idx mod sub_count in
    let base = (sub_count lor sub) lsl (group - 1) in
    let width = 1 lsl (group - 1) in
    Int64.of_int (base + (width / 2))

let record t v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  let idx = index_of v in
  if idx < Array.length t.counts then
    t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. Int64.to_float v;
  if Int64.compare v t.min_v < 0 then t.min_v <- v;
  if Int64.compare v t.max_v > 0 then t.max_v <- v

let count t = t.total
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let min t = if t.total = 0 then 0L else t.min_v
let max t = t.max_v

let quantile t q =
  if t.total = 0 then 0L
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = int_of_float (ceil (q *. float_of_int t.total)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 in
    let result = ref t.max_v in
    (try
       for i = 0 to Array.length t.counts - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           result := value_of i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Bucket representatives can stray past the observed extremes;
       clamp so quantiles always lie within [min, max]. *)
    if Int64.compare !result t.max_v > 0 then t.max_v
    else if Int64.compare !result t.min_v < 0 then t.min_v
    else !result
  end

let merge a b =
  let t = create () in
  Array.blit a.counts 0 t.counts 0 (Array.length a.counts);
  Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
  t.total <- a.total + b.total;
  t.sum <- a.sum +. b.sum;
  t.min_v <- Int64.min a.min_v b.min_v;
  t.max_v <- Int64.max a.max_v b.max_v;
  t

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.min_v <- Int64.max_int;
  t.max_v <- 0L

let pp_summary ppf t =
  Format.fprintf ppf "n=%d mean=%.0f p50=%Ld p99=%Ld max=%Ld" (count t)
    (mean t) (quantile t 0.5) (quantile t 0.99) (max t)
