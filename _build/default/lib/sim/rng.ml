type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let exponential t mean =
  let u = float t in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u
