type t = {
  capacity : int;
  mutable on : bool;
  mutable items : (int64 * string) list; (* newest first *)
  mutable count : int;
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  { capacity; on = false; items = []; count = 0 }

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let trim t =
  if t.count > t.capacity then begin
    (* Drop the oldest half; amortises the O(n) tail removal. *)
    let keep = t.capacity / 2 in
    t.items <- List.filteri (fun i _ -> i < keep) t.items;
    t.count <- keep
  end

let emit t now label =
  if t.on then begin
    t.items <- (now, label) :: t.items;
    t.count <- t.count + 1;
    trim t
  end

let emitf t now fmt =
  if t.on then Format.kasprintf (fun s -> emit t now s) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

let entries t = List.rev t.items

let pp ppf t =
  List.iter (fun (ts, s) -> Format.fprintf ppf "%12Ld %s@\n" ts s) (entries t)
