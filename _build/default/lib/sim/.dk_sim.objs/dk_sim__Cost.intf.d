lib/sim/cost.mli: Format
