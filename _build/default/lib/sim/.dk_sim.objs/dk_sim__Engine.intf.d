lib/sim/engine.mli:
