lib/sim/histogram.ml: Array Bits Format Int64
