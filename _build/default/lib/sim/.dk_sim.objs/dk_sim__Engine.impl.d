lib/sim/engine.ml: Dk_util Int64
