lib/sim/rng.mli:
