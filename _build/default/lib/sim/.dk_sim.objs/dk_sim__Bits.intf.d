lib/sim/bits.mli:
