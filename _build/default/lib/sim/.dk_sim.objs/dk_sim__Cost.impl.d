lib/sim/cost.ml: Format Int64
