lib/sim/bits.ml:
