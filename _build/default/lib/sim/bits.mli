(** Small bit-twiddling helpers for the histogram bucketing. *)

val clz : int -> int
(** Count of leading zero bits in a 63-bit OCaml int (for positive
    inputs); [clz 0 = 63]. *)
