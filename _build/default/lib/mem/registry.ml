type t = {
  table : (int * string, unit) Hashtbl.t;
  by_region : (int, string list) Hashtbl.t;
  mutable count : int;
}

let create () = { table = Hashtbl.create 32; by_region = Hashtbl.create 16; count = 0 }

let register t ~region_id ~device =
  let key = (region_id, device) in
  if not (Hashtbl.mem t.table key) then begin
    Hashtbl.replace t.table key ();
    let existing =
      Option.value ~default:[] (Hashtbl.find_opt t.by_region region_id)
    in
    Hashtbl.replace t.by_region region_id (device :: existing);
    t.count <- t.count + 1
  end

let is_registered t ~region_id ~device = Hashtbl.mem t.table (region_id, device)
let registrations t = t.count

let devices_of t ~region_id =
  Option.value ~default:[] (Hashtbl.find_opt t.by_region region_id)
