type cell = {
  mutable app_refs : int;
  mutable io_refs : int;
  mutable released : bool;
  mutable deferred : bool;
  release : unit -> unit;
}

type t = {
  store : bytes;
  off : int;
  len : int;
  region_id : int option;
  cell : cell option;
  mutable live : bool; (* this view not yet freed *)
}

let of_string s =
  {
    store = Bytes.of_string s;
    off = 0;
    len = String.length s;
    region_id = None;
    cell = None;
    live = true;
  }

let unmanaged n =
  if n < 0 then invalid_arg "Buffer.unmanaged";
  {
    store = Bytes.make n '\000';
    off = 0;
    len = n;
    region_id = None;
    cell = None;
    live = true;
  }

let make_managed ~store ~off ~len ~region_id ~release =
  if off < 0 || len < 0 || off + len > Bytes.length store then
    invalid_arg "Buffer.make_managed";
  let cell =
    { app_refs = 1; io_refs = 0; released = false; deferred = false; release }
  in
  { store; off; len; region_id = Some region_id; cell = Some cell; live = true }

let store t = t.store
let off t = t.off
let length t = t.len
let region_id t = t.region_id

let retain t =
  match t.cell with
  | None -> ()
  | Some c ->
      if c.released then invalid_arg "Buffer: use after release";
      c.app_refs <- c.app_refs + 1

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Buffer.sub";
  retain t;
  { t with off = t.off + pos; len; live = true }

let dup t =
  retain t;
  { t with live = true }

let check_bounds t pos len name =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg name

let get t i =
  check_bounds t i 1 "Buffer.get";
  Bytes.get t.store (t.off + i)

let set t i c =
  check_bounds t i 1 "Buffer.set";
  Bytes.set t.store (t.off + i) c

let blit_from_string src soff t doff len =
  check_bounds t doff len "Buffer.blit_from_string";
  Bytes.blit_string src soff t.store (t.off + doff) len

let blit_to_bytes t soff dst doff len =
  check_bounds t soff len "Buffer.blit_to_bytes";
  Bytes.blit t.store (t.off + soff) dst doff len

let blit src soff dst doff len =
  check_bounds src soff len "Buffer.blit(src)";
  check_bounds dst doff len "Buffer.blit(dst)";
  Bytes.blit src.store (src.off + soff) dst.store (dst.off + doff) len

let fill t c = Bytes.fill t.store t.off t.len c

let to_string t = Bytes.sub_string t.store t.off t.len

let maybe_release c =
  if (not c.released) && c.app_refs = 0 && c.io_refs = 0 then begin
    c.released <- true;
    c.release ()
  end

let free t =
  if not t.live then invalid_arg "Buffer.free: double free of a view";
  t.live <- false;
  match t.cell with
  | None -> ()
  | Some c ->
      c.app_refs <- c.app_refs - 1;
      if c.app_refs = 0 && c.io_refs > 0 then c.deferred <- true;
      maybe_release c

let io_hold t =
  match t.cell with
  | None -> ()
  | Some c ->
      if c.released then invalid_arg "Buffer.io_hold: buffer already released";
      c.io_refs <- c.io_refs + 1

let io_release t =
  match t.cell with
  | None -> ()
  | Some c ->
      if c.io_refs <= 0 then invalid_arg "Buffer.io_release: no I/O hold";
      c.io_refs <- c.io_refs - 1;
      maybe_release c

let in_flight t = match t.cell with None -> false | Some c -> c.io_refs > 0
let is_live t = t.live
let was_deferred t =
  match t.cell with None -> false | Some c -> c.deferred
