type stats = {
  allocs : int;
  releases : int;
  deferred_releases : int;
  live_bytes : int;
  region_count : int;
  region_bytes : int;
}

type t = {
  initial_region_size : int;
  max_total_bytes : int;
  on_new_region : Region.t -> unit;
  mutable arenas : Arena.t list;
  mutable next_region_id : int;
  mutable total_bytes : int;
  mutable allocs : int;
  mutable releases : int;
  mutable deferred_releases : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(initial_region_size = 1 lsl 20) ?(max_total_bytes = 1 lsl 28)
    ?(on_new_region = fun _ -> ()) () =
  if not (is_pow2 initial_region_size) then
    invalid_arg "Manager.create: initial_region_size must be a power of two";
  {
    initial_region_size;
    max_total_bytes;
    on_new_region;
    arenas = [];
    next_region_id = 0;
    total_bytes = 0;
    allocs = 0;
    releases = 0;
    deferred_releases = 0;
  }

let next_pow2 n =
  let rec loop v = if v >= n then v else loop (v * 2) in
  loop 1

let grow t want =
  let size = max t.initial_region_size (next_pow2 want) in
  if t.total_bytes + size > t.max_total_bytes then None
  else begin
    let reg = Region.create ~id:t.next_region_id ~size in
    t.next_region_id <- t.next_region_id + 1;
    t.total_bytes <- t.total_bytes + size;
    Region.pin reg;
    t.on_new_region reg;
    let arena = Arena.create reg in
    t.arenas <- t.arenas @ [ arena ];
    Some arena
  end

let wrap t arena (block : Arena.block) len =
  let reg = Arena.region arena in
  (* [release] runs strictly after [buf] exists, so it can consult the
     buffer's deferral flag through this knot. *)
  let buf_ref = ref None in
  let release () =
    t.releases <- t.releases + 1;
    (match !buf_ref with
    | Some b when Buffer.was_deferred b ->
        t.deferred_releases <- t.deferred_releases + 1
    | Some _ | None -> ());
    Arena.free arena block
  in
  let buf =
    Buffer.make_managed ~store:(Region.store reg) ~off:block.Arena.offset
      ~len ~region_id:(Region.id reg) ~release
  in
  buf_ref := Some buf;
  buf

let try_arenas t len =
  let rec loop = function
    | [] -> None
    | arena :: rest -> (
        match Arena.alloc arena len with
        | Some block -> Some (arena, block)
        | None -> loop rest)
  in
  loop t.arenas

let alloc t len =
  if len <= 0 then invalid_arg "Manager.alloc: size must be positive";
  let found =
    match try_arenas t len with
    | Some _ as hit -> hit
    | None -> (
        match grow t len with
        | None -> None
        | Some arena -> (
            match Arena.alloc arena len with
            | Some block -> Some (arena, block)
            | None -> None))
  in
  match found with
  | None -> None
  | Some (arena, block) ->
      t.allocs <- t.allocs + 1;
      Some (wrap t arena block len)

let alloc_exn t len =
  match alloc t len with
  | Some b -> b
  | None -> raise Out_of_memory

let alloc_string t s =
  match alloc t (max 1 (String.length s)) with
  | None -> None
  | Some b ->
      Buffer.blit_from_string s 0 b 0 (String.length s);
      if String.length s = Buffer.length b then Some b
      else begin
        (* Trim the view to the string's exact length. *)
        let v = Buffer.sub b 0 (String.length s) in
        Buffer.free b;
        Some v
      end

let sga_of_string t s =
  Option.map (fun b -> Sga.of_buffers [ b ]) (alloc_string t s)

let regions t = List.map Arena.region t.arenas

let stats t =
  {
    allocs = t.allocs;
    releases = t.releases;
    deferred_releases = t.deferred_releases;
    live_bytes = List.fold_left (fun acc a -> acc + Arena.live_bytes a) 0 t.arenas;
    region_count = List.length t.arenas;
    region_bytes = t.total_bytes;
  }
