(** A contiguous memory region, the unit of device registration.

    The Demikernel memory manager (§4.5) registers whole regions with
    kernel-bypass devices once, instead of asking applications to
    register every I/O buffer. Registered regions are pinned: the bytes
    backing them cannot move for the region's lifetime (OCaml bytes are
    immovable by construction here; the flag models the *cost* and
    accounting of pinning). *)

type t

val create : id:int -> size:int -> t
val id : t -> int
val size : t -> int
val store : t -> bytes

val pin : t -> unit
val pinned : t -> bool

val pages : t -> int
(** Number of 4 KB pages covered, for pinning-cost accounting. *)

val page_size : int
