(** Registration registry: which memory regions are registered with
    which devices.

    Kernel-bypass devices translate user addresses only for registered,
    pinned regions (§2, §4.5). The registry is the bookkeeping; charging
    the (large) registration cost to the virtual clock is done by the
    caller, who knows the engine. *)

type t

val create : unit -> t

val register : t -> region_id:int -> device:string -> unit
(** Idempotent per (region, device) pair. *)

val is_registered : t -> region_id:int -> device:string -> bool

val registrations : t -> int
(** Total number of distinct (region, device) registrations performed —
    the quantity the transparent scheme amortises. *)

val devices_of : t -> region_id:int -> string list
