lib/mem/region.ml: Bytes
