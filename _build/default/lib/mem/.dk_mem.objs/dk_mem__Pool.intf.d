lib/mem/pool.mli: Buffer
