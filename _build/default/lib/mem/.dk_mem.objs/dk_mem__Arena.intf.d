lib/mem/arena.mli: Region
