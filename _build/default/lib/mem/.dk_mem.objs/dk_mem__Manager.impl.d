lib/mem/manager.ml: Arena Buffer List Option Region Sga String
