lib/mem/pool.ml: Buffer List
