lib/mem/buffer.mli:
