lib/mem/manager.mli: Buffer Region Sga
