lib/mem/region.mli:
