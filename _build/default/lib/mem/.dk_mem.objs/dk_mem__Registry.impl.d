lib/mem/registry.ml: Hashtbl Option
