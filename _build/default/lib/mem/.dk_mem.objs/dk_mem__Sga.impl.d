lib/mem/sga.ml: Buffer Bytes Format List Stdlib String
