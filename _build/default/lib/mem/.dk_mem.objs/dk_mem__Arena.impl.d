lib/mem/arena.ml: Array Hashtbl List Region
