lib/mem/buffer.ml: Bytes String
