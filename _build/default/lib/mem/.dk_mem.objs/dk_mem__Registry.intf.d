lib/mem/registry.mli:
