lib/mem/sga.mli: Buffer Format
