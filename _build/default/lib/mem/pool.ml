type t = {
  size : int;
  capacity : int;
  mutable free : Buffer.t list;
  mutable free_count : int;
}

let create ~alloc ~size ~count =
  if size <= 0 || count <= 0 then invalid_arg "Pool.create";
  let rec loop n acc =
    if n = 0 then Some acc
    else
      match alloc () with
      | None ->
          List.iter Buffer.free acc;
          None
      | Some b ->
          if Buffer.length b < size then invalid_arg "Pool.create: short buffer";
          loop (n - 1) (b :: acc)
  in
  match loop count [] with
  | None -> None
  | Some free -> Some { size; capacity = count; free; free_count = count }

let buffer_size t = t.size
let available t = t.free_count
let outstanding t = t.capacity - t.free_count

let get t =
  match t.free with
  | [] -> None
  | b :: rest ->
      t.free <- rest;
      t.free_count <- t.free_count - 1;
      Some b

let put t b =
  if t.free_count >= t.capacity then invalid_arg "Pool.put: pool full";
  t.free <- b :: t.free;
  t.free_count <- t.free_count + 1
