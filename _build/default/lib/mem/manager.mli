(** The Demikernel memory manager (§4.5).

    Allocates application I/O buffers from large pre-registered regions,
    so that applications never register memory with devices themselves:
    when the manager creates a region it fires [on_new_region], which
    the libOS uses to register the region with every attached device
    (paying the registration cost once per region, not once per buffer).
    Buffers carry free-protection (see {!Buffer}). *)

type t

type stats = {
  allocs : int;          (** successful allocations *)
  releases : int;        (** storage actually returned *)
  deferred_releases : int; (** releases delayed by in-flight I/O *)
  live_bytes : int;
  region_count : int;
  region_bytes : int;
}

val create :
  ?initial_region_size:int ->
  ?max_total_bytes:int ->
  ?on_new_region:(Region.t -> unit) ->
  unit ->
  t
(** Defaults: 1 MiB initial region, 256 MiB cap, no registration hook.
    [initial_region_size] must be a power of two. *)

val alloc : t -> int -> Buffer.t option
(** [None] only when the total-bytes cap prevents growing. *)

val alloc_exn : t -> int -> Buffer.t
(** @raise Out_of_memory when {!alloc} would return [None]. *)

val alloc_string : t -> string -> Buffer.t option
(** Allocate and fill with the string's bytes (the buffer's length is
    exactly the string's length... it is a view of a possibly larger
    block). *)

val sga_of_string : t -> string -> Sga.t option
(** Single-segment managed sga holding the string. *)

val regions : t -> Region.t list
val stats : t -> stats
