type t = { segs : Buffer.t list; total : int }

let empty = { segs = []; total = 0 }

let of_buffers segs =
  let total = List.fold_left (fun acc b -> acc + Buffer.length b) 0 segs in
  { segs; total }

let of_string s = of_buffers [ Buffer.of_string s ]
let of_strings ss = of_buffers (List.map Buffer.of_string ss)

let segments t = t.segs
let segment_count t = List.length t.segs
let length t = t.total

let append t b =
  { segs = t.segs @ [ b ]; total = t.total + Buffer.length b }

let concat a b = { segs = a.segs @ b.segs; total = a.total + b.total }

let copy_into t dst off =
  if off < 0 || off + t.total > Bytes.length dst then
    invalid_arg "Sga.copy_into: destination too small";
  let pos = ref off in
  let copy_seg b =
    Buffer.blit_to_bytes b 0 dst !pos (Buffer.length b);
    pos := !pos + Buffer.length b
  in
  List.iter copy_seg t.segs;
  !pos - off

let to_string t =
  let dst = Bytes.create t.total in
  ignore (copy_into t dst 0);
  Bytes.unsafe_to_string dst

let sub_string t pos len =
  if pos < 0 || len < 0 || pos + len > t.total then
    invalid_arg "Sga.sub_string";
  let out = Stdlib.Buffer.create len in
  let skip = ref pos and want = ref len in
  let take b =
    let blen = Buffer.length b in
    if !want > 0 then
      if !skip >= blen then skip := !skip - blen
      else begin
        let here = min (blen - !skip) !want in
        Stdlib.Buffer.add_string out
          (Bytes.sub_string (Buffer.store b) (Buffer.off b + !skip) here);
        want := !want - here;
        skip := 0
      end
  in
  List.iter take t.segs;
  Stdlib.Buffer.contents out

let equal a b = a.total = b.total && String.equal (to_string a) (to_string b)

let free t = List.iter Buffer.free t.segs
let io_hold t = List.iter Buffer.io_hold t.segs
let io_release t = List.iter Buffer.io_release t.segs

let pp ppf t =
  Format.fprintf ppf "sga[%d segs, %d bytes]" (segment_count t) t.total
